module rpol

go 1.22
