// Package rpol is a from-scratch Go implementation of RPoL — the robust and
// efficient proof-of-learning scheme for secure pooled mining from "Secure
// Collaborative Learning in Mining Pool via Robust and Efficient
// Verification" (ICDCS 2023).
//
// In a proof-of-useful-work blockchain, a mining pool's manager farms a DNN
// training task out to untrusted workers. RPoL lets the manager verify that
// each worker really trained its shard:
//
//   - Workers train with a stochastic-yet-deterministic batch schedule
//     (PRF-driven, nonce-seeded), snapshotting model weights at fixed
//     checkpoint intervals.
//   - Before the manager reveals which checkpoints it will audit, each
//     worker publishes a binding commitment over all of them
//     (commit-and-prove).
//   - The manager re-executes a few sampled intervals on its own hardware
//     and accepts only results within the calibrated reproduction-error
//     tolerance. Under RPoLv2 the committed values are locality-sensitive
//     hashes, halving verification traffic while tolerating the inherent
//     nondeterminism of GPU training; a raw-weight double-check guarantees
//     rewards for honest workers.
//   - An address-encoded mapping layer (AMLayer) ties the trained model to
//     the pool's blockchain address so that stolen models lose the mining
//     competition.
//
// This root package is the public façade: it re-exports the high-level
// simulation API (pools, schemes, epoch statistics) and the experiment
// runners that regenerate every table and figure of the paper. The
// implementation lives under internal/ — see DESIGN.md for the system
// inventory and EXPERIMENTS.md for paper-versus-measured results.
package rpol
