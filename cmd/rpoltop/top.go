package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"rpol/internal/obs"
	"rpol/internal/obshttp"
)

// defaultInterval is the refresh cadence when -interval is not given.
const defaultInterval = 2 * time.Second

// tailLen bounds the rendered event tail.
const tailLen = 8

// workerStat aggregates one worker's verdict history from the event stream.
type workerStat struct {
	accepted  int64
	rejected  int64
	absent    int64
	lastEpoch int64
}

// model is everything one frame renders. It is pure data: the fetch layer
// fills it, render turns it into a string, and the golden test constructs
// it directly.
type model struct {
	source      string // address or file the frame describes
	seq         uint64 // metrics stream sequence of the applied state
	snap        obs.Snapshot
	delta       obs.Delta // last increment, for the rate columns
	intervalSec float64   // rate window; 0 renders rates as "-"
	health      *obshttp.HealthResponse
	workers     map[string]*workerStat
	tail        []obs.StreamEvent
	dropped     uint64 // events lost to the ring across the session
}

// applyEvents folds a batch of stream events into the per-worker tallies
// and the bounded tail.
func (m *model) applyEvents(evs []obs.StreamEvent, dropped uint64) {
	m.dropped += dropped
	for _, ev := range evs {
		if ev.Worker != "" {
			if m.workers == nil {
				m.workers = make(map[string]*workerStat)
			}
			ws := m.workers[ev.Worker]
			if ws == nil {
				ws = &workerStat{}
				m.workers[ev.Worker] = ws
			}
			switch ev.Kind {
			case obs.EventVerdictAccepted:
				ws.accepted++
			case obs.EventVerdictRejected:
				ws.rejected++
			case obs.EventWorkerAbsent:
				ws.absent++
			}
			if ev.Epoch > ws.lastEpoch {
				ws.lastEpoch = ev.Epoch
			}
		}
		m.tail = append(m.tail, ev)
	}
	if len(m.tail) > tailLen {
		m.tail = m.tail[len(m.tail)-tailLen:]
	}
}

// poolRows are the headline counters, in display order.
var poolRows = []struct{ label, metric string }{
	{"epochs sealed", "pool_epochs_total"},
	{"verdicts accepted", "rpol_accepted_total"},
	{"verdicts rejected", "rpol_rejected_total"},
	{"workers absent", "rpol_absent_total"},
	{"adversaries detected", "pool_detected_adversaries_total"},
	{"adversaries missed", "pool_missed_adversaries_total"},
	{"false rejections", "pool_false_rejections_total"},
}

// rate formats a per-second rate over the frame's interval. A Full delta
// is the entire run's state, not an interval's increment, so it rates as
// "-" rather than implying a burst.
func (m *model) rate(increment int64) string {
	if m.intervalSec <= 0 || increment == 0 || m.delta.Full {
		return "-"
	}
	return strconv.FormatFloat(float64(increment)/m.intervalSec, 'g', 4, 64) + "/s"
}

// render draws one frame. Pure: no clock, no IO — the golden test calls it
// on a canned model.
func render(m *model) string {
	var b strings.Builder

	// Header: source, stream position, liveness.
	fmt.Fprintf(&b, "rpoltop — %s  seq=%d", m.source, m.seq)
	if m.health != nil {
		status := "OK"
		if !m.health.Healthy {
			status = "STALLED"
		}
		fmt.Fprintf(&b, "  health=%s epochs=%d age=%s",
			status, m.health.Epochs, time.Duration(m.health.AgeNS))
	}
	if acc, ok := m.snap.Gauges["pool_test_accuracy"]; ok {
		fmt.Fprintf(&b, "  accuracy=%.4f", acc)
	}
	if m.dropped > 0 {
		fmt.Fprintf(&b, "  events_dropped=%d", m.dropped)
	}
	b.WriteString("\n\n")

	// Pool progress.
	rows := make([][]string, 0, len(poolRows))
	for _, r := range poolRows {
		rows = append(rows, []string{
			r.label,
			strconv.FormatInt(m.snap.Counters[r.metric], 10),
			m.rate(m.delta.Counters[r.metric]),
		})
	}
	b.WriteString(obs.RenderTable([]string{"pool", "total", "rate"}, rows))

	// Per-worker tallies from the event stream.
	if len(m.workers) > 0 {
		names := make([]string, 0, len(m.workers))
		for name := range m.workers {
			names = append(names, name)
		}
		sort.Strings(names)
		rows = rows[:0]
		for _, name := range names {
			ws := m.workers[name]
			rows = append(rows, []string{
				name,
				strconv.FormatInt(ws.accepted, 10),
				strconv.FormatInt(ws.rejected, 10),
				strconv.FormatInt(ws.absent, 10),
				strconv.FormatInt(ws.lastEpoch, 10),
			})
		}
		b.WriteString("\n")
		b.WriteString(obs.RenderTable(
			[]string{"worker", "accepted", "rejected", "absent", "epoch"}, rows))
	}

	// Network and durability counters, discovered by prefix so new
	// transports and journal metrics appear without dashboard changes.
	names := make([]string, 0, len(m.snap.Counters))
	for name := range m.snap.Counters {
		if strings.HasPrefix(name, "net_") || strings.HasPrefix(name, "journal_") ||
			strings.HasPrefix(name, "recovery_") {
			names = append(names, name)
		}
	}
	if len(names) > 0 {
		sort.Strings(names)
		rows = rows[:0]
		for _, name := range names {
			rows = append(rows, []string{
				name,
				strconv.FormatInt(m.snap.Counters[name], 10),
				m.rate(m.delta.Counters[name]),
			})
		}
		b.WriteString("\n")
		b.WriteString(obs.RenderTable([]string{"net / journal", "total", "rate"}, rows))
	}

	// Live event tail.
	if len(m.tail) > 0 {
		b.WriteString("\nevents:\n")
		for _, ev := range m.tail {
			fmt.Fprintf(&b, "  [%d] %s", ev.Seq, ev.Kind)
			if ev.Worker != "" {
				fmt.Fprintf(&b, " %s", ev.Worker)
			}
			fmt.Fprintf(&b, " epoch=%d", ev.Epoch)
			if ev.Detail != "" {
				fmt.Fprintf(&b, " (%s)", ev.Detail)
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

// client polls one observability plane.
type client struct {
	base string // http://host:port
	m    *model
}

func (c *client) get(path string, into any) error {
	resp, err := http.Get(c.base + path)
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
		return fmt.Errorf("%s: %s: %s", c.base+path, resp.Status, strings.TrimSpace(string(body)))
	}
	return json.Unmarshal(body, into)
}

// refresh advances the model by one poll round: metrics delta, event tail,
// health. The first round (seq 0) receives the full snapshot.
func (c *client) refresh() error {
	var d obs.Delta
	if err := c.get("/delta?since="+strconv.FormatUint(c.m.seq, 10), &d); err != nil {
		return err
	}
	c.m.snap = c.m.snap.Apply(d) // Apply discards the mirror on a Full delta
	c.m.seq = d.Seq
	c.m.delta = d

	var er struct {
		Latest  uint64            `json:"latest"`
		Dropped uint64            `json:"dropped"`
		Events  []obs.StreamEvent `json:"events"`
	}
	since := uint64(0)
	if n := len(c.m.tail); n > 0 {
		since = c.m.tail[n-1].Seq
	}
	if err := c.get("/events?since="+strconv.FormatUint(since, 10), &er); err != nil {
		return err
	}
	c.m.applyEvents(er.Events, er.Dropped)

	var hr obshttp.HealthResponse
	if err := c.get("/healthz", &hr); err != nil {
		return err
	}
	c.m.health = &hr
	return nil
}

// clearScreen is the ANSI erase+home sequence the live loop prefixes each
// frame with.
const clearScreen = "\x1b[2J\x1b[H"

// run is the dashboard entry point, factored from main for testing.
func run(addr string, interval time.Duration, once bool, file string, out io.Writer) error {
	if interval <= 0 {
		interval = defaultInterval
	}
	if file != "" {
		return renderFile(file, out)
	}
	if addr == "" {
		return errors.New("one of -addr or -file is required")
	}
	c := &client{
		base: "http://" + addr,
		m:    &model{source: addr, intervalSec: interval.Seconds()},
	}
	for {
		if err := c.refresh(); err != nil {
			return err
		}
		if once {
			_, err := io.WriteString(out, render(c.m))
			return err
		}
		if _, err := io.WriteString(out, clearScreen+render(c.m)); err != nil {
			return err
		}
		// The refresh pace is wall time by definition — an operator is
		// watching — so the wait routes through the one sanctioned sleep.
		obs.WallSleep(interval)
	}
}

// renderFile draws a single offline frame from a saved metrics snapshot
// (the JSON served by /metrics?format=json, or obs.Snapshot.JSON output).
func renderFile(path string, out io.Writer) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	_, err = io.WriteString(out, render(&model{source: path, snap: snap}))
	return err
}
