// Command rpoltop is a live terminal dashboard for a running simulation's
// observability plane (rpolsim -serve / rpolbench -serve). It polls the
// /snapshot, /delta, /events, and /healthz endpoints and renders the
// fleet's state — per-worker verdict tallies, pool progress, network and
// journal rates, and the live event tail — refreshing in place.
//
// Usage:
//
//	rpoltop -addr localhost:7070             # live view, refresh every 2s
//	rpoltop -addr localhost:7070 -once       # one frame, then exit
//	rpoltop -file metrics.json -once         # offline view of a saved snapshot
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	var (
		addr     = flag.String("addr", "", "observability plane address (host:port of a -serve run)")
		interval = flag.Duration("interval", 0, "refresh interval (default 2s); also the window for rate columns")
		once     = flag.Bool("once", false, "render a single frame and exit")
		file     = flag.String("file", "", "render a saved metrics snapshot (JSON, as served by /metrics?format=json) instead of polling")
	)
	flag.Parse()
	if err := run(*addr, *interval, *once, *file, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rpoltop:", err)
		os.Exit(1)
	}
}
