package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rpol/internal/obs"
	"rpol/internal/obshttp"
)

// cannedModel is a fixed frame covering every dashboard section.
func cannedModel() *model {
	reg := obs.NewRegistry()
	reg.Counter("pool_epochs_total").Add(3)
	reg.Counter("rpol_accepted_total").Add(12)
	reg.Counter("rpol_rejected_total").Add(2)
	reg.Counter("rpol_absent_total").Add(1)
	reg.Counter("pool_detected_adversaries_total").Add(2)
	reg.Counter("net_bus_bytes_total").Add(4096)
	reg.Counter("net_retries_total").Add(4)
	reg.Counter("journal_records_total").Add(21)
	reg.Gauge("pool_test_accuracy").Set(0.8125)

	m := &model{
		source:      "localhost:7070",
		seq:         5,
		snap:        reg.Snapshot(),
		intervalSec: 2,
		delta: obs.Delta{
			Counters: map[string]int64{
				"pool_epochs_total":   1,
				"rpol_accepted_total": 5,
				"net_bus_bytes_total": 1024,
			},
		},
		health: &obshttp.HealthResponse{Healthy: true, Epochs: 3, AgeNS: int64(1500 * time.Millisecond)},
	}
	m.applyEvents([]obs.StreamEvent{
		{Seq: 40, Kind: obs.EventVerdictAccepted, Worker: "worker-00", Epoch: 2},
		{Seq: 41, Kind: obs.EventVerdictRejected, Worker: "adv1-00", Epoch: 2, Detail: "digest mismatch"},
		{Seq: 42, Kind: obs.EventWorkerAbsent, Worker: "worker-01", Epoch: 2, Detail: "absent: worker down"},
		{Seq: 43, Kind: obs.EventEpochSealed, Epoch: 2, Detail: "accuracy=0.8125 accepted=12 rejected=2 absent=1"},
	}, 0)
	return m
}

func TestRenderGolden(t *testing.T) {
	got := render(cannedModel())
	want := "" +
		"rpoltop — localhost:7070  seq=5  health=OK epochs=3 age=1.5s  accuracy=0.8125\n" +
		"\n" +
		"┌──────────────────────┬───────┬───────┐\n" +
		"│ pool                 │ total │ rate  │\n" +
		"├──────────────────────┼───────┼───────┤\n" +
		"│ epochs sealed        │ 3     │ 0.5/s │\n" +
		"│ verdicts accepted    │ 12    │ 2.5/s │\n" +
		"│ verdicts rejected    │ 2     │ -     │\n" +
		"│ workers absent       │ 1     │ -     │\n" +
		"│ adversaries detected │ 2     │ -     │\n" +
		"│ adversaries missed   │ 0     │ -     │\n" +
		"│ false rejections     │ 0     │ -     │\n" +
		"└──────────────────────┴───────┴───────┘\n" +
		"\n" +
		"┌───────────┬──────────┬──────────┬────────┬───────┐\n" +
		"│ worker    │ accepted │ rejected │ absent │ epoch │\n" +
		"├───────────┼──────────┼──────────┼────────┼───────┤\n" +
		"│ adv1-00   │ 0        │ 1        │ 0      │ 2     │\n" +
		"│ worker-00 │ 1        │ 0        │ 0      │ 2     │\n" +
		"│ worker-01 │ 0        │ 0        │ 1      │ 2     │\n" +
		"└───────────┴──────────┴──────────┴────────┴───────┘\n" +
		"\n" +
		"┌───────────────────────┬───────┬───────┐\n" +
		"│ net / journal         │ total │ rate  │\n" +
		"├───────────────────────┼───────┼───────┤\n" +
		"│ journal_records_total │ 21    │ -     │\n" +
		"│ net_bus_bytes_total   │ 4096  │ 512/s │\n" +
		"│ net_retries_total     │ 4     │ -     │\n" +
		"└───────────────────────┴───────┴───────┘\n" +
		"\n" +
		"events:\n" +
		"  [40] verdict_accepted worker-00 epoch=2\n" +
		"  [41] verdict_rejected adv1-00 epoch=2 (digest mismatch)\n" +
		"  [42] worker_absent worker-01 epoch=2 (absent: worker down)\n" +
		"  [43] epoch_sealed epoch=2 (accuracy=0.8125 accepted=12 rejected=2 absent=1)\n"
	if got != want {
		t.Errorf("frame:\n%s\nwant:\n%s", got, want)
	}
}

func TestApplyEventsTailBounded(t *testing.T) {
	m := &model{}
	evs := make([]obs.StreamEvent, tailLen+5)
	for i := range evs {
		evs[i] = obs.StreamEvent{Seq: uint64(i + 1), Kind: obs.EventEpochSealed, Epoch: int64(i)}
	}
	m.applyEvents(evs, 3)
	if len(m.tail) != tailLen {
		t.Errorf("tail length = %d, want %d", len(m.tail), tailLen)
	}
	if m.tail[0].Seq != uint64(5+1) || m.dropped != 3 {
		t.Errorf("tail head seq = %d, dropped = %d", m.tail[0].Seq, m.dropped)
	}
}

// TestRunOnceAgainstLiveServer drives the full pipeline: an obshttp server
// over a populated observer, one -once refresh, and a frame that carries
// the served data.
func TestRunOnceAgainstLiveServer(t *testing.T) {
	reg := obs.NewRegistry()
	o := obs.NewObserver(reg, nil)
	events := obs.NewEvents(64, nil)
	events.Observe(reg)
	o.AttachEvents(events)
	o.Counter("pool_epochs_total").Add(2)
	o.Gauge("pool_test_accuracy").Set(0.75)
	o.Publish(obs.StreamEvent{Kind: obs.EventEpochSealed, Epoch: 1, Detail: "accuracy=0.7500"})

	srv, err := obshttp.Serve("localhost:0", obshttp.Config{Observer: o})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Shutdown(time.Second) }()

	var out strings.Builder
	if err := run(srv.Addr, time.Second, true, "", &out); err != nil {
		t.Fatal(err)
	}
	frame := out.String()
	for _, want := range []string{
		"rpoltop — " + srv.Addr,
		"health=OK",
		"epochs sealed        │ 2",
		"accuracy=0.7500",
		"[1] epoch_sealed epoch=1",
	} {
		if !strings.Contains(frame, want) {
			t.Errorf("frame missing %q:\n%s", want, frame)
		}
	}
}

func TestRunOfflineFile(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("pool_epochs_total").Add(7)
	reg.Gauge("pool_test_accuracy").Set(0.5)
	data, err := reg.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "metrics.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run("", 0, true, path, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "epochs sealed        │ 7") ||
		!strings.Contains(out.String(), "accuracy=0.5000") {
		t.Errorf("offline frame:\n%s", out.String())
	}
}

func TestRunRequiresSource(t *testing.T) {
	if err := run("", 0, true, "", &strings.Builder{}); err == nil {
		t.Error("no -addr and no -file accepted")
	}
}
