package main

import (
	"path/filepath"
	"testing"
)

func TestRecordAndVerifyHonest(t *testing.T) {
	path := filepath.Join(t.TempDir(), "honest.json")
	if err := recordTrace(path, "resnet18-cifar10", "honest", 10, 3); err != nil {
		t.Fatal(err)
	}
	for _, scheme := range []string{"v1", "v2"} {
		if err := verifyTrace(path, scheme); err != nil {
			t.Errorf("verify %s: %v", scheme, err)
		}
	}
}

func TestRecordAdversarialModes(t *testing.T) {
	for _, mode := range []string{"adv1", "adv2"} {
		path := filepath.Join(t.TempDir(), mode+".json")
		if err := recordTrace(path, "resnet18-cifar10", mode, 10, 3); err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		// The verifier prints its verdict and returns nil for a clean
		// protocol run regardless of accept/reject.
		if err := verifyTrace(path, "v2"); err != nil {
			t.Errorf("verify %s: %v", mode, err)
		}
	}
}

func TestRecordValidation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.json")
	if err := recordTrace(path, "resnet18-cifar10", "evil-mode", 10, 3); err == nil {
		t.Error("unknown mode accepted")
	}
	if err := recordTrace(path, "unknown-task", "honest", 10, 3); err == nil {
		t.Error("unknown task accepted")
	}
}

func TestVerifyValidation(t *testing.T) {
	if err := verifyTrace(filepath.Join(t.TempDir(), "missing.json"), "v1"); err == nil {
		t.Error("missing file accepted")
	}
	path := filepath.Join(t.TempDir(), "h.json")
	if err := recordTrace(path, "resnet18-cifar10", "honest", 10, 3); err != nil {
		t.Fatal(err)
	}
	if err := verifyTrace(path, "v7"); err == nil {
		t.Error("unknown scheme accepted")
	}
}
