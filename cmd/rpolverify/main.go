// Command rpolverify records and verifies standalone proofs of learning.
//
// Record an honest or adversarial training trace:
//
//	rpolverify -record trace.json -mode honest
//	rpolverify -record trace.json -mode adv2
//
// Verify a recorded trace (the verifier reconstructs the task, shard, and
// calibration deterministically from the trace's task name and seed):
//
//	rpolverify -verify trace.json -scheme v2
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"rpol/internal/adversary"
	"rpol/internal/dataset"
	"rpol/internal/gpu"
	"rpol/internal/lsh"
	"rpol/internal/modelzoo"
	"rpol/internal/prf"
	"rpol/internal/rpol"
	"rpol/internal/tensor"
	"rpol/internal/tracefile"
)

func main() {
	var (
		record = flag.String("record", "", "record a trace to this path")
		verify = flag.String("verify", "", "verify the trace at this path")
		task   = flag.String("task", "resnet18-cifar10", "modelzoo task (record)")
		mode   = flag.String("mode", "honest", "recording mode: honest | adv1 | adv2")
		scheme = flag.String("scheme", "v2", "verification scheme: v1 | v2")
		steps  = flag.Int("steps", 15, "training steps (record)")
		seed   = flag.Int64("seed", 1, "task seed")
	)
	flag.Parse()
	var err error
	switch {
	case *record != "" && *verify != "":
		err = errors.New("choose either -record or -verify")
	case *record != "":
		err = recordTrace(*record, *task, *mode, *steps, *seed)
	case *verify != "":
		err = verifyTrace(*verify, *scheme)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rpolverify:", err)
		os.Exit(1)
	}
}

// workerShard deterministically reconstructs the (probe, worker) data split
// for a task seed — the convention shared by record and verify.
func workerShard(taskName string, seed int64) (spec modelzoo.TaskSpec, probe, work *dataset.Dataset, err error) {
	spec, err = modelzoo.Get(taskName)
	if err != nil {
		return spec, nil, nil, err
	}
	_, train, _, err := spec.BuildProxy(seed)
	if err != nil {
		return spec, nil, nil, err
	}
	halves, err := train.Partition(2)
	if err != nil {
		return spec, nil, nil, err
	}
	return spec, halves[0], halves[1], nil
}

func recordTrace(path, taskName, mode string, steps int, seed int64) error {
	spec, _, work, err := workerShard(taskName, seed)
	if err != nil {
		return err
	}
	net, err := spec.BuildProxyNet(seed + 1)
	if err != nil {
		return err
	}
	p := rpol.TaskParams{
		Global:          net.ParamVector(),
		Hyper:           rpol.Hyper{Optimizer: "sgdm", LR: 0.02, BatchSize: spec.ProxyBatchSize},
		Nonce:           prf.DeriveNonce([]byte("rpolverify"), taskName, 0),
		Steps:           steps,
		CheckpointEvery: 5,
	}

	var (
		trace   *rpol.Trace
		gpuName = gpu.GA10.Name
	)
	switch mode {
	case "honest":
		worker, err := rpol.NewHonestWorker("recorded", gpu.GA10, seed+100, net, work)
		if err != nil {
			return err
		}
		if _, err := worker.RunEpoch(p); err != nil {
			return err
		}
		trace = worker.LastTrace()
	case "adv1":
		adv := adversary.NewAdv1("recorded", gpu.GT4, work.Len())
		if _, err := adv.RunEpoch(p); err != nil {
			return err
		}
		trace = traceFromOpener(adv, p)
	case "adv2":
		adv, err := adversary.NewAdv2("recorded", gpu.GA10, seed+100, net, work, 0.1, 0.5)
		if err != nil {
			return err
		}
		if _, err := adv.RunEpoch(p); err != nil {
			return err
		}
		trace = adv.LastTrace()
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}

	file, err := tracefile.FromTrace(taskName, seed, "recorded", gpuName, p, trace)
	if err != nil {
		return err
	}
	if err := file.Write(path); err != nil {
		return err
	}
	fmt.Printf("recorded %s trace (%d checkpoints) to %s\n", mode, len(trace.Checkpoints), path)
	return nil
}

// traceFromOpener rebuilds a trace by opening every checkpoint (used for
// adversaries that expose no LastTrace).
func traceFromOpener(opener rpol.ProofOpener, p rpol.TaskParams) *rpol.Trace {
	trace := &rpol.Trace{}
	for i := 0; i < p.NumCheckpoints(); i++ {
		w, err := opener.OpenCheckpoint(i)
		if err != nil {
			break
		}
		step := i * p.CheckpointEvery
		if step > p.Steps {
			step = p.Steps
		}
		trace.Checkpoints = append(trace.Checkpoints, w)
		trace.Steps = append(trace.Steps, step)
	}
	return trace
}

func verifyTrace(path, schemeName string) error {
	var scheme rpol.Scheme
	switch schemeName {
	case "v1":
		scheme = rpol.SchemeV1
	case "v2":
		scheme = rpol.SchemeV2
	default:
		return fmt.Errorf("unknown scheme %q", schemeName)
	}
	file, err := tracefile.Read(path)
	if err != nil {
		return err
	}
	spec, probe, work, err := workerShard(file.Task, file.Seed)
	if err != nil {
		return err
	}
	p, err := file.TaskParams()
	if err != nil {
		return err
	}
	trace, err := file.Trace()
	if err != nil {
		return err
	}

	// Calibrate β (and the LSH family under v2) exactly as the manager
	// would before the epoch.
	calNet, err := spec.BuildProxyNet(file.Seed + 1)
	if err != nil {
		return err
	}
	calibrator := &rpol.Calibrator{Net: calNet, Shard: probe, XFactor: 5, KLsh: 16}
	cal, fam, err := calibrator.Calibrate(p, gpu.G3090, gpu.GA10,
		[2]int64{file.Seed + 11, file.Seed + 12}, file.Seed+13)
	if err != nil {
		return err
	}
	if scheme == rpol.SchemeV2 {
		p.LSH = fam
	}

	// Rebuild the submission from the recorded trace. Binding the final
	// checkpoint reproduces exactly what the worker committed (see
	// rpol.BindFinalCheckpoint).
	update, err := rpol.BindFinalCheckpoint(trace, p.Global)
	if err != nil {
		return err
	}
	commit, digests, err := rpol.BuildCommitment(trace.Checkpoints, p.LSH)
	if err != nil {
		return err
	}
	result := &rpol.EpochResult{
		WorkerID:       file.WorkerID,
		Epoch:          p.Epoch,
		Update:         update,
		DataSize:       work.Len(),
		Commit:         commit,
		LSHDigests:     digests,
		NumCheckpoints: len(trace.Checkpoints),
	}

	verifyNet, err := spec.BuildProxyNet(file.Seed + 1)
	if err != nil {
		return err
	}
	device, err := gpu.NewDevice(gpu.G3090, file.Seed+500)
	if err != nil {
		return err
	}
	verifier := &rpol.Verifier{
		Scheme:  scheme,
		Net:     verifyNet,
		Device:  device,
		Beta:    cal.Beta,
		LSH:     fam,
		Samples: 3,
		Sampler: tensor.NewRNG(file.Seed + 600),
	}
	outcome, err := verifier.VerifySubmission(&traceOpener{trace: trace, fam: p.LSH}, work, result, p)
	if err != nil {
		return err
	}

	fmt.Printf("trace: task=%s worker=%s gpu=%s checkpoints=%d\n",
		file.Task, file.WorkerID, file.GPU, len(trace.Checkpoints))
	fmt.Printf("calibration: α=%.3g β=%.3g lsh={r=%.3g,k=%d,l=%d}\n",
		cal.Alpha, cal.Beta, cal.Params.R, cal.Params.K, cal.Params.L)
	fmt.Printf("sampled checkpoints: %v\n", outcome.SampledCheckpoints)
	if outcome.Accepted {
		fmt.Printf("VERDICT: ACCEPTED (LSH misses %d, double-checks %d, %d bytes of proofs)\n",
			outcome.LSHMisses, outcome.DoubleChecks, outcome.CommBytes)
		return nil
	}
	fmt.Printf("VERDICT: REJECTED — %s\n", outcome.FailReason)
	return nil
}

// traceOpener serves checkpoints from a decoded trace. Trace files record
// hash-list submissions, so Merkle proof pulls are answered by rebuilding
// the tree over the recorded checkpoints on first use.
type traceOpener struct {
	trace *rpol.Trace
	fam   *lsh.Family
	ec    *rpol.EpochCommitment
}

func (o *traceOpener) OpenCheckpoint(idx int) (tensor.Vector, error) {
	if idx < 0 || idx >= len(o.trace.Checkpoints) {
		return nil, fmt.Errorf("checkpoint %d of %d", idx, len(o.trace.Checkpoints))
	}
	return o.trace.Checkpoints[idx], nil
}

func (o *traceOpener) OpenProof(idx int) (rpol.LeafProof, error) {
	if o.ec == nil {
		ec, err := rpol.CommitTrace(nil, o.trace.Checkpoints, o.fam, true)
		if err != nil {
			return rpol.LeafProof{}, err
		}
		o.ec = ec
	}
	return o.ec.OpenProof(idx)
}
