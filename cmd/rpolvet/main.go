// Command rpolvet runs the repository's static-analysis suite
// (internal/lint): project-specific determinism and protocol-invariant
// checks built on the standard library's go/ast and go/types.
//
// Usage:
//
//	rpolvet ./...
//	rpolvet -json ./internal/commitment ./internal/wire
//
// rpolvet loads every non-test package of the enclosing module, runs the
// analyzers on the packages matching the given patterns (default ./...),
// and prints findings as file:line:col lines, or as a JSON report with
// -json. It exits 1 when there are findings, 2 on load errors, and 0 on a
// clean run. Deliberate exceptions are annotated in the source:
//
//	//rpolvet:ignore <analyzer> <reason>
//
// on the offending line or the line above it; suppressed findings stay
// visible in the report but do not affect the exit code.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"rpol/internal/lint"
)

func main() {
	os.Exit(rpolvet(os.Args[1:], os.Stdout, os.Stderr))
}

// report is the -json output shape.
type report struct {
	Module     string            `json:"module"`
	Analyzers  []analyzerInfo    `json:"analyzers"`
	Findings   []lint.Diagnostic `json:"findings"`
	Suppressed []lint.Diagnostic `json:"suppressed"`
}

type analyzerInfo struct {
	Name string `json:"name"`
	Doc  string `json:"doc"`
}

func rpolvet(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rpolvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit a JSON report instead of text lines")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "rpolvet:", err)
		return 2
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "rpolvet:", err)
		return 2
	}
	mod, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintln(stderr, "rpolvet:", err)
		return 2
	}

	var pkgs []*lint.Package
	for _, pkg := range mod.Packages {
		if matchesAny(patterns, mod.Path, pkg.PkgPath) {
			pkgs = append(pkgs, pkg)
		}
	}
	if len(pkgs) == 0 {
		fmt.Fprintf(stderr, "rpolvet: no packages match %s\n", strings.Join(patterns, " "))
		return 2
	}

	analyzers := lint.All()
	findings, suppressed := lint.Run(pkgs, analyzers)
	relativize(findings, cwd)
	relativize(suppressed, cwd)

	if *jsonOut {
		r := report{
			Module:     mod.Path,
			Analyzers:  make([]analyzerInfo, 0, len(analyzers)),
			Findings:   findings,
			Suppressed: suppressed,
		}
		if r.Findings == nil {
			r.Findings = []lint.Diagnostic{}
		}
		if r.Suppressed == nil {
			r.Suppressed = []lint.Diagnostic{}
		}
		for _, a := range analyzers {
			r.Analyzers = append(r.Analyzers, analyzerInfo{Name: a.Name, Doc: a.Doc})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(r); err != nil {
			fmt.Fprintln(stderr, "rpolvet:", err)
			return 2
		}
	} else {
		for _, d := range findings {
			fmt.Fprintln(stdout, d)
		}
		if len(findings) > 0 {
			fmt.Fprintf(stdout, "rpolvet: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// relativize rewrites absolute file positions relative to the working
// directory for stable, readable output.
func relativize(ds []lint.Diagnostic, cwd string) {
	for i := range ds {
		if rel, err := filepath.Rel(cwd, ds[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			ds[i].File = rel
		}
	}
}

// matchesAny reports whether pkgPath matches one of the go-style patterns:
// "./..." (everything), "./dir", "./dir/...", or absolute import paths with
// the same optional /... suffix.
func matchesAny(patterns []string, modPath, pkgPath string) bool {
	for _, p := range patterns {
		if matchPattern(p, modPath, pkgPath) {
			return true
		}
	}
	return false
}

func matchPattern(pattern, modPath, pkgPath string) bool {
	pattern = strings.TrimSuffix(pattern, "/")
	if pattern == "./..." || pattern == "..." || pattern == "all" {
		return true
	}
	if rel, ok := strings.CutPrefix(pattern, "./"); ok {
		if rel == "" {
			return pkgPath == modPath
		}
		pattern = modPath + "/" + rel
	} else if pattern == "." {
		return pkgPath == modPath
	}
	if sub, ok := strings.CutSuffix(pattern, "/..."); ok {
		return pkgPath == sub || strings.HasPrefix(pkgPath, sub+"/")
	}
	return pkgPath == pattern
}
