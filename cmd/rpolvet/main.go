// Command rpolvet runs the repository's static-analysis suite
// (internal/lint): project-specific determinism and protocol-invariant
// checks built on the standard library's go/ast and go/types.
//
// Usage:
//
//	rpolvet ./...
//	rpolvet -json ./internal/commitment ./internal/wire
//	rpolvet -sarif ./...
//	rpolvet -baseline .rpolvet-baseline.json ./...
//	rpolvet -diff ./...
//	rpolvet -fix ./...
//
// rpolvet loads every non-test package of the enclosing module, runs the
// analyzers on the packages matching the given patterns (default ./...),
// and prints findings as file:line:col lines, or as a JSON report with
// -json, or as SARIF 2.1.0 with -sarif. It exits 1 when there are findings,
// 2 on load errors, and 0 on a clean run.
//
// -fix applies the suggested fixes analyzers attach to findings, rewriting
// the source files in place; -diff previews the same rewrites as a diff
// without touching anything. With -fix the run fails only if unfixable
// findings remain, so a fix-clean tree is exactly one where -fix is a no-op.
//
// -baseline FILE loads a checked-in budget of known findings
// (.rpolvet-baseline.json): budgeted findings are reported as baselined
// instead of failing the run, any finding beyond the budget fails as usual,
// and a budget entry no longer backed by real findings is stale and fails
// the run until the baseline is re-written smaller (-writebaseline FILE) —
// the budget only ratchets downward. Deliberate per-line exceptions are
// annotated in the source:
//
//	//rpolvet:ignore <analyzer> <reason>
//
// on the offending line or the line above it; suppressed findings stay
// visible in the report but do not affect the exit code.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"rpol/internal/lint"
)

func main() {
	os.Exit(rpolvet(os.Args[1:], os.Stdout, os.Stderr))
}

// report is the -json output shape.
type report struct {
	Module     string            `json:"module"`
	Analyzers  []analyzerInfo    `json:"analyzers"`
	Findings   []lint.Diagnostic `json:"findings"`
	Suppressed []lint.Diagnostic `json:"suppressed"`
	// Baselined are findings absorbed by the -baseline budget; Stale are
	// budget entries no longer backed by findings (they fail the run).
	Baselined []lint.Diagnostic    `json:"baselined,omitempty"`
	Stale     []lint.BaselineEntry `json:"stale_baseline,omitempty"`
}

type analyzerInfo struct {
	Name string `json:"name"`
	Doc  string `json:"doc"`
}

func rpolvet(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rpolvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit a JSON report instead of text lines")
	sarifOut := fs.Bool("sarif", false, "emit a SARIF 2.1.0 report instead of text lines")
	applyFix := fs.Bool("fix", false, "apply suggested fixes to the source files; fails only on unfixable findings")
	diffOut := fs.Bool("diff", false, "preview suggested fixes as a diff without writing files")
	baselinePath := fs.String("baseline", "", "budget `file` of known findings; budgeted findings pass, stale budget fails")
	writeBaseline := fs.String("writebaseline", "", "write the current findings as a baseline budget to `file` and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(stderr, "rpolvet: -json and -sarif are mutually exclusive")
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "rpolvet:", err)
		return 2
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "rpolvet:", err)
		return 2
	}
	mod, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintln(stderr, "rpolvet:", err)
		return 2
	}

	var pkgs []*lint.Package
	for _, pkg := range mod.Packages {
		if matchesAny(patterns, mod.Path, pkg.PkgPath) {
			pkgs = append(pkgs, pkg)
		}
	}
	if len(pkgs) == 0 {
		fmt.Fprintf(stderr, "rpolvet: no packages match %s\n", strings.Join(patterns, " "))
		return 2
	}

	analyzers := lint.All()
	findings, suppressed := lint.Run(pkgs, analyzers)

	if *writeBaseline != "" {
		b := lint.NewBaseline(findings, root)
		if err := lint.WriteBaseline(*writeBaseline, b); err != nil {
			fmt.Fprintln(stderr, "rpolvet:", err)
			return 2
		}
		fmt.Fprintf(stdout, "rpolvet: wrote %d baseline entr(ies) covering %d finding(s) to %s\n",
			len(b.Budget), len(findings), *writeBaseline)
		return 0
	}

	var baselined []lint.Diagnostic
	var stale []lint.BaselineEntry
	if *baselinePath != "" {
		b, err := lint.LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(stderr, "rpolvet:", err)
			return 2
		}
		findings, baselined, stale = b.Apply(findings, root)
	}

	if *applyFix || *diffOut {
		return runFixes(findings, *diffOut, stdout, stderr, cwd, len(pkgs))
	}

	relativize(findings, cwd)
	relativize(suppressed, cwd)
	relativize(baselined, cwd)

	switch {
	case *jsonOut:
		r := report{
			Module:     mod.Path,
			Analyzers:  make([]analyzerInfo, 0, len(analyzers)),
			Findings:   findings,
			Suppressed: suppressed,
			Baselined:  baselined,
			Stale:      stale,
		}
		if r.Findings == nil {
			r.Findings = []lint.Diagnostic{}
		}
		if r.Suppressed == nil {
			r.Suppressed = []lint.Diagnostic{}
		}
		for _, a := range analyzers {
			r.Analyzers = append(r.Analyzers, analyzerInfo{Name: a.Name, Doc: a.Doc})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(r); err != nil {
			fmt.Fprintln(stderr, "rpolvet:", err)
			return 2
		}
	case *sarifOut:
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(lint.SARIFLog(analyzers, findings, suppressed)); err != nil {
			fmt.Fprintln(stderr, "rpolvet:", err)
			return 2
		}
	default:
		for _, d := range findings {
			fmt.Fprintln(stdout, d)
		}
		for _, e := range stale {
			fmt.Fprintf(stdout, "rpolvet: stale baseline entry: %s %s (budget exceeds remaining findings by %d); shrink it with -writebaseline\n",
				e.Analyzer, e.File, e.Count)
		}
		if len(findings) > 0 {
			fmt.Fprintf(stdout, "rpolvet: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		}
	}
	if len(findings) > 0 || len(stale) > 0 {
		return 1
	}
	return 0
}

// runFixes applies (or, in diff mode, previews) the suggested fixes carried
// by the findings. With -fix the run fails only when unfixable findings
// remain: a fix-clean tree is one where -fix rewrites nothing and exits 0.
func runFixes(findings []lint.Diagnostic, dryRun bool, stdout, stderr io.Writer, cwd string, npkgs int) int {
	patched, err := lint.ApplyFixes(findings, os.ReadFile)
	if err != nil {
		fmt.Fprintln(stderr, "rpolvet:", err)
		return 2
	}
	files := make([]string, 0, len(patched))
	for f := range patched {
		files = append(files, f)
	}
	sort.Strings(files)

	if dryRun {
		for _, f := range files {
			old, err := os.ReadFile(f)
			if err != nil {
				fmt.Fprintln(stderr, "rpolvet:", err)
				return 2
			}
			fmt.Fprint(stdout, lint.Diff(displayPath(f, cwd), old, patched[f]))
		}
	} else {
		for _, f := range files {
			if err := os.WriteFile(f, patched[f], 0o644); err != nil {
				fmt.Fprintln(stderr, "rpolvet:", err)
				return 2
			}
		}
		if len(files) > 0 {
			fmt.Fprintf(stdout, "rpolvet: applied fixes to %d file(s)\n", len(files))
		}
	}

	var unfixable []lint.Diagnostic
	for _, d := range findings {
		if len(d.Fixes) == 0 {
			unfixable = append(unfixable, d)
		}
	}
	relativize(unfixable, cwd)
	for _, d := range unfixable {
		fmt.Fprintln(stdout, d)
	}
	if len(unfixable) > 0 {
		fmt.Fprintf(stdout, "rpolvet: %d unfixable finding(s) in %d package(s)\n", len(unfixable), npkgs)
		return 1
	}
	return 0
}

// displayPath shortens an absolute path for output when it sits under the
// working directory.
func displayPath(file, cwd string) string {
	if rel, err := filepath.Rel(cwd, file); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return file
}

// relativize rewrites absolute file positions relative to the working
// directory for stable, readable output.
func relativize(ds []lint.Diagnostic, cwd string) {
	for i := range ds {
		ds[i].File = displayPath(ds[i].File, cwd)
		for j := range ds[i].Fixes {
			for k := range ds[i].Fixes[j].Edits {
				ds[i].Fixes[j].Edits[k].File = displayPath(ds[i].Fixes[j].Edits[k].File, cwd)
			}
		}
	}
}

// matchesAny reports whether pkgPath matches one of the go-style patterns:
// "./..." (everything), "./dir", "./dir/...", or absolute import paths with
// the same optional /... suffix.
func matchesAny(patterns []string, modPath, pkgPath string) bool {
	for _, p := range patterns {
		if matchPattern(p, modPath, pkgPath) {
			return true
		}
	}
	return false
}

func matchPattern(pattern, modPath, pkgPath string) bool {
	pattern = strings.TrimSuffix(pattern, "/")
	if pattern == "./..." || pattern == "..." || pattern == "all" {
		return true
	}
	if rel, ok := strings.CutPrefix(pattern, "./"); ok {
		if rel == "" {
			return pkgPath == modPath
		}
		pattern = modPath + "/" + rel
	} else if pattern == "." {
		return pkgPath == modPath
	}
	if sub, ok := strings.CutSuffix(pattern, "/..."); ok {
		return pkgPath == sub || strings.HasPrefix(pkgPath, sub+"/")
	}
	return pkgPath == pattern
}
