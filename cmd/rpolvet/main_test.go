package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestMatchPattern(t *testing.T) {
	cases := []struct {
		pattern, pkgPath string
		want             bool
	}{
		{"./...", "rpol/internal/wire", true},
		{"./...", "rpol", true},
		{".", "rpol", true},
		{".", "rpol/internal/wire", false},
		{"./internal/wire", "rpol/internal/wire", true},
		{"./internal/wire", "rpol/internal/wireless", false},
		{"./internal/...", "rpol/internal/wire", true},
		{"./internal/...", "rpol/examples/quickstart", false},
		{"rpol/internal/wire", "rpol/internal/wire", true},
		{"rpol/internal/...", "rpol/internal/lsh", true},
		{"./cmd/rpolvet/", "rpol/cmd/rpolvet", true},
		{"./internal/parallel", "rpol/internal/parallel", true},
		{"./...", "rpol/internal/parallel", true},
	}
	for _, tc := range cases {
		if got := matchPattern(tc.pattern, "rpol", tc.pkgPath); got != tc.want {
			t.Errorf("matchPattern(%q, %q) = %v, want %v", tc.pattern, tc.pkgPath, got, tc.want)
		}
	}
}

// TestSelfScanJSON runs the driver over the repository in JSON mode: the
// run must be clean (exit 0) and the report must list the full analyzer
// suite, which is the machine-readable surface CI and tooling consume.
func TestSelfScanJSON(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := rpolvet([]string{"-json", "./..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s, stdout: %s", code, stderr.String(), stdout.String())
	}
	var r report
	if err := json.Unmarshal(stdout.Bytes(), &r); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, stdout.String())
	}
	if r.Module != "rpol" {
		t.Errorf("module = %q", r.Module)
	}
	if len(r.Analyzers) < 9 {
		t.Errorf("report lists %d analyzers, want >= 9", len(r.Analyzers))
	}
	names := make(map[string]bool)
	for _, a := range r.Analyzers {
		names[a.Name] = true
	}
	for _, want := range []string{
		"nowallclock", "norandglobal", "maporder", "floateq", "nilsafeobs",
		"locksend", "durablewrite", "goroutineleak", "seedpurity",
	} {
		if !names[want] {
			t.Errorf("analyzer %q missing from report", want)
		}
	}
	if len(r.Findings) != 0 {
		t.Errorf("self-scan found %d findings: %v", len(r.Findings), r.Findings)
	}
}

// TestSARIFOutput checks the -sarif surface: a valid SARIF 2.1.0 envelope
// carrying one rule per analyzer and zero results on the clean repo.
func TestSARIFOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := rpolvet([]string{"-sarif", "./internal/lint"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	var s struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string            `json:"name"`
					Rules []json.RawMessage `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []json.RawMessage `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &s); err != nil {
		t.Fatalf("bad SARIF JSON: %v\n%s", err, stdout.String())
	}
	if s.Version != "2.1.0" || len(s.Runs) != 1 {
		t.Fatalf("version=%q runs=%d, want 2.1.0 with one run", s.Version, len(s.Runs))
	}
	if s.Runs[0].Tool.Driver.Name != "rpolvet" {
		t.Errorf("driver name = %q", s.Runs[0].Tool.Driver.Name)
	}
	if len(s.Runs[0].Tool.Driver.Rules) < 9 {
		t.Errorf("SARIF lists %d rules, want >= 9", len(s.Runs[0].Tool.Driver.Rules))
	}
	if len(s.Runs[0].Results) != 0 {
		t.Errorf("clean package produced %d SARIF results", len(s.Runs[0].Results))
	}

	stdout.Reset()
	stderr.Reset()
	if code := rpolvet([]string{"-json", "-sarif", "./..."}, &stdout, &stderr); code != 2 {
		t.Errorf("-json -sarif together: exit %d, want 2", code)
	}
}

// TestBaselineAndFixModes exercises the debt ledger and the fix engine
// against the real repository: the checked-in empty baseline passes, a
// written baseline round-trips, and -diff/-fix are no-ops on a fix-clean
// tree.
func TestBaselineAndFixModes(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := rpolvet([]string{"-baseline", "../../.rpolvet-baseline.json", "./internal/netsim"}, &stdout, &stderr); code != 0 {
		t.Fatalf("checked-in baseline: exit %d: %s%s", code, stdout.String(), stderr.String())
	}

	tmp := t.TempDir() + "/baseline.json"
	stdout.Reset()
	stderr.Reset()
	if code := rpolvet([]string{"-writebaseline", tmp, "./internal/netsim"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-writebaseline: exit %d: %s", code, stderr.String())
	}
	stdout.Reset()
	stderr.Reset()
	if code := rpolvet([]string{"-baseline", tmp, "./internal/netsim"}, &stdout, &stderr); code != 0 {
		t.Fatalf("reloading written baseline: exit %d: %s%s", code, stdout.String(), stderr.String())
	}

	stdout.Reset()
	stderr.Reset()
	if code := rpolvet([]string{"-diff", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("-diff on clean tree: exit %d: %s%s", code, stdout.String(), stderr.String())
	}
	if got := stdout.String(); got != "" {
		t.Errorf("-diff on a fix-clean tree produced output:\n%s", got)
	}
	stdout.Reset()
	stderr.Reset()
	if code := rpolvet([]string{"-fix", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("-fix on clean tree: exit %d: %s%s", code, stdout.String(), stderr.String())
	}
	if got := stdout.String(); got != "" {
		t.Errorf("-fix on a fix-clean tree produced output:\n%s", got)
	}
}

func TestPackageFilter(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := rpolvet([]string{"./internal/lint"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	// The deterministic compute runtime must stay clean without a single
	// //rpolvet:ignore — its determinism is structural, not suppressed.
	stdout.Reset()
	stderr.Reset()
	if code := rpolvet([]string{"./internal/parallel"}, &stdout, &stderr); code != 0 {
		t.Fatalf("internal/parallel scan: exit %d: %s", code, stderr.String())
	}
	// Same bar for the durability layer: crash recovery replays seeded fault
	// schedules bit-identically, which the analyzers' invariants (no wall
	// clock, no global rand, no map-order leakage) are load-bearing for.
	for _, pkg := range []string{"./internal/fsio", "./internal/journal"} {
		stdout.Reset()
		stderr.Reset()
		if code := rpolvet([]string{pkg}, &stdout, &stderr); code != 0 {
			t.Fatalf("%s scan: exit %d: %s", pkg, code, stderr.String())
		}
	}
	// The live observability plane and its dashboard must be clean with
	// zero suppressions: they run next to the deterministic protocol, so
	// every wall-clock touch has to route through internal/obs, not be
	// waived away.
	for _, pkg := range []string{"./internal/obshttp", "./internal/obscli", "./cmd/rpoltop"} {
		stdout.Reset()
		stderr.Reset()
		if code := rpolvet([]string{"-json", pkg}, &stdout, &stderr); code != 0 {
			t.Fatalf("%s scan: exit %d: %s", pkg, code, stderr.String())
		}
		var r report
		if err := json.Unmarshal(stdout.Bytes(), &r); err != nil {
			t.Fatalf("%s: bad JSON: %v", pkg, err)
		}
		if len(r.Suppressed) != 0 {
			t.Errorf("%s carries %d rpolvet:ignore suppressions, want none: %v",
				pkg, len(r.Suppressed), r.Suppressed)
		}
	}
	if code := rpolvet([]string{"./no/such/package"}, &stdout, &stderr); code != 2 {
		t.Errorf("unknown pattern: exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "no packages match") {
		t.Errorf("stderr = %q", stderr.String())
	}
}
