package main

import "testing"

func TestParseScheme(t *testing.T) {
	cases := map[string]bool{
		"baseline": true, "v1": true, "v2": true,
		"": false, "v3": false, "RPoLv1": false,
	}
	for in, ok := range cases {
		_, err := parseScheme(in)
		if ok && err != nil {
			t.Errorf("parseScheme(%q) = %v", in, err)
		}
		if !ok && err == nil {
			t.Errorf("parseScheme(%q) accepted", in)
		}
	}
}

func TestRunSmallSimulation(t *testing.T) {
	if err := run("resnet18-cifar10", "v2", 3, 0.34, 0, 1, 10, false, false, 1, "", false, nil, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	if err := run("resnet18-cifar10", "v9", 3, 0, 0, 1, 10, false, false, 1, "", false, nil, false); err == nil {
		t.Error("bad scheme accepted")
	}
	if err := run("unknown-task", "v1", 3, 0, 0, 1, 10, false, false, 1, "", false, nil, false); err == nil {
		t.Error("unknown task accepted")
	}
	if err := run("resnet18-cifar10", "v1", 0, 0, 0, 1, 10, false, false, 1, "", false, nil, false); err == nil {
		t.Error("zero workers accepted")
	}
	if err := run("resnet18-cifar10", "v1", 3, 0, 0, 1, 10, false, false, 1, "", true, nil, false); err == nil {
		t.Error("resume without journal accepted")
	}
}

func TestRunJournaledResume(t *testing.T) {
	dir := t.TempDir()
	// First run seals one epoch into the journal; the resumed run picks up
	// from it and finishes the second.
	if err := run("resnet18-cifar10", "v2", 2, 0, 0, 1, 6, false, false, 1, dir, false, nil, false); err != nil {
		t.Fatal(err)
	}
	if err := run("resnet18-cifar10", "v2", 2, 0, 0, 2, 6, false, false, 1, dir, true, nil, false); err != nil {
		t.Fatal(err)
	}
}
