// Command rpolsim runs a full mining-pool simulation: a manager coordinates
// honest and adversarial workers over several epochs with the selected
// verification scheme, printing per-epoch accuracy, detection counts, and
// the final reward distribution.
//
// Usage:
//
//	rpolsim -scheme v2 -workers 10 -adv1 0.2 -adv2 0.2 -epochs 6
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"rpol/internal/obs"
	"rpol/internal/obscli"
	"rpol/internal/pool"
	"rpol/internal/rpol"
)

func main() {
	var (
		task    = flag.String("task", "resnet18-cifar10", "modelzoo task name")
		scheme  = flag.String("scheme", "v2", "verification scheme: baseline | v1 | v2")
		workers = flag.Int("workers", 10, "pool size")
		adv1    = flag.Float64("adv1", 0, "fraction of replay attackers")
		adv2    = flag.Float64("adv2", 0, "fraction of spoofing attackers")
		epochs  = flag.Int("epochs", 5, "epochs to run")
		steps   = flag.Int("steps", 10, "training steps per epoch per worker")
		amlayer = flag.Bool("amlayer", true, "prepend the address-encoded mapping layer")
		merkle  = flag.Bool("merkle", false, "use streaming Merkle commitments (32-byte roots, on-demand proof pulls)")
		seed    = flag.Int64("seed", 1, "simulation seed")
		jdir    = flag.String("journal", "", "directory for the durable epoch journal (empty disables journaling)")
		resume  = flag.Bool("resume", false, "recover the pool's position from -journal before running (requires -journal)")
		linger  = flag.Duration("linger", 0, "keep the process (and any -serve/-pprof endpoints) alive this long after the run, e.g. 30s")
		obsOpts obscli.Options
	)
	obsOpts.Register(flag.CommandLine)
	flag.Parse()
	if *resume && *jdir == "" {
		fmt.Fprintln(os.Stderr, "rpolsim: -resume requires -journal")
		os.Exit(1)
	}
	observer, finishObs, err := obsOpts.Setup(os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rpolsim:", err)
		os.Exit(1)
	}
	if err := run(*task, *scheme, *workers, *adv1, *adv2, *epochs, *steps, *amlayer, *merkle, *seed, *jdir, *resume, observer, obsOpts.Table); err != nil {
		fmt.Fprintln(os.Stderr, "rpolsim:", err)
		os.Exit(1)
	}
	// -linger holds the -serve/-pprof endpoints open after the workload so
	// external scrapers (CI smoke, a late rpoltop) can still probe the
	// finished run; finishObs then shuts the listeners down.
	obs.WallSleep(*linger)
	if err := finishObs(); err != nil {
		fmt.Fprintln(os.Stderr, "rpolsim:", err)
		os.Exit(1)
	}
}

func parseScheme(s string) (rpol.Scheme, error) {
	switch s {
	case "baseline":
		return rpol.SchemeBaseline, nil
	case "v1":
		return rpol.SchemeV1, nil
	case "v2":
		return rpol.SchemeV2, nil
	default:
		return 0, fmt.Errorf("unknown scheme %q", s)
	}
}

func run(task, schemeName string, workers int, adv1, adv2 float64, epochs, steps int, useAMLayer, merkle bool, seed int64, jdir string, resume bool, observer *obs.Observer, phaseTable bool) error {
	scheme, err := parseScheme(schemeName)
	if err != nil {
		return err
	}
	p, err := pool.New(pool.Config{
		TaskName:      task,
		Scheme:        scheme,
		NumWorkers:    workers,
		Adv1Fraction:  adv1,
		Adv2Fraction:  adv2,
		StepsPerEpoch: steps,
		MerkleCommit:  merkle,
		UseAMLayer:    useAMLayer,
		Seed:          seed,
		Obs:           observer,
		Journal:       jdir,
		Resume:        resume,
	})
	if err != nil {
		return err
	}
	defer p.Close()

	fmt.Printf("pool: task=%s scheme=%s workers=%d adv1=%.0f%% adv2=%.0f%%\n\n",
		task, scheme, workers, adv1*100, adv2*100)
	if n := p.CompletedEpochs(); n > 0 {
		fmt.Printf("resumed from journal: %d epochs already sealed\n", n)
	}
	fmt.Println("epoch  accuracy  accepted  rejected  absent  detected  missed  false-rej  verify-comm")
	phases := obs.PhaseBreakdown{}
	for e := p.CompletedEpochs(); e < epochs; e++ {
		s, err := p.RunEpoch()
		if err != nil {
			return err
		}
		fmt.Printf("%5d  %8.4f  %8d  %8d  %6d  %8d  %6d  %9d  %8.1fKB\n",
			s.Epoch, s.TestAccuracy, s.Accepted, s.Rejected, s.AbsentWorkers,
			s.DetectedAdversaries, s.MissedAdversaries, s.FalseRejections,
			float64(s.VerifyCommBytes)/1024)
		phases.Merge(s.Phases)
	}
	if phaseTable {
		fmt.Println("\nper-phase totals:")
		fmt.Print(obs.PhaseTable(phases))
	}

	fmt.Println("\nrewards (accepted epochs):")
	rewards := p.Rewards()
	ids := make([]string, 0, len(rewards))
	for id := range rewards {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	roles := p.Roles()
	for _, id := range ids {
		fmt.Printf("  %-12s %-7s %.0f\n", id, roles[id], rewards[id])
	}
	return nil
}
