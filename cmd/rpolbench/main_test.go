package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunOneKnownIds(t *testing.T) {
	// The fast experiments run end-to-end; training-heavy ones are covered
	// by internal/experiments tests and the bench suite.
	for _, id := range []string{"fig1", "table2", "table3", "soundness", "ablation-commitment"} {
		table, err := runOne(id, 0, 0, 1, nil)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		out := table.Render()
		if len(out) == 0 || !strings.Contains(out, "-") {
			t.Errorf("%s produced no table", id)
		}
	}
}

func TestRunOneUnknownId(t *testing.T) {
	if _, err := runOne("fig99", 0, 0, 1, nil); err == nil {
		t.Error("want error for unknown experiment")
	}
}

func TestRunOneCaseInsensitive(t *testing.T) {
	if _, err := runOne("FIG1", 0, 0, 1, nil); err != nil {
		t.Errorf("upper-case id rejected: %v", err)
	}
}

func TestRunSingleTrainingExperiment(t *testing.T) {
	table, err := runOne("ablation-doublecheck", 2, 0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(table.Render(), "double-check") {
		t.Error("unexpected table content")
	}
}

func TestCSVExport(t *testing.T) {
	dir := t.TempDir()
	if err := run("soundness", 0, 0, 1, dir, nil); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "soundness.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 2 {
		t.Fatalf("csv has %d lines", len(lines))
	}
	if !strings.Contains(lines[0], "h_A") {
		t.Errorf("csv header = %q", lines[0])
	}
}
