// Command rpolbench regenerates the paper's tables and figures.
//
// Usage:
//
//	rpolbench -exp all
//	rpolbench -exp fig5 -epochs 6
//	rpolbench -exp table2
//
// Experiment ids: fig1, fig3, table1, fig4, fig5, fig6, table2, table3,
// soundness, ablation-commitment, ablation-doublecheck, ablation-interval,
// ablation-optimizer, ablation-sampling, all. Output is the textual table
// for each experiment (optionally also CSV via -csv); EXPERIMENTS.md maps
// every id to the corresponding paper artifact.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"rpol/internal/experiments"
	"rpol/internal/obs"
	"rpol/internal/obscli"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id (fig1|fig3|table1|fig4|fig5|fig6|table2|table3|soundness|ablation-commitment|ablation-doublecheck|ablation-interval|ablation-optimizer|ablation-sampling|all)")
		epochs  = flag.Int("epochs", 0, "override epochs for training-based experiments (0 = default)")
		workers = flag.Int("workers", 0, "override pool size for fig6 (0 = default)")
		seed    = flag.Int64("seed", 1, "experiment seed")
		csvDir  = flag.String("csv", "", "also write each experiment's rows to <dir>/<id>.csv")
		obsOpts obscli.Options
	)
	obsOpts.Register(flag.CommandLine)
	flag.Parse()
	// The observer is installed as the process default before any experiment
	// runs, so the pools each runner constructs internally record into it.
	_, finishObs, err := obsOpts.Setup(os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rpolbench:", err)
		os.Exit(1)
	}
	if err := run(*exp, *epochs, *workers, *seed, *csvDir, obsOpts.ProtocolClock()); err != nil {
		fmt.Fprintln(os.Stderr, "rpolbench:", err)
		os.Exit(1)
	}
	if err := finishObs(); err != nil {
		fmt.Fprintln(os.Stderr, "rpolbench:", err)
		os.Exit(1)
	}
}

// run executes the selected experiments. clock times the measured
// experiments (nil keeps the deterministic default; -wallclock passes an
// obs.WallClock).
func run(exp string, epochs, workers int, seed int64, csvDir string, clock obs.Clock) error {
	ids := []string{exp}
	if exp == "all" {
		ids = []string{
			"fig1", "fig3", "table1", "fig4", "fig5", "fig6",
			"table2", "table3", "soundness",
			"ablation-commitment", "ablation-doublecheck", "ablation-interval",
			"ablation-optimizer", "ablation-sampling",
		}
	}
	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return fmt.Errorf("csv dir: %w", err)
		}
	}
	for _, id := range ids {
		table, err := runOne(id, epochs, workers, seed, clock)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Println(table.Render())
		if csvDir != "" {
			if err := writeCSV(filepath.Join(csvDir, id+".csv"), table); err != nil {
				return fmt.Errorf("%s: %w", id, err)
			}
		}
	}
	return nil
}

// writeCSV exports a rendered experiment table for downstream plotting.
func writeCSV(path string, table *experiments.Table) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() { _ = f.Close() }()
	w := csv.NewWriter(f)
	if err := w.Write(table.Headers); err != nil {
		return err
	}
	if err := w.WriteAll(table.Rows); err != nil {
		return err
	}
	w.Flush()
	return w.Error()
}

func runOne(id string, epochs, workers int, seed int64, clock obs.Clock) (*experiments.Table, error) {
	switch strings.ToLower(id) {
	case "fig1":
		res, err := experiments.Fig1(experiments.Fig1Options{})
		if err != nil {
			return nil, err
		}
		return &res.Table, nil
	case "fig3":
		res, err := experiments.Fig3(experiments.Fig3Options{Epochs: epochs, Seed: seed, Clock: clock})
		if err != nil {
			return nil, err
		}
		return &res.Table, nil
	case "table1":
		res, err := experiments.Table1(experiments.Table1Options{Epochs: epochs, Seed: seed})
		if err != nil {
			return nil, err
		}
		return &res.Table, nil
	case "fig4":
		res, err := experiments.Fig4(experiments.Fig4Options{Seed: seed})
		if err != nil {
			return nil, err
		}
		return &res.Table, nil
	case "fig5":
		res, err := experiments.Fig5(experiments.Fig5Options{Epochs: epochs, Seed: seed})
		if err != nil {
			return nil, err
		}
		return &res.Table, nil
	case "fig6":
		res, err := experiments.Fig6(experiments.Fig6Options{
			Epochs: epochs, NumWorkers: workers, Seed: seed,
			AdversaryFractions: []float64{0.1, 0.3, 0.5, 0.7, 0.9},
		})
		if err != nil {
			return nil, err
		}
		return &res.Table, nil
	case "table2":
		res, err := experiments.Table2(experiments.Table2Options{})
		if err != nil {
			return nil, err
		}
		return &res.Table, nil
	case "table3":
		res, err := experiments.Table3(experiments.Table3Options{})
		if err != nil {
			return nil, err
		}
		return &res.Table, nil
	case "soundness":
		res, err := experiments.Soundness(experiments.SoundnessOptions{})
		if err != nil {
			return nil, err
		}
		return &res.Table, nil
	case "ablation-commitment":
		res, err := experiments.CommitmentAblation(nil, 0)
		if err != nil {
			return nil, err
		}
		return &res.Table, nil
	case "ablation-doublecheck":
		res, err := experiments.DoubleCheckAblation("", epochs, seed)
		if err != nil {
			return nil, err
		}
		return &res.Table, nil
	case "ablation-interval":
		res, err := experiments.IntervalSweep("", nil, seed, 0)
		if err != nil {
			return nil, err
		}
		return &res.Table, nil
	case "ablation-optimizer":
		res, err := experiments.OptimizerSweep(experiments.OptimizerSweepOptions{Seed: seed})
		if err != nil {
			return nil, err
		}
		return &res.Table, nil
	case "ablation-sampling":
		res, err := experiments.SamplingSweep(experiments.SamplingSweepOptions{Seed: seed})
		if err != nil {
			return nil, err
		}
		return &res.Table, nil
	default:
		return nil, fmt.Errorf("unknown experiment %q", id)
	}
}
