package rpol_test

import (
	"fmt"
	"log"

	rpol "rpol"
)

// ExampleNewPool runs one verified epoch of a small mining pool with a
// replay attacker and shows that verification separates honest workers from
// the cheater.
func ExampleNewPool() {
	p, err := rpol.NewPool(rpol.PoolConfig{
		TaskName:      "resnet18-cifar10",
		Scheme:        rpol.SchemeV2,
		NumWorkers:    4,
		Adv1Fraction:  0.25, // one replay attacker
		StepsPerEpoch: 10,
		Seed:          1,
	})
	if err != nil {
		log.Fatal(err)
	}
	stats, err := p.RunEpoch()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("accepted %d, detected %d adversaries, %d honest rejected\n",
		stats.Accepted, stats.DetectedAdversaries, stats.FalseRejections)
	// Output:
	// accepted 3, detected 1 adversaries, 0 honest rejected
}

// ExampleSamplesForSoundness reproduces the paper's Sec. VI sample counts.
func ExampleSamplesForSoundness() {
	for _, h := range []float64{0.10, 0.90} {
		q, err := rpol.SamplesForSoundness(0.01, h, 0.05)
		if err != nil {
			log.Fatal(err)
		}
		econ, err := rpol.SamplesForNegativeGain(h, 0.88, 0, 0.05)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("h=%.0f%%: q=%d for 1%% soundness, q=%d to unprofit the attacker\n",
			h*100, q, econ)
	}
	// Output:
	// h=10%: q=3 for 1% soundness, q=2 to unprofit the attacker
	// h=90%: q=47 for 1% soundness, q=3 to unprofit the attacker
}
