package experiments

import (
	"fmt"

	"rpol/internal/dataset"
	"rpol/internal/gpu"
	"rpol/internal/modelzoo"
	"rpol/internal/prf"
	"rpol/internal/rpol"
	"rpol/internal/stats"
)

// Fig4Options configures the reproduction-error study.
type Fig4Options struct {
	// Task is the modelzoo task (paper: ResNet18 on CIFAR-10).
	Task string
	// Shards is the number of i.i.d. sub-datasets (paper: 5 × 10 000).
	Shards int
	// StepsPerEpoch and CheckpointEvery set the probe workload (paper's
	// checkpoint interval is 5).
	StepsPerEpoch   int
	CheckpointEvery int
	Seed            int64
}

func (o *Fig4Options) defaults() {
	if o.Task == "" {
		o.Task = "resnet18-cifar10"
	}
	if o.Shards <= 0 {
		o.Shards = 5
	}
	if o.StepsPerEpoch <= 0 {
		o.StepsPerEpoch = 30
	}
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = 5
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// Fig4Cell is the reproduction-error statistic for one (GPU pair, shard).
type Fig4Cell struct {
	Pair       string
	Shard      int
	MaxError   float64 // the paper's mean+std "maximum"
	MeanError  float64
	KSPValue   float64
	NormalDist bool
}

// Fig4Result reproduces Fig. 4: reproduction errors per GPU pair and i.i.d.
// sub-dataset, with the Kolmogorov–Smirnov normality verdict.
type Fig4Result struct {
	Cells []Fig4Cell
	// PairMax maps each pair label to its mean "maximum" error across
	// shards — the quantity whose ordering the paper reports.
	PairMax map[string]float64
	Table   Table
}

// Fig4 measures training reproduction errors across GPU pairs and shards.
func Fig4(opts Fig4Options) (*Fig4Result, error) {
	opts.defaults()
	spec, err := modelzoo.Get(opts.Task)
	if err != nil {
		return nil, err
	}
	_, train, _, err := spec.BuildProxy(opts.Seed)
	if err != nil {
		return nil, err
	}
	shards, err := train.Partition(opts.Shards)
	if err != nil {
		return nil, err
	}

	pairs := []struct {
		label string
		a, b  gpu.Profile
	}{
		{"G3090+G3090", gpu.G3090, gpu.G3090},
		{"GA10+GA10", gpu.GA10, gpu.GA10},
		{"GT4+GT4", gpu.GT4, gpu.GT4},
		{"G3090+GA10", gpu.G3090, gpu.GA10},
		{"G3090+GP100", gpu.G3090, gpu.GP100},
		{"GP100+GT4", gpu.GP100, gpu.GT4},
	}

	res := &Fig4Result{
		PairMax: make(map[string]float64, len(pairs)),
		Table: Table{
			Caption: fmt.Sprintf("Fig. 4 — reproduction errors (%s) per GPU pair and i.i.d. shard", opts.Task),
			Headers: []string{"pair", "shard", "mean err", "max err (mean+std)", "KS p-value", "normal?"},
		},
	}
	for _, pair := range pairs {
		var pairErrs []float64
		for si, shard := range shards {
			errsList, err := measureShardErrors(spec, shard, pair.a, pair.b, opts, int64(si))
			if err != nil {
				return nil, fmt.Errorf("fig4 %s shard %d: %w", pair.label, si, err)
			}
			summary, err := stats.Summarize(errsList)
			if err != nil {
				return nil, err
			}
			// The KS normality test needs at least 3 checkpoints; tiny probe
			// configurations simply report "not established".
			var ks stats.KSResult
			if len(errsList) >= 3 {
				ks, err = stats.KSTestNormal(errsList)
				if err != nil {
					return nil, err
				}
			}
			cell := Fig4Cell{
				Pair:       pair.label,
				Shard:      si,
				MaxError:   summary.MeanPlusSD,
				MeanError:  summary.Mean,
				KSPValue:   ks.PValue,
				NormalDist: ks.Normal,
			}
			res.Cells = append(res.Cells, cell)
			res.Table.Add(pair.label, si, cell.MeanError, cell.MaxError, cell.KSPValue, cell.NormalDist)
			pairErrs = append(pairErrs, summary.MeanPlusSD)
		}
		m, err := stats.Mean(pairErrs)
		if err != nil {
			return nil, err
		}
		res.PairMax[pair.label] = m
	}
	return res, nil
}

// measureShardErrors runs the same sub-task on two devices and returns the
// per-checkpoint reproduction distances.
func measureShardErrors(spec modelzoo.TaskSpec, shard *dataset.Dataset, a, b gpu.Profile, opts Fig4Options, shardSeed int64) ([]float64, error) {
	params := rpol.TaskParams{
		Hyper:           rpol.Hyper{Optimizer: "sgdm", LR: 0.02, BatchSize: spec.ProxyBatchSize},
		Nonce:           prf.DeriveNonce([]byte("fig4"), spec.Name, int(shardSeed)),
		Steps:           opts.StepsPerEpoch,
		CheckpointEvery: opts.CheckpointEvery,
	}
	run := func(profile gpu.Profile, runSeed int64) (*rpol.Trace, error) {
		net, err := spec.BuildProxyNet(opts.Seed + 1)
		if err != nil {
			return nil, err
		}
		params.Global = net.ParamVector()
		device, err := gpu.NewDevice(profile, runSeed)
		if err != nil {
			return nil, err
		}
		trainer := &rpol.Trainer{Net: net, Shard: shard, Device: device}
		return trainer.RunEpoch(params)
	}
	t1, err := run(a, opts.Seed*1000+shardSeed*2+1)
	if err != nil {
		return nil, err
	}
	t2, err := run(b, opts.Seed*1000+shardSeed*2+2)
	if err != nil {
		return nil, err
	}
	return rpol.TraceDistances(t1, t2)
}
