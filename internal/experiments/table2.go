package experiments

import (
	"fmt"
	"time"

	"rpol/internal/gpu"
	"rpol/internal/modelzoo"
	"rpol/internal/netsim"
)

// CostModelOptions parameterizes the paper-scale epoch cost model shared by
// Table II and Table III.
type CostModelOptions struct {
	// Samples is q (paper: 3); CheckpointEvery is the interval i (paper: 5).
	Samples         int
	CheckpointEvery int
	// Manager and Worker link capacities (paper: 10 Gbps / 100 Mbps).
	Manager, Worker netsim.LinkSpec
	// WorkerGPU runs worker training; ManagerGPU runs verification.
	WorkerGPU, ManagerGPU gpu.Profile
}

func (o *CostModelOptions) defaults() {
	if o.Samples <= 0 {
		o.Samples = 3
	}
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = 5
	}
	if o.Manager.UpBps == 0 {
		o.Manager = netsim.ManagerLink
	}
	if o.Worker.UpBps == 0 {
		o.Worker = netsim.WorkerLink
	}
	if o.WorkerGPU.TFLOPS == 0 {
		o.WorkerGPU = gpu.G3090
	}
	if o.ManagerGPU.TFLOPS == 0 {
		o.ManagerGPU = gpu.G3090
	}
}

// EpochCost is the paper-scale cost breakdown of one distributed epoch for
// a given scheme and pool size.
type EpochCost struct {
	Task    string
	Scheme  string
	Workers int

	// Wall-clock components.
	Download, Compute, Upload, VerifyComm time.Duration
	// Total is the epoch's wall time. Verification *re-execution* and the
	// manager's calibration probe are pipelined with the next epoch's
	// training on the manager's spare capacity (the paper notes manager-side
	// parallelism, Sec. VII-E), so they appear in the computation bill below
	// but not in Total.
	Total time.Duration

	// Resource bills for Table III.
	ManagerComp time.Duration // verification re-execution + calibration probe
	WorkerComp  time.Duration // one worker's training time
	CommBytes   int64         // total epoch traffic: result uploads + verification
	// StorageBytes is one worker's checkpoint archive (plus LSH projections
	// under v2).
	StorageBytes int64
}

// ComputeEpochCost evaluates the cost model for one (task, scheme, pool
// size) cell. Scheme strings: "baseline", "RPoLv1", "RPoLv2".
func ComputeEpochCost(taskName, scheme string, workers int, opts CostModelOptions) (*EpochCost, error) {
	opts.defaults()
	spec, err := modelzoo.Get(taskName)
	if err != nil {
		return nil, err
	}
	if workers < 1 {
		return nil, fmt.Errorf("experiments: %d workers", workers)
	}
	workerDev, err := gpu.NewDevice(opts.WorkerGPU, 1)
	if err != nil {
		return nil, err
	}
	managerDev, err := gpu.NewDevice(opts.ManagerGPU, 2)
	if err != nil {
		return nil, err
	}

	modelBytes := spec.ModelBytes
	c := &EpochCost{Task: taskName, Scheme: scheme, Workers: workers}

	// Baseline epoch: global model fan-out, shard training, update fan-in.
	c.Download, err = netsim.FanOutTime(workers, modelBytes, opts.Manager, opts.Worker)
	if err != nil {
		return nil, err
	}
	c.Compute = workerDev.ExecTime(spec.FLOPsPerShardEpoch(workers))
	c.WorkerComp = c.Compute
	c.Upload, err = netsim.FanInTime(workers, modelBytes, opts.Manager, opts.Worker)
	if err != nil {
		return nil, err
	}
	// Traffic bill counts result uploads (the paper's Table III baseline of
	// 8.8 GB for 100 ResNet50 workers matches uploads only; the global
	// model download is amortized/cached).
	c.CommBytes = int64(workers) * modelBytes

	steps := spec.StepsPerShardEpoch(workers)
	numCheckpoints := steps/opts.CheckpointEvery + 1
	if steps%opts.CheckpointEvery != 0 {
		numCheckpoints++
	}

	switch scheme {
	case "baseline":
		// Workers keep only the current model.
		c.StorageBytes = modelBytes
	case "RPoLv1", "RPoLv2":
		// Workers archive every checkpoint for proof serving.
		c.StorageBytes = int64(numCheckpoints) * modelBytes

		// Verification communication: q samples per worker; v1 ships input
		// and output weights, v2 ships input weights plus a digest
		// (double-checks are rare enough to ignore at this scale,
		// Sec. VII-D).
		transfersPerSample := int64(2)
		if scheme == "RPoLv2" {
			transfersPerSample = 1
		}
		verifyBytesPerWorker := int64(opts.Samples) * transfersPerSample * modelBytes
		c.VerifyComm, err = netsim.FanInTime(workers, verifyBytesPerWorker, opts.Manager, opts.Worker)
		if err != nil {
			return nil, err
		}
		c.CommBytes += int64(workers) * verifyBytesPerWorker

		// Manager re-execution: q × interval steps per worker.
		flopsPerStep := spec.FLOPsPerExample * float64(spec.BatchSize)
		reexecFLOPs := float64(workers) * float64(opts.Samples) * float64(opts.CheckpointEvery) * flopsPerStep
		c.ManagerComp = managerDev.ExecTime(reexecFLOPs)

		if scheme == "RPoLv2" {
			// Calibration probe: the manager trains its own 1/(n+1) shard
			// twice (once per top-2 GPU; runs are parallel across the two
			// devices but both bill compute time).
			probe := managerDev.ExecTime(spec.FLOPsPerShardEpoch(workers + 1))
			c.ManagerComp += 2 * probe
			// LSH projections a ∈ R^(k·l × d) stored as fp32 alongside the
			// checkpoints — the paper's ≈30 % extra storage for
			// "LSH-related parameters".
			const kLsh = 16
			c.StorageBytes += int64(kLsh) * int64(spec.ParamCount) * 4
		}
	default:
		return nil, fmt.Errorf("experiments: unknown scheme %q", scheme)
	}

	c.Total = c.Download + c.Compute + c.Upload + c.VerifyComm
	return c, nil
}

// Table2Result reproduces Table II: one-epoch training time per scheme.
type Table2Result struct {
	Cells []EpochCost
	Table Table
}

// Table2Options configures the epoch-time table.
type Table2Options struct {
	Tasks   []string
	Workers []int
	Cost    CostModelOptions
}

func (o *Table2Options) defaults() {
	if len(o.Tasks) == 0 {
		o.Tasks = []string{"resnet50-imagenet", "vgg16-imagenet"}
	}
	if len(o.Workers) == 0 {
		o.Workers = []int{10, 100}
	}
}

// Table2 computes the one-epoch training time of baseline / RPoLv1 / RPoLv2
// at paper scale.
func Table2(opts Table2Options) (*Table2Result, error) {
	opts.defaults()
	res := &Table2Result{Table: Table{
		Caption: "Table II — one-epoch training time (paper-scale cost model)",
		Headers: []string{"task", "workers", "baseline (s)", "RPoLv1 (s)", "RPoLv2 (s)"},
	}}
	for _, task := range opts.Tasks {
		for _, n := range opts.Workers {
			row := []any{task, n}
			for _, scheme := range []string{"baseline", "RPoLv1", "RPoLv2"} {
				cell, err := ComputeEpochCost(task, scheme, n, opts.Cost)
				if err != nil {
					return nil, err
				}
				res.Cells = append(res.Cells, *cell)
				row = append(row, cell.Total.Seconds())
			}
			res.Table.Add(row...)
		}
	}
	return res, nil
}
