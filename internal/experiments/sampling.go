package experiments

import (
	"fmt"
	"math"

	"rpol/internal/adversary"
	"rpol/internal/gpu"
	"rpol/internal/modelzoo"
	"rpol/internal/prf"
	"rpol/internal/rpol"
	"rpol/internal/tensor"
)

// SamplingSweepOptions configures the empirical soundness experiment.
type SamplingSweepOptions struct {
	// Task is the modelzoo task.
	Task string
	// HonestFraction is the attacker's share of honestly trained intervals
	// (Theorem 2's h_A).
	HonestFraction float64
	// Trials is the number of independent attacker submissions per q.
	Trials int
	// StepsPerEpoch and CheckpointEvery set the epoch shape; the number of
	// intervals bounds the sweep's q.
	StepsPerEpoch   int
	CheckpointEvery int
	Seed            int64
}

func (o *SamplingSweepOptions) defaults() {
	if o.Task == "" {
		o.Task = "resnet18-cifar10"
	}
	if o.HonestFraction <= 0 {
		o.HonestFraction = 0.5
	}
	if o.Trials <= 0 {
		o.Trials = 20
	}
	if o.StepsPerEpoch <= 0 {
		o.StepsPerEpoch = 30
	}
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = 5
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// SamplingSweepRow is one q's measured and predicted evasion rate.
type SamplingSweepRow struct {
	Q int
	// EmpiricalEvasion is the fraction of attacker submissions accepted.
	EmpiricalEvasion float64
	// BoundWithoutReplacement is the exact evasion probability for
	// without-replacement sampling of q intervals when `honest` of `total`
	// are genuine: C(honest, q)/C(total, q).
	BoundWithoutReplacement float64
	// TheoremBound is Theorem 2's (h_A)^q with Pr_lsh(β) ≈ 0 —
	// the with-replacement approximation the paper reports.
	TheoremBound float64
}

// SamplingSweepResult is the empirical counterpart of Theorem 2: evasion
// probability versus the number of sampled checkpoints q for an Adv2-style
// attacker.
type SamplingSweepResult struct {
	Intervals       int
	HonestIntervals int
	Rows            []SamplingSweepRow
	Table           Table
}

// SamplingSweep measures how the verifier's sample count q drives the
// probability that a partially honest attacker evades detection, and
// compares it with the analytical bounds.
func SamplingSweep(opts SamplingSweepOptions) (*SamplingSweepResult, error) {
	opts.defaults()
	spec, err := modelzoo.Get(opts.Task)
	if err != nil {
		return nil, err
	}
	_, train, _, err := spec.BuildProxy(opts.Seed)
	if err != nil {
		return nil, err
	}
	halves, err := train.Partition(2)
	if err != nil {
		return nil, err
	}

	// Calibrate β once; the error profile is stable across trials.
	calNet, err := spec.BuildProxyNet(opts.Seed + 1)
	if err != nil {
		return nil, err
	}
	baseParams := rpol.TaskParams{
		Global:          calNet.ParamVector(),
		Hyper:           rpol.Hyper{Optimizer: "sgdm", LR: 0.02, BatchSize: spec.ProxyBatchSize},
		Nonce:           prf.DeriveNonce([]byte("sampling-sweep"), opts.Task, 0),
		Steps:           opts.StepsPerEpoch,
		CheckpointEvery: opts.CheckpointEvery,
	}
	calibrator := &rpol.Calibrator{Net: calNet, Shard: halves[0], XFactor: 5, KLsh: 16}
	cal, _, err := calibrator.Calibrate(baseParams, gpu.G3090, gpu.GA10,
		[2]int64{opts.Seed + 1, opts.Seed + 2}, opts.Seed+3)
	if err != nil {
		return nil, err
	}

	intervals := baseParams.NumCheckpoints() - 1
	res := &SamplingSweepResult{Intervals: intervals}
	res.Table = Table{
		Caption: fmt.Sprintf("Ablation — evasion rate vs sample count q (h_A=%.0f%%, %d intervals, %d trials)",
			opts.HonestFraction*100, intervals, opts.Trials),
		Headers: []string{"q", "empirical evasion", "exact bound (w/o repl.)", "Theorem 2 bound"},
	}

	// Pre-generate one attacker submission per trial; each is then verified
	// under every q (fresh samplers), reusing the expensive training.
	type trial struct {
		adv    *adversary.Adv2
		result *rpol.EpochResult
		params rpol.TaskParams
	}
	trials := make([]trial, 0, opts.Trials)
	var honestIntervals int
	for i := 0; i < opts.Trials; i++ {
		advNet, err := spec.BuildProxyNet(opts.Seed + 1)
		if err != nil {
			return nil, err
		}
		p := baseParams
		p.Nonce = prf.DeriveNonce([]byte("sampling-sweep"), opts.Task, i+1)
		adv, err := adversary.NewAdv2(fmt.Sprintf("adv-%d", i), gpu.GA10, opts.Seed+int64(100+i),
			advNet, halves[1], opts.HonestFraction, 0.5)
		if err != nil {
			return nil, err
		}
		honestIntervals = int(math.Ceil(opts.HonestFraction * float64(intervals)))
		result, err := adv.RunEpoch(p)
		if err != nil {
			return nil, err
		}
		trials = append(trials, trial{adv: adv, result: result, params: p})
	}
	res.HonestIntervals = honestIntervals

	for q := 1; q <= intervals; q++ {
		evasions := 0
		for i, tr := range trials {
			verifyNet, err := spec.BuildProxyNet(opts.Seed + 1)
			if err != nil {
				return nil, err
			}
			device, err := gpu.NewDevice(gpu.G3090, opts.Seed+int64(1000+q*100+i))
			if err != nil {
				return nil, err
			}
			verifier := &rpol.Verifier{
				Scheme: rpol.SchemeV1, Net: verifyNet, Device: device,
				Beta: cal.Beta, Samples: q,
				Sampler: tensor.NewRNG(opts.Seed + int64(q*1000+i)),
			}
			out, err := verifier.VerifySubmission(tr.adv, halves[1], tr.result, tr.params)
			if err != nil {
				return nil, err
			}
			if out.Accepted {
				evasions++
			}
		}
		row := SamplingSweepRow{
			Q:                       q,
			EmpiricalEvasion:        float64(evasions) / float64(len(trials)),
			BoundWithoutReplacement: hypergeomAllHonest(honestIntervals, intervals, q),
			TheoremBound:            math.Pow(opts.HonestFraction, float64(q)),
		}
		res.Rows = append(res.Rows, row)
		res.Table.Add(row.Q, row.EmpiricalEvasion, row.BoundWithoutReplacement, row.TheoremBound)
	}
	return res, nil
}

// hypergeomAllHonest returns C(honest, q)/C(total, q): the probability that
// q distinct samples all land on honestly trained intervals.
func hypergeomAllHonest(honest, total, q int) float64 {
	if q > honest {
		return 0
	}
	p := 1.0
	for i := 0; i < q; i++ {
		p *= float64(honest-i) / float64(total-i)
	}
	return p
}
