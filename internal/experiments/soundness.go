package experiments

import (
	"errors"

	"rpol/internal/economics"
)

// SoundnessOptions configures the Sec. VI analysis table.
type SoundnessOptions struct {
	// HonestyRatios to tabulate (paper highlights 10 % and 90 %).
	HonestyRatios []float64
	// PrErr is the target soundness error (paper: 1 %).
	PrErr float64
	// PrLshBeta is Pr_lsh(β) (paper: 5 %).
	PrLshBeta float64
	// CTrain and CSpoof are the economic parameters (paper: 0.88, 0).
	CTrain, CSpoof float64
}

func (o *SoundnessOptions) defaults() {
	if len(o.HonestyRatios) == 0 {
		o.HonestyRatios = []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	}
	if o.PrErr <= 0 {
		o.PrErr = 0.01
	}
	if o.PrLshBeta <= 0 {
		o.PrLshBeta = 0.05
	}
	if o.CTrain <= 0 {
		o.CTrain = 0.88
	}
}

// SoundnessRow is one honesty ratio's analysis.
type SoundnessRow struct {
	HonestyRatio float64
	// QSoundness is Eq. (8)'s sample count for the target soundness error.
	QSoundness int
	// QEconomic is Eq. (11)'s sample count for non-positive attacker gain.
	QEconomic int
	// GainAtQEconomic is the attacker's bounded net gain at q = QEconomic.
	GainAtQEconomic float64
	// ErrAtQ3 is the soundness error at the evaluation's q = 3.
	ErrAtQ3 float64
}

// SoundnessResult reproduces the Sec. VI worked numbers: the q required by
// pure soundness versus the (much smaller) q required once attacker
// economics are taken into account — the justification for the evaluation's
// q = 3.
type SoundnessResult struct {
	Rows  []SoundnessRow
	Table Table
}

// Soundness tabulates Eq. (8) and Eq. (11) across honesty ratios.
func Soundness(opts SoundnessOptions) (*SoundnessResult, error) {
	opts.defaults()
	res := &SoundnessResult{Table: Table{
		Caption: "Sec. VI — samples required: cryptographic vs economic soundness",
		Headers: []string{"h_A", "q (Pr_err≤1%)", "q (G_A≤0)", "G_A at q_econ", "soundness err at q=3"},
	}}
	for _, h := range opts.HonestyRatios {
		row := SoundnessRow{HonestyRatio: h}
		var err error
		row.QSoundness, err = economics.SamplesForSoundness(opts.PrErr, h, opts.PrLshBeta)
		if err != nil {
			return nil, err
		}
		row.QEconomic, err = economics.SamplesForNegativeGain(h, opts.CTrain, opts.CSpoof, opts.PrLshBeta)
		if err != nil {
			return nil, err
		}
		row.GainAtQEconomic, err = economics.AttackerGain(economics.GainParams{
			HonestyRatio: h, CTrain: opts.CTrain, CSpoof: opts.CSpoof,
			PrLshAlpha: 0.95, PrLshBeta: opts.PrLshBeta, Samples: row.QEconomic,
		})
		if err != nil {
			return nil, err
		}
		row.ErrAtQ3, err = economics.SoundnessError(h, opts.PrLshBeta, 3)
		if err != nil {
			return nil, err
		}
		if row.QEconomic > row.QSoundness {
			return nil, errors.New("experiments: economic q exceeded cryptographic q — model inconsistency")
		}
		res.Rows = append(res.Rows, row)
		res.Table.Add(row.HonestyRatio, row.QSoundness, row.QEconomic, row.GainAtQEconomic, row.ErrAtQ3)
	}
	return res, nil
}
