package experiments

import (
	"fmt"

	"rpol/internal/lsh"
)

// Fig1Options configures the LSH match-probability sweep.
type Fig1Options struct {
	// Alpha and Beta anchor the sweep: the similar-data and dissimilar-data
	// distance bounds (defaults 0.2 and 1.0, i.e. β = 5α as in the
	// evaluation).
	Alpha, Beta float64
	// Points is the number of distances sampled per curve.
	Points int
	// KLsh is the budget for the optimized parameter set.
	KLsh int
}

func (o *Fig1Options) defaults() {
	if o.Alpha <= 0 {
		o.Alpha = 0.2
	}
	if o.Beta <= o.Alpha {
		o.Beta = 5 * o.Alpha
	}
	if o.Points <= 0 {
		o.Points = 17
	}
	if o.KLsh <= 0 {
		o.KLsh = 16
	}
}

// Fig1Result holds the probability curves of Fig. 1: the relationship
// between LSH matching probability and data distance under varied LSH
// parameters, plus the optimizer's pick.
type Fig1Result struct {
	Distances []float64
	// Curves maps a parameter-set label to its match probabilities at each
	// distance.
	Curves map[string][]float64
	// Optimal is the parameter set Eq. (6) selects for (α, β).
	Optimal lsh.Params
	// PrAlpha and PrBeta are the optimal set's probabilities at the bounds
	// (the paper targets ≈95 % and ≈5 %).
	PrAlpha, PrBeta float64
	Table           Table
}

// Fig1 sweeps match probability against distance for several (r, k, l)
// settings including the optimized one, reproducing Fig. 1's S-curves: high
// match probability below α, low above β, sharper with larger k·l.
func Fig1(opts Fig1Options) (*Fig1Result, error) {
	opts.defaults()
	optimal, _, _, err := lsh.Optimize(opts.Alpha, opts.Beta, lsh.OptimizeOptions{KLsh: opts.KLsh})
	if err != nil {
		return nil, err
	}
	paramSets := []struct {
		label  string
		params lsh.Params
	}{
		{"loose (k=1,l=1)", lsh.Params{R: optimal.R, K: 1, L: 1}},
		{"wide (k=2,l=8)", lsh.Params{R: optimal.R, K: 2, L: 8}},
		{"sharp (k=8,l=2)", lsh.Params{R: optimal.R, K: 8, L: 2}},
		{fmt.Sprintf("optimal (r=%.3g,k=%d,l=%d)", optimal.R, optimal.K, optimal.L), optimal},
	}

	res := &Fig1Result{
		Curves:  make(map[string][]float64, len(paramSets)),
		Optimal: optimal,
		PrAlpha: lsh.MatchProb(opts.Alpha, optimal),
		PrBeta:  lsh.MatchProb(opts.Beta, optimal),
	}
	maxDist := 1.5 * opts.Beta
	for i := 0; i < opts.Points; i++ {
		res.Distances = append(res.Distances, maxDist*float64(i)/float64(opts.Points-1))
	}
	res.Table = Table{
		Caption: fmt.Sprintf("Fig. 1 — LSH matching probability vs distance (α=%.3g, β=%.3g)", opts.Alpha, opts.Beta),
		Headers: []string{"distance"},
	}
	for _, ps := range paramSets {
		res.Table.Headers = append(res.Table.Headers, ps.label)
		curve := make([]float64, len(res.Distances))
		for i, c := range res.Distances {
			curve[i] = lsh.MatchProb(c, ps.params)
		}
		res.Curves[ps.label] = curve
	}
	for i, c := range res.Distances {
		row := []any{c}
		for _, ps := range paramSets {
			row = append(row, res.Curves[ps.label][i])
		}
		res.Table.Add(row...)
	}
	return res, nil
}
