package experiments

import (
	"fmt"

	"rpol/internal/gpu"
	"rpol/internal/modelzoo"
	"rpol/internal/prf"
	"rpol/internal/rpol"
	"rpol/internal/stats"
)

// OptimizerSweepOptions configures the optimizer reproduction-error study.
type OptimizerSweepOptions struct {
	// Task is the modelzoo task.
	Task string
	// Optimizers to compare (paper: SGDM, RMSprop, Adam, Sec. VII-C).
	Optimizers []string
	// Runs is the number of probe-run pairs per optimizer.
	Runs int
	// StepsPerEpoch and CheckpointEvery of each probe.
	StepsPerEpoch   int
	CheckpointEvery int
	Seed            int64
}

func (o *OptimizerSweepOptions) defaults() {
	if o.Task == "" {
		o.Task = "resnet18-cifar10"
	}
	if len(o.Optimizers) == 0 {
		o.Optimizers = []string{"sgd", "sgdm", "rmsprop", "adam"}
	}
	if o.Runs <= 0 {
		o.Runs = 3
	}
	if o.StepsPerEpoch <= 0 {
		o.StepsPerEpoch = 20
	}
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = 5
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// OptimizerSweepRow is one optimizer's reproduction-error profile.
type OptimizerSweepRow struct {
	Optimizer string
	MeanError float64
	MaxError  float64 // mean + std, the paper's "maximum"
	// Normal reports whether the pooled errors pass the KS normality test —
	// the paper's "the above results still hold ... with the same
	// optimizer".
	Normal bool
}

// OptimizerSweepResult extends the paper's Sec. VII-C observation that
// reproduction errors differ across optimizers while each optimizer's
// errors remain well-behaved (normally distributed) — the property that
// lets the adaptive calibration work per (epoch, optimizer).
type OptimizerSweepResult struct {
	Rows  []OptimizerSweepRow
	Table Table
}

// OptimizerSweep measures reproduction errors per optimizer on the top-2
// GPU pair.
func OptimizerSweep(opts OptimizerSweepOptions) (*OptimizerSweepResult, error) {
	opts.defaults()
	spec, err := modelzoo.Get(opts.Task)
	if err != nil {
		return nil, err
	}
	_, train, _, err := spec.BuildProxy(opts.Seed)
	if err != nil {
		return nil, err
	}
	res := &OptimizerSweepResult{Table: Table{
		Caption: fmt.Sprintf("Ablation — reproduction errors per optimizer (%s)", opts.Task),
		Headers: []string{"optimizer", "mean err", "max err (mean+std)", "normal?"},
	}}
	for _, optName := range opts.Optimizers {
		// Per-optimizer learning rates: adaptive optimizers need smaller
		// steps on the proxy.
		lr := 0.02
		if optName == "rmsprop" || optName == "adam" {
			lr = 0.002
		}
		var pooled []float64
		for run := 0; run < opts.Runs; run++ {
			p := rpol.TaskParams{
				Hyper:           rpol.Hyper{Optimizer: optName, LR: lr, BatchSize: spec.ProxyBatchSize},
				Nonce:           prf.DeriveNonce([]byte("optimizer-sweep"), optName, run),
				Steps:           opts.StepsPerEpoch,
				CheckpointEvery: opts.CheckpointEvery,
			}
			runTrace := func(profile gpu.Profile, runSeed int64) (*rpol.Trace, error) {
				net, err := spec.BuildProxyNet(opts.Seed + 1)
				if err != nil {
					return nil, err
				}
				p.Global = net.ParamVector()
				device, err := gpu.NewDevice(profile, runSeed)
				if err != nil {
					return nil, err
				}
				trainer := &rpol.Trainer{Net: net, Shard: train, Device: device}
				return trainer.RunEpoch(p)
			}
			base := opts.Seed*100 + int64(run)*10
			t1, err := runTrace(gpu.G3090, base+1)
			if err != nil {
				return nil, fmt.Errorf("optimizer %s: %w", optName, err)
			}
			t2, err := runTrace(gpu.GA10, base+2)
			if err != nil {
				return nil, fmt.Errorf("optimizer %s: %w", optName, err)
			}
			dists, err := rpol.TraceDistances(t1, t2)
			if err != nil {
				return nil, err
			}
			pooled = append(pooled, dists...)
		}
		summary, err := stats.Summarize(pooled)
		if err != nil {
			return nil, err
		}
		var normal bool
		if len(pooled) >= 3 {
			ks, err := stats.KSTestNormal(pooled)
			if err != nil {
				return nil, err
			}
			normal = ks.Normal
		}
		row := OptimizerSweepRow{
			Optimizer: optName,
			MeanError: summary.Mean,
			MaxError:  summary.MeanPlusSD,
			Normal:    normal,
		}
		res.Rows = append(res.Rows, row)
		res.Table.Add(optName, row.MeanError, row.MaxError, row.Normal)
	}
	return res, nil
}
