package experiments

import (
	"fmt"
	"time"

	"rpol/internal/amlayer"
	"rpol/internal/gpu"
	"rpol/internal/modelzoo"
	"rpol/internal/nn"
	"rpol/internal/obs"
	"rpol/internal/prf"
	"rpol/internal/rpol"
	"rpol/internal/tensor"
)

// centralRun trains a proxy task centrally (one trainer, the full training
// shard) and records test accuracy after every epoch. It returns the
// accuracy curve, the per-epoch time as measured by clock, and the trained
// network.
func centralRun(spec modelzoo.TaskSpec, withAMLayer bool, address string, epochs, stepsPerEpoch int, seed int64, clock obs.Clock) ([]float64, time.Duration, *nn.Network, error) {
	net, train, test, err := spec.BuildProxy(seed)
	if err != nil {
		return nil, 0, nil, err
	}
	if withAMLayer {
		stack, err := amlayer.NewDenseStack(address, spec.ProxyDim, amlayer.DefaultStackDepth, amlayer.StackConfig())
		if err != nil {
			return nil, 0, nil, err
		}
		net, err = amlayer.PrependStack(stack, net)
		if err != nil {
			return nil, 0, nil, err
		}
	}
	device, err := gpu.NewDevice(gpu.G3090, seed+99)
	if err != nil {
		return nil, 0, nil, err
	}
	trainer := &rpol.Trainer{Net: net, Shard: train, Device: device}

	testXs := make([]tensor.Vector, test.Len())
	testYs := make([]int, test.Len())
	for i, ex := range test.Examples {
		testXs[i] = ex.Features
		testYs[i] = ex.Label
	}

	weights := net.ParamVector()
	accs := make([]float64, 0, epochs)
	start := clock.Now()
	for e := 0; e < epochs; e++ {
		p := rpol.TaskParams{
			Epoch:           e,
			Global:          weights,
			Hyper:           rpol.Hyper{Optimizer: "sgdm", LR: 0.02, BatchSize: spec.ProxyBatchSize},
			Nonce:           prf.DeriveNonce([]byte("central"), spec.Name, e),
			Steps:           stepsPerEpoch,
			CheckpointEvery: 5,
		}
		trace, err := trainer.RunEpoch(p)
		if err != nil {
			return nil, 0, nil, err
		}
		weights = trace.Final()
		if err := net.SetParamVector(weights); err != nil {
			return nil, 0, nil, err
		}
		acc, err := net.Accuracy(testXs, testYs)
		if err != nil {
			return nil, 0, nil, err
		}
		accs = append(accs, acc)
	}
	perEpoch := time.Duration((clock.Now() - start) / int64(epochs))
	return accs, perEpoch, net, nil
}

// Fig3Options configures the AMLayer accuracy-curve comparison.
type Fig3Options struct {
	// Tasks are modelzoo names; defaults to the paper's task A and B.
	Tasks []string
	// Epochs per curve (the paper trains 40/200; proxies converge faster).
	Epochs int
	// StepsPerEpoch of the proxy run.
	StepsPerEpoch int
	Seed          int64
	// Clock times the per-epoch measurement. It defaults to a deterministic
	// obs.SimClock so figure-3 runs are bit-reproducible; rpolbench's
	// -wallclock flag injects an obs.WallClock for real timings.
	Clock obs.Clock
}

func (o *Fig3Options) defaults() {
	if len(o.Tasks) == 0 {
		o.Tasks = []string{"resnet18-cifar10", "resnet50-cifar100"}
	}
	if o.Epochs <= 0 {
		o.Epochs = 8
	}
	if o.StepsPerEpoch <= 0 {
		o.StepsPerEpoch = 20
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Clock == nil {
		o.Clock = obs.NewSimClock(0)
	}
}

// Fig3Curve is one task's pair of accuracy curves.
type Fig3Curve struct {
	Task            string
	Origin, AMLayer []float64
}

// Fig3Result holds the curves of Fig. 3: testing accuracy with and without
// the AMLayer stays close throughout training.
type Fig3Result struct {
	Curves []Fig3Curve
	Table  Table
}

// Fig3 reproduces the AMLayer accuracy-curve comparison.
func Fig3(opts Fig3Options) (*Fig3Result, error) {
	opts.defaults()
	res := &Fig3Result{Table: Table{
		Caption: "Fig. 3 — testing accuracy with and without AMLayer",
		Headers: []string{"task", "epoch", "origin", "AMLayer"},
	}}
	for _, name := range opts.Tasks {
		spec, err := modelzoo.Get(name)
		if err != nil {
			return nil, err
		}
		origin, _, _, err := centralRun(spec, false, "", opts.Epochs, opts.StepsPerEpoch, opts.Seed, opts.Clock)
		if err != nil {
			return nil, fmt.Errorf("fig3 %s origin: %w", name, err)
		}
		withAML, _, _, err := centralRun(spec, true, "fig3-manager", opts.Epochs, opts.StepsPerEpoch, opts.Seed, opts.Clock)
		if err != nil {
			return nil, fmt.Errorf("fig3 %s amlayer: %w", name, err)
		}
		res.Curves = append(res.Curves, Fig3Curve{Task: name, Origin: origin, AMLayer: withAML})
		for e := 0; e < opts.Epochs; e++ {
			res.Table.Add(name, e+1, origin[e], withAML[e])
		}
	}
	return res, nil
}
