package experiments

import "testing"

func TestFig5Repeats(t *testing.T) {
	res, err := Fig5(Fig5Options{
		Tasks:   []string{"resnet18-cifar10"},
		Epochs:  2,
		Repeats: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if !row.BetaAboveHonest || !row.BetaBelowSpoof {
			t.Errorf("epoch %d: separation broken across repeats (β=%v repro=%v spoof=%v)",
				row.Epoch, row.Beta, row.MaxReproError, row.MinSpoofDistance)
		}
		if row.FNR != 0 {
			t.Errorf("epoch %d: FNR %v across repeats", row.Epoch, row.FNR)
		}
	}
}
