// Package experiments regenerates every table and figure of the paper's
// evaluation section (Sec. VII). Each experiment is a pure function from an
// options struct to a structured result with a text rendering, so the same
// code drives the rpolbench CLI and the repository's benchmark suite.
//
// Absolute numbers come from the simulated substrate (see DESIGN.md's
// substitution table); the shapes the paper reports — orderings, ratios,
// crossovers — are what these runners reproduce. EXPERIMENTS.md records
// paper-versus-measured for each experiment.
package experiments

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result: a caption, column headers, and
// rows. It keeps experiment outputs printable without any dependency on the
// caller's formatting.
type Table struct {
	Caption string
	Headers []string
	Rows    [][]string
}

// Add appends a row, formatting each cell with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var sb strings.Builder
	if t.Caption != "" {
		sb.WriteString(t.Caption)
		sb.WriteByte('\n')
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			if i < len(widths) && len(cell) < widths[i] {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}
