package experiments

import (
	"fmt"

	"rpol/internal/adversary"
	"rpol/internal/gpu"
	"rpol/internal/lsh"
	"rpol/internal/modelzoo"
	"rpol/internal/prf"
	"rpol/internal/rpol"
	"rpol/internal/tensor"
)

// Fig5Options configures the adaptive-calibration evaluation.
type Fig5Options struct {
	// Tasks defaults to the paper's four: ResNet18/50 × CIFAR-10/100.
	Tasks []string
	// Epochs of the iterative learning process to calibrate and measure.
	Epochs int
	// StepsPerEpoch and CheckpointEvery of each epoch.
	StepsPerEpoch   int
	CheckpointEvery int
	// KLsh is the LSH budget (paper: 16); BetaFactor is x in β = x·α
	// (paper: 5).
	KLsh       int
	BetaFactor float64
	// SpoofLambda is Adv's Eq. (12) coefficient.
	SpoofLambda float64
	// Repeats re-runs the honest/spoof measurement with fresh hardware
	// seeds and aggregates the rates (the paper repeats 50×; the default of
	// 1 keeps the quick runs fast).
	Repeats int
	Seed    int64
}

func (o *Fig5Options) defaults() {
	if len(o.Tasks) == 0 {
		o.Tasks = []string{
			"resnet18-cifar10", "resnet50-cifar100",
			"resnet18-cifar100", "resnet50-cifar10",
		}
	}
	if o.Epochs <= 0 {
		o.Epochs = 4
	}
	if o.StepsPerEpoch <= 0 {
		o.StepsPerEpoch = 15
	}
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = 5
	}
	if o.KLsh <= 0 {
		o.KLsh = 16
	}
	if o.BetaFactor <= 0 {
		o.BetaFactor = 5
	}
	if o.SpoofLambda == 0 {
		o.SpoofLambda = 0.5
	}
	if o.Repeats <= 0 {
		o.Repeats = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// Fig5Row is one (task, epoch) measurement.
type Fig5Row struct {
	Task  string
	Epoch int
	// MaxReproError is the largest honest reproduction error measured this
	// epoch; MinSpoofDistance the smallest spoof distance.
	MaxReproError    float64
	MinSpoofDistance float64
	Alpha, Beta      float64
	// FNR is the fraction of honest checkpoints that failed LSH matching;
	// FPR the fraction of spoofed checkpoints that passed.
	FNR, FPR float64
	// BetaAboveHonest records the paper's key separation: β exceeds every
	// honest reproduction error while staying below every spoof distance.
	BetaAboveHonest bool
	BetaBelowSpoof  bool
}

// Fig5Result reproduces Fig. 5.
type Fig5Result struct {
	Rows  []Fig5Row
	Table Table
}

// Fig5 runs the adaptive LSH calibration through several epochs of each
// task, measuring honest reproduction errors, Adv's spoof distances, the
// α/β settings, and the resulting LSH FNR/FPR.
func Fig5(opts Fig5Options) (*Fig5Result, error) {
	opts.defaults()
	res := &Fig5Result{Table: Table{
		Caption: "Fig. 5 — adaptive calibration: repro errors, spoof distances, α, β, FNR, FPR",
		Headers: []string{"task", "epoch", "max repro", "min spoof", "alpha", "beta", "FNR", "FPR"},
	}}
	for _, name := range opts.Tasks {
		if err := fig5Task(name, opts, res); err != nil {
			return nil, fmt.Errorf("fig5 %s: %w", name, err)
		}
	}
	return res, nil
}

func fig5Task(name string, opts Fig5Options, res *Fig5Result) error {
	spec, err := modelzoo.Get(name)
	if err != nil {
		return err
	}
	_, train, _, err := spec.BuildProxy(opts.Seed)
	if err != nil {
		return err
	}
	// Two i.i.d. halves: one for the manager's calibration probe, one for
	// worker behaviour (Sec. VII-D).
	halves, err := train.Partition(2)
	if err != nil {
		return err
	}
	probeShard, workShard := halves[0], halves[1]

	calNet, err := spec.BuildProxyNet(opts.Seed + 1)
	if err != nil {
		return err
	}
	workerNet, err := spec.BuildProxyNet(opts.Seed + 1)
	if err != nil {
		return err
	}
	verifyNet, err := spec.BuildProxyNet(opts.Seed + 1)
	if err != nil {
		return err
	}
	verifyDevice, err := gpu.NewDevice(gpu.G3090, opts.Seed+500)
	if err != nil {
		return err
	}
	global := calNet.ParamVector()

	for epoch := 0; epoch < opts.Epochs; epoch++ {
		p := rpol.TaskParams{
			Epoch:           epoch,
			Global:          global.Clone(),
			Hyper:           rpol.Hyper{Optimizer: "sgdm", LR: 0.02, BatchSize: spec.ProxyBatchSize},
			Nonce:           prf.DeriveNonce([]byte("fig5"), name, epoch),
			Steps:           opts.StepsPerEpoch,
			CheckpointEvery: opts.CheckpointEvery,
		}

		// 1. Manager calibration on the probe shard with the top-2 GPUs.
		calibrator := &rpol.Calibrator{
			Net: calNet, Shard: probeShard,
			XFactor: opts.BetaFactor, KLsh: opts.KLsh,
		}
		seedBase := opts.Seed + int64(epoch)*17
		cal, fam, err := calibrator.Calibrate(p, gpu.G3090, gpu.GA10,
			[2]int64{seedBase + 1, seedBase + 2}, seedBase+3)
		if err != nil {
			return err
		}

		row := Fig5Row{Task: name, Epoch: epoch, Alpha: cal.Alpha, Beta: cal.Beta,
			MinSpoofDistance: -1, BetaAboveHonest: true, BetaBelowSpoof: true}
		honestChecked, honestMisses := 0, 0
		spoofChecked, spoofPasses := 0, 0
		var firstHonest *rpol.Trace

		for rep := 0; rep < opts.Repeats; rep++ {
			repSeed := seedBase + int64(rep)*1000

			// 2. Honest worker epoch on GA10 (the worst-case honest
			// hardware); a fresh run seed per repetition.
			workerDevice, err := gpu.NewDevice(gpu.GA10, repSeed+4)
			if err != nil {
				return err
			}
			workerTrainer := &rpol.Trainer{Net: workerNet, Shard: workShard, Device: workerDevice}
			honest, err := workerTrainer.RunEpoch(p)
			if err != nil {
				return err
			}
			if firstHonest == nil {
				firstHonest = honest
			}

			// 3. Manager re-executes every interval on G3090, measuring
			// honest reproduction distances and LSH match failures.
			verifier := &rpol.Trainer{Net: verifyNet, Shard: workShard, Device: verifyDevice}
			reexecs := make([]tensor.Vector, 0, len(honest.Checkpoints)-1)
			for c := 0; c+1 < len(honest.Checkpoints); c++ {
				startStep, steps, err := honest.IntervalSteps(c)
				if err != nil {
					return err
				}
				reexec, err := verifier.ExecuteInterval(honest.Checkpoints[c], startStep, steps, p.Hyper, p.Nonce)
				if err != nil {
					return err
				}
				reexecs = append(reexecs, reexec)
				dist, err := tensor.Distance(reexec, honest.Checkpoints[c+1])
				if err != nil {
					return err
				}
				if dist > row.MaxReproError {
					row.MaxReproError = dist
				}
				if dist >= cal.Beta {
					row.BetaAboveHonest = false
				}
				committed, err := fam.Hash(honest.Checkpoints[c+1])
				if err != nil {
					return err
				}
				mine, err := fam.Hash(reexec)
				if err != nil {
					return err
				}
				honestChecked++
				if !lsh.Match(mine, committed) {
					honestMisses++
				}
			}

			// 4. Adv spoofs the last two-thirds of the checkpoints from the
			// honest prefix (Sec. VII-D) and we measure spoof distances and
			// LSH pass rate against the manager's re-executions.
			prefix := (len(honest.Checkpoints) + 2) / 3
			if prefix < 2 {
				prefix = 2
			}
			spoofHist := make([]tensor.Vector, prefix)
			copy(spoofHist, honest.Checkpoints[:prefix])
			for c := prefix - 1; c+1 < len(honest.Checkpoints); c++ {
				spoofed, err := adversary.Spoof(spoofHist, opts.SpoofLambda)
				if err != nil {
					return err
				}
				spoofHist = append(spoofHist, spoofed)
				dist, err := tensor.Distance(spoofed, reexecs[c])
				if err != nil {
					return err
				}
				if row.MinSpoofDistance < 0 || dist < row.MinSpoofDistance {
					row.MinSpoofDistance = dist
				}
				if dist <= cal.Beta {
					row.BetaBelowSpoof = false
				}
				spoofDigest, err := fam.Hash(spoofed)
				if err != nil {
					return err
				}
				reexecDigest, err := fam.Hash(reexecs[c])
				if err != nil {
					return err
				}
				spoofChecked++
				if lsh.Match(spoofDigest, reexecDigest) {
					spoofPasses++
				}
			}
		}
		if honestChecked > 0 {
			row.FNR = float64(honestMisses) / float64(honestChecked)
		}
		if spoofChecked > 0 {
			row.FPR = float64(spoofPasses) / float64(spoofChecked)
		}

		res.Rows = append(res.Rows, row)
		res.Table.Add(name, epoch, row.MaxReproError, row.MinSpoofDistance,
			row.Alpha, row.Beta, row.FNR, row.FPR)

		// Advance the global model along the first honest trajectory.
		global = firstHonest.Final()
	}
	return nil
}
