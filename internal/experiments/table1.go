package experiments

import (
	"fmt"

	"rpol/internal/amlayer"
	"rpol/internal/gpu"
	"rpol/internal/modelzoo"
	"rpol/internal/obs"
	"rpol/internal/stats"
	"rpol/internal/tensor"
)

// Table1Options configures the AMLayer performance evaluation.
type Table1Options struct {
	Tasks         []string
	Epochs        int
	StepsPerEpoch int
	// AttackAddresses is the number of random replacement addresses for the
	// address-replacing attack (the paper uses 10).
	AttackAddresses int
	Seed            int64
}

func (o *Table1Options) defaults() {
	if len(o.Tasks) == 0 {
		o.Tasks = []string{"resnet18-cifar10", "resnet50-cifar100"}
	}
	if o.Epochs <= 0 {
		o.Epochs = 8
	}
	if o.StepsPerEpoch <= 0 {
		o.StepsPerEpoch = 20
	}
	if o.AttackAddresses <= 0 {
		o.AttackAddresses = 10
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// Table1Row is one task's AMLayer evaluation (the paper's Table I).
type Table1Row struct {
	Task string
	// OriginEpochSeconds and AMLayerEpochSeconds are the paper-scale
	// one-epoch training times: the task's calibrated G3090 epoch time,
	// with the AMLayer variant scaled by the measured proxy overhead ratio.
	OriginEpochSeconds  float64
	AMLayerEpochSeconds float64
	// OriginAcc and AMLayerAcc are the final proxy test accuracies.
	OriginAcc, AMLayerAcc float64
	// AttackAccMean and AttackAccStd summarize accuracy after the
	// address-replacing attack across random attacker addresses.
	AttackAccMean, AttackAccStd float64
}

// Table1Result is the full Table I reproduction.
type Table1Result struct {
	Rows  []Table1Row
	Table Table
}

// Table1 evaluates the AMLayer: its training-time overhead, its effect on
// final accuracy, and the accuracy collapse under the address-replacing
// attack.
func Table1(opts Table1Options) (*Table1Result, error) {
	opts.defaults()
	res := &Table1Result{Table: Table{
		Caption: "Table I — AMLayer: one-epoch time, accuracy, accuracy under address-replacing attack",
		Headers: []string{"task", "variant", "epoch time (s)", "accuracy", "attack accuracy"},
	}}
	for _, name := range opts.Tasks {
		spec, err := modelzoo.Get(name)
		if err != nil {
			return nil, err
		}
		// Table I derives epoch times analytically from the device model, so
		// the measured timings are discarded and a deterministic clock keeps
		// the run reproducible.
		originAccs, _, _, err := centralRun(spec, false, "", opts.Epochs, opts.StepsPerEpoch, opts.Seed, obs.NewSimClock(0))
		if err != nil {
			return nil, fmt.Errorf("table1 %s origin: %w", name, err)
		}
		amlAccs, _, amlNet, err := centralRun(spec, true, "table1-manager", opts.Epochs, opts.StepsPerEpoch, opts.Seed, obs.NewSimClock(0))
		if err != nil {
			return nil, fmt.Errorf("table1 %s amlayer: %w", name, err)
		}

		// Paper-scale epoch time on the simulated G3090. The AMLayer is a
		// fixed 3→64-channel 3×3 conv on 32×32 inputs: ≈3.5 MFLOPs forward
		// plus the input-gradient pass (its weights are frozen), per
		// example — a sub-percent share of ResNet-scale training (the
		// paper's measured 1.2–3.5 % includes framework overheads).
		device, err := gpu.NewDevice(gpu.G3090, 1)
		if err != nil {
			return nil, err
		}
		const amlayerFLOPsPerExample = 7.1e6
		baseSeconds := device.ExecTime(spec.FLOPsPerEpoch()).Seconds()
		ratio := 1 + amlayerFLOPsPerExample/spec.FLOPsPerExample

		// Address-replacing attack: swap the AMLayer for ones encoding
		// random attacker addresses and measure the stolen model's accuracy.
		_, _, test, err := spec.BuildProxy(opts.Seed)
		if err != nil {
			return nil, err
		}
		testXs := make([]tensor.Vector, test.Len())
		testYs := make([]int, test.Len())
		for i, ex := range test.Examples {
			testXs[i] = ex.Features
			testYs[i] = ex.Label
		}
		attackAccs := make([]float64, 0, opts.AttackAddresses)
		for k := 0; k < opts.AttackAddresses; k++ {
			if err := amlayer.ReplaceDenseStack(amlNet, fmt.Sprintf("attacker-%d-%d", opts.Seed, k), amlayer.StackConfig()); err != nil {
				return nil, err
			}
			acc, err := amlNet.Accuracy(testXs, testYs)
			if err != nil {
				return nil, err
			}
			attackAccs = append(attackAccs, acc)
		}
		attackStats, err := stats.Summarize(attackAccs)
		if err != nil {
			return nil, err
		}

		row := Table1Row{
			Task:                name,
			OriginEpochSeconds:  baseSeconds,
			AMLayerEpochSeconds: baseSeconds * ratio,
			OriginAcc:           originAccs[len(originAccs)-1],
			AMLayerAcc:          amlAccs[len(amlAccs)-1],
			AttackAccMean:       attackStats.Mean,
			AttackAccStd:        attackStats.Std,
		}
		res.Rows = append(res.Rows, row)
		res.Table.Add(name, "origin", row.OriginEpochSeconds, row.OriginAcc, "-")
		res.Table.Add(name, "AMLayer", row.AMLayerEpochSeconds, row.AMLayerAcc,
			fmt.Sprintf("%.4f ± %.4f", row.AttackAccMean, row.AttackAccStd))
	}
	return res, nil
}
