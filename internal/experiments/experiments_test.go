package experiments

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tbl := Table{Caption: "cap", Headers: []string{"a", "bb"}}
	tbl.Add(1, 2.5)
	tbl.Add("x", "y")
	out := tbl.Render()
	if !strings.Contains(out, "cap") || !strings.Contains(out, "a") || !strings.Contains(out, "2.5") {
		t.Errorf("render missing content:\n%s", out)
	}
	if !strings.Contains(out, "--") {
		t.Error("render missing separator")
	}
}

func TestFig1Shapes(t *testing.T) {
	res, err := Fig1(Fig1Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The optimized setting must separate α and β as the paper targets.
	if res.PrAlpha < 0.9 {
		t.Errorf("Pr(α) = %v, want ≥ 0.9", res.PrAlpha)
	}
	if res.PrBeta > 0.1 {
		t.Errorf("Pr(β) = %v, want ≤ 0.1", res.PrBeta)
	}
	// Every curve must be monotone non-increasing in distance.
	for label, curve := range res.Curves {
		for i := 1; i < len(curve); i++ {
			if curve[i] > curve[i-1]+1e-9 {
				t.Errorf("%s: curve not monotone at %d", label, i)
			}
		}
	}
	if len(res.Table.Rows) != len(res.Distances) {
		t.Error("table rows mismatch")
	}
}

func TestFig3AMLayerPreservesAccuracy(t *testing.T) {
	res, err := Fig3(Fig3Options{
		Tasks:         []string{"resnet18-cifar10"},
		Epochs:        5,
		StepsPerEpoch: 15,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curves) != 1 {
		t.Fatalf("curves = %d", len(res.Curves))
	}
	c := res.Curves[0]
	finalOrigin := c.Origin[len(c.Origin)-1]
	finalAML := c.AMLayer[len(c.AMLayer)-1]
	// The paper's claim: the curves stay near. Allow a modest gap on the
	// small proxy.
	if finalAML < finalOrigin-0.12 {
		t.Errorf("AMLayer accuracy %v far below origin %v", finalAML, finalOrigin)
	}
	if finalAML < 0.4 {
		t.Errorf("AMLayer model failed to learn: %v", finalAML)
	}
}

func TestTable1AttackCollapsesAccuracy(t *testing.T) {
	res, err := Table1(Table1Options{
		Tasks:           []string{"resnet18-cifar10"},
		Epochs:          5,
		StepsPerEpoch:   15,
		AttackAddresses: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	// Time overhead must be modest (paper: ≤ 3.5 %); allow wall-clock noise.
	if row.AMLayerEpochSeconds > row.OriginEpochSeconds*1.5 {
		t.Errorf("AMLayer time %v vs origin %v: overhead too large",
			row.AMLayerEpochSeconds, row.OriginEpochSeconds)
	}
	// Accuracy with AMLayer near the original.
	if row.AMLayerAcc < row.OriginAcc-0.12 {
		t.Errorf("AMLayer acc %v far below origin %v", row.AMLayerAcc, row.OriginAcc)
	}
	// The address-replacing attack collapses accuracy well below the
	// legitimate model (paper: −67.8 pp).
	if row.AttackAccMean > row.AMLayerAcc-0.2 {
		t.Errorf("attack acc %v did not collapse vs %v", row.AttackAccMean, row.AMLayerAcc)
	}
}

func TestFig4Orderings(t *testing.T) {
	res, err := Fig4(Fig4Options{Shards: 3, StepsPerEpoch: 20})
	if err != nil {
		t.Fatal(err)
	}
	// Same-GPU error grows with device speed.
	if res.PairMax["G3090+G3090"] <= res.PairMax["GT4+GT4"] {
		t.Errorf("fast-GPU error %v not above slow-GPU %v",
			res.PairMax["G3090+G3090"], res.PairMax["GT4+GT4"])
	}
	// Cross-GPU beats same-GPU.
	if res.PairMax["G3090+GA10"] <= res.PairMax["G3090+G3090"] {
		t.Errorf("cross error %v not above same error %v",
			res.PairMax["G3090+GA10"], res.PairMax["G3090+G3090"])
	}
	// Top-2 pair is the largest cross pair.
	if res.PairMax["G3090+GA10"] <= res.PairMax["GP100+GT4"] {
		t.Errorf("top-2 pair %v not above slow pair %v",
			res.PairMax["G3090+GA10"], res.PairMax["GP100+GT4"])
	}
	// Errors are predominantly normally distributed across checkpoints.
	normal := 0
	for _, cell := range res.Cells {
		if cell.NormalDist {
			normal++
		}
	}
	if normal*2 < len(res.Cells) {
		t.Errorf("only %d/%d cells normal", normal, len(res.Cells))
	}
}

func TestFig5Separation(t *testing.T) {
	res, err := Fig5(Fig5Options{
		Tasks:  []string{"resnet18-cifar10", "resnet50-cifar100"},
		Epochs: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if !row.BetaAboveHonest {
			t.Errorf("%s epoch %d: β %v below honest error %v",
				row.Task, row.Epoch, row.Beta, row.MaxReproError)
		}
		if !row.BetaBelowSpoof {
			t.Errorf("%s epoch %d: β %v above spoof distance %v",
				row.Task, row.Epoch, row.Beta, row.MinSpoofDistance)
		}
		if row.FNR > 0.34 {
			t.Errorf("%s epoch %d: FNR %v too high", row.Task, row.Epoch, row.FNR)
		}
		if row.FPR > 0.34 {
			t.Errorf("%s epoch %d: FPR %v too high", row.Task, row.Epoch, row.FPR)
		}
		if row.MinSpoofDistance <= row.MaxReproError {
			t.Errorf("%s epoch %d: spoof %v not above repro %v",
				row.Task, row.Epoch, row.MinSpoofDistance, row.MaxReproError)
		}
	}
}

func TestFig6VerificationWins(t *testing.T) {
	res, err := Fig6(Fig6Options{
		Tasks:              []string{"resnet18-cifar10"},
		AdversaryFractions: []float64{0.5},
		Epochs:             4,
		NumWorkers:         6,
	})
	if err != nil {
		t.Fatal(err)
	}
	byKey := make(map[string]Fig6Run)
	for _, run := range res.Runs {
		byKey[run.Attack+"/"+run.Scheme.String()] = run
	}
	for _, attack := range []string{"adv1", "adv2"} {
		base := byKey[attack+"/baseline"]
		v1 := byKey[attack+"/RPoLv1"]
		v2 := byKey[attack+"/RPoLv2"]
		if v1.Final() <= base.Final() {
			t.Errorf("%s: RPoLv1 %v not above baseline %v", attack, v1.Final(), base.Final())
		}
		if v2.Final() <= base.Final() {
			t.Errorf("%s: RPoLv2 %v not above baseline %v", attack, v2.Final(), base.Final())
		}
		if v1.FalseRejections != 0 || v2.FalseRejections != 0 {
			t.Errorf("%s: honest workers rejected (v1 %d, v2 %d)",
				attack, v1.FalseRejections, v2.FalseRejections)
		}
		if v2.Detected == 0 {
			t.Errorf("%s: RPoLv2 detected nothing", attack)
		}
	}
}

func TestTable2Shapes(t *testing.T) {
	res, err := Table2(Table2Options{})
	if err != nil {
		t.Fatal(err)
	}
	byKey := make(map[string]EpochCost)
	for _, c := range res.Cells {
		byKey[c.Task+"/"+c.Scheme+"/"+itoa(c.Workers)] = c
	}
	for _, task := range []string{"resnet50-imagenet", "vgg16-imagenet"} {
		for _, n := range []string{"10", "100"} {
			base := byKey[task+"/baseline/"+n]
			v1 := byKey[task+"/RPoLv1/"+n]
			v2 := byKey[task+"/RPoLv2/"+n]
			if !(base.Total < v2.Total && v2.Total < v1.Total) {
				t.Errorf("%s/%s: ordering broken: base %v, v2 %v, v1 %v",
					task, n, base.Total, v2.Total, v1.Total)
			}
		}
		// Epoch time decreases with pool size.
		if byKey[task+"/baseline/100"].Total >= byKey[task+"/baseline/10"].Total {
			t.Errorf("%s: 100-worker epoch not faster than 10-worker", task)
		}
	}
	// VGG16 (communication-bound) gains more from LSH than ResNet50: the
	// paper reports ≈36 % vs a slight improvement.
	gain := func(task string) float64 {
		v1 := byKey[task+"/RPoLv1/10"]
		v2 := byKey[task+"/RPoLv2/10"]
		return 1 - v2.Total.Seconds()/v1.Total.Seconds()
	}
	if gain("vgg16-imagenet") <= gain("resnet50-imagenet") {
		t.Errorf("VGG16 gain %v not above ResNet50 gain %v",
			gain("vgg16-imagenet"), gain("resnet50-imagenet"))
	}
}

func itoa(n int) string {
	if n == 10 {
		return "10"
	}
	if n == 100 {
		return "100"
	}
	return "?"
}

func TestTable3Shapes(t *testing.T) {
	res, err := Table3(Table3Options{})
	if err != nil {
		t.Fatal(err)
	}
	rows := make(map[string]Table3Row, 3)
	for _, r := range res.Rows {
		rows[r.Scheme] = r
	}
	base, v1, v2 := rows["baseline"], rows["RPoLv1"], rows["RPoLv2"]
	// Paper Table III shapes:
	// manager comp: baseline 0 < v1 < v2 (probe adds ~30 %).
	if base.ManagerComp != 0 {
		t.Error("baseline manager comp must be zero")
	}
	if !(v1.ManagerComp < v2.ManagerComp) {
		t.Errorf("manager comp: v1 %v, v2 %v", v1.ManagerComp, v2.ManagerComp)
	}
	// comm: v2 ≈ 42 % below v1; both above baseline.
	if !(base.CommGB < v2.CommGB && v2.CommGB < v1.CommGB) {
		t.Errorf("comm GB: base %v, v2 %v, v1 %v", base.CommGB, v2.CommGB, v1.CommGB)
	}
	commSaving := 1 - v2.CommGB/v1.CommGB
	if commSaving < 0.3 || commSaving > 0.55 {
		t.Errorf("v2 comm saving %v outside the paper's ≈42%% band", commSaving)
	}
	// Verification-only communication is halved.
	verifySaving := 1 - (v2.CommGB-base.CommGB)/(v1.CommGB-base.CommGB)
	if verifySaving < 0.45 || verifySaving > 0.55 {
		t.Errorf("verification comm saving %v, want ≈50%%", verifySaving)
	}
	// storage: baseline < v1 < v2 (LSH projections add ≈30 %).
	if !(base.StorageGB < v1.StorageGB && v1.StorageGB < v2.StorageGB) {
		t.Errorf("storage: base %v, v1 %v, v2 %v", base.StorageGB, v1.StorageGB, v2.StorageGB)
	}
	// The paper reports ≈30 % with ~50 checkpoints/worker; our cost model's
	// 21 checkpoints make the fixed-size LSH projections loom larger, so the
	// band is wider (see EXPERIMENTS.md).
	lshOverhead := v2.StorageGB/v1.StorageGB - 1
	if lshOverhead < 0.1 || lshOverhead > 1.2 {
		t.Errorf("LSH storage overhead %v outside the expected band", lshOverhead)
	}
	// capital cost: baseline < v2 < v1, v2 ≈ 35 % below v1.
	if !(base.CapitalCost < v2.CapitalCost && v2.CapitalCost < v1.CapitalCost) {
		t.Errorf("cost: base %v, v2 %v, v1 %v", base.CapitalCost, v2.CapitalCost, v1.CapitalCost)
	}
	costSaving := 1 - v2.CapitalCost/v1.CapitalCost
	if costSaving < 0.2 || costSaving > 0.5 {
		t.Errorf("v2 cost saving %v outside the paper's ≈35%% band", costSaving)
	}
}

func TestSoundnessTable(t *testing.T) {
	res, err := Soundness(SoundnessOptions{HonestyRatios: []float64{0.1, 0.9}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0].QSoundness != 3 || res.Rows[1].QSoundness != 47 {
		t.Errorf("cryptographic q = %d, %d; want 3, 47",
			res.Rows[0].QSoundness, res.Rows[1].QSoundness)
	}
	if res.Rows[0].QEconomic != 2 || res.Rows[1].QEconomic != 3 {
		t.Errorf("economic q = %d, %d; want 2, 3",
			res.Rows[0].QEconomic, res.Rows[1].QEconomic)
	}
	for _, r := range res.Rows {
		if r.GainAtQEconomic > 1e-9 {
			t.Errorf("h=%v: attacker gain %v positive at economic q", r.HonestyRatio, r.GainAtQEconomic)
		}
	}
}

func TestCommitmentAblation(t *testing.T) {
	res, err := CommitmentAblation(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Table.Rows) != 4 {
		t.Errorf("rows = %d", len(res.Table.Rows))
	}
}

func TestDoubleCheckAblation(t *testing.T) {
	res, err := DoubleCheckAblation("", 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]DoubleCheckRow{}
	for _, row := range res.Rows {
		rows[row.Tuning] = row
	}
	// The double-check guarantees rewards for honesty under BOTH tunings:
	// zero false rejections whenever it is on.
	for tuning, row := range rows {
		if row.FalseRejectWith != 0 {
			t.Errorf("%s: false rejections with double-check: %d", tuning, row.FalseRejectWith)
		}
		if row.FalseRejectWithout < row.FalseRejectWith {
			t.Errorf("%s: disabling the double-check cannot reduce rejections", tuning)
		}
	}
	// The detuned family misses often — exactly the situation the
	// double-check exists for — and disabling it then falsely rejects
	// honest workers.
	detuned := rows["detuned"]
	if detuned.LSHMissTrials == 0 {
		t.Error("detuned LSH produced no misses; ablation lost its bite")
	}
	if detuned.FalseRejectWithout == 0 {
		t.Error("detuned + no double-check should falsely reject honest workers")
	}
}

func TestIntervalSweepMonotone(t *testing.T) {
	res, err := IntervalSweep("", []int{5, 10, 20}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.MaxErrors); i++ {
		if res.MaxErrors[i] <= res.MaxErrors[i-1] {
			t.Errorf("error not growing with interval: %v", res.MaxErrors)
		}
	}
}

func TestOptimizerSweep(t *testing.T) {
	res, err := OptimizerSweep(OptimizerSweepOptions{
		Optimizers: []string{"sgd", "sgdm", "adam"},
		Runs:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	errsByOpt := make(map[string]float64, len(res.Rows))
	for _, row := range res.Rows {
		if row.MeanError <= 0 {
			t.Errorf("%s: zero reproduction error", row.Optimizer)
		}
		errsByOpt[row.Optimizer] = row.MeanError
	}
	// The paper observes errors differ across optimizers: momentum
	// amplifies injected noise relative to plain SGD.
	if errsByOpt["sgdm"] <= errsByOpt["sgd"] {
		t.Errorf("sgdm error %v not above sgd %v", errsByOpt["sgdm"], errsByOpt["sgd"])
	}
}

func TestSamplingSweepMatchesTheory(t *testing.T) {
	res, err := SamplingSweep(SamplingSweepOptions{
		HonestFraction: 0.5,
		Trials:         12,
		StepsPerEpoch:  30,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Intervals != 6 || res.HonestIntervals != 3 {
		t.Fatalf("intervals = %d honest = %d", res.Intervals, res.HonestIntervals)
	}
	prev := 1.0
	for _, row := range res.Rows {
		// Evasion can only shrink with more samples.
		if row.EmpiricalEvasion > prev+1e-9 {
			t.Errorf("q=%d: evasion %v above q-1's %v", row.Q, row.EmpiricalEvasion, prev)
		}
		prev = row.EmpiricalEvasion
		// The exact without-replacement bound upper-bounds the measurement
		// (up to sampling noise on 12 trials).
		if row.EmpiricalEvasion > row.BoundWithoutReplacement+0.25 {
			t.Errorf("q=%d: evasion %v far above bound %v",
				row.Q, row.EmpiricalEvasion, row.BoundWithoutReplacement)
		}
		// Sampling more intervals than the attacker trained honestly makes
		// evasion impossible.
		if row.Q > res.HonestIntervals && row.EmpiricalEvasion != 0 {
			t.Errorf("q=%d: evasion %v, want 0", row.Q, row.EmpiricalEvasion)
		}
	}
	// The paper's q=3 choice: with h=50% and 6 intervals the exact bound is
	// C(3,3)/C(6,3) = 5%.
	if b := res.Rows[2].BoundWithoutReplacement; b < 0.049 || b > 0.051 {
		t.Errorf("q=3 bound = %v, want 0.05", b)
	}
}

func TestIntervalSweepLinearity(t *testing.T) {
	res, err := IntervalSweep("", []int{2, 4, 6, 8, 10, 12}, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.LinearCorrelation < 0.7 {
		t.Errorf("interval-error correlation %v, want roughly linear (≥ 0.7)",
			res.LinearCorrelation)
	}
}
