package experiments

import (
	"fmt"

	"rpol/internal/commitment"
	"rpol/internal/gpu"
	"rpol/internal/lsh"
	"rpol/internal/modelzoo"
	"rpol/internal/prf"
	"rpol/internal/rpol"
	"rpol/internal/stats"
	"rpol/internal/tensor"
)

// CommitmentAblationResult compares the paper's hash-list commitment with
// the Merkle alternative it also describes (Sec. V-B): commitment size on
// the wire versus per-opening proof size, across checkpoint counts.
type CommitmentAblationResult struct {
	Table Table
}

// CommitmentAblation sizes both constructions.
func CommitmentAblation(checkpointCounts []int, payloadBytes int) (*CommitmentAblationResult, error) {
	if len(checkpointCounts) == 0 {
		checkpointCounts = []int{4, 16, 64, 256}
	}
	if payloadBytes <= 0 {
		payloadBytes = 128 // an LSH digest of l=16 groups
	}
	res := &CommitmentAblationResult{Table: Table{
		Caption: "Ablation — hash-list vs Merkle commitment (bytes)",
		Headers: []string{"checkpoints", "hash-list commit", "hash-list proof", "merkle commit", "merkle proof"},
	}}
	for _, n := range checkpointCounts {
		payloads := make([][]byte, n)
		for i := range payloads {
			payloads[i] = make([]byte, payloadBytes)
			payloads[i][0] = byte(i)
		}
		hl, err := commitment.NewHashList(payloads)
		if err != nil {
			return nil, err
		}
		mt, err := commitment.NewMerkleTree(payloads)
		if err != nil {
			return nil, err
		}
		proof, err := mt.Prove(n / 2)
		if err != nil {
			return nil, err
		}
		res.Table.Add(n,
			hl.Size(),           // full leaf list published up front
			0,                   // openings verified against the published list
			commitment.HashSize, // only the root is published
			commitment.ProofSize(len(proof.Siblings)))
	}
	return res, nil
}

// DoubleCheckRow is one LSH tuning's outcome with and without the
// double-check.
type DoubleCheckRow struct {
	Tuning string
	// FalseRejectWith / FalseRejectWithout count honest submissions rejected
	// under each mode.
	FalseRejectWith    int
	FalseRejectWithout int
	// LSHMissTrials counts trials in which at least one sampled checkpoint
	// missed the LSH match (the situations the double-check rescues).
	LSHMissTrials int
}

// DoubleCheckAblationResult quantifies the double-check strategy: the
// false-rejection rate of honest workers with and without it, under both
// the calibrated LSH (misses are rare, Sec. VII-D) and a deliberately
// detuned LSH (misses are frequent, so the rescue is visible).
type DoubleCheckAblationResult struct {
	Trials int
	Rows   []DoubleCheckRow
	// Legacy aggregate fields: the calibrated tuning's counts.
	FalseRejectWith    int
	FalseRejectWithout int
	LSHMissTrials      int
	Table              Table
}

// DoubleCheckAblation runs honest epochs through the RPoLv2 verifier with
// the double-check enabled and disabled.
func DoubleCheckAblation(taskName string, trials int, seed int64) (*DoubleCheckAblationResult, error) {
	if taskName == "" {
		taskName = "resnet18-cifar10"
	}
	if trials <= 0 {
		trials = 10
	}
	spec, err := modelzoo.Get(taskName)
	if err != nil {
		return nil, err
	}
	_, train, _, err := spec.BuildProxy(seed)
	if err != nil {
		return nil, err
	}
	halves, err := train.Partition(2)
	if err != nil {
		return nil, err
	}

	res := &DoubleCheckAblationResult{Trials: trials}
	for _, tuning := range []string{"calibrated", "detuned"} {
		row := DoubleCheckRow{Tuning: tuning}
		for trial := 0; trial < trials; trial++ {
			trialSeed := seed + int64(trial)*31
			p := rpol.TaskParams{
				Epoch:           trial,
				Hyper:           rpol.Hyper{Optimizer: "sgdm", LR: 0.02, BatchSize: spec.ProxyBatchSize},
				Nonce:           prf.DeriveNonce([]byte("ablation"), taskName, trial),
				Steps:           15,
				CheckpointEvery: 5,
			}
			calNet, err := spec.BuildProxyNet(seed + 1)
			if err != nil {
				return nil, err
			}
			p.Global = calNet.ParamVector()
			calibrator := &rpol.Calibrator{Net: calNet, Shard: halves[0], XFactor: 5, KLsh: 16}
			cal, fam, err := calibrator.Calibrate(p, gpu.G3090, gpu.GA10,
				[2]int64{trialSeed + 1, trialSeed + 2}, trialSeed+3)
			if err != nil {
				return nil, err
			}
			if tuning == "detuned" {
				// An overly sharp family: bucket width far below the honest
				// error scale, so genuine reproduction differences miss often.
				sharp, err := lsh.NewFamily(len(p.Global),
					lsh.Params{R: cal.Alpha / 4, K: 8, L: 2}, trialSeed+9)
				if err != nil {
					return nil, err
				}
				fam = sharp
			}
			p.LSH = fam

			workerNet, err := spec.BuildProxyNet(seed + 1)
			if err != nil {
				return nil, err
			}
			worker, err := rpol.NewHonestWorker("h", gpu.GA10, trialSeed+4, workerNet, halves[1])
			if err != nil {
				return nil, err
			}
			result, err := worker.RunEpoch(p)
			if err != nil {
				return nil, err
			}

			verify := func(disable bool, seedOffset int64) (*rpol.VerifyOutcome, error) {
				verifyNet, err := spec.BuildProxyNet(seed + 1)
				if err != nil {
					return nil, err
				}
				device, err := gpu.NewDevice(gpu.G3090, trialSeed+seedOffset)
				if err != nil {
					return nil, err
				}
				v := &rpol.Verifier{
					Scheme: rpol.SchemeV2, Net: verifyNet, Device: device,
					Beta: cal.Beta, LSH: fam, Samples: 3,
					Sampler:            tensor.NewRNG(trialSeed + seedOffset),
					DisableDoubleCheck: disable,
				}
				return v.VerifySubmission(worker, halves[1], result, p)
			}
			withDC, err := verify(false, 100)
			if err != nil {
				return nil, err
			}
			withoutDC, err := verify(true, 100) // same sampling seed: identical samples
			if err != nil {
				return nil, err
			}
			if !withDC.Accepted {
				row.FalseRejectWith++
			}
			if !withoutDC.Accepted {
				row.FalseRejectWithout++
			}
			if withDC.LSHMisses > 0 || withoutDC.LSHMisses > 0 {
				row.LSHMissTrials++
			}
		}
		res.Rows = append(res.Rows, row)
		if tuning == "calibrated" {
			res.FalseRejectWith = row.FalseRejectWith
			res.FalseRejectWithout = row.FalseRejectWithout
			res.LSHMissTrials = row.LSHMissTrials
		}
	}
	res.Table = Table{
		Caption: fmt.Sprintf("Ablation — double-check strategy (%s, %d honest trials per tuning)", taskName, trials),
		Headers: []string{"lsh tuning", "mode", "false rejections", "trials with LSH miss"},
	}
	for _, row := range res.Rows {
		res.Table.Add(row.Tuning, "double-check ON", row.FalseRejectWith, row.LSHMissTrials)
		res.Table.Add(row.Tuning, "double-check OFF", row.FalseRejectWithout, row.LSHMissTrials)
	}
	return res, nil
}

// IntervalSweepResult records reproduction-error growth with the checkpoint
// interval (Sec. VII-C observes roughly linear growth).
type IntervalSweepResult struct {
	Intervals []int
	MaxErrors []float64
	// LinearCorrelation is the Pearson coefficient of (interval, error) —
	// the quantified version of the paper's "increase linearly" claim.
	LinearCorrelation float64
	Table             Table
}

// IntervalSweep measures reproduction errors across checkpoint intervals,
// averaging `pairs` independent run-pairs per interval (0 ⇒ 3) to tame the
// per-pair divergence noise.
func IntervalSweep(taskName string, intervals []int, seed int64, pairs int) (*IntervalSweepResult, error) {
	if taskName == "" {
		taskName = "resnet18-cifar10"
	}
	if len(intervals) == 0 {
		intervals = []int{5, 10, 20, 40}
	}
	if pairs <= 0 {
		pairs = 3
	}
	spec, err := modelzoo.Get(taskName)
	if err != nil {
		return nil, err
	}
	_, train, _, err := spec.BuildProxy(seed)
	if err != nil {
		return nil, err
	}
	res := &IntervalSweepResult{Table: Table{
		Caption: fmt.Sprintf("Ablation — reproduction error vs checkpoint interval (%s)", taskName),
		Headers: []string{"interval", "max repro error (mean+std)"},
	}}
	for _, interval := range intervals {
		p := rpol.TaskParams{
			Hyper:           rpol.Hyper{Optimizer: "sgdm", LR: 0.02, BatchSize: spec.ProxyBatchSize},
			Nonce:           prf.DeriveNonce([]byte("interval"), taskName, interval),
			Steps:           interval * 2,
			CheckpointEvery: interval,
		}
		run := func(profile gpu.Profile, runSeed int64) (*rpol.Trace, error) {
			net, err := spec.BuildProxyNet(seed + 1)
			if err != nil {
				return nil, err
			}
			p.Global = net.ParamVector()
			device, err := gpu.NewDevice(profile, runSeed)
			if err != nil {
				return nil, err
			}
			trainer := &rpol.Trainer{Net: net, Shard: train, Device: device}
			return trainer.RunEpoch(p)
		}
		var pooled []float64
		for pair := 0; pair < pairs; pair++ {
			base := seed + int64(interval)*100 + int64(pair)*2
			t1, err := run(gpu.G3090, base+1)
			if err != nil {
				return nil, err
			}
			t2, err := run(gpu.GA10, base+2)
			if err != nil {
				return nil, err
			}
			dists, err := rpol.TraceDistances(t1, t2)
			if err != nil {
				return nil, err
			}
			pooled = append(pooled, dists...)
		}
		summary, err := stats.Summarize(pooled)
		if err != nil {
			return nil, err
		}
		res.Intervals = append(res.Intervals, interval)
		res.MaxErrors = append(res.MaxErrors, summary.MeanPlusSD)
		res.Table.Add(interval, summary.MeanPlusSD)
	}
	if len(res.Intervals) >= 2 {
		xs := make([]float64, len(res.Intervals))
		for i, v := range res.Intervals {
			xs[i] = float64(v)
		}
		if r, err := stats.Pearson(xs, res.MaxErrors); err == nil {
			res.LinearCorrelation = r
		}
	}
	return res, nil
}
