package experiments

import (
	"time"

	"rpol/internal/economics"
)

// Table3Options configures the overhead breakdown.
type Table3Options struct {
	// Task and Workers (paper: ResNet50 on ImageNet, 100 workers).
	Task    string
	Workers int
	Cost    CostModelOptions
	Pricing economics.Pricing
}

func (o *Table3Options) defaults() {
	if o.Task == "" {
		o.Task = "resnet50-imagenet"
	}
	if o.Workers <= 0 {
		o.Workers = 100
	}
	if o.Pricing == (economics.Pricing{}) {
		o.Pricing = economics.DefaultPricing()
	}
}

// Table3Row is one scheme's resource bill.
type Table3Row struct {
	Scheme string
	// ManagerComp and WorkerComp are per-epoch computation times.
	ManagerComp, WorkerComp time.Duration
	// CommGB is the epoch's total WAN traffic.
	CommGB float64
	// StorageGB is one worker's checkpoint archive.
	StorageGB float64
	// CapitalCost is the epoch's dollar bill under the pricing card: all
	// workers' GPU time, the manager's GPU time, WAN traffic, and storage
	// prorated for the epoch's duration.
	CapitalCost float64
}

// Table3Result reproduces Table III.
type Table3Result struct {
	Rows  []Table3Row
	Table Table
}

// Table3 computes the per-epoch computation, communication, storage, and
// capital costs of the three schemes at paper scale.
func Table3(opts Table3Options) (*Table3Result, error) {
	opts.defaults()
	res := &Table3Result{Table: Table{
		Caption: "Table III — per-epoch overhead (ResNet50 + ImageNet cost model)",
		Headers: []string{"scheme", "mgr comp (s)", "worker comp (s)", "comm (GB)", "storage/worker (GB)", "capital cost ($)"},
	}}
	const gb = 1e9
	for _, scheme := range []string{"baseline", "RPoLv1", "RPoLv2"} {
		cell, err := ComputeEpochCost(opts.Task, scheme, opts.Workers, opts.Cost)
		if err != nil {
			return nil, err
		}
		// Capital cost: every worker's GPU time plus the manager's, the
		// WAN bill, and storage prorated for the epoch duration (a tiny
		// fraction of the monthly rate — checkpoints live only until
		// verification completes).
		gpuTime := time.Duration(int64(cell.WorkerComp)*int64(opts.Workers)) + cell.ManagerComp
		epochMonths := cell.Total.Hours() / (30 * 24)
		usage := economics.Usage{
			GPUTime:       gpuTime,
			CommBytes:     cell.CommBytes,
			StorageBytes:  cell.StorageBytes * int64(opts.Workers),
			StorageMonths: epochMonths,
		}
		row := Table3Row{
			Scheme:      scheme,
			ManagerComp: cell.ManagerComp,
			WorkerComp:  cell.WorkerComp,
			CommGB:      float64(cell.CommBytes) / gb,
			StorageGB:   float64(cell.StorageBytes) / gb,
			CapitalCost: economics.CapitalCost(usage, opts.Pricing),
		}
		res.Rows = append(res.Rows, row)
		res.Table.Add(scheme, row.ManagerComp.Seconds(), row.WorkerComp.Seconds(),
			row.CommGB, row.StorageGB, row.CapitalCost)
	}
	return res, nil
}
