package experiments

import (
	"fmt"

	"rpol/internal/pool"
	"rpol/internal/rpol"
)

// Fig6Options configures the attack-resilience experiment.
type Fig6Options struct {
	// Tasks defaults to the paper's two (ResNet18/CIFAR-10 and
	// ResNet50/CIFAR-100 proxies).
	Tasks []string
	// AdversaryFractions to sweep (paper: 10 %–90 %).
	AdversaryFractions []float64
	// Epochs per run.
	Epochs int
	// NumWorkers in the pool (paper: 10).
	NumWorkers int
	// StepsPerEpoch of each worker's sub-task.
	StepsPerEpoch int
	Seed          int64
}

func (o *Fig6Options) defaults() {
	if len(o.Tasks) == 0 {
		o.Tasks = []string{"resnet18-cifar10", "resnet50-cifar100"}
	}
	if len(o.AdversaryFractions) == 0 {
		o.AdversaryFractions = []float64{0.1, 0.5, 0.9}
	}
	if o.Epochs <= 0 {
		o.Epochs = 5
	}
	if o.NumWorkers <= 0 {
		o.NumWorkers = 10
	}
	if o.StepsPerEpoch <= 0 {
		o.StepsPerEpoch = 10
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// Fig6Run is one (task, attack, scheme, fraction) accuracy curve.
type Fig6Run struct {
	Task     string
	Attack   string // "adv1" or "adv2"
	Scheme   rpol.Scheme
	Fraction float64
	// Accuracy is the per-epoch test accuracy of the global model.
	Accuracy []float64
	// Detected / Missed tally adversarial submissions across all epochs.
	Detected, Missed int
	FalseRejections  int
}

// Final returns the last epoch's accuracy.
func (r Fig6Run) Final() float64 {
	if len(r.Accuracy) == 0 {
		return 0
	}
	return r.Accuracy[len(r.Accuracy)-1]
}

// Fig6Result reproduces Fig. 6: global-model accuracy under Adv1/Adv2 for
// the insecure baseline versus RPoLv1/RPoLv2 across adversary shares.
type Fig6Result struct {
	Runs  []Fig6Run
	Table Table
}

// Fig6 sweeps attack type × scheme × adversary fraction.
func Fig6(opts Fig6Options) (*Fig6Result, error) {
	opts.defaults()
	schemes := []rpol.Scheme{rpol.SchemeBaseline, rpol.SchemeV1, rpol.SchemeV2}
	attacks := []string{"adv1", "adv2"}
	res := &Fig6Result{Table: Table{
		Caption: "Fig. 6 — test accuracy under attack (baseline vs RPoLv1 vs RPoLv2)",
		Headers: []string{"task", "attack", "fraction", "scheme", "final acc", "detected", "missed", "false rej"},
	}}
	for _, task := range opts.Tasks {
		for _, attack := range attacks {
			for _, frac := range opts.AdversaryFractions {
				for _, scheme := range schemes {
					run, err := fig6Run(task, attack, scheme, frac, opts)
					if err != nil {
						return nil, fmt.Errorf("fig6 %s/%s/%v/%s: %w", task, attack, frac, scheme, err)
					}
					res.Runs = append(res.Runs, *run)
					res.Table.Add(task, attack, frac, scheme.String(),
						run.Final(), run.Detected, run.Missed, run.FalseRejections)
				}
			}
		}
	}
	return res, nil
}

func fig6Run(task, attack string, scheme rpol.Scheme, frac float64, opts Fig6Options) (*Fig6Run, error) {
	cfg := pool.Config{
		TaskName:      task,
		Scheme:        scheme,
		NumWorkers:    opts.NumWorkers,
		StepsPerEpoch: opts.StepsPerEpoch,
		Seed:          opts.Seed,
	}
	switch attack {
	case "adv1":
		cfg.Adv1Fraction = frac
	case "adv2":
		cfg.Adv2Fraction = frac
	default:
		return nil, fmt.Errorf("unknown attack %q", attack)
	}
	p, err := pool.New(cfg)
	if err != nil {
		return nil, err
	}
	history, err := p.RunEpochs(opts.Epochs)
	if err != nil {
		return nil, err
	}
	run := &Fig6Run{Task: task, Attack: attack, Scheme: scheme, Fraction: frac}
	for _, s := range history {
		run.Accuracy = append(run.Accuracy, s.TestAccuracy)
		run.Detected += s.DetectedAdversaries
		run.Missed += s.MissedAdversaries
		run.FalseRejections += s.FalseRejections
	}
	return run, nil
}
