// Package obs is the protocol-wide observability layer: typed metrics
// (counters, gauges, fixed-bucket histograms) in a Registry with snapshot,
// reset, and text/JSON exposition, plus a span-style structured event Tracer
// that records the RPoL pipeline phases (task publish, training, commitment,
// challenge sampling, reproduction, LSH compare, verdicts, settlement) as
// JSON Lines.
//
// The package is stdlib-only, deterministic, and allocation-light. Every
// entry point is nil-safe: a nil *Registry returns nil instruments whose
// methods no-op, and a nil *Tracer returns nil spans, so instrumented code
// never branches on "is observability enabled". Timestamps are routed
// through an injectable Clock whose default is simulated (logical) time, so
// instrumenting a seeded run does not perturb its protocol results — wall
// time is an explicit opt-in.
package obs

import "sync/atomic"

// Observer bundles a metrics registry, a tracer, and a live event log so
// instrumented code threads one handle. The zero value and nil are both
// valid (fully disabled).
type Observer struct {
	registry *Registry
	tracer   *Tracer
	events   *Events
}

// NewObserver pairs a registry with a tracer; either may be nil. Attach a
// live event log with AttachEvents.
func NewObserver(reg *Registry, tr *Tracer) *Observer {
	return &Observer{registry: reg, tracer: tr}
}

// AttachEvents installs the live event log instrumented code publishes
// into (nil detaches). Call before the observer starts being shared.
func (o *Observer) AttachEvents(e *Events) {
	if o == nil {
		return
	}
	o.events = e
}

// Events returns the observer's live event log (nil when disabled).
func (o *Observer) Events() *Events {
	if o == nil {
		return nil
	}
	return o.events
}

// Publish appends an event to the observer's live event log; a nil
// observer (or one without an event log) no-ops.
func (o *Observer) Publish(ev StreamEvent) { o.Events().Publish(ev) }

// Registry returns the observer's metrics registry (nil when disabled).
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.registry
}

// Tracer returns the observer's tracer (nil when disabled).
func (o *Observer) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.tracer
}

// Counter resolves a counter by name; nil observer yields a no-op counter.
func (o *Observer) Counter(name string) *Counter { return o.Registry().Counter(name) }

// Gauge resolves a gauge by name; nil observer yields a no-op gauge.
func (o *Observer) Gauge(name string) *Gauge { return o.Registry().Gauge(name) }

// Histogram resolves a histogram by name; nil observer yields a no-op
// histogram.
func (o *Observer) Histogram(name string, buckets []float64) *Histogram {
	return o.Registry().Histogram(name, buckets)
}

// Start opens a span under parent; nil observer (or tracer) yields nil,
// which is safe to End.
func (o *Observer) Start(parent *Span, name string, attrs ...Attr) *Span {
	return o.Tracer().Start(parent, name, attrs...)
}

// defaultObserver is the process-wide fallback used by instrumented code
// whose configuration carries no explicit observer. It starts nil
// (disabled); commands like rpolbench install one before running so that
// internally-constructed pools record into it.
var defaultObserver atomic.Pointer[Observer]

// Default returns the process-wide observer, nil when none was installed.
func Default() *Observer { return defaultObserver.Load() }

// SetDefault installs the process-wide observer; nil disables it.
func SetDefault(o *Observer) { defaultObserver.Store(o) }

// OrDefault returns o when non-nil and the process-wide observer otherwise.
func (o *Observer) OrDefault() *Observer {
	if o != nil {
		return o
	}
	return Default()
}
