package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterMath(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	c.Inc()
	c.Add(41)
	c.Add(-5) // counters only go up
	c.Add(0)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	if r.Counter("x") != c {
		t.Fatal("second lookup returned a different counter")
	}
}

func TestGaugeMath(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("acc")
	g.Set(0.75)
	g.Set(0.5)
	if got := g.Value(); got != 0.5 {
		t.Fatalf("gauge = %g, want 0.5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	// Unsorted bounds are sorted at creation.
	h := r.Histogram("lat", []float64{10, 1, 5})
	for _, v := range []float64{0.5, 1, 3, 7, 100} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["lat"]
	if want := []float64{1, 5, 10}; len(s.Bounds) != 3 || s.Bounds[0] != want[0] || s.Bounds[2] != want[2] {
		t.Fatalf("bounds = %v, want %v", s.Bounds, want)
	}
	// 0.5 and 1 fall in le1 (SearchFloat64s: first bound >= v), 3 in le5,
	// 7 in le10, 100 overflows.
	if want := []int64{2, 1, 1, 1}; len(s.Counts) != 4 ||
		s.Counts[0] != want[0] || s.Counts[1] != want[1] || s.Counts[2] != want[2] || s.Counts[3] != want[3] {
		t.Fatalf("counts = %v, want %v", s.Counts, want)
	}
	if s.Count != 5 || s.Sum != 111.5 {
		t.Fatalf("count=%d sum=%g, want 5 and 111.5", s.Count, s.Sum)
	}
	// Later lookups keep the original buckets.
	if h2 := r.Histogram("lat", []float64{99}); h2 != h {
		t.Fatal("re-lookup with different bounds returned a new histogram")
	}
}

func TestSnapshotIsolation(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(1)
	r.Gauge("g").Set(2)
	r.Histogram("h", []float64{1}).Observe(0.5)
	s := r.Snapshot()

	r.Counter("c").Add(10)
	r.Gauge("g").Set(20)
	r.Histogram("h", nil).Observe(0.5)

	if s.Counters["c"] != 1 {
		t.Errorf("snapshot counter mutated: %d", s.Counters["c"])
	}
	if s.Gauges["g"] != 2 {
		t.Errorf("snapshot gauge mutated: %g", s.Gauges["g"])
	}
	if h := s.Histograms["h"]; h.Count != 1 {
		t.Errorf("snapshot histogram mutated: count=%d", h.Count)
	}
}

func TestResetKeepsInstrumentIdentity(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Add(7)
	h := r.Histogram("h", []float64{1})
	h.Observe(0.5)
	r.Reset()
	if c.Value() != 0 {
		t.Errorf("counter after reset = %d", c.Value())
	}
	if s := r.Snapshot().Histograms["h"]; s.Count != 0 || s.Counts[0] != 0 {
		t.Errorf("histogram after reset: %+v", s)
	}
	// Cached handles stay live.
	c.Inc()
	if r.Counter("c").Value() != 1 {
		t.Error("cached counter handle detached by Reset")
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("c").Inc()
	r.Gauge("g").Set(1)
	r.Histogram("h", []float64{1}).Observe(1)
	r.Reset()
	if !r.Snapshot().Empty() {
		t.Error("nil registry snapshot not empty")
	}

	var o *Observer
	o.Counter("c").Inc()
	o.Start(nil, "span").End()
	if o.OrDefault() != Default() {
		t.Error("nil observer OrDefault != Default")
	}

	var tr *Tracer
	tr.Start(nil, "x").End()
	if err := tr.Err(); err != nil {
		t.Errorf("nil tracer err: %v", err)
	}
}

func TestWriteTextSortedExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(2)
	r.Counter("a_total").Add(1)
	r.Gauge("alpha").Set(0.25)
	r.Histogram("err", []float64{1, 10}).Observe(3)
	var sb strings.Builder
	if err := r.Snapshot().WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	want := "counter a_total 1\n" +
		"counter b_total 2\n" +
		"gauge alpha 0.25\n" +
		"histogram err count=1 sum=3 le1=0 le10=1 leInf=0\n"
	if sb.String() != want {
		t.Errorf("exposition:\n%s\nwant:\n%s", sb.String(), want)
	}
}

func TestConcurrentCounters(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c").Inc()
				r.Histogram("h", []float64{0.5}).Observe(float64(j % 2))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Errorf("concurrent counter = %d, want 8000", got)
	}
	if got := r.Snapshot().Histograms["h"].Count; got != 8000 {
		t.Errorf("concurrent histogram count = %d, want 8000", got)
	}
}
