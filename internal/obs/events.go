package obs

import "sync"

// Live event kinds published by instrumented protocol code. Events are the
// discrete counterpart of the registry's cumulative counters: "worker-07
// was absent in epoch 3" rather than "absences so far: 5". They exist for
// operators watching a long-running pool, so publication must never block
// or perturb the protocol hot path (see Events).
const (
	// EventEpochSealed marks one pool epoch settled: verdicts recorded,
	// rewards credited, global model advanced.
	EventEpochSealed = "epoch_sealed"
	// EventPoolResumed marks a pool recovering its position from the epoch
	// journal after a restart.
	EventPoolResumed = "pool_resumed"
	// EventVerdictAccepted and EventVerdictRejected are per-worker
	// verification outcomes.
	EventVerdictAccepted = "verdict_accepted"
	EventVerdictRejected = "verdict_rejected"
	// EventWorkerAbsent marks a worker that missed an epoch entirely
	// (crash, partition, persistent loss) — unreachable, not adversarial.
	EventWorkerAbsent = "worker_absent"
	// EventCheckpointCorrupt marks a durable checkpoint whose bytes failed
	// their digest on resume; the worker falls back to the prefix before it.
	EventCheckpointCorrupt = "checkpoint_corrupt"
	// EventFaultInjected marks one fault a deterministic FaultPlan injected
	// into a message fabric (a drop or a delay).
	EventFaultInjected = "fault_injected"
	// EventJournalRecovery marks a journal replay: the intact prefix
	// adopted, the torn tail discarded.
	EventJournalRecovery = "journal_recovery"
)

// StreamEvent is one entry in the live event log. Seq and TS are assigned
// at publish time: Seq is strictly increasing within one Events log, and TS
// is a reading of the log's clock (logical by default, so event timestamps
// never perturb — or depend on — protocol results).
type StreamEvent struct {
	Seq    uint64 `json:"seq"`
	TS     int64  `json:"ts"`
	Kind   string `json:"kind"`
	Worker string `json:"worker,omitempty"`
	Epoch  int64  `json:"epoch"`
	Detail string `json:"detail,omitempty"`
}

// Events is a bounded, ring-buffered event log with pull-based tailing:
// publishers append under a single short lock, consumers read by sequence
// number. When a consumer falls behind the ring's capacity the oldest
// events are simply overwritten (drop-oldest) and the gap is reported — and
// counted in obs_events_dropped_total once Observe attached a registry — so
// a slow dashboard can never apply backpressure to the protocol.
//
// A nil *Events no-ops on every method, mirroring the package's instrument
// contract, so publication sites need no enablement checks.
type Events struct {
	clock Clock

	mu      sync.Mutex
	ring    []StreamEvent
	next    uint64 // next sequence number to assign (first is 1)
	last    map[string]StreamEvent
	subs    []*Subscription
	dropped int64
	cDrop   *Counter
}

// defaultEventCapacity sizes the ring when NewEvents gets capacity <= 0.
const defaultEventCapacity = 1024

// NewEvents returns an event log retaining the most recent capacity events
// (a capacity <= 0 selects the 1024-entry default). Timestamps come from
// clock; nil selects a fresh deterministic SimClock.
func NewEvents(capacity int, clock Clock) *Events {
	if capacity <= 0 {
		capacity = defaultEventCapacity
	}
	if clock == nil {
		clock = NewSimClock(0)
	}
	return &Events{
		clock: clock,
		ring:  make([]StreamEvent, capacity),
		next:  1,
		last:  make(map[string]StreamEvent),
	}
}

// Observe mirrors the log's drop accounting into reg as
// obs_events_dropped_total. Drops recorded before Observe are backfilled.
func (e *Events) Observe(reg *Registry) {
	if e == nil || reg == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.cDrop = reg.Counter("obs_events_dropped_total")
	e.cDrop.Add(e.dropped)
}

// Clock returns the clock the log stamps events with (nil for a nil log).
func (e *Events) Clock() Clock {
	if e == nil {
		return nil
	}
	return e.clock
}

// Publish appends one event, assigning its sequence number and timestamp,
// and wakes waiting subscribers. It never blocks beyond the log's own
// short lock: slow consumers lose old events instead of stalling the
// publisher.
func (e *Events) Publish(ev StreamEvent) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	ev.Seq = e.next
	ev.TS = e.clock.Now()
	e.next++
	e.ring[int((ev.Seq-1)%uint64(len(e.ring)))] = ev
	e.last[ev.Kind] = ev
	for _, s := range e.subs {
		select {
		case s.notify <- struct{}{}:
		default: // already signalled; the pending wakeup covers this event
		}
	}
}

// LastSeq returns the sequence number of the most recent event (0 when
// nothing has been published).
func (e *Events) LastSeq() uint64 {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.next - 1
}

// Last returns the most recent event of the given kind.
func (e *Events) Last(kind string) (StreamEvent, bool) {
	if e == nil {
		return StreamEvent{}, false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	ev, ok := e.last[kind]
	return ev, ok
}

// Dropped returns the total number of event deliveries lost to slow
// consumers (ring overwrites observed as gaps at read time).
func (e *Events) Dropped() int64 {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.dropped
}

// Since copies out every retained event with sequence number > since, in
// order. latest is the newest sequence number assigned so far (pass it — or
// the last returned event's Seq — as the next call's since). dropped counts
// events the caller asked for that were already overwritten; it is also
// added to the log's drop accounting.
func (e *Events) Since(since uint64) (evs []StreamEvent, latest uint64, dropped uint64) {
	if e == nil {
		return nil, 0, 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.sinceLocked(since)
}

// sinceLocked implements Since with e.mu held.
func (e *Events) sinceLocked(since uint64) (evs []StreamEvent, latest uint64, dropped uint64) {
	latest = e.next - 1
	start := since + 1
	oldest := uint64(1)
	if n := uint64(len(e.ring)); e.next > n+1 {
		oldest = e.next - n
	}
	if start < oldest {
		dropped = oldest - start
		e.dropped += int64(dropped)
		e.cDrop.Add(int64(dropped))
		start = oldest
	}
	if start > latest {
		return nil, latest, dropped
	}
	evs = make([]StreamEvent, 0, latest-start+1)
	for seq := start; seq <= latest; seq++ {
		evs = append(evs, e.ring[int((seq-1)%uint64(len(e.ring)))])
	}
	return evs, latest, dropped
}

// Subscribe registers a tailing consumer positioned at the current end of
// the log. A nil log returns a nil subscription, which is itself inert.
func (e *Events) Subscribe() *Subscription {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	s := &Subscription{events: e, cursor: e.next - 1, notify: make(chan struct{}, 1)}
	e.subs = append(e.subs, s)
	return s
}

// Subscription is one consumer's cursor into an Events log. Consumers
// alternate Ready (wait for a wakeup) and Poll (drain everything new); a
// consumer that polls too rarely loses the overwritten events and sees the
// loss in Poll's dropped count. All methods are nil-safe.
type Subscription struct {
	events *Events
	cursor uint64 // guarded by events.mu
	notify chan struct{}
	closed bool // guarded by events.mu
}

// Ready returns a channel that receives a token whenever events may be
// pending. A nil subscription returns nil (which blocks forever — pair
// with Poll in a select that has an exit path).
func (s *Subscription) Ready() <-chan struct{} {
	if s == nil {
		return nil
	}
	return s.notify
}

// Poll drains every event published since the previous Poll, advancing the
// cursor. dropped counts events lost to ring overwrite since then.
func (s *Subscription) Poll() (evs []StreamEvent, dropped uint64) {
	if s == nil {
		return nil, 0
	}
	e := s.events
	e.mu.Lock()
	defer e.mu.Unlock()
	if s.closed {
		return nil, 0
	}
	evs, latest, dropped := e.sinceLocked(s.cursor)
	s.cursor = latest
	return evs, dropped
}

// Close unregisters the subscription; further Polls return nothing.
func (s *Subscription) Close() {
	if s == nil {
		return
	}
	e := s.events
	e.mu.Lock()
	defer e.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	for i, sub := range e.subs {
		if sub == s {
			e.subs = append(e.subs[:i], e.subs[i+1:]...)
			break
		}
	}
}
