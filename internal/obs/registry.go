package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric. A nil counter
// no-ops, so instrumented code needs no enablement checks.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (negative n is ignored — counters only go
// up).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float metric. A nil gauge no-ops.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores the gauge's value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram accumulates observations into fixed upper-bound buckets plus an
// implicit +Inf overflow bucket. A nil histogram no-ops.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds
	counts []int64   // len(bounds)+1; last is overflow
	sum    float64
	n      int64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v
	h.counts[i]++
	h.sum += v
	h.n++
}

// Registry is a named collection of instruments. Lookups create on first
// use; instruments are cached by callers on hot paths. All methods are
// nil-safe and safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// ascending upper bounds on first use (later calls keep the original
// buckets). Unsorted bounds are sorted; empty bounds get a single overflow
// bucket.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		bs := append([]float64(nil), bounds...)
		sort.Float64s(bs)
		h = &Histogram{bounds: bs, counts: make([]int64, len(bs)+1)}
		r.hists[name] = h
	}
	return h
}

// Reset zeroes every registered instrument (the instruments themselves stay
// registered, so cached handles remain valid).
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.bits.Store(0)
	}
	for _, h := range r.hists {
		h.mu.Lock()
		for i := range h.counts {
			h.counts[i] = 0
		}
		h.sum, h.n = 0, 0
		h.mu.Unlock()
	}
}

// HistogramSnapshot is one histogram's frozen state.
type HistogramSnapshot struct {
	// Bounds are the ascending bucket upper bounds; Counts has one extra
	// trailing entry for the +Inf overflow bucket.
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  int64     `json:"count"`
}

// Quantile estimates the q-th quantile (q in [0, 1]) of the recorded
// distribution from the bucket tallies, interpolating linearly within the
// bucket the rank falls into — the standard exposition-format estimate. A
// rank landing in the +Inf overflow bucket is clamped to the highest finite
// bound (the mean when there are no finite bounds); an empty histogram
// estimates 0.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	var cum int64
	for i, c := range h.Counts {
		if float64(cum+c) < rank || c == 0 {
			cum += c
			continue
		}
		if i >= len(h.Bounds) {
			break // overflow bucket: clamp below
		}
		upper := h.Bounds[i]
		lower := 0.0
		if i > 0 {
			lower = h.Bounds[i-1]
		} else if upper < 0 {
			lower = upper
		}
		return lower + (upper-lower)*((rank-float64(cum))/float64(c))
	}
	if len(h.Bounds) == 0 {
		return h.Sum / float64(h.Count)
	}
	return h.Bounds[len(h.Bounds)-1]
}

// Snapshot is a frozen, isolated copy of a registry's state: mutating the
// registry after the fact does not change it.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot freezes the registry. A nil registry yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		h.mu.Lock()
		s.Histograms[name] = HistogramSnapshot{
			Bounds: append([]float64(nil), h.bounds...),
			Counts: append([]int64(nil), h.counts...),
			Sum:    h.sum,
			Count:  h.n,
		}
		h.mu.Unlock()
	}
	return s
}

// Empty reports whether the snapshot holds no instruments at all.
func (s Snapshot) Empty() bool {
	return len(s.Counters) == 0 && len(s.Gauges) == 0 && len(s.Histograms) == 0
}

// WriteText writes the snapshot in a sorted, line-oriented exposition
// format: one "kind name value" line per instrument.
func (s Snapshot) WriteText(w io.Writer) error {
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := fmt.Fprintf(w, "counter %s %d\n", name, s.Counters[name]); err != nil {
			return err
		}
	}
	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := fmt.Fprintf(w, "gauge %s %g\n", name, s.Gauges[name]); err != nil {
			return err
		}
	}
	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		if _, err := fmt.Fprintf(w, "histogram %s count=%d sum=%g", name, h.Count, h.Sum); err != nil {
			return err
		}
		for i, bound := range h.Bounds {
			if _, err := fmt.Fprintf(w, " le%g=%d", bound, h.Counts[i]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, " leInf=%d\n", h.Counts[len(h.Counts)-1]); err != nil {
			return err
		}
	}
	return nil
}

// JSON returns the snapshot as deterministic (sorted-key) JSON.
func (s Snapshot) JSON() ([]byte, error) { return json.MarshalIndent(s, "", "  ") }
