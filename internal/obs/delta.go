package obs

import "sync"

// Delta is the change between two registry snapshots: counters by how much
// they grew, gauges and histograms by their new state when they moved. A
// delta computed against the zero snapshot (Full set) is the full snapshot
// re-expressed as a delta, which is what a consumer gets when its reference
// point has aged out of the stream's history.
type Delta struct {
	// Since is the sequence number the delta is relative to (0 = from
	// empty); Seq identifies the capture the delta runs up to.
	Since uint64 `json:"since"`
	Seq   uint64 `json:"seq"`
	// Full marks a delta whose Since capture was no longer retained: the
	// payload is the complete current state, not an increment.
	Full       bool                         `json:"full,omitempty"`
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Empty reports whether the delta carries no changes.
func (d Delta) Empty() bool {
	return len(d.Counters) == 0 && len(d.Gauges) == 0 && len(d.Histograms) == 0
}

// DiffSnapshots computes cur − prev: counters that grew (by the increment),
// gauges whose bits changed (new value), and histograms that absorbed new
// observations (per-bucket count increments, sum increment). Instruments
// that first appear in cur are reported whole.
func DiffSnapshots(prev, cur Snapshot) Delta {
	d := Delta{}
	for name, v := range cur.Counters {
		if inc := v - prev.Counters[name]; inc != 0 {
			if d.Counters == nil {
				d.Counters = make(map[string]int64)
			}
			d.Counters[name] = inc
		}
	}
	for name, v := range cur.Gauges {
		old, ok := prev.Gauges[name]
		// Bit-level comparison: a gauge is "changed" exactly when Set stored
		// different bits, so no rounding tolerance applies here.
		if !ok || old != v {
			if d.Gauges == nil {
				d.Gauges = make(map[string]float64)
			}
			d.Gauges[name] = v
		}
	}
	for name, h := range cur.Histograms {
		old, ok := prev.Histograms[name]
		if ok && old.Count == h.Count {
			continue
		}
		inc := HistogramSnapshot{
			Bounds: append([]float64(nil), h.Bounds...),
			Counts: append([]int64(nil), h.Counts...),
			Sum:    h.Sum,
			Count:  h.Count,
		}
		if ok && len(old.Counts) == len(h.Counts) {
			for i := range inc.Counts {
				inc.Counts[i] -= old.Counts[i]
			}
			inc.Sum -= old.Sum
			inc.Count -= old.Count
		}
		if d.Histograms == nil {
			d.Histograms = make(map[string]HistogramSnapshot)
		}
		d.Histograms[name] = inc
	}
	return d
}

// Apply folds the delta into the snapshot, returning the advanced state:
// the inverse of DiffSnapshots, used by consumers that maintain a local
// mirror from a snapshot plus a delta stream.
func (s Snapshot) Apply(d Delta) Snapshot {
	out := Snapshot{
		Counters:   make(map[string]int64, len(s.Counters)),
		Gauges:     make(map[string]float64, len(s.Gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(s.Histograms)),
	}
	if d.Full {
		s = Snapshot{} // the delta already carries the complete state
	}
	for name, v := range s.Counters {
		out.Counters[name] = v
	}
	for name, v := range s.Gauges {
		out.Gauges[name] = v
	}
	for name, h := range s.Histograms {
		out.Histograms[name] = HistogramSnapshot{
			Bounds: append([]float64(nil), h.Bounds...),
			Counts: append([]int64(nil), h.Counts...),
			Sum:    h.Sum,
			Count:  h.Count,
		}
	}
	for name, inc := range d.Counters {
		out.Counters[name] += inc
	}
	for name, v := range d.Gauges {
		out.Gauges[name] = v
	}
	for name, inc := range d.Histograms {
		cur, ok := out.Histograms[name]
		if !ok || len(cur.Counts) != len(inc.Counts) {
			out.Histograms[name] = HistogramSnapshot{
				Bounds: append([]float64(nil), inc.Bounds...),
				Counts: append([]int64(nil), inc.Counts...),
				Sum:    inc.Sum,
				Count:  inc.Count,
			}
			continue
		}
		for i := range cur.Counts {
			cur.Counts[i] += inc.Counts[i]
		}
		cur.Sum += inc.Sum
		cur.Count += inc.Count
		out.Histograms[name] = cur
	}
	return out
}

// MetricsStream issues consistent, sequence-numbered captures of one
// registry and serves deltas between any retained capture and the present.
// It is the pull side of live metrics: each consumer remembers only the
// last sequence number it saw and asks for "what changed since". Captures
// older than the history window age out; a delta against an aged-out
// capture degrades to a full snapshot (Delta.Full), never an error.
//
// It is safe for concurrent use and never blocks publishers: capturing
// reads the registry under the registry's own locking, exactly as a
// one-shot Snapshot does.
type MetricsStream struct {
	reg *Registry

	mu      sync.Mutex
	seq     uint64
	history []streamCapture // append-ordered, bounded to keep entries
	keep    int
}

// streamCapture is one retained (seq, snapshot) pair.
type streamCapture struct {
	seq  uint64
	snap Snapshot
}

// defaultStreamHistory bounds retained captures when NewMetricsStream gets
// keep <= 0: enough for several consumers polling at different cadences.
const defaultStreamHistory = 64

// NewMetricsStream wraps reg (which may be nil — captures are then empty).
func NewMetricsStream(reg *Registry, keep int) *MetricsStream {
	if keep <= 0 {
		keep = defaultStreamHistory
	}
	return &MetricsStream{reg: reg, keep: keep}
}

// Capture freezes the registry now, assigns the capture a sequence number,
// and retains it for future deltas.
func (m *MetricsStream) Capture() (uint64, Snapshot) {
	snap := m.reg.Snapshot()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.seq++
	m.history = append(m.history, streamCapture{seq: m.seq, snap: snap})
	if len(m.history) > m.keep {
		m.history = m.history[len(m.history)-m.keep:]
	}
	return m.seq, snap
}

// DeltaSince captures the registry now and returns the change since the
// capture numbered since. since = 0 — or a sequence that has aged out of
// the history — yields the full state with Delta.Full set.
func (m *MetricsStream) DeltaSince(since uint64) Delta {
	seq, cur := m.Capture()
	var prev Snapshot
	found := false
	if since > 0 {
		m.mu.Lock()
		for _, c := range m.history {
			if c.seq == since {
				prev = c.snap
				found = true
				break
			}
		}
		m.mu.Unlock()
	}
	d := DiffSnapshots(prev, cur)
	d.Since = since
	d.Seq = seq
	d.Full = !found
	return d
}
