package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// Attr is one key/value annotation on a span event.
type Attr struct {
	Key   string
	Value any
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer attribute.
func Int(k string, v int64) Attr { return Attr{Key: k, Value: v} }

// Float builds a float attribute.
func Float(k string, v float64) Attr { return Attr{Key: k, Value: v} }

// Bool builds a boolean attribute.
func Bool(k string, v bool) Attr { return Attr{Key: k, Value: v} }

// Event is one JSONL trace record: a span start or end.
type Event struct {
	// Ev is "start" or "end".
	Ev string `json:"ev"`
	// ID is the span's identifier; Parent is 0 for root spans.
	ID     int64  `json:"id"`
	Parent int64  `json:"parent,omitempty"`
	Name   string `json:"name,omitempty"`
	// TS is the clock reading in nanoseconds (logical under SimClock).
	TS    int64          `json:"ts"`
	Attrs map[string]any `json:"attrs,omitempty"`
}

// Tracer streams structured start/end span events as JSON Lines to a sink.
// It is safe for concurrent use; a nil tracer is fully disabled.
type Tracer struct {
	clock  Clock
	nextID atomic.Int64

	mu  sync.Mutex
	w   io.Writer
	err error
}

// NewTracer writes span events to w, timestamping through clock (a fresh
// SimClock when nil). The caller owns w's lifecycle; wrap slow sinks in a
// bufio.Writer and Flush via Close.
func NewTracer(w io.Writer, clock Clock) *Tracer {
	if clock == nil {
		clock = NewSimClock(0)
	}
	return &Tracer{clock: clock, w: w}
}

// Span is one traced operation. A nil span is inert: Ending it, or starting
// children under it, is safe (children of a nil parent become root spans of
// whatever tracer starts them).
type Span struct {
	tracer *Tracer
	id     int64
	parent int64
	ended  atomic.Bool
}

// ID returns the span's identifier (0 for a nil span).
func (s *Span) ID() int64 {
	if s == nil {
		return 0
	}
	return s.id
}

// Start opens a span named name under parent (nil parent → root span) and
// writes its start event.
func (t *Tracer) Start(parent *Span, name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	s := &Span{tracer: t, id: t.nextID.Add(1), parent: parent.ID()}
	t.emit(Event{Ev: "start", ID: s.id, Parent: s.parent, Name: name, TS: t.clock.Now(), Attrs: attrMap(attrs)})
	return s
}

// End closes the span, writing its end event. Idempotent and nil-safe.
func (s *Span) End(attrs ...Attr) {
	if s == nil || !s.ended.CompareAndSwap(false, true) {
		return
	}
	t := s.tracer
	t.emit(Event{Ev: "end", ID: s.id, TS: t.clock.Now(), Attrs: attrMap(attrs)})
}

func attrMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value
	}
	return m
}

func (t *Tracer) emit(ev Event) {
	data, err := json.Marshal(ev)
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	if err != nil {
		t.err = err
		return
	}
	if _, err := t.w.Write(append(data, '\n')); err != nil {
		t.err = err
	}
}

// Err returns the first write or encoding error the tracer hit, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// ReadEvents parses a JSONL trace back into events (blank lines skipped).
func ReadEvents(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(raw, &ev); err != nil {
			return nil, fmt.Errorf("obs trace line %d: %w", line, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs trace: %w", err)
	}
	return out, nil
}

// SpanTree indexes a parsed trace: the name and parent of every span.
type SpanTree struct {
	names   map[int64]string
	parents map[int64]int64
}

// BuildSpanTree indexes start events by span ID.
func BuildSpanTree(events []Event) *SpanTree {
	t := &SpanTree{names: make(map[int64]string), parents: make(map[int64]int64)}
	for _, ev := range events {
		if ev.Ev == "start" {
			t.names[ev.ID] = ev.Name
			t.parents[ev.ID] = ev.Parent
		}
	}
	return t
}

// Name returns the span's name ("" when unknown).
func (t *SpanTree) Name(id int64) string { return t.names[id] }

// Ancestry returns the span names from id up to its root, starting with id's
// own name.
func (t *SpanTree) Ancestry(id int64) []string {
	var out []string
	for id != 0 {
		name, ok := t.names[id]
		if !ok {
			break
		}
		out = append(out, name)
		id = t.parents[id]
	}
	return out
}

// SpansNamed returns the IDs of spans with the given name, in start order.
func (t *SpanTree) SpansNamed(name string) []int64 {
	var out []int64
	for id, n := range t.names {
		if n == name {
			out = append(out, id)
		}
	}
	// map iteration is unordered; IDs are assigned in start order
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
