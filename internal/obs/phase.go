package obs

import "sort"

// RPoL pipeline phase names. These key the per-epoch PhaseBreakdown and
// prefix the mirrored registry counters (rpol_phase_<name>_*_total).
const (
	// PhaseTaskPublish is the manager's epoch fan-out: the global model and
	// hyper-parameters shipped to every worker.
	PhaseTaskPublish = "task_publish"
	// PhaseShardAssign is the construction-time data partition handed to
	// workers.
	PhaseShardAssign = "shard_assign"
	// PhaseTraining is the workers' local checkpointed training.
	PhaseTraining = "training"
	// PhaseCommitment is the submission fan-in: updates, commitments, and
	// LSH digests uploaded to the manager.
	PhaseCommitment = "commitment"
	// PhaseChallenge is the post-commitment checkpoint sampling.
	PhaseChallenge = "challenge"
	// PhaseReproduction is the manager's re-execution of sampled intervals,
	// including the checkpoint openings it pulls.
	PhaseReproduction = "reproduction"
	// PhaseLSH is the LSH sketch-and-compare work (digests committed,
	// matches attempted, misses, double-checks).
	PhaseLSH = "lsh"
	// PhaseVerdict is the accept/reject decisions.
	PhaseVerdict = "verdict"
	// PhaseCalibration is the manager's pre-epoch probe runs and threshold
	// fitting.
	PhaseCalibration = "calibration"
	// PhaseAggregation is the global-model update from accepted submissions.
	PhaseAggregation = "aggregation"
	// PhaseSettlement is the reward credit for accepted submissions.
	PhaseSettlement = "settlement"
)

// PhaseTotals accumulates one phase's cost: how often it ran, the bytes it
// moved, and the training steps it executed.
type PhaseTotals struct {
	Count int64 `json:"count"`
	Bytes int64 `json:"bytes,omitempty"`
	Steps int64 `json:"steps,omitempty"`
}

// PhaseBreakdown maps phase name → totals for one epoch (or an accumulation
// of epochs).
type PhaseBreakdown map[string]PhaseTotals

// Add accumulates d into the named phase.
func (b PhaseBreakdown) Add(phase string, d PhaseTotals) {
	if b == nil {
		return
	}
	t := b[phase]
	t.Count += d.Count
	t.Bytes += d.Bytes
	t.Steps += d.Steps
	b[phase] = t
}

// Merge accumulates every phase of other into b.
func (b PhaseBreakdown) Merge(other PhaseBreakdown) {
	for phase, t := range other {
		b.Add(phase, t)
	}
}

// Clone returns an independent copy.
func (b PhaseBreakdown) Clone() PhaseBreakdown {
	out := make(PhaseBreakdown, len(b))
	for phase, t := range b {
		out[phase] = t
	}
	return out
}

// MirrorTo adds the breakdown into reg's cumulative phase counters
// (rpol_phase_<name>_count_total, _bytes_total, _steps_total). Nil-safe.
func (b PhaseBreakdown) MirrorTo(reg *Registry) {
	if reg == nil {
		return
	}
	for phase, t := range b {
		reg.Counter("rpol_phase_" + phase + "_count_total").Add(t.Count)
		reg.Counter("rpol_phase_" + phase + "_bytes_total").Add(t.Bytes)
		reg.Counter("rpol_phase_" + phase + "_steps_total").Add(t.Steps)
	}
}

// phaseOrder lists the pipeline phases in protocol order for rendering.
var phaseOrder = []string{
	PhaseShardAssign, PhaseCalibration, PhaseTaskPublish, PhaseTraining,
	PhaseCommitment, PhaseChallenge, PhaseReproduction, PhaseLSH,
	PhaseVerdict, PhaseAggregation, PhaseSettlement,
}

// SortedPhases returns b's phase names: known pipeline phases first in
// protocol order, then any others alphabetically.
func (b PhaseBreakdown) SortedPhases() []string {
	out := make([]string, 0, len(b))
	seen := make(map[string]bool, len(b))
	for _, phase := range phaseOrder {
		if _, ok := b[phase]; ok {
			out = append(out, phase)
			seen[phase] = true
		}
	}
	rest := make([]string, 0, len(b))
	for phase := range b {
		if !seen[phase] {
			rest = append(rest, phase)
		}
	}
	sort.Strings(rest)
	return append(out, rest...)
}
