package obs

import "testing"

func TestRenderTableGolden(t *testing.T) {
	got := RenderTable([]string{"name", "value"}, [][]string{
		{"foo", "1"},
		{"barbaz", "22"},
	})
	want := "" +
		"┌────────┬───────┐\n" +
		"│ name   │ value │\n" +
		"├────────┼───────┤\n" +
		"│ foo    │ 1     │\n" +
		"│ barbaz │ 22    │\n" +
		"└────────┴───────┘\n"
	if got != want {
		t.Errorf("table:\n%s\nwant:\n%s", got, want)
	}
}

func TestRenderTableRaggedRows(t *testing.T) {
	got := RenderTable([]string{"a", "b"}, [][]string{
		{"1"},           // short row padded
		{"2", "3", "4"}, // long row truncated
	})
	want := "" +
		"┌───┬───┐\n" +
		"│ a │ b │\n" +
		"├───┼───┤\n" +
		"│ 1 │   │\n" +
		"│ 2 │ 3 │\n" +
		"└───┴───┘\n"
	if got != want {
		t.Errorf("table:\n%s\nwant:\n%s", got, want)
	}
}

func TestRenderTableEmpty(t *testing.T) {
	if got := RenderTable(nil, nil); got != "" {
		t.Errorf("empty table = %q", got)
	}
}

func TestPhaseTableGolden(t *testing.T) {
	b := PhaseBreakdown{}
	b.Add(PhaseTraining, PhaseTotals{Count: 3, Steps: 30})
	b.Add(PhaseCommitment, PhaseTotals{Count: 3, Bytes: 4096})
	b.Add("custom", PhaseTotals{Count: 1})
	got := PhaseTable(b)
	// Protocol order puts training before commitment; unknown phases trail.
	want := "" +
		"┌────────────┬───────┬───────┬───────┐\n" +
		"│ phase      │ count │ bytes │ steps │\n" +
		"├────────────┼───────┼───────┼───────┤\n" +
		"│ training   │ 3     │ 0     │ 30    │\n" +
		"│ commitment │ 3     │ 4096  │ 0     │\n" +
		"│ custom     │ 1     │ 0     │ 0     │\n" +
		"└────────────┴───────┴───────┴───────┘\n"
	if got != want {
		t.Errorf("phase table:\n%s\nwant:\n%s", got, want)
	}
}

func TestMetricsTableGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("rpol_epochs_total").Add(2)
	r.Gauge("rpol_alpha").Set(0.5)
	r.Histogram("rpol_repro_error", []float64{1}).Observe(0.25)
	got := MetricsTable(r.Snapshot())
	// The single 0.25 observation sits in the [0, 1] bucket, so the
	// interpolated quantile estimates are the ranks themselves: p50 = 0.5,
	// p95 = 0.95, p99 = 0.99.
	want := "" +
		"┌───────────┬───────────────────┬──────────────────────────────────────────────────────────┐\n" +
		"│ kind      │ metric            │ value                                                    │\n" +
		"├───────────┼───────────────────┼──────────────────────────────────────────────────────────┤\n" +
		"│ counter   │ rpol_epochs_total │ 2                                                        │\n" +
		"│ gauge     │ rpol_alpha        │ 0.5                                                      │\n" +
		"│ histogram │ rpol_repro_error  │ count=1 sum=0.25 p50=0.5 p95=0.95 p99=0.99 le1=1 leInf=0 │\n" +
		"└───────────┴───────────────────┴──────────────────────────────────────────────────────────┘\n"
	if got != want {
		t.Errorf("metrics table:\n%s\nwant:\n%s", got, want)
	}
}

func TestPhaseBreakdownMergeClone(t *testing.T) {
	a := PhaseBreakdown{}
	a.Add(PhaseTraining, PhaseTotals{Count: 1, Steps: 10})
	b := a.Clone()
	b.Add(PhaseTraining, PhaseTotals{Count: 1, Steps: 10})
	if a[PhaseTraining].Count != 1 {
		t.Error("Clone is not independent")
	}
	a.Merge(b)
	if got := a[PhaseTraining]; got.Count != 3 || got.Steps != 30 {
		t.Errorf("merged totals = %+v", got)
	}
}

func TestPhaseBreakdownMirrorTo(t *testing.T) {
	r := NewRegistry()
	b := PhaseBreakdown{}
	b.Add(PhaseVerdict, PhaseTotals{Count: 5})
	b.Add(PhaseCommitment, PhaseTotals{Count: 2, Bytes: 128})
	b.MirrorTo(r)
	b.MirrorTo(nil) // nil-safe
	if got := r.Counter("rpol_phase_verdict_count_total").Value(); got != 5 {
		t.Errorf("verdict count counter = %d", got)
	}
	if got := r.Counter("rpol_phase_commitment_bytes_total").Value(); got != 128 {
		t.Errorf("commitment bytes counter = %d", got)
	}
}
