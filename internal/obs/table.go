package obs

import (
	"fmt"
	"sort"
	"strings"
	"unicode/utf8"
)

// RenderTable draws headers and rows as a box-drawing table:
//
//	┌──────┬───────┐
//	│ name │ value │
//	├──────┼───────┤
//	│ foo  │ 1     │
//	└──────┴───────┘
//
// Ragged rows are padded to the header width; extra cells are dropped.
func RenderTable(headers []string, rows [][]string) string {
	cols := len(headers)
	if cols == 0 {
		return ""
	}
	widths := make([]int, cols)
	for i, h := range headers {
		widths[i] = utf8.RuneCountInString(h)
	}
	norm := make([][]string, len(rows))
	for r, row := range rows {
		cells := make([]string, cols)
		for i := 0; i < cols && i < len(row); i++ {
			cells[i] = row[i]
			if w := utf8.RuneCountInString(row[i]); w > widths[i] {
				widths[i] = w
			}
		}
		norm[r] = cells
	}

	var sb strings.Builder
	rule := func(left, mid, right string) {
		sb.WriteString(left)
		for i, w := range widths {
			if i > 0 {
				sb.WriteString(mid)
			}
			sb.WriteString(strings.Repeat("─", w+2))
		}
		sb.WriteString(right)
		sb.WriteByte('\n')
	}
	line := func(cells []string) {
		sb.WriteString("│")
		for i, cell := range cells {
			pad := widths[i] - utf8.RuneCountInString(cell)
			sb.WriteString(" ")
			sb.WriteString(cell)
			sb.WriteString(strings.Repeat(" ", pad))
			sb.WriteString(" │")
		}
		sb.WriteByte('\n')
	}
	rule("┌", "┬", "┐")
	line(headers)
	rule("├", "┼", "┤")
	for _, row := range norm {
		line(row)
	}
	rule("└", "┴", "┘")
	return sb.String()
}

// PhaseTable renders a per-phase breakdown in protocol order.
func PhaseTable(b PhaseBreakdown) string {
	rows := make([][]string, 0, len(b))
	for _, phase := range b.SortedPhases() {
		t := b[phase]
		rows = append(rows, []string{
			phase,
			fmt.Sprintf("%d", t.Count),
			fmt.Sprintf("%d", t.Bytes),
			fmt.Sprintf("%d", t.Steps),
		})
	}
	return RenderTable([]string{"phase", "count", "bytes", "steps"}, rows)
}

// MetricsTable renders every instrument of a snapshot, sorted by kind and
// name. Histograms show their count, sum, and per-bucket tallies.
func MetricsTable(s Snapshot) string {
	type row struct{ kind, name, value string }
	rows := make([]row, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	for name, v := range s.Counters {
		rows = append(rows, row{"counter", name, fmt.Sprintf("%d", v)})
	}
	for name, v := range s.Gauges {
		rows = append(rows, row{"gauge", name, fmt.Sprintf("%g", v)})
	}
	for name, h := range s.Histograms {
		var sb strings.Builder
		fmt.Fprintf(&sb, "count=%d sum=%g", h.Count, h.Sum)
		fmt.Fprintf(&sb, " p50=%g p95=%g p99=%g",
			h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99))
		for i, bound := range h.Bounds {
			fmt.Fprintf(&sb, " le%g=%d", bound, h.Counts[i])
		}
		fmt.Fprintf(&sb, " leInf=%d", h.Counts[len(h.Counts)-1])
		rows = append(rows, row{"histogram", name, sb.String()})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].kind != rows[j].kind {
			return rows[i].kind < rows[j].kind
		}
		return rows[i].name < rows[j].name
	})
	cells := make([][]string, len(rows))
	for i, r := range rows {
		cells[i] = []string{r.kind, r.name, r.value}
	}
	return RenderTable([]string{"kind", "metric", "value"}, cells)
}
