package obs

import (
	"sync/atomic"
	"time"
)

// Clock supplies span timestamps in nanoseconds. Implementations must be
// monotonic and safe for concurrent use.
type Clock interface {
	Now() int64
}

// SimClock is the deterministic default clock: logical time that advances by
// a fixed tick on every reading. Two runs issuing the same sequence of
// readings observe identical timestamps, so traces of seeded single-threaded
// runs are byte-identical — and, crucially, reading it consumes no protocol
// randomness, so instrumentation never perturbs results.
type SimClock struct {
	now  atomic.Int64
	tick int64
}

// NewSimClock returns a logical clock advancing by tick per reading
// (defaults to 1µs for a tick ≤ 0).
func NewSimClock(tick time.Duration) *SimClock {
	if tick <= 0 {
		tick = time.Microsecond
	}
	return &SimClock{tick: int64(tick)}
}

// Now advances the logical time by one tick and returns it.
func (c *SimClock) Now() int64 { return c.now.Add(c.tick) }

// Advance moves logical time forward by d (for simulations that model
// elapsed cost explicitly).
func (c *SimClock) Advance(d time.Duration) {
	if d > 0 {
		c.now.Add(int64(d))
	}
}

// WallClock reads real elapsed time since its construction. Opt-in: wall
// timestamps make traces non-reproducible across runs.
type WallClock struct {
	start time.Time
}

// NewWallClock anchors a wall clock at the current instant.
func NewWallClock() *WallClock { return &WallClock{start: time.Now()} }

// Now returns nanoseconds elapsed since the clock was created.
func (c *WallClock) Now() int64 { return int64(time.Since(c.start)) }

// WallSleep pauses the calling goroutine for d of real time. It lives here
// because internal/obs is the one package sanctioned to touch the ambient
// clock (rpolvet's nowallclock analyzer): interactive operator tools — the
// rpoltop dashboard's refresh loop — wait on real time by definition, and
// routing those waits through obs keeps the determinism invariant
// meaningful everywhere else. Protocol code must never call it.
func WallSleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}
