package obs

import (
	"sync"
	"testing"
)

func TestEventsPublishAndSince(t *testing.T) {
	e := NewEvents(8, nil)
	for i := 0; i < 3; i++ {
		e.Publish(StreamEvent{Kind: EventEpochSealed, Epoch: int64(i)})
	}
	evs, latest, dropped := e.Since(0)
	if len(evs) != 3 || latest != 3 || dropped != 0 {
		t.Fatalf("Since(0) = %d events, latest %d, dropped %d", len(evs), latest, dropped)
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Errorf("event %d has seq %d", i, ev.Seq)
		}
		if ev.Epoch != int64(i) {
			t.Errorf("event %d has epoch %d", i, ev.Epoch)
		}
		if ev.TS == 0 {
			t.Errorf("event %d has no timestamp", i)
		}
		if i > 0 && ev.TS <= evs[i-1].TS {
			t.Errorf("timestamps not increasing: %d then %d", evs[i-1].TS, ev.TS)
		}
	}
	// Incremental tail: only the new events since the cursor.
	e.Publish(StreamEvent{Kind: EventWorkerAbsent, Worker: "w1", Epoch: 3})
	evs, latest, dropped = e.Since(3)
	if len(evs) != 1 || latest != 4 || dropped != 0 {
		t.Fatalf("Since(3) = %d events, latest %d, dropped %d", len(evs), latest, dropped)
	}
	if evs[0].Kind != EventWorkerAbsent || evs[0].Worker != "w1" {
		t.Errorf("tail event = %+v", evs[0])
	}
}

func TestEventsDropOldestAccounting(t *testing.T) {
	reg := NewRegistry()
	e := NewEvents(4, nil)
	e.Observe(reg)
	for i := 0; i < 10; i++ {
		e.Publish(StreamEvent{Kind: EventFaultInjected, Epoch: int64(i)})
	}
	// A consumer starting from 0 can only see the last 4 of 10 events; the
	// 6 overwritten ones are reported as its gap and counted.
	evs, latest, dropped := e.Since(0)
	if latest != 10 || dropped != 6 {
		t.Fatalf("latest %d dropped %d, want 10 and 6", latest, dropped)
	}
	if len(evs) != 4 || evs[0].Seq != 7 || evs[3].Seq != 10 {
		t.Fatalf("retained window = %+v", evs)
	}
	if got := e.Dropped(); got != 6 {
		t.Errorf("Dropped() = %d", got)
	}
	if got := reg.Counter("obs_events_dropped_total").Value(); got != 6 {
		t.Errorf("obs_events_dropped_total = %d", got)
	}
}

func TestEventsSlowSubscriber(t *testing.T) {
	reg := NewRegistry()
	e := NewEvents(4, nil)
	e.Observe(reg)
	fast := e.Subscribe()
	slow := e.Subscribe()

	e.Publish(StreamEvent{Kind: EventEpochSealed, Epoch: 0})
	e.Publish(StreamEvent{Kind: EventEpochSealed, Epoch: 1})
	if evs, dropped := fast.Poll(); len(evs) != 2 || dropped != 0 {
		t.Fatalf("fast poll: %d events, dropped %d", len(evs), dropped)
	}
	// The slow subscriber sleeps through 8 more publishes: the ring holds 4,
	// so 6 of its 10 pending events are gone by the time it polls.
	for i := 2; i < 10; i++ {
		e.Publish(StreamEvent{Kind: EventEpochSealed, Epoch: int64(i)})
	}
	evs, dropped := slow.Poll()
	if dropped != 6 {
		t.Fatalf("slow subscriber dropped %d, want 6", dropped)
	}
	if len(evs) != 4 || evs[0].Seq != 7 {
		t.Fatalf("slow subscriber events = %+v", evs)
	}
	if got := reg.Counter("obs_events_dropped_total").Value(); got != 6 {
		t.Errorf("obs_events_dropped_total = %d", got)
	}
	// The fast subscriber missed nothing.
	if evs, dropped := fast.Poll(); len(evs) != 4 || dropped != 4 {
		// It polled after 2, then 8 more arrived into a 4-ring: 4 lost.
		t.Fatalf("fast second poll: %d events, dropped %d", len(evs), dropped)
	}
	slow.Close()
	if evs, _ := slow.Poll(); evs != nil {
		t.Error("closed subscription still returns events")
	}
}

func TestEventsSubscriptionWakeup(t *testing.T) {
	e := NewEvents(8, nil)
	s := e.Subscribe()
	select {
	case <-s.Ready():
		t.Fatal("ready before any publish")
	default:
	}
	e.Publish(StreamEvent{Kind: EventJournalRecovery})
	select {
	case <-s.Ready():
	default:
		t.Fatal("no wakeup after publish")
	}
	if evs, _ := s.Poll(); len(evs) != 1 {
		t.Fatalf("poll after wakeup = %d events", len(evs))
	}
}

func TestEventsLastAndNilSafety(t *testing.T) {
	e := NewEvents(4, nil)
	if _, ok := e.Last(EventEpochSealed); ok {
		t.Error("Last on empty log")
	}
	e.Publish(StreamEvent{Kind: EventEpochSealed, Epoch: 7})
	if ev, ok := e.Last(EventEpochSealed); !ok || ev.Epoch != 7 {
		t.Errorf("Last = %+v, %v", ev, ok)
	}

	var nilEv *Events
	nilEv.Publish(StreamEvent{Kind: "x"})
	nilEv.Observe(NewRegistry())
	if _, _, d := nilEv.Since(0); d != 0 {
		t.Error("nil Since dropped != 0")
	}
	if nilEv.Subscribe() != nil {
		t.Error("nil Subscribe != nil")
	}
	var nilSub *Subscription
	nilSub.Close()
	if evs, _ := nilSub.Poll(); evs != nil {
		t.Error("nil subscription poll")
	}
	if nilSub.Ready() != nil {
		t.Error("nil subscription Ready != nil")
	}

	var nilObs *Observer
	nilObs.Publish(StreamEvent{Kind: "x"}) // must not panic
	nilObs.AttachEvents(e)
	if nilObs.Events() != nil {
		t.Error("nil observer Events != nil")
	}
	o := NewObserver(NewRegistry(), nil)
	o.Publish(StreamEvent{Kind: "x"}) // no log attached: no-op
	o.AttachEvents(e)
	o.Publish(StreamEvent{Kind: EventPoolResumed})
	if _, ok := e.Last(EventPoolResumed); !ok {
		t.Error("observer publish did not reach the log")
	}
}

// TestEventsConcurrentPublishPoll races publishers against tailing and
// snapshotting consumers; run under -race this is the single-lock publish
// safety proof.
func TestEventsConcurrentPublishPoll(t *testing.T) {
	reg := NewRegistry()
	e := NewEvents(64, nil)
	e.Observe(reg)
	const publishers, perPublisher = 4, 250

	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perPublisher; i++ {
				reg.Counter("race_total").Inc()
				e.Publish(StreamEvent{Kind: EventVerdictAccepted, Epoch: int64(i)})
			}
		}(p)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	sub := e.Subscribe()
	var tailed, dropped uint64
	stream := NewMetricsStream(reg, 8)
	var lastSeq uint64
poll:
	for {
		evs, d := sub.Poll()
		tailed += uint64(len(evs))
		dropped += d
		for i := 1; i < len(evs); i++ {
			if evs[i].Seq <= evs[i-1].Seq {
				t.Fatalf("non-monotonic seqs %d, %d", evs[i-1].Seq, evs[i].Seq)
			}
		}
		delta := stream.DeltaSince(lastSeq)
		if delta.Seq <= lastSeq {
			t.Fatalf("stream seq went backwards: %d after %d", delta.Seq, lastSeq)
		}
		lastSeq = delta.Seq
		select {
		case <-done:
			break poll
		default:
		}
	}
	evs, d := sub.Poll()
	tailed += uint64(len(evs))
	dropped += d
	if total := tailed + dropped; total != publishers*perPublisher {
		t.Errorf("tailed %d + dropped %d = %d, want %d",
			tailed, dropped, tailed+dropped, publishers*perPublisher)
	}
	if got := e.LastSeq(); got != publishers*perPublisher {
		t.Errorf("LastSeq = %d", got)
	}
}
