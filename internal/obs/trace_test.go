package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestTraceJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf, NewSimClock(time.Microsecond))

	root := tr.Start(nil, "manager.epoch", Int("epoch", 1))
	child := tr.Start(root, "worker.train", String("worker", "w0"))
	child.End(Int("checkpoints", 10))
	child.End() // idempotent: second End emits nothing
	root.End(Bool("ok", true))
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}

	events, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 4 {
		t.Fatalf("got %d events, want 4 (duplicate End must not emit)", len(events))
	}
	if events[0].Ev != "start" || events[0].Name != "manager.epoch" || events[0].Parent != 0 {
		t.Errorf("root start = %+v", events[0])
	}
	if events[1].Parent != events[0].ID {
		t.Errorf("child parent = %d, want %d", events[1].Parent, events[0].ID)
	}
	if got := events[1].Attrs["worker"]; got != "w0" {
		t.Errorf("child attr worker = %v", got)
	}
	// JSON numbers decode as float64.
	if got := events[2].Attrs["checkpoints"]; got != float64(10) {
		t.Errorf("end attr checkpoints = %v (%T)", got, got)
	}
	for i := 1; i < len(events); i++ {
		if events[i].TS <= events[i-1].TS {
			t.Errorf("timestamps not strictly increasing: %d then %d", events[i-1].TS, events[i].TS)
		}
	}
}

func TestSimClockDeterministic(t *testing.T) {
	run := func() string {
		var buf bytes.Buffer
		tr := NewTracer(&buf, nil) // nil clock selects the SimClock
		s := tr.Start(nil, "a")
		tr.Start(s, "b").End()
		s.End()
		return buf.String()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same span sequence produced different traces:\n%s\nvs\n%s", a, b)
	}
}

func TestSimClockAdvance(t *testing.T) {
	c := NewSimClock(time.Nanosecond)
	first := c.Now()
	c.Advance(100 * time.Nanosecond)
	if second := c.Now(); second != first+101 {
		t.Errorf("after Advance(100ns): %d, want %d", second, first+101)
	}
}

func TestSpanTreeAncestry(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf, nil)
	epoch := tr.Start(nil, "manager.epoch")
	worker := tr.Start(epoch, "worker.epoch")
	verify := tr.Start(worker, "verify.submission")
	tr.Start(verify, "verify.reproduce").End()
	verify.End()
	worker.End()
	epoch.End()

	events, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	tree := BuildSpanTree(events)
	ids := tree.SpansNamed("verify.reproduce")
	if len(ids) != 1 {
		t.Fatalf("SpansNamed(verify.reproduce) = %v", ids)
	}
	got := tree.Ancestry(ids[0])
	want := []string{"verify.reproduce", "verify.submission", "worker.epoch", "manager.epoch"}
	if len(got) != len(want) {
		t.Fatalf("ancestry = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ancestry = %v, want %v", got, want)
		}
	}
}

func TestTracerRecordsSinkError(t *testing.T) {
	tr := NewTracer(failWriter{}, nil)
	tr.Start(nil, "x").End()
	if tr.Err() == nil {
		t.Error("sink failure not surfaced via Err")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errSink }

var errSink = &sinkError{}

type sinkError struct{}

func (*sinkError) Error() string { return "sink failed" }

func TestReadEventsSkipsBlankLines(t *testing.T) {
	in := `{"ev":"start","id":1,"name":"a","ts":1}` + "\n\n" + `{"ev":"end","id":1,"ts":2}` + "\n"
	events, err := ReadEvents(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
}

func TestReadEventsRejectsGarbage(t *testing.T) {
	if _, err := ReadEvents(strings.NewReader("not json\n")); err == nil {
		t.Error("garbage line accepted")
	}
}

func TestDefaultObserverInstallUninstall(t *testing.T) {
	prev := Default()
	defer SetDefault(prev)

	SetDefault(nil)
	if (*Observer)(nil).OrDefault() != nil {
		t.Error("OrDefault with no default should stay nil")
	}
	o := NewObserver(NewRegistry(), nil)
	SetDefault(o)
	if (*Observer)(nil).OrDefault() != o {
		t.Error("OrDefault did not pick up the installed default")
	}
	explicit := NewObserver(NewRegistry(), nil)
	if explicit.OrDefault() != explicit {
		t.Error("explicit observer overridden by default")
	}
}
