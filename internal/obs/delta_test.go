package obs

import (
	"math"
	"testing"
)

func TestDiffSnapshots(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a_total").Add(5)
	reg.Gauge("g").Set(1.5)
	reg.Histogram("h", []float64{1, 10}).Observe(0.5)
	prev := reg.Snapshot()

	reg.Counter("a_total").Add(2)
	reg.Counter("b_total").Add(1)
	reg.Histogram("h", nil).Observe(3)
	cur := reg.Snapshot()

	d := DiffSnapshots(prev, cur)
	if d.Counters["a_total"] != 2 || d.Counters["b_total"] != 1 {
		t.Errorf("counter deltas = %v", d.Counters)
	}
	if _, ok := d.Gauges["g"]; ok {
		t.Error("unchanged gauge reported")
	}
	h, ok := d.Histograms["h"]
	if !ok {
		t.Fatal("histogram delta missing")
	}
	if h.Count != 1 || h.Sum != 3 {
		t.Errorf("histogram delta count=%d sum=%g", h.Count, h.Sum)
	}
	if h.Counts[0] != 0 || h.Counts[1] != 1 {
		t.Errorf("bucket deltas = %v", h.Counts)
	}

	// No changes → empty delta.
	if d := DiffSnapshots(cur, reg.Snapshot()); !d.Empty() {
		t.Errorf("no-op delta = %+v", d)
	}
}

func TestSnapshotApplyRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a_total").Add(5)
	reg.Gauge("g").Set(0.25)
	reg.Histogram("h", []float64{1}).Observe(0.5)
	prev := reg.Snapshot()

	reg.Counter("a_total").Add(7)
	reg.Gauge("g").Set(0.75)
	reg.Histogram("h", nil).Observe(2)
	cur := reg.Snapshot()

	got := prev.Apply(DiffSnapshots(prev, cur))
	if got.Counters["a_total"] != 7+5 {
		t.Errorf("applied counter = %d", got.Counters["a_total"])
	}
	if got.Gauges["g"] != 0.75 {
		t.Errorf("applied gauge = %g", got.Gauges["g"])
	}
	h := got.Histograms["h"]
	if h.Count != 2 || h.Sum != 2.5 || h.Counts[0] != 1 || h.Counts[1] != 1 {
		t.Errorf("applied histogram = %+v", h)
	}
}

func TestMetricsStreamDeltaSince(t *testing.T) {
	reg := NewRegistry()
	stream := NewMetricsStream(reg, 4)

	reg.Counter("x_total").Add(3)
	seq1, snap := stream.Capture()
	if seq1 != 1 || snap.Counters["x_total"] != 3 {
		t.Fatalf("capture 1 = seq %d, %v", seq1, snap.Counters)
	}

	reg.Counter("x_total").Add(4)
	d := stream.DeltaSince(seq1)
	if d.Full {
		t.Error("delta against retained capture marked full")
	}
	if d.Since != seq1 || d.Seq <= seq1 {
		t.Errorf("delta seqs = %+v", d)
	}
	if d.Counters["x_total"] != 4 {
		t.Errorf("delta counter = %v", d.Counters)
	}

	// since=0 is always a full state.
	d = stream.DeltaSince(0)
	if !d.Full || d.Counters["x_total"] != 7 {
		t.Errorf("full delta = %+v", d)
	}

	// Age the first capture out of the 4-entry history: the delta degrades
	// to a full snapshot instead of failing.
	for i := 0; i < 6; i++ {
		stream.Capture()
	}
	d = stream.DeltaSince(seq1)
	if !d.Full {
		t.Error("delta against aged-out capture not marked full")
	}
	if d.Counters["x_total"] != 7 {
		t.Errorf("aged-out delta counter = %v", d.Counters)
	}
}

func TestHistogramQuantile(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("q", []float64{10, 20, 40})
	// 10 observations in [0,10], 10 in (10,20], none above.
	for i := 0; i < 10; i++ {
		h.Observe(5)
		h.Observe(15)
	}
	snap := reg.Snapshot().Histograms["q"]
	if got := snap.Quantile(0.5); math.Abs(got-10) > 1e-9 {
		t.Errorf("p50 = %g, want 10", got)
	}
	if got := snap.Quantile(0.25); math.Abs(got-5) > 1e-9 {
		t.Errorf("p25 = %g, want 5", got)
	}
	if got := snap.Quantile(0.75); math.Abs(got-15) > 1e-9 {
		t.Errorf("p75 = %g, want 15", got)
	}
	if got := snap.Quantile(1); math.Abs(got-20) > 1e-9 {
		t.Errorf("p100 = %g, want 20", got)
	}

	// Overflow bucket clamps to the highest finite bound.
	h.Observe(1000)
	snap = reg.Snapshot().Histograms["q"]
	if got := snap.Quantile(0.99); math.Abs(got-40) > 1e-9 {
		t.Errorf("overflow p99 = %g, want 40", got)
	}

	// Degenerate cases.
	if got := (HistogramSnapshot{}).Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %g", got)
	}
	noBounds := HistogramSnapshot{Counts: []int64{4}, Sum: 8, Count: 4}
	if got := noBounds.Quantile(0.5); math.Abs(got-2) > 1e-9 {
		t.Errorf("boundless quantile = %g, want mean 2", got)
	}
}
