package wire

import (
	"errors"
	"sync"
	"testing"

	"rpol/internal/adversary"
	"rpol/internal/dataset"
	"rpol/internal/gpu"
	"rpol/internal/lsh"
	"rpol/internal/netsim"
	"rpol/internal/nn"
	"rpol/internal/prf"
	"rpol/internal/rpol"
	"rpol/internal/tensor"
)

func wireTask(t *testing.T, netSeed int64) (*nn.Network, *dataset.Dataset) {
	t.Helper()
	ds, err := dataset.Generate(dataset.Config{
		Name: "wire-test", NumClasses: 4, Dim: 8, Size: 400, ClusterStd: 0.4, Seed: 66,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(netSeed)
	net, err := nn.NewNetwork(
		nn.NewDense(8, 16, rng),
		nn.NewReLU(16),
		nn.NewDense(16, 4, rng),
	)
	if err != nil {
		t.Fatal(err)
	}
	return net, ds
}

func wireParams(global tensor.Vector) rpol.TaskParams {
	return rpol.TaskParams{
		Global:          global,
		Hyper:           rpol.Hyper{Optimizer: "sgdm", LR: 0.02, BatchSize: 8},
		Nonce:           999,
		Steps:           10,
		CheckpointEvery: 5,
	}
}

func TestTaskRoundTrip(t *testing.T) {
	net, _ := wireTask(t, 1)
	p := wireParams(net.ParamVector())
	fam, err := lsh.NewFamily(len(p.Global), lsh.Params{R: 0.5, K: 4, L: 4}, 77)
	if err != nil {
		t.Fatal(err)
	}
	p.LSH = fam
	data, err := EncodeTask(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeTask(data)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Global.Equal(p.Global, 0) {
		t.Error("global weights changed")
	}
	if got.Hyper != p.Hyper || got.Nonce != p.Nonce || got.Steps != p.Steps ||
		got.CheckpointEvery != p.CheckpointEvery || got.Epoch != p.Epoch {
		t.Errorf("params changed: %+v", got)
	}
	if got.LSH == nil {
		t.Fatal("LSH family lost")
	}
	// The reconstructed family must hash identically (pure function of
	// dim/params/seed).
	x := tensor.NewRNG(5).NormalVector(len(p.Global), 0, 1)
	d1, err := p.LSH.Hash(x)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := got.LSH.Hash(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatal("reconstructed LSH family hashes differently")
		}
	}
}

func TestTaskDecodeErrors(t *testing.T) {
	if _, err := DecodeTask([]byte("{")); err == nil {
		t.Error("want error for bad JSON")
	}
	if _, err := DecodeTask([]byte(`{"global":"AAA"}`)); err == nil {
		t.Error("want error for bad global encoding")
	}
}

func TestResultRoundTrip(t *testing.T) {
	net, ds := wireTask(t, 2)
	worker, err := rpol.NewHonestWorker("w1", gpu.GA10, 3, net, ds)
	if err != nil {
		t.Fatal(err)
	}
	p := wireParams(net.ParamVector())
	fam, err := lsh.NewFamily(len(p.Global), lsh.Params{R: 0.5, K: 2, L: 2}, 9)
	if err != nil {
		t.Fatal(err)
	}
	p.LSH = fam
	result, err := worker.RunEpoch(p)
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeResult(result)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeResult(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.WorkerID != result.WorkerID || got.DataSize != result.DataSize ||
		got.NumCheckpoints != result.NumCheckpoints {
		t.Errorf("metadata changed: %+v", got)
	}
	if !got.Update.Equal(result.Update, 0) {
		t.Error("update changed")
	}
	if got.Commit.Root() != result.Commit.Root() {
		t.Error("commitment changed")
	}
	if len(got.LSHDigests) != len(result.LSHDigests) {
		t.Fatal("digests lost")
	}
	for i := range got.LSHDigests {
		if got.LSHDigests[i].Size() != result.LSHDigests[i].Size() {
			t.Errorf("digest %d changed", i)
		}
	}
}

func TestEncodeResultValidation(t *testing.T) {
	if _, err := EncodeResult(nil); err == nil {
		t.Error("want error for nil result")
	}
	if _, err := EncodeResult(&rpol.EpochResult{}); err == nil {
		t.Error("want error for missing commitment")
	}
}

// startServedWorker registers a worker server on the bus and runs it.
func startServedWorker(t *testing.T, bus *netsim.Bus, wg *sync.WaitGroup, w rpol.Worker) {
	t.Helper()
	server, err := NewWorkerServer(bus, w)
	if err != nil {
		t.Fatal(err)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := server.Run(); err != nil {
			t.Errorf("server %s: %v", w.ID(), err)
		}
	}()
}

func TestManagerOverBusEndToEnd(t *testing.T) {
	bus := netsim.NewBus()
	var wg sync.WaitGroup
	defer func() {
		bus.Close()
		wg.Wait()
	}()

	// Three honest workers behind the bus.
	const n = 3
	shardsNet, fullDS := wireTask(t, 30)
	_ = shardsNet
	shards, err := fullDS.Partition(n + 1)
	if err != nil {
		t.Fatal(err)
	}
	port, err := NewManagerPort(bus, "manager")
	if err != nil {
		t.Fatal(err)
	}
	workers := make([]rpol.Worker, 0, n)
	shardMap := make(map[string]*dataset.Dataset, n)
	for i := 0; i < n; i++ {
		net, _ := wireTask(t, 30)
		id := "w" + string(rune('0'+i))
		local, err := rpol.NewHonestWorker(id, gpu.GA10, int64(70+i), net, shards[i])
		if err != nil {
			t.Fatal(err)
		}
		startServedWorker(t, bus, &wg, local)
		remote, err := NewRemoteWorker(id, gpu.GA10, port)
		if err != nil {
			t.Fatal(err)
		}
		workers = append(workers, remote)
		shardMap[id] = shards[i]
	}

	managerNet, _ := wireTask(t, 30)
	manager, err := rpol.NewManager(rpol.ManagerConfig{
		Address:         "wire-manager",
		Scheme:          rpol.SchemeV2,
		Hyper:           rpol.Hyper{Optimizer: "sgdm", LR: 0.02, BatchSize: 8},
		StepsPerEpoch:   10,
		CheckpointEvery: 5,
		Samples:         2,
		GPU:             gpu.G3090,
		MasterKey:       []byte("wire"),
		Seed:            55,
	}, managerNet, workers, shardMap, shards[n])
	if err != nil {
		t.Fatal(err)
	}

	report, err := manager.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if report.Accepted != n || report.Rejected != 0 {
		for _, o := range report.Outcomes {
			if !o.Accepted {
				t.Logf("%s: %s", o.WorkerID, o.FailReason)
			}
		}
		t.Fatalf("accepted %d rejected %d", report.Accepted, report.Rejected)
	}

	// The meter must have recorded real traffic in both directions.
	meter := bus.Meter()
	if meter.Total() == 0 {
		t.Fatal("no bytes metered")
	}
	if meter.SentBy("manager") == 0 || meter.ReceivedBy("manager") == 0 {
		t.Error("manager traffic not metered")
	}
	byKind := meter.ByKind()
	for _, kind := range []string{KindTask, KindResult, KindOpenRequest, KindOpenResponse} {
		if byKind[kind] == 0 {
			t.Errorf("no %s traffic metered", kind)
		}
	}
}

func TestAdversaryOverBusRejected(t *testing.T) {
	bus := netsim.NewBus()
	var wg sync.WaitGroup
	defer func() {
		bus.Close()
		wg.Wait()
	}()

	net, ds := wireTask(t, 31)
	shards, err := ds.Partition(3)
	if err != nil {
		t.Fatal(err)
	}
	port, err := NewManagerPort(bus, "manager")
	if err != nil {
		t.Fatal(err)
	}

	honestNet, _ := wireTask(t, 31)
	honest, err := rpol.NewHonestWorker("honest", gpu.GA10, 80, honestNet, shards[0])
	if err != nil {
		t.Fatal(err)
	}
	startServedWorker(t, bus, &wg, honest)
	cheater := adversary.NewAdv1("cheater", gpu.GT4, shards[1].Len())
	startServedWorker(t, bus, &wg, cheater)

	remoteHonest, err := NewRemoteWorker("honest", gpu.GA10, port)
	if err != nil {
		t.Fatal(err)
	}
	remoteCheater, err := NewRemoteWorker("cheater", gpu.GT4, port)
	if err != nil {
		t.Fatal(err)
	}

	managerNet, _ := wireTask(t, 31)
	manager, err := rpol.NewManager(rpol.ManagerConfig{
		Address:         "wire-manager",
		Scheme:          rpol.SchemeV1,
		Hyper:           rpol.Hyper{Optimizer: "sgdm", LR: 0.02, BatchSize: 8},
		StepsPerEpoch:   10,
		CheckpointEvery: 5,
		Samples:         2,
		GPU:             gpu.G3090,
		MasterKey:       []byte("wire"),
		Seed:            56,
	}, managerNet,
		[]rpol.Worker{remoteHonest, remoteCheater},
		map[string]*dataset.Dataset{"honest": shards[0], "cheater": shards[1]},
		shards[2])
	if err != nil {
		t.Fatal(err)
	}
	_ = net

	report, err := manager.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range report.Outcomes {
		switch o.WorkerID {
		case "honest":
			if !o.Accepted {
				t.Errorf("honest remote worker rejected: %s", o.FailReason)
			}
		case "cheater":
			if o.Accepted {
				t.Error("replay attacker accepted over the wire")
			}
		}
	}
}

func TestRemoteWorkerErrorPropagation(t *testing.T) {
	bus := netsim.NewBus()
	var wg sync.WaitGroup
	defer func() {
		bus.Close()
		wg.Wait()
	}()
	net, ds := wireTask(t, 32)
	local, err := rpol.NewHonestWorker("w", gpu.GA10, 90, net, ds)
	if err != nil {
		t.Fatal(err)
	}
	startServedWorker(t, bus, &wg, local)
	port, err := NewManagerPort(bus, "manager")
	if err != nil {
		t.Fatal(err)
	}
	remote, err := NewRemoteWorker("w", gpu.GA10, port)
	if err != nil {
		t.Fatal(err)
	}
	// Invalid task (zero steps) must surface the remote error.
	bad := wireParams(net.ParamVector())
	bad.Steps = 0
	if _, err := remote.RunEpoch(bad); err == nil {
		t.Error("want remote error for invalid task")
	}
	// Opening before any epoch must surface the remote error.
	if _, err := remote.OpenCheckpoint(0); !errors.Is(err, ErrRemote) {
		t.Errorf("err = %v, want ErrRemote", err)
	}
}

func TestRemoteWorkerValidation(t *testing.T) {
	bus := netsim.NewBus()
	defer bus.Close()
	port, err := NewManagerPort(bus, "m")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRemoteWorker("", gpu.GA10, port); err == nil {
		t.Error("want error for empty id")
	}
	if _, err := NewRemoteWorker("w", gpu.GA10, nil); err == nil {
		t.Error("want error for nil port")
	}
	if _, err := NewWorkerServer(bus, nil); err == nil {
		t.Error("want error for nil worker")
	}
}

// keep prf import meaningful: nonce identity across the wire.
func TestNonceSurvivesWire(t *testing.T) {
	net, _ := wireTask(t, 34)
	p := wireParams(net.ParamVector())
	p.Nonce = prf.DeriveNonce([]byte("k"), "w", 3)
	data, err := EncodeTask(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeTask(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Nonce != p.Nonce {
		t.Error("nonce changed across the wire")
	}
}

func TestMeteredTrafficMatchesProtocolAccounting(t *testing.T) {
	// The verifier's CommBytes counts raw proof payloads; the bus meters
	// the JSON/base64-framed bytes actually moved. The metered
	// open-response traffic must be the accounted payloads inflated only by
	// the encoding overhead (≈4/3 for base64) plus small headers.
	bus := netsim.NewBus()
	var wg sync.WaitGroup
	defer func() {
		bus.Close()
		wg.Wait()
	}()

	net, ds := wireTask(t, 35)
	local, err := rpol.NewHonestWorker("w", gpu.GA10, 95, net, ds)
	if err != nil {
		t.Fatal(err)
	}
	startServedWorker(t, bus, &wg, local)
	port, err := NewManagerPort(bus, "manager")
	if err != nil {
		t.Fatal(err)
	}
	remote, err := NewRemoteWorker("w", gpu.GA10, port)
	if err != nil {
		t.Fatal(err)
	}

	p := wireParams(net.ParamVector())
	result, err := remote.RunEpoch(p)
	if err != nil {
		t.Fatal(err)
	}
	verifyNet, _ := wireTask(t, 35)
	device, err := gpu.NewDevice(gpu.G3090, 96)
	if err != nil {
		t.Fatal(err)
	}
	verifier := &rpol.Verifier{
		Scheme: rpol.SchemeV1, Net: verifyNet, Device: device,
		Beta: 0.05, Samples: 2, Sampler: tensor.NewRNG(97),
	}
	out, err := verifier.VerifySubmission(remote, ds, result, p)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Accepted {
		t.Fatalf("rejected: %s", out.FailReason)
	}

	metered := bus.Meter().ByKind()[KindOpenResponse]
	if metered < out.CommBytes {
		t.Errorf("metered %d below accounted payloads %d", metered, out.CommBytes)
	}
	if metered > out.CommBytes*3/2+4096 {
		t.Errorf("metered %d far above accounted payloads %d (+encoding)", metered, out.CommBytes)
	}
}
