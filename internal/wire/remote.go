package wire

import (
	"encoding/json"
	"errors"
	"fmt"

	"rpol/internal/gpu"
	"rpol/internal/netsim"
	"rpol/internal/obs"
	"rpol/internal/rpol"
	"rpol/internal/tensor"
)

// ManagerPort is the manager's single bus endpoint, shared by all of its
// RemoteWorker proxies. The manager drives the protocol sequentially (one
// outstanding request at a time), so a simple matched request/response
// exchange suffices; an unexpected interleaved message is a protocol error.
type ManagerPort struct {
	ep  Transport
	obs *obs.Observer
}

// NewManagerPort registers the manager's endpoint on the in-memory bus.
func NewManagerPort(bus *netsim.Bus, name string) (*ManagerPort, error) {
	ep, err := bus.Register(name)
	if err != nil {
		return nil, fmt.Errorf("wire manager: %w", err)
	}
	return &ManagerPort{ep: ep}, nil
}

// NewManagerPortOver wraps an already-connected transport (e.g. a
// netsim.TCPEndpoint dialed into a hub).
func NewManagerPortOver(t Transport) (*ManagerPort, error) {
	if t == nil {
		return nil, errors.New("wire: nil transport")
	}
	return &ManagerPort{ep: t}, nil
}

// SetObserver routes the port's request/response accounting through o. The
// counters are wire_manager_messages_sent_total / _recv_total and
// wire_manager_bytes_sent_total / _recv_total; payload sizes use the same
// netsim.Message framing model the fabric meters use.
func (mp *ManagerPort) SetObserver(o *obs.Observer) { mp.obs = o }

// call sends a request to the peer and waits for its reply of wantKind.
func (mp *ManagerPort) call(to, kind string, payload []byte, wantKind string) ([]byte, error) {
	if err := mp.ep.Send(to, kind, payload); err != nil {
		return nil, fmt.Errorf("wire call %s/%s: %w", to, kind, err)
	}
	mp.obs.Counter("wire_manager_messages_sent_total").Inc()
	mp.obs.Counter("wire_manager_bytes_sent_total").Add(netsim.Message{Kind: kind, Payload: payload}.Size())
	msg, err := mp.ep.Recv()
	if err != nil {
		return nil, fmt.Errorf("wire call %s/%s: %w", to, kind, err)
	}
	mp.obs.Counter("wire_manager_messages_recv_total").Inc()
	mp.obs.Counter("wire_manager_bytes_recv_total").Add(msg.Size())
	if msg.From != to {
		return nil, fmt.Errorf("wire call %s/%s: reply from %s: %w", to, kind, msg.From, ErrRemote)
	}
	if msg.Kind == KindError {
		return nil, fmt.Errorf("wire call %s/%s: %s: %w", to, kind, msg.Payload, ErrRemote)
	}
	if msg.Kind != wantKind {
		return nil, fmt.Errorf("wire call %s/%s: got kind %q: %w", to, kind, msg.Kind, ErrRemote)
	}
	return msg.Payload, nil
}

// RemoteWorker satisfies rpol.Worker by proxying every interaction over the
// bus to a WorkerServer. The manager plugs RemoteWorkers into rpol.Manager
// unchanged.
type RemoteWorker struct {
	id      string
	profile gpu.Profile
	port    *ManagerPort
}

var _ rpol.Worker = (*RemoteWorker)(nil)

// NewRemoteWorker builds a proxy to the worker registered as id, with the
// hardware profile the worker declared at registration.
func NewRemoteWorker(id string, profile gpu.Profile, port *ManagerPort) (*RemoteWorker, error) {
	if port == nil {
		return nil, errors.New("wire: nil manager port")
	}
	if id == "" {
		return nil, errors.New("wire: empty worker id")
	}
	return &RemoteWorker{id: id, profile: profile, port: port}, nil
}

// ID returns the remote worker's identifier.
func (r *RemoteWorker) ID() string { return r.id }

// GPUProfile returns the hardware profile the worker registered.
func (r *RemoteWorker) GPUProfile() gpu.Profile { return r.profile }

// RunEpoch ships the task assignment and waits for the submission.
func (r *RemoteWorker) RunEpoch(p rpol.TaskParams) (*rpol.EpochResult, error) {
	payload, err := EncodeTask(p)
	if err != nil {
		return nil, fmt.Errorf("wire remote %s: %w", r.id, err)
	}
	reply, err := r.port.call(r.id, KindTask, payload, KindResult)
	if err != nil {
		return nil, fmt.Errorf("wire remote %s: %w", r.id, err)
	}
	result, err := DecodeResult(reply)
	if err != nil {
		return nil, fmt.Errorf("wire remote %s: %w", r.id, err)
	}
	if result.WorkerID != r.id {
		return nil, fmt.Errorf("wire remote %s: result claims %s: %w", r.id, result.WorkerID, ErrRemote)
	}
	return result, nil
}

// OpenCheckpoint requests one raw snapshot during verification.
func (r *RemoteWorker) OpenCheckpoint(idx int) (tensor.Vector, error) {
	payload, err := json.Marshal(OpenRequestMsg{Idx: idx})
	if err != nil {
		return nil, fmt.Errorf("wire remote %s: %w", r.id, err)
	}
	reply, err := r.port.call(r.id, KindOpenRequest, payload, KindOpenResponse)
	if err != nil {
		return nil, fmt.Errorf("wire remote %s: %w", r.id, err)
	}
	var resp OpenResponseMsg
	if err := json.Unmarshal(reply, &resp); err != nil {
		return nil, fmt.Errorf("wire remote %s: %w", r.id, err)
	}
	if resp.Err != "" {
		return nil, fmt.Errorf("wire remote %s: %s: %w", r.id, resp.Err, ErrRemote)
	}
	weights, err := tensor.DecodeVector(resp.Weights)
	if err != nil {
		return nil, fmt.Errorf("wire remote %s: %w", r.id, err)
	}
	return weights, nil
}
