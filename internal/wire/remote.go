package wire

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"rpol/internal/gpu"
	"rpol/internal/netsim"
	"rpol/internal/obs"
	"rpol/internal/rpol"
	"rpol/internal/tensor"
)

// RetryPolicy bounds one logical request when the fabric may lose or delay
// messages: each attempt waits Timeout for the reply on the injected clock,
// failed attempts are retried with the timeout scaled by Backoff, and after
// Attempts exhausted attempts the call fails with an error wrapping
// rpol.ErrWorkerUnavailable so the manager classifies the worker as absent.
//
// Deadlines are measured exclusively on Clock — never the wall clock — so
// seeded runs replay identically: under the default obs.SimClock every
// reading advances logical time by one tick, which bounds the poll loop, and
// fabric-injected delays advance the same clock, consuming the deadline
// budget exactly as a slow network would.
type RetryPolicy struct {
	// Attempts is the maximum number of send attempts per call (default 3).
	Attempts int
	// Timeout is the first attempt's reply deadline (default 50ms of
	// logical time).
	Timeout time.Duration
	// Backoff multiplies the timeout after each failed attempt (default 2).
	Backoff float64
	// Clock supplies deadline readings (default: a fresh obs.SimClock).
	Clock obs.Clock
}

// normalized fills zero fields with the defaults above.
func (p RetryPolicy) normalized() RetryPolicy {
	if p.Attempts <= 0 {
		p.Attempts = 3
	}
	if p.Timeout <= 0 {
		p.Timeout = 50 * time.Millisecond
	}
	if p.Backoff < 1 {
		p.Backoff = 2
	}
	if p.Clock == nil {
		p.Clock = obs.NewSimClock(0)
	}
	return p
}

// ManagerPort is the manager's single bus endpoint, shared by all of its
// RemoteWorker proxies. The manager drives the protocol sequentially (one
// outstanding request at a time), so a simple matched request/response
// exchange suffices; an unexpected interleaved message is a protocol error.
//
// Without a RetryPolicy the port blocks forever on each reply (the historical
// behaviour, appropriate for a reliable in-process fabric). With one, every
// request carries a fresh correlation Seq, replies are awaited against a
// logical-clock deadline, and stale replies to abandoned attempts are
// discarded instead of corrupting the next exchange.
type ManagerPort struct {
	ep     Transport
	obs    *obs.Observer
	policy *RetryPolicy
	seq    atomic.Uint64

	// encBuf is the reused message-encode buffer, handed out by encScratch
	// only when the transport is a SerializingSender (reuse true): the bus
	// endpoint enqueues payloads by reference, so reusing a buffer there
	// would rewrite messages underneath the receiver. The manager drives the
	// protocol sequentially, so one buffer serves all RemoteWorker proxies.
	encBuf []byte
	reuse  bool
}

// NewManagerPort registers the manager's endpoint on the in-memory bus.
func NewManagerPort(bus *netsim.Bus, name string) (*ManagerPort, error) {
	ep, err := bus.Register(name)
	if err != nil {
		return nil, fmt.Errorf("wire manager: %w", err)
	}
	return newManagerPort(ep), nil
}

// NewManagerPortOver wraps an already-connected transport (e.g. a
// netsim.TCPEndpoint dialed into a hub).
func NewManagerPortOver(t Transport) (*ManagerPort, error) {
	if t == nil {
		return nil, errors.New("wire: nil transport")
	}
	return newManagerPort(t), nil
}

func newManagerPort(t Transport) *ManagerPort {
	_, reuse := t.(SerializingSender)
	return &ManagerPort{ep: t, reuse: reuse}
}

// encScratch returns the port's reusable encode buffer (length zero), or nil
// when the transport retains payload references and every message needs its
// own allocation.
func (mp *ManagerPort) encScratch() []byte {
	if mp.reuse {
		return mp.encBuf[:0]
	}
	return nil
}

// keepScratch retains a buffer produced from encScratch (possibly grown) for
// the next message.
func (mp *ManagerPort) keepScratch(buf []byte) {
	if mp.reuse {
		mp.encBuf = buf
	}
}

// SetObserver routes the port's request/response accounting through o. The
// counters are wire_manager_messages_sent_total / _recv_total and
// wire_manager_bytes_sent_total / _recv_total; payload sizes use the same
// netsim.Message framing model the fabric meters use.
func (mp *ManagerPort) SetObserver(o *obs.Observer) { mp.obs = o }

// SetRetryPolicy enables deadline-bounded delivery with bounded retries. A
// nil policy restores the historical block-forever behaviour. The policy
// requires a PollingTransport endpoint (both fabrics provide one); on any
// other transport it is ignored.
func (mp *ManagerPort) SetRetryPolicy(p *RetryPolicy) {
	if p == nil {
		mp.policy = nil
		return
	}
	norm := p.normalized()
	mp.policy = &norm
}

// call sends a request to the peer and waits for its reply of wantKind.
func (mp *ManagerPort) call(to, kind string, payload []byte, wantKind string) ([]byte, error) {
	if mp.policy != nil {
		if pt, ok := mp.ep.(PollingTransport); ok {
			return mp.callRetry(pt, to, kind, payload, wantKind)
		}
	}
	if err := mp.ep.Send(to, kind, payload); err != nil {
		return nil, fmt.Errorf("wire call %s/%s: %w", to, kind, err)
	}
	mp.obs.Counter("wire_manager_messages_sent_total").Inc()
	mp.obs.Counter("wire_manager_bytes_sent_total").Add(netsim.Message{Kind: kind, Payload: payload}.Size())
	msg, err := mp.ep.Recv()
	if err != nil {
		return nil, fmt.Errorf("wire call %s/%s: %w", to, kind, err)
	}
	mp.obs.Counter("wire_manager_messages_recv_total").Inc()
	mp.obs.Counter("wire_manager_bytes_recv_total").Add(msg.Size())
	if msg.From != to {
		return nil, fmt.Errorf("wire call %s/%s: reply from %s: %w", to, kind, msg.From, ErrRemote)
	}
	if msg.Kind == KindError {
		return nil, fmt.Errorf("wire call %s/%s: %s: %w", to, kind, msg.Payload, ErrRemote)
	}
	if msg.Kind != wantKind {
		return nil, fmt.Errorf("wire call %s/%s: got kind %q: %w", to, kind, msg.Kind, ErrRemote)
	}
	return msg.Payload, nil
}

// callRetry is the deadline-bounded exchange: stamp the request with a fresh
// Seq, poll for the correlated reply until the logical deadline, and retry
// with backoff. Replies whose From or Seq don't match are stale responses to
// attempts this port already abandoned (the port runs one outstanding request
// at a time) and are discarded.
func (mp *ManagerPort) callRetry(pt PollingTransport, to, kind string, payload []byte, wantKind string) ([]byte, error) {
	pol := *mp.policy
	seq := mp.seq.Add(1)
	timeout := pol.Timeout
	for attempt := 0; attempt < pol.Attempts; attempt++ {
		if attempt > 0 {
			mp.obs.Counter("net_retries_total").Inc()
		}
		if err := sendSeq(mp.ep, to, kind, seq, payload); err != nil {
			return nil, fmt.Errorf("wire call %s/%s: %w", to, kind, err)
		}
		mp.obs.Counter("wire_manager_messages_sent_total").Inc()
		mp.obs.Counter("wire_manager_bytes_sent_total").Add(netsim.Message{Kind: kind, Payload: payload}.Size())
		deadline := pol.Clock.Now() + timeout.Nanoseconds()
		for pol.Clock.Now() < deadline {
			msg, ok := pt.TryRecv()
			if !ok {
				// Yield so fabric goroutines (e.g. the TCP pump) can make
				// progress; on the self-advancing SimClock every poll also
				// consumes a tick of the deadline, so the loop is bounded.
				runtime.Gosched()
				continue
			}
			mp.obs.Counter("wire_manager_messages_recv_total").Inc()
			mp.obs.Counter("wire_manager_bytes_recv_total").Add(msg.Size())
			if msg.From != to || msg.Seq != seq {
				continue // stale reply to an abandoned attempt
			}
			if msg.Kind == KindError {
				return nil, fmt.Errorf("wire call %s/%s: %s: %w", to, kind, msg.Payload, ErrRemote)
			}
			if msg.Kind != wantKind {
				return nil, fmt.Errorf("wire call %s/%s: got kind %q: %w", to, kind, msg.Kind, ErrRemote)
			}
			return msg.Payload, nil
		}
		mp.obs.Counter("net_timeouts_total").Inc()
		timeout = time.Duration(float64(timeout) * pol.Backoff)
	}
	return nil, fmt.Errorf("wire call %s/%s: no reply after %d attempts: %w",
		to, kind, pol.Attempts, rpol.ErrWorkerUnavailable)
}

// RemoteWorker satisfies rpol.Worker by proxying every interaction over the
// bus to a WorkerServer. The manager plugs RemoteWorkers into rpol.Manager
// unchanged.
type RemoteWorker struct {
	id      string
	profile gpu.Profile
	port    *ManagerPort
}

var _ rpol.Worker = (*RemoteWorker)(nil)

// NewRemoteWorker builds a proxy to the worker registered as id, with the
// hardware profile the worker declared at registration.
func NewRemoteWorker(id string, profile gpu.Profile, port *ManagerPort) (*RemoteWorker, error) {
	if port == nil {
		return nil, errors.New("wire: nil manager port")
	}
	if id == "" {
		return nil, errors.New("wire: empty worker id")
	}
	return &RemoteWorker{id: id, profile: profile, port: port}, nil
}

// ID returns the remote worker's identifier.
func (r *RemoteWorker) ID() string { return r.id }

// GPUProfile returns the hardware profile the worker registered.
func (r *RemoteWorker) GPUProfile() gpu.Profile { return r.profile }

// RunEpoch ships the task assignment and waits for the submission.
func (r *RemoteWorker) RunEpoch(p rpol.TaskParams) (*rpol.EpochResult, error) {
	payload, err := AppendTask(r.port.encScratch(), p)
	if err != nil {
		return nil, fmt.Errorf("wire remote %s: %w", r.id, err)
	}
	r.port.keepScratch(payload)
	reply, err := r.port.call(r.id, KindTask, payload, KindResult)
	if err != nil {
		return nil, fmt.Errorf("wire remote %s: %w", r.id, err)
	}
	result, err := DecodeResult(reply)
	if err != nil {
		return nil, fmt.Errorf("wire remote %s: %w", r.id, err)
	}
	if result.WorkerID != r.id {
		return nil, fmt.Errorf("wire remote %s: result claims %s: %w", r.id, result.WorkerID, ErrRemote)
	}
	return result, nil
}

// OpenCheckpoint requests one raw snapshot during verification.
func (r *RemoteWorker) OpenCheckpoint(idx int) (tensor.Vector, error) {
	payload := AppendOpenRequest(r.port.encScratch(), idx)
	r.port.keepScratch(payload)
	reply, err := r.port.call(r.id, KindOpenRequest, payload, KindOpenResponse)
	if err != nil {
		return nil, fmt.Errorf("wire remote %s: %w", r.id, err)
	}
	resp, err := decodeOpenResponse(reply)
	if err != nil {
		return nil, fmt.Errorf("wire remote %s: %w", r.id, err)
	}
	if resp.Err != "" {
		return nil, fmt.Errorf("wire remote %s: %s: %w", r.id, resp.Err, ErrRemote)
	}
	weights, err := tensor.DecodeVector(resp.Weights)
	if err != nil {
		return nil, fmt.Errorf("wire remote %s: %w", r.id, err)
	}
	return weights, nil
}

// OpenProof pulls one Merkle inclusion proof during verification of a
// root-committed submission.
func (r *RemoteWorker) OpenProof(idx int) (rpol.LeafProof, error) {
	payload := AppendProofRequest(r.port.encScratch(), idx)
	r.port.keepScratch(payload)
	reply, err := r.port.call(r.id, KindProofRequest, payload, KindProofResponse)
	if err != nil {
		return rpol.LeafProof{}, fmt.Errorf("wire remote %s: %w", r.id, err)
	}
	resp, err := decodeProofResponse(reply)
	if err != nil {
		return rpol.LeafProof{}, fmt.Errorf("wire remote %s: %w", r.id, err)
	}
	if resp.Err != "" {
		return rpol.LeafProof{}, fmt.Errorf("wire remote %s: %s: %w", r.id, resp.Err, ErrRemote)
	}
	return rpol.LeafProof{Proof: resp.Proof, Digest: resp.Digest}, nil
}
