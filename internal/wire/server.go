package wire

import (
	"errors"
	"fmt"
	"io"
	"net"

	"rpol/internal/netsim"
	"rpol/internal/obs"
	"rpol/internal/rpol"
)

// WorkerServer hosts an rpol.Worker behind a bus endpoint: it receives task
// assignments and checkpoint-opening requests and answers them. Run it in
// its own goroutine; it returns when the bus closes.
type WorkerServer struct {
	worker rpol.Worker
	ep     Transport
	obs    *obs.Observer

	// encBuf is the reused reply-encode buffer, live only when the transport
	// is a SerializingSender (reuse true); see ManagerPort.encBuf. Run
	// handles requests sequentially, so one buffer suffices.
	encBuf []byte
	reuse  bool
}

// NewWorkerServer registers the worker's endpoint on the in-memory bus
// under the worker's ID.
func NewWorkerServer(bus *netsim.Bus, worker rpol.Worker) (*WorkerServer, error) {
	if worker == nil {
		return nil, errors.New("wire: nil worker")
	}
	ep, err := bus.Register(worker.ID())
	if err != nil {
		return nil, fmt.Errorf("wire server: %w", err)
	}
	return newWorkerServer(ep, worker), nil
}

// NewWorkerServerOver hosts the worker behind an already-connected
// transport (e.g. a netsim.TCPEndpoint dialed into a hub under the worker's
// ID).
func NewWorkerServerOver(t Transport, worker rpol.Worker) (*WorkerServer, error) {
	if worker == nil {
		return nil, errors.New("wire: nil worker")
	}
	if t == nil {
		return nil, errors.New("wire: nil transport")
	}
	return newWorkerServer(t, worker), nil
}

func newWorkerServer(t Transport, worker rpol.Worker) *WorkerServer {
	_, reuse := t.(SerializingSender)
	return &WorkerServer{worker: worker, ep: t, reuse: reuse}
}

// encScratch returns the server's reusable encode buffer (length zero), or
// nil when the transport retains payload references.
func (s *WorkerServer) encScratch() []byte {
	if s.reuse {
		return s.encBuf[:0]
	}
	return nil
}

// keepScratch retains a buffer produced from encScratch (possibly grown) for
// the next reply.
func (s *WorkerServer) keepScratch(buf []byte) {
	if s.reuse {
		s.encBuf = buf
	}
}

// SetObserver routes the server's request/response accounting through o
// under wire_worker_{messages,bytes}_{sent,recv}_total counters.
func (s *WorkerServer) SetObserver(o *obs.Observer) { s.obs = o }

// send delivers a reply and accounts it. seq echoes the request's
// correlation number so a retrying manager can match the reply to the
// attempt it belongs to (zero for uncorrelated requests).
func (s *WorkerServer) send(to, kind string, seq uint64, payload []byte) error {
	err := sendSeq(s.ep, to, kind, seq, payload)
	if err == nil {
		s.obs.Counter("wire_worker_messages_sent_total").Inc()
		s.obs.Counter("wire_worker_bytes_sent_total").Add(netsim.Message{Kind: kind, Payload: payload}.Size())
	}
	return err
}

// Run serves requests until the bus closes. Malformed requests are answered
// with error messages rather than terminating the loop — a misbehaving
// manager must not be able to wedge a worker.
func (s *WorkerServer) Run() error {
	for {
		msg, err := s.ep.Recv()
		if err != nil {
			// Fabric shutdown (bus closed, socket closed, EOF) ends the
			// serving loop gracefully.
			if errors.Is(err, netsim.ErrClosed) || errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("wire server %s: %w", s.worker.ID(), err)
		}
		s.obs.Counter("wire_worker_messages_recv_total").Inc()
		s.obs.Counter("wire_worker_bytes_recv_total").Add(msg.Size())
		if err := s.handle(msg); err != nil {
			// Reply with the error; keep serving.
			_ = s.send(msg.From, KindError, msg.Seq, []byte(err.Error()))
		}
	}
}

func (s *WorkerServer) handle(msg netsim.Message) error {
	switch msg.Kind {
	case KindTask:
		p, err := DecodeTask(msg.Payload)
		if err != nil {
			return err
		}
		result, err := s.worker.RunEpoch(p)
		if err != nil {
			return fmt.Errorf("run epoch: %w", err)
		}
		payload, err := AppendResult(s.encScratch(), result)
		if err != nil {
			return err
		}
		s.keepScratch(payload)
		return s.send(msg.From, KindResult, msg.Seq, payload)
	case KindOpenRequest:
		req, err := DecodeOpenRequest(msg.Payload)
		if err != nil {
			return err
		}
		var errMsg string
		weights, err := s.worker.OpenCheckpoint(req.Idx)
		if err != nil {
			errMsg = err.Error()
		}
		payload := AppendOpenResponse(s.encScratch(), req.Idx, errMsg, weights)
		s.keepScratch(payload)
		return s.send(msg.From, KindOpenResponse, msg.Seq, payload)
	case KindProofRequest:
		req, err := DecodeProofRequest(msg.Payload)
		if err != nil {
			return err
		}
		var errMsg string
		lp, err := s.worker.OpenProof(req.Idx)
		if err != nil {
			errMsg = err.Error()
		}
		payload := AppendProofResponse(s.encScratch(), req.Idx, errMsg, lp)
		s.keepScratch(payload)
		return s.send(msg.From, KindProofResponse, msg.Seq, payload)
	default:
		return fmt.Errorf("unknown message kind %q", msg.Kind)
	}
}
