package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"rpol/internal/commitment"
	"rpol/internal/lsh"
	"rpol/internal/prf"
	"rpol/internal/rpol"
	"rpol/internal/tensor"
)

// Binary message format. Every message starts with a three-byte header:
//
//	[0] magic     0xB5 — deliberately distinct from '{' (0x7B), so decoders
//	              can sniff the first byte and fall back to the legacy JSON
//	              encoding for payloads produced by older peers.
//	[1] version   1 or 2 — version 2 adds a flags byte to tasks (bit 0 =
//	              streaming Merkle commitment) and the three Merkle message
//	              kinds (root-carrying result, proof request/response).
//	              Encoders emit version 1 bytes whenever no version-2
//	              feature is used, so legacy peers interoperate unchanged.
//	[2] kind      one of the binKind* constants
//
// Fields follow in fixed order: varints (encoding/binary) for integers,
// 8-byte little-endian IEEE-754 for floats, uvarint-length-prefixed blobs
// for strings and digests. The one bulky field of each message — the weight
// vector — is always last, written with tensor.AppendEncode so encoding into
// a reused buffer never copies the vector twice and decoding can alias the
// tail of the frame.
const (
	binMagic    = 0xB5
	binVersion  = 1
	binVersion2 = 2

	binKindTask          = 0x01
	binKindResult        = 0x02
	binKindOpenRequest   = 0x03
	binKindOpenResponse  = 0x04
	binKindResultRoot    = 0x05
	binKindProofRequest  = 0x06
	binKindProofResponse = 0x07

	// taskFlagMerkleCommit is bit 0 of the version-2 task flags byte.
	taskFlagMerkleCommit = 0x01
)

// maxWireCheckpoints bounds the checkpoint count any decoded submission may
// declare, so attacker-controlled bytes can never force an allocation larger
// than the claim a verifier would accept (rpol's verifier applies the same
// cap).
const maxWireCheckpoints = 1 << 20

var (
	errBinTruncated = errors.New("wire: truncated binary message")
	errBinHeader    = errors.New("wire: bad binary header")
)

func appendBinHeader(dst []byte, kind byte) []byte {
	return append(dst, binMagic, binVersion, kind)
}

func appendBinFloat(dst []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
}

func appendBinBlob(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

func appendBinString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// binReader walks a binary message with a sticky error: after the first
// malformed field every subsequent read returns a zero value, and the caller
// checks r.err once at the end.
type binReader struct {
	buf     []byte
	off     int
	version byte
	err     error
}

// newBinReader validates the three-byte header and positions the reader on
// the first field. A version above binVersion2 is rejected explicitly — a
// future encoding must not be misparsed as the current one.
func newBinReader(data []byte, kind byte) (*binReader, error) {
	if len(data) < 3 {
		return nil, errBinTruncated
	}
	if data[0] != binMagic {
		return nil, fmt.Errorf("magic 0x%02x: %w", data[0], errBinHeader)
	}
	if data[1] != binVersion && data[1] != binVersion2 {
		return nil, fmt.Errorf("unsupported binary version %d: %w", data[1], errBinHeader)
	}
	if data[2] != kind {
		return nil, fmt.Errorf("message kind 0x%02x, want 0x%02x: %w", data[2], kind, errBinHeader)
	}
	return &binReader{buf: data, off: 3, version: data[1]}, nil
}

func (r *binReader) fail() {
	if r.err == nil {
		r.err = errBinTruncated
	}
}

func (r *binReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

func (r *binReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

func (r *binReader) float() float64 {
	if r.err != nil {
		return 0
	}
	if len(r.buf)-r.off < 8 {
		r.fail()
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.buf[r.off:]))
	r.off += 8
	return v
}

func (r *binReader) uint64() uint64 {
	if r.err != nil {
		return 0
	}
	if len(r.buf)-r.off < 8 {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

func (r *binReader) byteVal() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.buf) {
		r.fail()
		return 0
	}
	b := r.buf[r.off]
	r.off++
	return b
}

// blob returns the next length-prefixed field, aliasing the message buffer.
func (r *binReader) blob() []byte {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.buf)-r.off) {
		r.fail()
		return nil
	}
	b := r.buf[r.off : r.off+int(n)]
	r.off += int(n)
	return b
}

// rest consumes and returns everything after the current offset.
func (r *binReader) rest() []byte {
	if r.err != nil {
		return nil
	}
	b := r.buf[r.off:]
	r.off = len(r.buf)
	return b
}

// AppendTask appends the binary encoding of a task assignment to dst and
// returns the extended slice. The global weight vector is the final field, so
// the whole message is one header plus tensor.AppendEncode — no intermediate
// copy of the weights.
func AppendTask(dst []byte, p rpol.TaskParams) ([]byte, error) {
	if p.MerkleCommit {
		// Version 2 prepends a flags byte; emitted only when a flag is set,
		// so flag-free tasks stay byte-identical to the version-1 encoding.
		dst = append(dst, binMagic, binVersion2, binKindTask, taskFlagMerkleCommit)
	} else {
		dst = appendBinHeader(dst, binKindTask)
	}
	dst = binary.AppendVarint(dst, int64(p.Epoch))
	dst = appendBinString(dst, p.Hyper.Optimizer)
	dst = appendBinFloat(dst, p.Hyper.LR)
	dst = binary.AppendVarint(dst, int64(p.Hyper.BatchSize))
	dst = binary.AppendVarint(dst, int64(p.Steps))
	dst = binary.AppendVarint(dst, int64(p.CheckpointEvery))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(p.Nonce))
	if p.LSH != nil {
		params := p.LSH.Params()
		dst = append(dst, 1)
		dst = binary.AppendVarint(dst, int64(p.LSH.Dim()))
		dst = appendBinFloat(dst, params.R)
		dst = binary.AppendVarint(dst, int64(params.K))
		dst = binary.AppendVarint(dst, int64(params.L))
		dst = binary.AppendVarint(dst, p.LSH.Seed())
	} else {
		dst = append(dst, 0)
	}
	return p.Global.AppendEncode(dst), nil
}

// decodeTaskBinary parses a task produced by AppendTask.
func decodeTaskBinary(data []byte) (rpol.TaskParams, error) {
	r, err := newBinReader(data, binKindTask)
	if err != nil {
		return rpol.TaskParams{}, fmt.Errorf("wire task: %w", err)
	}
	var p rpol.TaskParams
	if r.version >= binVersion2 {
		flags := r.byteVal()
		if flags&^taskFlagMerkleCommit != 0 {
			return rpol.TaskParams{}, fmt.Errorf("wire task: unknown flags 0x%02x: %w", flags, errBinHeader)
		}
		p.MerkleCommit = flags&taskFlagMerkleCommit != 0
	}
	p.Epoch = int(r.varint())
	p.Hyper.Optimizer = string(r.blob())
	p.Hyper.LR = r.float()
	p.Hyper.BatchSize = int(r.varint())
	p.Steps = int(r.varint())
	p.CheckpointEvery = int(r.varint())
	p.Nonce = prf.Nonce(r.uint64())
	hasLSH := r.byteVal()
	var lshDim, lshK, lshL int
	var lshR float64
	var lshSeed int64
	switch hasLSH {
	case 0:
	case 1:
		lshDim = int(r.varint())
		lshR = r.float()
		lshK = int(r.varint())
		lshL = int(r.varint())
		lshSeed = r.varint()
	default:
		return rpol.TaskParams{}, fmt.Errorf("wire task: lsh presence byte 0x%02x: %w", hasLSH, errBinHeader)
	}
	rest := r.rest()
	if r.err != nil {
		return rpol.TaskParams{}, fmt.Errorf("wire task: %w", r.err)
	}
	global, err := tensor.DecodeVector(rest)
	if err != nil {
		return rpol.TaskParams{}, fmt.Errorf("wire task global: %w", err)
	}
	p.Global = global
	if hasLSH == 1 {
		fam, err := lsh.NewFamily(lshDim, lsh.Params{R: lshR, K: lshK, L: lshL}, lshSeed)
		if err != nil {
			return rpol.TaskParams{}, fmt.Errorf("wire task lsh: %w", err)
		}
		p.LSH = fam
	}
	if err := p.Validate(); err != nil {
		return rpol.TaskParams{}, fmt.Errorf("wire task: %w", err)
	}
	return p, nil
}

// AppendResult appends the binary encoding of an epoch result to dst and
// returns the extended slice. The update vector is the final field. A
// Merkle-committed result (HasRoot) is written in the compact root form —
// 32 bytes of commitment regardless of checkpoint count; a legacy result
// ships the full hash list plus inline digests.
func AppendResult(dst []byte, r *rpol.EpochResult) ([]byte, error) {
	if r == nil {
		return nil, errors.New("wire: result needs a commitment")
	}
	if r.HasRoot {
		dst = append(dst, binMagic, binVersion2, binKindResultRoot)
		dst = appendBinString(dst, r.WorkerID)
		dst = binary.AppendVarint(dst, int64(r.Epoch))
		dst = binary.AppendVarint(dst, int64(r.DataSize))
		dst = binary.AppendVarint(dst, int64(r.NumCheckpoints))
		dst = append(dst, r.MerkleRoot[:]...)
		return r.Update.AppendEncode(dst), nil
	}
	if r.Commit == nil {
		return nil, errors.New("wire: result needs a commitment")
	}
	dst = appendBinHeader(dst, binKindResult)
	dst = appendBinString(dst, r.WorkerID)
	dst = binary.AppendVarint(dst, int64(r.Epoch))
	dst = binary.AppendVarint(dst, int64(r.DataSize))
	dst = binary.AppendVarint(dst, int64(r.NumCheckpoints))
	dst = binary.AppendUvarint(dst, uint64(r.Commit.Size()))
	dst = r.Commit.AppendEncode(dst)
	dst = binary.AppendUvarint(dst, uint64(len(r.LSHDigests)))
	for _, d := range r.LSHDigests {
		dst = binary.AppendUvarint(dst, uint64(d.Size()))
		dst = d.AppendEncode(dst)
	}
	return r.Update.AppendEncode(dst), nil
}

// checkWireCheckpoints bounds a decoded submission's declared checkpoint
// count before it sizes any allocation or commitment check.
func checkWireCheckpoints(n int) error {
	if n < 1 || n > maxWireCheckpoints {
		return fmt.Errorf("wire result: claimed checkpoint count %d out of range [1, %d]", n, maxWireCheckpoints)
	}
	return nil
}

// decodeResultBinary parses a result produced by AppendResult, dispatching
// on the kind byte between the legacy hash-list form and the Merkle root
// form.
func decodeResultBinary(data []byte) (*rpol.EpochResult, error) {
	if len(data) >= 3 && data[2] == binKindResultRoot {
		return decodeResultRootBinary(data)
	}
	r, err := newBinReader(data, binKindResult)
	if err != nil {
		return nil, fmt.Errorf("wire result: %w", err)
	}
	out := &rpol.EpochResult{}
	out.WorkerID = string(r.blob())
	out.Epoch = int(r.varint())
	out.DataSize = int(r.varint())
	out.NumCheckpoints = int(r.varint())
	commitBlob := r.blob()
	nDigests := r.uvarint()
	if r.err != nil {
		return nil, fmt.Errorf("wire result: %w", r.err)
	}
	if err := checkWireCheckpoints(out.NumCheckpoints); err != nil {
		return nil, err
	}
	// The commitment and digest list must both match the declared checkpoint
	// count exactly (digests may also be absent entirely under v1); the blob
	// lengths already on the wire can never force a larger allocation than
	// the claim the verifier would accept.
	commit, err := commitment.DecodeHashListN(commitBlob, out.NumCheckpoints)
	if err != nil {
		return nil, fmt.Errorf("wire result commit: %w", err)
	}
	out.Commit = commit
	if nDigests != 0 && nDigests != uint64(out.NumCheckpoints) {
		return nil, fmt.Errorf("wire result: %d digests for %d checkpoints", nDigests, out.NumCheckpoints)
	}
	for i := uint64(0); i < nDigests; i++ {
		raw := r.blob()
		if r.err != nil {
			return nil, fmt.Errorf("wire result: %w", r.err)
		}
		d, err := lsh.DecodeDigest(raw)
		if err != nil {
			return nil, fmt.Errorf("wire result digest %d: %w", i, err)
		}
		out.LSHDigests = append(out.LSHDigests, d)
	}
	rest := r.rest()
	if r.err != nil {
		return nil, fmt.Errorf("wire result: %w", r.err)
	}
	update, err := tensor.DecodeVector(rest)
	if err != nil {
		return nil, fmt.Errorf("wire result update: %w", err)
	}
	out.Update = update
	return out, nil
}

// decodeResultRootBinary parses the Merkle root form of a result: fixed
// 32-byte root in place of the hash list, update vector last.
func decodeResultRootBinary(data []byte) (*rpol.EpochResult, error) {
	r, err := newBinReader(data, binKindResultRoot)
	if err != nil {
		return nil, fmt.Errorf("wire result: %w", err)
	}
	out := &rpol.EpochResult{}
	out.WorkerID = string(r.blob())
	out.Epoch = int(r.varint())
	out.DataSize = int(r.varint())
	out.NumCheckpoints = int(r.varint())
	if r.err == nil && len(r.buf)-r.off < commitment.HashSize {
		r.fail()
	}
	if r.err == nil {
		copy(out.MerkleRoot[:], r.buf[r.off:r.off+commitment.HashSize])
		r.off += commitment.HashSize
		out.HasRoot = true
	}
	rest := r.rest()
	if r.err != nil {
		return nil, fmt.Errorf("wire result: %w", r.err)
	}
	if err := checkWireCheckpoints(out.NumCheckpoints); err != nil {
		return nil, err
	}
	update, err := tensor.DecodeVector(rest)
	if err != nil {
		return nil, fmt.Errorf("wire result update: %w", err)
	}
	out.Update = update
	return out, nil
}

// AppendOpenRequest appends the binary encoding of a checkpoint-opening
// request to dst.
func AppendOpenRequest(dst []byte, idx int) []byte {
	dst = appendBinHeader(dst, binKindOpenRequest)
	return binary.AppendVarint(dst, int64(idx))
}

// DecodeOpenRequest parses a checkpoint-opening request, accepting both the
// binary form and the legacy JSON form.
func DecodeOpenRequest(data []byte) (OpenRequestMsg, error) {
	if len(data) > 0 && data[0] == '{' {
		return decodeOpenRequestJSON(data)
	}
	r, err := newBinReader(data, binKindOpenRequest)
	if err != nil {
		return OpenRequestMsg{}, fmt.Errorf("wire open request: %w", err)
	}
	idx := int(r.varint())
	if r.err != nil {
		return OpenRequestMsg{}, fmt.Errorf("wire open request: %w", r.err)
	}
	return OpenRequestMsg{Idx: idx}, nil
}

// AppendOpenResponse appends the binary encoding of a checkpoint-opening
// response: the opened raw weights on success (final field, one
// tensor.AppendEncode), or the error string.
func AppendOpenResponse(dst []byte, idx int, errMsg string, weights tensor.Vector) []byte {
	dst = appendBinHeader(dst, binKindOpenResponse)
	dst = binary.AppendVarint(dst, int64(idx))
	dst = appendBinString(dst, errMsg)
	if errMsg != "" {
		return dst
	}
	return weights.AppendEncode(dst)
}

// decodedOpenResponse is the parsed form of an open response: Weights stays
// encoded (the caller decodes it, preserving the legacy path's error text).
type decodedOpenResponse struct {
	Idx     int
	Err     string
	Weights []byte
}

// decodeOpenResponse parses an open response, accepting both the binary form
// and the legacy JSON form.
func decodeOpenResponse(data []byte) (decodedOpenResponse, error) {
	if len(data) > 0 && data[0] == '{' {
		return decodeOpenResponseJSON(data)
	}
	r, err := newBinReader(data, binKindOpenResponse)
	if err != nil {
		return decodedOpenResponse{}, fmt.Errorf("wire open response: %w", err)
	}
	out := decodedOpenResponse{}
	out.Idx = int(r.varint())
	out.Err = string(r.blob())
	if out.Err == "" {
		out.Weights = r.rest()
	}
	if r.err != nil {
		return decodedOpenResponse{}, fmt.Errorf("wire open response: %w", r.err)
	}
	return out, nil
}

// AppendProofRequest appends the binary encoding of a Merkle proof pull for
// leaf idx.
func AppendProofRequest(dst []byte, idx int) []byte {
	dst = append(dst, binMagic, binVersion2, binKindProofRequest)
	return binary.AppendVarint(dst, int64(idx))
}

// DecodeProofRequest parses a Merkle proof pull, accepting both the binary
// form and the JSON form.
func DecodeProofRequest(data []byte) (ProofRequestMsg, error) {
	if len(data) > 0 && data[0] == '{' {
		return decodeProofRequestJSON(data)
	}
	r, err := newBinReader(data, binKindProofRequest)
	if err != nil {
		return ProofRequestMsg{}, fmt.Errorf("wire proof request: %w", err)
	}
	idx := int(r.varint())
	if r.err != nil {
		return ProofRequestMsg{}, fmt.Errorf("wire proof request: %w", r.err)
	}
	return ProofRequestMsg{Idx: idx}, nil
}

// AppendProofResponse appends the binary encoding of a proof-pull response:
// the inclusion proof plus the committed digest encoding it authenticates
// (empty under v1) on success, or the error string.
func AppendProofResponse(dst []byte, idx int, errMsg string, lp rpol.LeafProof) []byte {
	dst = append(dst, binMagic, binVersion2, binKindProofResponse)
	dst = binary.AppendVarint(dst, int64(idx))
	dst = appendBinString(dst, errMsg)
	if errMsg != "" {
		return dst
	}
	dst = binary.AppendUvarint(dst, uint64(lp.Proof.Size()))
	dst = lp.Proof.AppendEncode(dst)
	return appendBinBlob(dst, lp.Digest)
}

// decodeProofResponse parses a proof-pull response, accepting both the
// binary form and the JSON form. The returned digest is copied out of the
// frame so callers may reuse the receive buffer.
func decodeProofResponse(data []byte) (ProofResponseMsg, error) {
	if len(data) > 0 && data[0] == '{' {
		return decodeProofResponseJSON(data)
	}
	r, err := newBinReader(data, binKindProofResponse)
	if err != nil {
		return ProofResponseMsg{}, fmt.Errorf("wire proof response: %w", err)
	}
	out := ProofResponseMsg{}
	out.Idx = int(r.varint())
	out.Err = string(r.blob())
	if out.Err != "" {
		if r.err != nil {
			return ProofResponseMsg{}, fmt.Errorf("wire proof response: %w", r.err)
		}
		return out, nil
	}
	proofBlob := r.blob()
	digestBlob := r.blob()
	if r.err != nil {
		return ProofResponseMsg{}, fmt.Errorf("wire proof response: %w", r.err)
	}
	proof, err := commitment.DecodeProof(proofBlob)
	if err != nil {
		return ProofResponseMsg{}, fmt.Errorf("wire proof response: %w", err)
	}
	out.Proof = proof
	if len(digestBlob) > 0 {
		out.Digest = append([]byte(nil), digestBlob...)
	}
	return out, nil
}
