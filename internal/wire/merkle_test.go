package wire

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"rpol/internal/commitment"
	"rpol/internal/gpu"
	"rpol/internal/lsh"
	"rpol/internal/netsim"
	"rpol/internal/rpol"
	"rpol/internal/tensor"
)

// rootResult builds a Merkle-committed submission by hand.
func rootResult(t *testing.T) (*rpol.EpochResult, *rpol.EpochCommitment) {
	t.Helper()
	checkpoints := []tensor.Vector{{1, 2}, {3, 4}, {5, 6}}
	ec, err := rpol.CommitTrace(nil, checkpoints, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	r := &rpol.EpochResult{
		WorkerID:       "w-root",
		Epoch:          2,
		Update:         tensor.Vector{4, 4},
		DataSize:       64,
		NumCheckpoints: len(checkpoints),
	}
	ec.Apply(r)
	return r, ec
}

// TestTaskMerkleFlagRoundTrip checks the version-2 flags byte: a flagged
// task round-trips MerkleCommit through both the binary and JSON encodings,
// while a flag-free task stays byte-for-byte on the version-1 encoding.
func TestTaskMerkleFlagRoundTrip(t *testing.T) {
	net, _ := wireTask(t, 50)
	p := wireParams(net.ParamVector())

	plain, err := EncodeTask(p)
	if err != nil {
		t.Fatal(err)
	}
	if plain[1] != binVersion {
		t.Fatalf("flag-free task emitted version %d, want %d", plain[1], binVersion)
	}

	p.MerkleCommit = true
	flagged, err := EncodeTask(p)
	if err != nil {
		t.Fatal(err)
	}
	if flagged[1] != binVersion2 {
		t.Fatalf("merkle task emitted version %d, want %d", flagged[1], binVersion2)
	}
	got, err := DecodeTask(flagged)
	if err != nil {
		t.Fatal(err)
	}
	if !got.MerkleCommit {
		t.Error("MerkleCommit flag lost over the binary wire")
	}
	if !got.Global.Equal(p.Global, 0) || got.Hyper != p.Hyper {
		t.Errorf("flagged task lost fields: %+v", got)
	}

	// Unknown flag bits must be rejected, not silently ignored.
	bad := append([]byte{}, flagged...)
	bad[3] |= 0x80
	if _, err := DecodeTask(bad); err == nil {
		t.Error("decode accepted unknown task flags")
	}

	taskJSON, err := json.Marshal(TaskMsg{
		Epoch: p.Epoch, Global: p.Global.Encode(), Optimizer: p.Hyper.Optimizer,
		LR: p.Hyper.LR, BatchSize: p.Hyper.BatchSize, Steps: p.Steps,
		CheckpointEvery: p.CheckpointEvery, Nonce: uint64(p.Nonce), MerkleCommit: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, err := DecodeTask(taskJSON); err != nil || !got.MerkleCommit {
		t.Errorf("JSON MerkleCommit round trip: %+v, err = %v", got, err)
	}
}

func TestRootResultRoundTrip(t *testing.T) {
	res, _ := rootResult(t)
	data, err := EncodeResult(res)
	if err != nil {
		t.Fatal(err)
	}
	if data[2] != binKindResultRoot {
		t.Fatalf("root result emitted kind 0x%02x, want 0x%02x", data[2], binKindResultRoot)
	}
	got, err := DecodeResult(data)
	if err != nil {
		t.Fatal(err)
	}
	if !got.HasRoot || got.MerkleRoot != res.MerkleRoot {
		t.Errorf("root changed: %+v", got)
	}
	if got.Commit != nil || got.LSHDigests != nil {
		t.Error("root form decoded inline commitment fields")
	}
	if got.WorkerID != res.WorkerID || got.Epoch != res.Epoch ||
		got.DataSize != res.DataSize || got.NumCheckpoints != res.NumCheckpoints {
		t.Errorf("metadata changed: %+v", got)
	}
	if !got.Update.Equal(res.Update, 0) {
		t.Errorf("update = %v, want %v", got.Update, res.Update)
	}

	// JSON form.
	resJSON, err := json.Marshal(ResultMsg{
		WorkerID: res.WorkerID, Epoch: res.Epoch, Update: res.Update.Encode(),
		DataSize: res.DataSize, Root: res.MerkleRoot[:], NumCheckpoints: res.NumCheckpoints,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err = DecodeResult(resJSON)
	if err != nil {
		t.Fatal(err)
	}
	if !got.HasRoot || got.MerkleRoot != res.MerkleRoot {
		t.Errorf("JSON root changed: %+v", got)
	}
}

// TestDecodeResultBounds is the malformed-submission regression suite: a
// decoded result's declared checkpoint count must be bounded and must match
// the commitment (and digest list) it ships, in both wire encodings.
func TestDecodeResultBounds(t *testing.T) {
	legacy := testResult(t)
	goodBin, err := EncodeResult(legacy)
	if err != nil {
		t.Fatal(err)
	}
	root, _ := rootResult(t)
	goodRoot, err := EncodeResult(root)
	if err != nil {
		t.Fatal(err)
	}

	jsonMsg := func(mutate func(*ResultMsg)) []byte {
		msg := ResultMsg{
			WorkerID: legacy.WorkerID, Epoch: legacy.Epoch, Update: legacy.Update.Encode(),
			DataSize: legacy.DataSize, Commit: legacy.Commit.Encode(),
			NumCheckpoints: legacy.NumCheckpoints,
		}
		for _, d := range legacy.LSHDigests {
			msg.Digests = append(msg.Digests, d.Encode())
		}
		mutate(&msg)
		data, err := json.Marshal(msg)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	cases := map[string][]byte{
		// JSON: count/commitment mismatches.
		"json zero count":     jsonMsg(func(m *ResultMsg) { m.NumCheckpoints = 0 }),
		"json negative count": jsonMsg(func(m *ResultMsg) { m.NumCheckpoints = -4 }),
		"json huge count":     jsonMsg(func(m *ResultMsg) { m.NumCheckpoints = maxWireCheckpoints + 1 }),
		"json short commit":   jsonMsg(func(m *ResultMsg) { m.Commit = m.Commit[:commitment.HashSize] }),
		"json overlong commit": jsonMsg(func(m *ResultMsg) {
			m.Commit = append(m.Commit, make([]byte, commitment.HashSize)...)
		}),
		"json digest count": jsonMsg(func(m *ResultMsg) { m.Digests = m.Digests[:1] }),
		"json truncated root": jsonMsg(func(m *ResultMsg) {
			m.Commit, m.Digests, m.Root = nil, nil, []byte{1, 2, 3}
		}),
		"json root plus commit": jsonMsg(func(m *ResultMsg) {
			m.Root = make([]byte, commitment.HashSize)
		}),
	}
	for name, data := range cases {
		if _, err := DecodeResult(data); err == nil {
			t.Errorf("%s: decode accepted malformed payload", name)
		}
	}

	// Binary legacy form: a claimed count inconsistent with the shipped
	// commitment must be rejected. The varint for NumCheckpoints=2 lives
	// right before the commit blob; rebuild the frame around a wrong claim.
	bad, err := AppendResult(nil, &rpol.EpochResult{
		WorkerID: legacy.WorkerID, Epoch: legacy.Epoch, Update: legacy.Update,
		DataSize: legacy.DataSize, Commit: legacy.Commit,
		LSHDigests: legacy.LSHDigests, NumCheckpoints: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeResult(bad); err == nil || !strings.Contains(err.Error(), "commit") {
		t.Errorf("binary count/commit mismatch: err = %v", err)
	}

	// Binary root form: truncating the 32-byte root must fail, not misparse
	// the update tail as root bytes.
	if _, err := DecodeResult(goodRoot[:len(goodRoot)-len(root.Update.Encode())-4]); err == nil {
		t.Error("binary truncated root accepted")
	}

	// Sanity: the unmutated frames still decode.
	if _, err := DecodeResult(goodBin); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeResult(goodRoot); err != nil {
		t.Fatal(err)
	}
}

func TestProofMessagesRoundTrip(t *testing.T) {
	_, ec := rootResult(t)
	lp, err := ec.OpenProof(1)
	if err != nil {
		t.Fatal(err)
	}

	req, err := DecodeProofRequest(AppendProofRequest(nil, 7))
	if err != nil || req.Idx != 7 {
		t.Errorf("proof request = %+v, err = %v", req, err)
	}
	reqJSON, err := json.Marshal(ProofRequestMsg{Idx: 7})
	if err != nil {
		t.Fatal(err)
	}
	if req, err := DecodeProofRequest(reqJSON); err != nil || req.Idx != 7 {
		t.Errorf("JSON proof request = %+v, err = %v", req, err)
	}

	resp, err := decodeProofResponse(AppendProofResponse(nil, 1, "", lp))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Idx != 1 || resp.Err != "" || resp.Proof.Index != lp.Proof.Index ||
		len(resp.Proof.Siblings) != len(lp.Proof.Siblings) {
		t.Fatalf("proof response = %+v", resp)
	}
	for i := range resp.Proof.Siblings {
		if resp.Proof.Siblings[i] != lp.Proof.Siblings[i] {
			t.Fatal("proof siblings changed over the wire")
		}
	}
	if !bytes.Equal(resp.Digest, lp.Digest) {
		t.Errorf("digest = %v, want %v", resp.Digest, lp.Digest)
	}

	resp, err = decodeProofResponse(AppendProofResponse(nil, 9, "no proof", rpol.LeafProof{}))
	if err != nil || resp.Idx != 9 || resp.Err != "no proof" {
		t.Errorf("error response = %+v, err = %v", resp, err)
	}

	// JSON form.
	respJSON, err := json.Marshal(ProofResponseMsg{
		Idx: 1, ProofBytes: lp.Proof.AppendEncode(nil), Digest: lp.Digest,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err = decodeProofResponse(respJSON)
	if err != nil || resp.Proof.Index != lp.Proof.Index {
		t.Errorf("JSON proof response = %+v, err = %v", resp, err)
	}

	// A proof blob claiming an absurd depth must be rejected before any
	// sibling allocation.
	huge := commitment.MerkleProof{Index: 0, Siblings: make([]commitment.Hash, commitment.MaxProofSiblings+1)}
	frame := AppendProofResponse(nil, 1, "", rpol.LeafProof{Proof: huge})
	if _, err := decodeProofResponse(frame); err == nil {
		t.Error("oversized proof depth accepted")
	}
}

// TestMerkleOverBusEndToEnd drives the full proof-pull protocol over the
// metered bus: the worker trains under a Merkle-flagged task, submits only
// the root, and the manager's verifier pulls inclusion proofs through the
// RemoteWorker proxy.
func TestMerkleOverBusEndToEnd(t *testing.T) {
	bus := netsim.NewBus()
	var wg sync.WaitGroup
	defer func() {
		bus.Close()
		wg.Wait()
	}()

	net, ds := wireTask(t, 31)
	local, err := rpol.NewHonestWorker("w-merkle", gpu.GA10, 71, net, ds)
	if err != nil {
		t.Fatal(err)
	}
	startServedWorker(t, bus, &wg, local)
	port, err := NewManagerPort(bus, "manager")
	if err != nil {
		t.Fatal(err)
	}
	remote, err := NewRemoteWorker("w-merkle", gpu.GA10, port)
	if err != nil {
		t.Fatal(err)
	}

	p := wireParams(net.ParamVector())
	p.MerkleCommit = true
	fam, err := lsh.NewFamily(len(p.Global), lsh.Params{R: 0.5, K: 2, L: 2}, 9)
	if err != nil {
		t.Fatal(err)
	}
	p.LSH = fam
	result, err := remote.RunEpoch(p)
	if err != nil {
		t.Fatal(err)
	}
	if !result.HasRoot {
		t.Fatal("merkle task produced a non-root submission")
	}

	verifyNet, _ := wireTask(t, 31)
	device, err := gpu.NewDevice(gpu.G3090, 5)
	if err != nil {
		t.Fatal(err)
	}
	verifier := &rpol.Verifier{
		Scheme: rpol.SchemeV2, Net: verifyNet, Device: device, Beta: 0.5,
		LSH: fam, Samples: 2, Sampler: tensor.NewRNG(8),
	}
	out, err := verifier.VerifySubmission(remote, ds, result, p)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Accepted {
		t.Fatalf("merkle submission rejected over the bus: %s", out.FailReason)
	}
	if byKind := bus.Meter().ByKind(); byKind[KindProofRequest] == 0 || byKind[KindProofResponse] == 0 {
		t.Errorf("no proof-pull traffic metered: %v", byKind)
	}
}
