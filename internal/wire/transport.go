package wire

import "rpol/internal/netsim"

// Transport is the endpoint surface the wire layer needs. Both the
// in-memory bus endpoint (netsim.Endpoint) and the TCP hub endpoint
// (netsim.TCPEndpoint) satisfy it, so the same manager and worker code runs
// over either fabric.
type Transport interface {
	// Send delivers a message to the named peer.
	Send(to, kind string, payload []byte) error
	// Recv blocks until a message arrives or the fabric closes.
	Recv() (netsim.Message, error)
}

var (
	_ Transport = (*netsim.Endpoint)(nil)
	_ Transport = (*netsim.TCPEndpoint)(nil)
)
