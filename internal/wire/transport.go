package wire

import "rpol/internal/netsim"

// Transport is the endpoint surface the wire layer needs. Both the
// in-memory bus endpoint (netsim.Endpoint) and the TCP hub endpoint
// (netsim.TCPEndpoint) satisfy it, so the same manager and worker code runs
// over either fabric.
type Transport interface {
	// Send delivers a message to the named peer.
	Send(to, kind string, payload []byte) error
	// Recv blocks until a message arrives or the fabric closes.
	Recv() (netsim.Message, error)
}

// PollingTransport is the optional non-blocking surface deadline-driven
// callers need: a ManagerPort with a RetryPolicy polls TryRecv against its
// logical-clock deadline instead of blocking in Recv. Both fabrics'
// endpoints provide it.
type PollingTransport interface {
	Transport
	// TryRecv returns the next message if one is queued.
	TryRecv() (netsim.Message, bool)
}

// SeqTransport is the optional correlation surface: senders stamp requests
// with a sequence number the peer echoes, so a retrying caller can discard
// stale replies to attempts it already gave up on. Both fabrics' endpoints
// provide it.
type SeqTransport interface {
	// SendSeq delivers a message carrying the given correlation number.
	SendSeq(to, kind string, seq uint64, payload []byte) error
}

// SerializingSender marks transports whose Send fully serializes the payload
// before returning, so the caller may reuse the payload buffer for its next
// message. The TCP endpoint qualifies (the frame is written to the socket
// under a lock before Send returns); the in-memory Bus endpoint does NOT —
// it enqueues the payload slice by reference, and a reused buffer would be
// rewritten underneath the receiver.
type SerializingSender interface {
	// SendSerializes is a marker with no behaviour.
	SendSerializes()
}

var (
	_ Transport         = (*netsim.Endpoint)(nil)
	_ Transport         = (*netsim.TCPEndpoint)(nil)
	_ PollingTransport  = (*netsim.Endpoint)(nil)
	_ PollingTransport  = (*netsim.TCPEndpoint)(nil)
	_ SeqTransport      = (*netsim.Endpoint)(nil)
	_ SeqTransport      = (*netsim.TCPEndpoint)(nil)
	_ SerializingSender = (*netsim.TCPEndpoint)(nil)
)

// sendSeq stamps seq when the transport supports correlation and falls back
// to a plain send otherwise.
func sendSeq(t Transport, to, kind string, seq uint64, payload []byte) error {
	if st, ok := t.(SeqTransport); ok {
		return st.SendSeq(to, kind, seq, payload)
	}
	return t.Send(to, kind, payload)
}
