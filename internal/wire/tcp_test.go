package wire

import (
	"sync"
	"testing"

	"rpol/internal/dataset"
	"rpol/internal/gpu"
	"rpol/internal/netsim"
	"rpol/internal/rpol"
)

// TestManagerOverTCPEndToEnd runs the full manager/worker protocol through
// the real TCP hub: the same rpol.Manager, the same WorkerServer, just a
// socket fabric instead of the in-memory bus.
func TestManagerOverTCPEndToEnd(t *testing.T) {
	hub, err := netsim.NewTCPHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()

	const n = 2
	_, fullDS := wireTask(t, 50)
	shards, err := fullDS.Partition(n + 1)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	workers := make([]rpol.Worker, 0, n)
	shardMap := make(map[string]*dataset.Dataset, n)
	managerConn, err := netsim.DialHub(hub.Addr(), "manager")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = managerConn.Close() }()
	port, err := NewManagerPortOver(managerConn)
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < n; i++ {
		net, _ := wireTask(t, 50)
		id := "tcp-w" + string(rune('0'+i))
		local, err := rpol.NewHonestWorker(id, gpu.GA10, int64(200+i), net, shards[i])
		if err != nil {
			t.Fatal(err)
		}
		conn, err := netsim.DialHub(hub.Addr(), id)
		if err != nil {
			t.Fatal(err)
		}
		server, err := NewWorkerServerOver(conn, local)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			if err := server.Run(); err != nil {
				t.Errorf("server %s: %v", id, err)
			}
		}(id)
		t.Cleanup(func() { _ = conn.Close() })

		remote, err := NewRemoteWorker(id, gpu.GA10, port)
		if err != nil {
			t.Fatal(err)
		}
		workers = append(workers, remote)
		shardMap[id] = shards[i]
	}

	managerNet, _ := wireTask(t, 50)
	manager, err := rpol.NewManager(rpol.ManagerConfig{
		Address:         "tcp-manager",
		Scheme:          rpol.SchemeV1,
		Hyper:           rpol.Hyper{Optimizer: "sgdm", LR: 0.02, BatchSize: 8},
		StepsPerEpoch:   10,
		CheckpointEvery: 5,
		Samples:         2,
		GPU:             gpu.G3090,
		MasterKey:       []byte("tcp"),
		Seed:            60,
	}, managerNet, workers, shardMap, shards[n])
	if err != nil {
		t.Fatal(err)
	}

	report, err := manager.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if report.Accepted != n || report.Rejected != 0 {
		for _, o := range report.Outcomes {
			if !o.Accepted {
				t.Logf("%s: %s", o.WorkerID, o.FailReason)
			}
		}
		t.Fatalf("accepted %d rejected %d", report.Accepted, report.Rejected)
	}
	if hub.Meter().Total() == 0 {
		t.Error("no bytes metered over TCP")
	}

	// Shut the servers down cleanly.
	hub.Close()
	wg.Wait()
}
