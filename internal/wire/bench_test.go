package wire

import (
	"encoding/base64"
	"testing"

	"rpol/internal/commitment"
	"rpol/internal/lsh"
	"rpol/internal/rpol"
	"rpol/internal/tensor"
)

// benchDim matches the verification benchmarks' weight-vector size, so the
// codec numbers are comparable with the protocol-level transfer accounting.
const benchDim = 4096

func benchTaskParams(b *testing.B) rpol.TaskParams {
	b.Helper()
	p := rpol.TaskParams{
		Epoch:           3,
		Global:          tensor.NewRNG(21).NormalVector(benchDim, 0, 1),
		Hyper:           rpol.Hyper{Optimizer: "sgdm", LR: 0.01, BatchSize: 8},
		Nonce:           7,
		Steps:           40,
		CheckpointEvery: 10,
	}
	fam, err := lsh.NewFamily(benchDim, lsh.Params{R: 1, K: 4, L: 4}, 5)
	if err != nil {
		b.Fatal(err)
	}
	p.LSH = fam
	return p
}

func benchEpochResult(b *testing.B) *rpol.EpochResult {
	b.Helper()
	payloads := make([][]byte, 5)
	digests := make([]lsh.Digest, 5)
	for i := range payloads {
		digests[i] = lsh.Digest{uint64(i), uint64(i * 3)}
		payloads[i] = digests[i].Encode()
	}
	commit, err := commitment.NewHashList(payloads)
	if err != nil {
		b.Fatal(err)
	}
	return &rpol.EpochResult{
		WorkerID:       "w-bench",
		Epoch:          3,
		Update:         tensor.NewRNG(22).NormalVector(benchDim, 0, 1),
		DataSize:       256,
		Commit:         commit,
		LSHDigests:     digests,
		NumCheckpoints: 5,
	}
}

// BenchmarkEncodeTask measures the binary task encode with a warm reused
// buffer — the ManagerPort steady state over a serializing transport.
func BenchmarkEncodeTask(b *testing.B) {
	p := benchTaskParams(b)
	buf, err := AppendTask(nil, p)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err = AppendTask(buf[:0], p)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeTask measures the binary task decode (the worker's receive
// path; the trailing weight vector dominates). The task carries no LSH
// family: rebuilding one regenerates its random projections, which would
// swamp the codec cost this benchmark (and its legacy-JSON twin) isolates.
func BenchmarkDecodeTask(b *testing.B) {
	p := benchTaskParams(b)
	p.LSH = nil
	data, err := EncodeTask(p)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeTask(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeTaskLegacyJSON pins the cost of the JSON+base64 fallback
// the binary codec replaced, on the same LSH-free task as BenchmarkDecodeTask.
func BenchmarkDecodeTaskLegacyJSON(b *testing.B) {
	p := benchTaskParams(b)
	p.LSH = nil
	data := []byte(`{"epoch":3,"global":"` + base64.StdEncoding.EncodeToString(p.Global.Encode()) +
		`","optimizer":"sgdm","lr":0.01,"batchSize":8,"steps":40,"checkpointEvery":10,"nonce":7}`)
	if _, err := DecodeTask(data); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeTask(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncodeResult measures the binary result encode with a warm reused
// buffer — the WorkerServer reply steady state.
func BenchmarkEncodeResult(b *testing.B) {
	res := benchEpochResult(b)
	buf, err := AppendResult(nil, res)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err = AppendResult(buf[:0], res)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeResult measures the binary result decode (the manager's
// collect path).
func BenchmarkDecodeResult(b *testing.B) {
	data, err := AppendResult(nil, benchEpochResult(b))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeResult(data); err != nil {
			b.Fatal(err)
		}
	}
}

func benchRootResult(b *testing.B) *rpol.EpochResult {
	b.Helper()
	res := &rpol.EpochResult{
		WorkerID:       "w-bench",
		Epoch:          3,
		Update:         tensor.NewRNG(22).NormalVector(benchDim, 0, 1),
		DataSize:       256,
		NumCheckpoints: 64,
		HasRoot:        true,
	}
	for i := range res.MerkleRoot {
		res.MerkleRoot[i] = byte(i * 7)
	}
	return res
}

// BenchmarkEncodeResultRoot measures the Merkle submission encode: the
// 32-byte root replaces the inline hash list, so the frame is dominated by
// the update vector regardless of checkpoint count.
func BenchmarkEncodeResultRoot(b *testing.B) {
	res := benchRootResult(b)
	buf, err := AppendResult(nil, res)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err = AppendResult(buf[:0], res)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeResultRoot measures the manager-side decode of a
// root-committed submission.
func BenchmarkDecodeResultRoot(b *testing.B) {
	data, err := AppendResult(nil, benchRootResult(b))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeResult(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncodeProofResponse measures one proof-pull answer: an inclusion
// proof for a 64-leaf tree (6 siblings) plus a v2 digest blob.
func BenchmarkEncodeProofResponse(b *testing.B) {
	payloads := make([][]byte, 64)
	for i := range payloads {
		d := lsh.Digest{uint64(i), uint64(i * 3)}
		payloads[i] = d.Encode()
	}
	tree, err := commitment.NewMerkleTree(payloads)
	if err != nil {
		b.Fatal(err)
	}
	proof, err := tree.Prove(17)
	if err != nil {
		b.Fatal(err)
	}
	lp := rpol.LeafProof{Proof: proof, Digest: payloads[17]}
	buf := AppendProofResponse(nil, 17, "", lp)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendProofResponse(buf[:0], 17, "", lp)
	}
}
