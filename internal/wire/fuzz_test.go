package wire

import (
	"testing"

	"rpol/internal/lsh"
	"rpol/internal/rpol"
	"rpol/internal/tensor"
)

// FuzzDecodeTask feeds arbitrary bytes to the task decoder: it must never
// panic and every accepted task must validate.
func FuzzDecodeTask(f *testing.F) {
	good := rpol.TaskParams{
		Global:          tensor.Vector{1, 2, 3, 4},
		Hyper:           rpol.Hyper{Optimizer: "sgdm", LR: 0.02, BatchSize: 4},
		Nonce:           7,
		Steps:           10,
		CheckpointEvery: 5,
	}
	if data, err := EncodeTask(good); err == nil {
		f.Add(data)
	}
	fam, err := lsh.NewFamily(4, lsh.Params{R: 1, K: 2, L: 2}, 3)
	if err == nil {
		withLSH := good
		withLSH.LSH = fam
		if data, err := EncodeTask(withLSH); err == nil {
			f.Add(data)
		}
	}
	f.Add([]byte("{}"))
	f.Add([]byte(`{"lsh":{"dim":-1}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodeTask(data)
		if err != nil {
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("decoder accepted invalid task: %v", err)
		}
	})
}

// FuzzDecodeResult feeds arbitrary bytes to the result decoder.
func FuzzDecodeResult(f *testing.F) {
	f.Add([]byte("{}"))
	f.Add([]byte(`{"update":"AAAAAAAAAAA=","commit":""}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		res, err := DecodeResult(data)
		if err != nil {
			return
		}
		if res.Commit == nil {
			t.Fatal("decoder accepted result without commitment")
		}
	})
}
