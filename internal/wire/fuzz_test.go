package wire

import (
	"testing"

	"rpol/internal/commitment"
	"rpol/internal/lsh"
	"rpol/internal/rpol"
	"rpol/internal/tensor"
)

// FuzzDecodeTask feeds arbitrary bytes to the task decoder: it must never
// panic, every accepted task must validate, and every accepted task must
// survive a binary re-encode round trip.
func FuzzDecodeTask(f *testing.F) {
	good := rpol.TaskParams{
		Global:          tensor.Vector{1, 2, 3, 4},
		Hyper:           rpol.Hyper{Optimizer: "sgdm", LR: 0.02, BatchSize: 4},
		Nonce:           7,
		Steps:           10,
		CheckpointEvery: 5,
	}
	if data, err := EncodeTask(good); err == nil {
		f.Add(data)
	}
	fam, err := lsh.NewFamily(4, lsh.Params{R: 1, K: 2, L: 2}, 3)
	if err == nil {
		withLSH := good
		withLSH.LSH = fam
		if data, err := EncodeTask(withLSH); err == nil {
			f.Add(data)
		}
	}
	// Legacy JSON payloads keep the fallback decoder fuzzed.
	f.Add([]byte("{}"))
	f.Add([]byte(`{"lsh":{"dim":-1}}`))
	f.Add([]byte(`{"global":"BAAAAAAAAAAAAAAAAADwPwAAAAAAAABAAAAAAAAACEAAAAAAAAAQQA==",` +
		`"optimizer":"sgdm","lr":0.02,"batchSize":4,"steps":10,"checkpointEvery":5,"nonce":7}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodeTask(data)
		if err != nil {
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("decoder accepted invalid task: %v", err)
		}
		reenc, err := AppendTask(nil, p)
		if err != nil {
			t.Fatalf("re-encode of accepted task failed: %v", err)
		}
		rt, err := DecodeTask(reenc)
		if err != nil {
			t.Fatalf("binary round trip failed: %v", err)
		}
		if !rt.Global.Equal(p.Global, 0) || rt.Hyper != p.Hyper || rt.Nonce != p.Nonce ||
			rt.Steps != p.Steps || rt.CheckpointEvery != p.CheckpointEvery || rt.Epoch != p.Epoch {
			t.Fatalf("round trip changed task: %+v vs %+v", rt, p)
		}
	})
}

// FuzzDecodeResult feeds arbitrary bytes to the result decoder; accepted
// results must survive a binary re-encode round trip.
func FuzzDecodeResult(f *testing.F) {
	f.Add([]byte("{}"))
	f.Add([]byte(`{"update":"AAAAAAAAAAA=","commit":""}`))
	if commit, err := commitment.NewHashList([][]byte{[]byte("cp")}); err == nil {
		res := &rpol.EpochResult{
			WorkerID: "w", Epoch: 1, Update: tensor.Vector{1, 2},
			DataSize: 10, NumCheckpoints: 1,
			Commit:     commit,
			LSHDigests: []lsh.Digest{{9, 8}},
		}
		if data, err := AppendResult(nil, res); err == nil {
			f.Add(data)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		res, err := DecodeResult(data)
		if err != nil {
			return
		}
		if res.Commit == nil {
			t.Fatal("decoder accepted result without commitment")
		}
		reenc, err := AppendResult(nil, res)
		if err != nil {
			t.Fatalf("re-encode of accepted result failed: %v", err)
		}
		rt, err := DecodeResult(reenc)
		if err != nil {
			t.Fatalf("binary round trip failed: %v", err)
		}
		if rt.WorkerID != res.WorkerID || !rt.Update.Equal(res.Update, 0) ||
			rt.Commit.Root() != res.Commit.Root() || len(rt.LSHDigests) != len(res.LSHDigests) {
			t.Fatal("round trip changed result")
		}
	})
}

// FuzzDecodeOpenResponse fuzzes the remaining binary decoder pair.
func FuzzDecodeOpenResponse(f *testing.F) {
	f.Add(AppendOpenResponse(nil, 2, "", tensor.Vector{1, 2}))
	f.Add(AppendOpenResponse(nil, 5, "boom", nil))
	f.Add([]byte(`{"idx":1,"weights":"AQAAAAAAAAAAAAAAAADwPw=="}`))
	f.Add(AppendOpenRequest(nil, 3))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = decodeOpenResponse(data)
		_, _ = DecodeOpenRequest(data)
	})
}
