package wire

import (
	"errors"
	"testing"
	"time"

	"rpol/internal/netsim"
	"rpol/internal/obs"
	"rpol/internal/rpol"
)

func retryPort(t *testing.T, bus *netsim.Bus, pol RetryPolicy) (*ManagerPort, *obs.Observer) {
	t.Helper()
	mp, err := NewManagerPort(bus, "manager")
	if err != nil {
		t.Fatal(err)
	}
	observer := obs.NewObserver(obs.NewRegistry(), nil)
	mp.SetObserver(observer)
	mp.SetRetryPolicy(&pol)
	return mp, observer
}

func TestCallRetryTimesOutAsUnavailable(t *testing.T) {
	bus := netsim.NewBus()
	defer bus.Close()
	mp, observer := retryPort(t, bus, RetryPolicy{Attempts: 2, Timeout: time.Millisecond})
	if _, err := bus.Register("worker-1"); err != nil { // registered but silent
		t.Fatal(err)
	}

	_, err := mp.call("worker-1", KindTask, []byte("x"), KindResult)
	if !errors.Is(err, rpol.ErrWorkerUnavailable) {
		t.Fatalf("err = %v, want ErrWorkerUnavailable", err)
	}
	if got := observer.Counter("net_timeouts_total").Value(); got != 2 {
		t.Errorf("net_timeouts_total = %d, want 2 (one per attempt)", got)
	}
	if got := observer.Counter("net_retries_total").Value(); got != 1 {
		t.Errorf("net_retries_total = %d, want 1", got)
	}
}

func TestCallRetryDiscardsStaleReplies(t *testing.T) {
	bus := netsim.NewBus()
	defer bus.Close()
	mp, _ := retryPort(t, bus, RetryPolicy{Attempts: 3, Timeout: 5 * time.Millisecond})
	wep, err := bus.Register("worker-1")
	if err != nil {
		t.Fatal(err)
	}

	// First exchange: the worker never answers, so the call exhausts its
	// attempts and abandons seq 1 (three copies of it sit in the inbox).
	if _, err := mp.call("worker-1", KindTask, []byte("a"), KindResult); !errors.Is(err, rpol.ErrWorkerUnavailable) {
		t.Fatalf("err = %v, want ErrWorkerUnavailable", err)
	}

	// The worker now wakes up: it first answers every stale request it finds,
	// then serves fresh ones as they arrive.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			msg, err := wep.Recv()
			if err != nil {
				return
			}
			if err := wep.SendSeq("manager", KindResult, msg.Seq, []byte("reply-"+string(msg.Payload))); err != nil {
				return
			}
		}
	}()

	// Second exchange: the manager must skip the three stale seq-1 replies
	// and accept only the seq-2 reply carrying payload "b".
	got, err := mp.call("worker-1", KindTask, []byte("b"), KindResult)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "reply-b" {
		t.Fatalf("payload = %q, want %q (stale reply accepted?)", got, "reply-b")
	}
	bus.Close()
	<-done
}

func TestCallRetryRecoversFromDrops(t *testing.T) {
	// Deterministically drop manager→worker traffic often; with enough
	// attempts the exchange still completes and records the retries.
	bus := netsim.NewBus()
	defer bus.Close()
	// Both directions drop, so one attempt succeeds with probability ~0.25;
	// the generous attempt budget keeps the (fixed, seed-determined)
	// schedule comfortably inside it.
	bus.InjectFaults(netsim.NewFaultPlan(11, netsim.FaultConfig{DropRate: 0.5}), obs.NewSimClock(0))
	mp, observer := retryPort(t, bus, RetryPolicy{Attempts: 25, Timeout: 2 * time.Millisecond})
	wep, err := bus.Register("worker-1")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			msg, err := wep.Recv()
			if err != nil {
				return
			}
			if err := wep.SendSeq("manager", KindResult, msg.Seq, msg.Payload); err != nil {
				return
			}
		}
	}()

	for i := 0; i < 20; i++ {
		got, err := mp.call("worker-1", KindTask, []byte{byte(i)}, KindResult)
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if len(got) != 1 || got[0] != byte(i) {
			t.Fatalf("call %d: payload %v", i, got)
		}
	}
	drops, _ := bus.Meter().Injected()
	if drops == 0 {
		t.Fatal("fault plan injected no drops at 50% rate")
	}
	if observer.Counter("net_retries_total").Value() == 0 {
		t.Error("exchanges survived drops without recording any retries")
	}
	bus.Close()
	<-done
}

func TestWorkerServerEchoesSeq(t *testing.T) {
	bus := netsim.NewBus()
	defer bus.Close()
	mep, err := bus.Register("manager")
	if err != nil {
		t.Fatal(err)
	}
	wep, err := bus.Register("worker-1")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Malformed request: the server replies KindError, echoing the seq.
		msg, err := wep.Recv()
		if err != nil {
			return
		}
		srv := &WorkerServer{ep: wep}
		if err := srv.handle(msg); err != nil {
			_ = srv.send(msg.From, KindError, msg.Seq, []byte(err.Error()))
		}
	}()
	if err := mep.SendSeq("worker-1", "bogus-kind", 77, nil); err != nil {
		t.Fatal(err)
	}
	reply, err := mep.Recv()
	if err != nil {
		t.Fatal(err)
	}
	<-done
	if reply.Kind != KindError {
		t.Fatalf("reply kind = %q, want error", reply.Kind)
	}
	if reply.Seq != 77 {
		t.Fatalf("reply seq = %d, want 77 (server must echo the request seq)", reply.Seq)
	}
}
