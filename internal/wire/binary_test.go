package wire

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"rpol/internal/commitment"
	"rpol/internal/lsh"
	"rpol/internal/rpol"
	"rpol/internal/tensor"
)

// testResult builds a small, fully-populated epoch result by hand.
func testResult(t *testing.T) *rpol.EpochResult {
	t.Helper()
	commit, err := commitment.NewHashList([][]byte{[]byte("cp0"), []byte("cp1")})
	if err != nil {
		t.Fatal(err)
	}
	return &rpol.EpochResult{
		WorkerID:       "w-bin",
		Epoch:          4,
		Update:         tensor.Vector{0.5, -1.25, 3},
		DataSize:       128,
		Commit:         commit,
		LSHDigests:     []lsh.Digest{{1, 2, 3}, {4, 5}},
		NumCheckpoints: 2,
	}
}

// TestGoldenLegacyJSONTask pins the legacy JSON decode fallback against a
// literal payload in the exact shape pre-binary peers produced (field names,
// base64 vector encoding). The binary rollout must never break it.
func TestGoldenLegacyJSONTask(t *testing.T) {
	golden := `{"epoch":3,"global":"AgAAAAAAAAAAAAAAAADwPwAAAAAAAABA",` +
		`"optimizer":"sgdm","lr":0.02,"batchSize":4,"steps":10,` +
		`"checkpointEvery":5,"nonce":7}`
	p, err := DecodeTask([]byte(golden))
	if err != nil {
		t.Fatal(err)
	}
	if !p.Global.Equal(tensor.Vector{1, 2}, 0) {
		t.Errorf("global = %v, want [1 2]", p.Global)
	}
	if p.Epoch != 3 || p.Hyper.Optimizer != "sgdm" || p.Hyper.LR != 0.02 ||
		p.Hyper.BatchSize != 4 || p.Steps != 10 || p.CheckpointEvery != 5 || p.Nonce != 7 {
		t.Errorf("decoded params = %+v", p)
	}
	if p.LSH != nil {
		t.Error("LSH family from a task without one")
	}
}

// TestLegacyJSONRoundTrips re-encodes each message with the legacy JSON
// structs (the exact encoder older peers ran) and requires the current
// decoders to accept the payloads via the first-byte sniff.
func TestLegacyJSONRoundTrips(t *testing.T) {
	net, _ := wireTask(t, 40)
	p := wireParams(net.ParamVector())
	fam, err := lsh.NewFamily(len(p.Global), lsh.Params{R: 0.5, K: 2, L: 2}, 12)
	if err != nil {
		t.Fatal(err)
	}
	p.LSH = fam
	taskJSON, err := json.Marshal(TaskMsg{
		Epoch:           p.Epoch,
		Global:          p.Global.Encode(),
		Optimizer:       p.Hyper.Optimizer,
		LR:              p.Hyper.LR,
		BatchSize:       p.Hyper.BatchSize,
		Steps:           p.Steps,
		CheckpointEvery: p.CheckpointEvery,
		Nonce:           uint64(p.Nonce),
		LSH:             &LSHMsg{Dim: fam.Dim(), R: 0.5, K: 2, L: 2, Seed: 12},
	})
	if err != nil {
		t.Fatal(err)
	}
	gotTask, err := DecodeTask(taskJSON)
	if err != nil {
		t.Fatal(err)
	}
	if !gotTask.Global.Equal(p.Global, 0) || gotTask.Hyper != p.Hyper || gotTask.LSH == nil {
		t.Errorf("legacy task decode lost fields: %+v", gotTask)
	}

	res := testResult(t)
	resMsg := ResultMsg{
		WorkerID:       res.WorkerID,
		Epoch:          res.Epoch,
		Update:         res.Update.Encode(),
		DataSize:       res.DataSize,
		Commit:         res.Commit.Encode(),
		NumCheckpoints: res.NumCheckpoints,
	}
	for _, d := range res.LSHDigests {
		resMsg.Digests = append(resMsg.Digests, d.Encode())
	}
	resJSON, err := json.Marshal(resMsg)
	if err != nil {
		t.Fatal(err)
	}
	gotRes, err := DecodeResult(resJSON)
	if err != nil {
		t.Fatal(err)
	}
	if gotRes.WorkerID != res.WorkerID || !gotRes.Update.Equal(res.Update, 0) ||
		gotRes.Commit.Root() != res.Commit.Root() || len(gotRes.LSHDigests) != 2 {
		t.Errorf("legacy result decode lost fields: %+v", gotRes)
	}

	reqJSON, err := json.Marshal(OpenRequestMsg{Idx: 9})
	if err != nil {
		t.Fatal(err)
	}
	req, err := DecodeOpenRequest(reqJSON)
	if err != nil || req.Idx != 9 {
		t.Errorf("legacy open request = %+v, err = %v", req, err)
	}
	respJSON, err := json.Marshal(OpenResponseMsg{Idx: 9, Weights: tensor.Vector{1}.Encode()})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := decodeOpenResponse(respJSON)
	if err != nil || resp.Idx != 9 || resp.Err != "" {
		t.Fatalf("legacy open response = %+v, err = %v", resp, err)
	}
	if w, err := tensor.DecodeVector(resp.Weights); err != nil || !w.Equal(tensor.Vector{1}, 0) {
		t.Errorf("legacy open response weights = %v, err = %v", w, err)
	}
}

func TestBinaryResultRoundTrip(t *testing.T) {
	res := testResult(t)
	data, err := AppendResult(nil, res)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) > 0 && data[0] == '{' {
		t.Fatal("binary encoding starts with '{' — collides with the JSON sniff")
	}
	got, err := DecodeResult(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.WorkerID != res.WorkerID || got.Epoch != res.Epoch ||
		got.DataSize != res.DataSize || got.NumCheckpoints != res.NumCheckpoints {
		t.Errorf("metadata changed: %+v", got)
	}
	if !got.Update.Equal(res.Update, 0) {
		t.Errorf("update = %v, want %v", got.Update, res.Update)
	}
	if got.Commit.Root() != res.Commit.Root() {
		t.Error("commitment changed")
	}
	if len(got.LSHDigests) != 2 || got.LSHDigests[0][2] != 3 || got.LSHDigests[1][1] != 5 {
		t.Errorf("digests changed: %v", got.LSHDigests)
	}
}

func TestBinaryOpenMessagesRoundTrip(t *testing.T) {
	req, err := DecodeOpenRequest(AppendOpenRequest(nil, 17))
	if err != nil || req.Idx != 17 {
		t.Errorf("open request = %+v, err = %v", req, err)
	}

	weights := tensor.Vector{2.5, -7}
	resp, err := decodeOpenResponse(AppendOpenResponse(nil, 3, "", weights))
	if err != nil || resp.Idx != 3 || resp.Err != "" {
		t.Fatalf("open response = %+v, err = %v", resp, err)
	}
	if w, err := tensor.DecodeVector(resp.Weights); err != nil || !w.Equal(weights, 0) {
		t.Errorf("weights = %v, err = %v", w, err)
	}

	resp, err = decodeOpenResponse(AppendOpenResponse(nil, 5, "no such checkpoint", nil))
	if err != nil || resp.Idx != 5 || resp.Err != "no such checkpoint" || resp.Weights != nil {
		t.Errorf("error response = %+v, err = %v", resp, err)
	}
}

func TestBinaryHeaderErrors(t *testing.T) {
	net, _ := wireTask(t, 41)
	task, err := EncodeTask(wireParams(net.ParamVector()))
	if err != nil {
		t.Fatal(err)
	}
	for name, data := range map[string][]byte{
		"empty":       nil,
		"short":       {binMagic, binVersion},
		"bad magic":   append([]byte{0x99}, task[1:]...),
		"bad version": append([]byte{binMagic, 0x7F}, task[2:]...),
		"wrong kind":  AppendOpenRequest(nil, 1),
		"truncated":   task[:len(task)-3],
	} {
		if _, err := DecodeTask(data); err == nil {
			t.Errorf("%s: decode accepted malformed payload", name)
		}
	}
	// Corrupt the LSH presence byte (immediately before the trailing global
	// vector in a task without an LSH family).
	small, err := EncodeTask(wireParams(tensor.Vector{1, 2}))
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte{}, small...)
	bad[len(bad)-len(tensor.Vector{1, 2}.Encode())-1] = 0x55
	if _, err := DecodeTask(bad); err == nil {
		t.Error("decode accepted a corrupt LSH presence byte")
	}
	if _, err := DecodeTask(append([]byte{binMagic, 0x7F}, task[2:]...)); err == nil ||
		!strings.Contains(err.Error(), "version") {
		t.Errorf("future version error = %v, want a version message", err)
	}
	if _, err := decodeResultBinary(task); !errors.Is(err, errBinHeader) {
		t.Errorf("kind mismatch err = %v, want errBinHeader", err)
	}
}

// TestAppendTaskSteadyStateAllocFree guards the task encode hot path: with a
// warm reused buffer (the ManagerPort scratch over a serializing transport),
// re-encoding the same task must not allocate at all.
func TestAppendTaskSteadyStateAllocFree(t *testing.T) {
	net, _ := wireTask(t, 42)
	p := wireParams(net.ParamVector())
	fam, err := lsh.NewFamily(len(p.Global), lsh.Params{R: 0.5, K: 2, L: 2}, 8)
	if err != nil {
		t.Fatal(err)
	}
	p.LSH = fam
	buf, err := AppendTask(nil, p)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		var err error
		buf, err = AppendTask(buf[:0], p)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("AppendTask allocates %.1f times per call with a warm buffer, want 0", allocs)
	}
}

// TestAppendResultSteadyStateAllocFree guards the result encode hot path the
// same way (the WorkerServer reply scratch).
func TestAppendResultSteadyStateAllocFree(t *testing.T) {
	res := testResult(t)
	buf, err := AppendResult(nil, res)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		var err error
		buf, err = AppendResult(buf[:0], res)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("AppendResult allocates %.1f times per call with a warm buffer, want 0", allocs)
	}
}

// TestAppendOpenResponseSteadyStateAllocFree covers the bulkiest verification
// message: the opened checkpoint weights.
func TestAppendOpenResponseSteadyStateAllocFree(t *testing.T) {
	weights := tensor.NewRNG(9).NormalVector(4096, 0, 1)
	buf := AppendOpenResponse(nil, 0, "", weights)
	allocs := testing.AllocsPerRun(20, func() {
		buf = AppendOpenResponse(buf[:0], 3, "", weights)
	})
	if allocs != 0 {
		t.Errorf("AppendOpenResponse allocates %.1f times per call with a warm buffer, want 0", allocs)
	}
}
