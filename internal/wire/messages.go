// Package wire runs the RPoL protocol over a message fabric: it defines the
// wire encoding of every protocol message (task assignment, epoch result,
// checkpoint opening) and provides the two halves of a remote worker —
// a WorkerServer that hosts a worker behind a netsim endpoint, and a
// RemoteWorker proxy that satisfies rpol.Worker on the manager's side by
// exchanging messages. With these, the exact same rpol.Manager that drives
// in-process workers drives workers living behind the (metered) network,
// and every byte the protocol moves is accounted by the bus meter.
package wire

import (
	"encoding/json"
	"errors"
	"fmt"

	"rpol/internal/commitment"
	"rpol/internal/lsh"
	"rpol/internal/prf"
	"rpol/internal/rpol"
	"rpol/internal/tensor"
)

// Message kinds on the bus.
const (
	KindTask          = "task"
	KindResult        = "result"
	KindOpenRequest   = "open-request"
	KindOpenResponse  = "open-response"
	KindProofRequest  = "proof-request"
	KindProofResponse = "proof-response"
	KindError         = "error"
)

// ErrRemote wraps failures reported by the peer.
var ErrRemote = errors.New("wire: remote error")

// LSHMsg carries an LSH family by derivation inputs — the family is a pure
// function of (dim, params, seed), so only those travel.
type LSHMsg struct {
	Dim  int     `json:"dim"`
	R    float64 `json:"r"`
	K    int     `json:"k"`
	L    int     `json:"l"`
	Seed int64   `json:"seed"`
}

// TaskMsg is the manager's epoch assignment (step ① of Fig. 2).
type TaskMsg struct {
	Epoch           int     `json:"epoch"`
	Global          []byte  `json:"global"` // tensor.Encode of θ_t
	Optimizer       string  `json:"optimizer"`
	LR              float64 `json:"lr"`
	BatchSize       int     `json:"batchSize"`
	Steps           int     `json:"steps"`
	CheckpointEvery int     `json:"checkpointEvery"`
	Nonce           uint64  `json:"nonce"`
	LSH             *LSHMsg `json:"lsh,omitempty"`
	MerkleCommit    bool    `json:"merkleCommit,omitempty"`
}

// EncodeTask marshals the task parameters in the binary wire format.
func EncodeTask(p rpol.TaskParams) ([]byte, error) {
	return AppendTask(nil, p)
}

// DecodeTask reconstructs the task parameters, rebuilding the LSH family
// from its derivation inputs. Both the binary format and the legacy JSON
// format are accepted: a payload starting with '{' takes the JSON path.
func DecodeTask(data []byte) (rpol.TaskParams, error) {
	if len(data) > 0 && data[0] == '{' {
		return decodeTaskJSON(data)
	}
	return decodeTaskBinary(data)
}

// decodeTaskJSON is the legacy decode path for pre-binary peers.
func decodeTaskJSON(data []byte) (rpol.TaskParams, error) {
	var msg TaskMsg
	if err := json.Unmarshal(data, &msg); err != nil {
		return rpol.TaskParams{}, fmt.Errorf("wire task: %w", err)
	}
	global, err := tensor.DecodeVector(msg.Global)
	if err != nil {
		return rpol.TaskParams{}, fmt.Errorf("wire task global: %w", err)
	}
	p := rpol.TaskParams{
		Epoch:           msg.Epoch,
		Global:          global,
		Hyper:           rpol.Hyper{Optimizer: msg.Optimizer, LR: msg.LR, BatchSize: msg.BatchSize},
		Nonce:           prf.Nonce(msg.Nonce),
		Steps:           msg.Steps,
		CheckpointEvery: msg.CheckpointEvery,
		MerkleCommit:    msg.MerkleCommit,
	}
	if msg.LSH != nil {
		fam, err := lsh.NewFamily(msg.LSH.Dim, lsh.Params{R: msg.LSH.R, K: msg.LSH.K, L: msg.LSH.L}, msg.LSH.Seed)
		if err != nil {
			return rpol.TaskParams{}, fmt.Errorf("wire task lsh: %w", err)
		}
		p.LSH = fam
	}
	if err := p.Validate(); err != nil {
		return rpol.TaskParams{}, fmt.Errorf("wire task: %w", err)
	}
	return p, nil
}

// ResultMsg is the worker's epoch submission (step ③ of Fig. 2). Exactly one
// of Commit (legacy hash list) or Root (32-byte Merkle root) is present.
type ResultMsg struct {
	WorkerID       string   `json:"workerId"`
	Epoch          int      `json:"epoch"`
	Update         []byte   `json:"update"`
	DataSize       int      `json:"dataSize"`
	Commit         []byte   `json:"commit,omitempty"`
	Root           []byte   `json:"root,omitempty"`
	Digests        [][]byte `json:"digests,omitempty"`
	NumCheckpoints int      `json:"numCheckpoints"`
}

// EncodeResult marshals an epoch result in the binary wire format.
func EncodeResult(r *rpol.EpochResult) ([]byte, error) {
	return AppendResult(nil, r)
}

// DecodeResult unmarshals an epoch result. Both the binary format and the
// legacy JSON format are accepted: a payload starting with '{' takes the
// JSON path.
func DecodeResult(data []byte) (*rpol.EpochResult, error) {
	if len(data) > 0 && data[0] == '{' {
		return decodeResultJSON(data)
	}
	return decodeResultBinary(data)
}

// decodeResultJSON is the legacy decode path for pre-binary peers.
func decodeResultJSON(data []byte) (*rpol.EpochResult, error) {
	var msg ResultMsg
	if err := json.Unmarshal(data, &msg); err != nil {
		return nil, fmt.Errorf("wire result: %w", err)
	}
	update, err := tensor.DecodeVector(msg.Update)
	if err != nil {
		return nil, fmt.Errorf("wire result update: %w", err)
	}
	if err := checkWireCheckpoints(msg.NumCheckpoints); err != nil {
		return nil, err
	}
	out := &rpol.EpochResult{
		WorkerID:       msg.WorkerID,
		Epoch:          msg.Epoch,
		Update:         update,
		DataSize:       msg.DataSize,
		NumCheckpoints: msg.NumCheckpoints,
	}
	if len(msg.Root) > 0 {
		if len(msg.Commit) > 0 || len(msg.Digests) > 0 {
			return nil, errors.New("wire result: root form carries inline commitment fields")
		}
		if len(msg.Root) != commitment.HashSize {
			return nil, fmt.Errorf("wire result root: %d bytes, want %d", len(msg.Root), commitment.HashSize)
		}
		copy(out.MerkleRoot[:], msg.Root)
		out.HasRoot = true
		return out, nil
	}
	// The commitment and digest list must both match the declared checkpoint
	// count exactly (digests may also be absent entirely under v1).
	commit, err := commitment.DecodeHashListN(msg.Commit, msg.NumCheckpoints)
	if err != nil {
		return nil, fmt.Errorf("wire result commit: %w", err)
	}
	out.Commit = commit
	if len(msg.Digests) != 0 && len(msg.Digests) != msg.NumCheckpoints {
		return nil, fmt.Errorf("wire result: %d digests for %d checkpoints", len(msg.Digests), msg.NumCheckpoints)
	}
	for i, raw := range msg.Digests {
		d, err := lsh.DecodeDigest(raw)
		if err != nil {
			return nil, fmt.Errorf("wire result digest %d: %w", i, err)
		}
		out.LSHDigests = append(out.LSHDigests, d)
	}
	return out, nil
}

// OpenRequestMsg asks a worker to open checkpoint Idx.
type OpenRequestMsg struct {
	Idx int `json:"idx"`
}

// OpenResponseMsg returns the opened raw weights or an error.
type OpenResponseMsg struct {
	Idx     int    `json:"idx"`
	Weights []byte `json:"weights,omitempty"`
	Err     string `json:"err,omitempty"`
}

// decodeOpenRequestJSON is the legacy decode path for pre-binary peers.
func decodeOpenRequestJSON(data []byte) (OpenRequestMsg, error) {
	var req OpenRequestMsg
	if err := json.Unmarshal(data, &req); err != nil {
		return OpenRequestMsg{}, fmt.Errorf("wire open request: %w", err)
	}
	return req, nil
}

// decodeOpenResponseJSON is the legacy decode path for pre-binary peers.
func decodeOpenResponseJSON(data []byte) (decodedOpenResponse, error) {
	var resp OpenResponseMsg
	if err := json.Unmarshal(data, &resp); err != nil {
		return decodedOpenResponse{}, fmt.Errorf("wire open response: %w", err)
	}
	return decodedOpenResponse{Idx: resp.Idx, Err: resp.Err, Weights: resp.Weights}, nil
}

// ProofRequestMsg asks a worker for the Merkle inclusion proof of leaf Idx.
type ProofRequestMsg struct {
	Idx int `json:"idx"`
}

// ProofResponseMsg returns the inclusion proof — plus, under v2, the
// committed digest encoding it authenticates — or an error.
type ProofResponseMsg struct {
	Idx    int                    `json:"idx"`
	Proof  commitment.MerkleProof `json:"-"`
	Digest []byte                 `json:"digest,omitempty"`
	Err    string                 `json:"err,omitempty"`

	// ProofBytes is the JSON carrier for Proof (commitment.DecodeProof form).
	ProofBytes []byte `json:"proof,omitempty"`
}

// decodeProofRequestJSON is the JSON decode path for proof pulls.
func decodeProofRequestJSON(data []byte) (ProofRequestMsg, error) {
	var req ProofRequestMsg
	if err := json.Unmarshal(data, &req); err != nil {
		return ProofRequestMsg{}, fmt.Errorf("wire proof request: %w", err)
	}
	return req, nil
}

// decodeProofResponseJSON is the JSON decode path for proof-pull responses.
func decodeProofResponseJSON(data []byte) (ProofResponseMsg, error) {
	var resp ProofResponseMsg
	if err := json.Unmarshal(data, &resp); err != nil {
		return ProofResponseMsg{}, fmt.Errorf("wire proof response: %w", err)
	}
	if resp.Err != "" {
		return resp, nil
	}
	proof, err := commitment.DecodeProof(resp.ProofBytes)
	if err != nil {
		return ProofResponseMsg{}, fmt.Errorf("wire proof response: %w", err)
	}
	resp.Proof = proof
	resp.ProofBytes = nil
	return resp, nil
}
