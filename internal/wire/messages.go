// Package wire runs the RPoL protocol over a message fabric: it defines the
// wire encoding of every protocol message (task assignment, epoch result,
// checkpoint opening) and provides the two halves of a remote worker —
// a WorkerServer that hosts a worker behind a netsim endpoint, and a
// RemoteWorker proxy that satisfies rpol.Worker on the manager's side by
// exchanging messages. With these, the exact same rpol.Manager that drives
// in-process workers drives workers living behind the (metered) network,
// and every byte the protocol moves is accounted by the bus meter.
package wire

import (
	"encoding/json"
	"errors"
	"fmt"

	"rpol/internal/commitment"
	"rpol/internal/lsh"
	"rpol/internal/prf"
	"rpol/internal/rpol"
	"rpol/internal/tensor"
)

// Message kinds on the bus.
const (
	KindTask         = "task"
	KindResult       = "result"
	KindOpenRequest  = "open-request"
	KindOpenResponse = "open-response"
	KindError        = "error"
)

// ErrRemote wraps failures reported by the peer.
var ErrRemote = errors.New("wire: remote error")

// LSHMsg carries an LSH family by derivation inputs — the family is a pure
// function of (dim, params, seed), so only those travel.
type LSHMsg struct {
	Dim  int     `json:"dim"`
	R    float64 `json:"r"`
	K    int     `json:"k"`
	L    int     `json:"l"`
	Seed int64   `json:"seed"`
}

// TaskMsg is the manager's epoch assignment (step ① of Fig. 2).
type TaskMsg struct {
	Epoch           int     `json:"epoch"`
	Global          []byte  `json:"global"` // tensor.Encode of θ_t
	Optimizer       string  `json:"optimizer"`
	LR              float64 `json:"lr"`
	BatchSize       int     `json:"batchSize"`
	Steps           int     `json:"steps"`
	CheckpointEvery int     `json:"checkpointEvery"`
	Nonce           uint64  `json:"nonce"`
	LSH             *LSHMsg `json:"lsh,omitempty"`
}

// EncodeTask marshals the task parameters.
func EncodeTask(p rpol.TaskParams) ([]byte, error) {
	msg := TaskMsg{
		Epoch:           p.Epoch,
		Global:          p.Global.Encode(),
		Optimizer:       p.Hyper.Optimizer,
		LR:              p.Hyper.LR,
		BatchSize:       p.Hyper.BatchSize,
		Steps:           p.Steps,
		CheckpointEvery: p.CheckpointEvery,
		Nonce:           uint64(p.Nonce),
	}
	if p.LSH != nil {
		params := p.LSH.Params()
		msg.LSH = &LSHMsg{
			Dim: p.LSH.Dim(), R: params.R, K: params.K, L: params.L, Seed: p.LSH.Seed(),
		}
	}
	return json.Marshal(msg)
}

// DecodeTask reconstructs the task parameters, rebuilding the LSH family
// from its derivation inputs.
func DecodeTask(data []byte) (rpol.TaskParams, error) {
	var msg TaskMsg
	if err := json.Unmarshal(data, &msg); err != nil {
		return rpol.TaskParams{}, fmt.Errorf("wire task: %w", err)
	}
	global, err := tensor.DecodeVector(msg.Global)
	if err != nil {
		return rpol.TaskParams{}, fmt.Errorf("wire task global: %w", err)
	}
	p := rpol.TaskParams{
		Epoch:           msg.Epoch,
		Global:          global,
		Hyper:           rpol.Hyper{Optimizer: msg.Optimizer, LR: msg.LR, BatchSize: msg.BatchSize},
		Nonce:           prf.Nonce(msg.Nonce),
		Steps:           msg.Steps,
		CheckpointEvery: msg.CheckpointEvery,
	}
	if msg.LSH != nil {
		fam, err := lsh.NewFamily(msg.LSH.Dim, lsh.Params{R: msg.LSH.R, K: msg.LSH.K, L: msg.LSH.L}, msg.LSH.Seed)
		if err != nil {
			return rpol.TaskParams{}, fmt.Errorf("wire task lsh: %w", err)
		}
		p.LSH = fam
	}
	if err := p.Validate(); err != nil {
		return rpol.TaskParams{}, fmt.Errorf("wire task: %w", err)
	}
	return p, nil
}

// ResultMsg is the worker's epoch submission (step ③ of Fig. 2).
type ResultMsg struct {
	WorkerID       string   `json:"workerId"`
	Epoch          int      `json:"epoch"`
	Update         []byte   `json:"update"`
	DataSize       int      `json:"dataSize"`
	Commit         []byte   `json:"commit"`
	Digests        [][]byte `json:"digests,omitempty"`
	NumCheckpoints int      `json:"numCheckpoints"`
}

// EncodeResult marshals an epoch result.
func EncodeResult(r *rpol.EpochResult) ([]byte, error) {
	if r == nil || r.Commit == nil {
		return nil, errors.New("wire: result needs a commitment")
	}
	msg := ResultMsg{
		WorkerID:       r.WorkerID,
		Epoch:          r.Epoch,
		Update:         r.Update.Encode(),
		DataSize:       r.DataSize,
		Commit:         r.Commit.Encode(),
		NumCheckpoints: r.NumCheckpoints,
	}
	for _, d := range r.LSHDigests {
		msg.Digests = append(msg.Digests, d.Encode())
	}
	return json.Marshal(msg)
}

// DecodeResult unmarshals an epoch result.
func DecodeResult(data []byte) (*rpol.EpochResult, error) {
	var msg ResultMsg
	if err := json.Unmarshal(data, &msg); err != nil {
		return nil, fmt.Errorf("wire result: %w", err)
	}
	update, err := tensor.DecodeVector(msg.Update)
	if err != nil {
		return nil, fmt.Errorf("wire result update: %w", err)
	}
	commit, err := commitment.DecodeHashList(msg.Commit)
	if err != nil {
		return nil, fmt.Errorf("wire result commit: %w", err)
	}
	out := &rpol.EpochResult{
		WorkerID:       msg.WorkerID,
		Epoch:          msg.Epoch,
		Update:         update,
		DataSize:       msg.DataSize,
		Commit:         commit,
		NumCheckpoints: msg.NumCheckpoints,
	}
	for i, raw := range msg.Digests {
		d, err := lsh.DecodeDigest(raw)
		if err != nil {
			return nil, fmt.Errorf("wire result digest %d: %w", i, err)
		}
		out.LSHDigests = append(out.LSHDigests, d)
	}
	return out, nil
}

// OpenRequestMsg asks a worker to open checkpoint Idx.
type OpenRequestMsg struct {
	Idx int `json:"idx"`
}

// OpenResponseMsg returns the opened raw weights or an error.
type OpenResponseMsg struct {
	Idx     int    `json:"idx"`
	Weights []byte `json:"weights,omitempty"`
	Err     string `json:"err,omitempty"`
}
