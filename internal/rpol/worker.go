package rpol

import (
	"fmt"

	"rpol/internal/checkpoint"
	"rpol/internal/dataset"
	"rpol/internal/gpu"
	"rpol/internal/nn"
	"rpol/internal/obs"
	"rpol/internal/tensor"
)

// HonestWorker is the protocol-abiding pool worker: it trains its shard with
// the deterministic batch schedule, checkpoints faithfully, commits before
// sampling decisions are revealed, and opens exactly what it committed.
type HonestWorker struct {
	id      string
	profile gpu.Profile
	trainer *Trainer
	store   checkpoint.Store
	obs     *obs.Observer

	lastTrace  *Trace
	lastResult *EpochResult
}

var _ Worker = (*HonestWorker)(nil)

// NewHonestWorker builds a worker executing on the given GPU profile.
// runSeed individualizes this worker's hardware nondeterminism.
func NewHonestWorker(id string, profile gpu.Profile, runSeed int64, net *nn.Network, shard *dataset.Dataset) (*HonestWorker, error) {
	device, err := gpu.NewDevice(profile, runSeed)
	if err != nil {
		return nil, fmt.Errorf("rpol worker %s: %w", id, err)
	}
	if shard == nil || shard.Len() == 0 {
		return nil, fmt.Errorf("rpol worker %s: empty shard", id)
	}
	return &HonestWorker{
		id:      id,
		profile: profile,
		trainer: &Trainer{Net: net, Shard: shard, Device: device},
	}, nil
}

// ID returns the worker identifier.
func (w *HonestWorker) ID() string { return w.id }

// GPUProfile returns the registered hardware profile.
func (w *HonestWorker) GPUProfile() gpu.Profile { return w.profile }

// ShardSize returns |D_w|.
func (w *HonestWorker) ShardSize() int { return w.trainer.Shard.Len() }

// SetStore directs the worker to persist its checkpoints in st (e.g. a
// disk-backed checkpoint.DiskStore) instead of process memory. Proof
// openings then round-trip through the store's serialization — exactly what
// a real worker whose checkpoints exceed RAM does.
func (w *HonestWorker) SetStore(st checkpoint.Store) { w.store = st }

// SetObserver routes the worker's training metrics and spans through o.
func (w *HonestWorker) SetObserver(o *obs.Observer) {
	w.obs = o
	w.trainer.Steps = o.Counter("rpol_train_steps_total")
}

// StorageBytes reports the bytes the worker's current proofs occupy.
func (w *HonestWorker) StorageBytes() int64 {
	if w.store != nil {
		return w.store.Bytes()
	}
	if w.lastTrace == nil {
		return 0
	}
	var total int64
	for _, c := range w.lastTrace.Checkpoints {
		total += int64(tensor.EncodedSize(len(c)))
	}
	return total
}

// RunEpoch trains the sub-task and submits the update with its commitment.
func (w *HonestWorker) RunEpoch(p TaskParams) (*EpochResult, error) {
	trainSpan := w.obs.Start(p.Trace, "worker.train",
		obs.String("worker", w.id), obs.Int("steps", int64(p.Steps)))
	trace, err := w.trainer.RunEpoch(p)
	if err != nil {
		trainSpan.End(obs.String("error", err.Error()))
		return nil, fmt.Errorf("rpol worker %s: %w", w.id, err)
	}
	trainSpan.End(obs.Int("checkpoints", int64(len(trace.Checkpoints))))
	w.obs.Counter("rpol_checkpoints_total").Add(int64(len(trace.Checkpoints)))
	update, err := BindFinalCheckpoint(trace, p.Global)
	if err != nil {
		return nil, fmt.Errorf("rpol worker %s: %w", w.id, err)
	}
	commitSpan := w.obs.Start(p.Trace, "worker.commit", obs.String("worker", w.id))
	commit, digests, err := BuildCommitmentPool(poolFor(p.Workers), trace.Checkpoints, p.LSH)
	commitSpan.End()
	if err != nil {
		return nil, fmt.Errorf("rpol worker %s: %w", w.id, err)
	}
	w.obs.Counter("rpol_commitments_total").Inc()
	if commit != nil {
		w.obs.Counter("rpol_commit_bytes_total").Add(int64(commit.Size()))
	}
	if len(digests) > 0 {
		w.obs.Counter("rpol_lsh_digests_total").Add(int64(len(digests)))
	}
	if w.store != nil {
		if err := w.store.Clear(); err != nil {
			return nil, fmt.Errorf("rpol worker %s: %w", w.id, err)
		}
		for i, c := range trace.Checkpoints {
			if err := w.store.Put(i, c); err != nil {
				return nil, fmt.Errorf("rpol worker %s: %w", w.id, err)
			}
		}
	}
	w.lastTrace = trace
	w.lastResult = &EpochResult{
		WorkerID:       w.id,
		Epoch:          p.Epoch,
		Update:         update,
		DataSize:       w.trainer.Shard.Len(),
		Commit:         commit,
		LSHDigests:     digests,
		NumCheckpoints: len(trace.Checkpoints),
	}
	return w.lastResult, nil
}

// OpenCheckpoint serves the raw weights of checkpoint idx from the last
// trained epoch, reading through the configured store when one is set.
func (w *HonestWorker) OpenCheckpoint(idx int) (tensor.Vector, error) {
	if w.lastTrace == nil {
		return nil, fmt.Errorf("rpol worker %s: no epoch trained yet", w.id)
	}
	if idx < 0 || idx >= len(w.lastTrace.Checkpoints) {
		return nil, fmt.Errorf("rpol worker %s: checkpoint %d of %d", w.id, idx, len(w.lastTrace.Checkpoints))
	}
	if w.store != nil {
		weights, err := w.store.Get(idx)
		if err != nil {
			return nil, fmt.Errorf("rpol worker %s: %w", w.id, err)
		}
		return weights, nil
	}
	return w.lastTrace.Checkpoints[idx], nil
}

// LastTrace exposes the worker's private trace for experiments that measure
// reproduction errors directly.
func (w *HonestWorker) LastTrace() *Trace { return w.lastTrace }
