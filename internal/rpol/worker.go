package rpol

import (
	"fmt"

	"rpol/internal/checkpoint"
	"rpol/internal/commitment"
	"rpol/internal/dataset"
	"rpol/internal/fsio"
	"rpol/internal/gpu"
	"rpol/internal/journal"
	"rpol/internal/lsh"
	"rpol/internal/nn"
	"rpol/internal/obs"
	"rpol/internal/tensor"
)

// HonestWorker is the protocol-abiding pool worker: it trains its shard with
// the deterministic batch schedule, checkpoints faithfully, commits before
// sampling decisions are revealed, and opens exactly what it committed.
type HonestWorker struct {
	id      string
	profile gpu.Profile
	trainer *Trainer
	store   checkpoint.Store
	obs     *obs.Observer
	journal *journal.Journal

	// One-shot resume state installed by PrepareResume: the epoch whose
	// durable checkpoint prefix may be adopted, and the journaled digest of
	// each stored snapshot. -1 means no resume pending.
	resumeEpoch   int
	resumeDigests map[int]uint64

	lastTrace  *Trace
	lastResult *EpochResult
	// lastCommit retains the last epoch's commitment so OpenProof can serve
	// the verifier's on-demand Merkle pulls.
	lastCommit *EpochCommitment
	// stream is the in-flight streaming Merkle state while a MerkleCommit
	// epoch trains: runTraining wires it into the trainer's Sink so each
	// checkpoint's leaf is pushed as it is produced.
	stream *streamCommit

	// encBuf is the reused checkpoint-digest encode scratch; RunEpoch (and
	// the resume path before it) runs sequentially per worker, so one
	// buffer serves every durable-checkpoint checksum.
	encBuf []byte
}

var _ Worker = (*HonestWorker)(nil)
var _ EpochFastForwarder = (*HonestWorker)(nil)

// NewHonestWorker builds a worker executing on the given GPU profile.
// runSeed individualizes this worker's hardware nondeterminism.
func NewHonestWorker(id string, profile gpu.Profile, runSeed int64, net *nn.Network, shard *dataset.Dataset) (*HonestWorker, error) {
	device, err := gpu.NewDevice(profile, runSeed)
	if err != nil {
		return nil, fmt.Errorf("rpol worker %s: %w", id, err)
	}
	if shard == nil || shard.Len() == 0 {
		return nil, fmt.Errorf("rpol worker %s: empty shard", id)
	}
	return &HonestWorker{
		id:          id,
		profile:     profile,
		trainer:     &Trainer{Net: net, Shard: shard, Device: device},
		resumeEpoch: -1,
	}, nil
}

// ID returns the worker identifier.
func (w *HonestWorker) ID() string { return w.id }

// GPUProfile returns the registered hardware profile.
func (w *HonestWorker) GPUProfile() gpu.Profile { return w.profile }

// ShardSize returns |D_w|.
func (w *HonestWorker) ShardSize() int { return w.trainer.Shard.Len() }

// SetStore directs the worker to persist its checkpoints in st (e.g. a
// disk-backed checkpoint.DiskStore) instead of process memory. Proof
// openings then round-trip through the store's serialization — exactly what
// a real worker whose checkpoints exceed RAM does.
func (w *HonestWorker) SetStore(st checkpoint.Store) { w.store = st }

// SetJournal directs the worker to log every durably stored checkpoint to
// j. Requires a store (SetStore): the journal records promises about files
// on disk. With a journal set, checkpoints stream to the store as training
// produces them (instead of in one batch after the epoch), so a crash loses
// at most the interval in flight.
func (w *HonestWorker) SetJournal(j *journal.Journal) { w.journal = j }

// PrepareResume arms the worker to adopt the durable checkpoint prefix of
// the given epoch on its next RunEpoch call. digests maps checkpoint index
// to the journaled fsio.Checksum of its stored bytes; a snapshot is adopted
// only while its on-disk bytes still hash to the journaled digest. One-shot:
// the armed state clears on the next RunEpoch whether or not it applies.
func (w *HonestWorker) PrepareResume(epoch int, digests map[int]uint64) {
	w.resumeEpoch = epoch
	w.resumeDigests = digests
}

// FastForwardEpochs advances the worker's device noise stream past epochs
// it trained before a crash (each epoch draws stepsPerEpoch perturbations
// per parameter tensor).
func (w *HonestWorker) FastForwardEpochs(epochs, stepsPerEpoch, checkpointEvery int) {
	_ = checkpointEvery // honest noise is per-step, not per-checkpoint
	if epochs > 0 && stepsPerEpoch > 0 {
		w.trainer.FastForward(epochs * stepsPerEpoch)
	}
}

// SetObserver routes the worker's training metrics and spans through o.
func (w *HonestWorker) SetObserver(o *obs.Observer) {
	w.obs = o
	w.trainer.Steps = o.Counter("rpol_train_steps_total")
}

// StorageBytes reports the bytes the worker's current proofs occupy.
func (w *HonestWorker) StorageBytes() int64 {
	if w.store != nil {
		return w.store.Bytes()
	}
	if w.lastTrace == nil {
		return 0
	}
	var total int64
	for _, c := range w.lastTrace.Checkpoints {
		total += int64(tensor.EncodedSize(len(c)))
	}
	return total
}

// RunEpoch trains the sub-task and submits the update with its commitment.
func (w *HonestWorker) RunEpoch(p TaskParams) (*EpochResult, error) {
	trainSpan := w.obs.Start(p.Trace, "worker.train",
		obs.String("worker", w.id), obs.Int("steps", int64(p.Steps)))
	trace, err := w.runTraining(p)
	if err != nil {
		trainSpan.End(obs.String("error", err.Error()))
		return nil, fmt.Errorf("rpol worker %s: %w", w.id, err)
	}
	trainSpan.End(obs.Int("checkpoints", int64(len(trace.Checkpoints))))
	w.obs.Counter("rpol_checkpoints_total").Add(int64(len(trace.Checkpoints)))
	update, err := BindFinalCheckpoint(trace, p.Global)
	if err != nil {
		return nil, fmt.Errorf("rpol worker %s: %w", w.id, err)
	}
	if w.journal != nil && w.store != nil {
		// BindFinalCheckpoint rewrote the final snapshot; re-persist and
		// re-journal it (the later record's digest wins on replay).
		last := len(trace.Checkpoints) - 1
		if err := w.persistCheckpoint(p.Epoch, last, trace.Steps[last], trace.Checkpoints[last]); err != nil {
			return nil, fmt.Errorf("rpol worker %s: %w", w.id, err)
		}
	}
	commitSpan := w.obs.Start(p.Trace, "worker.commit", obs.String("worker", w.id))
	ec, err := w.finishCommitment(p, trace)
	commitSpan.End()
	if err != nil {
		return nil, fmt.Errorf("rpol worker %s: %w", w.id, err)
	}
	w.obs.Counter("rpol_commitments_total").Inc()
	if ec.HasRoot {
		w.obs.Counter("rpol_commit_bytes_total").Add(commitment.HashSize)
	} else if ec.Commit != nil {
		w.obs.Counter("rpol_commit_bytes_total").Add(int64(ec.Commit.Size()))
	}
	if len(ec.Digests) > 0 {
		w.obs.Counter("rpol_lsh_digests_total").Add(int64(len(ec.Digests)))
	}
	if w.store != nil && w.journal == nil {
		// Historical batch persistence; the journaled path streamed every
		// checkpoint to the store during training instead.
		if err := w.store.Clear(); err != nil {
			return nil, fmt.Errorf("rpol worker %s: %w", w.id, err)
		}
		for i, c := range trace.Checkpoints {
			if err := w.store.Put(i, c); err != nil {
				return nil, fmt.Errorf("rpol worker %s: %w", w.id, err)
			}
		}
	}
	w.lastTrace = trace
	w.lastCommit = ec
	result := &EpochResult{
		WorkerID:       w.id,
		Epoch:          p.Epoch,
		Update:         update,
		DataSize:       w.trainer.Shard.Len(),
		NumCheckpoints: len(trace.Checkpoints),
	}
	ec.Apply(result)
	w.lastResult = result
	return w.lastResult, nil
}

// finishCommitment produces the epoch commitment after training: under
// MerkleCommit it completes the streamed incremental state by pushing the
// bound final checkpoint's leaf (every earlier leaf was pushed as training
// produced it); otherwise it builds the legacy hash list over the full trace.
func (w *HonestWorker) finishCommitment(p TaskParams, trace *Trace) (*EpochCommitment, error) {
	if !p.MerkleCommit {
		return CommitTrace(poolFor(p.Workers), trace.Checkpoints, p.LSH, false)
	}
	st := w.stream
	w.stream = nil
	if st == nil {
		// Defensive: a merkle epoch that somehow trained without streaming
		// state commits from the full trace; the root is identical.
		return CommitTrace(poolFor(p.Workers), trace.Checkpoints, p.LSH, true)
	}
	last := len(trace.Checkpoints) - 1
	if err := st.push(last, trace.Checkpoints[last]); err != nil {
		return nil, err
	}
	return st.commitment()
}

// runTraining executes the epoch's training through whichever persistence
// mode is configured: plain (in-memory trace), or journaled streaming with
// optional crash-resume from the durable checkpoint prefix.
func (w *HonestWorker) runTraining(p TaskParams) (*Trace, error) {
	if p.MerkleCommit {
		w.stream = newStreamCommit(p)
	} else {
		w.stream = nil
	}
	if w.journal == nil || w.store == nil {
		if w.stream == nil {
			return w.trainer.RunEpoch(p)
		}
		w.trainer.Sink = w.stream.sink(nil)
		defer func() { w.trainer.Sink = nil }()
		return w.trainer.RunEpoch(p)
	}
	prefix, err := w.loadResumePrefix(p)
	if err != nil {
		return nil, err
	}
	if prefix == nil {
		// Fresh epoch: drop the previous epoch's snapshots before streaming.
		if err := w.store.Clear(); err != nil {
			return nil, err
		}
	} else {
		w.obs.Counter("rpol_resumed_checkpoints_total").Add(int64(len(prefix.Checkpoints)))
		if w.stream != nil {
			// Prefix adoption bypasses the trainer's Sink; rebuild the
			// incremental Merkle state over the adopted snapshots so the
			// streamed root covers them too. The prefix never includes the
			// final checkpoint, whose leaf is pushed after binding.
			for i, cp := range prefix.Checkpoints {
				if err := w.stream.push(i, cp); err != nil {
					return nil, err
				}
			}
		}
	}
	persist := func(idx, step int, cp tensor.Vector) error {
		return w.persistCheckpoint(p.Epoch, idx, step, cp)
	}
	if w.stream != nil {
		w.trainer.Sink = w.stream.sink(persist)
	} else {
		w.trainer.Sink = persist
	}
	defer func() { w.trainer.Sink = nil }()
	return w.trainer.ResumeEpoch(p, prefix)
}

// persistCheckpoint makes one snapshot durable: the store write lands first
// (atomic), then the journal records its digest. A crash between the two
// leaves an unrecorded file, which resume simply retrains over.
func (w *HonestWorker) persistCheckpoint(epoch, idx, step int, cp tensor.Vector) error {
	if err := w.store.Put(idx, cp); err != nil {
		return err
	}
	w.encBuf = cp.AppendEncode(w.encBuf[:0])
	return w.journal.LogCheckpoint(journal.Checkpoint{
		Epoch:  epoch,
		Worker: w.id,
		Index:  idx,
		Step:   step,
		Digest: fsio.Checksum(w.encBuf),
	})
}

// loadResumePrefix adopts the longest intact prefix of the armed epoch's
// durable checkpoints: indices must be journaled, their stored bytes must
// hash to the journaled digest, and checkpoint 0 must be bit-identical to
// the distributed global model (a stale store from an earlier run fails
// one of these). The final checkpoint is never adopted — BindFinalCheckpoint
// rewrites it after training, so its journaled digest does not match the
// trained weights the last interval must resume from; retraining the last
// interval is always safe. The device noise stream is fast-forwarded past
// the adopted steps so the retrained suffix draws the exact noise an
// uninterrupted run would.
func (w *HonestWorker) loadResumePrefix(p TaskParams) (*Trace, error) {
	if w.resumeEpoch != p.Epoch || len(w.resumeDigests) == 0 {
		w.resumeEpoch = -1
		w.resumeDigests = nil
		return nil, nil
	}
	digests := w.resumeDigests
	w.resumeEpoch = -1
	w.resumeDigests = nil

	prefix := &Trace{}
	final := p.NumCheckpoints() - 1
	for idx := 0; idx < final; idx++ {
		want, ok := digests[idx]
		if !ok {
			break
		}
		cp, err := w.store.Get(idx)
		if err != nil {
			// Missing or corrupt snapshot: fall back to the prefix before it.
			w.obs.Counter("rpol_resume_corrupt_checkpoints_total").Inc()
			w.obs.Publish(obs.StreamEvent{
				Kind:   obs.EventCheckpointCorrupt,
				Worker: w.id,
				Epoch:  int64(p.Epoch),
				Detail: fmt.Sprintf("checkpoint %d unreadable: %v", idx, err),
			})
			break
		}
		w.encBuf = cp.AppendEncode(w.encBuf[:0])
		if fsio.Checksum(w.encBuf) != want {
			w.obs.Counter("rpol_resume_corrupt_checkpoints_total").Inc()
			w.obs.Publish(obs.StreamEvent{
				Kind:   obs.EventCheckpointCorrupt,
				Worker: w.id,
				Epoch:  int64(p.Epoch),
				Detail: fmt.Sprintf("checkpoint %d digest mismatch", idx),
			})
			break
		}
		if idx == 0 && !cp.Equal(p.Global, 0) {
			return nil, nil // stale store from a different epoch
		}
		step := idx * p.CheckpointEvery
		if step > p.Steps {
			step = p.Steps
		}
		prefix.Checkpoints = append(prefix.Checkpoints, cp)
		prefix.Steps = append(prefix.Steps, step)
	}
	if len(prefix.Checkpoints) == 0 {
		return nil, nil
	}
	w.trainer.FastForward(prefix.Steps[len(prefix.Steps)-1])
	return prefix, nil
}

// OpenCheckpoint serves the raw weights of checkpoint idx from the last
// trained epoch, reading through the configured store when one is set.
func (w *HonestWorker) OpenCheckpoint(idx int) (tensor.Vector, error) {
	if w.lastTrace == nil {
		return nil, fmt.Errorf("rpol worker %s: no epoch trained yet", w.id)
	}
	if idx < 0 || idx >= len(w.lastTrace.Checkpoints) {
		return nil, fmt.Errorf("rpol worker %s: checkpoint %d of %d", w.id, idx, len(w.lastTrace.Checkpoints))
	}
	if w.store != nil {
		weights, err := w.store.Get(idx)
		if err != nil {
			return nil, fmt.Errorf("rpol worker %s: %w", w.id, err)
		}
		return weights, nil
	}
	return w.lastTrace.Checkpoints[idx], nil
}

// OpenProof serves the Merkle inclusion proof for leaf idx of the last
// committed epoch.
func (w *HonestWorker) OpenProof(idx int) (LeafProof, error) {
	if w.lastCommit == nil {
		return LeafProof{}, fmt.Errorf("rpol worker %s: no epoch committed yet", w.id)
	}
	return w.lastCommit.OpenProof(idx)
}

// LastTrace exposes the worker's private trace for experiments that measure
// reproduction errors directly.
func (w *HonestWorker) LastTrace() *Trace { return w.lastTrace }

// streamCommit accumulates the streaming Merkle commitment while an epoch
// trains: each checkpoint's leaf — the raw weight encoding under v1, the LSH
// digest encoding under v2 — is pushed into an IncrementalMerkle as the
// trainer emits it, except the final checkpoint, which BindFinalCheckpoint
// rewrites after training and whose leaf is therefore pushed only then.
type streamCommit struct {
	fam     *lsh.Family
	final   int // index of the checkpoint excluded from streaming
	inc     commitment.IncrementalMerkle
	digests []lsh.Digest
	buf     []byte // reused leaf-encode scratch
}

// newStreamCommit starts the streaming state for one MerkleCommit epoch.
func newStreamCommit(p TaskParams) *streamCommit {
	return &streamCommit{fam: p.LSH, final: p.NumCheckpoints() - 1}
}

// sink adapts the stream into a Trainer.Sink, chaining an optional
// persistence sink (durability first, then the leaf push). The final
// checkpoint is persisted but not pushed.
func (s *streamCommit) sink(persist func(idx, step int, cp tensor.Vector) error) func(idx, step int, cp tensor.Vector) error {
	return func(idx, step int, cp tensor.Vector) error {
		if persist != nil {
			if err := persist(idx, step, cp); err != nil {
				return err
			}
		}
		if idx >= s.final {
			return nil
		}
		return s.push(idx, cp)
	}
}

// push appends checkpoint idx's leaf to the incremental tree. Leaves must
// arrive in order — a gap means the trainer and the commitment disagree
// about the epoch's shape, which is a bug, not a recoverable condition.
func (s *streamCommit) push(idx int, cp tensor.Vector) error {
	if idx != s.inc.Len() {
		return fmt.Errorf("rpol: streaming commitment expects leaf %d, got %d", s.inc.Len(), idx)
	}
	if s.fam == nil {
		s.buf = cp.AppendEncode(s.buf[:0])
		s.inc.Push(commitment.HashLeaf(s.buf))
		return nil
	}
	d, err := s.fam.Hash(cp)
	if err != nil {
		return fmt.Errorf("rpol streaming commitment leaf %d: %w", idx, err)
	}
	s.digests = append(s.digests, d)
	s.buf = d.AppendEncode(s.buf[:0])
	s.inc.Push(commitment.HashLeaf(s.buf))
	return nil
}

// commitment finalizes the stream into a servable EpochCommitment,
// materializing the proof tree eagerly so concurrent OpenProof calls share a
// read-only structure.
func (s *streamCommit) commitment() (*EpochCommitment, error) {
	root, err := s.inc.Root()
	if err != nil {
		return nil, err
	}
	tree, err := s.inc.Tree()
	if err != nil {
		return nil, err
	}
	return &EpochCommitment{Root: root, HasRoot: true, Digests: s.digests, tree: tree}, nil
}
