package rpol

import (
	"testing"

	"rpol/internal/dataset"
	"rpol/internal/gpu"
	"rpol/internal/lsh"
	"rpol/internal/tensor"
)

// buildHonestSetup creates a worker, runs one epoch, and returns everything
// a verifier needs. scheme decides whether an LSH family is calibrated in.
func buildHonestSetup(t *testing.T, scheme Scheme) (*HonestWorker, *EpochResult, TaskParams, *Verifier, *dataset.Dataset) {
	t.Helper()
	netW, ds := testTask(t, 10)
	worker, err := NewHonestWorker("w1", gpu.GA10, 101, netW, ds)
	if err != nil {
		t.Fatal(err)
	}
	p := testParams(netW.ParamVector())

	var fam *lsh.Family
	beta := 0.05 // generous default; calibrated tests compute their own
	if scheme == SchemeV2 {
		// Calibrate α/β from two probe runs on the top profiles.
		netC, _ := testTask(t, 10)
		cal := &Calibrator{Net: netC, Shard: ds, XFactor: 5, KLsh: 16}
		calOut, f, err := cal.Calibrate(p, gpu.G3090, gpu.GA10, [2]int64{5, 6}, 7)
		if err != nil {
			t.Fatal(err)
		}
		fam = f
		beta = calOut.Beta
		p.LSH = fam
	}

	result, err := worker.RunEpoch(p)
	if err != nil {
		t.Fatal(err)
	}

	netV, _ := testTask(t, 10)
	device, err := gpu.NewDevice(gpu.G3090, 999)
	if err != nil {
		t.Fatal(err)
	}
	verifier := &Verifier{
		Scheme:  scheme,
		Net:     netV,
		Device:  device,
		Beta:    beta,
		LSH:     fam,
		Samples: 3,
		Sampler: tensor.NewRNG(42),
	}
	return worker, result, p, verifier, ds
}

func TestVerifyHonestWorkerV1(t *testing.T) {
	worker, result, p, verifier, ds := buildHonestSetup(t, SchemeV1)
	out, err := verifier.VerifySubmission(worker, ds, result, p)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Accepted {
		t.Fatalf("honest worker rejected under v1: %s", out.FailReason)
	}
	if len(out.SampledCheckpoints) != 3 {
		t.Errorf("sampled = %v", out.SampledCheckpoints)
	}
	// v1 transfers the commitment plus input and output weights per sample.
	perSample := int64(2 * tensor.EncodedSize(len(p.Global)))
	want := int64(result.Commit.Size()) + perSample*int64(len(out.SampledCheckpoints))
	if out.CommBytes != want {
		t.Errorf("CommBytes = %d, want %d", out.CommBytes, want)
	}
	if out.CommitBytes != int64(result.Commit.Size()) {
		t.Errorf("CommitBytes = %d, want %d", out.CommitBytes, result.Commit.Size())
	}
	if out.ReexecSteps == 0 {
		t.Error("verification must have re-executed steps")
	}
}

func TestVerifyHonestWorkerV2(t *testing.T) {
	worker, result, p, verifier, ds := buildHonestSetup(t, SchemeV2)
	out, err := verifier.VerifySubmission(worker, ds, result, p)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Accepted {
		t.Fatalf("honest worker rejected under v2: %s", out.FailReason)
	}
	// v2 transfers roughly half of v1: input weights + digest per sample
	// (double-checks add occasional raw transfers).
	weightsSize := int64(tensor.EncodedSize(len(p.Global)))
	maxNoDoubleCheck := int64(len(out.SampledCheckpoints)) * (weightsSize + 1024)
	if out.DoubleChecks == 0 && out.CommBytes > maxNoDoubleCheck {
		t.Errorf("CommBytes = %d exceeds v2 budget %d", out.CommBytes, maxNoDoubleCheck)
	}
}

func TestVerifyBaselineAcceptsAnything(t *testing.T) {
	verifier := &Verifier{Scheme: SchemeBaseline}
	out, err := verifier.VerifySubmission(nil, nil, &EpochResult{WorkerID: "x"}, TaskParams{})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Accepted {
		t.Error("baseline must accept without verification")
	}
	if out.CommBytes != 0 || out.ReexecSteps != 0 {
		t.Error("baseline must not incur verification costs")
	}
}

// forgingOpener wraps a worker but substitutes forged weights for one
// checkpoint.
type forgingOpener struct {
	inner  ProofOpener
	target int
	forged tensor.Vector
}

func (f *forgingOpener) OpenCheckpoint(idx int) (tensor.Vector, error) {
	if idx == f.target {
		return f.forged, nil
	}
	return f.inner.OpenCheckpoint(idx)
}

func (f *forgingOpener) OpenProof(idx int) (LeafProof, error) {
	return f.inner.OpenProof(idx)
}

func TestVerifyRejectsForgedOpening(t *testing.T) {
	worker, result, p, verifier, ds := buildHonestSetup(t, SchemeV1)
	forged := tensor.NewRNG(1).NormalVector(len(p.Global), 0, 1)
	// Forge every opening the verifier might request.
	for target := 0; target < result.NumCheckpoints; target++ {
		opener := &forgingOpener{inner: worker, target: target, forged: forged}
		out, err := verifier.VerifySubmission(opener, ds, result, p)
		if err != nil {
			t.Fatal(err)
		}
		if out.Accepted {
			// The verifier might not have sampled the forged index; only
			// fail when it did.
			sampledForged := false
			for _, c := range out.SampledCheckpoints {
				if c == target || c+1 == target {
					sampledForged = true
				}
			}
			if sampledForged {
				t.Errorf("forged checkpoint %d accepted", target)
			}
		}
	}
}

func TestVerifyRejectsLazyTrace(t *testing.T) {
	// A worker that commits random weights (no training) must be rejected:
	// re-execution from its "checkpoints" lands far from the committed next
	// checkpoint.
	_, _, p, verifier, ds := buildHonestSetup(t, SchemeV1)
	rng := tensor.NewRNG(3)
	n := p.NumCheckpoints()
	fake := &Trace{}
	for i := 0; i < n; i++ {
		fake.Checkpoints = append(fake.Checkpoints, rng.NormalVector(len(p.Global), 0, 1))
		fake.Steps = append(fake.Steps, i*p.CheckpointEvery)
	}
	commit, _, err := BuildCommitment(fake.Checkpoints, nil)
	if err != nil {
		t.Fatal(err)
	}
	update, err := fake.Update()
	if err != nil {
		t.Fatal(err)
	}
	result := &EpochResult{
		WorkerID: "lazy", Update: update, DataSize: ds.Len(),
		Commit: commit, NumCheckpoints: n,
	}
	out, err := verifier.VerifySubmission(&traceOpener{trace: fake}, ds, result, p)
	if err != nil {
		t.Fatal(err)
	}
	if out.Accepted {
		t.Error("random-weights trace accepted under v1")
	}
}

// traceOpener serves checkpoints straight from a trace. Merkle proof pulls
// rebuild the commitment over the trace on demand (fam mirrors what the
// trace was committed under).
type traceOpener struct {
	trace *Trace
	fam   *lsh.Family
}

func (o *traceOpener) OpenCheckpoint(idx int) (tensor.Vector, error) {
	if idx < 0 || idx >= len(o.trace.Checkpoints) {
		return nil, tensor.ErrShapeMismatch
	}
	return o.trace.Checkpoints[idx], nil
}

func (o *traceOpener) OpenProof(idx int) (LeafProof, error) {
	ec, err := CommitTrace(nil, o.trace.Checkpoints, o.fam, true)
	if err != nil {
		return LeafProof{}, err
	}
	return ec.OpenProof(idx)
}

func TestVerifyRejectsLazyTraceV2(t *testing.T) {
	_, _, p, verifier, ds := buildHonestSetup(t, SchemeV2)
	rng := tensor.NewRNG(4)
	n := p.NumCheckpoints()
	fake := &Trace{}
	for i := 0; i < n; i++ {
		fake.Checkpoints = append(fake.Checkpoints, rng.NormalVector(len(p.Global), 0, 1))
		fake.Steps = append(fake.Steps, i*p.CheckpointEvery)
	}
	commit, digests, err := BuildCommitment(fake.Checkpoints, verifier.LSH)
	if err != nil {
		t.Fatal(err)
	}
	update, err := fake.Update()
	if err != nil {
		t.Fatal(err)
	}
	result := &EpochResult{
		WorkerID: "lazy", Update: update, DataSize: ds.Len(),
		Commit: commit, LSHDigests: digests, NumCheckpoints: n,
	}
	out, err := verifier.VerifySubmission(&traceOpener{trace: fake}, ds, result, p)
	if err != nil {
		t.Fatal(err)
	}
	if out.Accepted {
		t.Error("random-weights trace accepted under v2")
	}
}

func TestVerifyMissingCommitment(t *testing.T) {
	worker, result, p, verifier, ds := buildHonestSetup(t, SchemeV1)
	_ = worker
	bad := *result
	bad.Commit = nil
	out, err := verifier.VerifySubmission(worker, ds, &bad, p)
	if err != nil {
		t.Fatal(err)
	}
	if out.Accepted {
		t.Error("submission without commitment accepted")
	}
}

func TestVerifyDigestCountMismatch(t *testing.T) {
	worker, result, p, verifier, ds := buildHonestSetup(t, SchemeV2)
	bad := *result
	bad.LSHDigests = bad.LSHDigests[:1]
	out, err := verifier.VerifySubmission(worker, ds, &bad, p)
	if err != nil {
		t.Fatal(err)
	}
	if out.Accepted {
		t.Error("submission with truncated digests accepted")
	}
}

func TestVerifierConfigErrors(t *testing.T) {
	worker, result, p, _, ds := buildHonestSetup(t, SchemeV1)
	v := &Verifier{Scheme: SchemeV1}
	if _, err := v.VerifySubmission(worker, ds, result, p); err == nil {
		t.Error("want error for verifier without network")
	}
	netV, _ := testTask(t, 10)
	v = &Verifier{Scheme: SchemeV1, Net: netV}
	if _, err := v.VerifySubmission(worker, ds, result, p); err == nil {
		t.Error("want error for verifier without sampler")
	}
	v = &Verifier{Scheme: SchemeV2, Net: netV, Sampler: tensor.NewRNG(1)}
	if _, err := v.VerifySubmission(worker, ds, result, p); err == nil {
		t.Error("want error for v2 verifier without LSH family")
	}
}

func TestSampleIntervalsDistinct(t *testing.T) {
	v := &Verifier{Samples: 3, Sampler: tensor.NewRNG(5)}
	for trial := 0; trial < 50; trial++ {
		got := v.sampleIntervals(10)
		if len(got) != 3 {
			t.Fatalf("sampled %d", len(got))
		}
		seen := map[int]bool{}
		for _, c := range got {
			if c < 0 || c >= 9 {
				t.Fatalf("sample %d out of range", c)
			}
			if seen[c] {
				t.Fatal("duplicate sample")
			}
			seen[c] = true
		}
	}
	// Request more samples than intervals: all intervals returned.
	all := v.sampleIntervals(3)
	if len(all) != 2 {
		t.Errorf("expected all 2 intervals, got %v", all)
	}
	if got := v.sampleIntervals(1); got != nil {
		t.Errorf("no intervals: got %v", got)
	}
}

func TestVerifyOpeningV1V2(t *testing.T) {
	w := tensor.Vector{1, 2, 3}
	commit, _, err := BuildCommitment([]tensor.Vector{w}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := &EpochResult{Commit: commit}
	if err := VerifyOpening(res, nil, 0, w); err != nil {
		t.Errorf("genuine v1 opening rejected: %v", err)
	}
	if err := VerifyOpening(res, nil, 0, tensor.Vector{9, 9, 9}); err == nil {
		t.Error("forged v1 opening accepted")
	}

	fam, err := lsh.NewFamily(3, lsh.Params{R: 1, K: 2, L: 2}, 9)
	if err != nil {
		t.Fatal(err)
	}
	commit2, digests, err := BuildCommitment([]tensor.Vector{w}, fam)
	if err != nil {
		t.Fatal(err)
	}
	if len(digests) != 1 {
		t.Fatalf("digests = %d", len(digests))
	}
	res2 := &EpochResult{Commit: commit2, LSHDigests: digests}
	if err := VerifyOpening(res2, fam, 0, w); err != nil {
		t.Errorf("genuine v2 opening rejected: %v", err)
	}
	if err := VerifyOpening(res2, fam, 0, tensor.Vector{100, 100, 100}); err == nil {
		t.Error("distant forged v2 opening accepted")
	}
	noCommit := &EpochResult{}
	if err := VerifyOpening(noCommit, nil, 0, w); err == nil {
		t.Error("opening without commitment accepted")
	}
}

func TestHonestWorkerBasics(t *testing.T) {
	net, ds := testTask(t, 11)
	if _, err := NewHonestWorker("w", gpu.Profile{Name: "bad"}, 1, net, ds); err == nil {
		t.Error("want error for bad profile")
	}
	if _, err := NewHonestWorker("w", gpu.GA10, 1, net, &dataset.Dataset{}); err == nil {
		t.Error("want error for empty shard")
	}
	w, err := NewHonestWorker("w", gpu.GA10, 1, net, ds)
	if err != nil {
		t.Fatal(err)
	}
	if w.ID() != "w" || w.GPUProfile().Name != "GA10" || w.ShardSize() != ds.Len() {
		t.Error("accessor mismatch")
	}
	if _, err := w.OpenCheckpoint(0); err == nil {
		t.Error("want error before first epoch")
	}
	p := testParams(net.ParamVector())
	res, err := w.RunEpoch(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumCheckpoints != p.NumCheckpoints() {
		t.Errorf("NumCheckpoints = %d", res.NumCheckpoints)
	}
	if _, err := w.OpenCheckpoint(res.NumCheckpoints); err == nil {
		t.Error("want error for out-of-range checkpoint")
	}
	if w.LastTrace() == nil {
		t.Error("trace must be retained")
	}
}

// TestHonestAlwaysPassesRandomized is a randomized property check of the
// paper's 0-false-negative goal: across many independent (worker hardware,
// verifier hardware, sampler) draws, a calibrated verifier never rejects an
// honest submission.
func TestHonestAlwaysPassesRandomized(t *testing.T) {
	netC, ds := testTask(t, 10)
	p := testParams(netC.ParamVector())
	cal := &Calibrator{Net: netC, Shard: ds, XFactor: 5, KLsh: 16}
	calOut, fam, err := cal.Calibrate(p, gpu.G3090, gpu.GA10, [2]int64{201, 202}, 203)
	if err != nil {
		t.Fatal(err)
	}
	p.LSH = fam
	profiles := gpu.Profiles()
	for trial := 0; trial < 12; trial++ {
		netW, _ := testTask(t, 10)
		worker, err := NewHonestWorker("w", profiles[trial%len(profiles)], int64(300+trial), netW, ds)
		if err != nil {
			t.Fatal(err)
		}
		result, err := worker.RunEpoch(p)
		if err != nil {
			t.Fatal(err)
		}
		netV, _ := testTask(t, 10)
		device, err := gpu.NewDevice(gpu.G3090, int64(400+trial))
		if err != nil {
			t.Fatal(err)
		}
		verifier := &Verifier{
			Scheme: SchemeV2, Net: netV, Device: device,
			Beta: calOut.Beta, LSH: fam, Samples: 3,
			Sampler: tensor.NewRNG(int64(500 + trial)),
		}
		out, err := verifier.VerifySubmission(worker, ds, result, p)
		if err != nil {
			t.Fatal(err)
		}
		if !out.Accepted {
			t.Fatalf("trial %d (%s): honest worker rejected: %s",
				trial, worker.GPUProfile().Name, out.FailReason)
		}
	}
}

func TestVerifyRejectsWrongLengthUpdate(t *testing.T) {
	worker, result, p, verifier, ds := buildHonestSetup(t, SchemeV1)
	bad := *result
	bad.Update = tensor.NewVector(3) // wrong dimensionality
	out, err := verifier.VerifySubmission(worker, ds, &bad, p)
	if err != nil {
		t.Fatal(err)
	}
	if out.Accepted {
		t.Error("wrong-length update accepted")
	}
}

func TestBindFinalCheckpoint(t *testing.T) {
	global := tensor.Vector{1, 2, 3}
	tr := &Trace{
		Checkpoints: []tensor.Vector{global.Clone(), {1.5, 2.5, 3.5}},
		Steps:       []int{0, 5},
	}
	update, err := BindFinalCheckpoint(tr, global)
	if err != nil {
		t.Fatal(err)
	}
	// The rewritten final checkpoint must equal global+update bit-exactly.
	reconstructed, err := global.Add(update)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Final().Equal(reconstructed, 0) {
		t.Error("binding not bit-exact")
	}
	// And stay within an ulp of the true final weights.
	if !tr.Final().Equal(tensor.Vector{1.5, 2.5, 3.5}, 1e-12) {
		t.Error("binding perturbed the final weights materially")
	}
	short := &Trace{Checkpoints: []tensor.Vector{global}}
	if _, err := BindFinalCheckpoint(short, global); err == nil {
		t.Error("single-checkpoint trace accepted")
	}
	if _, err := BindFinalCheckpoint(tr, tensor.Vector{1}); err == nil {
		t.Error("mismatched global accepted")
	}
}
