package rpol

import (
	"testing"

	"rpol/internal/gpu"
	"rpol/internal/nn"
	"rpol/internal/tensor"
)

func buildSubmissions(t *testing.T, n int) []Submission {
	t.Helper()
	subs := make([]Submission, 0, n)
	for i := 0; i < n; i++ {
		netW, ds := testTask(t, 10)
		worker, err := NewHonestWorker("w", gpu.GA10, int64(300+i), netW, ds)
		if err != nil {
			t.Fatal(err)
		}
		p := testParams(netW.ParamVector())
		result, err := worker.RunEpoch(p)
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, Submission{Opener: worker, Shard: ds, Result: result, Params: p})
	}
	return subs
}

func poolBuilder(t *testing.T) func() (*nn.Network, error) {
	t.Helper()
	return func() (*nn.Network, error) {
		rng := tensor.NewRNG(10)
		return nn.NewNetwork(
			nn.NewDense(8, 16, rng),
			nn.NewReLU(16),
			nn.NewDense(16, 4, rng),
		)
	}
}

func TestVerifierPoolAcceptsHonest(t *testing.T) {
	subs := buildSubmissions(t, 5)
	vp, err := NewVerifierPool(3, SchemeV1, poolBuilder(t), gpu.G3090, 0.05, nil, 2, 99)
	if err != nil {
		t.Fatal(err)
	}
	if vp.Size() != 3 {
		t.Errorf("Size = %d", vp.Size())
	}
	outcomes, err := vp.VerifyAll(subs)
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != 5 {
		t.Fatalf("outcomes = %d", len(outcomes))
	}
	for i, out := range outcomes {
		if out == nil || !out.Accepted {
			reason := "<nil>"
			if out != nil {
				reason = out.FailReason
			}
			t.Errorf("submission %d rejected: %s", i, reason)
		}
	}
}

func TestVerifierPoolCatchesCheaterAmongHonest(t *testing.T) {
	subs := buildSubmissions(t, 3)
	// Replace submission 1's opener with one serving random weights.
	forged := tensor.NewRNG(5).NormalVector(len(subs[1].Params.Global), 0, 1)
	subs[1].Opener = &forgingOpener{inner: subs[1].Opener, target: 1, forged: forged}
	subs[1].Opener = &forgingOpener{inner: subs[1].Opener, target: 2, forged: forged}
	subs[1].Opener = &forgingOpener{inner: subs[1].Opener, target: 3, forged: forged}

	vp, err := NewVerifierPool(2, SchemeV1, poolBuilder(t), gpu.G3090, 0.05, nil, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	outcomes, err := vp.VerifyAll(subs)
	if err != nil {
		t.Fatal(err)
	}
	if !outcomes[0].Accepted || !outcomes[2].Accepted {
		t.Error("honest submissions rejected")
	}
	if outcomes[1].Accepted {
		t.Error("forged submission accepted")
	}
}

func TestVerifierPoolValidation(t *testing.T) {
	if _, err := NewVerifierPool(0, SchemeV1, poolBuilder(t), gpu.G3090, 0.1, nil, 3, 1); err == nil {
		t.Error("want error for zero verifiers")
	}
	if _, err := NewVerifierPool(2, SchemeV1, nil, gpu.G3090, 0.1, nil, 3, 1); err == nil {
		t.Error("want error for nil builder")
	}
	if _, err := NewVerifierPool(2, SchemeV1, poolBuilder(t), gpu.Profile{}, 0.1, nil, 3, 1); err == nil {
		t.Error("want error for bad profile")
	}
}

func TestVerifierPoolEmptyBatch(t *testing.T) {
	vp, err := NewVerifierPool(2, SchemeV1, poolBuilder(t), gpu.G3090, 0.05, nil, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	outcomes, err := vp.VerifyAll(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != 0 {
		t.Errorf("outcomes = %d", len(outcomes))
	}
}

func TestVerifierPoolMoreVerifiersThanWork(t *testing.T) {
	subs := buildSubmissions(t, 2)
	vp, err := NewVerifierPool(8, SchemeV1, poolBuilder(t), gpu.G3090, 0.05, nil, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	outcomes, err := vp.VerifyAll(subs)
	if err != nil {
		t.Fatal(err)
	}
	for i, out := range outcomes {
		if out == nil || !out.Accepted {
			t.Errorf("submission %d not verified", i)
		}
	}
}
