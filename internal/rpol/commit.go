package rpol

import (
	"errors"
	"fmt"

	"rpol/internal/commitment"
	"rpol/internal/lsh"
	"rpol/internal/parallel"
	"rpol/internal/tensor"
)

// poolFor maps a Workers knob to a compute pool: nil (serial) when n ≤ 0.
func poolFor(n int) *parallel.Pool {
	if n <= 0 {
		return nil
	}
	return parallel.New(n)
}

// BuildCommitment constructs the epoch commitment over a sequence of
// checkpoint snapshots.
//
// Under RPoLv1 (fam == nil) each leaf is the digest of the raw encoded
// weights, so the commitment binds the exact checkpoint bytes and the
// returned digest slice is nil.
//
// Under RPoLv2 each checkpoint is first LSH-hashed; the leaves commit the
// digests and the digests themselves are returned so the worker can reveal
// them during verification (the manager checks a revealed digest against the
// commitment before fuzzy-matching it).
func BuildCommitment(checkpoints []tensor.Vector, fam *lsh.Family) (*commitment.HashList, []lsh.Digest, error) {
	return BuildCommitmentPool(nil, checkpoints, fam)
}

// BuildCommitmentPool is BuildCommitment with the per-checkpoint work —
// wire-encoding + leaf hashing under v1, LSH hashing under v2 — chunked
// across the pool. Each checkpoint's leaf depends only on that checkpoint
// and is written to its own slot, so the commitment is bit-identical to the
// serial construction for any worker count. A nil pool runs serially.
//
// Checkpoints are never copied: each chunk streams its leaf payloads — raw
// weight encodings under v1, LSH digest encodings under v2 — through a
// reused encode buffer straight into SHA-256, so building the commitment
// costs one encode-buffer per chunk instead of one payload copy per
// checkpoint.
func BuildCommitmentPool(p *parallel.Pool, checkpoints []tensor.Vector, fam *lsh.Family) (*commitment.HashList, []lsh.Digest, error) {
	leaves, digests, err := commitLeaves(p, checkpoints, fam)
	if err != nil {
		return nil, nil, err
	}
	commit, err := commitment.NewLeafList(leaves)
	if err != nil {
		return nil, nil, fmt.Errorf("rpol commitment: %w", err)
	}
	return commit, digests, nil
}

// commitLeaves digests every checkpoint into its commitment leaf — the raw
// weight encoding under v1, the LSH digest encoding under v2 — chunked across
// the pool with per-slot writes, so the leaves are bit-identical to the
// serial construction for any worker count.
func commitLeaves(p *parallel.Pool, checkpoints []tensor.Vector, fam *lsh.Family) ([]commitment.Hash, []lsh.Digest, error) {
	if len(checkpoints) == 0 {
		return nil, nil, commitment.ErrEmpty
	}
	leaves := make([]commitment.Hash, len(checkpoints))
	if fam == nil {
		p.ForChunks(len(checkpoints), 1, func(_, lo, hi int) {
			var buf []byte
			for i := lo; i < hi; i++ {
				buf = checkpoints[i].AppendEncode(buf[:0])
				leaves[i] = commitment.HashLeaf(buf)
			}
		})
		return leaves, nil, nil
	}

	digests := make([]lsh.Digest, len(checkpoints))
	errs := make([]error, parallel.NumChunks(len(checkpoints), 1))
	p.ForChunks(len(checkpoints), 1, func(c, lo, hi int) {
		var buf []byte
		for i := lo; i < hi; i++ {
			d, err := fam.Hash(checkpoints[i])
			if err != nil {
				errs[c] = fmt.Errorf("rpol commitment checkpoint %d: %w", i, err)
				return
			}
			digests[i] = d
			buf = d.AppendEncode(buf[:0])
			leaves[i] = commitment.HashLeaf(buf)
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	return leaves, digests, nil
}

// EpochCommitment is a worker's commitment over one epoch's checkpoints in
// either wire form: the legacy hash list (Commit/Digests shipped inline with
// the submission) or the streaming Merkle root (HasRoot set, proofs served
// on demand through OpenProof). Workers and adversaries build one with
// CommitTrace, stamp the submission with Apply, and keep it around to answer
// the verifier's proof pulls.
type EpochCommitment struct {
	Commit  *commitment.HashList
	Root    commitment.Hash
	HasRoot bool
	Digests []lsh.Digest

	tree *commitment.MerkleTree
}

// CommitTrace builds the epoch commitment over the checkpoint snapshots:
// the legacy hash list when merkle is false, the Merkle tree otherwise.
// Leaf digesting is chunked across the pool; the resulting commitment —
// hash-list leaves or Merkle root — is bit-identical to the serial
// construction for any worker count.
func CommitTrace(p *parallel.Pool, checkpoints []tensor.Vector, fam *lsh.Family, merkle bool) (*EpochCommitment, error) {
	leaves, digests, err := commitLeaves(p, checkpoints, fam)
	if err != nil {
		return nil, err
	}
	if !merkle {
		commit, err := commitment.NewLeafList(leaves)
		if err != nil {
			return nil, fmt.Errorf("rpol commitment: %w", err)
		}
		return &EpochCommitment{Commit: commit, Digests: digests}, nil
	}
	tree, err := commitment.NewMerkleFromLeaves(leaves)
	if err != nil {
		return nil, fmt.Errorf("rpol commitment: %w", err)
	}
	return &EpochCommitment{Root: tree.Root(), HasRoot: true, Digests: digests, tree: tree}, nil
}

// Apply stamps the commitment onto a submission: root-only under Merkle,
// full hash list plus inline digests under the legacy scheme.
func (c *EpochCommitment) Apply(r *EpochResult) {
	if c.HasRoot {
		r.MerkleRoot = c.Root
		r.HasRoot = true
		return
	}
	r.Commit = c.Commit
	r.LSHDigests = c.Digests
}

// OpenProof serves the verifier's on-demand pull for leaf idx: the Merkle
// inclusion proof plus, under v2, the committed digest encoding it
// authenticates.
func (c *EpochCommitment) OpenProof(idx int) (LeafProof, error) {
	if !c.HasRoot {
		return LeafProof{}, errors.New("rpol: epoch not Merkle-committed")
	}
	proof, err := c.tree.Prove(idx)
	if err != nil {
		return LeafProof{}, err
	}
	lp := LeafProof{Proof: proof}
	if c.Digests != nil {
		lp.Digest = c.Digests[idx].AppendEncode(nil)
	}
	return lp, nil
}

// VerifyOpening checks that an opened raw checkpoint is consistent with the
// worker's commitment: under v1 the weights must hash to the committed leaf;
// under v2 the weights' LSH digest must equal the committed digest exactly
// (a worker opening the very bytes it hashed always passes; any substitution
// that changes the digest fails).
func VerifyOpening(result *EpochResult, fam *lsh.Family, idx int, weights tensor.Vector) error {
	_, err := verifyOpening(result, fam, idx, weights, nil)
	return err
}

// verifyOpening is VerifyOpening threading a caller-owned scratch encode
// buffer; it returns the (possibly grown) buffer so verification loops reuse
// one allocation across every opened checkpoint instead of copying the full
// weight vector per leaf check.
func verifyOpening(result *EpochResult, fam *lsh.Family, idx int, weights tensor.Vector, buf []byte) ([]byte, error) {
	if result.Commit == nil {
		return buf, fmt.Errorf("rpol: submission carries no commitment")
	}
	if fam == nil {
		buf = weights.AppendEncode(buf[:0])
		return buf, result.Commit.VerifyLeaf(idx, buf)
	}
	d, err := fam.Hash(weights)
	if err != nil {
		return buf, fmt.Errorf("rpol opening %d: %w", idx, err)
	}
	buf = d.AppendEncode(buf[:0])
	return buf, result.Commit.VerifyLeaf(idx, buf)
}
