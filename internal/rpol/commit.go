package rpol

import (
	"fmt"

	"rpol/internal/commitment"
	"rpol/internal/lsh"
	"rpol/internal/tensor"
)

// BuildCommitment constructs the epoch commitment over a sequence of
// checkpoint snapshots.
//
// Under RPoLv1 (fam == nil) each leaf is the raw encoded weights, so the
// commitment binds the exact checkpoint bytes and the returned digest slice
// is nil.
//
// Under RPoLv2 each checkpoint is first LSH-hashed; the leaves commit the
// digests and the digests themselves are returned so the worker can reveal
// them during verification (the manager checks a revealed digest against the
// commitment before fuzzy-matching it).
func BuildCommitment(checkpoints []tensor.Vector, fam *lsh.Family) (*commitment.HashList, []lsh.Digest, error) {
	if len(checkpoints) == 0 {
		return nil, nil, commitment.ErrEmpty
	}
	payloads := make([][]byte, len(checkpoints))
	var digests []lsh.Digest
	if fam != nil {
		digests = make([]lsh.Digest, len(checkpoints))
	}
	for i, w := range checkpoints {
		if fam == nil {
			payloads[i] = w.Encode()
			continue
		}
		d, err := fam.Hash(w)
		if err != nil {
			return nil, nil, fmt.Errorf("rpol commitment checkpoint %d: %w", i, err)
		}
		digests[i] = d
		payloads[i] = d.Encode()
	}
	commit, err := commitment.NewHashList(payloads)
	if err != nil {
		return nil, nil, fmt.Errorf("rpol commitment: %w", err)
	}
	return commit, digests, nil
}

// VerifyOpening checks that an opened raw checkpoint is consistent with the
// worker's commitment: under v1 the weights must hash to the committed leaf;
// under v2 the weights' LSH digest must equal the committed digest exactly
// (a worker opening the very bytes it hashed always passes; any substitution
// that changes the digest fails).
func VerifyOpening(result *EpochResult, fam *lsh.Family, idx int, weights tensor.Vector) error {
	if result.Commit == nil {
		return fmt.Errorf("rpol: submission carries no commitment")
	}
	if fam == nil {
		return result.Commit.VerifyLeaf(idx, weights.Encode())
	}
	d, err := fam.Hash(weights)
	if err != nil {
		return fmt.Errorf("rpol opening %d: %w", idx, err)
	}
	return result.Commit.VerifyLeaf(idx, d.Encode())
}
