package rpol

import (
	"testing"

	"rpol/internal/dataset"
	"rpol/internal/gpu"
	"rpol/internal/nn"
	"rpol/internal/tensor"
)

// testTask builds a small learnable task: a 4-class, 8-dim dataset and a
// matching MLP. netSeed individualizes the architecture's weights.
func testTask(t *testing.T, netSeed int64) (*nn.Network, *dataset.Dataset) {
	t.Helper()
	ds, err := dataset.Generate(dataset.Config{
		Name: "rpol-test", NumClasses: 4, Dim: 8, Size: 400, ClusterStd: 0.4, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(netSeed)
	net, err := nn.NewNetwork(
		nn.NewDense(8, 16, rng),
		nn.NewReLU(16),
		nn.NewDense(16, 4, rng),
	)
	if err != nil {
		t.Fatal(err)
	}
	return net, ds
}

func testParams(global tensor.Vector) TaskParams {
	return TaskParams{
		Epoch:           0,
		Global:          global,
		Hyper:           Hyper{Optimizer: "sgdm", LR: 0.05, BatchSize: 8},
		Nonce:           12345,
		Steps:           15,
		CheckpointEvery: 5,
	}
}

func TestTaskParamsValidate(t *testing.T) {
	net, _ := testTask(t, 1)
	good := testParams(net.ParamVector())
	if err := good.Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	cases := []func(*TaskParams){
		func(p *TaskParams) { p.Global = nil },
		func(p *TaskParams) { p.Hyper.BatchSize = 0 },
		func(p *TaskParams) { p.Hyper.LR = 0 },
		func(p *TaskParams) { p.Steps = 0 },
		func(p *TaskParams) { p.CheckpointEvery = 0 },
	}
	for i, mutate := range cases {
		p := testParams(net.ParamVector())
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestNumCheckpoints(t *testing.T) {
	cases := []struct {
		steps, every, want int
	}{
		{15, 5, 4},  // 0, 5, 10, 15
		{13, 5, 4},  // 0, 5, 10, 13
		{5, 5, 2},   // 0, 5
		{4, 5, 2},   // 0, 4
		{20, 1, 21}, // every step
	}
	for _, c := range cases {
		p := TaskParams{Steps: c.steps, CheckpointEvery: c.every}
		if got := p.NumCheckpoints(); got != c.want {
			t.Errorf("steps=%d every=%d: NumCheckpoints = %d, want %d", c.steps, c.every, got, c.want)
		}
	}
}

func TestRunEpochCheckpointSchedule(t *testing.T) {
	net, ds := testTask(t, 2)
	trainer := &Trainer{Net: net, Shard: ds}
	p := testParams(net.ParamVector())
	p.Steps = 13
	trace, err := trainer.RunEpoch(p)
	if err != nil {
		t.Fatal(err)
	}
	wantSteps := []int{0, 5, 10, 13}
	if len(trace.Steps) != len(wantSteps) {
		t.Fatalf("steps = %v", trace.Steps)
	}
	for i, s := range wantSteps {
		if trace.Steps[i] != s {
			t.Errorf("step[%d] = %d, want %d", i, trace.Steps[i], s)
		}
	}
	if len(trace.Checkpoints) != p.NumCheckpoints() {
		t.Errorf("checkpoints = %d, want %d", len(trace.Checkpoints), p.NumCheckpoints())
	}
	if !trace.Checkpoints[0].Equal(p.Global, 0) {
		t.Error("first checkpoint must be the initial weights")
	}
}

func TestRunEpochDeterministicWithoutDevice(t *testing.T) {
	run := func() *Trace {
		net, ds := testTask(t, 3)
		trainer := &Trainer{Net: net, Shard: ds}
		p := testParams(net.ParamVector())
		trace, err := trainer.RunEpoch(p)
		if err != nil {
			t.Fatal(err)
		}
		return trace
	}
	a, b := run(), run()
	for i := range a.Checkpoints {
		if !a.Checkpoints[i].Equal(b.Checkpoints[i], 0) {
			t.Fatalf("noiseless training must be bit-reproducible (checkpoint %d)", i)
		}
	}
}

func TestRunEpochDeviceNoiseDiverges(t *testing.T) {
	run := func(runSeed int64) *Trace {
		net, ds := testTask(t, 4)
		device, err := gpu.NewDevice(gpu.G3090, runSeed)
		if err != nil {
			t.Fatal(err)
		}
		trainer := &Trainer{Net: net, Shard: ds, Device: device}
		p := testParams(net.ParamVector())
		trace, err := trainer.RunEpoch(p)
		if err != nil {
			t.Fatal(err)
		}
		return trace
	}
	a, b := run(1), run(2)
	final1, final2 := a.Final(), b.Final()
	d, err := tensor.Distance(final1, final2)
	if err != nil {
		t.Fatal(err)
	}
	if d == 0 {
		t.Error("different hardware runs must diverge (reproduction error)")
	}
	// The divergence must be small compared with the training progress —
	// otherwise verification could never distinguish noise from spoofing.
	progress, err := tensor.Distance(a.Checkpoints[0], final1)
	if err != nil {
		t.Fatal(err)
	}
	if d >= progress/10 {
		t.Errorf("reproduction error %v too large vs training progress %v", d, progress)
	}
}

func TestExecuteIntervalMatchesEpochSegments(t *testing.T) {
	// Re-executing interval j from checkpoint j must land on checkpoint j+1
	// exactly when both runs are noiseless — the verification identity.
	net, ds := testTask(t, 5)
	trainer := &Trainer{Net: net, Shard: ds}
	p := testParams(net.ParamVector())
	trace, err := trainer.RunEpoch(p)
	if err != nil {
		t.Fatal(err)
	}
	net2, _ := testTask(t, 5) // identical architecture + weights
	reexec := &Trainer{Net: net2, Shard: ds}
	for j := 0; j+1 < len(trace.Checkpoints); j++ {
		startStep, steps, err := trace.IntervalSteps(j)
		if err != nil {
			t.Fatal(err)
		}
		got, err := reexec.ExecuteInterval(trace.Checkpoints[j], startStep, steps, p.Hyper, p.Nonce)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(trace.Checkpoints[j+1], 0) {
			t.Errorf("interval %d: noiseless re-execution diverged", j)
		}
	}
}

func TestIntervalStepsBounds(t *testing.T) {
	tr := &Trace{Steps: []int{0, 5, 10}}
	if _, _, err := tr.IntervalSteps(-1); err == nil {
		t.Error("want error for negative interval")
	}
	if _, _, err := tr.IntervalSteps(2); err == nil {
		t.Error("want error for final checkpoint")
	}
	start, steps, err := tr.IntervalSteps(1)
	if err != nil || start != 5 || steps != 5 {
		t.Errorf("IntervalSteps(1) = %d, %d, %v", start, steps, err)
	}
}

func TestTraceUpdate(t *testing.T) {
	tr := &Trace{Checkpoints: []tensor.Vector{{1, 1}, {3, 0}}}
	u, err := tr.Update()
	if err != nil {
		t.Fatal(err)
	}
	if !u.Equal(tensor.Vector{2, -1}, 0) {
		t.Errorf("Update = %v", u)
	}
	short := &Trace{Checkpoints: []tensor.Vector{{1}}}
	if _, err := short.Update(); err == nil {
		t.Error("want error for single-checkpoint trace")
	}
	if (&Trace{}).Final() != nil {
		t.Error("Final of empty trace must be nil")
	}
}

func TestRunEpochRejectsBadParams(t *testing.T) {
	net, ds := testTask(t, 6)
	trainer := &Trainer{Net: net, Shard: ds}
	p := testParams(net.ParamVector())
	p.Steps = 0
	if _, err := trainer.RunEpoch(p); err == nil {
		t.Error("want error for zero steps")
	}
}

func TestExecuteIntervalUnknownOptimizer(t *testing.T) {
	net, ds := testTask(t, 7)
	trainer := &Trainer{Net: net, Shard: ds}
	h := Hyper{Optimizer: "nope", LR: 0.1, BatchSize: 4}
	if _, err := trainer.ExecuteInterval(net.ParamVector(), 0, 1, h, 1); err == nil {
		t.Error("want error for unknown optimizer")
	}
}
