package rpol

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"

	"rpol/internal/dataset"
	"rpol/internal/gpu"
)

// epochFingerprints runs one full RPoLv2 epoch — training, commitment,
// calibration, sampling, verification, aggregation — with the given Workers
// knob and condenses the result into two digests:
//
//   - train covers every protocol artifact: checkpoint traces, commitment
//     roots and leaves, LSH digests, submitted updates, acceptance flags,
//     and the aggregated global model;
//   - verify covers the verification accounting: sampled intervals,
//     fail reasons, comm bytes, re-executed steps, misses and double-checks.
//
// The split exists because the verification tallies depend on the device
// noise stream (serial verification threads one stream through all
// intervals; parallel verification forks one per interval), so they are
// only comparable within the chunked runtime (workers ≥ 1), while the
// training-side artifacts must agree everywhere.
func epochFingerprints(t *testing.T, workers int, merkle bool) (train, verify string) {
	t.Helper()
	const n = 4
	ds, err := dataset.Generate(dataset.Config{
		Name: "det", NumClasses: 4, Dim: 8, Size: 1200, ClusterStd: 0.4, Seed: 55,
	})
	if err != nil {
		t.Fatal(err)
	}
	shards, err := ds.Partition(n + 1)
	if err != nil {
		t.Fatal(err)
	}
	profiles := gpu.Profiles()
	pool := make([]*HonestWorker, n)
	workerIfs := make([]Worker, n)
	shardMap := make(map[string]*dataset.Dataset, n)
	for i := 0; i < n; i++ {
		net, _ := testTask(t, 30)
		id := "w" + string(rune('A'+i))
		w, err := NewHonestWorker(id, profiles[i%len(profiles)], int64(1000+i), net, shards[i])
		if err != nil {
			t.Fatal(err)
		}
		pool[i] = w
		workerIfs[i] = w
		shardMap[id] = shards[i]
	}
	managerNet, _ := testTask(t, 30)
	mgr, err := NewManager(ManagerConfig{
		Address:         "pool-manager",
		Scheme:          SchemeV2,
		Hyper:           Hyper{Optimizer: "sgdm", LR: 0.05, BatchSize: 8},
		StepsPerEpoch:   15,
		CheckpointEvery: 5,
		Samples:         3,
		GPU:             gpu.G3090,
		MasterKey:       []byte("master"),
		Seed:            99,
		Workers:         workers,
		MerkleCommit:    merkle,
	}, managerNet, workerIfs, shardMap, shards[n])
	if err != nil {
		t.Fatal(err)
	}
	report, err := mgr.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}

	ht := sha256.New()
	for _, w := range pool {
		for _, c := range w.lastTrace.Checkpoints {
			ht.Write(c.Encode())
		}
		res := w.lastResult
		if res.HasRoot {
			// Merkle submissions carry only the root; the retained epoch
			// commitment still exposes the per-leaf digests for hashing.
			ht.Write(res.MerkleRoot[:])
			for _, d := range w.lastCommit.Digests {
				ht.Write(d.Encode())
			}
		} else {
			root := res.Commit.Root()
			ht.Write(root[:])
			ht.Write(res.Commit.Encode())
			for _, d := range res.LSHDigests {
				ht.Write(d.Encode())
			}
		}
		ht.Write(res.Update.Encode())
	}
	for _, o := range report.Outcomes {
		fmt.Fprintf(ht, "%s/%v;", o.WorkerID, o.Accepted)
	}
	ht.Write(mgr.Global().Encode())

	hv := sha256.New()
	for _, o := range report.Outcomes {
		fmt.Fprintf(hv, "%s/%v/%q/%v/%d/%d/%d/%d;", o.WorkerID, o.Accepted, o.FailReason,
			o.SampledCheckpoints, o.CommBytes, o.ReexecSteps, o.LSHMisses, o.DoubleChecks)
	}
	return hex.EncodeToString(ht.Sum(nil)), hex.EncodeToString(hv.Sum(nil))
}

// TestEpochBitIdenticalAcrossWorkers is the protocol-wide determinism
// regression test for the data-parallel runtime: one epoch run at Workers =
// 1, 2, and 8 must produce bit-identical checkpoints, LSH digests,
// commitment roots, verification outcomes, and global model. Everything the
// protocol hashes or compares is covered, so any scheduling-dependent float
// reduction sneaking into a hot path fails this test (and trips the race
// detector in the -race CI job).
func TestEpochBitIdenticalAcrossWorkers(t *testing.T) {
	baseTrain, baseVerify := epochFingerprints(t, 1, false)
	for _, w := range []int{2, 8} {
		train, verify := epochFingerprints(t, w, false)
		if train != baseTrain {
			t.Errorf("workers=%d: training artifacts differ from workers=1", w)
		}
		if verify != baseVerify {
			t.Errorf("workers=%d: verification outcomes differ from workers=1", w)
		}
	}

	// The test nets are dense-only stacks, whose layers accumulate one term
	// per output element — for those the chunked runtime is also bitwise
	// equal to the historical serial path (Workers = 0). Verification
	// tallies are excluded: serial verification threads one device-noise
	// stream through all sampled intervals while parallel verification
	// forks a stream per interval, so only the protocol artifacts and
	// verdicts must agree.
	serialTrain, _ := epochFingerprints(t, 0, false)
	if serialTrain != baseTrain {
		t.Errorf("workers=0 (legacy serial) training artifacts differ from chunked runtime")
	}
}

// TestEpochBitIdenticalAcrossWorkersMerkle re-runs the determinism sweep with
// streaming Merkle commitments enabled: the wire format changes (32-byte root
// plus on-demand proof pulls instead of an inline hash list) but every
// protocol artifact — checkpoints, per-leaf digests, submitted updates,
// verdicts, global model — must stay bit-identical across Workers = 0/1/2/8,
// exactly as in the legacy sweep.
func TestEpochBitIdenticalAcrossWorkersMerkle(t *testing.T) {
	baseTrain, baseVerify := epochFingerprints(t, 1, true)
	for _, w := range []int{2, 8} {
		train, verify := epochFingerprints(t, w, true)
		if train != baseTrain {
			t.Errorf("merkle workers=%d: training artifacts differ from workers=1", w)
		}
		if verify != baseVerify {
			t.Errorf("merkle workers=%d: verification outcomes differ from workers=1", w)
		}
	}
	serialTrain, _ := epochFingerprints(t, 0, true)
	if serialTrain != baseTrain {
		t.Errorf("merkle workers=0 (legacy serial) training artifacts differ from chunked runtime")
	}
}
