package rpol

import (
	"bytes"
	"errors"
	"fmt"

	"rpol/internal/commitment"
	"rpol/internal/dataset"
	"rpol/internal/gpu"
	"rpol/internal/lsh"
	"rpol/internal/nn"
	"rpol/internal/obs"
	"rpol/internal/parallel"
	"rpol/internal/tensor"
)

// Verifier is the manager-side verification engine. For each submission it
// samples checkpoint intervals (after the worker has committed), re-executes
// them on the manager's own hardware, and accepts only if every sample's
// outcome is consistent with what the worker committed.
type Verifier struct {
	// Scheme selects baseline / RPoLv1 / RPoLv2 behaviour.
	Scheme Scheme
	// Net is the model architecture used for re-execution; its weights are
	// overwritten per sample.
	Net *nn.Network
	// Device is the manager's GPU (re-execution inherits its
	// nondeterminism).
	Device *gpu.Device
	// Beta is the distance threshold separating benign reproduction errors
	// from spoofed weights; results at distance ≥ Beta are rejected.
	Beta float64
	// LSH is the calibrated family under RPoLv2 (nil otherwise).
	LSH *lsh.Family
	// Samples is q, the number of checkpoint intervals verified per
	// submission (3 in the paper's evaluation, Sec. VII-A).
	Samples int
	// Sampler provides the secure post-commitment sampling randomness.
	Sampler *tensor.RNG
	// DisableDoubleCheck turns off the raw-weight fallback on LSH misses
	// (RPoLv2 only). The paper argues the double-check is what guarantees
	// rewards for honesty; this switch exists for the ablation that
	// quantifies exactly that.
	DisableDoubleCheck bool
	// Workers sizes the deterministic compute pool for verification: 0 keeps
	// the historical serial path; any n ≥ 1 re-executes the sampled
	// intervals concurrently, each on a detached replica of Net and a forked
	// Device, and runs each replay through the chunked training runtime.
	// Outcomes merge in sampled order, so the verdict is deterministic for
	// every n ≥ 1. Openers must then tolerate concurrent OpenCheckpoint
	// calls (all in-process workers, adversaries and stores do; a worker
	// multiplexed over a single sequential wire transport does not).
	Workers int
	// Obs routes verification metrics and spans; nil falls back to the
	// process default observer.
	Obs *obs.Observer
}

// observer resolves the verifier's observer against the process default.
func (v *Verifier) observer() *obs.Observer { return v.Obs.OrDefault() }

// Errors surfaced by verification configuration.
var (
	ErrNoSampler = errors.New("rpol: verifier needs a sampler RNG")
	ErrNoNetwork = errors.New("rpol: verifier needs a network")
)

// sampleIntervals draws q distinct interval start indices from
// [0, numCheckpoints-1). Sampling happens strictly after the worker's
// commitment arrived — the delayed-disclosure property that defeats
// selective training.
func (v *Verifier) sampleIntervals(numCheckpoints int) []int {
	intervals := numCheckpoints - 1
	if intervals <= 0 {
		return nil
	}
	q := v.Samples
	if q <= 0 {
		q = 3
	}
	if q >= intervals {
		out := make([]int, intervals)
		for i := range out {
			out[i] = i
		}
		return out
	}
	perm := v.Sampler.Perm(intervals)
	out := make([]int, q)
	copy(out, perm[:q])
	return out
}

// VerifySubmission checks one worker's epoch submission. shard must be the
// worker's sub-dataset (the manager partitioned the data, so it has it).
// The verification span nests under p.Trace (the worker's epoch span).
func (v *Verifier) VerifySubmission(opener ProofOpener, shard *dataset.Dataset, result *EpochResult, p TaskParams) (*VerifyOutcome, error) {
	out := &VerifyOutcome{WorkerID: result.WorkerID, Epoch: result.Epoch}
	span := v.observer().Start(p.Trace, "verify.submission",
		obs.String("worker", result.WorkerID), obs.String("scheme", v.Scheme.String()))
	defer func() {
		if out.Outcome == 0 {
			if out.Accepted {
				out.Outcome = OutcomeAccepted
			} else {
				out.Outcome = OutcomeRejected
			}
		}
		v.observer().Counter("rpol_submissions_verified_total").Inc()
		if out.Accepted {
			v.observer().Counter("rpol_verify_accept_total").Inc()
		} else {
			v.observer().Counter("rpol_verify_reject_total").Inc()
		}
		v.observer().Counter("rpol_verify_comm_bytes_total").Add(out.CommBytes)
		v.observer().Histogram("rpol_verify_sampled_checkpoints",
			[]float64{0, 1, 2, 3, 5, 8, 13}).Observe(float64(len(out.SampledCheckpoints)))
		span.End(obs.Bool("accepted", out.Accepted), obs.String("fail", out.FailReason),
			obs.Int("commBytes", out.CommBytes), obs.Int("reexecSteps", int64(out.ReexecSteps)))
	}()
	if v.Scheme == SchemeBaseline {
		out.Accepted = true
		return out, nil
	}
	if v.Net == nil {
		return nil, ErrNoNetwork
	}
	if v.Sampler == nil {
		return nil, ErrNoSampler
	}
	if v.Scheme == SchemeV2 && v.LSH == nil {
		return nil, errors.New("rpol: RPoLv2 verifier needs an LSH family")
	}
	if result.NumCheckpoints < 1 || result.NumCheckpoints > maxVerifyCheckpoints {
		out.FailReason = "claimed checkpoint count out of range"
		return out, nil
	}
	if result.HasRoot {
		// Streaming Merkle commitment: the submission carries only the
		// 32-byte root; every sampled leaf is authenticated by a proof
		// pulled on demand (and, under v2, the digest riding with it).
		out.CommitBytes = commitment.HashSize
	} else {
		if result.Commit == nil || result.Commit.Len() != result.NumCheckpoints {
			out.FailReason = "commitment missing or inconsistent with checkpoint count"
			return out, nil
		}
		out.CommitBytes = int64(result.Commit.Size())
		if v.Scheme == SchemeV2 {
			if len(result.LSHDigests) != result.NumCheckpoints {
				out.FailReason = "LSH digest count inconsistent with checkpoint count"
				return out, nil
			}
			for _, d := range result.LSHDigests {
				out.CommitBytes += int64(d.Size())
			}
		}
	}
	out.CommBytes = out.CommitBytes

	// Bind the trace's origin: the first committed checkpoint must be
	// exactly the global model the manager distributed. Without this check
	// a worker could train honestly from a different initialization (a
	// stale or poisoned model) and every sampled interval would still
	// re-execute consistently. The check is free — the manager holds θ_t,
	// so no transfer is needed.
	// encBuf is the submission's reused leaf-encode scratch: every leaf
	// check in the serial path shares it (the parallel path keeps one per
	// chunk instead — see verifyIntervalsParallel).
	var encBuf []byte
	var err error
	if encBuf, err = v.checkOpening(opener, result, 0, p.Global, encBuf, out); err != nil {
		out.FailReason = fmt.Sprintf("trace does not start from the distributed global model: %v", err)
		return out, nil
	}

	// Bind the submitted update to the trace's end: θ_t + L must be the
	// final committed checkpoint. Without this check a worker could train
	// (and prove) honestly yet submit an arbitrary — e.g. scaled or
	// poisoned — update for aggregation. Also free: the manager recomputes
	// the claimed final weights locally.
	if len(result.Update) != len(p.Global) {
		out.FailReason = fmt.Sprintf("update has %d weights, want %d", len(result.Update), len(p.Global))
		return out, nil
	}
	claimedFinal, err := p.Global.Add(result.Update)
	if err != nil {
		return nil, fmt.Errorf("rpol verify update binding: %w", err)
	}
	if encBuf, err = v.checkOpening(opener, result, result.NumCheckpoints-1, claimedFinal, encBuf, out); err != nil {
		out.FailReason = fmt.Sprintf("submitted update does not reach the committed final checkpoint: %v", err)
		return out, nil
	}

	challengeSpan := v.observer().Start(span, "verify.challenge",
		obs.Int("checkpoints", int64(result.NumCheckpoints)))
	out.SampledCheckpoints = v.sampleIntervals(result.NumCheckpoints)
	challengeSpan.End(obs.Int("sampled", int64(len(out.SampledCheckpoints))))
	v.observer().Counter("rpol_challenges_total").Add(int64(len(out.SampledCheckpoints)))
	if len(out.SampledCheckpoints) == 0 {
		out.FailReason = "no checkpoint intervals to sample"
		return out, nil
	}

	if v.Workers >= 1 && len(out.SampledCheckpoints) > 1 {
		ok, err := v.verifyIntervalsParallel(opener, shard, result, p, out, span)
		if err != nil {
			return nil, err
		}
		out.Accepted = ok
		return out, nil
	}

	trainer := &Trainer{Net: v.Net, Shard: shard, Device: v.Device,
		Steps: v.observer().Counter("rpol_reexec_steps_total"), Workers: v.Workers}
	for _, c := range out.SampledCheckpoints {
		ok, err := v.verifyInterval(trainer, opener, result, p, c, out, span, &encBuf)
		if err != nil {
			return nil, err
		}
		if !ok {
			out.Accepted = false
			return out, nil
		}
	}
	out.Accepted = true
	return out, nil
}

// verifyIntervalsParallel re-executes every sampled interval concurrently.
// Each interval gets a detached clone of the verifier's network and a fork
// of its device, so concurrent replays share no mutable state; per-interval
// results land in private VerifyOutcome scratch and merge into out in
// sampled order, up to and including the first failing interval — exactly
// the prefix the serial path would have accounted. The verdict and the
// merged tallies are therefore deterministic for any worker count.
//
// One documented difference from the serial path: forked devices draw
// per-interval noise streams (a pure function of the manager's run seed and
// the interval index) instead of continuing one shared sequential stream —
// both are calibrated hardware noise, orders of magnitude below β.
//
// Metrics match the serial path exactly: each interval re-executes into a
// private per-interval tally (its sub.ReexecSteps), and only the merged
// prefix — up to and including the first failure — is added to the global
// rpol_reexec_steps_total counter. Intervals past the first failure still
// execute (the fan-out cannot be cancelled retroactively) but leave no trace
// in either ReexecSteps or the counter, so serial and parallel verifiers
// report identical numbers for the same verdict.
func (v *Verifier) verifyIntervalsParallel(opener ProofOpener, shard *dataset.Dataset, result *EpochResult, p TaskParams, out *VerifyOutcome, parent *obs.Span) (bool, error) {
	sampled := out.SampledCheckpoints
	subs := make([]*VerifyOutcome, len(sampled))
	oks := make([]bool, len(sampled))
	errs := make([]error, len(sampled))
	pool := parallel.New(v.Workers)
	pool.ForChunks(len(sampled), 1, func(_, lo, hi int) {
		// Each chunk owns a private leaf-encode scratch, reused across its
		// intervals; sharing the submission-level buffer would race.
		var encBuf []byte
		for j := lo; j < hi; j++ {
			c := sampled[j]
			net, err := v.Net.Replicate(false)
			if err != nil {
				errs[j] = fmt.Errorf("rpol verify replica: %w", err)
				continue
			}
			var device *gpu.Device
			if v.Device != nil {
				device = v.Device.Fork(int64(c))
			}
			// Workers: 1 runs the replay through the chunked training
			// runtime (bit-identical to any n ≥ 1 a worker trained with)
			// without nesting a second level of goroutines under the
			// interval-level pool. Steps land in the interval's private
			// tally; the merge loop below credits the accepted prefix to
			// the global counter.
			var tally obs.Counter
			trainer := &Trainer{Net: net, Shard: shard, Device: device, Steps: &tally, Workers: 1}
			sub := &VerifyOutcome{WorkerID: out.WorkerID, Epoch: out.Epoch}
			oks[j], errs[j] = v.verifyInterval(trainer, opener, result, p, c, sub, parent, &encBuf)
			subs[j] = sub
		}
	})
	steps := v.observer().Counter("rpol_reexec_steps_total")
	for j := range sampled {
		if errs[j] != nil {
			return false, errs[j]
		}
		sub := subs[j]
		steps.Add(int64(sub.ReexecSteps))
		out.CommBytes += sub.CommBytes
		out.CommitBytes += sub.CommitBytes
		out.ReexecSteps += sub.ReexecSteps
		out.LSHMisses += sub.LSHMisses
		out.DoubleChecks += sub.DoubleChecks
		if !oks[j] {
			out.FailReason = sub.FailReason
			return false, nil
		}
	}
	return true, nil
}

// verifyInterval checks the single sampled interval c → c+1. It returns
// (false, nil) with out.FailReason set on a protocol-level rejection and an
// error only on internal failures. parent is the submission's span. encBuf
// is the caller-owned leaf-encode scratch every opening check in this
// interval reuses (and possibly grows in place).
func (v *Verifier) verifyInterval(trainer *Trainer, opener ProofOpener, result *EpochResult, p TaskParams, c int, out *VerifyOutcome, parent *obs.Span, encBuf *[]byte) (bool, error) {
	// 1. Obtain and validate the interval's input weights against the
	// commitment.
	input, err := opener.OpenCheckpoint(c)
	if err != nil {
		out.FailReason = fmt.Sprintf("checkpoint %d not opened: %v", c, err)
		return false, nil
	}
	if *encBuf, err = v.checkOpening(opener, result, c, input, *encBuf, out); err != nil {
		out.FailReason = fmt.Sprintf("checkpoint %d opening rejected: %v", c, err)
		return false, nil
	}
	// Count the opened weights only now that the opening validated, so every
	// verifier path tallies the same bytes for the same verdict.
	out.CommBytes += int64(tensor.EncodedSize(len(input)))

	// 2. Re-execute the interval on the manager's hardware.
	startStep := c * p.CheckpointEvery
	steps := p.CheckpointEvery
	if startStep+steps > p.Steps {
		steps = p.Steps - startStep
	}
	if steps <= 0 {
		out.FailReason = fmt.Sprintf("checkpoint %d maps past the epoch's steps", c)
		return false, nil
	}
	reexecSpan := v.observer().Start(parent, "verify.reproduce",
		obs.Int("checkpoint", int64(c)), obs.Int("steps", int64(steps)))
	reexec, err := trainer.ExecuteInterval(input, startStep, steps, p.Hyper, p.Nonce)
	reexecSpan.End()
	if err != nil {
		return false, fmt.Errorf("rpol verify re-execution: %w", err)
	}
	out.ReexecSteps += steps

	// 3. Compare outcomes.
	compareSpan := v.observer().Start(parent, "verify.compare", obs.Int("checkpoint", int64(c)))
	defer compareSpan.End()
	if v.Scheme == SchemeV1 {
		return v.compareRaw(opener, result, c, reexec, out, encBuf)
	}
	return v.compareLSH(opener, result, c, reexec, out, encBuf)
}

func (v *Verifier) lshFamily() *lsh.Family {
	if v.Scheme == SchemeV2 {
		return v.LSH
	}
	return nil
}

// maxVerifyCheckpoints bounds the checkpoint count a submission may claim
// before the verifier does any per-checkpoint work (sampling permutations,
// proof pulls). It matches the wire decoder's cap, so a submission that
// survived decoding is never rejected here for size alone.
const maxVerifyCheckpoints = 1 << 20

// checkOpening validates opened checkpoint weights against the submission's
// commitment at leaf idx: the legacy hash-list leaf check, or — under the
// streaming Merkle commitment — an inclusion proof pulled on demand from the
// opener. Pulled proof bytes are tallied into out only after the proof
// validates. buf is the caller's reused leaf-encode scratch.
func (v *Verifier) checkOpening(opener ProofOpener, result *EpochResult, idx int, weights tensor.Vector, buf []byte, out *VerifyOutcome) ([]byte, error) {
	fam := v.lshFamily()
	if !result.HasRoot {
		return verifyOpening(result, fam, idx, weights, buf)
	}
	lp, err := v.pullProof(opener, result, idx)
	if err != nil {
		return buf, err
	}
	if fam == nil {
		// v1: the leaf is the raw weight encoding the verifier recomputes.
		buf = weights.AppendEncode(buf[:0])
		if err := commitment.VerifyMerkle(result.MerkleRoot, result.NumCheckpoints, buf, lp.Proof); err != nil {
			return buf, err
		}
	} else {
		// v2: the proof authenticates the committed digest encoding; the
		// opened weights must hash to exactly that digest.
		if err := commitment.VerifyMerkle(result.MerkleRoot, result.NumCheckpoints, lp.Digest, lp.Proof); err != nil {
			return buf, err
		}
		d, err := fam.Hash(weights)
		if err != nil {
			return buf, fmt.Errorf("rpol opening %d: %w", idx, err)
		}
		buf = d.AppendEncode(buf[:0])
		if !bytes.Equal(buf, lp.Digest) {
			return buf, fmt.Errorf("leaf %d: %w", idx, commitment.ErrMismatch)
		}
	}
	tallyPull(out, lp)
	return buf, nil
}

// pullProof requests the inclusion proof for leaf idx from the opener and
// performs the checks every pull needs: the worker answered for the leaf that
// was asked, and under v2 a committed digest rides along. Authentication
// against the root is the caller's job (the authenticated payload differs
// between v1 and v2).
func (v *Verifier) pullProof(opener ProofOpener, result *EpochResult, idx int) (LeafProof, error) {
	lp, err := opener.OpenProof(idx)
	if err != nil {
		return LeafProof{}, fmt.Errorf("proof %d not opened: %w", idx, err)
	}
	if lp.Proof.Index != idx {
		return LeafProof{}, fmt.Errorf("proof answers leaf %d, want %d", lp.Proof.Index, idx)
	}
	if v.lshFamily() != nil && len(lp.Digest) == 0 {
		return LeafProof{}, fmt.Errorf("proof %d carries no digest", idx)
	}
	return lp, nil
}

// tallyPull credits a validated proof pull to the outcome's byte accounting.
func tallyPull(out *VerifyOutcome, lp LeafProof) {
	n := int64(lp.Size())
	out.CommitBytes += n
	out.CommBytes += n
}

// digestsEqual reports exact (not fuzzy) digest equality.
func digestsEqual(a, b lsh.Digest) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// compareRaw is RPoLv1: fetch the raw output weights and compare Euclidean
// distance against Beta.
func (v *Verifier) compareRaw(opener ProofOpener, result *EpochResult, c int, reexec tensor.Vector, out *VerifyOutcome, encBuf *[]byte) (bool, error) {
	output, err := opener.OpenCheckpoint(c + 1)
	if err != nil {
		out.FailReason = fmt.Sprintf("checkpoint %d not opened: %v", c+1, err)
		return false, nil
	}
	if *encBuf, err = v.checkOpening(opener, result, c+1, output, *encBuf, out); err != nil {
		out.FailReason = fmt.Sprintf("checkpoint %d opening rejected: %v", c+1, err)
		return false, nil
	}
	out.CommBytes += int64(tensor.EncodedSize(len(output)))
	dist, err := tensor.Distance(reexec, output)
	if err != nil {
		return false, fmt.Errorf("rpol verify distance: %w", err)
	}
	if dist >= v.Beta {
		out.FailReason = fmt.Sprintf("checkpoint %d: distance %.6g ≥ β %.6g", c, dist, v.Beta)
		return false, nil
	}
	return true, nil
}

// compareLSH is RPoLv2: fuzzy-match the re-executed weights' digest against
// the committed digest; on a miss fall back to the raw-weight double-check,
// which guarantees rewards for honesty at the cost of one extra transfer.
func (v *Verifier) compareLSH(opener ProofOpener, result *EpochResult, c int, reexec tensor.Vector, out *VerifyOutcome, encBuf *[]byte) (bool, error) {
	var committed lsh.Digest
	if result.HasRoot {
		// The digest rides with its inclusion proof: pull, authenticate
		// against the root, then decode. Only this pull costs bytes — the
		// legacy scheme already shipped every digest with the submission.
		lp, err := v.pullProof(opener, result, c+1)
		if err != nil {
			out.FailReason = fmt.Sprintf("checkpoint %d digest not committed: %v", c+1, err)
			return false, nil
		}
		if committed, err = lsh.DecodeDigest(lp.Digest); err != nil {
			out.FailReason = fmt.Sprintf("checkpoint %d digest malformed: %v", c+1, err)
			return false, nil
		}
		tallyPull(out, lp)
	} else {
		committed = result.LSHDigests[c+1]
		// The revealed digest must be exactly what was committed. Its bytes
		// are not tallied here: the legacy submission already shipped every
		// digest inline, counted once in CommitBytes.
		*encBuf = committed.AppendEncode((*encBuf)[:0])
		if err := result.Commit.VerifyLeaf(c+1, *encBuf); err != nil {
			out.FailReason = fmt.Sprintf("checkpoint %d digest not committed: %v", c+1, err)
			return false, nil
		}
	}
	mine, err := v.LSH.Hash(reexec)
	if err != nil {
		return false, fmt.Errorf("rpol verify lsh: %w", err)
	}
	v.observer().Counter("rpol_lsh_compares_total").Inc()
	if lsh.Match(mine, committed) {
		return true, nil
	}
	out.LSHMisses++
	v.observer().Counter("rpol_lsh_misses_total").Inc()
	if v.DisableDoubleCheck {
		out.FailReason = fmt.Sprintf("checkpoint %d: LSH mismatch (double-check disabled)", c)
		return false, nil
	}
	// Double-check: request the raw output weights once more and compare
	// distances directly (Sec. V-C).
	output, err := opener.OpenCheckpoint(c + 1)
	if err != nil {
		out.FailReason = fmt.Sprintf("double-check %d not opened: %v", c+1, err)
		return false, nil
	}
	if result.HasRoot {
		// The committed digest is already proof-authenticated above; the
		// opened weights must reproduce it exactly.
		d, err := v.LSH.Hash(output)
		if err != nil {
			return false, fmt.Errorf("rpol verify double-check lsh: %w", err)
		}
		if !digestsEqual(d, committed) {
			out.FailReason = fmt.Sprintf("double-check %d opening rejected: %v", c+1, commitment.ErrMismatch)
			return false, nil
		}
	} else if *encBuf, err = verifyOpening(result, v.LSH, c+1, output, *encBuf); err != nil {
		out.FailReason = fmt.Sprintf("double-check %d opening rejected: %v", c+1, err)
		return false, nil
	}
	out.CommBytes += int64(tensor.EncodedSize(len(output)))
	out.DoubleChecks++
	v.observer().Counter("rpol_double_checks_total").Inc()
	dist, err := tensor.Distance(reexec, output)
	if err != nil {
		return false, fmt.Errorf("rpol verify distance: %w", err)
	}
	if dist >= v.Beta {
		out.FailReason = fmt.Sprintf("checkpoint %d: double-check distance %.6g ≥ β %.6g", c, dist, v.Beta)
		return false, nil
	}
	return true, nil
}

// NewManagerDevice builds the manager's verification device on the given
// profile.
func NewManagerDevice(profile gpu.Profile, runSeed int64) (*gpu.Device, error) {
	return gpu.NewDevice(profile, runSeed)
}
