package rpol

import (
	"testing"

	"rpol/internal/checkpoint"
	"rpol/internal/fsio"
	"rpol/internal/gpu"
	"rpol/internal/tensor"
)

func TestHonestWorkerWithDiskStore(t *testing.T) {
	net, ds := testTask(t, 12)
	worker, err := NewHonestWorker("w", gpu.GA10, 5, net, ds)
	if err != nil {
		t.Fatal(err)
	}
	store, err := checkpoint.NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	worker.SetStore(store)

	p := testParams(net.ParamVector())
	result, err := worker.RunEpoch(p)
	if err != nil {
		t.Fatal(err)
	}
	if store.Len() != result.NumCheckpoints {
		t.Errorf("store holds %d of %d checkpoints", store.Len(), result.NumCheckpoints)
	}
	// Each on-disk snapshot carries the checksummed-frame overhead on top of
	// its wire encoding.
	wantBytes := int64(result.NumCheckpoints * (tensor.EncodedSize(len(p.Global)) + fsio.FileOverhead))
	if worker.StorageBytes() != wantBytes {
		t.Errorf("StorageBytes = %d, want %d", worker.StorageBytes(), wantBytes)
	}

	// Verification works end-to-end through the disk round trip.
	netV, _ := testTask(t, 12)
	device, err := gpu.NewDevice(gpu.G3090, 6)
	if err != nil {
		t.Fatal(err)
	}
	verifier := &Verifier{
		Scheme: SchemeV1, Net: netV, Device: device,
		Beta: 0.05, Samples: 3, Sampler: tensor.NewRNG(7),
	}
	out, err := verifier.VerifySubmission(worker, ds, result, p)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Accepted {
		t.Fatalf("disk-stored worker rejected: %s", out.FailReason)
	}

	// A new epoch clears the previous epoch's proofs.
	p2 := p
	p2.Epoch = 1
	p2.Global = worker.LastTrace().Final()
	result2, err := worker.RunEpoch(p2)
	if err != nil {
		t.Fatal(err)
	}
	if store.Len() != result2.NumCheckpoints {
		t.Errorf("store holds %d after second epoch", store.Len())
	}
}

func TestStorageBytesWithoutStore(t *testing.T) {
	net, ds := testTask(t, 13)
	worker, err := NewHonestWorker("w", gpu.GA10, 5, net, ds)
	if err != nil {
		t.Fatal(err)
	}
	if worker.StorageBytes() != 0 {
		t.Error("fresh worker should report zero storage")
	}
	p := testParams(net.ParamVector())
	result, err := worker.RunEpoch(p)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(result.NumCheckpoints * tensor.EncodedSize(len(p.Global)))
	if worker.StorageBytes() != want {
		t.Errorf("StorageBytes = %d, want %d", worker.StorageBytes(), want)
	}
}
