package rpol

import (
	"errors"
	"fmt"
	"testing"

	"rpol/internal/dataset"
	"rpol/internal/gpu"
	"rpol/internal/nn"
)

// flakyWorker wraps a Worker and fails collection with ErrWorkerUnavailable
// on the configured epochs, imitating a transport that exhausted its retry
// budget against a crashed peer.
type flakyWorker struct {
	Worker
	downEpochs map[int]bool
}

func (f *flakyWorker) RunEpoch(p TaskParams) (*EpochResult, error) {
	if f.downEpochs[p.Epoch] {
		return nil, fmt.Errorf("test: %s down: %w", f.Worker.ID(), ErrWorkerUnavailable)
	}
	return f.Worker.RunEpoch(p)
}

// buildQuorumPool assembles n honest workers, marking worker 0 down for
// epoch 0, under the given quorum and collection mode.
func buildQuorumPool(t *testing.T, quorum int, concurrent bool) *Manager {
	t.Helper()
	const n = 3
	ds, err := dataset.Generate(dataset.Config{
		Name: "quorum-pool", NumClasses: 4, Dim: 8, Size: 1200, ClusterStd: 0.4, Seed: 55,
	})
	if err != nil {
		t.Fatal(err)
	}
	shards, err := ds.Partition(n + 1)
	if err != nil {
		t.Fatal(err)
	}
	profiles := gpu.Profiles()
	workers := make([]Worker, n)
	shardMap := make(map[string]*dataset.Dataset, n)
	for i := 0; i < n; i++ {
		net, _ := testTask(t, 30)
		id := "w" + string(rune('A'+i))
		w, err := NewHonestWorker(id, profiles[i%len(profiles)], int64(1000+i), net, shards[i])
		if err != nil {
			t.Fatal(err)
		}
		workers[i] = w
		shardMap[id] = shards[i]
	}
	workers[0] = &flakyWorker{Worker: workers[0], downEpochs: map[int]bool{0: true}}
	mgr, err := NewManager(ManagerConfig{
		Address:              "pool-manager",
		Scheme:               SchemeV2,
		Hyper:                Hyper{Optimizer: "sgdm", LR: 0.05, BatchSize: 8},
		StepsPerEpoch:        15,
		CheckpointEvery:      5,
		Samples:              3,
		GPU:                  gpu.G3090,
		MasterKey:            []byte("master"),
		Seed:                 99,
		Quorum:               quorum,
		ConcurrentCollection: concurrent,
	}, mustNet(t), workers, shardMap, shards[n])
	if err != nil {
		t.Fatal(err)
	}
	return mgr
}

func mustNet(t *testing.T) *nn.Network {
	t.Helper()
	net, _ := testTask(t, 30)
	return net
}

func TestManagerQuorumRecordsAbsent(t *testing.T) {
	for _, concurrent := range []bool{false, true} {
		t.Run(fmt.Sprintf("concurrent=%v", concurrent), func(t *testing.T) {
			mgr := buildQuorumPool(t, 1, concurrent)
			report, err := mgr.RunEpoch()
			if err != nil {
				t.Fatal(err)
			}
			if report.Absent != 1 || report.Accepted != 2 || report.Rejected != 0 {
				t.Fatalf("absent=%d accepted=%d rejected=%d, want 1/2/0",
					report.Absent, report.Accepted, report.Rejected)
			}
			if len(report.Outcomes) != 3 {
				t.Fatalf("outcomes = %d, want one per worker", len(report.Outcomes))
			}
			o := report.Outcomes[0]
			if o.Outcome != OutcomeAbsent || o.Accepted || o.WorkerID != "wA" {
				t.Fatalf("worker 0 outcome = %+v, want absent wA", o)
			}
			for _, o := range report.Outcomes[1:] {
				if o.Outcome != OutcomeAccepted || !o.Accepted {
					t.Fatalf("responsive worker outcome = %+v", o)
				}
			}

			// Epoch 1: the worker is back; everyone participates again.
			report, err = mgr.RunEpoch()
			if err != nil {
				t.Fatal(err)
			}
			if report.Absent != 0 || report.Accepted != 3 {
				t.Fatalf("epoch 1: absent=%d accepted=%d, want 0/3", report.Absent, report.Accepted)
			}
		})
	}
}

func TestManagerStrictModeAbortsOnUnavailable(t *testing.T) {
	// Quorum 0 keeps the historical behaviour: any collection failure,
	// including an availability one, aborts the epoch.
	mgr := buildQuorumPool(t, 0, false)
	if _, err := mgr.RunEpoch(); !errors.Is(err, ErrWorkerUnavailable) {
		t.Fatalf("err = %v, want the collection failure surfaced", err)
	}
}

func TestManagerQuorumNotMet(t *testing.T) {
	// Quorum 3 with one of three workers down: the epoch must fail with an
	// availability error rather than settle.
	mgr := buildQuorumPool(t, 3, false)
	_, err := mgr.RunEpoch()
	if !errors.Is(err, ErrWorkerUnavailable) {
		t.Fatalf("err = %v, want quorum failure wrapping ErrWorkerUnavailable", err)
	}
}

func TestOutcomeString(t *testing.T) {
	cases := map[Outcome]string{
		OutcomeAccepted: "accepted",
		OutcomeRejected: "rejected",
		OutcomeAbsent:   "absent",
		Outcome(0):      "unknown",
	}
	for o, want := range cases {
		if o.String() != want {
			t.Errorf("Outcome(%d).String() = %q, want %q", o, o.String(), want)
		}
	}
}
