package rpol

import (
	"fmt"

	"rpol/internal/dataset"
	"rpol/internal/gpu"
	"rpol/internal/nn"
	"rpol/internal/obs"
	"rpol/internal/parallel"
	"rpol/internal/prf"
	"rpol/internal/tensor"
)

// Trainer executes the mini-batch stochastic-yet-deterministic gradient
// descent of Sec. V-B over a worker's shard: batch m consists of the
// elements PRF(N·m + n) mod |D_w|, so the manager can re-execute any step
// bit-for-bit (up to hardware noise) during verification.
//
// Optimizer state (momentum, second moments) is reset at every checkpoint
// boundary so that each checkpoint interval is a self-contained function of
// its starting weights — otherwise the manager could not re-execute a
// sampled interval without also receiving the optimizer state. This is the
// one protocol detail the paper leaves implicit; see DESIGN.md.
type Trainer struct {
	// Net is the model architecture; its parameters are overwritten by the
	// weights being trained.
	Net *nn.Network
	// Shard is the worker's sub-dataset D_w.
	Shard *dataset.Dataset
	// Device injects per-step hardware noise; nil trains noiselessly (used
	// in tests).
	Device *gpu.Device
	// Steps, when set, counts every executed training step. The owner wires
	// the counter that names the work correctly — rpol_train_steps_total for
	// workers, rpol_reexec_steps_total for verification re-execution,
	// rpol_probe_steps_total for calibration probes — so one trainer type
	// serves all three without double counting.
	Steps *obs.Counter
	// Workers selects the training runtime: 0 keeps the historical serial
	// TrainBatch path, any n ≥ 1 trains each batch through the chunked
	// deterministic runtime of internal/parallel (nn.BatchTrainer), whose
	// results are bit-identical for every n. RunEpoch adopts the task's
	// TaskParams.Workers; verification sets the field directly.
	Workers int
	// Sink, when set, receives every checkpoint the moment RunEpoch snapshots
	// it (index 0 carries the initial weights). Workers use it to stream
	// checkpoints to durable storage as they are produced, so a crash loses
	// at most the interval in flight. A Sink error aborts the epoch.
	Sink func(idx, step int, w tensor.Vector) error

	// Lazily-built parallel runtime (first parallel training step).
	pool *parallel.Pool
	bt   *nn.BatchTrainer
}

// SetWorkers reconfigures the training runtime, discarding any replicas
// built for a previous worker count. Results are unchanged for any n ≥ 1.
func (t *Trainer) SetWorkers(n int) {
	if n == t.Workers {
		return
	}
	t.Workers = n
	t.pool = nil
	t.bt = nil
}

// trainStep runs one optimization step through the runtime Workers selects.
func (t *Trainer) trainStep(xs []tensor.Vector, labels []int, opt nn.Optimizer) (float64, error) {
	if t.Workers <= 0 {
		return t.Net.TrainBatch(xs, labels, opt)
	}
	if t.bt == nil {
		t.pool = parallel.New(t.Workers)
		bt, err := nn.NewBatchTrainer(t.Net, t.pool)
		if err != nil {
			return 0, fmt.Errorf("rpol parallel trainer: %w", err)
		}
		t.bt = bt
	}
	return t.bt.TrainBatch(xs, labels, opt)
}

// batch materializes the deterministic batch for the given step.
func (t *Trainer) batch(p *prf.PRF, step, batchSize int) ([]tensor.Vector, []int, error) {
	idxs, err := p.BatchIndices(step, batchSize, t.Shard.Len())
	if err != nil {
		return nil, nil, fmt.Errorf("rpol batch at step %d: %w", step, err)
	}
	xs := make([]tensor.Vector, len(idxs))
	labels := make([]int, len(idxs))
	for i, idx := range idxs {
		ex, err := t.Shard.At(idx)
		if err != nil {
			return nil, nil, fmt.Errorf("rpol batch at step %d: %w", step, err)
		}
		xs[i] = ex.Features
		labels[i] = ex.Label
	}
	return xs, labels, nil
}

// ExecuteInterval trains from `start` weights for `steps` steps beginning at
// training step startStep, returning the resulting weights. It is used both
// by workers (per checkpoint interval) and by the manager when re-executing
// a sampled interval during verification.
func (t *Trainer) ExecuteInterval(start tensor.Vector, startStep, steps int, h Hyper, nonce prf.Nonce) (tensor.Vector, error) {
	if err := t.Net.SetParamVector(start); err != nil {
		return nil, fmt.Errorf("rpol interval: %w", err)
	}
	opt, err := nn.NewOptimizer(h.Optimizer, h.LR)
	if err != nil {
		return nil, fmt.Errorf("rpol interval: %w", err)
	}
	schedule := prf.NewFromNonce(nonce)
	for s := 0; s < steps; s++ {
		xs, labels, err := t.batch(schedule, startStep+s, h.BatchSize)
		if err != nil {
			return nil, err
		}
		if _, err := t.trainStep(xs, labels, opt); err != nil {
			return nil, fmt.Errorf("rpol interval step %d: %w", startStep+s, err)
		}
		if t.Device != nil {
			for _, param := range t.Net.Params() {
				t.Device.Perturb(param)
			}
		}
	}
	t.Steps.Add(int64(steps))
	return t.Net.ParamVector(), nil
}

// RunEpoch trains a full epoch per the task parameters, snapshotting
// checkpoints every CheckpointEvery steps (including the initial weights
// and the final weights). It returns the trace of snapshots.
func (t *Trainer) RunEpoch(p TaskParams) (*Trace, error) {
	return t.ResumeEpoch(p, nil)
}

// ResumeEpoch is RunEpoch continuing from an already-trained prefix of the
// same epoch (recovered checkpoints). The prefix's snapshots are adopted
// verbatim — the Sink sees only checkpoints produced by this call — and
// training restarts at the prefix's last step. Optimizer state resets at
// every checkpoint boundary and batches are a pure function of the step
// index, so a prefix-resumed epoch is bit-identical to an uninterrupted one
// provided the Device's noise stream was fast-forwarded (FastForward) past
// the prefix's steps. A nil or empty prefix is a fresh epoch.
func (t *Trainer) ResumeEpoch(p TaskParams, prefix *Trace) (*Trace, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	t.SetWorkers(p.Workers)
	trace := &Trace{}
	if prefix != nil && len(prefix.Checkpoints) > 0 {
		if len(prefix.Checkpoints) != len(prefix.Steps) {
			return nil, fmt.Errorf("rpol resume: prefix has %d checkpoints, %d steps",
				len(prefix.Checkpoints), len(prefix.Steps))
		}
		for i, w := range prefix.Checkpoints {
			trace.Checkpoints = append(trace.Checkpoints, w.Clone())
			trace.Steps = append(trace.Steps, prefix.Steps[i])
		}
	} else {
		trace.Checkpoints = []tensor.Vector{p.Global.Clone()}
		trace.Steps = []int{0}
		if err := t.emit(trace); err != nil {
			return nil, err
		}
	}
	cur := trace.Checkpoints[len(trace.Checkpoints)-1].Clone()
	step := trace.Steps[len(trace.Steps)-1]
	for step < p.Steps {
		interval := p.CheckpointEvery
		if step+interval > p.Steps {
			interval = p.Steps - step
		}
		next, err := t.ExecuteInterval(cur, step, interval, p.Hyper, p.Nonce)
		if err != nil {
			return nil, err
		}
		step += interval
		cur = next
		trace.Checkpoints = append(trace.Checkpoints, cur.Clone())
		trace.Steps = append(trace.Steps, step)
		if err := t.emit(trace); err != nil {
			return nil, err
		}
	}
	return trace, nil
}

// emit streams the trace's newest checkpoint to the Sink, if any.
func (t *Trainer) emit(trace *Trace) error {
	if t.Sink == nil {
		return nil
	}
	idx := len(trace.Checkpoints) - 1
	if err := t.Sink(idx, trace.Steps[idx], trace.Checkpoints[idx]); err != nil {
		return fmt.Errorf("rpol checkpoint sink at %d: %w", idx, err)
	}
	return nil
}

// FastForward advances the trainer's device noise stream past the given
// number of already-executed training steps without training. Each live
// step perturbs every parameter tensor once, so the skip replays exactly
// that pattern. No-op without a device.
func (t *Trainer) FastForward(steps int) {
	if t.Device == nil {
		return
	}
	params := t.Net.Params()
	for s := 0; s < steps; s++ {
		for _, p := range params {
			t.Device.SkipPerturb(len(p))
		}
	}
}

// Final returns the last checkpoint of the trace (the epoch's final
// weights).
func (tr *Trace) Final() tensor.Vector {
	if len(tr.Checkpoints) == 0 {
		return nil
	}
	return tr.Checkpoints[len(tr.Checkpoints)-1]
}

// Update computes the local model update L = final − initial submitted for
// aggregation (Eq. 1).
func (tr *Trace) Update() (tensor.Vector, error) {
	if len(tr.Checkpoints) < 2 {
		return nil, fmt.Errorf("rpol: trace has %d checkpoints", len(tr.Checkpoints))
	}
	return tr.Final().Sub(tr.Checkpoints[0])
}

// BindFinalCheckpoint computes the update L = final − θ_t and rewrites the
// trace's final checkpoint as θ_t + L before the trace is committed.
//
// The rewrite exists because the verifier binds the submitted update to the
// commitment by reconstructing θ_t + L and hashing it — and floating-point
// addition does not exactly invert subtraction (fl(g + fl(f−g)) can differ
// from f by an ulp). Re-adding the computed update on the worker's side
// makes the committed bytes identical to the verifier's reconstruction,
// while perturbing the actual final weights by at most one ulp per element
// — orders of magnitude below any reproduction-error tolerance β.
func BindFinalCheckpoint(tr *Trace, global tensor.Vector) (tensor.Vector, error) {
	if len(tr.Checkpoints) < 2 {
		return nil, fmt.Errorf("rpol: trace has %d checkpoints", len(tr.Checkpoints))
	}
	update, err := tr.Final().Sub(global)
	if err != nil {
		return nil, fmt.Errorf("rpol bind final: %w", err)
	}
	bound, err := global.Add(update)
	if err != nil {
		return nil, fmt.Errorf("rpol bind final: %w", err)
	}
	tr.Checkpoints[len(tr.Checkpoints)-1] = bound
	return update, nil
}

// IntervalSteps returns the number of training steps between checkpoint idx
// and idx+1.
func (tr *Trace) IntervalSteps(idx int) (startStep, steps int, err error) {
	if idx < 0 || idx+1 >= len(tr.Steps) {
		return 0, 0, fmt.Errorf("rpol: interval %d of %d checkpoints", idx, len(tr.Steps))
	}
	return tr.Steps[idx], tr.Steps[idx+1] - tr.Steps[idx], nil
}
