package rpol

import (
	"errors"
	"fmt"
	"sync"

	"rpol/internal/dataset"
	"rpol/internal/gpu"
	"rpol/internal/lsh"
	"rpol/internal/nn"
	"rpol/internal/obs"
	"rpol/internal/tensor"
)

// VerifierPool implements the decentralized verification the paper lists as
// future work (Sec. IX): instead of the manager re-executing every sampled
// interval itself, a set of verifier nodes (e.g. trusted delegates or the
// manager's own machines) check submissions in parallel. Each submission is
// still verified end-to-end by a single verifier — the protocol's sampling
// and commitment logic is unchanged — but distinct submissions proceed
// concurrently, dividing the manager's verification latency by the number
// of verifiers.
type VerifierPool struct {
	verifiers []*Verifier
}

// NewVerifierPool builds n independent verifiers sharing a configuration.
// Each verifier gets its own network instance (re-execution overwrites
// weights), its own device (seeded from seed+i), and its own sampling RNG,
// so verifications are deterministic per submission index regardless of
// scheduling.
func NewVerifierPool(n int, scheme Scheme, buildNet func() (*nn.Network, error), profile gpu.Profile, beta float64, fam *lsh.Family, samples int, seed int64) (*VerifierPool, error) {
	if n < 1 {
		return nil, errors.New("rpol: verifier pool needs at least one verifier")
	}
	if buildNet == nil {
		return nil, errors.New("rpol: verifier pool needs a network builder")
	}
	pool := &VerifierPool{verifiers: make([]*Verifier, n)}
	for i := 0; i < n; i++ {
		net, err := buildNet()
		if err != nil {
			return nil, fmt.Errorf("rpol verifier %d: %w", i, err)
		}
		device, err := gpu.NewDevice(profile, seed+int64(i))
		if err != nil {
			return nil, fmt.Errorf("rpol verifier %d: %w", i, err)
		}
		pool.verifiers[i] = &Verifier{
			Scheme:  scheme,
			Net:     net,
			Device:  device,
			Beta:    beta,
			LSH:     fam,
			Samples: samples,
			Sampler: tensor.NewRNG(seed + 1000 + int64(i)),
		}
	}
	return pool, nil
}

// Size returns the number of parallel verifiers.
func (vp *VerifierPool) Size() int { return len(vp.verifiers) }

// SetObserver routes every verifier's metrics and spans through o. The
// obs instruments are concurrency-safe, so parallel verifiers may share
// them.
func (vp *VerifierPool) SetObserver(o *obs.Observer) {
	for _, v := range vp.verifiers {
		v.Obs = o
	}
}

// Submission bundles one worker's verification inputs.
type Submission struct {
	Opener ProofOpener
	Shard  *dataset.Dataset
	Result *EpochResult
	Params TaskParams
}

// VerifyAll checks every submission, distributing them across the pool's
// verifiers. Results are returned in submission order. The first internal
// error aborts the batch; protocol-level rejections are reported in the
// outcomes, not as errors.
func (vp *VerifierPool) VerifyAll(subs []Submission) ([]*VerifyOutcome, error) {
	outcomes := make([]*VerifyOutcome, len(subs))
	errs := make([]error, len(vp.verifiers))

	var wg sync.WaitGroup
	for vi, v := range vp.verifiers {
		// Verifier vi handles submissions vi, vi+n, vi+2n, … — a static
		// assignment, so each (submission, verifier) pairing is
		// deterministic.
		wg.Add(1)
		go func(vi int, v *Verifier) {
			defer wg.Done()
			for si := vi; si < len(subs); si += len(vp.verifiers) {
				sub := subs[si]
				out, err := v.VerifySubmission(sub.Opener, sub.Shard, sub.Result, sub.Params)
				if err != nil {
					errs[vi] = fmt.Errorf("submission %d: %w", si, err)
					return
				}
				outcomes[si] = out
			}
		}(vi, v)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return outcomes, nil
}
