package rpol

import (
	"testing"

	"rpol/internal/commitment"
	"rpol/internal/tensor"
)

// forgedDigestOpener serves the honest digest but with a garbage Merkle
// proof — a worker answering adaptively with material never committed.
type forgedDigestOpener struct {
	inner ProofOpener
}

func (o *forgedDigestOpener) OpenCheckpoint(idx int) (tensor.Vector, error) {
	return o.inner.OpenCheckpoint(idx)
}

func (o *forgedDigestOpener) OpenProof(idx int) (LeafProof, error) {
	lp, err := o.inner.OpenProof(idx)
	if err != nil {
		return lp, err
	}
	// Zero the siblings: this proof does NOT authenticate against the root.
	for i := range lp.Proof.Siblings {
		lp.Proof.Siblings[i] = commitment.Hash{}
	}
	return lp, nil
}

func TestPoCCompareLSHAcceptsUnauthenticatedDigest(t *testing.T) {
	worker, result, p, verifier, ds := buildMerkleSetup(t, SchemeV2)
	_ = ds
	// Sanity: the garbage proof must fail root verification.
	opener := &forgedDigestOpener{inner: worker}
	lp, err := opener.OpenProof(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := commitment.VerifyMerkle(result.MerkleRoot, result.NumCheckpoints, lp.Digest, lp.Proof); err == nil {
		t.Fatal("sanity: zeroed-sibling proof unexpectedly verifies")
	}
	// Re-execute interval 0 honestly so compareLSH's reexec matches.
	reexec, err := worker.OpenCheckpoint(1)
	if err != nil {
		t.Fatal(err)
	}
	out := &VerifyOutcome{}
	var encBuf []byte
	ok, err := verifier.compareLSH(opener, result, 0, reexec, out, &encBuf)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Log("VULNERABILITY CONFIRMED: compareLSH accepted a digest whose Merkle proof does not verify against the committed root")
		t.Fail()
	}
	_ = p
}
