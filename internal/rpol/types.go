// Package rpol implements the RPoL protocol: robust and efficient proof of
// learning for secure pooled mining (Sec. IV–V of the paper).
//
// The protocol has three pieces, all implemented here:
//
//   - Deterministic local training with checkpointing. Workers train with
//     the mini-batch stochastic-yet-deterministic gradient descent schedule
//     (batches chosen by a manager-issued PRF nonce) and snapshot raw model
//     weights every CheckpointEvery steps.
//   - Commitment-based secure sampling. Workers publish a binding
//     commitment over all checkpoints before the manager reveals which
//     checkpoints it will verify; the manager re-executes the sampled
//     intervals and compares outcomes.
//   - LSH-based fuzzy verification (RPoLv2). Instead of shipping raw output
//     weights for every sample, workers commit LSH digests; the manager
//     matches its re-executed weights against the committed digest and only
//     falls back to raw weights (the double-check) on an LSH miss.
//
// The manager-side adaptive calibration (α, β, and the LSH parameters) and
// the model aggregation rule (Eq. 1) live here too.
package rpol

import (
	"errors"

	"rpol/internal/commitment"
	"rpol/internal/gpu"
	"rpol/internal/lsh"
	"rpol/internal/obs"
	"rpol/internal/prf"
	"rpol/internal/tensor"
)

// Scheme selects the verification variant under evaluation (Sec. VII-E).
type Scheme int

const (
	// SchemeBaseline is the insecure baseline: no verification at all.
	SchemeBaseline Scheme = iota + 1
	// SchemeV1 is RPoLv1: sampling-based re-execution with raw-weight
	// commitments and Euclidean-distance comparison.
	SchemeV1
	// SchemeV2 is RPoLv2: sampling-based re-execution with LSH-digest
	// commitments, fuzzy matching, and the double-check fallback.
	SchemeV2
)

// String names the scheme as in the paper's tables.
func (s Scheme) String() string {
	switch s {
	case SchemeBaseline:
		return "baseline"
	case SchemeV1:
		return "RPoLv1"
	case SchemeV2:
		return "RPoLv2"
	default:
		return "unknown"
	}
}

// Hyper bundles the training hyper-parameters the manager distributes with
// each epoch (the paper's ζ).
type Hyper struct {
	Optimizer string  // "sgd" | "sgdm" | "rmsprop" | "adam"
	LR        float64 // learning rate
	BatchSize int
}

// TaskParams is everything a worker needs to run one epoch of its sub-task
// (step ② of Fig. 2).
type TaskParams struct {
	Epoch  int
	Global tensor.Vector // latest global model weights θ^t
	Hyper  Hyper
	Nonce  prf.Nonce // per-(worker, epoch) batch-schedule nonce
	Steps  int       // training steps this epoch
	// CheckpointEvery is the paper's checkpoint interval i (default 5,
	// Sec. VII-A).
	CheckpointEvery int
	// LSH carries the calibrated family for RPoLv2 commitments; nil under
	// RPoLv1 or the baseline.
	LSH *lsh.Family
	// MerkleCommit selects the streaming Merkle commitment: the worker
	// builds a Merkle tree over the checkpoint leaves incrementally during
	// training, submits only the 32-byte root plus the leaf count, and
	// serves O(log n) inclusion proofs on demand through OpenProof. When
	// false the legacy hash-list commitment ships all n leaf digests (and,
	// under v2, all n LSH digests) inline with the submission. The flag is
	// transmitted with the task so remote workers commit in the form the
	// manager will verify.
	MerkleCommit bool
	// Trace is the observability span covering this worker's epoch — a
	// process-local handle, never transmitted (the wire encoding drops it).
	// Workers nest their training and commitment spans under it; the
	// verifier nests the submission's verification under it too, giving the
	// manager → worker → verify span hierarchy.
	Trace *obs.Span
	// Workers sizes the deterministic compute pool for this task's batch
	// training and commitment hashing: 0 keeps the historical serial code
	// paths, and any n ≥ 1 runs the chunked runtime of internal/parallel,
	// whose results are bit-identical for every n. Like Trace it is a
	// process-local execution knob, never transmitted (the wire encoding
	// drops it) — it configures how a machine computes, not what the
	// protocol computes.
	Workers int
}

// Validate checks the parameters a worker must refuse to train under.
func (p TaskParams) Validate() error {
	switch {
	case len(p.Global) == 0:
		return errors.New("rpol: empty global model")
	case p.Hyper.BatchSize < 1:
		return errors.New("rpol: batch size must be positive")
	case p.Hyper.LR <= 0:
		return errors.New("rpol: learning rate must be positive")
	case p.Steps < 1:
		return errors.New("rpol: need at least one training step")
	case p.CheckpointEvery < 1:
		return errors.New("rpol: checkpoint interval must be positive")
	}
	return nil
}

// NumCheckpoints returns the number of snapshots an epoch produces,
// including the initial weights: checkpoints at steps 0, i, 2i, …, Steps.
func (p TaskParams) NumCheckpoints() int {
	n := p.Steps/p.CheckpointEvery + 1
	if p.Steps%p.CheckpointEvery != 0 {
		n++
	}
	return n
}

// Trace is a worker's private record of one epoch: every checkpoint snapshot
// it may later be asked to open. Honest workers populate it by training;
// adversaries forge parts of it.
type Trace struct {
	Checkpoints []tensor.Vector // snapshots at steps 0, i, 2i, …, Steps
	Steps       []int           // training step of each snapshot
}

// EpochResult is what a worker submits to the manager at the end of a local
// epoch (step ③ of Fig. 2): the model update, the binding commitment over
// its checkpoints, and bookkeeping for the cost model.
type EpochResult struct {
	WorkerID string
	Epoch    int
	// Update is the local model delta L_t^w = θ_final − θ^t.
	Update tensor.Vector
	// DataSize is |D_w|, the worker's shard size, for Eq. (1) weighting.
	DataSize int
	// Commit binds the checkpoint payloads (raw-weight hashes under v1,
	// LSH digests under v2) in the legacy hash-list form; nil under the
	// streaming Merkle commitment.
	Commit *commitment.HashList
	// LSHDigests are the per-checkpoint digests under RPoLv2 (nil under v1);
	// Commit's leaves are their hashes, so revealing a digest is verifiable.
	// Nil under the Merkle commitment, where each sampled digest instead
	// rides along with its inclusion proof.
	LSHDigests []lsh.Digest
	// NumCheckpoints is the committed snapshot count (including the initial
	// weights).
	NumCheckpoints int
	// MerkleRoot is the 32-byte streaming commitment root; meaningful only
	// when HasRoot is set, in which case Commit and LSHDigests are nil.
	MerkleRoot commitment.Hash
	// HasRoot marks a Merkle-committed submission.
	HasRoot bool
}

// LeafProof is a worker's answer to an on-demand proof pull under the Merkle
// commitment: the inclusion proof of the sampled leaf plus, under RPoLv2,
// the committed digest encoding the proof authenticates (nil under v1, where
// the leaf is the raw weight encoding the verifier recomputes itself).
type LeafProof struct {
	Proof  commitment.MerkleProof
	Digest []byte
}

// Size returns the proof pull's wire size in bytes.
func (lp LeafProof) Size() int { return lp.Proof.Size() + len(lp.Digest) }

// ProofOpener serves checkpoint-opening requests during verification. The
// honest implementation returns the stored trace snapshots; adversaries may
// return forgeries — the commitment check catches any snapshot that differs
// from what was committed.
type ProofOpener interface {
	// OpenCheckpoint returns the raw model weights of checkpoint idx.
	OpenCheckpoint(idx int) (tensor.Vector, error)
	// OpenProof returns the Merkle inclusion proof for leaf idx (plus the
	// committed digest under v2). Only meaningful for Merkle-committed
	// epochs; legacy hash-list epochs never ask.
	OpenProof(idx int) (LeafProof, error)
}

// Worker is one pool participant from the manager's perspective.
type Worker interface {
	ProofOpener
	// ID returns the worker's stable identifier.
	ID() string
	// GPUProfile returns the hardware the worker registered with; the
	// manager's calibration uses the pool's top-2 profiles (Sec. V-C).
	GPUProfile() gpu.Profile
	// RunEpoch executes the worker's sub-task for one epoch.
	RunEpoch(p TaskParams) (*EpochResult, error)
}

// EpochFastForwarder is implemented by workers whose stateful hardware
// noise stream must be advanced past epochs they trained before a crash.
// A resumed pool constructs fresh workers and fast-forwards each one by the
// number of epochs it actually trained (absent epochs consumed no noise),
// leaving its device bit-identical to an uninterrupted run's.
type EpochFastForwarder interface {
	// FastForwardEpochs advances past `epochs` fully-trained epochs of
	// stepsPerEpoch steps checkpointed every checkpointEvery steps.
	FastForwardEpochs(epochs, stepsPerEpoch, checkpointEvery int)
}

// Calibration is the output of the manager's adaptive LSH calibration for
// one epoch (Sec. V-C).
type Calibration struct {
	Alpha     float64    // tolerated reproduction-error bound (mean + std)
	Beta      float64    // spoof-distance threshold (x·α + y)
	Params    lsh.Params // optimized {r, k, l}
	WorstFNR  float64    // 1 − Pr_lsh(α) under Params
	WorstFPR  float64    // Pr_lsh(β) under Params
	MaxError  float64    // largest measured reproduction error
	NumProbes int        // checkpoints measured
}

// ErrWorkerUnavailable marks a worker that could not be reached within its
// deadline: requests timed out or the transport reported the peer gone.
// Transports wrap their terminal delivery failures in it so the manager can
// classify the worker as absent (OutcomeAbsent) rather than adversarial —
// an unreachable honest worker must never count toward FalseRejections.
var ErrWorkerUnavailable = errors.New("rpol: worker unavailable")

// Outcome classifies how a worker's epoch concluded from the manager's view.
type Outcome int

const (
	// OutcomeAccepted means the submission arrived and passed verification.
	OutcomeAccepted Outcome = iota + 1
	// OutcomeRejected means the submission arrived and failed verification.
	OutcomeRejected
	// OutcomeAbsent means no submission arrived within the worker's deadline
	// (crash, partition, or persistent loss). Absent workers are neither
	// accepted nor counted as detected adversaries.
	OutcomeAbsent
)

// String names the outcome for spans and reports.
func (o Outcome) String() string {
	switch o {
	case OutcomeAccepted:
		return "accepted"
	case OutcomeRejected:
		return "rejected"
	case OutcomeAbsent:
		return "absent"
	default:
		return "unknown"
	}
}

// VerifyOutcome describes the verification of one worker's submission.
type VerifyOutcome struct {
	WorkerID string
	Epoch    int
	Accepted bool
	// Outcome is the three-way classification; Accepted is retained for
	// compatibility and always equals (Outcome == OutcomeAccepted).
	Outcome Outcome
	// SampledCheckpoints are the interval start indices the manager chose.
	SampledCheckpoints []int
	// LSHMisses counts sampled intervals whose re-executed output failed
	// the LSH match (v2 only).
	LSHMisses int
	// DoubleChecks counts LSH misses resolved by requesting raw weights.
	DoubleChecks int
	// FailReason is empty when accepted.
	FailReason string
	// Comm tallies verification-only traffic in bytes, for Table III: the
	// commitment material (CommitBytes) plus every validated opening the
	// verifier pulled. Openings are counted only after they validate against
	// the commitment, so serial, parallel, and proof-pull verifiers report
	// identical bytes for the same verdict.
	CommBytes int64
	// CommitBytes is the commitment share of CommBytes: the full hash list
	// plus all inline LSH digests under the legacy scheme, or the 32-byte
	// root plus the pulled proofs (and their riding digests) under the
	// streaming Merkle scheme.
	CommitBytes int64
	// ReexecSteps counts training steps the manager re-executed, for the
	// computation-overhead accounting.
	ReexecSteps int
}
