package rpol

import (
	"errors"
	"testing"

	"rpol/internal/dataset"
	"rpol/internal/gpu"
	"rpol/internal/stats"
	"rpol/internal/tensor"
)

func TestCalibrateProducesUsableBounds(t *testing.T) {
	net, ds := testTask(t, 20)
	cal := &Calibrator{Net: net, Shard: ds, XFactor: 5, KLsh: 16}
	p := testParams(net.ParamVector())
	out, fam, err := cal.Calibrate(p, gpu.G3090, gpu.GA10, [2]int64{1, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if out.Alpha <= 0 {
		t.Errorf("alpha = %v", out.Alpha)
	}
	if out.Beta != 5*out.Alpha {
		t.Errorf("beta = %v, want 5α = %v", out.Beta, 5*out.Alpha)
	}
	if out.Params.K*out.Params.L > 16 {
		t.Errorf("LSH budget violated: %+v", out.Params)
	}
	if out.WorstFNR > 0.15 || out.WorstFPR > 0.15 {
		t.Errorf("worst-case rates too high: FNR %v FPR %v", out.WorstFNR, out.WorstFPR)
	}
	if fam == nil || fam.Dim() != len(p.Global) {
		t.Error("family missing or wrong dimension")
	}
	if out.NumProbes != p.NumCheckpoints()-1 {
		t.Errorf("probes = %d, want %d", out.NumProbes, p.NumCheckpoints()-1)
	}
}

func TestCalibrateBetaExceedsHonestErrors(t *testing.T) {
	// β from the top-2-GPU probe must upper-bound the reproduction errors of
	// an honest worker on slower hardware — the property that yields the
	// paper's 0-false-negative result (Sec. VII-D).
	net, ds := testTask(t, 21)
	cal := &Calibrator{Net: net, Shard: ds, XFactor: 5, KLsh: 16}
	p := testParams(net.ParamVector())
	out, _, err := cal.Calibrate(p, gpu.G3090, gpu.GA10, [2]int64{4, 5}, 6)
	if err != nil {
		t.Fatal(err)
	}
	errsList, err := cal.MeasureErrors(p, gpu.GA10, gpu.GP100, [2]int64{7, 8})
	if err != nil {
		t.Fatal(err)
	}
	s, err := stats.Summarize(errsList)
	if err != nil {
		t.Fatal(err)
	}
	if s.Max >= out.Beta {
		t.Errorf("honest max error %v exceeds β %v", s.Max, out.Beta)
	}
}

func TestCalibrateValidation(t *testing.T) {
	cal := &Calibrator{}
	if _, _, err := cal.Calibrate(TaskParams{}, gpu.G3090, gpu.GA10, [2]int64{1, 2}, 3); err == nil {
		t.Error("want error for calibrator without net/shard")
	}
}

func TestTraceDistances(t *testing.T) {
	a := &Trace{Checkpoints: []tensor.Vector{{0, 0}, {1, 0}, {2, 0}}}
	b := &Trace{Checkpoints: []tensor.Vector{{0, 0}, {1, 1}, {2, 2}}}
	ds, err := TraceDistances(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 2 || ds[0] != 1 || ds[1] != 2 {
		t.Errorf("distances = %v", ds)
	}
	if _, err := TraceDistances(a, &Trace{Checkpoints: []tensor.Vector{{0, 0}}}); err == nil {
		t.Error("want error for mismatched traces")
	}
	short := &Trace{Checkpoints: []tensor.Vector{{0, 0}}}
	if _, err := TraceDistances(short, short); !errors.Is(err, ErrNoErrors) {
		t.Errorf("err = %v", err)
	}
}

func TestAggregateEquation1(t *testing.T) {
	global := tensor.Vector{1, 1}
	updates := []*EpochResult{
		{WorkerID: "a", DataSize: 100, Update: tensor.Vector{2, 0}},
		{WorkerID: "b", DataSize: 300, Update: tensor.Vector{0, 4}},
	}
	next, err := Aggregate(global, updates, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	// weights: a 0.25, b 0.75 ⇒ θ = [1+0.5, 1+3]
	if !next.Equal(tensor.Vector{1.5, 4}, 1e-12) {
		t.Errorf("aggregate = %v", next)
	}
	// η scales the step.
	half, err := Aggregate(global, updates, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !half.Equal(tensor.Vector{1.25, 2.5}, 1e-12) {
		t.Errorf("aggregate η=0.5 = %v", half)
	}
}

func TestAggregateErrors(t *testing.T) {
	if _, err := Aggregate(tensor.Vector{1}, nil, 1); !errors.Is(err, ErrNothingToAggregate) {
		t.Errorf("err = %v", err)
	}
	bad := []*EpochResult{{WorkerID: "x", DataSize: 0, Update: tensor.Vector{1}}}
	if _, err := Aggregate(tensor.Vector{1}, bad, 1); err == nil {
		t.Error("want error for zero data size")
	}
	mismatch := []*EpochResult{{WorkerID: "x", DataSize: 1, Update: tensor.Vector{1, 2}}}
	if _, err := Aggregate(tensor.Vector{1}, mismatch, 1); err == nil {
		t.Error("want error for shape mismatch")
	}
}

// buildPool assembles a manager over n honest workers on a shared task.
func buildPool(t *testing.T, scheme Scheme, n int) *Manager {
	t.Helper()
	ds, err := dataset.Generate(dataset.Config{
		Name: "pool", NumClasses: 4, Dim: 8, Size: 1200, ClusterStd: 0.4, Seed: 55,
	})
	if err != nil {
		t.Fatal(err)
	}
	shards, err := ds.Partition(n + 1)
	if err != nil {
		t.Fatal(err)
	}
	profiles := gpu.Profiles()
	workers := make([]Worker, n)
	shardMap := make(map[string]*dataset.Dataset, n)
	for i := 0; i < n; i++ {
		net, _ := testTask(t, 30) // same seed ⇒ same initial weights everywhere
		id := "w" + string(rune('A'+i))
		w, err := NewHonestWorker(id, profiles[i%len(profiles)], int64(1000+i), net, shards[i])
		if err != nil {
			t.Fatal(err)
		}
		workers[i] = w
		shardMap[id] = shards[i]
	}
	managerNet, _ := testTask(t, 30)
	mgr, err := NewManager(ManagerConfig{
		Address:         "pool-manager",
		Scheme:          scheme,
		Hyper:           Hyper{Optimizer: "sgdm", LR: 0.05, BatchSize: 8},
		StepsPerEpoch:   15,
		CheckpointEvery: 5,
		Samples:         3,
		GPU:             gpu.G3090,
		MasterKey:       []byte("master"),
		Seed:            99,
	}, managerNet, workers, shardMap, shards[n])
	if err != nil {
		t.Fatal(err)
	}
	return mgr
}

func TestManagerEpochAllHonestAccepted(t *testing.T) {
	for _, scheme := range []Scheme{SchemeV1, SchemeV2} {
		t.Run(scheme.String(), func(t *testing.T) {
			mgr := buildPool(t, scheme, 4)
			report, err := mgr.RunEpoch()
			if err != nil {
				t.Fatal(err)
			}
			if report.Accepted != 4 || report.Rejected != 0 {
				for _, o := range report.Outcomes {
					if !o.Accepted {
						t.Logf("%s rejected: %s", o.WorkerID, o.FailReason)
					}
				}
				t.Fatalf("accepted %d rejected %d", report.Accepted, report.Rejected)
			}
			if report.Calibration == nil {
				t.Error("verification schemes must calibrate")
			}
			if mgr.Epoch() != 1 {
				t.Errorf("epoch = %d", mgr.Epoch())
			}
		})
	}
}

func TestManagerBaselineSkipsCalibration(t *testing.T) {
	mgr := buildPool(t, SchemeBaseline, 3)
	report, err := mgr.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if report.Calibration != nil {
		t.Error("baseline must not calibrate")
	}
	if report.VerifyCommBytes != 0 {
		t.Error("baseline must not incur verification traffic")
	}
	if report.Accepted != 3 {
		t.Errorf("accepted = %d", report.Accepted)
	}
}

func TestManagerGlobalModelImproves(t *testing.T) {
	mgr := buildPool(t, SchemeV2, 3)
	before := mgr.Global()
	for i := 0; i < 3; i++ {
		if _, err := mgr.RunEpoch(); err != nil {
			t.Fatal(err)
		}
	}
	after := mgr.Global()
	d, err := tensor.Distance(before, after)
	if err != nil {
		t.Fatal(err)
	}
	if d == 0 {
		t.Error("global model did not move after 3 epochs")
	}
	if mgr.LastCalibration() == nil {
		t.Error("calibration not retained")
	}
}

func TestManagerV2CommCheaperThanV1(t *testing.T) {
	v1 := buildPool(t, SchemeV1, 3)
	v2 := buildPool(t, SchemeV2, 3)
	r1, err := v1.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := v2.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if r2.VerifyCommBytes >= r1.VerifyCommBytes {
		t.Errorf("v2 comm %d not below v1 comm %d", r2.VerifyCommBytes, r1.VerifyCommBytes)
	}
	// The headline claim: excluding double-checks, v2 halves verification
	// communication. Allow slack for digest overhead and double-checks.
	if r2.VerifyCommBytes > r1.VerifyCommBytes*3/4 {
		t.Errorf("v2 comm %d not ≈50%% of v1 comm %d", r2.VerifyCommBytes, r1.VerifyCommBytes)
	}
}

func TestNewManagerValidation(t *testing.T) {
	net, ds := testTask(t, 31)
	shards, err := ds.Partition(2)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewHonestWorker("w", gpu.GA10, 1, net, shards[0])
	if err != nil {
		t.Fatal(err)
	}
	good := ManagerConfig{
		Scheme: SchemeV1, Hyper: Hyper{Optimizer: "sgd", LR: 0.1, BatchSize: 4},
		StepsPerEpoch: 5, CheckpointEvery: 5, GPU: gpu.G3090, MasterKey: []byte("k"),
	}
	shardMap := map[string]*dataset.Dataset{"w": shards[0]}
	if _, err := NewManager(good, net, []Worker{w}, shardMap, shards[1]); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	if _, err := NewManager(good, net, nil, shardMap, shards[1]); err == nil {
		t.Error("want error for no workers")
	}
	bad := good
	bad.MasterKey = nil
	if _, err := NewManager(bad, net, []Worker{w}, shardMap, shards[1]); err == nil {
		t.Error("want error for missing master key")
	}
	bad = good
	bad.StepsPerEpoch = 0
	if _, err := NewManager(bad, net, []Worker{w}, shardMap, shards[1]); err == nil {
		t.Error("want error for zero steps")
	}
	if _, err := NewManager(good, net, []Worker{w}, map[string]*dataset.Dataset{}, shards[1]); err == nil {
		t.Error("want error for missing shard")
	}
	if _, err := NewManager(good, net, []Worker{w}, shardMap, nil); err == nil {
		t.Error("want error for missing probe under verification scheme")
	}
}

func TestSchemeString(t *testing.T) {
	if SchemeBaseline.String() != "baseline" || SchemeV1.String() != "RPoLv1" ||
		SchemeV2.String() != "RPoLv2" || Scheme(0).String() != "unknown" {
		t.Error("scheme names wrong")
	}
}

func TestManagerConcurrentCollectionEquivalent(t *testing.T) {
	// Concurrent collection must produce exactly the same epoch outcome as
	// sequential collection (workers are independent and deterministic).
	runPool := func(concurrent bool) (float64, int) {
		mgr := buildPoolWithConcurrency(t, SchemeV2, 4, concurrent)
		report, err := mgr.RunEpoch()
		if err != nil {
			t.Fatal(err)
		}
		g := mgr.Global()
		return g.Norm2(), report.Accepted
	}
	seqNorm, seqAcc := runPool(false)
	conNorm, conAcc := runPool(true)
	if seqNorm != conNorm || seqAcc != conAcc {
		t.Errorf("concurrent collection diverged: (%v, %d) vs (%v, %d)",
			conNorm, conAcc, seqNorm, seqAcc)
	}
}

// buildPoolWithConcurrency mirrors buildPool with the collection mode
// exposed.
func buildPoolWithConcurrency(t *testing.T, scheme Scheme, n int, concurrent bool) *Manager {
	t.Helper()
	ds, err := dataset.Generate(dataset.Config{
		Name: "pool-conc", NumClasses: 4, Dim: 8, Size: 1200, ClusterStd: 0.4, Seed: 55,
	})
	if err != nil {
		t.Fatal(err)
	}
	shards, err := ds.Partition(n + 1)
	if err != nil {
		t.Fatal(err)
	}
	profiles := gpu.Profiles()
	workers := make([]Worker, n)
	shardMap := make(map[string]*dataset.Dataset, n)
	for i := 0; i < n; i++ {
		net, _ := testTask(t, 30)
		id := "w" + string(rune('A'+i))
		w, err := NewHonestWorker(id, profiles[i%len(profiles)], int64(1000+i), net, shards[i])
		if err != nil {
			t.Fatal(err)
		}
		workers[i] = w
		shardMap[id] = shards[i]
	}
	managerNet, _ := testTask(t, 30)
	mgr, err := NewManager(ManagerConfig{
		Address:              "conc-manager",
		Scheme:               scheme,
		Hyper:                Hyper{Optimizer: "sgdm", LR: 0.05, BatchSize: 8},
		StepsPerEpoch:        15,
		CheckpointEvery:      5,
		Samples:              3,
		GPU:                  gpu.G3090,
		MasterKey:            []byte("master"),
		Seed:                 99,
		ConcurrentCollection: concurrent,
	}, managerNet, workers, shardMap, shards[n])
	if err != nil {
		t.Fatal(err)
	}
	return mgr
}
