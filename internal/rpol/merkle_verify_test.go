package rpol

import (
	"strings"
	"testing"

	"rpol/internal/commitment"
	"rpol/internal/dataset"
	"rpol/internal/gpu"
	"rpol/internal/lsh"
	"rpol/internal/obs"
	"rpol/internal/tensor"
)

// buildMerkleSetup is buildHonestSetup with the streaming Merkle commitment
// switched on: the worker submits only the 32-byte root and serves inclusion
// proofs on demand.
func buildMerkleSetup(t *testing.T, scheme Scheme) (*HonestWorker, *EpochResult, TaskParams, *Verifier, *dataset.Dataset) {
	t.Helper()
	worker, result, p, verifier, ds := buildHonestSetupMerkle(t, scheme, true)
	return worker, result, p, verifier, ds
}

func TestVerifyHonestWorkerMerkleV1(t *testing.T) {
	worker, result, p, verifier, ds := buildMerkleSetup(t, SchemeV1)
	if !result.HasRoot {
		t.Fatal("merkle submission carries no root")
	}
	if result.Commit != nil || result.LSHDigests != nil {
		t.Fatal("merkle submission must not ship the inline hash list")
	}
	out, err := verifier.VerifySubmission(worker, ds, result, p)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Accepted {
		t.Fatalf("honest merkle worker rejected under v1: %s", out.FailReason)
	}
	// Commitment share: the root plus one validated pull per opening — two
	// binding checks and two (input, output) per sampled interval.
	lp, err := worker.OpenProof(0)
	if err != nil {
		t.Fatal(err)
	}
	q := int64(len(out.SampledCheckpoints))
	wantCommit := int64(commitment.HashSize) + (2+2*q)*int64(lp.Size())
	if out.CommitBytes != wantCommit {
		t.Errorf("CommitBytes = %d, want %d", out.CommitBytes, wantCommit)
	}
	// Raw openings on top: input and output weights per sampled interval.
	ws := int64(tensor.EncodedSize(len(p.Global)))
	if got, want := out.CommBytes, wantCommit+2*q*ws; got != want {
		t.Errorf("CommBytes = %d, want %d", got, want)
	}
}

func TestVerifyHonestWorkerMerkleV2(t *testing.T) {
	worker, result, p, verifier, ds := buildMerkleSetup(t, SchemeV2)
	out, err := verifier.VerifySubmission(worker, ds, result, p)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Accepted {
		t.Fatalf("honest merkle worker rejected under v2: %s", out.FailReason)
	}
	// v2 pulls ride the committed digest with every proof; raw weights move
	// only for each interval's input plus any double-checks.
	lp, err := worker.OpenProof(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(lp.Digest) == 0 {
		t.Fatal("v2 proof pull carries no digest")
	}
	q := int64(len(out.SampledCheckpoints))
	wantCommit := int64(commitment.HashSize) + (2+2*q)*int64(lp.Size())
	if out.CommitBytes != wantCommit {
		t.Errorf("CommitBytes = %d, want %d", out.CommitBytes, wantCommit)
	}
	ws := int64(tensor.EncodedSize(len(p.Global)))
	if got, want := out.CommBytes, wantCommit+(q+int64(out.DoubleChecks))*ws; got != want {
		t.Errorf("CommBytes = %d, want %d", got, want)
	}
}

func TestVerifyMerkleRejectsForgedOpening(t *testing.T) {
	worker, result, p, verifier, ds := buildMerkleSetup(t, SchemeV1)
	forged := tensor.NewRNG(1).NormalVector(len(p.Global), 0, 1)
	for target := 0; target < result.NumCheckpoints; target++ {
		opener := &forgingOpener{inner: worker, target: target, forged: forged}
		out, err := verifier.VerifySubmission(opener, ds, result, p)
		if err != nil {
			t.Fatal(err)
		}
		if out.Accepted {
			sampledForged := false
			for _, c := range out.SampledCheckpoints {
				if c == target || c+1 == target {
					sampledForged = true
				}
			}
			if sampledForged || target == 0 || target == result.NumCheckpoints-1 {
				t.Errorf("forged checkpoint %d accepted under merkle commitment", target)
			}
		}
	}
}

// wrongLeafOpener answers every proof pull with the proof for a different
// committed leaf — a worker trying to reuse a valid proof must be caught by
// the index binding, not just by hash mismatch.
type wrongLeafOpener struct{ inner ProofOpener }

func (o *wrongLeafOpener) OpenCheckpoint(idx int) (tensor.Vector, error) {
	return o.inner.OpenCheckpoint(idx)
}

func (o *wrongLeafOpener) OpenProof(idx int) (LeafProof, error) {
	return o.inner.OpenProof((idx + 1) % 4)
}

func TestVerifyMerkleRejectsWrongProofIndex(t *testing.T) {
	worker, result, p, verifier, ds := buildMerkleSetup(t, SchemeV1)
	out, err := verifier.VerifySubmission(&wrongLeafOpener{inner: worker}, ds, result, p)
	if err != nil {
		t.Fatal(err)
	}
	if out.Accepted {
		t.Fatal("proof answering the wrong leaf accepted")
	}
	if !strings.Contains(out.FailReason, "proof answers leaf") {
		t.Errorf("FailReason = %q, want the index-binding rejection", out.FailReason)
	}
}

// buildHonestSetupMerkle generalizes buildHonestSetup over the commitment
// scheme knob.
func buildHonestSetupMerkle(t *testing.T, scheme Scheme, merkle bool) (*HonestWorker, *EpochResult, TaskParams, *Verifier, *dataset.Dataset) {
	t.Helper()
	netW, ds := testTask(t, 10)
	worker, err := NewHonestWorker("w1", gpu.GA10, 101, netW, ds)
	if err != nil {
		t.Fatal(err)
	}
	p := testParams(netW.ParamVector())
	p.MerkleCommit = merkle

	var fam *lsh.Family
	beta := 0.05
	if scheme == SchemeV2 {
		netC, _ := testTask(t, 10)
		cal := &Calibrator{Net: netC, Shard: ds, XFactor: 5, KLsh: 16}
		calOut, f, err := cal.Calibrate(p, gpu.G3090, gpu.GA10, [2]int64{5, 6}, 7)
		if err != nil {
			t.Fatal(err)
		}
		fam = f
		beta = calOut.Beta
		p.LSH = fam
	}

	result, err := worker.RunEpoch(p)
	if err != nil {
		t.Fatal(err)
	}

	netV, _ := testTask(t, 10)
	device, err := gpu.NewDevice(gpu.G3090, 999)
	if err != nil {
		t.Fatal(err)
	}
	verifier := &Verifier{
		Scheme:  scheme,
		Net:     netV,
		Device:  device,
		Beta:    beta,
		LSH:     fam,
		Samples: 3,
		Sampler: tensor.NewRNG(42),
	}
	return worker, result, p, verifier, ds
}

// tamperedSubmission rebuilds an honest worker's trace with one mid-trace
// checkpoint replaced by random weights and re-commits it. The trace still
// starts at the global model and ends at the claimed final checkpoint, so
// both binding checks pass and rejection happens mid-sampling — exactly the
// shape that exercises the post-failure interval accounting.
func tamperedSubmission(t *testing.T, worker *HonestWorker, result *EpochResult, p TaskParams, fam *lsh.Family, merkle bool) (*traceOpener, *EpochResult) {
	t.Helper()
	fake := &Trace{}
	for i := 0; i < result.NumCheckpoints; i++ {
		cp, err := worker.OpenCheckpoint(i)
		if err != nil {
			t.Fatal(err)
		}
		fake.Checkpoints = append(fake.Checkpoints, cp.Clone())
		fake.Steps = append(fake.Steps, i*p.CheckpointEvery)
	}
	fake.Checkpoints[2] = tensor.NewRNG(9).NormalVector(len(p.Global), 0, 1)
	ec, err := CommitTrace(nil, fake.Checkpoints, fam, merkle)
	if err != nil {
		t.Fatal(err)
	}
	bad := &EpochResult{
		WorkerID: result.WorkerID, Epoch: result.Epoch, Update: result.Update,
		DataSize: result.DataSize, NumCheckpoints: result.NumCheckpoints,
	}
	ec.Apply(bad)
	return &traceOpener{trace: fake, fam: fam}, bad
}

// TestVerifyMetricsParitySerialParallel pins the serial/parallel accounting
// contract across every scheme and commitment form, for accepted and
// rejected submissions: the verdict, the outcome tallies (ReexecSteps,
// CommBytes, CommitBytes, LSHMisses, DoubleChecks), and the global
// rpol_reexec_steps_total / rpol_verify_comm_bytes_total counters must be
// identical — the parallel path must not account intervals that execute
// past the first failure.
func TestVerifyMetricsParitySerialParallel(t *testing.T) {
	for _, scheme := range []Scheme{SchemeV1, SchemeV2} {
		for _, merkle := range []bool{false, true} {
			for _, tampered := range []bool{false, true} {
				name := scheme.String()
				if merkle {
					name += "/merkle"
				} else {
					name += "/legacy"
				}
				if tampered {
					name += "/tampered"
				} else {
					name += "/honest"
				}
				t.Run(name, func(t *testing.T) {
					worker, result, p, ref, ds := buildHonestSetupMerkle(t, scheme, merkle)
					var opener ProofOpener = worker
					if tampered {
						opener, result = tamperedSubmission(t, worker, result, p, ref.LSH, merkle)
					}
					run := func(workers int) (*VerifyOutcome, int64, int64) {
						netV, _ := testTask(t, 10)
						device, err := gpu.NewDevice(gpu.G3090, 999)
						if err != nil {
							t.Fatal(err)
						}
						observer := obs.NewObserver(obs.NewRegistry(), nil)
						v := &Verifier{
							Scheme: scheme, Net: netV, Device: device, Beta: ref.Beta,
							LSH: ref.LSH, Samples: 3, Sampler: tensor.NewRNG(42),
							Workers: workers, Obs: observer,
						}
						out, err := v.VerifySubmission(opener, ds, result, p)
						if err != nil {
							t.Fatal(err)
						}
						return out,
							observer.Counter("rpol_reexec_steps_total").Value(),
							observer.Counter("rpol_verify_comm_bytes_total").Value()
					}
					serial, serialSteps, serialBytes := run(0)
					par, parSteps, parBytes := run(4)
					if tampered == serial.Accepted {
						t.Fatalf("serial verdict accepted=%v for tampered=%v (%s)",
							serial.Accepted, tampered, serial.FailReason)
					}
					if serial.Accepted != par.Accepted {
						t.Fatalf("verdicts diverge: serial=%v parallel=%v (%s / %s)",
							serial.Accepted, par.Accepted, serial.FailReason, par.FailReason)
					}
					if serial.ReexecSteps != par.ReexecSteps {
						t.Errorf("ReexecSteps: serial=%d parallel=%d", serial.ReexecSteps, par.ReexecSteps)
					}
					if serialSteps != parSteps {
						t.Errorf("rpol_reexec_steps_total: serial=%d parallel=%d", serialSteps, parSteps)
					}
					if int64(serial.ReexecSteps) != serialSteps {
						t.Errorf("outcome steps %d diverge from counter %d", serial.ReexecSteps, serialSteps)
					}
					if serial.CommBytes != par.CommBytes || serial.CommitBytes != par.CommitBytes {
						t.Errorf("bytes: serial=(%d,%d) parallel=(%d,%d)",
							serial.CommBytes, serial.CommitBytes, par.CommBytes, par.CommitBytes)
					}
					if serialBytes != parBytes {
						t.Errorf("rpol_verify_comm_bytes_total: serial=%d parallel=%d", serialBytes, parBytes)
					}
					if serial.LSHMisses != par.LSHMisses || serial.DoubleChecks != par.DoubleChecks {
						t.Errorf("lsh tallies: serial=(%d,%d) parallel=(%d,%d)",
							serial.LSHMisses, serial.DoubleChecks, par.LSHMisses, par.DoubleChecks)
					}
				})
			}
		}
	}
}

// TestVerifyRawOpeningBytesSchemeParity pins satellite accounting across
// commitment forms: for the same verdict, the raw weight bytes a verifier
// moves (CommBytes minus the commitment share) are identical whether the
// commitment was the legacy hash list or the streaming Merkle root.
func TestVerifyRawOpeningBytesSchemeParity(t *testing.T) {
	for _, scheme := range []Scheme{SchemeV1, SchemeV2} {
		raw := map[bool]int64{}
		for _, merkle := range []bool{false, true} {
			worker, result, p, verifier, ds := buildHonestSetupMerkle(t, scheme, merkle)
			out, err := verifier.VerifySubmission(worker, ds, result, p)
			if err != nil {
				t.Fatal(err)
			}
			if !out.Accepted {
				t.Fatalf("%s merkle=%v rejected: %s", scheme, merkle, out.FailReason)
			}
			raw[merkle] = out.CommBytes - out.CommitBytes
		}
		if raw[false] != raw[true] {
			t.Errorf("%s: raw opening bytes legacy=%d merkle=%d", scheme, raw[false], raw[true])
		}
	}
}
