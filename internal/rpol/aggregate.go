package rpol

import (
	"errors"
	"fmt"

	"rpol/internal/tensor"
)

// ErrNothingToAggregate is returned when no accepted updates remain.
var ErrNothingToAggregate = errors.New("rpol: no accepted updates to aggregate")

// Aggregate applies Eq. (1): θ_{t+1} = θ_t + η·Σ_w (|D_w|/|D|)·L_t^w over the
// accepted updates, where |D| is the total data size of the accepted
// contributions (so that excluding detected cheaters re-normalizes the step
// rather than shrinking it — submissions from detected dishonest workers are
// simply not aggregated, Sec. VII-E).
func Aggregate(global tensor.Vector, updates []*EpochResult, eta float64) (tensor.Vector, error) {
	if len(updates) == 0 {
		return nil, ErrNothingToAggregate
	}
	total := 0
	for _, u := range updates {
		if u.DataSize <= 0 {
			return nil, fmt.Errorf("rpol aggregate: worker %s reports data size %d", u.WorkerID, u.DataSize)
		}
		total += u.DataSize
	}
	next := global.Clone()
	for _, u := range updates {
		weight := eta * float64(u.DataSize) / float64(total)
		if err := next.AXPY(weight, u.Update); err != nil {
			return nil, fmt.Errorf("rpol aggregate worker %s: %w", u.WorkerID, err)
		}
	}
	return next, nil
}
