package rpol

import (
	"errors"
	"fmt"
	"sync"

	"rpol/internal/commitment"
	"rpol/internal/dataset"
	"rpol/internal/fsio"
	"rpol/internal/gpu"
	"rpol/internal/journal"
	"rpol/internal/lsh"
	"rpol/internal/nn"
	"rpol/internal/obs"
	"rpol/internal/prf"
	"rpol/internal/tensor"
)

// ManagerConfig assembles a pool manager.
type ManagerConfig struct {
	// Address is the manager's blockchain address (encoded into the
	// AMLayer by the caller before the architecture reaches here).
	Address string
	// Scheme selects baseline / RPoLv1 / RPoLv2.
	Scheme Scheme
	// Hyper are the training hyper-parameters distributed each epoch.
	Hyper Hyper
	// StepsPerEpoch is each worker's per-epoch training step count.
	StepsPerEpoch int
	// CheckpointEvery is the checkpoint interval i (5 in the evaluation).
	CheckpointEvery int
	// Samples is q, sampled checkpoints per submission (3 in the
	// evaluation).
	Samples int
	// MerkleCommit switches submissions from the legacy inline hash list to
	// the streaming Merkle commitment: workers submit only the 32-byte root
	// and the verifier pulls O(log n) inclusion proofs for the checkpoints it
	// samples. Verdicts and the aggregated model are bit-identical to the
	// legacy scheme; only the commitment wire format changes.
	MerkleCommit bool
	// GPU is the manager's own verification hardware.
	GPU gpu.Profile
	// MasterKey derives per-(worker, epoch) nonces.
	MasterKey []byte
	// Seed drives the manager's sampling and hardware randomness.
	Seed int64
	// XFactor/YOffset define β = x·α + y (defaults 5, 0).
	XFactor, YOffset float64
	// KLsh is the LSH computational budget (default 16).
	KLsh int
	// ParallelVerifiers enables decentralized verification (the paper's
	// Sec. IX future work): when > 1 and NetBuilder is set, submissions are
	// verified by that many verifiers concurrently instead of sequentially
	// by the manager.
	ParallelVerifiers int
	// NetBuilder constructs fresh architecture instances for parallel
	// verifiers (each needs its own, since re-execution overwrites
	// weights).
	NetBuilder func() (*nn.Network, error)
	// ConcurrentCollection trains workers concurrently during the
	// collection phase. Safe for in-process workers (each owns its network
	// and trainer); leave it off for workers multiplexed over a single
	// sequential transport (e.g. one wire.ManagerPort).
	ConcurrentCollection bool
	// Quorum is the minimum number of responsive workers an epoch needs to
	// settle. 0 (the default) keeps the historical strict behaviour: any
	// collection failure aborts the epoch. When > 0, a worker whose
	// collection fails with an error wrapping ErrWorkerUnavailable (a
	// transport deadline, a crashed peer) is recorded as OutcomeAbsent —
	// neither accepted nor counted as a detected adversary — and the epoch
	// settles with the responsive workers, failing only when fewer than
	// Quorum of them respond. Non-availability errors still abort.
	Quorum int
	// Workers sizes the deterministic compute pool threaded through the
	// epoch: workers' batch training and commitment hashing (via
	// TaskParams.Workers) and the manager's own interval verification. 0
	// keeps the historical serial paths; any n ≥ 1 yields bit-identical
	// protocol results for every n (see internal/parallel). Distinct from
	// ParallelVerifiers, which fans independent submissions across verifier
	// instances rather than parallelizing one submission's compute.
	Workers int
	// Journal, when set, makes the manager log every protocol transition
	// (task announced, commitment received, samples drawn, verdict recorded)
	// to the durable epoch journal, and derives its sampling RNG and
	// verification device freshly at each epoch start as a pure function of
	// (Seed, epoch) — so a resumed run re-enters any epoch with bit-identical
	// randomness instead of depending on a cross-epoch stream position no
	// crash survivor can reconstruct. Journal append failures abort the
	// epoch: an unrecorded transition must not take effect.
	Journal *journal.Journal
	// Obs routes the manager's metrics and spans. Nil falls back to the
	// process-wide default observer (disabled unless a command installed
	// one); instrumentation never changes protocol results because it
	// consumes no protocol randomness and timestamps flow through the
	// observer's deterministic clock.
	Obs *obs.Observer
}

// Manager coordinates the pool's distributed learning and verifies worker
// submissions (Fig. 2's pool-manager role).
type Manager struct {
	cfg     ManagerConfig
	global  tensor.Vector
	net     *nn.Network // architecture for verification re-execution
	workers []Worker
	shards  map[string]*dataset.Dataset
	probe   *dataset.Dataset
	device  *gpu.Device
	rng     *tensor.RNG
	epoch   int
	obs     *obs.Observer

	// lastCal is the most recent calibration (nil before the first
	// calibrated epoch or under the baseline scheme).
	lastCal *Calibration

	// encBuf is the reused journal-digest encode scratch; RunEpoch drives
	// the epoch sequentially, so one buffer serves every checksum.
	encBuf []byte
}

// EpochReport summarizes one coordinated epoch.
type EpochReport struct {
	Epoch       int
	Calibration *Calibration
	Outcomes    []*VerifyOutcome
	Accepted    int
	Rejected    int
	// Absent counts workers that missed their deadline this epoch
	// (OutcomeAbsent): unreachable, not adversarial.
	Absent int
	// VerifyCommBytes totals verification-only traffic across workers.
	VerifyCommBytes int64
	// ReexecSteps totals the manager's re-executed training steps.
	ReexecSteps int
	// Phases breaks the epoch down by protocol phase: how often each phase
	// ran, the bytes it moved, and the training steps it executed.
	Phases obs.PhaseBreakdown
}

// NewManager builds a manager over pre-constructed workers.
//
// net is the shared model architecture (with the AMLayer already prepended);
// its current parameters become the initial global model. shards maps worker
// IDs to their sub-datasets (the manager partitioned the data, so it keeps
// them for verification re-execution); probe is the manager's own (n+1)-th
// shard used by adaptive calibration.
func NewManager(cfg ManagerConfig, net *nn.Network, workers []Worker, shards map[string]*dataset.Dataset, probe *dataset.Dataset) (*Manager, error) {
	if len(workers) == 0 {
		return nil, errors.New("rpol: manager needs at least one worker")
	}
	if cfg.StepsPerEpoch < 1 || cfg.CheckpointEvery < 1 {
		return nil, errors.New("rpol: manager needs positive steps and checkpoint interval")
	}
	if len(cfg.MasterKey) == 0 {
		return nil, errors.New("rpol: manager needs a nonce master key")
	}
	for _, w := range workers {
		if _, ok := shards[w.ID()]; !ok {
			return nil, fmt.Errorf("rpol: no shard for worker %s", w.ID())
		}
	}
	if cfg.Scheme != SchemeBaseline && probe == nil {
		return nil, errors.New("rpol: verification schemes need a probe shard for calibration")
	}
	device, err := gpu.NewDevice(cfg.GPU, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("rpol manager: %w", err)
	}
	return &Manager{
		cfg:     cfg,
		global:  net.ParamVector(),
		net:     net,
		workers: workers,
		shards:  shards,
		probe:   probe,
		device:  device,
		rng:     tensor.NewRNG(cfg.Seed),
		obs:     cfg.Obs.OrDefault(),
	}, nil
}

// Global returns a copy of the current global model weights.
func (m *Manager) Global() tensor.Vector { return m.global.Clone() }

// Restore rewinds the manager to the state after `completed` epochs with
// the given global model — crash recovery replaying a journal calls it
// before re-running the in-flight epoch. Only meaningful under a Journal
// (per-epoch derived randomness); without one the sampling stream position
// cannot be reconstructed.
func (m *Manager) Restore(completed int, global tensor.Vector) error {
	if completed < 0 {
		return fmt.Errorf("rpol manager restore: negative epoch count %d", completed)
	}
	if len(global) != len(m.global) {
		return fmt.Errorf("rpol manager restore: global has %d weights, want %d", len(global), len(m.global))
	}
	m.epoch = completed
	m.global = global.Clone()
	m.lastCal = nil
	return nil
}

// deriveEpochState re-seeds the manager's sampling RNG and verification
// device for the given epoch. Under a Journal every epoch's randomness is a
// pure function of (Seed, epoch), which is what makes a resumed epoch
// bit-identical to its uninterrupted counterpart.
func (m *Manager) deriveEpochState(epoch int) error {
	m.rng = tensor.NewRNG(prf.SeedFromString(fmt.Sprintf("rpol/epoch-rng/%d/%d", m.cfg.Seed, epoch)))
	device, err := gpu.NewDevice(m.cfg.GPU, m.cfg.Seed)
	if err != nil {
		return fmt.Errorf("rpol manager: %w", err)
	}
	m.device = device
	return nil
}

// Epoch returns the number of completed epochs.
func (m *Manager) Epoch() int { return m.epoch }

// LastCalibration returns the most recent epoch's calibration, or nil.
func (m *Manager) LastCalibration() *Calibration { return m.lastCal }

// topTwoProfiles picks the two fastest GPU profiles registered by workers.
// With fewer than two distinct registrations the manager's own profile
// fills in.
func (m *Manager) topTwoProfiles() (gpu.Profile, gpu.Profile) {
	profiles := make([]gpu.Profile, 0, len(m.workers)+1)
	for _, w := range m.workers {
		profiles = append(profiles, w.GPUProfile())
	}
	profiles = append(profiles, m.cfg.GPU)
	first, second, err := gpu.TopTwo(profiles)
	if err != nil {
		return m.cfg.GPU, m.cfg.GPU
	}
	return first, second
}

// RunEpoch coordinates one full epoch: calibrate (for verification
// schemes), distribute the task, collect submissions, verify, aggregate.
func (m *Manager) RunEpoch() (*EpochReport, error) {
	epoch := m.epoch
	report := &EpochReport{Epoch: epoch, Phases: make(obs.PhaseBreakdown)}
	epochSpan := m.obs.Start(nil, "manager.epoch",
		obs.Int("epoch", int64(epoch)), obs.String("scheme", m.cfg.Scheme.String()))
	defer epochSpan.End()

	if m.cfg.Journal != nil {
		if err := m.deriveEpochState(epoch); err != nil {
			return nil, err
		}
		m.encBuf = m.global.AppendEncode(m.encBuf[:0])
		if err := m.cfg.Journal.LogTask(journal.Task{
			Epoch:        epoch,
			GlobalDigest: fsio.Checksum(m.encBuf),
			Workers:      len(m.workers),
		}); err != nil {
			return nil, fmt.Errorf("rpol manager: %w", err)
		}
	}

	baseParams := TaskParams{
		Epoch:           epoch,
		Global:          m.global.Clone(),
		Hyper:           m.cfg.Hyper,
		Steps:           m.cfg.StepsPerEpoch,
		CheckpointEvery: m.cfg.CheckpointEvery,
		Workers:         m.cfg.Workers,
		MerkleCommit:    m.cfg.MerkleCommit,
	}

	verifier := &Verifier{
		Scheme:  m.cfg.Scheme,
		Net:     m.net,
		Device:  m.device,
		Samples: m.cfg.Samples,
		Sampler: m.rng,
		Obs:     m.obs,
		Workers: m.cfg.Workers,
	}

	if m.cfg.Scheme != SchemeBaseline {
		cal, fam, err := m.calibrate(baseParams, epochSpan)
		if err != nil {
			return nil, err
		}
		m.lastCal = cal
		report.Calibration = cal
		verifier.Beta = cal.Beta
		if m.cfg.Scheme == SchemeV2 {
			verifier.LSH = fam
			baseParams.LSH = fam
		}
		// The probe sub-task runs a full epoch on each of the top-2
		// profiles.
		report.Phases.Add(obs.PhaseCalibration,
			obs.PhaseTotals{Count: 1, Steps: 2 * int64(baseParams.Steps)})
	}

	// Distribute and collect. Nonces are issued per (worker, epoch);
	// sampling decisions are not revealed until after ALL commitments have
	// arrived — verification is a separate phase after collection
	// (commit-and-prove, Sec. V-B).
	taskBytes := int64(tensor.EncodedSize(len(m.global)))
	report.Phases.Add(obs.PhaseTaskPublish,
		obs.PhaseTotals{Count: int64(len(m.workers)), Bytes: taskBytes * int64(len(m.workers))})
	subs := make([]Submission, len(m.workers))
	results := make([]*EpochResult, len(m.workers))
	workerSpans := make([]*obs.Span, len(m.workers))
	collect := func(i int, w Worker) error {
		params := baseParams
		params.Global = m.global.Clone()
		params.Nonce = prf.DeriveNonce(m.cfg.MasterKey, w.ID(), epoch)
		params.Trace = workerSpans[i]
		result, err := w.RunEpoch(params)
		if err != nil {
			return fmt.Errorf("rpol manager: worker %s: %w", w.ID(), err)
		}
		subs[i] = Submission{
			Opener: w, Shard: m.shards[w.ID()], Result: result, Params: params,
		}
		results[i] = result
		return nil
	}
	for i, w := range m.workers {
		workerSpans[i] = m.obs.Start(epochSpan, "worker.epoch", obs.String("worker", w.ID()))
	}
	errs := make([]error, len(m.workers))
	if m.cfg.ConcurrentCollection {
		var wg sync.WaitGroup
		for i, w := range m.workers {
			wg.Add(1)
			go func(i int, w Worker) {
				defer wg.Done()
				errs[i] = collect(i, w)
			}(i, w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil && !m.absentErr(err) {
				return nil, err
			}
		}
	} else {
		for i, w := range m.workers {
			errs[i] = collect(i, w)
			if errs[i] != nil && !m.absentErr(errs[i]) {
				return nil, errs[i]
			}
		}
	}
	// Partition workers into responsive and absent. A collection error
	// reaching this point is an availability failure under an active quorum
	// (absentErr aborted on everything else): the worker sits the epoch out
	// as OutcomeAbsent and the responsive ones carry it — provided enough of
	// them remain.
	responsive := 0
	for _, err := range errs {
		if err == nil {
			responsive++
		}
	}
	if responsive < len(m.workers) && responsive < m.cfg.Quorum {
		return nil, fmt.Errorf("rpol manager: only %d of %d workers responsive, quorum is %d: %w",
			responsive, len(m.workers), m.cfg.Quorum, ErrWorkerUnavailable)
	}
	report.Phases.Add(obs.PhaseTraining, obs.PhaseTotals{
		Count: int64(responsive),
		Steps: int64(responsive) * int64(m.cfg.StepsPerEpoch),
	})
	live := make([]Submission, 0, responsive)
	liveIdx := make([]int, 0, responsive)
	for i, result := range results {
		if errs[i] != nil {
			continue
		}
		live = append(live, subs[i])
		liveIdx = append(liveIdx, i)
		report.Phases.Add(obs.PhaseCommitment, obs.PhaseTotals{Count: 1, Bytes: submissionBytes(result)})
		if n := len(result.LSHDigests); n > 0 {
			report.Phases.Add(obs.PhaseLSH, obs.PhaseTotals{Count: int64(n)})
		}
		if m.cfg.Journal != nil {
			var digest uint64
			var root []byte
			if result.HasRoot {
				root = result.MerkleRoot[:]
				digest = fsio.Checksum(root)
			} else if result.Commit != nil {
				m.encBuf = result.Commit.AppendEncode(m.encBuf[:0])
				digest = fsio.Checksum(m.encBuf)
			}
			if err := m.cfg.Journal.LogCommit(journal.Commit{
				Epoch:          epoch,
				Worker:         result.WorkerID,
				Digest:         digest,
				Root:           root,
				NumCheckpoints: result.NumCheckpoints,
			}); err != nil {
				return nil, fmt.Errorf("rpol manager: %w", err)
			}
		}
	}

	verified, err := m.verifyAll(verifier, live)
	if err != nil {
		return nil, fmt.Errorf("rpol manager: %w", err)
	}
	outcomes := make([]*VerifyOutcome, len(m.workers))
	for j, outcome := range verified {
		outcomes[liveIdx[j]] = outcome
	}
	for i, w := range m.workers {
		if outcomes[i] == nil {
			outcomes[i] = &VerifyOutcome{
				WorkerID:   w.ID(),
				Epoch:      epoch,
				Outcome:    OutcomeAbsent,
				FailReason: "absent: " + errs[i].Error(),
			}
		}
	}
	accepted := make([]*EpochResult, 0, len(m.workers))
	for i, outcome := range outcomes {
		if m.cfg.Journal != nil {
			if outcome.Outcome != OutcomeAbsent {
				if err := m.cfg.Journal.LogSamples(journal.Samples{
					Epoch:   epoch,
					Worker:  outcome.WorkerID,
					Indices: outcome.SampledCheckpoints,
				}); err != nil {
					return nil, fmt.Errorf("rpol manager: %w", err)
				}
			}
			if err := m.cfg.Journal.LogVerdict(journal.Verdict{
				Epoch:   epoch,
				Worker:  outcome.WorkerID,
				Outcome: outcome.Outcome.String(),
				Reason:  outcome.FailReason,
			}); err != nil {
				return nil, fmt.Errorf("rpol manager: %w", err)
			}
		}
		report.Outcomes = append(report.Outcomes, outcome)
		if outcome.Outcome == OutcomeAbsent {
			report.Absent++
			m.obs.Publish(obs.StreamEvent{
				Kind:   obs.EventWorkerAbsent,
				Worker: outcome.WorkerID,
				Epoch:  int64(epoch),
				Detail: outcome.FailReason,
			})
			workerSpans[i].End(obs.String("outcome", outcome.Outcome.String()))
			continue
		}
		report.VerifyCommBytes += outcome.CommBytes
		report.ReexecSteps += outcome.ReexecSteps
		report.Phases.Add(obs.PhaseChallenge, obs.PhaseTotals{Count: int64(len(outcome.SampledCheckpoints))})
		report.Phases.Add(obs.PhaseReproduction, obs.PhaseTotals{
			Count: int64(len(outcome.SampledCheckpoints)),
			Bytes: outcome.CommBytes,
			Steps: int64(outcome.ReexecSteps),
		})
		if outcome.LSHMisses > 0 || outcome.DoubleChecks > 0 {
			report.Phases.Add(obs.PhaseLSH, obs.PhaseTotals{Count: int64(outcome.LSHMisses)})
		}
		if outcome.Accepted {
			report.Accepted++
			accepted = append(accepted, results[i])
			m.obs.Publish(obs.StreamEvent{
				Kind:   obs.EventVerdictAccepted,
				Worker: outcome.WorkerID,
				Epoch:  int64(epoch),
			})
		} else {
			report.Rejected++
			m.obs.Publish(obs.StreamEvent{
				Kind:   obs.EventVerdictRejected,
				Worker: outcome.WorkerID,
				Epoch:  int64(epoch),
				Detail: outcome.FailReason,
			})
		}
		workerSpans[i].End(obs.Bool("accepted", outcome.Accepted))
	}
	report.Phases.Add(obs.PhaseVerdict, obs.PhaseTotals{Count: int64(len(verified))})
	m.obs.Counter("rpol_accepted_total").Add(int64(report.Accepted))
	m.obs.Counter("rpol_rejected_total").Add(int64(report.Rejected))
	if report.Absent > 0 {
		m.obs.Counter("rpol_absent_total").Add(int64(report.Absent))
	}

	if len(accepted) > 0 {
		aggSpan := m.obs.Start(epochSpan, "manager.aggregate", obs.Int("accepted", int64(len(accepted))))
		next, err := Aggregate(m.global, accepted, 1.0)
		aggSpan.End()
		if err != nil {
			return nil, fmt.Errorf("rpol manager: %w", err)
		}
		m.global = next
		report.Phases.Add(obs.PhaseAggregation, obs.PhaseTotals{Count: int64(len(accepted))})
	}
	m.epoch++
	m.obs.Counter("rpol_epochs_total").Inc()
	report.Phases.MirrorTo(m.obs.Registry())
	return report, nil
}

// absentErr reports whether a collection error marks the worker absent
// rather than aborting the epoch: only availability failures qualify, and
// only when a quorum is configured (the strict default keeps every failure
// fatal, preserving the historical behaviour).
func (m *Manager) absentErr(err error) bool {
	return m.cfg.Quorum > 0 && errors.Is(err, ErrWorkerUnavailable)
}

// submissionBytes is the modelled fan-in size of one epoch submission: the
// update vector plus the commitment share — under Merkle a constant 32-byte
// root and an 8-byte leaf count, under the legacy scheme the full hash list
// and any inline LSH digests.
func submissionBytes(r *EpochResult) int64 {
	if r == nil {
		return 0
	}
	total := int64(tensor.EncodedSize(len(r.Update)))
	if r.HasRoot {
		return total + commitment.HashSize + 8
	}
	if r.Commit != nil {
		total += int64(r.Commit.Size())
	}
	for _, d := range r.LSHDigests {
		total += int64(d.Size())
	}
	return total
}

// verifyAll checks every submission: concurrently through a VerifierPool
// when decentralized verification is configured, sequentially through the
// manager's own verifier otherwise.
func (m *Manager) verifyAll(verifier *Verifier, subs []Submission) ([]*VerifyOutcome, error) {
	if m.cfg.Scheme != SchemeBaseline && m.cfg.ParallelVerifiers > 1 && m.cfg.NetBuilder != nil {
		vp, err := NewVerifierPool(m.cfg.ParallelVerifiers, m.cfg.Scheme, m.cfg.NetBuilder,
			m.cfg.GPU, verifier.Beta, verifier.LSH, m.cfg.Samples, m.rng.Int63())
		if err != nil {
			return nil, err
		}
		vp.SetObserver(m.obs)
		return vp.VerifyAll(subs)
	}
	outcomes := make([]*VerifyOutcome, 0, len(subs))
	for _, sub := range subs {
		outcome, err := verifier.VerifySubmission(sub.Opener, sub.Shard, sub.Result, sub.Params)
		if err != nil {
			return nil, fmt.Errorf("verify %s: %w", sub.Result.WorkerID, err)
		}
		outcomes = append(outcomes, outcome)
	}
	return outcomes, nil
}

// calibrate runs the adaptive calibration for the upcoming epoch. The probe
// sub-task's results could be aggregated too (the paper notes the probe is
// not wasted work); here it is used purely for measurement. parent is the
// epoch span the calibration spans nest under.
func (m *Manager) calibrate(p TaskParams, parent *obs.Span) (*Calibration, *lsh.Family, error) {
	top1, top2 := m.topTwoProfiles()
	calibrator := &Calibrator{
		Net:     m.net,
		Shard:   m.probe,
		XFactor: m.cfg.XFactor,
		YOffset: m.cfg.YOffset,
		KLsh:    m.cfg.KLsh,
		Obs:     m.obs,
		Trace:   parent,
	}
	probeSeeds := [2]int64{m.rng.Int63(), m.rng.Int63()}
	lshSeed := m.rng.Int63()
	return calibrator.Calibrate(p, top1, top2, probeSeeds, lshSeed)
}
