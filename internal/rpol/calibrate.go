package rpol

import (
	"errors"
	"fmt"

	"rpol/internal/dataset"
	"rpol/internal/gpu"
	"rpol/internal/lsh"
	"rpol/internal/nn"
	"rpol/internal/obs"
	"rpol/internal/stats"
	"rpol/internal/tensor"
)

// Calibrator implements the manager's adaptive strategy for LSH calibration
// (Sec. V-C). The manager keeps one of the (n+1) i.i.d. shards for itself;
// before each epoch it executes that probe sub-task twice — once on each of
// the pool's top-2 best-performing GPU profiles, to provoke reproduction
// errors near their worst case — measures the per-checkpoint errors, and
// sets
//
//	α = mean + std of the measured errors,
//	β = XFactor·α + YOffset  (the paper's β = x·α + y; evaluation uses 5α),
//
// then solves Eq. (6) for the LSH parameters under the budget K_lsh.
type Calibrator struct {
	// Net is the model architecture used for probe runs; weights are
	// overwritten.
	Net *nn.Network
	// Shard is the manager's own probe sub-dataset.
	Shard *dataset.Dataset
	// XFactor and YOffset define β = XFactor·α + YOffset. The paper's
	// evaluation uses XFactor 5, YOffset 0 (Sec. VII-D).
	XFactor float64
	YOffset float64
	// KLsh is the computational budget k·l ≤ K_lsh (16 in the evaluation).
	KLsh int
	// Obs routes calibration metrics and spans; nil falls back to the
	// process default observer. Trace is the parent span (typically the
	// manager's epoch span) and may be nil.
	Obs   *obs.Observer
	Trace *obs.Span
}

// reproErrorBuckets are the fixed histogram bounds for measured
// reproduction errors (log-spaced decades).
var reproErrorBuckets = []float64{1e-9, 1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1}

// ErrNoErrors is returned when a probe run produces no comparable
// checkpoints.
var ErrNoErrors = errors.New("rpol: calibration produced no reproduction errors")

// Calibrate runs the probe twice on the top-2 profiles and returns the
// epoch's calibration plus the LSH family workers must use. probeSeeds
// individualize the two hardware runs; lshSeed derives the shared family.
func (c *Calibrator) Calibrate(p TaskParams, top1, top2 gpu.Profile, probeSeeds [2]int64, lshSeed int64) (*Calibration, *lsh.Family, error) {
	if c.Net == nil || c.Shard == nil {
		return nil, nil, errors.New("rpol: calibrator needs a network and a probe shard")
	}
	o := c.Obs.OrDefault()
	span := o.Start(c.Trace, "manager.calibrate", obs.Int("epoch", int64(p.Epoch)))
	defer span.End()
	errsList, err := c.MeasureErrors(p, top1, top2, probeSeeds)
	if err != nil {
		return nil, nil, err
	}
	errHist := o.Histogram("rpol_repro_error", reproErrorBuckets)
	for _, e := range errsList {
		errHist.Observe(e)
	}
	summary, err := stats.Summarize(errsList)
	if err != nil {
		return nil, nil, fmt.Errorf("rpol calibrate: %w", err)
	}
	xf := c.XFactor
	if xf <= 0 {
		xf = 5
	}
	alpha := summary.MeanPlusSD
	if alpha <= 0 {
		// Degenerate noiseless probe: fall back to a tiny positive bound so
		// LSH optimization stays well-posed.
		alpha = 1e-12
	}
	beta := xf*alpha + c.YOffset
	params, worstFNR, worstFPR, err := lsh.Optimize(alpha, beta, lsh.OptimizeOptions{KLsh: c.KLsh})
	if err != nil {
		return nil, nil, fmt.Errorf("rpol calibrate: %w", err)
	}
	cal := &Calibration{
		Alpha:     alpha,
		Beta:      beta,
		Params:    params,
		WorstFNR:  worstFNR,
		WorstFPR:  worstFPR,
		MaxError:  summary.Max,
		NumProbes: summary.N,
	}
	o.Counter("rpol_calibrations_total").Inc()
	o.Gauge("rpol_alpha").Set(alpha)
	o.Gauge("rpol_beta").Set(beta)
	fam, err := lsh.NewFamily(len(p.Global), params, lshSeed)
	if err != nil {
		return nil, nil, fmt.Errorf("rpol calibrate: %w", err)
	}
	return cal, fam, nil
}

// MeasureErrors runs the probe sub-task twice (once per profile) and
// returns the Euclidean reproduction errors of all comparable checkpoints.
func (c *Calibrator) MeasureErrors(p TaskParams, top1, top2 gpu.Profile, probeSeeds [2]int64) ([]float64, error) {
	o := c.Obs.OrDefault()
	run := func(profile gpu.Profile, seed int64) (*Trace, error) {
		device, err := gpu.NewDevice(profile, seed)
		if err != nil {
			return nil, fmt.Errorf("rpol calibrate: %w", err)
		}
		probeSpan := o.Start(c.Trace, "calibrate.probe", obs.String("gpu", profile.Name))
		defer probeSpan.End()
		trainer := &Trainer{Net: c.Net, Shard: c.Shard, Device: device,
			Steps: o.Counter("rpol_probe_steps_total")}
		return trainer.RunEpoch(p)
	}
	t1, err := run(top1, probeSeeds[0])
	if err != nil {
		return nil, err
	}
	t2, err := run(top2, probeSeeds[1])
	if err != nil {
		return nil, err
	}
	return TraceDistances(t1, t2)
}

// TraceDistances returns the per-checkpoint Euclidean distances between two
// traces of the same task, skipping the identical initial checkpoint.
func TraceDistances(a, b *Trace) ([]float64, error) {
	if len(a.Checkpoints) != len(b.Checkpoints) {
		return nil, fmt.Errorf("rpol: traces have %d vs %d checkpoints", len(a.Checkpoints), len(b.Checkpoints))
	}
	if len(a.Checkpoints) < 2 {
		return nil, ErrNoErrors
	}
	out := make([]float64, 0, len(a.Checkpoints)-1)
	for i := 1; i < len(a.Checkpoints); i++ {
		d, err := tensor.Distance(a.Checkpoints[i], b.Checkpoints[i])
		if err != nil {
			return nil, fmt.Errorf("rpol trace distance %d: %w", i, err)
		}
		out = append(out, d)
	}
	return out, nil
}
