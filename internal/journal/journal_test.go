package journal

import (
	"encoding/json"
	"errors"
	"path/filepath"
	"testing"

	"rpol/internal/fsio"
	"rpol/internal/obs"
)

func testObserver() *obs.Observer {
	return obs.NewObserver(obs.NewRegistry(), nil)
}

// writeRecords appends n trivially-bodied records and closes the journal.
func writeRecords(t *testing.T, path string, n int) {
	t.Helper()
	j, err := Create(fsio.OS, path, testObserver())
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for i := 0; i < n; i++ {
		if err := j.LogVerdict(Verdict{Epoch: 0, Worker: "w", Outcome: "accepted"}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "epoch.wal")
	j, err := Create(fsio.OS, path, testObserver())
	if err != nil {
		t.Fatal(err)
	}
	if err := j.LogTask(Task{Epoch: 0, GlobalDigest: 42, Workers: 3}); err != nil {
		t.Fatal(err)
	}
	if err := j.LogCommit(Commit{Epoch: 0, Worker: "w-0", Digest: 7, NumCheckpoints: 4}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append(KindTask, nil); err == nil {
		t.Fatal("append after close succeeded")
	}

	data, err := fsio.OS.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recs, torn, dups := Replay(data)
	if torn != 0 || dups != 0 {
		t.Fatalf("torn=%d dups=%d", torn, dups)
	}
	if len(recs) != 2 || recs[0].Kind != KindTask || recs[1].Kind != KindCommit {
		t.Fatalf("records = %+v", recs)
	}
	if recs[0].Seq != 1 || recs[1].Seq != 2 {
		t.Fatalf("seqs = %d, %d", recs[0].Seq, recs[1].Seq)
	}
}

func TestReplayTable(t *testing.T) {
	mk := func(n int) []byte {
		var buf []byte
		for i := 1; i <= n; i++ {
			frame, err := encodeRecord(nil, Record{Seq: uint64(i), Kind: "k", Data: []byte("{}")})
			if err != nil {
				t.Fatal(err)
			}
			buf = append(buf, frame...)
		}
		return buf
	}
	whole := mk(3)
	frame1, _ := encodeRecord(nil, Record{Seq: 1, Kind: "k", Data: []byte("{}")})

	cases := []struct {
		name     string
		data     []byte
		wantRecs int
		wantTorn bool
		wantDups int
	}{
		{"empty", nil, 0, false, 0},
		{"intact", whole, 3, false, 0},
		{"torn tail", whole[:len(whole)-5], 2, true, 0},
		{"torn mid-length-prefix", whole[:len(frame1)+2], 1, true, 0},
		{"bit flip ends prefix", func() []byte {
			d := append([]byte(nil), whole...)
			d[len(frame1)+9] ^= 0x40 // corrupt the second record's body
			return d
		}(), 1, true, 0},
		{"duplicate seq skipped", append(append([]byte(nil), whole...), whole[:len(frame1)]...), 3, false, 1},
		{"garbage", []byte("not a journal at all"), 0, true, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			recs, torn, dups := Replay(tc.data)
			if len(recs) != tc.wantRecs {
				t.Errorf("records = %d, want %d", len(recs), tc.wantRecs)
			}
			if (torn > 0) != tc.wantTorn {
				t.Errorf("torn = %d, want torn=%v", torn, tc.wantTorn)
			}
			if dups != tc.wantDups {
				t.Errorf("dups = %d, want %d", dups, tc.wantDups)
			}
			for i := 1; i < len(recs); i++ {
				if recs[i].Seq <= recs[i-1].Seq {
					t.Errorf("non-increasing seq at %d", i)
				}
			}
		})
	}
}

func TestOpenDiscardsTornTailAndRewrites(t *testing.T) {
	path := filepath.Join(t.TempDir(), "epoch.wal")
	writeRecords(t, path, 3)
	data, err := fsio.OS.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the last record mid-frame.
	if err := fsio.OS.WriteFileAtomic(path, data[:len(data)-4]); err != nil {
		t.Fatal(err)
	}

	o := testObserver()
	j, rec, err := Open(fsio.OS, path, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 2 || rec.DiscardedTailBytes == 0 {
		t.Fatalf("recovery = %+v", rec)
	}
	if got := o.Counter("recovery_replayed_total").Value(); got != 2 {
		t.Errorf("recovery_replayed_total = %d", got)
	}
	if got := o.Counter("recovery_discarded_tail_total").Value(); got == 0 {
		t.Error("recovery_discarded_tail_total not incremented")
	}
	// The torn tail is physically gone and appends continue the sequence.
	if err := j.LogVerdict(Verdict{Epoch: 0, Worker: "w", Outcome: "rejected"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, err = fsio.OS.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recs, torn, dups := Replay(data)
	if torn != 0 || dups != 0 || len(recs) != 3 {
		t.Fatalf("after reopen: %d records, torn=%d dups=%d", len(recs), torn, dups)
	}
	if recs[2].Seq != recs[1].Seq+1 {
		t.Fatalf("sequence not continued: %d after %d", recs[2].Seq, recs[1].Seq)
	}
}

func TestOpenMissingFileIsEmptyJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "none.wal")
	j, rec, err := Open(fsio.OS, path, testObserver())
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if len(rec.Records) != 0 || rec.DiscardedTailBytes != 0 {
		t.Fatalf("recovery = %+v", rec)
	}
	if err := j.LogTask(Task{Epoch: 0}); err != nil {
		t.Fatal(err)
	}
}

func TestJournalRecordsMetric(t *testing.T) {
	o := testObserver()
	j, err := Create(fsio.OS, filepath.Join(t.TempDir(), "m.wal"), o)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for i := 0; i < 5; i++ {
		if err := j.LogSamples(Samples{Epoch: 0, Worker: "w", Indices: []int{1, 2}}); err != nil {
			t.Fatal(err)
		}
	}
	if got := o.Counter("journal_records_total").Value(); got != 5 {
		t.Errorf("journal_records_total = %d", got)
	}
}

func TestReconstructMidEpoch(t *testing.T) {
	recs := []Record{}
	add := func(kind string, v any) {
		t.Helper()
		data, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, Record{Seq: uint64(len(recs) + 1), Kind: kind, Data: data})
	}
	add(KindTask, Task{Epoch: 0, GlobalDigest: 1, Workers: 2})
	add(KindCommit, Commit{Epoch: 0, Worker: "w-0", Digest: 5, NumCheckpoints: 3})
	add(KindSeal, Seal{Epoch: 0, Accepted: 2, GlobalDigest: 9, AcceptedWorkers: []string{"w-0", "w-1"}})
	add(KindTask, Task{Epoch: 1, GlobalDigest: 9, Workers: 2})
	add(KindCheckpoint, Checkpoint{Epoch: 1, Worker: "w-0", Index: 0, Step: 0, Digest: 11})
	add(KindCheckpoint, Checkpoint{Epoch: 1, Worker: "w-0", Index: 1, Step: 3, Digest: 12})
	add(KindCheckpoint, Checkpoint{Epoch: 1, Worker: "w-0", Index: 1, Step: 3, Digest: 13}) // re-put wins

	st, err := Reconstruct(recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Sealed) != 1 || st.Sealed[0].Epoch != 0 {
		t.Fatalf("sealed = %+v", st.Sealed)
	}
	if st.InFlight != 1 || st.NextEpoch() != 1 {
		t.Fatalf("in-flight = %d", st.InFlight)
	}
	digests := st.CheckpointDigests("w-0")
	if digests[0] != 11 || digests[1] != 13 {
		t.Fatalf("digests = %v", digests)
	}
	if len(st.CheckpointDigests("w-1")) != 0 {
		t.Fatal("digests leaked across workers")
	}

	// A retried attempt's task record supersedes the first attempt.
	add(KindTask, Task{Epoch: 1, GlobalDigest: 9, Workers: 2})
	st, err = Reconstruct(recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Checkpoints) != 0 || st.InFlight != 1 {
		t.Fatalf("retried attempt kept stale transitions: %+v", st)
	}
}

func TestReconstructRejectsEpochGaps(t *testing.T) {
	sealData, err := json.Marshal(Seal{Epoch: 2})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Reconstruct([]Record{{Seq: 1, Kind: KindSeal, Data: sealData}})
	if err == nil {
		t.Fatal("seal gap accepted")
	}
	taskData, err := json.Marshal(Task{Epoch: 3})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Reconstruct([]Record{{Seq: 1, Kind: KindTask, Data: taskData}})
	if err == nil {
		t.Fatal("task gap accepted")
	}
	// Malformed bodies are errors, not silent skips.
	_, err = Reconstruct([]Record{{Seq: 1, Kind: KindTask, Data: []byte("{broken")}})
	if err == nil {
		t.Fatal("malformed body accepted")
	}
	// Unknown kinds are forward-compatible no-ops.
	st, err := Reconstruct([]Record{{Seq: 1, Kind: "future-kind", Data: []byte("{}")}})
	if err != nil || st.InFlight != -1 {
		t.Fatalf("unknown kind: %+v, %v", st, err)
	}
}

func TestCreateTruncatesPreviousContent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "epoch.wal")
	writeRecords(t, path, 4)
	j, err := Create(fsio.OS, path, testObserver())
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	data, err := fsio.OS.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 0 {
		t.Fatalf("Create left %d bytes", len(data))
	}
}

func TestOpenPropagatesFSFailures(t *testing.T) {
	ffs := fsio.NewFaultFS(fsio.OS, fsio.CrashAtWrite(5, 0))
	path := filepath.Join(t.TempDir(), "epoch.wal")
	// Create's truncating write is the first ordinal: the crash surfaces.
	if _, err := Create(ffs, path, testObserver()); !errors.Is(err, fsio.ErrInjectedCrash) {
		t.Fatalf("err = %v", err)
	}
}
