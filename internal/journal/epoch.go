package journal

import (
	"encoding/json"
	"fmt"
)

// Record kinds, one per durable protocol transition.
const (
	// KindTask — the manager announced epoch E's sub-task to the workers.
	KindTask = "task"
	// KindCommit — a worker's commitment arrived at the manager.
	KindCommit = "commit"
	// KindCheckpoint — a worker durably stored checkpoint (index, digest);
	// resume adopts a stored checkpoint only when its digest matches.
	KindCheckpoint = "ckpt"
	// KindSamples — the manager drew a submission's sample indices.
	KindSamples = "samples"
	// KindVerdict — the manager recorded a submission's verification
	// outcome.
	KindVerdict = "verdict"
	// KindSeal — the epoch settled: aggregation done, stats final.
	KindSeal = "seal"
)

// Task records a task announcement.
type Task struct {
	Epoch int `json:"epoch"`
	// GlobalDigest is fsio.Checksum over the announced global model's wire
	// encoding; resume verifies its reconstructed weights against it.
	GlobalDigest uint64 `json:"globalDigest"`
	// Workers is the pool size the task was announced to.
	Workers int `json:"workers"`
}

// Commit records one worker's received commitment.
type Commit struct {
	Epoch  int    `json:"epoch"`
	Worker string `json:"worker"`
	// Digest is fsio.Checksum over the commitment's wire encoding — the hash
	// list under the legacy scheme, the 32-byte root under a Merkle
	// commitment (zero when the scheme carries no commitment).
	Digest uint64 `json:"digest"`
	// Root is the submitted Merkle root for a root-committed submission
	// (empty under the legacy hash-list scheme).
	Root []byte `json:"root,omitempty"`
	// NumCheckpoints is the committed snapshot count.
	NumCheckpoints int `json:"numCheckpoints"`
}

// Checkpoint records that a worker durably persisted one training
// checkpoint of the in-flight epoch.
type Checkpoint struct {
	Epoch  int    `json:"epoch"`
	Worker string `json:"worker"`
	// Index is the checkpoint's position in the epoch's trace.
	Index int `json:"index"`
	// Step is the training step the snapshot was taken at.
	Step int `json:"step"`
	// Digest is fsio.Checksum over the snapshot's wire encoding.
	Digest uint64 `json:"digest"`
}

// Samples records the sample indices drawn for one submission.
type Samples struct {
	Epoch   int    `json:"epoch"`
	Worker  string `json:"worker"`
	Indices []int  `json:"indices"`
}

// Verdict records one submission's verification outcome.
type Verdict struct {
	Epoch   int    `json:"epoch"`
	Worker  string `json:"worker"`
	Outcome string `json:"outcome"`
	Reason  string `json:"reason,omitempty"`
}

// Seal records a settled epoch: the stats the pool reported and the
// resulting global model digest. A resumed run replays sealed epochs from
// these records instead of re-running them.
type Seal struct {
	Epoch           int     `json:"epoch"`
	TestAccuracy    float64 `json:"testAccuracy"`
	Accepted        int     `json:"accepted"`
	Rejected        int     `json:"rejected"`
	Absent          int     `json:"absent"`
	Detected        int     `json:"detected"`
	Missed          int     `json:"missed"`
	FalseRejections int     `json:"falseRejections"`
	VerifyCommBytes int64   `json:"verifyCommBytes"`
	ReexecSteps     int     `json:"reexecSteps"`
	// GlobalDigest is fsio.Checksum over the post-aggregation global
	// model's wire encoding.
	GlobalDigest uint64 `json:"globalDigest"`
	// AcceptedWorkers lists the IDs whose submissions were accepted, in
	// outcome order; resume replays reward credits from it.
	AcceptedWorkers []string `json:"acceptedWorkers,omitempty"`
}

// logJSON marshals v and appends it under kind.
func (j *Journal) logJSON(kind string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("journal %s: %w", kind, err)
	}
	if _, err := j.Append(kind, data); err != nil {
		return fmt.Errorf("journal %s: %w", kind, err)
	}
	return nil
}

// LogTask appends a task-announced record.
func (j *Journal) LogTask(t Task) error { return j.logJSON(KindTask, t) }

// LogCommit appends a commitment-received record.
func (j *Journal) LogCommit(c Commit) error { return j.logJSON(KindCommit, c) }

// LogCheckpoint appends a checkpoint-persisted record.
func (j *Journal) LogCheckpoint(c Checkpoint) error { return j.logJSON(KindCheckpoint, c) }

// LogSamples appends a samples-drawn record.
func (j *Journal) LogSamples(s Samples) error { return j.logJSON(KindSamples, s) }

// LogVerdict appends a verdict record.
func (j *Journal) LogVerdict(v Verdict) error { return j.logJSON(KindVerdict, v) }

// LogSeal appends an epoch-sealed record.
func (j *Journal) LogSeal(s Seal) error { return j.logJSON(KindSeal, s) }

// State is the protocol position a journal's intact records reconstruct:
// the sealed epoch history plus whatever the in-flight epoch had durably
// progressed to when the process died.
type State struct {
	// Sealed is the settled epoch history, in order.
	Sealed []Seal
	// InFlight is the epoch a task was announced for but never sealed, or
	// -1. A crashed epoch may appear as several task records (one per
	// crashed attempt); the latest attempt wins.
	InFlight int
	// Task is the in-flight epoch's announcement (nil when InFlight < 0).
	Task *Task
	// Commits, Checkpoints, Samples, Verdicts are the in-flight epoch's
	// durable transitions, in journal order.
	Commits     []Commit
	Checkpoints []Checkpoint
	Samples     []Samples
	Verdicts    []Verdict
}

// ClearInFlight drops the in-flight epoch's partial transitions (used when
// a state file proves the epoch actually sealed).
func (s *State) ClearInFlight() {
	s.InFlight = -1
	s.Task = nil
	s.Commits, s.Checkpoints, s.Samples, s.Verdicts = nil, nil, nil, nil
}

// CheckpointDigests returns the in-flight epoch's durable checkpoint
// digests for one worker, by index; later records win. Resume adopts a
// stored snapshot only when its bytes still hash to the journaled digest —
// equality of weights alone cannot distinguish this epoch's checkpoint 0
// from a stale file of a previous epoch that ended in the same global
// model.
func (s *State) CheckpointDigests(worker string) map[int]uint64 {
	out := make(map[int]uint64)
	for _, c := range s.Checkpoints {
		if c.Worker == worker {
			out[c.Index] = c.Digest
		}
	}
	return out
}

// NextEpoch returns the epoch a resumed run should execute next: the
// in-flight epoch when one exists, else the first unsealed epoch.
func (s *State) NextEpoch() int {
	if s.InFlight >= 0 {
		return s.InFlight
	}
	return len(s.Sealed)
}

// Reconstruct folds a journal's intact records into a State. It fails on
// structurally impossible histories (an epoch sealed twice with a gap, a
// record body that does not parse) — those indicate a bug or tampering, not
// a crash, and resuming from them would diverge silently.
func Reconstruct(recs []Record) (*State, error) {
	st := &State{InFlight: -1}
	maxSealed := -1
	for i, rec := range recs {
		switch rec.Kind {
		case KindTask:
			var t Task
			if err := json.Unmarshal(rec.Data, &t); err != nil {
				return nil, fmt.Errorf("journal record %d (%s): %w", i, rec.Kind, err)
			}
			if t.Epoch <= maxSealed {
				continue // stale announcement of an already-sealed epoch
			}
			if t.Epoch != maxSealed+1 {
				return nil, fmt.Errorf("journal record %d: task for epoch %d after sealing %d", i, t.Epoch, maxSealed)
			}
			// A repeated task for the in-flight epoch is a crashed attempt
			// being retried: the latest attempt's transitions supersede.
			st.ClearInFlight()
			st.InFlight = t.Epoch
			st.Task = &t
		case KindCommit:
			var c Commit
			if err := json.Unmarshal(rec.Data, &c); err != nil {
				return nil, fmt.Errorf("journal record %d (%s): %w", i, rec.Kind, err)
			}
			if c.Epoch == st.InFlight {
				st.Commits = append(st.Commits, c)
			}
		case KindCheckpoint:
			var c Checkpoint
			if err := json.Unmarshal(rec.Data, &c); err != nil {
				return nil, fmt.Errorf("journal record %d (%s): %w", i, rec.Kind, err)
			}
			if c.Epoch == st.InFlight {
				st.Checkpoints = append(st.Checkpoints, c)
			}
		case KindSamples:
			var s Samples
			if err := json.Unmarshal(rec.Data, &s); err != nil {
				return nil, fmt.Errorf("journal record %d (%s): %w", i, rec.Kind, err)
			}
			if s.Epoch == st.InFlight {
				st.Samples = append(st.Samples, s)
			}
		case KindVerdict:
			var v Verdict
			if err := json.Unmarshal(rec.Data, &v); err != nil {
				return nil, fmt.Errorf("journal record %d (%s): %w", i, rec.Kind, err)
			}
			if v.Epoch == st.InFlight {
				st.Verdicts = append(st.Verdicts, v)
			}
		case KindSeal:
			var s Seal
			if err := json.Unmarshal(rec.Data, &s); err != nil {
				return nil, fmt.Errorf("journal record %d (%s): %w", i, rec.Kind, err)
			}
			if s.Epoch <= maxSealed {
				continue // duplicate seal from a crash-reappend race
			}
			if s.Epoch != maxSealed+1 {
				return nil, fmt.Errorf("journal record %d: seal for epoch %d after sealing %d", i, s.Epoch, maxSealed)
			}
			st.Sealed = append(st.Sealed, s)
			maxSealed = s.Epoch
			if st.InFlight == s.Epoch {
				st.ClearInFlight()
			}
		default:
			// Unknown kinds are skipped, not fatal: a newer writer may add
			// record types an older reader can ignore.
		}
	}
	return st, nil
}
