// Package journal is the protocol's write-ahead epoch journal: an
// append-only file of checksummed records the manager and workers write
// every durable protocol transition into — task announced, commitment
// received, sample indices drawn, verdicts recorded, epoch sealed — before
// acting on it. After a crash, recovery replays the intact prefix, discards
// the torn tail (a record half-written when the process died), and
// reconstructs the pool's position mid-epoch, so a resumed run continues
// from the last durable transition instead of restarting the epoch.
//
// Each record is one fsio frame whose payload carries a monotonically
// increasing sequence number, a record kind, and the kind's JSON body. The
// sequence numbers make replay idempotent: a record appended twice (the
// crash landed between the write and the caller observing it, and the
// resumed run re-appended) is detected and skipped. Replay never fails —
// any suffix that does not parse as intact records is, by definition, the
// torn tail.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sync"

	"rpol/internal/fsio"
	"rpol/internal/obs"
)

// Record is one durable protocol transition.
type Record struct {
	// Seq is the record's sequence number, strictly increasing within a
	// journal file.
	Seq uint64
	// Kind names the record type (one of the Kind* constants).
	Kind string
	// Data is the kind-specific JSON body.
	Data []byte
}

// Record payload layout inside an fsio frame: seq (8 bytes big-endian),
// kind length (1 byte), kind, body.
const recHeaderSize = 9

// errBadRecord marks a frame whose payload is not a well-formed record.
var errBadRecord = errors.New("journal: malformed record")

// encodeRecord serializes a record into an fsio frame appended to dst.
func encodeRecord(dst []byte, r Record) ([]byte, error) {
	if len(r.Kind) == 0 || len(r.Kind) > 255 {
		return nil, fmt.Errorf("kind %q: %w", r.Kind, errBadRecord)
	}
	payload := make([]byte, 0, recHeaderSize+len(r.Kind)+len(r.Data))
	var seq [8]byte
	binary.BigEndian.PutUint64(seq[:], r.Seq)
	payload = append(payload, seq[:]...)
	payload = append(payload, byte(len(r.Kind)))
	payload = append(payload, r.Kind...)
	payload = append(payload, r.Data...)
	return fsio.AppendFrame(dst, payload), nil
}

// decodeRecord parses one frame payload.
func decodeRecord(payload []byte) (Record, error) {
	if len(payload) < recHeaderSize {
		return Record{}, fmt.Errorf("%d payload bytes: %w", len(payload), errBadRecord)
	}
	kindLen := int(payload[8])
	if kindLen == 0 || recHeaderSize+kindLen > len(payload) {
		return Record{}, fmt.Errorf("kind length %d in %d bytes: %w", kindLen, len(payload), errBadRecord)
	}
	return Record{
		Seq:  binary.BigEndian.Uint64(payload[:8]),
		Kind: string(payload[9 : 9+kindLen]),
		Data: payload[recHeaderSize+kindLen:],
	}, nil
}

// Replay parses a journal file's bytes into its intact record prefix. It
// never fails and never panics: the first frame that is torn, corrupt, or
// not a well-formed record ends the prefix, and everything from there on is
// the discarded tail. Records whose sequence number does not increase are
// duplicates from a crash-reappend race and are skipped (counted, not
// kept). The returned records' Data alias the input.
func Replay(data []byte) (recs []Record, discardedTail int, duplicates int) {
	rest := data
	var last uint64
	for len(rest) > 0 {
		payload, next, err := fsio.ReadFrame(rest)
		if err != nil {
			return recs, len(rest), duplicates
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			return recs, len(rest), duplicates
		}
		rest = next
		if len(recs) > 0 && rec.Seq <= last {
			duplicates++
			continue
		}
		recs = append(recs, rec)
		last = rec.Seq
	}
	return recs, 0, duplicates
}

// Recovery summarizes what Open found on disk.
type Recovery struct {
	// Records is the intact prefix, in order.
	Records []Record
	// DiscardedTailBytes is the length of the torn tail Open dropped (and
	// truncated away before reopening for append).
	DiscardedTailBytes int
	// SkippedDuplicates counts records dropped for non-increasing sequence
	// numbers.
	SkippedDuplicates int
}

// Journal is an open append-only journal file. Append is safe for
// concurrent use: the manager and concurrently-training workers log through
// one Journal.
type Journal struct {
	fs   fsio.FS
	path string
	obs  *obs.Observer

	mu      sync.Mutex
	ap      fsio.Appender
	nextSeq uint64
	encBuf  []byte
}

// Create truncates (or creates) the journal at path and opens it for
// appending. Any previous content is discarded — use Open to recover.
func Create(fs fsio.FS, path string, o *obs.Observer) (*Journal, error) {
	if err := fs.WriteFileAtomic(path, nil); err != nil {
		return nil, fmt.Errorf("journal create: %w", err)
	}
	ap, err := fs.Append(path)
	if err != nil {
		return nil, fmt.Errorf("journal create: %w", err)
	}
	return &Journal{fs: fs, path: path, obs: o.OrDefault(), ap: ap, nextSeq: 1}, nil
}

// Open recovers the journal at path — replaying the intact prefix,
// discarding the torn tail, skipping duplicates — and reopens it for
// appending. When the tail was torn or duplicates were skipped, the intact
// prefix is atomically rewritten first, so the file on disk is exactly the
// records Recovery reports. A missing file is an empty journal.
func Open(fs fsio.FS, path string, o *obs.Observer) (*Journal, *Recovery, error) {
	o = o.OrDefault()
	data, err := fs.ReadFile(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, nil, fmt.Errorf("journal open: %w", err)
	}
	recs, torn, dups := Replay(data)
	if torn > 0 || dups > 0 {
		var clean []byte
		for _, r := range recs {
			clean, err = encodeRecord(clean, r)
			if err != nil {
				return nil, nil, fmt.Errorf("journal rewrite: %w", err)
			}
		}
		if err := fs.WriteFileAtomic(path, clean); err != nil {
			return nil, nil, fmt.Errorf("journal rewrite: %w", err)
		}
	}
	ap, err := fs.Append(path)
	if err != nil {
		return nil, nil, fmt.Errorf("journal open: %w", err)
	}
	nextSeq := uint64(1)
	if n := len(recs); n > 0 {
		nextSeq = recs[n-1].Seq + 1
	}
	o.Counter("recovery_replayed_total").Add(int64(len(recs)))
	if torn > 0 {
		o.Counter("recovery_discarded_tail_total").Add(int64(torn))
	}
	if len(recs) > 0 || torn > 0 || dups > 0 {
		o.Publish(obs.StreamEvent{
			Kind:   obs.EventJournalRecovery,
			Detail: fmt.Sprintf("replayed=%d tornBytes=%d dups=%d", len(recs), torn, dups),
		})
	}
	j := &Journal{fs: fs, path: path, obs: o, ap: ap, nextSeq: nextSeq}
	return j, &Recovery{Records: recs, DiscardedTailBytes: torn, SkippedDuplicates: dups}, nil
}

// Append durably writes one record of the given kind and returns its
// sequence number. The record is synced before Append returns: when the
// caller acts on a transition, the transition is already on disk.
func (j *Journal) Append(kind string, data []byte) (uint64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.ap == nil {
		return 0, errors.New("journal: closed")
	}
	seq := j.nextSeq
	frame, err := encodeRecord(j.encBuf[:0], Record{Seq: seq, Kind: kind, Data: data})
	if err != nil {
		return 0, err
	}
	j.encBuf = frame
	if _, err := j.ap.Write(frame); err != nil {
		return 0, fmt.Errorf("journal append: %w", err)
	}
	if err := j.ap.Sync(); err != nil {
		return 0, fmt.Errorf("journal append: %w", err)
	}
	j.nextSeq++
	j.obs.Counter("journal_records_total").Inc()
	return seq, nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Close releases the append handle. Further Appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.ap == nil {
		return nil
	}
	ap := j.ap
	j.ap = nil
	return ap.Close()
}
