package journal

import (
	"bytes"
	"testing"

	"rpol/internal/fsio"
)

// FuzzJournalReplay fuzzes the recovery path: arbitrary bytes must never
// panic, and whatever Replay keeps must be a consistent prefix — strictly
// increasing sequence numbers, every record re-encodable to the exact bytes
// it was parsed from, and the accounting (kept frames + discarded tail)
// covering the input.
func FuzzJournalReplay(f *testing.F) {
	// Intact two-record journal.
	r1, _ := encodeRecord(nil, Record{Seq: 1, Kind: KindTask, Data: []byte(`{"epoch":0}`)})
	r2, _ := encodeRecord(nil, Record{Seq: 2, Kind: KindSeal, Data: []byte(`{"epoch":0}`)})
	intact := append(append([]byte(nil), r1...), r2...)
	f.Add(intact)
	// Torn tail: second record cut mid-frame.
	f.Add(intact[:len(r1)+3])
	// Duplicate sequence number.
	f.Add(append(append([]byte(nil), intact...), r1...))
	// Frame-valid but record-invalid payload (too short for the header).
	f.Add(fsio.AppendFrame(nil, []byte("tiny")))
	// Raw garbage and pathological length prefixes.
	f.Add([]byte("not a journal"))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, torn, dups := Replay(data)
		if torn < 0 || torn > len(data) {
			t.Fatalf("discarded tail %d of %d input bytes", torn, len(data))
		}
		var last uint64
		var reenc []byte
		for i, r := range recs {
			if i > 0 && r.Seq <= last {
				t.Fatalf("record %d: seq %d after %d", i, r.Seq, last)
			}
			last = r.Seq
			var err error
			reenc, err = encodeRecord(reenc, r)
			if err != nil {
				t.Fatalf("record %d does not re-encode: %v", i, err)
			}
		}
		// With no duplicates, the kept prefix re-encodes to the input's
		// leading bytes: Replay neither invents nor reorders records.
		if dups == 0 && !bytes.Equal(reenc, data[:len(data)-torn]) {
			t.Fatalf("prefix mismatch: kept %d records over %d bytes", len(recs), len(data)-torn)
		}
	})
}
