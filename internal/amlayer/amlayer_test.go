package amlayer

import (
	"errors"
	"testing"

	"rpol/internal/nn"
	"rpol/internal/tensor"
)

func TestNewDenseDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	a, err := NewDense("addr-1", 16, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewDense("addr-1", 16, cfg)
	if err != nil {
		t.Fatal(err)
	}
	da := a.Inner.(*nn.Dense)
	db := b.Inner.(*nn.Dense)
	if !da.W.Data.Equal(db.W.Data, 0) || !da.B.Equal(db.B, 0) {
		t.Error("same address must generate identical AMLayers")
	}
	c, err := NewDense("addr-2", 16, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dc := c.Inner.(*nn.Dense)
	if da.W.Data.Equal(dc.W.Data, 0) {
		t.Error("different addresses must generate different AMLayers")
	}
}

func TestConfigValidation(t *testing.T) {
	for _, c := range []float64{0, 1, -0.5, 1.5} {
		if _, err := NewDense("a", 4, Config{ScalingC: c}); !errors.Is(err, ErrBadConfig) {
			t.Errorf("c=%v: err = %v", c, err)
		}
	}
	if _, err := NewDense("a", 0, DefaultConfig()); err == nil {
		t.Error("want error for zero dim")
	}
}

func TestLipschitzBound(t *testing.T) {
	cfg := DefaultConfig()
	layer, err := NewDense("addr", 32, cfg)
	if err != nil {
		t.Fatal(err)
	}
	inner := layer.Inner.(*nn.Dense)
	// Power iteration estimates σ from below, so allow the estimation slack
	// inherent to Eq. (4).
	sigma := inner.W.SpectralNorm(400)
	if sigma > cfg.ScalingC*(1+1e-4) {
		t.Errorf("inner spectral norm %v exceeds c = %v", sigma, cfg.ScalingC)
	}
	// Empirical Lipschitz check of Eq. (3) on random pairs.
	rng := tensor.NewRNG(5)
	for trial := 0; trial < 20; trial++ {
		x1 := rng.NormalVector(32, 0, 1)
		x2 := rng.NormalVector(32, 0, 1)
		y1, err := inner.Forward(x1)
		if err != nil {
			t.Fatal(err)
		}
		y2, err := inner.Forward(x2)
		if err != nil {
			t.Fatal(err)
		}
		dy, err := tensor.Distance(y1, y2)
		if err != nil {
			t.Fatal(err)
		}
		dx, err := tensor.Distance(x1, x2)
		if err != nil {
			t.Fatal(err)
		}
		if dy > cfg.ScalingC*dx*(1+1e-4)+1e-9 {
			t.Errorf("Lipschitz violated: ‖f(x1)-f(x2)‖ = %v > c‖x1-x2‖ = %v", dy, cfg.ScalingC*dx)
		}
	}
}

func TestInvertibility(t *testing.T) {
	layer, err := NewDense("addr", 24, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(9)
	x := rng.NormalVector(24, 0, 1)
	y, err := layer.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Invert(layer, y, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(x, 1e-9) {
		d, _ := tensor.Distance(back, x)
		t.Errorf("inversion error %v; AMLayer must be a 1-1 mapping", d)
	}
}

func TestVerifyDense(t *testing.T) {
	cfg := DefaultConfig()
	layer, err := NewDense("manager-addr", 16, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(2)
	base, err := nn.NewNetwork(nn.NewDense(16, 4, rng))
	if err != nil {
		t.Fatal(err)
	}
	net, err := Prepend(layer, base)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyDense(net, "manager-addr", cfg); err != nil {
		t.Errorf("genuine address rejected: %v", err)
	}
	if err := VerifyDense(net, "thief-addr", cfg); !errors.Is(err, ErrMismatch) {
		t.Errorf("wrong address: err = %v", err)
	}
}

func TestVerifyDenseStructuralErrors(t *testing.T) {
	cfg := DefaultConfig()
	rng := tensor.NewRNG(3)
	plain, err := nn.NewNetwork(nn.NewDense(8, 2, rng))
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyDense(plain, "a", cfg); !errors.Is(err, ErrNotFound) {
		t.Errorf("network without AMLayer: err = %v", err)
	}
	if err := VerifyDense(&nn.Network{}, "a", cfg); !errors.Is(err, ErrNotFound) {
		t.Errorf("empty network: err = %v", err)
	}
}

func TestReplaceDenseAttack(t *testing.T) {
	cfg := DefaultConfig()
	layer, err := NewDense("victim", 16, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(4)
	base, err := nn.NewNetwork(nn.NewDense(16, 4, rng))
	if err != nil {
		t.Fatal(err)
	}
	net, err := Prepend(layer, base)
	if err != nil {
		t.Fatal(err)
	}
	if err := ReplaceDense(net, "attacker", cfg); err != nil {
		t.Fatal(err)
	}
	// After replacement, verification binds the attacker's address...
	if err := VerifyDense(net, "attacker", cfg); err != nil {
		t.Errorf("attacker address should verify post-replacement: %v", err)
	}
	// ...but no longer the victim's.
	if err := VerifyDense(net, "victim", cfg); !errors.Is(err, ErrMismatch) {
		t.Errorf("victim address: err = %v", err)
	}
}

func TestReplaceDenseOnPlainNetwork(t *testing.T) {
	rng := tensor.NewRNG(6)
	plain, err := nn.NewNetwork(nn.NewDense(8, 2, rng))
	if err != nil {
		t.Fatal(err)
	}
	if err := ReplaceDense(plain, "x", DefaultConfig()); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v", err)
	}
}

func TestAMLayerIsFrozen(t *testing.T) {
	layer, err := NewDense("addr", 8, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if layer.Params() != nil {
		t.Error("AMLayer must expose no trainable parameters")
	}
	rng := tensor.NewRNG(7)
	base, err := nn.NewNetwork(nn.NewDense(8, 2, rng))
	if err != nil {
		t.Fatal(err)
	}
	net, err := Prepend(layer, base)
	if err != nil {
		t.Fatal(err)
	}
	if net.NumParams() != 8*2+2 {
		t.Errorf("NumParams = %d; AMLayer weights leaked into trainables", net.NumParams())
	}
}

func TestNewConvAMLayer(t *testing.T) {
	cfg := DefaultConfig()
	layer, err := NewConv("addr", 3, 8, 8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if layer.InputDim() != 3*8*8 || layer.OutputDim() != 3*8*8 {
		t.Errorf("conv AMLayer dims %d→%d", layer.InputDim(), layer.OutputDim())
	}
	if layer.Params() != nil {
		t.Error("conv AMLayer must be frozen")
	}
	// Determinism.
	layer2, err := NewConv("addr", 3, 8, 8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := layer.Inner.(*nn.Conv2D)
	b := layer2.Inner.(*nn.Conv2D)
	if !a.W.Equal(b.W, 0) {
		t.Error("conv AMLayer must be deterministic in the address")
	}
	if _, err := NewConv("addr", 3, 8, 8, Config{ScalingC: 2}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("err = %v", err)
	}
}

func TestTrainingPreservesAMLayer(t *testing.T) {
	// After training steps, the AMLayer weights must be unchanged (it is
	// non-trainable) so address verification still passes.
	cfg := DefaultConfig()
	layer, err := NewDense("owner", 8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(8)
	base, err := nn.NewNetwork(nn.NewDense(8, 8, rng), nn.NewReLU(8), nn.NewDense(8, 3, rng))
	if err != nil {
		t.Fatal(err)
	}
	net, err := Prepend(layer, base)
	if err != nil {
		t.Fatal(err)
	}
	opt := &nn.SGDM{LR: 0.1, Momentum: 0.9}
	xs := []tensor.Vector{rng.NormalVector(8, 0, 1), rng.NormalVector(8, 0, 1)}
	labels := []int{0, 2}
	for i := 0; i < 20; i++ {
		if _, err := net.TrainBatch(xs, labels, opt); err != nil {
			t.Fatal(err)
		}
	}
	if err := VerifyDense(net, "owner", cfg); err != nil {
		t.Errorf("AMLayer mutated by training: %v", err)
	}
}

func TestDenseStackDeterministicAndDistinct(t *testing.T) {
	cfg := StackConfig()
	a, err := NewDenseStack("addr", 12, DefaultStackDepth, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != DefaultStackDepth {
		t.Fatalf("depth = %d", len(a))
	}
	b, err := NewDenseStack("addr", 12, DefaultStackDepth, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		da := a[i].Inner.(*nn.Dense)
		db := b[i].Inner.(*nn.Dense)
		if !da.W.Data.Equal(db.W.Data, 0) {
			t.Errorf("block %d not deterministic", i)
		}
	}
	// Blocks within a stack must differ from each other (distinct seeds).
	d0 := a[0].Inner.(*nn.Dense)
	d1 := a[1].Inner.(*nn.Dense)
	if d0.W.Data.Equal(d1.W.Data, 0) {
		t.Error("stack blocks identical")
	}
}

func TestDenseStackValidation(t *testing.T) {
	if _, err := NewDenseStack("a", 0, 2, DefaultConfig()); err == nil {
		t.Error("zero dim accepted")
	}
	if _, err := NewDenseStack("a", 4, 0, DefaultConfig()); err == nil {
		t.Error("zero depth accepted")
	}
	if _, err := NewDenseStack("a", 4, 2, Config{ScalingC: 2}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("err = %v", err)
	}
}

func TestVerifyAndReplaceDenseStack(t *testing.T) {
	cfg := DefaultConfig()
	stack, err := NewDenseStack("owner", 10, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(14)
	base, err := nn.NewNetwork(nn.NewDense(10, 3, rng))
	if err != nil {
		t.Fatal(err)
	}
	net, err := PrependStack(stack, base)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyDenseStack(net, "owner", 3, cfg); err != nil {
		t.Errorf("genuine stack rejected: %v", err)
	}
	if err := VerifyDenseStack(net, "thief", 3, cfg); !errors.Is(err, ErrMismatch) {
		t.Errorf("thief address: err = %v", err)
	}
	// Asking for a deeper stack than present must fail structurally.
	if err := VerifyDenseStack(net, "owner", 4, cfg); !errors.Is(err, ErrNotFound) {
		t.Errorf("over-deep verify: err = %v", err)
	}
	// Replacing rebinds all blocks to the attacker.
	if err := ReplaceDenseStack(net, "attacker", cfg); err != nil {
		t.Fatal(err)
	}
	if err := VerifyDenseStack(net, "attacker", 3, cfg); err != nil {
		t.Errorf("attacker stack rejected post-replacement: %v", err)
	}
	if err := VerifyDenseStack(net, "owner", 3, cfg); !errors.Is(err, ErrMismatch) {
		t.Errorf("owner still verifies: %v", err)
	}
}

func TestStackFunctionsOnPlainNetwork(t *testing.T) {
	rng := tensor.NewRNG(15)
	plain, err := nn.NewNetwork(nn.NewDense(6, 2, rng))
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyDenseStack(plain, "a", 1, DefaultConfig()); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v", err)
	}
	if err := ReplaceDenseStack(plain, "a", DefaultConfig()); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v", err)
	}
	if err := ReplaceDenseStack(plain, "a", Config{ScalingC: 2}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("err = %v", err)
	}
}

func TestStackInvertible(t *testing.T) {
	// Even the strong theft-resistant stack is a 1-1 mapping: inverting
	// block by block recovers the input.
	cfg := StackConfig()
	stack, err := NewDenseStack("owner", 8, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(16)
	x := rng.NormalVector(8, 0, 1)
	y := x.Clone()
	for _, block := range stack {
		out, err := block.Forward(y)
		if err != nil {
			t.Fatal(err)
		}
		y = out
	}
	for i := len(stack) - 1; i >= 0; i-- {
		back, err := Invert(stack[i], y, 500)
		if err != nil {
			t.Fatal(err)
		}
		y = back
	}
	if !y.Equal(x, 1e-6) {
		d, _ := tensor.Distance(y, x)
		t.Errorf("stack inversion error %v", d)
	}
}
