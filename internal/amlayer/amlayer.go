// Package amlayer implements the paper's address-encoded mapping layer
// (AMLayer, Sec. V-A): a non-trainable residual layer whose weights are a
// deterministic pseudo-random function of the pool manager's blockchain
// address, prepended to the model before training.
//
// Properties delivered:
//
//   - Ownership binding. Any consensus node can regenerate the layer from
//     the block proposer's address and check bit-for-bit that the submitted
//     model embeds it; mining rewards go to the encoded address.
//   - No information loss. The residual inner map is spectral-normalized to
//     Lipschitz constant c < 1 (Eq. 3/4), which makes x ↦ x + f(x) an
//     invertible 1-1 mapping — the upper layers see a lossless re-encoding
//     of the input (Behrmann et al., invertible residual networks).
//   - Tamper evidence. Replacing the AMLayer with one encoding a different
//     address re-encodes every input through a different random map, which
//     collapses the accuracy of the stolen model (the address-replacing
//     attack of Sec. VII-B).
package amlayer

import (
	"errors"
	"fmt"

	"rpol/internal/nn"
	"rpol/internal/prf"
	"rpol/internal/tensor"
)

// Config tunes AMLayer generation.
type Config struct {
	// ScalingC is the Lipschitz bound c < 1 of Eq. (3). The paper's
	// evaluation uses 0.5 (Sec. VII-B).
	ScalingC float64
	// PowerIters is the number of power-iteration rounds used to estimate
	// the maximum singular value for spectral normalization (Eq. 4).
	PowerIters int
}

// DefaultConfig mirrors the paper's evaluation settings.
func DefaultConfig() Config { return Config{ScalingC: 0.5, PowerIters: 200} }

// DefaultStackDepth is the AMLayer depth the pool simulation and the
// experiment harness use for the dense proxy variant (see NewDenseStack).
const DefaultStackDepth = 5

// StackConfig returns the configuration for the dense proxy AMLayer stack.
// The paper's conv AMLayer at c = 0.5 collapses a stolen model because an
// 18+-layer network amplifies the re-encoding mismatch; the shallow proxy
// MLPs need a stronger per-block map (c = 0.9, still < 1, so every block
// stays invertible) to reproduce that collapse. See DESIGN.md.
func StackConfig() Config { return Config{ScalingC: 0.9, PowerIters: 200} }

// Errors returned by AMLayer operations.
var (
	ErrBadConfig = errors.New("amlayer: scaling coefficient must be in (0, 1)")
	ErrNotFound  = errors.New("amlayer: network does not start with an AMLayer")
	ErrMismatch  = errors.New("amlayer: weights do not encode the claimed address")
)

func (c Config) validate() error {
	if c.ScalingC <= 0 || c.ScalingC >= 1 {
		return fmt.Errorf("c = %v: %w", c.ScalingC, ErrBadConfig)
	}
	return nil
}

func (c Config) iters() int {
	if c.PowerIters <= 0 {
		return 200
	}
	return c.PowerIters
}

// NewDense generates the dense-variant AMLayer for flat inputs of length
// dim: a frozen residual block whose inner dense map is PRF-seeded from the
// address and spectral-normalized to ScalingC.
func NewDense(address string, dim int, cfg Config) (*nn.Residual, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if dim < 1 {
		return nil, fmt.Errorf("amlayer: dimension %d", dim)
	}
	inner := denseInner(address, dim, cfg)
	res, err := nn.NewResidual(inner)
	if err != nil {
		return nil, fmt.Errorf("amlayer: %w", err)
	}
	return res, nil
}

func denseInner(address string, dim int, cfg Config) *nn.Dense {
	rng := tensor.NewRNG(prf.SeedFromString("amlayer/" + address))
	inner := nn.NewDense(dim, dim, rng)
	inner.B = rng.NormalVector(dim, 0, 0.01)
	nn.SpectralNormalize(inner.W, cfg.ScalingC, cfg.iters())
	inner.Frozen = true
	return inner
}

// NewConv generates the convolutional-variant AMLayer for (channels, h, w)
// inputs: a frozen residual block around a channel-preserving 3×3 same-
// padding convolution, matching the shape of the paper's conv AMLayer.
func NewConv(address string, channels, h, w int, cfg Config) (*nn.Residual, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := tensor.NewRNG(prf.SeedFromString("amlayer-conv/" + address))
	conv, err := nn.NewConv2D(channels, h, w, channels, 3, 1, rng)
	if err != nil {
		return nil, fmt.Errorf("amlayer: %w", err)
	}
	// Spectral-normalize the kernel viewed as an outC×(inC·K·K) matrix. This
	// bounds the per-patch operator norm; combined with the small c it keeps
	// the residual map contractive in practice.
	nn.SpectralNormalize(conv.WeightMatrix(), cfg.ScalingC, cfg.iters())
	conv.Frozen = true
	res, err := nn.NewResidual(conv)
	if err != nil {
		return nil, fmt.Errorf("amlayer: %w", err)
	}
	return res, nil
}

// Prepend returns a new network with the AMLayer in front of net's layers,
// as the manager does when initializing the training task.
func Prepend(layer *nn.Residual, net *nn.Network) (*nn.Network, error) {
	layers := make([]nn.Layer, 0, len(net.Layers)+1)
	layers = append(layers, layer)
	layers = append(layers, net.Layers...)
	out, err := nn.NewNetwork(layers...)
	if err != nil {
		return nil, fmt.Errorf("amlayer prepend: %w", err)
	}
	return out, nil
}

// VerifyDense recomputes the dense AMLayer from the claimed address and
// checks bit-for-bit that the network's first layer embeds it. This is the
// consensus-node check that decides who owns a proposed model.
func VerifyDense(net *nn.Network, address string, cfg Config) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	if len(net.Layers) == 0 {
		return ErrNotFound
	}
	res, ok := net.Layers[0].(*nn.Residual)
	if !ok {
		return ErrNotFound
	}
	got, ok := res.Inner.(*nn.Dense)
	if !ok {
		return ErrNotFound
	}
	want := denseInner(address, got.InputDim(), cfg)
	if !got.W.Data.Equal(want.W.Data, 0) || !got.B.Equal(want.B, 0) {
		return fmt.Errorf("address %q: %w", address, ErrMismatch)
	}
	return nil
}

// ReplaceDense swaps the network's leading dense AMLayer for one encoding
// attackerAddress — the address-replacing attack evaluated in Sec. VII-B.
// It mutates net in place and returns an error if net has no dense AMLayer.
func ReplaceDense(net *nn.Network, attackerAddress string, cfg Config) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	if len(net.Layers) == 0 {
		return ErrNotFound
	}
	res, ok := net.Layers[0].(*nn.Residual)
	if !ok {
		return ErrNotFound
	}
	inner, ok := res.Inner.(*nn.Dense)
	if !ok {
		return ErrNotFound
	}
	res.Inner = denseInner(attackerAddress, inner.InputDim(), cfg)
	return nil
}

// NewDenseStack generates a depth-`blocks` AMLayer: a chain of frozen
// residual blocks, each PRF-seeded from (address, block index). A single
// residual block with Lipschitz-bounded inner map stays close to the
// identity, which limits how much damage an address-replacing attack does to
// a shallow downstream model; composing several blocks amplifies the
// divergence between two addresses' encodings while every block remains
// individually invertible, so the stack is still a lossless 1-1 mapping.
func NewDenseStack(address string, dim, blocks int, cfg Config) ([]*nn.Residual, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if dim < 1 || blocks < 1 {
		return nil, fmt.Errorf("amlayer: dim %d, blocks %d", dim, blocks)
	}
	out := make([]*nn.Residual, blocks)
	for i := range out {
		inner := denseInner(fmt.Sprintf("%s#%d", address, i), dim, cfg)
		res, err := nn.NewResidual(inner)
		if err != nil {
			return nil, fmt.Errorf("amlayer block %d: %w", i, err)
		}
		out[i] = res
	}
	return out, nil
}

// PrependStack returns a new network with the whole AMLayer stack in front
// of net's layers.
func PrependStack(stack []*nn.Residual, net *nn.Network) (*nn.Network, error) {
	layers := make([]nn.Layer, 0, len(net.Layers)+len(stack))
	for _, l := range stack {
		layers = append(layers, l)
	}
	layers = append(layers, net.Layers...)
	out, err := nn.NewNetwork(layers...)
	if err != nil {
		return nil, fmt.Errorf("amlayer prepend stack: %w", err)
	}
	return out, nil
}

// leadingStack returns the network's leading frozen residual-dense blocks.
func leadingStack(net *nn.Network) []*nn.Residual {
	var out []*nn.Residual
	for _, l := range net.Layers {
		res, ok := l.(*nn.Residual)
		if !ok {
			break
		}
		if _, ok := res.Inner.(*nn.Dense); !ok {
			break
		}
		out = append(out, res)
	}
	return out
}

// VerifyDenseStack recomputes a depth-`blocks` AMLayer stack from the
// claimed address and checks bit-for-bit that the network's leading layers
// embed it.
func VerifyDenseStack(net *nn.Network, address string, blocks int, cfg Config) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	stack := leadingStack(net)
	if len(stack) < blocks {
		return ErrNotFound
	}
	for i := 0; i < blocks; i++ {
		got, ok := stack[i].Inner.(*nn.Dense)
		if !ok {
			return ErrNotFound
		}
		want := denseInner(fmt.Sprintf("%s#%d", address, i), got.InputDim(), cfg)
		if !got.W.Data.Equal(want.W.Data, 0) || !got.B.Equal(want.B, 0) {
			return fmt.Errorf("block %d, address %q: %w", i, address, ErrMismatch)
		}
	}
	return nil
}

// ReplaceDenseStack swaps every leading AMLayer block for ones encoding
// attackerAddress — the stacked variant of the address-replacing attack.
func ReplaceDenseStack(net *nn.Network, attackerAddress string, cfg Config) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	stack := leadingStack(net)
	if len(stack) == 0 {
		return ErrNotFound
	}
	for i, res := range stack {
		inner := res.Inner.(*nn.Dense)
		res.Inner = denseInner(fmt.Sprintf("%s#%d", attackerAddress, i), inner.InputDim(), cfg)
	}
	return nil
}

// Invert recovers the input x from y = AMLayer(x) by fixed-point iteration
// x ← y − f(x), which converges because the inner map is a contraction
// (Lipschitz constant c < 1). It demonstrates the layer's losslessness.
func Invert(layer *nn.Residual, y tensor.Vector, iters int) (tensor.Vector, error) {
	if iters <= 0 {
		iters = 100
	}
	x := y.Clone()
	for i := 0; i < iters; i++ {
		fx, err := layer.Inner.Forward(x)
		if err != nil {
			return nil, fmt.Errorf("amlayer invert: %w", err)
		}
		next, err := y.Sub(fx)
		if err != nil {
			return nil, fmt.Errorf("amlayer invert: %w", err)
		}
		x = next
	}
	return x, nil
}
