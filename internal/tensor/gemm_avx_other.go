//go:build !amd64

package tensor

// Non-amd64 hosts have no SIMD kernels: useAVX is constant-false, the
// dispatch sites compile the portable kernels only, and the stubs below are
// unreachable (the gates above them never pass).

const useAVX = false

func packLanes(Vector, *Matrix) {
	panic("tensor: packLanes without SIMD support")
}

func (m *Matrix) mulMatRangeAVX(dst, x *Matrix, pack Vector, lo, hi int) {
	panic("tensor: mulMatRangeAVX without SIMD support")
}

func (m *Matrix) addOuterBatchRangeAVX(alpha float64, x, y *Matrix, lo, hi int) {
	panic("tensor: addOuterBatchRangeAVX without SIMD support")
}
