package tensor

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Encoding limits guard against corrupt or adversarial payloads: a decoded
// vector may not claim more elements than maxDecodeElems.
const maxDecodeElems = 1 << 28

var errCorruptVector = errors.New("tensor: corrupt vector encoding")

// Encode serializes v to a compact binary form: an 8-byte little-endian
// length prefix followed by IEEE-754 float64 values. This is the wire and
// hash representation used for checkpoints and commitments — identical
// weights always produce identical bytes.
func (v Vector) Encode() []byte {
	return v.AppendEncode(nil)
}

// AppendEncode appends the Encode representation of v to dst and returns the
// extended slice, following the append-style stdlib convention. Hashing and
// wire paths that commit checkpoints every interval reuse one buffer across
// calls instead of copying the full weight vector per commitment.
func (v Vector) AppendEncode(dst []byte) []byte {
	off := len(dst)
	need := EncodedSize(len(v))
	if cap(dst)-off < need {
		grown := make([]byte, off, off+need)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:off+need]
	binary.LittleEndian.PutUint64(dst[off:], uint64(len(v)))
	for i, x := range v {
		binary.LittleEndian.PutUint64(dst[off+8+8*i:], math.Float64bits(x))
	}
	return dst
}

// EncodedSize returns the number of bytes Encode produces for a vector with
// n elements. The network cost model uses it to account for transfers
// without materializing payloads.
func EncodedSize(n int) int { return 8 + 8*n }

// DecodeVector parses a vector previously produced by Encode.
func DecodeVector(buf []byte) (Vector, error) {
	if len(buf) < 8 {
		return nil, fmt.Errorf("short header (%d bytes): %w", len(buf), errCorruptVector)
	}
	n := binary.LittleEndian.Uint64(buf)
	if n > maxDecodeElems {
		return nil, fmt.Errorf("claimed %d elements: %w", n, errCorruptVector)
	}
	want := 8 + 8*int(n)
	if len(buf) != want {
		return nil, fmt.Errorf("length %d, want %d: %w", len(buf), want, errCorruptVector)
	}
	v := make(Vector, n)
	for i := range v {
		v[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8+8*i:]))
	}
	return v, nil
}
