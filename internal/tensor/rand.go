package tensor

import (
	"math"
	"math/rand"
)

// RNG is a deterministic random source for tensor initialization and noise
// injection. It wraps math/rand with the distributions the repository needs.
// Every consumer of randomness in this codebase takes an explicit *RNG so
// that training runs, adversary behaviour, and LSH families are replayable
// from a seed.
type RNG struct {
	src *rand.Rand
}

// NewRNG returns a deterministic RNG seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{src: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 { return r.src.Float64() }

// Intn returns a uniform value in [0, n).
func (r *RNG) Intn(n int) int { return r.src.Intn(n) }

// Int63 returns a non-negative uniform 63-bit integer.
func (r *RNG) Int63() int64 { return r.src.Int63() }

// NormFloat64 returns a standard normal variate.
func (r *RNG) NormFloat64() float64 { return r.src.NormFloat64() }

// Uniform returns a value drawn uniformly from [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.src.Float64()
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int { return r.src.Perm(n) }

// Shuffle randomizes the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) { r.src.Shuffle(n, swap) }

// NormalVector returns a vector of n normal variates with the given mean and
// standard deviation.
func (r *RNG) NormalVector(n int, mean, std float64) Vector {
	v := make(Vector, n)
	r.FillNormal(v, mean, std)
	return v
}

// FillNormal overwrites dst with normal variates, drawing exactly the same
// sequence NormalVector(len(dst), mean, std) would — the buffer-reusing form
// for per-step noise generation.
func (r *RNG) FillNormal(dst Vector, mean, std float64) {
	for i := range dst {
		dst[i] = mean + std*r.src.NormFloat64()
	}
}

// UniformVector returns a vector of n uniform variates in [lo, hi).
func (r *RNG) UniformVector(n int, lo, hi float64) Vector {
	v := make(Vector, n)
	for i := range v {
		v[i] = r.Uniform(lo, hi)
	}
	return v
}

// XavierMatrix returns a rows×cols matrix initialized with the Glorot/Xavier
// uniform scheme, the default weight initialization for layers in
// internal/nn.
func (r *RNG) XavierMatrix(rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	limit := math.Sqrt(6.0 / float64(rows+cols))
	for i := range m.Data {
		m.Data[i] = r.Uniform(-limit, limit)
	}
	return m
}
