package tensor

import (
	"fmt"

	"rpol/internal/parallel"
)

// kernelFlopTarget sizes row/column chunks so each parallel chunk carries
// roughly this many multiply-adds; below that goroutine handoff costs more
// than the arithmetic. Chunk boundaries derive only from the matrix shape
// and this constant — never from worker count — preserving bit-determinism.
const kernelFlopTarget = 4096

// chunkGrain returns the per-chunk span for a loop of extent n whose body
// costs `width` multiply-adds per index.
func chunkGrain(n, width int) int {
	if width <= 0 {
		width = 1
	}
	g := kernelFlopTarget / width
	if g < 1 {
		g = 1
	}
	if g > n {
		g = n
	}
	return g
}

// MulVecInto computes y = m·x without allocating; y must have length m.Rows.
// It is the scratch-reusing form of MulVec.
func (m *Matrix) MulVecInto(y, x Vector) error {
	if len(x) != m.Cols || len(y) != m.Rows {
		return fmt.Errorf("mulvec into %dx%d by %d into %d: %w", m.Rows, m.Cols, len(x), len(y), ErrShapeMismatch)
	}
	m.mulVecRange(y, x, 0, m.Rows)
	return nil
}

// mulVecRange fills y[lo:hi] with rows lo..hi of m·x. Each output element is
// an independent left-to-right dot product, so splitting rows across chunks
// cannot change any bit of the result.
func (m *Matrix) mulVecRange(y, x Vector, lo, hi int) {
	for i := lo; i < hi; i++ {
		row := m.Row(i)
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
}

// MulVecPool is MulVec with rows chunked across the pool. Bit-identical to
// the serial MulVec for any worker count. A nil pool runs serially.
func (m *Matrix) MulVecPool(p *parallel.Pool, x Vector) (Vector, error) {
	if len(x) != m.Cols {
		return nil, fmt.Errorf("mulvec %dx%d by %d: %w", m.Rows, m.Cols, len(x), ErrShapeMismatch)
	}
	y := NewVector(m.Rows)
	p.For(m.Rows, chunkGrain(m.Rows, m.Cols), func(lo, hi int) {
		m.mulVecRange(y, x, lo, hi)
	})
	return y, nil
}

// MulVecTInto computes y = mᵀ·x without allocating; y must have length
// m.Cols. It is the scratch-reusing form of MulVecT.
func (m *Matrix) MulVecTInto(y, x Vector) error {
	if len(x) != m.Rows || len(y) != m.Cols {
		return fmt.Errorf("mulvecT into %dx%d by %d into %d: %w", m.Rows, m.Cols, len(x), len(y), ErrShapeMismatch)
	}
	m.mulVecTRange(y, x, 0, m.Cols)
	return nil
}

// mulVecTRange fills columns lo..hi of y = mᵀ·x, accumulating over rows in
// ascending order. Chunking COLUMNS (not rows) keeps each y[j] a single
// ascending-i sum — the same association as the serial MulVecT — so the
// parallel result is bit-identical. Row-chunking with per-chunk partials
// would re-associate the float additions and change low-order bits.
func (m *Matrix) mulVecTRange(y, x Vector, lo, hi int) {
	for j := lo; j < hi; j++ {
		y[j] = 0
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		xi := x[i]
		for j := lo; j < hi; j++ {
			y[j] += row[j] * xi
		}
	}
}

// MulVecTPool is MulVecT with columns chunked across the pool. Bit-identical
// to the serial MulVecT for any worker count. A nil pool runs serially.
func (m *Matrix) MulVecTPool(p *parallel.Pool, x Vector) (Vector, error) {
	if len(x) != m.Rows {
		return nil, fmt.Errorf("mulvecT %dx%d by %d: %w", m.Rows, m.Cols, len(x), ErrShapeMismatch)
	}
	y := NewVector(m.Cols)
	p.For(m.Cols, chunkGrain(m.Cols, m.Rows), func(lo, hi int) {
		m.mulVecTRange(y, x, lo, hi)
	})
	return y, nil
}

// AddOuterPool is AddOuter with rows chunked across the pool. Each row i is
// updated only by its own chunk (row[j] += alpha*x[i]*y[j]), so the result
// is bit-identical to the serial AddOuter for any worker count.
func (m *Matrix) AddOuterPool(p *parallel.Pool, alpha float64, x, y Vector) error {
	if len(x) != m.Rows || len(y) != m.Cols {
		return fmt.Errorf("addouter %dx%d by %dx%d: %w", m.Rows, m.Cols, len(x), len(y), ErrShapeMismatch)
	}
	p.For(m.Rows, chunkGrain(m.Rows, m.Cols), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := m.Row(i)
			ax := alpha * x[i]
			for j := range row {
				row[j] += ax * y[j]
			}
		}
	})
	return nil
}

// SpectralNormPool is SpectralNorm with the two matrix-vector products
// chunked across the pool. The per-iteration math is MulVecInto/MulVecTInto
// over fixed chunks, so the estimate is bit-identical to the serial
// SpectralNorm for any worker count (both share spectralNorm below).
func (m *Matrix) SpectralNormPool(p *parallel.Pool, iters int) float64 {
	return m.spectralNorm(p, iters)
}
