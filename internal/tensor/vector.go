// Package tensor provides the dense float64 vector and matrix kernels that
// the rest of the repository builds on: model weights, gradients, LSH
// projections, and checkpoint payloads are all tensor.Vector values.
//
// The package is deliberately minimal — it implements exactly the linear
// algebra the RPoL protocol and its neural-network substrate need, with
// deterministic seeded initialization so that training runs are replayable.
package tensor

import (
	"errors"
	"fmt"
	"math"
)

// Vector is a dense one-dimensional array of float64 values. It is the
// canonical representation of flattened model weights in this repository.
type Vector []float64

// ErrShapeMismatch is returned when an operation receives operands whose
// dimensions are incompatible.
var ErrShapeMismatch = errors.New("tensor: shape mismatch")

// NewVector returns a zero-initialized vector with n elements.
func NewVector(n int) Vector {
	return make(Vector, n)
}

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Zero sets every element of v to 0 in place.
func (v Vector) Zero() {
	for i := range v {
		v[i] = 0
	}
}

// Fill sets every element of v to x in place.
func (v Vector) Fill(x float64) {
	for i := range v {
		v[i] = x
	}
}

// Add returns v + w as a new vector.
func (v Vector) Add(w Vector) (Vector, error) {
	if len(v) != len(w) {
		return nil, fmt.Errorf("add %d vs %d: %w", len(v), len(w), ErrShapeMismatch)
	}
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out, nil
}

// Sub returns v - w as a new vector.
func (v Vector) Sub(w Vector) (Vector, error) {
	if len(v) != len(w) {
		return nil, fmt.Errorf("sub %d vs %d: %w", len(v), len(w), ErrShapeMismatch)
	}
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out, nil
}

// AXPY performs v += alpha*w in place. It is the hot-path update used by
// every optimizer in internal/nn.
func (v Vector) AXPY(alpha float64, w Vector) error {
	if len(v) != len(w) {
		return fmt.Errorf("axpy %d vs %d: %w", len(v), len(w), ErrShapeMismatch)
	}
	for i := range v {
		v[i] += alpha * w[i]
	}
	return nil
}

// Scale multiplies every element of v by alpha in place.
func (v Vector) Scale(alpha float64) {
	for i := range v {
		v[i] *= alpha
	}
}

// Dot returns the inner product of v and w.
func (v Vector) Dot(w Vector) (float64, error) {
	if len(v) != len(w) {
		return 0, fmt.Errorf("dot %d vs %d: %w", len(v), len(w), ErrShapeMismatch)
	}
	var s float64
	for i := range v {
		s += v[i] * w[i]
	}
	return s, nil
}

// Norm2 returns the Euclidean (L2) norm of v.
func (v Vector) Norm2() float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Distance returns the Euclidean distance between v and w. This is the
// distance measure used throughout the paper for reproduction errors and
// spoof distances (Sec. VII-C).
func Distance(v, w Vector) (float64, error) {
	if len(v) != len(w) {
		return 0, fmt.Errorf("distance %d vs %d: %w", len(v), len(w), ErrShapeMismatch)
	}
	var s float64
	for i := range v {
		d := v[i] - w[i]
		s += d * d
	}
	return math.Sqrt(s), nil
}

// MaxAbs returns the largest absolute element of v, or 0 for an empty vector.
func (v Vector) MaxAbs() float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Sum returns the sum of all elements of v.
func (v Vector) Sum() float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Equal reports whether v and w have the same length and all elements are
// within tol of each other.
func (v Vector) Equal(w Vector, tol float64) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if math.Abs(v[i]-w[i]) > tol {
			return false
		}
	}
	return true
}

// IsFinite reports whether every element of v is a finite number.
func (v Vector) IsFinite() bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}
