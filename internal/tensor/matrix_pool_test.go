package tensor

import (
	"bytes"
	"math"
	"testing"

	"rpol/internal/parallel"
)

// testMatrix builds a deterministic dense matrix with scale-varied entries
// so float non-associativity would be visible if chunking re-ordered sums.
func testMatrix(rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, math.Sin(float64(i*cols+j))*math.Pow(10, float64((i+j)%9)-4))
		}
	}
	return m
}

func testVector(n int) Vector {
	v := NewVector(n)
	for i := range v {
		v[i] = math.Cos(float64(i)*0.9) * math.Pow(10, float64(i%7)-3)
	}
	return v
}

func bitsEqual(t *testing.T, name string, got, want Vector) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", name, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: bit mismatch at %d: %x vs %x",
				name, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
		}
	}
}

// TestPoolKernelsBitIdentical verifies the chunked kernels reproduce the
// serial kernels exactly, for every worker count, on shapes that exercise
// multiple chunks and ragged tails.
func TestPoolKernelsBitIdentical(t *testing.T) {
	shapes := []struct{ rows, cols int }{
		{1, 1}, {3, 70}, {70, 3}, {130, 50}, {257, 129},
	}
	for _, sh := range shapes {
		m := testMatrix(sh.rows, sh.cols)
		x := testVector(sh.cols)
		xt := testVector(sh.rows)
		wantMul, err := m.MulVec(x)
		if err != nil {
			t.Fatal(err)
		}
		wantMulT, err := m.MulVecT(xt)
		if err != nil {
			t.Fatal(err)
		}
		wantOuter := m.Clone()
		if err := wantOuter.AddOuter(0.37, xt, x); err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 8} {
			p := parallel.New(workers)
			gotMul, err := m.MulVecPool(p, x)
			if err != nil {
				t.Fatal(err)
			}
			bitsEqual(t, "MulVecPool", gotMul, wantMul)
			gotMulT, err := m.MulVecTPool(p, xt)
			if err != nil {
				t.Fatal(err)
			}
			bitsEqual(t, "MulVecTPool", gotMulT, wantMulT)
			gotOuter := m.Clone()
			if err := gotOuter.AddOuterPool(p, 0.37, xt, x); err != nil {
				t.Fatal(err)
			}
			bitsEqual(t, "AddOuterPool", gotOuter.Data, wantOuter.Data)
		}
		// nil pool is the serial path.
		gotMul, err := m.MulVecPool(nil, x)
		if err != nil {
			t.Fatal(err)
		}
		bitsEqual(t, "MulVecPool nil", gotMul, wantMul)
	}
}

func TestIntoKernels(t *testing.T) {
	m := testMatrix(17, 23)
	x := testVector(23)
	xt := testVector(17)
	want, _ := m.MulVec(x)
	y := NewVector(17)
	if err := m.MulVecInto(y, x); err != nil {
		t.Fatal(err)
	}
	bitsEqual(t, "MulVecInto", y, want)
	wantT, _ := m.MulVecT(xt)
	// Dirty destination: Into kernels must overwrite, not accumulate.
	yt := testVector(23)
	if err := m.MulVecTInto(yt, xt); err != nil {
		t.Fatal(err)
	}
	bitsEqual(t, "MulVecTInto", yt, wantT)

	if err := m.MulVecInto(NewVector(3), x); err == nil {
		t.Error("MulVecInto accepted wrong-length destination")
	}
	if err := m.MulVecTInto(NewVector(3), xt); err == nil {
		t.Error("MulVecTInto accepted wrong-length destination")
	}
	if _, err := m.MulVecPool(nil, NewVector(5)); err == nil {
		t.Error("MulVecPool accepted wrong-length input")
	}
	if _, err := m.MulVecTPool(nil, NewVector(5)); err == nil {
		t.Error("MulVecTPool accepted wrong-length input")
	}
	if err := m.AddOuterPool(nil, 1, NewVector(5), x); err == nil {
		t.Error("AddOuterPool accepted wrong-length input")
	}
}

// TestSpectralNormPoolBitIdentical: the scratch-reusing power iteration must
// match at every worker count, and the serial estimate must stay a genuine
// spectral norm (checked on a matrix with known singular value).
func TestSpectralNormPoolBitIdentical(t *testing.T) {
	m := testMatrix(40, 60)
	want := m.SpectralNorm(30)
	for _, workers := range []int{1, 2, 8} {
		got := m.SpectralNormPool(parallel.New(workers), 30)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("workers=%d: %x vs %x", workers, math.Float64bits(got), math.Float64bits(want))
		}
	}
	// Diagonal matrix: spectral norm is the largest |entry|.
	d := NewMatrix(4, 4)
	for i := 0; i < 4; i++ {
		d.Set(i, i, float64(i+1))
	}
	if got := d.SpectralNorm(50); math.Abs(got-4) > 1e-9 {
		t.Errorf("diagonal spectral norm = %v, want 4", got)
	}
}

func TestSpectralNormAllocFree(t *testing.T) {
	m := testMatrix(30, 30)
	allocs := testing.AllocsPerRun(10, func() { m.SpectralNorm(20) })
	// A fixed handful for the v/u/w scratch vectors, independent of the
	// iteration count (the pre-reuse version allocated 2 per iteration).
	if allocs > 6 {
		t.Errorf("SpectralNorm allocates %.0f per call, want <= 6", allocs)
	}
}

func TestAppendEncode(t *testing.T) {
	v := testVector(33)
	want := v.Encode()
	if got := v.AppendEncode(nil); !bytes.Equal(got, want) {
		t.Error("AppendEncode(nil) differs from Encode")
	}
	// Appending after a prefix preserves the prefix and the encoding.
	prefix := []byte{0xaa, 0xbb}
	got := v.AppendEncode(append([]byte(nil), prefix...))
	if !bytes.Equal(got[:2], prefix) {
		t.Error("prefix clobbered")
	}
	if !bytes.Equal(got[2:], want) {
		t.Error("suffix encoding differs from Encode")
	}
	// Reusing a large buffer must not allocate.
	buf := make([]byte, 0, EncodedSize(len(v)))
	allocs := testing.AllocsPerRun(10, func() { buf = v.AppendEncode(buf[:0]) })
	if allocs != 0 {
		t.Errorf("AppendEncode into sized buffer allocates %.0f per call", allocs)
	}
	dec, err := DecodeVector(buf)
	if err != nil {
		t.Fatal(err)
	}
	bitsEqual(t, "roundtrip", dec, v)
	// Empty vector still emits the 8-byte header.
	if got := Vector(nil).AppendEncode(nil); len(got) != 8 {
		t.Errorf("empty vector encodes to %d bytes, want 8", len(got))
	}
}
