package tensor

import (
	"errors"
	"math"
	"testing"
)

func TestMatrixAtSetRow(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 7)
	if got := m.At(1, 2); got != 7 {
		t.Errorf("At(1,2) = %v, want 7", got)
	}
	row := m.Row(1)
	if row[2] != 7 {
		t.Errorf("Row(1)[2] = %v, want 7", row[2])
	}
	row[0] = 5 // Row aliases storage.
	if m.At(1, 0) != 5 {
		t.Error("Row must alias matrix storage")
	}
}

func TestMatrixClone(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Error("Clone must not alias original")
	}
}

func TestMulVec(t *testing.T) {
	m := NewMatrix(2, 3)
	// [1 2 3; 4 5 6]
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			m.Set(i, j, float64(i*3+j+1))
		}
	}
	y, err := m.MulVec(Vector{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !y.Equal(Vector{6, 15}, 1e-12) {
		t.Errorf("MulVec = %v", y)
	}
	yt, err := m.MulVecT(Vector{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !yt.Equal(Vector{5, 7, 9}, 1e-12) {
		t.Errorf("MulVecT = %v", yt)
	}
}

func TestMulVecShapeErrors(t *testing.T) {
	m := NewMatrix(2, 3)
	if _, err := m.MulVec(Vector{1, 1}); !errors.Is(err, ErrShapeMismatch) {
		t.Errorf("MulVec err = %v", err)
	}
	if _, err := m.MulVecT(Vector{1, 1, 1}); !errors.Is(err, ErrShapeMismatch) {
		t.Errorf("MulVecT err = %v", err)
	}
	if err := m.AddOuter(1, Vector{1}, Vector{1, 1, 1}); !errors.Is(err, ErrShapeMismatch) {
		t.Errorf("AddOuter err = %v", err)
	}
}

func TestAddOuter(t *testing.T) {
	m := NewMatrix(2, 2)
	if err := m.AddOuter(2, Vector{1, 2}, Vector{3, 4}); err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{6, 8}, {12, 16}}
	for i := range want {
		for j := range want[i] {
			if got := m.At(i, j); got != want[i][j] {
				t.Errorf("m[%d][%d] = %v, want %v", i, j, got, want[i][j])
			}
		}
	}
}

func TestSpectralNormDiagonal(t *testing.T) {
	m := NewMatrix(3, 3)
	m.Set(0, 0, 2)
	m.Set(1, 1, 5)
	m.Set(2, 2, 1)
	got := m.SpectralNorm(50)
	if math.Abs(got-5) > 1e-6 {
		t.Errorf("SpectralNorm = %v, want 5", got)
	}
}

func TestSpectralNormScaling(t *testing.T) {
	rng := NewRNG(42)
	m := rng.XavierMatrix(16, 16)
	s1 := m.SpectralNorm(60)
	m.Data.Scale(3)
	s3 := m.SpectralNorm(60)
	if math.Abs(s3-3*s1) > 1e-6*(1+s1) {
		t.Errorf("SpectralNorm scaling: got %v, want %v", s3, 3*s1)
	}
}

func TestSpectralNormEmpty(t *testing.T) {
	m := NewMatrix(0, 0)
	if got := m.SpectralNorm(10); got != 0 {
		t.Errorf("SpectralNorm(empty) = %v, want 0", got)
	}
	z := NewMatrix(3, 3) // all zeros
	if got := z.SpectralNorm(10); got != 0 {
		t.Errorf("SpectralNorm(zero) = %v, want 0", got)
	}
}

func TestSpectralNormUpperBoundsMulVec(t *testing.T) {
	rng := NewRNG(7)
	m := rng.XavierMatrix(10, 8)
	sigma := m.SpectralNorm(100)
	for trial := 0; trial < 20; trial++ {
		x := rng.NormalVector(8, 0, 1)
		y, err := m.MulVec(x)
		if err != nil {
			t.Fatal(err)
		}
		if xn := x.Norm2(); xn > 0 {
			ratio := y.Norm2() / xn
			if ratio > sigma*(1+1e-6) {
				t.Errorf("‖Mx‖/‖x‖ = %v exceeds σ = %v", ratio, sigma)
			}
		}
	}
}
