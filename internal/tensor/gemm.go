package tensor

import (
	"fmt"

	"rpol/internal/parallel"
)

// Batched, register-tiled GEMM kernels. Each kernel processes a whole batch
// of examples (one example per matrix row) in a single call, replacing the
// per-example MulVecInto/MulVecTInto/AddOuter inner loops on the training
// hot path.
//
// Determinism contract, shared by all three kernels: every output element is
// computed as exactly one left-to-right float64 accumulation chain over the
// SAME index order as the per-example serial loop it replaces. The register
// tiles below widen the number of chains advanced per pass over memory — they
// never split, reorder, or re-associate an individual chain — so the batched
// results are bit-identical to looping MulVecInto/MulVecTInto/AddOuter over
// the batch rows one example at a time.
//
// Blocking scheme: kernels are row-blocked via the *Range forms, so they
// compose with internal/parallel chunking exactly like the matvec kernels in
// matrix_pool.go — chunk boundaries depend only on shapes and the flop
// target, never on the worker count. Inside a row block, a tile of gemmTile
// output rows shares each streamed operand row (cache blocking), and the
// per-tile accumulators live in registers (register tiling). The reduction
// dimension is NEVER blocked: k (or the batch index, for AddOuterBatch) is
// always the innermost ascending loop of each chain.

// gemmTile is the register-tile height: how many independent accumulation
// chains advance per pass over a shared operand row. Four chains keep the
// working set within the architectural register budget on amd64/arm64 while
// quartering the memory traffic of the dominant streamed operand.
const gemmTile = 4

// MulMatInto computes dst = x · mᵀ without allocating: row b of dst is
// m·x.Row(b), the batched form of MulVecInto. Shapes: x is batch×m.Cols,
// dst is batch×m.Rows. Bit-identical to calling MulVecInto per row.
func (m *Matrix) MulMatInto(dst, x *Matrix) error {
	return m.MulMatScratch(dst, x, nil)
}

// MulMatPackSize returns the pack-scratch length (in float64s) that lets
// MulMatScratch/MulMatPoolScratch take the SIMD kernel for a batch×cols
// input. Zero when the host has no SIMD path — callers Grab(0) and the
// dispatch falls through to the portable kernels.
func MulMatPackSize(batch, cols int) int {
	if !useAVX {
		return 0
	}
	return (batch &^ (gemmTile - 1)) * cols
}

// MulMatScratch is MulMatInto with optional pack scratch. When the host
// supports the SIMD kernel and pack has MulMatPackSize capacity, full
// gemmTile batch tiles run vectorized: x is repacked lane-interleaved and
// each vector lane advances one output element's ascending-k chain — the
// lanes are the independent per-element chains of the portable kernel, so
// the result is bit-identical either way (SIMD here is wall-clock only,
// never semantics).
func (m *Matrix) MulMatScratch(dst, x *Matrix, pack Vector) error {
	if err := m.checkMulMat(dst, x); err != nil {
		return err
	}
	if avxMulMatOK(m, x, pack) {
		packLanes(pack, x)
		m.mulMatRangeAVX(dst, x, pack, 0, dst.Rows)
		return nil
	}
	m.mulMatRange(dst, x, 0, dst.Rows)
	return nil
}

func (m *Matrix) checkMulMat(dst, x *Matrix) error {
	if x.Cols != m.Cols || dst.Cols != m.Rows || dst.Rows != x.Rows {
		return fmt.Errorf("mulmat %dx%d by %dx%d into %dx%d: %w",
			m.Rows, m.Cols, x.Rows, x.Cols, dst.Rows, dst.Cols, ErrShapeMismatch)
	}
	return nil
}

// mulMatRange fills dst rows [lo, hi) of dst = x·mᵀ. Each dst element is a
// single ascending-k dot product — the exact chain mulVecRange produces —
// so row-chunking across a pool cannot change any bit of the result.
func (m *Matrix) mulMatRange(dst, x *Matrix, lo, hi int) {
	b := lo
	for ; b+gemmTile <= hi; b += gemmTile {
		x0, x1, x2, x3 := x.Row(b), x.Row(b+1), x.Row(b+2), x.Row(b+3)
		d0, d1, d2, d3 := dst.Row(b), dst.Row(b+1), dst.Row(b+2), dst.Row(b+3)
		i := 0
		for ; i+gemmTile <= m.Rows; i += gemmTile {
			w0 := m.Row(i)
			// Equal-length reslices let the compiler drop the bounds checks
			// inside the accumulation loop.
			w1, w2, w3 := m.Row(i + 1)[:len(w0)], m.Row(i + 2)[:len(w0)], m.Row(i + 3)[:len(w0)]
			y0, y1, y2, y3 := x0[:len(w0)], x1[:len(w0)], x2[:len(w0)], x3[:len(w0)]
			var a00, a01, a02, a03 float64
			var a10, a11, a12, a13 float64
			var a20, a21, a22, a23 float64
			var a30, a31, a32, a33 float64
			for k, wv0 := range w0 {
				wv1, wv2, wv3 := w1[k], w2[k], w3[k]
				xv0, xv1, xv2, xv3 := y0[k], y1[k], y2[k], y3[k]
				a00 += wv0 * xv0
				a01 += wv1 * xv0
				a02 += wv2 * xv0
				a03 += wv3 * xv0
				a10 += wv0 * xv1
				a11 += wv1 * xv1
				a12 += wv2 * xv1
				a13 += wv3 * xv1
				a20 += wv0 * xv2
				a21 += wv1 * xv2
				a22 += wv2 * xv2
				a23 += wv3 * xv2
				a30 += wv0 * xv3
				a31 += wv1 * xv3
				a32 += wv2 * xv3
				a33 += wv3 * xv3
			}
			d0[i], d0[i+1], d0[i+2], d0[i+3] = a00, a01, a02, a03
			d1[i], d1[i+1], d1[i+2], d1[i+3] = a10, a11, a12, a13
			d2[i], d2[i+1], d2[i+2], d2[i+3] = a20, a21, a22, a23
			d3[i], d3[i+1], d3[i+2], d3[i+3] = a30, a31, a32, a33
		}
		for ; i < m.Rows; i++ {
			row := m.Row(i)
			var a0, a1, a2, a3 float64
			for k, wv := range row {
				a0 += wv * x0[k]
				a1 += wv * x1[k]
				a2 += wv * x2[k]
				a3 += wv * x3[k]
			}
			d0[i], d1[i], d2[i], d3[i] = a0, a1, a2, a3
		}
	}
	for ; b < hi; b++ {
		m.mulVecRange(dst.Row(b), x.Row(b), 0, m.Rows)
	}
}

// MulMatPool is MulMatInto with dst rows chunked across the pool.
// Bit-identical to the serial form for any worker count; a nil pool runs
// serially with no closure overhead.
func (m *Matrix) MulMatPool(p *parallel.Pool, dst, x *Matrix) error {
	return m.MulMatPoolScratch(p, dst, x, nil)
}

// MulMatPoolScratch is MulMatScratch with dst rows chunked across the pool.
// The pack buffer is filled once up front and then only read by the chunks,
// so sharing it is race-free; chunk grain is a whole number of batch tiles,
// so every chunk keeps the vector path.
func (m *Matrix) MulMatPoolScratch(p *parallel.Pool, dst, x *Matrix, pack Vector) error {
	if err := m.checkMulMat(dst, x); err != nil {
		return err
	}
	avx := avxMulMatOK(m, x, pack)
	if avx {
		packLanes(pack, x)
	}
	if p.Workers() <= 1 {
		if avx {
			m.mulMatRangeAVX(dst, x, pack, 0, dst.Rows)
		} else {
			m.mulMatRange(dst, x, 0, dst.Rows)
		}
		return nil
	}
	// Grain in whole register tiles so concurrent chunks never split a tile.
	grain := tileGrain(dst.Rows, m.Rows*m.Cols)
	if avx {
		p.For(dst.Rows, grain, func(lo, hi int) { m.mulMatRangeAVX(dst, x, pack, lo, hi) })
	} else {
		p.For(dst.Rows, grain, func(lo, hi int) { m.mulMatRange(dst, x, lo, hi) })
	}
	return nil
}

// avxMulMatOK gates the SIMD forward kernel: host support, a full-size pack
// buffer, at least one whole batch tile, and a non-empty reduction.
func avxMulMatOK(m, x *Matrix, pack Vector) bool {
	return useAVX && m.Cols > 0 && x.Rows >= gemmTile &&
		len(pack) >= (x.Rows&^(gemmTile-1))*x.Cols
}

// MulMatTInto computes dst = x · m without allocating: row b of dst is
// mᵀ·x.Row(b), the batched form of MulVecTInto (backprop through a dense
// layer for a whole batch). Shapes: x is batch×m.Rows, dst is batch×m.Cols.
// Bit-identical to calling MulVecTInto per row.
func (m *Matrix) MulMatTInto(dst, x *Matrix) error {
	if err := m.checkMulMatT(dst, x); err != nil {
		return err
	}
	m.mulMatTRange(dst, x, 0, dst.Rows)
	return nil
}

func (m *Matrix) checkMulMatT(dst, x *Matrix) error {
	if x.Cols != m.Rows || dst.Cols != m.Cols || dst.Rows != x.Rows {
		return fmt.Errorf("mulmatT %dx%d by %dx%d into %dx%d: %w",
			m.Rows, m.Cols, x.Rows, x.Cols, dst.Rows, dst.Cols, ErrShapeMismatch)
	}
	return nil
}

// mulMatTRange fills dst rows [lo, hi) of dst = x·m. Each dst element starts
// at zero and accumulates over m's rows in ascending order — the exact chain
// mulVecTRange produces. A tile of gemmTile batch rows shares each streamed
// row of m, cutting the dominant memory traffic by the tile factor.
func (m *Matrix) mulMatTRange(dst, x *Matrix, lo, hi int) {
	b := lo
	for ; b+gemmTile <= hi; b += gemmTile {
		x0, x1, x2, x3 := x.Row(b), x.Row(b+1), x.Row(b+2), x.Row(b+3)
		d0, d1, d2, d3 := dst.Row(b), dst.Row(b+1), dst.Row(b+2), dst.Row(b+3)
		for j := range d0 {
			d0[j], d1[j], d2[j], d3[j] = 0, 0, 0, 0
		}
		for i := 0; i < m.Rows; i++ {
			row := m.Row(i)
			g0, g1, g2, g3 := x0[i], x1[i], x2[i], x3[i]
			for j, wv := range row {
				d0[j] += wv * g0
				d1[j] += wv * g1
				d2[j] += wv * g2
				d3[j] += wv * g3
			}
		}
	}
	for ; b < hi; b++ {
		m.mulVecTRange(dst.Row(b), x.Row(b), 0, m.Cols)
	}
}

// MulMatTPool is MulMatTInto with dst rows chunked across the pool.
// Bit-identical to the serial form for any worker count.
func (m *Matrix) MulMatTPool(p *parallel.Pool, dst, x *Matrix) error {
	if err := m.checkMulMatT(dst, x); err != nil {
		return err
	}
	if p.Workers() <= 1 {
		m.mulMatTRange(dst, x, 0, dst.Rows)
		return nil
	}
	grain := tileGrain(dst.Rows, m.Rows*m.Cols)
	p.For(dst.Rows, grain, func(lo, hi int) { m.mulMatTRange(dst, x, lo, hi) })
	return nil
}

// AddOuterBatch performs m += alpha · Σ_b x.Row(b)·y.Row(b)ᵀ in place — the
// batched form of calling AddOuter(alpha, x.Row(b), y.Row(b)) for b
// ascending, and bit-identical to that loop: each m element accumulates its
// per-example terms in ascending batch order on top of its existing value.
// Shapes: x is batch×m.Rows, y is batch×m.Cols. This is the whole-batch
// gradient accumulation for dense layers.
func (m *Matrix) AddOuterBatch(alpha float64, x, y *Matrix) error {
	if err := m.checkAddOuterBatch(x, y); err != nil {
		return err
	}
	if avxAddOuterOK(m, x) {
		m.addOuterBatchRangeAVX(alpha, x, y, 0, m.Rows)
	} else {
		m.addOuterBatchRange(alpha, x, y, 0, m.Rows)
	}
	return nil
}

// avxAddOuterOK gates the SIMD accumulation kernel: host support plus at
// least one whole vector of columns (narrower matrices stay portable).
func avxAddOuterOK(m, x *Matrix) bool {
	return useAVX && m.Cols >= gemmTile && x.Rows > 0
}

func (m *Matrix) checkAddOuterBatch(x, y *Matrix) error {
	if x.Cols != m.Rows || y.Cols != m.Cols || x.Rows != y.Rows {
		return fmt.Errorf("addouterbatch %dx%d by %dx%d and %dx%d: %w",
			m.Rows, m.Cols, x.Rows, x.Cols, y.Rows, y.Cols, ErrShapeMismatch)
	}
	return nil
}

// addOuterBatchRange accumulates rows [lo, hi) of m. Each chunk owns its m
// rows outright and walks the batch in ascending order, so row-chunking
// across a pool is bit-identical to the serial accumulation. A tile of
// gemmTile m-rows shares each streamed y row.
func (m *Matrix) addOuterBatchRange(alpha float64, x, y *Matrix, lo, hi int) {
	batch := x.Rows
	i := lo
	for ; i+gemmTile <= hi; i += gemmTile {
		r0, r1, r2, r3 := m.Row(i), m.Row(i+1), m.Row(i+2), m.Row(i+3)
		for b := 0; b < batch; b++ {
			xb := x.Row(b)
			yb := y.Row(b)
			a0 := alpha * xb[i]
			a1 := alpha * xb[i+1]
			a2 := alpha * xb[i+2]
			a3 := alpha * xb[i+3]
			for j, yv := range yb {
				r0[j] += a0 * yv
				r1[j] += a1 * yv
				r2[j] += a2 * yv
				r3[j] += a3 * yv
			}
		}
	}
	for ; i < hi; i++ {
		row := m.Row(i)
		for b := 0; b < batch; b++ {
			ax := alpha * x.Row(b)[i]
			yb := y.Row(b)
			for j, yv := range yb {
				row[j] += ax * yv
			}
		}
	}
}

// AddOuterBatchPool is AddOuterBatch with m's rows chunked across the pool.
// Each m row is updated only by its owning chunk, walking the batch in
// ascending order, so the result is bit-identical to the serial form for any
// worker count.
func (m *Matrix) AddOuterBatchPool(p *parallel.Pool, alpha float64, x, y *Matrix) error {
	if err := m.checkAddOuterBatch(x, y); err != nil {
		return err
	}
	avx := avxAddOuterOK(m, x)
	if p.Workers() <= 1 {
		if avx {
			m.addOuterBatchRangeAVX(alpha, x, y, 0, m.Rows)
		} else {
			m.addOuterBatchRange(alpha, x, y, 0, m.Rows)
		}
		return nil
	}
	grain := tileGrain(m.Rows, x.Rows*m.Cols)
	if avx {
		p.For(m.Rows, grain, func(lo, hi int) { m.addOuterBatchRangeAVX(alpha, x, y, lo, hi) })
	} else {
		p.For(m.Rows, grain, func(lo, hi int) { m.addOuterBatchRange(alpha, x, y, lo, hi) })
	}
	return nil
}

// tileGrain is chunkGrain rounded up to whole register tiles, so pool chunks
// never split a gemmTile-row tile (a split tile would still be bit-identical
// — remainder loops run the same chains — but whole tiles keep every chunk
// on the fast path).
func tileGrain(n, width int) int {
	g := chunkGrain(n, width)
	if rem := g % gemmTile; rem != 0 {
		g += gemmTile - rem
	}
	if g > n {
		g = n
	}
	return g
}
