package tensor

import (
	"math"
	"testing"

	"rpol/internal/parallel"
)

// randMatrix fills a rows×cols matrix with deterministic normal draws.
func randMatrix(rng *RNG, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	m.Data = rng.NormalVector(rows*cols, 0, 1)
	return m
}

// bitEqual reports element-wise bit equality (NaN-safe, unlike ==).
func bitEqual(a, b Vector) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// The shapes exercise every tile/remainder combination: batch and rows both
// below, at, and off the gemmTile multiple.
var gemmShapes = []struct{ batch, rows, cols int }{
	{1, 1, 1},
	{2, 3, 5},
	{4, 4, 8},
	{5, 7, 3},
	{8, 16, 32},
	{13, 9, 17},
	{32, 20, 64},
}

func TestMulMatIntoMatchesPerExample(t *testing.T) {
	rng := NewRNG(11)
	for _, s := range gemmShapes {
		m := randMatrix(rng, s.rows, s.cols)
		x := randMatrix(rng, s.batch, s.cols)
		got := NewMatrix(s.batch, s.rows)
		if err := m.MulMatInto(got, x); err != nil {
			t.Fatalf("%+v: %v", s, err)
		}
		want := NewMatrix(s.batch, s.rows)
		for b := 0; b < s.batch; b++ {
			if err := m.MulVecInto(want.Row(b), x.Row(b)); err != nil {
				t.Fatal(err)
			}
		}
		if !bitEqual(got.Data, want.Data) {
			t.Errorf("%+v: batched result differs from per-example MulVecInto", s)
		}
	}
}

func TestMulMatTIntoMatchesPerExample(t *testing.T) {
	rng := NewRNG(12)
	for _, s := range gemmShapes {
		m := randMatrix(rng, s.rows, s.cols)
		x := randMatrix(rng, s.batch, s.rows)
		got := NewMatrix(s.batch, s.cols)
		if err := m.MulMatTInto(got, x); err != nil {
			t.Fatalf("%+v: %v", s, err)
		}
		want := NewMatrix(s.batch, s.cols)
		for b := 0; b < s.batch; b++ {
			if err := m.MulVecTInto(want.Row(b), x.Row(b)); err != nil {
				t.Fatal(err)
			}
		}
		if !bitEqual(got.Data, want.Data) {
			t.Errorf("%+v: batched result differs from per-example MulVecTInto", s)
		}
	}
}

func TestAddOuterBatchMatchesPerExample(t *testing.T) {
	rng := NewRNG(13)
	for _, s := range gemmShapes {
		base := randMatrix(rng, s.rows, s.cols)
		x := randMatrix(rng, s.batch, s.rows)
		y := randMatrix(rng, s.batch, s.cols)
		got := base.Clone()
		if err := got.AddOuterBatch(0.25, x, y); err != nil {
			t.Fatalf("%+v: %v", s, err)
		}
		want := base.Clone()
		for b := 0; b < s.batch; b++ {
			if err := want.AddOuter(0.25, x.Row(b), y.Row(b)); err != nil {
				t.Fatal(err)
			}
		}
		if !bitEqual(got.Data, want.Data) {
			t.Errorf("%+v: batched accumulation differs from per-example AddOuter", s)
		}
	}
}

// TestGEMMPoolBitIdentical runs each pooled kernel at several worker counts
// (including nil = serial) and requires bit-identical results everywhere —
// the determinism contract the training hot path depends on.
func TestGEMMPoolBitIdentical(t *testing.T) {
	rng := NewRNG(14)
	const batch, rows, cols = 19, 23, 37
	m := randMatrix(rng, rows, cols)
	x := randMatrix(rng, batch, cols)
	g := randMatrix(rng, batch, rows)
	grad := randMatrix(rng, rows, cols)

	type result struct{ fwd, bwd, acc Vector }
	run := func(p *parallel.Pool) result {
		fwd := NewMatrix(batch, rows)
		if err := m.MulMatPool(p, fwd, x); err != nil {
			t.Fatal(err)
		}
		bwd := NewMatrix(batch, cols)
		if err := m.MulMatTPool(p, bwd, g); err != nil {
			t.Fatal(err)
		}
		acc := grad.Clone()
		if err := acc.AddOuterBatchPool(p, 1, g, x); err != nil {
			t.Fatal(err)
		}
		return result{fwd.Data, bwd.Data, acc.Data}
	}

	base := run(nil)
	for _, workers := range []int{1, 2, 3, 8} {
		got := run(parallel.New(workers))
		if !bitEqual(got.fwd, base.fwd) {
			t.Errorf("workers=%d: MulMatPool differs from serial", workers)
		}
		if !bitEqual(got.bwd, base.bwd) {
			t.Errorf("workers=%d: MulMatTPool differs from serial", workers)
		}
		if !bitEqual(got.acc, base.acc) {
			t.Errorf("workers=%d: AddOuterBatchPool differs from serial", workers)
		}
	}
}

// TestMulMatScratchSIMDBitIdentical drives the pack-scratch (SIMD) forward
// kernel across every shape and compares bits against both the portable
// batched kernel and the per-example matvec. On hosts without SIMD support
// the scratch path degrades to the portable kernel and the test still holds.
func TestMulMatScratchSIMDBitIdentical(t *testing.T) {
	if !useAVX {
		t.Log("no SIMD support on this host; exercising the fallback dispatch")
	}
	rng := NewRNG(17)
	for _, s := range gemmShapes {
		m := randMatrix(rng, s.rows, s.cols)
		x := randMatrix(rng, s.batch, s.cols)
		pack := NewVector(MulMatPackSize(s.batch, s.cols))
		got := NewMatrix(s.batch, s.rows)
		if err := m.MulMatScratch(got, x, pack); err != nil {
			t.Fatalf("%+v: %v", s, err)
		}
		want := NewMatrix(s.batch, s.rows)
		for b := 0; b < s.batch; b++ {
			if err := m.MulVecInto(want.Row(b), x.Row(b)); err != nil {
				t.Fatal(err)
			}
		}
		if !bitEqual(got.Data, want.Data) {
			t.Errorf("%+v: scratch kernel differs from per-example MulVecInto", s)
		}
		for _, workers := range []int{1, 3, 8} {
			pooled := NewMatrix(s.batch, s.rows)
			if err := m.MulMatPoolScratch(parallel.New(workers), pooled, x, pack); err != nil {
				t.Fatal(err)
			}
			if !bitEqual(pooled.Data, want.Data) {
				t.Errorf("%+v workers=%d: pooled scratch kernel differs", s, workers)
			}
		}
	}
}

// TestAddOuterBatchPortableVsSIMD pins the portable and SIMD accumulation
// kernels against each other directly (the per-example tests above cover
// whichever one the dispatch picks; this covers the other).
func TestAddOuterBatchPortableVsSIMD(t *testing.T) {
	if !useAVX {
		t.Skip("no SIMD kernels on this host")
	}
	rng := NewRNG(18)
	for _, s := range gemmShapes {
		base := randMatrix(rng, s.rows, s.cols)
		x := randMatrix(rng, s.batch, s.rows)
		y := randMatrix(rng, s.batch, s.cols)
		simd := base.Clone()
		if err := simd.AddOuterBatch(0.5, x, y); err != nil {
			t.Fatal(err)
		}
		portable := base.Clone()
		portable.addOuterBatchRange(0.5, x, y, 0, s.rows)
		if !bitEqual(simd.Data, portable.Data) {
			t.Errorf("%+v: SIMD accumulation differs from portable kernel", s)
		}
	}
}

func TestGEMMShapeErrors(t *testing.T) {
	m := NewMatrix(3, 4)
	bad := NewMatrix(2, 5)
	ok4 := NewMatrix(2, 4)
	ok3 := NewMatrix(2, 3)
	if err := m.MulMatInto(ok3, bad); err == nil {
		t.Error("MulMatInto accepted mismatched x columns")
	}
	if err := m.MulMatInto(bad, ok4); err == nil {
		t.Error("MulMatInto accepted mismatched dst columns")
	}
	if err := m.MulMatTInto(ok4, bad); err == nil {
		t.Error("MulMatTInto accepted mismatched x columns")
	}
	if err := m.AddOuterBatch(1, bad, ok4); err == nil {
		t.Error("AddOuterBatch accepted mismatched x columns")
	}
	if err := m.AddOuterBatch(1, ok3, NewMatrix(3, 4)); err == nil {
		t.Error("AddOuterBatch accepted mismatched batch sizes")
	}
}

func TestTileGrainWholeTiles(t *testing.T) {
	for _, n := range []int{1, 3, 4, 5, 16, 100, 1000} {
		g := tileGrain(n, 4096)
		if g < 1 || g > n {
			t.Errorf("tileGrain(%d) = %d out of range", n, g)
		}
		if g%gemmTile != 0 && g != n {
			t.Errorf("tileGrain(%d) = %d is neither a whole tile multiple nor n", n, g)
		}
	}
}

// BenchmarkGEMMForward compares one whole-batch forward GEMM against the
// per-example matvec loop it replaces, at the training benchmark's dense
// shape (512×256, batch 32).
func BenchmarkGEMMForward(b *testing.B) {
	rng := NewRNG(15)
	const batch, rows, cols = 32, 512, 256
	m := randMatrix(rng, rows, cols)
	x := randMatrix(rng, batch, cols)
	dst := NewMatrix(batch, rows)
	b.Run("pervec", func(b *testing.B) {
		b.SetBytes(int64(8 * batch * rows * cols))
		for i := 0; i < b.N; i++ {
			for r := 0; r < batch; r++ {
				if err := m.MulVecInto(dst.Row(r), x.Row(r)); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("gemm", func(b *testing.B) {
		b.SetBytes(int64(8 * batch * rows * cols))
		for i := 0; i < b.N; i++ {
			if err := m.MulMatInto(dst, x); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkGEMMBackward covers the two backward kernels at the same shape.
func BenchmarkGEMMBackward(b *testing.B) {
	rng := NewRNG(16)
	const batch, rows, cols = 32, 512, 256
	m := randMatrix(rng, rows, cols)
	g := randMatrix(rng, batch, rows)
	x := randMatrix(rng, batch, cols)
	for _, bench := range []struct {
		name string
		fn   func() error
	}{
		{"mulmatT/pervec", func() error {
			dst := NewMatrix(batch, cols)
			for r := 0; r < batch; r++ {
				if err := m.MulVecTInto(dst.Row(r), g.Row(r)); err != nil {
					return err
				}
			}
			return nil
		}},
		{"mulmatT/gemm", func() error {
			dst := NewMatrix(batch, cols)
			return m.MulMatTInto(dst, g)
		}},
		{"addouter/pervec", func() error {
			acc := m.Clone()
			for r := 0; r < batch; r++ {
				if err := acc.AddOuter(1, g.Row(r), x.Row(r)); err != nil {
					return err
				}
			}
			return nil
		}},
		{"addouter/gemm", func() error {
			acc := m.Clone()
			return acc.AddOuterBatch(1, g, x)
		}},
	} {
		b.Run(bench.name, func(b *testing.B) {
			b.SetBytes(int64(8 * batch * rows * cols))
			for i := 0; i < b.N; i++ {
				if err := bench.fn(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
