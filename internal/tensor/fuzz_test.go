package tensor

import "testing"

// FuzzDecodeVector drives the wire decoder with arbitrary bytes: it must
// never panic or return a vector inconsistent with a re-encode.
func FuzzDecodeVector(f *testing.F) {
	f.Add([]byte{})
	f.Add((Vector{1.5, -2.5}).Encode())
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add(append((Vector{1}).Encode(), 0x00))
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := DecodeVector(data)
		if err != nil {
			return
		}
		// A successful decode must round-trip to the identical bytes.
		re := v.Encode()
		if len(re) != len(data) {
			t.Fatalf("round trip length %d != %d", len(re), len(data))
		}
		for i := range re {
			if re[i] != data[i] {
				t.Fatalf("round trip byte %d differs", i)
			}
		}
	})
}
