package tensor

import (
	"fmt"
	"math"

	"rpol/internal/parallel"
)

// Matrix is a dense row-major matrix of float64 values.
type Matrix struct {
	Rows, Cols int
	Data       Vector // len == Rows*Cols, row-major
}

// NewMatrix returns a zero-initialized rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: NewVector(rows * cols)}
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 {
	return m.Data[i*m.Cols+j]
}

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, x float64) {
	m.Data[i*m.Cols+j] = x
}

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) Vector {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	return &Matrix{Rows: m.Rows, Cols: m.Cols, Data: m.Data.Clone()}
}

// MulVec computes y = m·x. x must have length m.Cols; the result has length
// m.Rows.
func (m *Matrix) MulVec(x Vector) (Vector, error) {
	if len(x) != m.Cols {
		return nil, fmt.Errorf("mulvec %dx%d by %d: %w", m.Rows, m.Cols, len(x), ErrShapeMismatch)
	}
	y := NewVector(m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y, nil
}

// MulVecT computes y = mᵀ·x. x must have length m.Rows; the result has length
// m.Cols. Used for backpropagation through dense layers.
func (m *Matrix) MulVecT(x Vector) (Vector, error) {
	if len(x) != m.Rows {
		return nil, fmt.Errorf("mulvecT %dx%d by %d: %w", m.Rows, m.Cols, len(x), ErrShapeMismatch)
	}
	y := NewVector(m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		xi := x[i]
		for j, v := range row {
			y[j] += v * xi
		}
	}
	return y, nil
}

// AddOuter performs m += alpha * x·yᵀ in place, where x has length m.Rows and
// y has length m.Cols. This is the rank-1 gradient accumulation for dense
// layers.
func (m *Matrix) AddOuter(alpha float64, x, y Vector) error {
	if len(x) != m.Rows || len(y) != m.Cols {
		return fmt.Errorf("addouter %dx%d by %dx%d: %w", m.Rows, m.Cols, len(x), len(y), ErrShapeMismatch)
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		ax := alpha * x[i]
		for j := range row {
			row[j] += ax * y[j]
		}
	}
	return nil
}

// SpectralNorm estimates the largest singular value of m using iters rounds
// of power iteration (Adams et al., as cited in Sec. V-A of the paper). The
// starting vector is derived deterministically from the matrix contents so
// the estimate is reproducible.
func (m *Matrix) SpectralNorm(iters int) float64 {
	return m.spectralNorm(nil, iters)
}

// spectralNorm implements SpectralNorm/SpectralNormPool with three scratch
// vectors allocated once and reused across iterations (v and w swap roles
// after each round instead of reallocating). The arithmetic — element order
// and association — matches the historical per-iteration-allocation version
// exactly, so estimates are unchanged bit for bit.
func (m *Matrix) spectralNorm(p *parallel.Pool, iters int) float64 {
	if m.Rows == 0 || m.Cols == 0 {
		return 0
	}
	// Deterministic non-zero start vector.
	v := NewVector(m.Cols)
	for j := range v {
		v[j] = math.Cos(float64(j)*1.7 + 0.3)
	}
	norm := v.Norm2()
	if norm == 0 {
		return 0
	}
	v.Scale(1 / norm)
	u := NewVector(m.Rows)
	w := NewVector(m.Cols)
	rowGrain := chunkGrain(m.Rows, m.Cols)
	colGrain := chunkGrain(m.Cols, m.Rows)
	serial := p.Workers() <= 1
	var sigma float64
	for it := 0; it < iters; it++ {
		if serial {
			// Direct calls keep the serial path allocation-free (the
			// closure forms below escape to the heap per iteration).
			m.mulVecRange(u, v, 0, m.Rows)
		} else {
			p.For(m.Rows, rowGrain, func(lo, hi int) { m.mulVecRange(u, v, lo, hi) })
		}
		un := u.Norm2()
		if un == 0 {
			return 0
		}
		u.Scale(1 / un)
		if serial {
			m.mulVecTRange(w, u, 0, m.Cols)
		} else {
			p.For(m.Cols, colGrain, func(lo, hi int) { m.mulVecTRange(w, u, lo, hi) })
		}
		sigma = w.Norm2()
		if sigma == 0 {
			return 0
		}
		v, w = w, v
		v.Scale(1 / sigma)
	}
	return sigma
}
