//go:build amd64

#include "textflag.h"

// AVX kernels for the batched GEMM hot path. Bit-compatibility rules, shared
// with the portable kernels in gemm.go:
//
//   - Only VMULPD/VADDPD — never FMA, whose fused single rounding differs
//     from the scalar multiply-then-add the serial path performs.
//   - Each 256-bit lane carries exactly one output element's accumulation
//     chain, advanced in the same ascending reduction order as the scalar
//     loop. Lanes never exchange or combine partial sums.

// func cpuHasAVX() bool
//
// CPUID.1:ECX must report OSXSAVE (bit 27) and AVX (bit 28), and XGETBV must
// confirm the OS saves XMM+YMM state (XCR0 bits 1 and 2).
TEXT ·cpuHasAVX(SB), NOSPLIT, $0-1
	MOVL $1, AX
	XORL CX, CX
	CPUID
	MOVL CX, BX
	ANDL $0x18000000, BX
	CMPL BX, $0x18000000
	JNE  noavx
	XORL CX, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  noavx
	MOVB $1, ret+0(FP)
	RET

noavx:
	MOVB $0, ret+0(FP)
	RET

// func mulMatPackAVX(w, xpack, dst *float64, k, rows, dstStride int)
//
// One lane-packed batch tile (4 batch rows) against every row of w:
// lane l of the accumulator holds dst[l*dstStride+i], an ascending-k dot
// product. Two w rows run per pass to share each xpack load.
//
// Register map: DI w row i · SI xpack base · DX dst base · R8 k ·
// R9 rows · R10 dst stride (bytes) · AX i · BX/R11 w row ptrs ·
// R12 xpack ptr · CX k counter · R13 scratch.
TEXT ·mulMatPackAVX(SB), NOSPLIT, $0-48
	MOVQ w+0(FP), DI
	MOVQ xpack+8(FP), SI
	MOVQ dst+16(FP), DX
	MOVQ k+24(FP), R8
	MOVQ rows+32(FP), R9
	MOVQ dstStride+40(FP), R10
	SHLQ $3, R10
	XORQ AX, AX

iloop2:
	MOVQ R9, BX
	SUBQ AX, BX
	CMPQ BX, $2
	JL   itail

	// Two w rows: BX = w_i, R11 = w_{i+1}.
	MOVQ R8, R11
	SHLQ $3, R11
	MOVQ DI, BX
	ADDQ DI, R11
	MOVQ SI, R12
	MOVQ R8, CX
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1

kloop2:
	VMOVUPD      (R12), Y2
	VBROADCASTSD (BX), Y3
	VBROADCASTSD (R11), Y4
	VMULPD       Y2, Y3, Y5
	VADDPD       Y5, Y0, Y0
	VMULPD       Y2, Y4, Y6
	VADDPD       Y6, Y1, Y1
	ADDQ         $8, BX
	ADDQ         $8, R11
	ADDQ         $32, R12
	DECQ         CX
	JNZ          kloop2

	// Scatter the four lanes of each accumulator down the strided dst
	// column: R13 = &dst[0][i], CX = &dst[2][i].
	MOVQ AX, R13
	SHLQ $3, R13
	ADDQ DX, R13
	LEAQ (R13)(R10*2), CX

	VMOVSD       X0, (R13)
	VMOVHPD      X0, (R13)(R10*1)
	VEXTRACTF128 $1, Y0, X7
	VMOVSD       X7, (CX)
	VMOVHPD      X7, (CX)(R10*1)

	VMOVSD       X1, 8(R13)
	VMOVHPD      X1, 8(R13)(R10*1)
	VEXTRACTF128 $1, Y1, X7
	VMOVSD       X7, 8(CX)
	VMOVHPD      X7, 8(CX)(R10*1)

	// Advance w to row i+2.
	MOVQ R8, R13
	SHLQ $3, R13
	ADDQ R13, DI
	ADDQ R13, DI
	ADDQ $2, AX
	JMP  iloop2

itail:
	CMPQ AX, R9
	JGE  done

	// Final odd w row.
	MOVQ DI, BX
	MOVQ SI, R12
	MOVQ R8, CX
	VXORPS Y0, Y0, Y0

kloop1:
	VMOVUPD      (R12), Y2
	VBROADCASTSD (BX), Y3
	VMULPD       Y2, Y3, Y5
	VADDPD       Y5, Y0, Y0
	ADDQ         $8, BX
	ADDQ         $32, R12
	DECQ         CX
	JNZ          kloop1

	MOVQ AX, R13
	SHLQ $3, R13
	ADDQ DX, R13
	LEAQ (R13)(R10*2), CX

	VMOVSD       X0, (R13)
	VMOVHPD      X0, (R13)(R10*1)
	VEXTRACTF128 $1, Y0, X7
	VMOVSD       X7, (CX)
	VMOVHPD      X7, (CX)(R10*1)

done:
	VZEROUPPER
	RET

// func addOuterRowAVX(dst, x, y *float64, batch, cols, xStride, yStride int, alpha float64)
//
// One m row of the batched outer-product accumulation: for each 4-column
// vector of dst, the accumulator rides in a register across the whole
// ascending batch loop (lane = column chain). 16 columns per pass amortize
// the per-b broadcast; the 4-wide loop mops up through cols&^3; the caller
// handles the final cols%4 scalar tail.
//
// Register map: DI dst · SI x column base · DX y base · R8 batch ·
// R9 cols · R10 x stride (bytes) · R11 y stride (bytes) · AX j ·
// BX dst ptr / scratch · CX x walker · R12 y walker · R13 b counter ·
// Y15 broadcast alpha.
TEXT ·addOuterRowAVX(SB), NOSPLIT, $0-64
	MOVQ         dst+0(FP), DI
	MOVQ         x+8(FP), SI
	MOVQ         y+16(FP), DX
	MOVQ         batch+24(FP), R8
	MOVQ         cols+32(FP), R9
	MOVQ         xStride+40(FP), R10
	MOVQ         yStride+48(FP), R11
	SHLQ         $3, R10
	SHLQ         $3, R11
	VBROADCASTSD alpha+56(FP), Y15
	XORQ         AX, AX

j16loop:
	MOVQ R9, BX
	SUBQ AX, BX
	CMPQ BX, $16
	JL   j4loop

	LEAQ    (DI)(AX*8), BX
	VMOVUPD (BX), Y0
	VMOVUPD 32(BX), Y1
	VMOVUPD 64(BX), Y2
	VMOVUPD 96(BX), Y3
	MOVQ    SI, CX
	LEAQ    (DX)(AX*8), R12
	MOVQ    R8, R13

b16loop:
	VBROADCASTSD (CX), Y4
	VMULPD       Y15, Y4, Y4
	VMOVUPD      (R12), Y5
	VMULPD       Y5, Y4, Y5
	VADDPD       Y5, Y0, Y0
	VMOVUPD      32(R12), Y6
	VMULPD       Y6, Y4, Y6
	VADDPD       Y6, Y1, Y1
	VMOVUPD      64(R12), Y7
	VMULPD       Y7, Y4, Y7
	VADDPD       Y7, Y2, Y2
	VMOVUPD      96(R12), Y8
	VMULPD       Y8, Y4, Y8
	VADDPD       Y8, Y3, Y3
	ADDQ         R10, CX
	ADDQ         R11, R12
	DECQ         R13
	JNZ          b16loop

	VMOVUPD Y0, (BX)
	VMOVUPD Y1, 32(BX)
	VMOVUPD Y2, 64(BX)
	VMOVUPD Y3, 96(BX)
	ADDQ    $16, AX
	JMP     j16loop

j4loop:
	MOVQ R9, BX
	SUBQ AX, BX
	CMPQ BX, $4
	JL   done2

	LEAQ    (DI)(AX*8), BX
	VMOVUPD (BX), Y0
	MOVQ    SI, CX
	LEAQ    (DX)(AX*8), R12
	MOVQ    R8, R13

b4loop:
	VBROADCASTSD (CX), Y4
	VMULPD       Y15, Y4, Y4
	VMOVUPD      (R12), Y5
	VMULPD       Y5, Y4, Y5
	VADDPD       Y5, Y0, Y0
	ADDQ         R10, CX
	ADDQ         R11, R12
	DECQ         R13
	JNZ          b4loop

	VMOVUPD Y0, (BX)
	ADDQ    $4, AX
	JMP     j4loop

done2:
	VZEROUPPER
	RET
