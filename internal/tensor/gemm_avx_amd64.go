//go:build amd64

package tensor

// AVX dispatch for the batched GEMM kernels (gemm_amd64.s). The vector
// kernels change wall-clock only, never bits: each 256-bit lane carries one
// output element's accumulation chain, in the same ascending reduction order
// as the portable kernels, using VMULPD/VADDPD (identical IEEE-754 rounding
// to scalar multiply and add — deliberately no FMA, whose single rounding
// would change low-order bits).

// useAVX reports whether the CPU and OS support 256-bit AVX state.
var useAVX = cpuHasAVX()

// cpuHasAVX is implemented in gemm_amd64.s: CPUID feature bits plus XGETBV
// confirmation that the OS saves YMM state.
func cpuHasAVX() bool

// mulMatPackAVX computes, for one lane-packed batch tile of gemmTile rows,
// dst[l*dstStride+i] = Σ_k w[i*k̂+k]·xpack[k*gemmTile+l] for i in [0, rows),
// l in [0, gemmTile). Each (l, i) output is a single ascending-k chain held
// in one vector lane. Implemented in gemm_amd64.s.
//
//go:noescape
func mulMatPackAVX(w, xpack, dst *float64, k, rows, dstStride int)

// addOuterRowAVX accumulates one m row: dst[j] += (alpha·x[b·xStride]) ·
// y[b·yStride+j] for b ascending, j in [0, cols&^3). Accumulators stay in
// vector registers across the whole batch loop; each lane is one column's
// ascending-b chain. Implemented in gemm_amd64.s.
//
//go:noescape
func addOuterRowAVX(dst, x, y *float64, batch, cols, xStride, yStride int, alpha float64)

// packLanes interleaves full gemmTile-row tiles of x lane-major:
// pack[t·gemmTile·K + k·gemmTile + l] = x.Row(t·gemmTile+l)[k]. Trailing
// rows (batch % gemmTile) are left unpacked; the range kernels fall back to
// the scalar path for them.
func packLanes(pack Vector, x *Matrix) {
	k := x.Cols
	for t := 0; t+gemmTile <= x.Rows; t += gemmTile {
		p := pack[t*k : (t+gemmTile)*k]
		r0 := x.Row(t)
		r1, r2, r3 := x.Row(t + 1)[:len(r0)], x.Row(t + 2)[:len(r0)], x.Row(t + 3)[:len(r0)]
		for j, v := range r0 {
			q := p[4*j : 4*j+4 : 4*j+4]
			q[0] = v
			q[1] = r1[j]
			q[2] = r2[j]
			q[3] = r3[j]
		}
	}
}

// mulMatRangeAVX is mulMatRange over lane-packed x: full batch tiles run the
// vector kernel, trailing rows take the portable scalar path (independent
// chains either way, so mixing cannot change a bit).
func (m *Matrix) mulMatRangeAVX(dst, x *Matrix, pack Vector, lo, hi int) {
	k := m.Cols
	b := lo
	for ; b+gemmTile <= hi; b += gemmTile {
		mulMatPackAVX(&m.Data[0], &pack[b*k], &dst.Data[b*dst.Cols], k, m.Rows, dst.Cols)
	}
	for ; b < hi; b++ {
		m.mulVecRange(dst.Row(b), x.Row(b), 0, m.Rows)
	}
}

// addOuterBatchRangeAVX is addOuterBatchRange with each m row's column
// vectors accumulated in registers across the ascending batch loop. The
// column tail (cols % 4) runs the scalar chain per row.
func (m *Matrix) addOuterBatchRangeAVX(alpha float64, x, y *Matrix, lo, hi int) {
	batch := x.Rows
	cols4 := m.Cols &^ (gemmTile - 1)
	for i := lo; i < hi; i++ {
		row := m.Row(i)
		addOuterRowAVX(&row[0], &x.Data[i], &y.Data[0], batch, m.Cols, x.Cols, y.Cols, alpha)
		if cols4 == m.Cols {
			continue
		}
		tail := row[cols4:]
		for b := 0; b < batch; b++ {
			ax := alpha * x.Row(b)[i]
			yb := y.Row(b)[cols4:]
			for j, yv := range yb {
				tail[j] += ax * yv
			}
		}
	}
}
