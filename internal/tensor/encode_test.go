package tensor

import (
	"encoding/binary"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	v := Vector{1.5, -2.25, 0, 3e100}
	buf := v.Encode()
	if len(buf) != EncodedSize(len(v)) {
		t.Errorf("encoded size = %d, want %d", len(buf), EncodedSize(len(v)))
	}
	got, err := DecodeVector(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(v, 0) {
		t.Errorf("round trip = %v, want %v", got, v)
	}
}

func TestEncodeEmpty(t *testing.T) {
	v := Vector{}
	got, err := DecodeVector(v.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("decoded empty = %v", got)
	}
}

func TestDecodeShortHeader(t *testing.T) {
	if _, err := DecodeVector([]byte{1, 2, 3}); err == nil {
		t.Error("want error for short header")
	}
}

func TestDecodeTruncatedBody(t *testing.T) {
	buf := (Vector{1, 2, 3}).Encode()
	if _, err := DecodeVector(buf[:len(buf)-4]); err == nil {
		t.Error("want error for truncated body")
	}
}

func TestDecodeOversizedClaim(t *testing.T) {
	buf := make([]byte, 16)
	binary.LittleEndian.PutUint64(buf, 1<<40)
	if _, err := DecodeVector(buf); err == nil {
		t.Error("want error for oversized element claim")
	}
}

func TestDecodeTrailingGarbage(t *testing.T) {
	buf := append((Vector{1}).Encode(), 0xFF)
	if _, err := DecodeVector(buf); err == nil {
		t.Error("want error for trailing bytes")
	}
}

// Property: Encode/Decode round-trips bit-exactly for arbitrary vectors.
func TestEncodeDecodeProperty(t *testing.T) {
	f := func(a []float64) bool {
		v := Vector(a)
		got, err := DecodeVector(v.Encode())
		if err != nil {
			return false
		}
		if len(got) != len(v) {
			return false
		}
		for i := range v {
			// Bit-exact comparison, NaN-safe.
			if v[i] != got[i] && !(v[i] != v[i] && got[i] != got[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(99).NormalVector(16, 0, 1)
	b := NewRNG(99).NormalVector(16, 0, 1)
	if !a.Equal(b, 0) {
		t.Error("same seed must give identical vectors")
	}
	c := NewRNG(100).NormalVector(16, 0, 1)
	if a.Equal(c, 0) {
		t.Error("different seeds should give different vectors")
	}
}

func TestRNGUniformRange(t *testing.T) {
	rng := NewRNG(1)
	for i := 0; i < 1000; i++ {
		x := rng.Uniform(2, 5)
		if x < 2 || x >= 5 {
			t.Fatalf("Uniform out of range: %v", x)
		}
	}
}

func TestXavierMatrixBounds(t *testing.T) {
	rng := NewRNG(3)
	m := rng.XavierMatrix(8, 4)
	limit := 0.70710678119 // sqrt(6/12)
	for _, x := range m.Data {
		if x < -limit || x > limit {
			t.Fatalf("Xavier weight out of bounds: %v", x)
		}
	}
}
