package tensor

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestNewVectorZeroed(t *testing.T) {
	v := NewVector(5)
	if len(v) != 5 {
		t.Fatalf("len = %d, want 5", len(v))
	}
	for i, x := range v {
		if x != 0 {
			t.Errorf("v[%d] = %v, want 0", i, x)
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	v := Vector{1, 2, 3}
	w := v.Clone()
	w[0] = 99
	if v[0] != 1 {
		t.Errorf("clone aliases original: v[0] = %v", v[0])
	}
}

func TestAddSub(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{4, 5, 6}
	sum, err := v.Add(w)
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Equal(Vector{5, 7, 9}, 0) {
		t.Errorf("Add = %v", sum)
	}
	diff, err := w.Sub(v)
	if err != nil {
		t.Fatal(err)
	}
	if !diff.Equal(Vector{3, 3, 3}, 0) {
		t.Errorf("Sub = %v", diff)
	}
}

func TestShapeMismatchErrors(t *testing.T) {
	v := Vector{1, 2}
	w := Vector{1, 2, 3}
	if _, err := v.Add(w); !errors.Is(err, ErrShapeMismatch) {
		t.Errorf("Add err = %v, want ErrShapeMismatch", err)
	}
	if _, err := v.Sub(w); !errors.Is(err, ErrShapeMismatch) {
		t.Errorf("Sub err = %v, want ErrShapeMismatch", err)
	}
	if _, err := v.Dot(w); !errors.Is(err, ErrShapeMismatch) {
		t.Errorf("Dot err = %v, want ErrShapeMismatch", err)
	}
	if err := v.AXPY(1, w); !errors.Is(err, ErrShapeMismatch) {
		t.Errorf("AXPY err = %v, want ErrShapeMismatch", err)
	}
	if _, err := Distance(v, w); !errors.Is(err, ErrShapeMismatch) {
		t.Errorf("Distance err = %v, want ErrShapeMismatch", err)
	}
}

func TestAXPY(t *testing.T) {
	v := Vector{1, 1, 1}
	if err := v.AXPY(2, Vector{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if !v.Equal(Vector{3, 5, 7}, 0) {
		t.Errorf("AXPY = %v", v)
	}
}

func TestDotNorm(t *testing.T) {
	v := Vector{3, 4}
	d, err := v.Dot(v)
	if err != nil {
		t.Fatal(err)
	}
	if d != 25 {
		t.Errorf("Dot = %v, want 25", d)
	}
	if n := v.Norm2(); n != 5 {
		t.Errorf("Norm2 = %v, want 5", n)
	}
}

func TestDistance(t *testing.T) {
	d, err := Distance(Vector{0, 0}, Vector{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if d != 5 {
		t.Errorf("Distance = %v, want 5", d)
	}
}

func TestMaxAbsSumFill(t *testing.T) {
	v := Vector{-7, 2, 3}
	if m := v.MaxAbs(); m != 7 {
		t.Errorf("MaxAbs = %v, want 7", m)
	}
	if s := v.Sum(); s != -2 {
		t.Errorf("Sum = %v, want -2", s)
	}
	v.Fill(1.5)
	if !v.Equal(Vector{1.5, 1.5, 1.5}, 0) {
		t.Errorf("Fill = %v", v)
	}
	v.Zero()
	if !v.Equal(Vector{0, 0, 0}, 0) {
		t.Errorf("Zero = %v", v)
	}
}

func TestIsFinite(t *testing.T) {
	if !(Vector{1, 2}).IsFinite() {
		t.Error("finite vector reported non-finite")
	}
	if (Vector{1, math.NaN()}).IsFinite() {
		t.Error("NaN vector reported finite")
	}
	if (Vector{math.Inf(1)}).IsFinite() {
		t.Error("Inf vector reported finite")
	}
}

func TestEqualTolerance(t *testing.T) {
	v := Vector{1.0, 2.0}
	w := Vector{1.0001, 2.0001}
	if v.Equal(w, 1e-6) {
		t.Error("Equal with tight tolerance should fail")
	}
	if !v.Equal(w, 1e-3) {
		t.Error("Equal with loose tolerance should pass")
	}
	if v.Equal(Vector{1}, 1) {
		t.Error("Equal must reject different lengths")
	}
}

// Property: distance is symmetric and satisfies d(v,v)=0.
func TestDistanceProperties(t *testing.T) {
	f := func(a, b []float64) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		v, w := Vector(a[:n]), Vector(b[:n])
		if !v.IsFinite() || !w.IsFinite() {
			return true
		}
		d1, err1 := Distance(v, w)
		d2, err2 := Distance(w, v)
		if err1 != nil || err2 != nil {
			return false
		}
		if d1 != d2 {
			return false
		}
		self, err := Distance(v, v)
		return err == nil && self == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: triangle inequality for Euclidean distance.
func TestDistanceTriangleInequality(t *testing.T) {
	f := func(a, b, c [8]float64) bool {
		v, w, u := Vector(a[:]), Vector(b[:]), Vector(c[:])
		for _, x := range [...]Vector{v, w, u} {
			if !x.IsFinite() || x.MaxAbs() > 1e100 {
				return true
			}
		}
		dvw, _ := Distance(v, w)
		dvu, _ := Distance(v, u)
		duw, _ := Distance(u, w)
		return dvw <= dvu+duw+1e-9*(1+dvu+duw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Add then Sub round-trips.
func TestAddSubRoundTrip(t *testing.T) {
	f := func(a, b [6]float64) bool {
		v, w := Vector(a[:]), Vector(b[:])
		if !v.IsFinite() || !w.IsFinite() || v.MaxAbs() > 1e150 || w.MaxAbs() > 1e150 {
			return true
		}
		sum, err := v.Add(w)
		if err != nil {
			return false
		}
		back, err := sum.Sub(w)
		if err != nil {
			return false
		}
		return back.Equal(v, 1e-9*(1+v.MaxAbs()+w.MaxAbs()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
