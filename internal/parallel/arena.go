package parallel

// Arena is a bump allocator for transient float64 scratch buffers. Grab
// returns a zeroed slice carved out of a growing slab; Reset makes the whole
// slab reusable without freeing it. Hot loops that previously did
// make([]float64, n) per step (conv activations, layer-norm scratch,
// ParamVector staging) Grab from an arena instead and Reset once per
// iteration, so steady-state allocation drops to zero.
//
// An Arena is single-owner state — one goroutine, no sharing. In the
// parallel runtime each worker chunk owns its own arena, which keeps the
// no-lock bump pointer correct and the buffers chunk-private (the For/
// ForChunks disjointness contract).
//
// A nil *Arena is valid: Grab falls back to make, Reset is a no-op. That
// lets layers take an optional arena without conditionals at every call
// site.
type Arena struct {
	slab []float64
	off  int
}

// NewArena returns an arena pre-sized to hold capacity float64s before its
// first grow. capacity <= 0 starts empty and grows on demand.
func NewArena(capacity int) *Arena {
	if capacity < 0 {
		capacity = 0
	}
	return &Arena{slab: make([]float64, capacity)}
}

// Grab returns a zeroed []float64 of length n backed by the arena's slab.
// The slice is valid until the next Reset; callers must not retain it past
// that point. A nil arena allocates fresh memory instead.
func (a *Arena) Grab(n int) []float64 {
	if n <= 0 {
		return nil
	}
	if a == nil {
		return make([]float64, n)
	}
	if a.off+n > len(a.slab) {
		a.grow(n)
	}
	s := a.slab[a.off : a.off+n : a.off+n]
	a.off += n
	for i := range s {
		s[i] = 0
	}
	return s
}

// grow replaces the slab so a further n floats fit. Outstanding slices keep
// their own references into the old slab, which the garbage collector keeps
// alive — Grab never invalidates previously grabbed buffers within one Reset
// window, so there is nothing to copy.
func (a *Arena) grow(n int) {
	need := a.off + n
	capHint := 2 * len(a.slab)
	if capHint < need {
		capHint = need
	}
	a.slab = make([]float64, capHint)
	a.off = 0
}

// Reset recycles every buffer handed out since the last Reset. Slices from
// earlier Grabs must not be used afterwards: the next Grab will re-hand the
// same memory.
func (a *Arena) Reset() {
	if a != nil {
		a.off = 0
	}
}

// Size reports the slab capacity in float64s (diagnostics/tests).
func (a *Arena) Size() int {
	if a == nil {
		return 0
	}
	return len(a.slab)
}
