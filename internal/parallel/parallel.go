// Package parallel is the repository's deterministic data-parallel runtime:
// a sized worker pool whose primitives split index ranges into FIXED chunk
// boundaries and merge per-chunk results in chunk-index order.
//
// The invariant the whole package is built around: for a given input, every
// result is bit-identical for ANY worker count, including 1. Chunk
// boundaries depend only on (n, grain) — never on how many goroutines
// execute them — and reductions walk chunks in ascending index order, so
// floating-point sums associate identically no matter how the chunks were
// scheduled. LSH digests, checkpoint commitments, and re-execution
// verification all hash exact float bit patterns (DESIGN Eq. 2 model); an
// unordered reduction would silently change digests with core count.
//
// A nil *Pool is valid everywhere and means "serial": callers thread an
// optional pool through hot paths without conditionals.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a sized worker set for data-parallel loops. The zero value is not
// useful; use New. A nil *Pool runs everything serially on the caller's
// goroutine.
//
// Pools are stateless between calls (no persistent goroutines), so a Pool is
// safe for concurrent use and costs nothing while idle.
type Pool struct {
	workers int
}

// New returns a pool that runs loop bodies on up to `workers` goroutines.
// workers <= 0 selects GOMAXPROCS. New(1) is a valid deterministic pool that
// executes chunks serially in index order — it exists so "parallel runtime
// at one worker" and "parallel runtime at eight workers" are the same code
// path producing the same bits.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers reports the pool's worker budget; a nil pool reports 1.
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// NumChunks returns the number of fixed chunks For/ForChunks split [0, n)
// into with the given grain: ceil(n/grain). grain <= 0 is treated as 1.
func NumChunks(n, grain int) int {
	if n <= 0 {
		return 0
	}
	if grain <= 0 {
		grain = 1
	}
	return (n + grain - 1) / grain
}

// ChunkBounds returns the half-open index range [lo, hi) of chunk c under
// the fixed chunking of [0, n) with the given grain.
func ChunkBounds(c, n, grain int) (lo, hi int) {
	if grain <= 0 {
		grain = 1
	}
	lo = c * grain
	hi = lo + grain
	if hi > n {
		hi = n
	}
	return lo, hi
}

// For splits [0, n) into fixed chunks of size grain and calls fn(lo, hi) for
// each chunk, possibly concurrently. fn must write only state that is
// disjoint per chunk (e.g. output rows lo..hi); under that contract the
// result is bit-identical for any worker count because the chunk boundaries
// never move. Blocks until every chunk completed.
func (p *Pool) For(n, grain int, fn func(lo, hi int)) {
	p.ForChunks(n, grain, func(_, lo, hi int) { fn(lo, hi) })
}

// ForChunks is For with the chunk index exposed, for bodies that accumulate
// into per-chunk buffers which the caller then merges in chunk order (the
// ordered-reduction pattern). Chunk-to-goroutine assignment is work-stealing
// and therefore scheduling-dependent, but since each chunk owns its buffer
// and merges happen afterwards in index order, scheduling never reaches the
// result.
func (p *Pool) ForChunks(n, grain int, fn func(chunk, lo, hi int)) {
	chunks := NumChunks(n, grain)
	if chunks == 0 {
		return
	}
	workers := p.Workers()
	if workers > chunks {
		workers = chunks
	}
	if workers <= 1 {
		for c := 0; c < chunks; c++ {
			lo, hi := ChunkBounds(c, n, grain)
			fn(c, lo, hi)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1) - 1)
				if c >= chunks {
					return
				}
				lo, hi := ChunkBounds(c, n, grain)
				fn(c, lo, hi)
			}
		}()
	}
	wg.Wait()
}

// Run executes the given thunks, possibly concurrently, and blocks until all
// finished. Determinism contract is the caller's: each thunk must own its
// outputs (indexed slots), with any cross-thunk merge done afterwards in
// index order.
func (p *Pool) Run(fns ...func()) {
	p.ForChunks(len(fns), 1, func(c, _, _ int) { fns[c]() })
}

// defaultWorkers is the process-wide worker budget commands install from
// their -jobs flag. It is configuration (like GOMAXPROCS), not protocol
// state: because every primitive is bit-deterministic in the worker count,
// the value can never change a protocol result, only wall-clock time.
var defaultWorkers atomic.Int64

// SetDefaultWorkers installs the process-wide default worker budget.
// n <= 0 restores the serial default.
func SetDefaultWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int64(n))
}

// DefaultWorkers returns the process-wide worker budget; 0 means "no
// parallel runtime requested" (legacy serial paths).
func DefaultWorkers() int { return int(defaultWorkers.Load()) }
