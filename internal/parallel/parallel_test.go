package parallel

import (
	"math"
	"sync/atomic"
	"testing"
)

func TestNumChunks(t *testing.T) {
	cases := []struct {
		n, grain, want int
	}{
		{0, 4, 0}, {-3, 4, 0}, {1, 4, 1}, {4, 4, 1}, {5, 4, 2},
		{8, 4, 2}, {9, 4, 3}, {7, 0, 7}, {7, -2, 7}, {7, 100, 1},
	}
	for _, tc := range cases {
		if got := NumChunks(tc.n, tc.grain); got != tc.want {
			t.Errorf("NumChunks(%d, %d) = %d, want %d", tc.n, tc.grain, got, tc.want)
		}
	}
}

func TestChunkBounds(t *testing.T) {
	n, grain := 10, 4
	covered := make([]int, n)
	for c := 0; c < NumChunks(n, grain); c++ {
		lo, hi := ChunkBounds(c, n, grain)
		if lo >= hi {
			t.Fatalf("chunk %d: empty range [%d,%d)", c, lo, hi)
		}
		for i := lo; i < hi; i++ {
			covered[i]++
		}
	}
	for i, c := range covered {
		if c != 1 {
			t.Errorf("index %d covered %d times", i, c)
		}
	}
}

// TestForCoverage checks every index is visited exactly once for a spread of
// (n, grain, workers) shapes, including workers > chunks and nil pool.
func TestForCoverage(t *testing.T) {
	shapes := []struct{ n, grain, workers int }{
		{0, 1, 4}, {1, 1, 4}, {17, 4, 1}, {17, 4, 2}, {17, 4, 8},
		{100, 7, 3}, {5, 100, 8}, {64, 1, 16},
	}
	for _, s := range shapes {
		visits := make([]int32, s.n)
		New(s.workers).For(s.n, s.grain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&visits[i], 1)
			}
		})
		for i, v := range visits {
			if v != 1 {
				t.Errorf("n=%d grain=%d workers=%d: index %d visited %d times",
					s.n, s.grain, s.workers, i, v)
			}
		}
	}
	var nilPool *Pool
	visits := make([]int, 9)
	nilPool.For(9, 2, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			visits[i]++
		}
	})
	for i, v := range visits {
		if v != 1 {
			t.Errorf("nil pool: index %d visited %d times", i, v)
		}
	}
	if nilPool.Workers() != 1 {
		t.Errorf("nil pool Workers() = %d, want 1", nilPool.Workers())
	}
}

// orderedSum is the canonical reduction pattern: per-chunk partial sums
// merged in chunk-index order.
func orderedSum(p *Pool, xs []float64, grain int) float64 {
	partial := make([]float64, NumChunks(len(xs), grain))
	p.ForChunks(len(xs), grain, func(c, lo, hi int) {
		s := 0.0
		for i := lo; i < hi; i++ {
			s += xs[i]
		}
		partial[c] = s
	})
	total := 0.0
	for _, s := range partial {
		total += s
	}
	return total
}

// TestOrderedReductionBitIdentical is the package's core promise: the same
// (n, grain) yields bit-identical float sums for every worker count, because
// chunk boundaries and merge order are fixed.
func TestOrderedReductionBitIdentical(t *testing.T) {
	xs := make([]float64, 1001)
	for i := range xs {
		// Scale-varied values so float addition is genuinely non-associative
		// across orderings: a scheduling-dependent reduction would diverge.
		xs[i] = math.Sin(float64(i)*0.7) * math.Pow(10, float64(i%13)-6)
	}
	ref := orderedSum(nil, xs, 64)
	for _, workers := range []int{1, 2, 3, 8, 16} {
		got := orderedSum(New(workers), xs, 64)
		if math.Float64bits(got) != math.Float64bits(ref) {
			t.Errorf("workers=%d: sum %x differs from serial %x",
				workers, math.Float64bits(got), math.Float64bits(ref))
		}
	}
}

func TestRun(t *testing.T) {
	out := make([]int, 5)
	fns := make([]func(), 5)
	for i := range fns {
		i := i
		fns[i] = func() { out[i] = i * i }
	}
	New(3).Run(fns...)
	for i, v := range out {
		if v != i*i {
			t.Errorf("thunk %d: got %d", i, v)
		}
	}
	New(2).Run() // no thunks: must not deadlock
}

func TestDefaultWorkersKnob(t *testing.T) {
	defer SetDefaultWorkers(0)
	if DefaultWorkers() != 0 {
		t.Fatalf("initial DefaultWorkers = %d", DefaultWorkers())
	}
	SetDefaultWorkers(6)
	if DefaultWorkers() != 6 {
		t.Errorf("DefaultWorkers = %d, want 6", DefaultWorkers())
	}
	SetDefaultWorkers(-2)
	if DefaultWorkers() != 0 {
		t.Errorf("DefaultWorkers = %d after negative set, want 0", DefaultWorkers())
	}
}

func TestArena(t *testing.T) {
	a := NewArena(8)
	b1 := a.Grab(4)
	b2 := a.Grab(4)
	if len(b1) != 4 || len(b2) != 4 {
		t.Fatalf("lengths %d, %d", len(b1), len(b2))
	}
	for i := range b1 {
		b1[i] = 1
		b2[i] = 2
	}
	if b1[3] != 1 || b2[0] != 2 {
		t.Fatal("buffers alias each other")
	}
	// Grow while b1/b2 outstanding: they must stay intact and disjoint from
	// the new slab.
	b3 := a.Grab(100)
	b3[0] = 3
	if b1[0] != 1 || b2[0] != 2 {
		t.Fatal("grow corrupted outstanding buffers")
	}
	a.Reset()
	b4 := a.Grab(100)
	for i, v := range b4 {
		if v != 0 {
			t.Fatalf("Grab after Reset not zeroed at %d: %v", i, v)
		}
	}
	if a.Size() < 100 {
		t.Errorf("arena size %d after grow, want >= 100", a.Size())
	}

	var nilArena *Arena
	nb := nilArena.Grab(3)
	if len(nb) != 3 {
		t.Fatalf("nil arena Grab len %d", len(nb))
	}
	nilArena.Reset() // must not panic
	if nilArena.Size() != 0 {
		t.Errorf("nil arena Size = %d", nilArena.Size())
	}
	if a.Grab(0) != nil || a.Grab(-1) != nil {
		t.Error("Grab(<=0) should return nil")
	}
}

// TestArenaZeroed verifies Grab always zeroes recycled memory, which layer
// code relies on for gradient-style accumulators.
func TestArenaZeroed(t *testing.T) {
	a := NewArena(16)
	for round := 0; round < 3; round++ {
		b := a.Grab(16)
		for i := range b {
			if b[i] != 0 {
				t.Fatalf("round %d: dirty at %d", round, i)
			}
			b[i] = float64(round + 1)
		}
		a.Reset()
	}
}

func BenchmarkForChunksOverhead(b *testing.B) {
	p := New(4)
	xs := make([]float64, 4096)
	for i := range xs {
		xs[i] = float64(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = orderedSum(p, xs, 256)
	}
}
