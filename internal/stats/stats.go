// Package stats implements the descriptive statistics and distribution tests
// that RPoL's adaptive LSH calibration depends on: the manager estimates
// α = mean + std of measured reproduction errors (Sec. V-C), and the paper
// establishes with a Kolmogorov–Smirnov test that reproduction errors follow
// a normal distribution per (GPU pair, epoch, optimizer) (Sec. VII-C).
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmptySample is returned when a statistic is requested over no data.
var ErrEmptySample = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmptySample
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs)), nil
}

// Variance returns the population variance of xs.
func Variance(xs []float64) (float64, error) {
	m, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)), nil
}

// Std returns the population standard deviation of xs.
func Std(xs []float64) (float64, error) {
	v, err := Variance(xs)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// MinMax returns the smallest and largest values in xs.
func MinMax(xs []float64) (lo, hi float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmptySample
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi, nil
}

// Summary bundles the descriptive statistics the experiment harness reports
// for a sample of reproduction errors or spoof distances.
type Summary struct {
	N          int
	Mean, Std  float64
	Min, Max   float64
	MeanPlusSD float64 // the paper's "maximum value": mean + std (Sec. VII-C)
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) (Summary, error) {
	m, err := Mean(xs)
	if err != nil {
		return Summary{}, err
	}
	sd, err := Std(xs)
	if err != nil {
		return Summary{}, err
	}
	lo, hi, err := MinMax(xs)
	if err != nil {
		return Summary{}, err
	}
	return Summary{
		N:          len(xs),
		Mean:       m,
		Std:        sd,
		Min:        lo,
		Max:        hi,
		MeanPlusSD: m + sd,
	}, nil
}

// NormalPDF returns the density of N(mean, std²) at x.
func NormalPDF(x, mean, std float64) float64 {
	if std <= 0 {
		return 0
	}
	z := (x - mean) / std
	return math.Exp(-0.5*z*z) / (std * math.Sqrt(2*math.Pi))
}

// NormalCDF returns P(X ≤ x) for X ~ N(mean, std²).
func NormalCDF(x, mean, std float64) float64 {
	if std <= 0 {
		if x < mean {
			return 0
		}
		return 1
	}
	return 0.5 * math.Erfc(-(x-mean)/(std*math.Sqrt2))
}

// StdNormalCDF returns Φ(z), the standard normal CDF.
func StdNormalCDF(z float64) float64 { return NormalCDF(z, 0, 1) }

// NormalQuantile returns the z with NormalCDF(z, mean, std) = p, computed by
// bisection. p must lie strictly in (0, 1).
func NormalQuantile(p, mean, std float64) (float64, error) {
	if p <= 0 || p >= 1 {
		return 0, errors.New("stats: quantile probability out of (0,1)")
	}
	lo, hi := mean-12*std, mean+12*std
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if NormalCDF(mid, mean, std) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// KSResult reports a one-sample Kolmogorov–Smirnov test against a fitted
// normal distribution.
type KSResult struct {
	Statistic float64 // D_n, the sup-norm distance between empirical and model CDF
	PValue    float64 // asymptotic p-value via the Kolmogorov distribution
	Mean, Std float64 // fitted parameters
	Normal    bool    // PValue ≥ 0.05
}

// KSTestNormal fits a normal distribution to xs and runs a one-sample
// Kolmogorov–Smirnov test against it. It mirrors the check the paper uses to
// establish that reproduction errors are normally distributed (Sec. VII-C).
func KSTestNormal(xs []float64) (KSResult, error) {
	if len(xs) < 3 {
		return KSResult{}, errors.New("stats: KS test needs at least 3 samples")
	}
	m, err := Mean(xs)
	if err != nil {
		return KSResult{}, err
	}
	sd, err := Std(xs)
	if err != nil {
		return KSResult{}, err
	}
	if sd == 0 {
		return KSResult{Statistic: 1, PValue: 0, Mean: m, Std: sd}, nil
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	var d float64
	for i, x := range sorted {
		f := NormalCDF(x, m, sd)
		upper := (float64(i)+1)/n - f
		lower := f - float64(i)/n
		if upper > d {
			d = upper
		}
		if lower > d {
			d = lower
		}
	}
	p := ksPValue(d, len(sorted))
	return KSResult{Statistic: d, PValue: p, Mean: m, Std: sd, Normal: p >= 0.05}, nil
}

// ksPValue returns the asymptotic Kolmogorov p-value
// P(D_n > d) ≈ 2 Σ_{k≥1} (-1)^{k-1} exp(-2 k² λ²) with the small-sample
// correction λ = d(√n + 0.12 + 0.11/√n) (Stephens 1970).
func ksPValue(d float64, n int) float64 {
	sqrtN := math.Sqrt(float64(n))
	lambda := d * (sqrtN + 0.12 + 0.11/sqrtN)
	if lambda < 1e-6 {
		return 1
	}
	var sum float64
	for k := 1; k <= 100; k++ {
		term := math.Exp(-2 * float64(k*k) * lambda * lambda)
		if k%2 == 1 {
			sum += term
		} else {
			sum -= term
		}
		if term < 1e-12 {
			break
		}
	}
	p := 2 * sum
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return p
}

// Pearson returns the linear correlation coefficient of the paired samples
// xs and ys. It quantifies claims like "reproduction error grows linearly
// with the checkpoint interval" (Sec. VII-C).
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: paired samples differ in length")
	}
	if len(xs) < 2 {
		return 0, ErrEmptySample
	}
	mx, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	my, err := Mean(ys)
	if err != nil {
		return 0, err
	}
	var cov, vx, vy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0, errors.New("stats: zero variance in correlation")
	}
	return cov / math.Sqrt(vx*vy), nil
}

// Histogram bins xs into n equal-width buckets over [min, max] and returns
// the bucket edges (n+1 values) and counts (n values).
func Histogram(xs []float64, n int) (edges []float64, counts []int, err error) {
	if n <= 0 {
		return nil, nil, errors.New("stats: histogram needs at least one bucket")
	}
	lo, hi, err := MinMax(xs)
	if err != nil {
		return nil, nil, err
	}
	//rpolvet:ignore floateq exact check for a fully degenerate range; any nonzero width avoids the division below
	if hi == lo {
		hi = lo + 1
	}
	edges = make([]float64, n+1)
	width := (hi - lo) / float64(n)
	for i := range edges {
		edges[i] = lo + float64(i)*width
	}
	counts = make([]int, n)
	for _, x := range xs {
		idx := int((x - lo) / width)
		if idx >= n {
			idx = n - 1
		}
		if idx < 0 {
			idx = 0
		}
		counts[idx]++
	}
	return edges, counts, nil
}
