package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	m, err := Mean(xs)
	if err != nil {
		t.Fatal(err)
	}
	if m != 5 {
		t.Errorf("Mean = %v, want 5", m)
	}
	sd, err := Std(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sd-2) > 1e-12 {
		t.Errorf("Std = %v, want 2", sd)
	}
}

func TestEmptySampleErrors(t *testing.T) {
	if _, err := Mean(nil); !errors.Is(err, ErrEmptySample) {
		t.Errorf("Mean err = %v", err)
	}
	if _, err := Std(nil); !errors.Is(err, ErrEmptySample) {
		t.Errorf("Std err = %v", err)
	}
	if _, _, err := MinMax(nil); !errors.Is(err, ErrEmptySample) {
		t.Errorf("MinMax err = %v", err)
	}
	if _, err := Summarize(nil); !errors.Is(err, ErrEmptySample) {
		t.Errorf("Summarize err = %v", err)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi, err := MinMax([]float64{3, -1, 7, 2})
	if err != nil {
		t.Fatal(err)
	}
	if lo != -1 || hi != 7 {
		t.Errorf("MinMax = (%v, %v), want (-1, 7)", lo, hi)
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 3 || s.Mean != 2 || s.Min != 1 || s.Max != 3 {
		t.Errorf("Summary = %+v", s)
	}
	if math.Abs(s.MeanPlusSD-(2+s.Std)) > 1e-12 {
		t.Errorf("MeanPlusSD = %v", s.MeanPlusSD)
	}
}

func TestNormalPDFPeak(t *testing.T) {
	peak := NormalPDF(0, 0, 1)
	want := 1 / math.Sqrt(2*math.Pi)
	if math.Abs(peak-want) > 1e-12 {
		t.Errorf("PDF(0) = %v, want %v", peak, want)
	}
	if NormalPDF(1, 0, 1) >= peak {
		t.Error("PDF must be maximal at the mean")
	}
	if NormalPDF(0, 0, 0) != 0 {
		t.Error("PDF with zero std must be 0")
	}
}

func TestNormalCDFKnownValues(t *testing.T) {
	cases := []struct {
		z, want float64
	}{
		{0, 0.5},
		{1.0, 0.8413447460685429},
		{-1.0, 0.15865525393145707},
		{1.959963985, 0.975},
	}
	for _, c := range cases {
		if got := StdNormalCDF(c.z); math.Abs(got-c.want) > 1e-6 {
			t.Errorf("Φ(%v) = %v, want %v", c.z, got, c.want)
		}
	}
}

func TestNormalCDFDegenerate(t *testing.T) {
	if NormalCDF(1, 2, 0) != 0 {
		t.Error("CDF below point mass must be 0")
	}
	if NormalCDF(3, 2, 0) != 1 {
		t.Error("CDF above point mass must be 1")
	}
}

func TestNormalQuantileInvertsCDF(t *testing.T) {
	for _, p := range []float64{0.01, 0.05, 0.5, 0.95, 0.99} {
		z, err := NormalQuantile(p, 3, 2)
		if err != nil {
			t.Fatal(err)
		}
		if got := NormalCDF(z, 3, 2); math.Abs(got-p) > 1e-9 {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
	if _, err := NormalQuantile(0, 0, 1); err == nil {
		t.Error("want error for p=0")
	}
	if _, err := NormalQuantile(1, 0, 1); err == nil {
		t.Error("want error for p=1")
	}
}

func TestKSTestAcceptsNormal(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = 5 + 2*rng.NormFloat64()
	}
	res, err := KSTestNormal(xs)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Normal {
		t.Errorf("KS rejected genuine normal sample: %+v", res)
	}
	if math.Abs(res.Mean-5) > 0.3 || math.Abs(res.Std-2) > 0.3 {
		t.Errorf("fitted parameters off: %+v", res)
	}
}

func TestKSTestRejectsUniformTail(t *testing.T) {
	// A strongly bimodal sample is far from normal.
	xs := make([]float64, 400)
	for i := range xs {
		if i%2 == 0 {
			xs[i] = -10
		} else {
			xs[i] = 10
		}
	}
	res, err := KSTestNormal(xs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Normal {
		t.Errorf("KS accepted bimodal sample: %+v", res)
	}
}

func TestKSTestSmallSample(t *testing.T) {
	if _, err := KSTestNormal([]float64{1, 2}); err == nil {
		t.Error("want error for tiny sample")
	}
	res, err := KSTestNormal([]float64{3, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Normal {
		t.Error("constant sample must not be declared normal")
	}
}

func TestHistogram(t *testing.T) {
	edges, counts, err := Histogram([]float64{0, 0.5, 1, 1.5, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 3 || len(counts) != 2 {
		t.Fatalf("edges=%v counts=%v", edges, counts)
	}
	if counts[0]+counts[1] != 5 {
		t.Errorf("histogram loses mass: %v", counts)
	}
	if _, _, err := Histogram(nil, 2); err == nil {
		t.Error("want error for empty sample")
	}
	if _, _, err := Histogram([]float64{1}, 0); err == nil {
		t.Error("want error for zero buckets")
	}
}

func TestHistogramConstantSample(t *testing.T) {
	_, counts, err := Histogram([]float64{2, 2, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 3 {
		t.Errorf("constant sample histogram mass = %d", total)
	}
}

// Property: CDF is monotone non-decreasing and bounded in [0,1].
func TestNormalCDFMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		ca, cb := StdNormalCDF(a), StdNormalCDF(b)
		return ca <= cb && ca >= 0 && cb <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: mean lies within [min, max] and std is non-negative.
func TestSummaryInvariants(t *testing.T) {
	f := func(a []float64) bool {
		if len(a) == 0 {
			return true
		}
		for _, x := range a {
			// Skip values whose squares overflow float64.
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e150 {
				return true
			}
		}
		s, err := Summarize(a)
		if err != nil {
			return false
		}
		return s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9 && s.Std >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPearson(t *testing.T) {
	// Perfectly linear.
	r, err := Pearson([]float64{1, 2, 3, 4}, []float64{2, 4, 6, 8})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-1) > 1e-12 {
		t.Errorf("r = %v, want 1", r)
	}
	// Perfectly anti-linear.
	r, err = Pearson([]float64{1, 2, 3}, []float64{3, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r+1) > 1e-12 {
		t.Errorf("r = %v, want -1", r)
	}
	// Errors.
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Pearson([]float64{1}, []float64{1}); err == nil {
		t.Error("single pair accepted")
	}
	if _, err := Pearson([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Error("zero variance accepted")
	}
}

func TestPearsonBounded(t *testing.T) {
	f := func(a, b [6]float64) bool {
		for i := range a {
			if math.IsNaN(a[i]) || math.IsInf(a[i], 0) || math.Abs(a[i]) > 1e100 ||
				math.IsNaN(b[i]) || math.IsInf(b[i], 0) || math.Abs(b[i]) > 1e100 {
				return true
			}
		}
		r, err := Pearson(a[:], b[:])
		if err != nil {
			return true // degenerate variance
		}
		return r >= -1-1e-9 && r <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
