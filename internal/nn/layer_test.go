package nn

import (
	"errors"
	"math"
	"testing"

	"rpol/internal/tensor"
)

// numericalGrad estimates ∂loss/∂θ for a single parameter via central
// differences, where loss is the cross-entropy of the network on (x, label).
func numericalGrad(t *testing.T, net *Network, x tensor.Vector, label int, p tensor.Vector, idx int) float64 {
	t.Helper()
	const h = 1e-6
	orig := p[idx]
	p[idx] = orig + h
	lp := lossOf(t, net, x, label)
	p[idx] = orig - h
	lm := lossOf(t, net, x, label)
	p[idx] = orig
	return (lp - lm) / (2 * h)
}

func lossOf(t *testing.T, net *Network, x tensor.Vector, label int) float64 {
	t.Helper()
	logits, err := net.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	loss, _, err := SoftmaxCrossEntropy(logits, label)
	if err != nil {
		t.Fatal(err)
	}
	return loss
}

func analyticGrads(t *testing.T, net *Network, x tensor.Vector, label int) []tensor.Vector {
	t.Helper()
	net.ZeroGrads()
	logits, err := net.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	_, grad, err := SoftmaxCrossEntropy(logits, label)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Backward(grad); err != nil {
		t.Fatal(err)
	}
	return net.Grads()
}

func checkGradients(t *testing.T, net *Network, x tensor.Vector, label int) {
	t.Helper()
	grads := analyticGrads(t, net, x, label)
	params := net.Params()
	for pi, p := range params {
		stride := len(p)/7 + 1
		for idx := 0; idx < len(p); idx += stride {
			num := numericalGrad(t, net, x, label, p, idx)
			ana := grads[pi][idx]
			if math.Abs(num-ana) > 1e-4*(1+math.Abs(num)) {
				t.Errorf("param %d[%d]: numerical %v vs analytic %v", pi, idx, num, ana)
			}
		}
	}
}

func TestDenseGradCheck(t *testing.T) {
	rng := tensor.NewRNG(1)
	net, err := NewNetwork(NewDense(6, 5, rng), NewReLU(5), NewDense(5, 3, rng))
	if err != nil {
		t.Fatal(err)
	}
	x := rng.NormalVector(6, 0, 1)
	checkGradients(t, net, x, 2)
}

func TestConvGradCheck(t *testing.T) {
	rng := tensor.NewRNG(2)
	conv, err := NewConv2D(2, 5, 5, 3, 3, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	net, err := NewNetwork(conv, NewReLU(conv.OutputDim()), NewDense(conv.OutputDim(), 4, rng))
	if err != nil {
		t.Fatal(err)
	}
	x := rng.NormalVector(conv.InputDim(), 0, 1)
	checkGradients(t, net, x, 1)
}

func TestResidualGradCheck(t *testing.T) {
	rng := tensor.NewRNG(3)
	inner := NewDense(6, 6, rng)
	res, err := NewResidual(inner)
	if err != nil {
		t.Fatal(err)
	}
	net, err := NewNetwork(res, NewDense(6, 3, rng))
	if err != nil {
		t.Fatal(err)
	}
	x := rng.NormalVector(6, 0, 1)
	checkGradients(t, net, x, 0)
}

func TestResidualRequiresSquare(t *testing.T) {
	rng := tensor.NewRNG(4)
	if _, err := NewResidual(NewDense(4, 5, rng)); !errors.Is(err, ErrNotConnected) {
		t.Errorf("err = %v, want ErrNotConnected", err)
	}
}

func TestResidualIdentitySkip(t *testing.T) {
	rng := tensor.NewRNG(5)
	inner := NewDense(3, 3, rng)
	inner.W.Data.Zero()
	inner.B.Zero()
	res, err := NewResidual(inner)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.Vector{1, 2, 3}
	y, err := res.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	if !y.Equal(x, 0) {
		t.Errorf("zero inner must be identity: %v", y)
	}
}

func TestFrozenDenseExposesNoParams(t *testing.T) {
	rng := tensor.NewRNG(6)
	d := NewDense(4, 4, rng)
	d.Frozen = true
	if d.Params() != nil || d.Grads() != nil {
		t.Error("frozen layer must expose no params")
	}
	// Backward must still propagate gradient without touching param grads.
	x := rng.NormalVector(4, 0, 1)
	if _, err := d.Forward(x); err != nil {
		t.Fatal(err)
	}
	g, err := d.Backward(tensor.Vector{1, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(g) != 4 {
		t.Errorf("grad len = %d", len(g))
	}
	if d.GradW.Data.Norm2() != 0 || d.GradB.Norm2() != 0 {
		t.Error("frozen layer accumulated parameter gradients")
	}
}

func TestBackwardBeforeForwardErrors(t *testing.T) {
	rng := tensor.NewRNG(7)
	d := NewDense(3, 3, rng)
	if _, err := d.Backward(tensor.Vector{1, 1, 1}); err == nil {
		t.Error("dense: want error")
	}
	r := NewReLU(3)
	if _, err := r.Backward(tensor.Vector{1, 1, 1}); err == nil {
		t.Error("relu: want error")
	}
	c, err := NewConv2D(1, 3, 3, 1, 3, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Backward(tensor.NewVector(c.OutputDim())); err == nil {
		t.Error("conv: want error")
	}
}

func TestReLUForward(t *testing.T) {
	r := NewReLU(4)
	y, err := r.Forward(tensor.Vector{-1, 0, 2, -3})
	if err != nil {
		t.Fatal(err)
	}
	if !y.Equal(tensor.Vector{0, 0, 2, 0}, 0) {
		t.Errorf("ReLU = %v", y)
	}
	if _, err := r.Forward(tensor.Vector{1}); err == nil {
		t.Error("want shape error")
	}
}

func TestConvGeometryValidation(t *testing.T) {
	rng := tensor.NewRNG(8)
	if _, err := NewConv2D(0, 3, 3, 1, 3, 1, rng); err == nil {
		t.Error("want error for zero channels")
	}
	if _, err := NewConv2D(1, 2, 2, 1, 5, 0, rng); err == nil {
		t.Error("want error for kernel larger than input")
	}
	if _, err := NewConv2D(1, 3, 3, 1, 3, -1, rng); err == nil {
		t.Error("want error for negative padding")
	}
}

func TestConvOutputDims(t *testing.T) {
	rng := tensor.NewRNG(9)
	// Same-padding 3x3 conv on 8x8: output spatial dims preserved.
	c, err := NewConv2D(3, 8, 8, 16, 3, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if c.OutputDim() != 16*8*8 {
		t.Errorf("OutputDim = %d, want %d", c.OutputDim(), 16*8*8)
	}
	// Valid (pad 0) conv shrinks by K-1.
	v, err := NewConv2D(1, 8, 8, 2, 3, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if v.OutputDim() != 2*6*6 {
		t.Errorf("valid OutputDim = %d, want %d", v.OutputDim(), 2*6*6)
	}
}

func TestConvKnownValue(t *testing.T) {
	rng := tensor.NewRNG(10)
	c, err := NewConv2D(1, 3, 3, 1, 3, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Identity-ish kernel: only center weight 1.
	c.W.Zero()
	c.W[4] = 1 // center of 3x3
	c.B[0] = 0.5
	x := tensor.Vector{1, 2, 3, 4, 5, 6, 7, 8, 9}
	y, err := c.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	if len(y) != 1 {
		t.Fatalf("out len %d", len(y))
	}
	if y[0] != 5.5 { // center pixel + bias
		t.Errorf("conv out = %v, want 5.5", y[0])
	}
}

func TestSpectralNormalize(t *testing.T) {
	rng := tensor.NewRNG(11)
	m := rng.XavierMatrix(12, 12)
	m.Data.Scale(10) // make σ large
	SpectralNormalize(m, 0.5, 60)
	got := m.SpectralNorm(60)
	if got > 0.5+1e-6 {
		t.Errorf("σ after normalize = %v, want ≤ 0.5", got)
	}
	// A matrix already below the bound must be untouched.
	small := rng.XavierMatrix(4, 4)
	small.Data.Scale(1e-3)
	before := small.Data.Clone()
	SpectralNormalize(small, 0.5, 60)
	if !small.Data.Equal(before, 0) {
		t.Error("matrix below bound must not be rescaled")
	}
}
