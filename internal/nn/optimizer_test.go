package nn

import (
	"errors"
	"math"
	"testing"

	"rpol/internal/tensor"
)

func quadParams() ([]tensor.Vector, []tensor.Vector) {
	// One parameter tensor θ=[4, -3]; loss = ½‖θ‖², grad = θ.
	p := []tensor.Vector{{4, -3}}
	g := []tensor.Vector{p[0].Clone()}
	return p, g
}

func runQuadratic(t *testing.T, opt Optimizer, steps int) float64 {
	t.Helper()
	p, _ := quadParams()
	for i := 0; i < steps; i++ {
		g := []tensor.Vector{p[0].Clone()} // grad of ½‖θ‖² is θ
		if err := opt.Step(p, g); err != nil {
			t.Fatal(err)
		}
	}
	return p[0].Norm2()
}

func TestOptimizersConvergeOnQuadratic(t *testing.T) {
	cases := []struct {
		name string
		opt  Optimizer
	}{
		{"sgd", &SGD{LR: 0.1}},
		{"sgdm", &SGDM{LR: 0.05, Momentum: 0.9}},
		{"rmsprop", &RMSprop{LR: 0.05, Decay: 0.99}},
		{"adam", &Adam{LR: 0.2, Beta1: 0.9, Beta2: 0.999}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			start := (tensor.Vector{4, -3}).Norm2()
			final := runQuadratic(t, c.opt, 200)
			if final >= start/10 {
				t.Errorf("%s: ‖θ‖ %v → %v, insufficient convergence", c.name, start, final)
			}
		})
	}
}

func TestSGDExactStep(t *testing.T) {
	opt := &SGD{LR: 0.5}
	p := []tensor.Vector{{2, 2}}
	g := []tensor.Vector{{1, -1}}
	if err := opt.Step(p, g); err != nil {
		t.Fatal(err)
	}
	if !p[0].Equal(tensor.Vector{1.5, 2.5}, 1e-12) {
		t.Errorf("SGD step = %v", p[0])
	}
}

func TestSGDMMomentumAccumulates(t *testing.T) {
	opt := &SGDM{LR: 1, Momentum: 0.5}
	p := []tensor.Vector{{0}}
	g := []tensor.Vector{{1}}
	// Step 1: v=1, θ=-1. Step 2 (same grad): v=1.5, θ=-2.5.
	if err := opt.Step(p, g); err != nil {
		t.Fatal(err)
	}
	if err := opt.Step(p, []tensor.Vector{{1}}); err != nil {
		t.Fatal(err)
	}
	if math.Abs(p[0][0]+2.5) > 1e-12 {
		t.Errorf("θ = %v, want -2.5", p[0][0])
	}
}

func TestOptimizerShapeErrors(t *testing.T) {
	for _, opt := range []Optimizer{&SGD{LR: 0.1}, &SGDM{LR: 0.1}, &RMSprop{LR: 0.1, Decay: 0.9}, &Adam{LR: 0.1, Beta1: 0.9, Beta2: 0.99}} {
		if err := opt.Step([]tensor.Vector{{1}}, nil); !errors.Is(err, ErrStateMismatch) {
			t.Errorf("%s: err = %v, want ErrStateMismatch", opt.Name(), err)
		}
		if err := opt.Step([]tensor.Vector{{1, 2}}, []tensor.Vector{{1}}); !errors.Is(err, ErrStateMismatch) {
			t.Errorf("%s: err = %v, want ErrStateMismatch", opt.Name(), err)
		}
	}
}

func TestStatefulOptimizerLayoutChange(t *testing.T) {
	opt := &SGDM{LR: 0.1, Momentum: 0.9}
	if err := opt.Step([]tensor.Vector{{1, 2}}, []tensor.Vector{{1, 1}}); err != nil {
		t.Fatal(err)
	}
	// Different tensor count after state init must error, not corrupt.
	err := opt.Step([]tensor.Vector{{1, 2}, {3}}, []tensor.Vector{{1, 1}, {1}})
	if !errors.Is(err, ErrStateMismatch) {
		t.Errorf("err = %v, want ErrStateMismatch", err)
	}
	// Same count but different size must error too.
	err = opt.Step([]tensor.Vector{{1, 2, 3}}, []tensor.Vector{{1, 1, 1}})
	if !errors.Is(err, ErrStateMismatch) {
		t.Errorf("err = %v, want ErrStateMismatch", err)
	}
}

func TestResetClearsState(t *testing.T) {
	opt := &SGDM{LR: 1, Momentum: 0.9}
	p := []tensor.Vector{{0}}
	if err := opt.Step(p, []tensor.Vector{{1}}); err != nil {
		t.Fatal(err)
	}
	opt.Reset()
	// After reset, state layout may change freely.
	if err := opt.Step([]tensor.Vector{{0, 0}}, []tensor.Vector{{1, 1}}); err != nil {
		t.Errorf("step after reset: %v", err)
	}
}

func TestAdamBiasCorrectionFirstStep(t *testing.T) {
	opt := &Adam{LR: 0.1, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
	p := []tensor.Vector{{0}}
	if err := opt.Step(p, []tensor.Vector{{1}}); err != nil {
		t.Fatal(err)
	}
	// With bias correction the first step is ≈ -lr regardless of betas.
	if math.Abs(p[0][0]+0.1) > 1e-6 {
		t.Errorf("first Adam step = %v, want ≈ -0.1", p[0][0])
	}
}

func TestNewOptimizer(t *testing.T) {
	for _, name := range []string{"sgd", "sgdm", "rmsprop", "adam"} {
		opt, err := NewOptimizer(name, 0.1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if opt.Name() != name {
			t.Errorf("Name = %s, want %s", opt.Name(), name)
		}
	}
	if _, err := NewOptimizer("adagrad", 0.1); err == nil {
		t.Error("want error for unknown optimizer")
	}
}

func TestOptimizersProduceDistinctTrajectories(t *testing.T) {
	// Different optimizers must lead to different weights after the same
	// steps — the paper observes reproduction errors differ by optimizer
	// (Sec. VII-C), which requires distinct dynamics.
	trajectory := func(opt Optimizer) tensor.Vector {
		p := []tensor.Vector{{1, -2, 3}}
		for i := 0; i < 10; i++ {
			g := []tensor.Vector{p[0].Clone()}
			if err := opt.Step(p, g); err != nil {
				t.Fatal(err)
			}
		}
		return p[0]
	}
	sgd := trajectory(&SGD{LR: 0.1})
	sgdm := trajectory(&SGDM{LR: 0.1, Momentum: 0.9})
	adam := trajectory(&Adam{LR: 0.1, Beta1: 0.9, Beta2: 0.999})
	if sgd.Equal(sgdm, 1e-12) || sgd.Equal(adam, 1e-12) || sgdm.Equal(adam, 1e-12) {
		t.Error("optimizers should produce distinct trajectories")
	}
}
