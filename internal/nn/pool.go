package nn

import (
	"errors"
	"fmt"

	"rpol/internal/parallel"
	"rpol/internal/tensor"
)

// MaxPool2D is a non-overlapping max-pooling layer over a flattened
// (channels, height, width) layout — the downsampling block of the
// convolutional proxy architectures. Window dimensions must divide the
// spatial dimensions.
type MaxPool2D struct {
	C, H, W int
	Window  int

	// argmax caches, per output element, the input index that won the max,
	// for gradient routing. It is reused across Forward calls — every entry
	// is overwritten each pass.
	argmax  []int
	scratch *parallel.Arena
}

var _ Layer = (*MaxPool2D)(nil)

// NewMaxPool2D returns a window×window max pool over (c, h, w) inputs.
func NewMaxPool2D(c, h, w, window int) (*MaxPool2D, error) {
	if c < 1 || h < 1 || w < 1 || window < 1 {
		return nil, errors.New("nn: invalid maxpool geometry")
	}
	if h%window != 0 || w%window != 0 {
		return nil, fmt.Errorf("nn: window %d does not divide %dx%d", window, h, w)
	}
	return &MaxPool2D{C: c, H: h, W: w, Window: window}, nil
}

func (m *MaxPool2D) outH() int { return m.H / m.Window }
func (m *MaxPool2D) outW() int { return m.W / m.Window }

// InputDim returns c·h·w.
func (m *MaxPool2D) InputDim() int { return m.C * m.H * m.W }

// OutputDim returns c·(h/window)·(w/window).
func (m *MaxPool2D) OutputDim() int { return m.C * m.outH() * m.outW() }

// Forward computes the window maxima.
func (m *MaxPool2D) Forward(x tensor.Vector) (tensor.Vector, error) {
	if len(x) != m.InputDim() {
		return nil, fmt.Errorf("maxpool input %d, want %d: %w", len(x), m.InputDim(), tensor.ErrShapeMismatch)
	}
	oh, ow := m.outH(), m.outW()
	out := tensor.Vector(m.scratch.Grab(m.C * oh * ow))
	if len(m.argmax) != len(out) {
		m.argmax = make([]int, len(out))
	}
	for c := 0; c < m.C; c++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				bestIdx := (c*m.H+oy*m.Window)*m.W + ox*m.Window
				best := x[bestIdx]
				for ky := 0; ky < m.Window; ky++ {
					for kx := 0; kx < m.Window; kx++ {
						idx := (c*m.H+oy*m.Window+ky)*m.W + ox*m.Window + kx
						if x[idx] > best {
							best = x[idx]
							bestIdx = idx
						}
					}
				}
				o := (c*oh+oy)*ow + ox
				out[o] = best
				m.argmax[o] = bestIdx
			}
		}
	}
	return out, nil
}

// Backward routes each output gradient to the input element that won the
// max.
func (m *MaxPool2D) Backward(grad tensor.Vector) (tensor.Vector, error) {
	if m.argmax == nil {
		return nil, errors.New("nn: maxpool backward before forward")
	}
	if len(grad) != m.OutputDim() {
		return nil, fmt.Errorf("maxpool grad %d, want %d: %w", len(grad), m.OutputDim(), tensor.ErrShapeMismatch)
	}
	in := tensor.Vector(m.scratch.Grab(m.InputDim()))
	for o, g := range grad {
		in[m.argmax[o]] += g
	}
	return in, nil
}

// Params returns nil; pooling has no parameters.
func (m *MaxPool2D) Params() []tensor.Vector { return nil }

// Grads returns nil; pooling has no parameters.
func (m *MaxPool2D) Grads() []tensor.Vector { return nil }

// ZeroGrads is a no-op.
func (m *MaxPool2D) ZeroGrads() {}

// Name returns "maxpool2d".
func (m *MaxPool2D) Name() string { return "maxpool2d" }
