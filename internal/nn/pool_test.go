package nn

import (
	"testing"

	"rpol/internal/tensor"
)

func TestMaxPoolForwardKnown(t *testing.T) {
	// 1 channel, 4×4 input, 2×2 windows.
	mp, err := NewMaxPool2D(1, 4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.Vector{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}
	y, err := mp.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	if !y.Equal(tensor.Vector{6, 8, 14, 16}, 0) {
		t.Errorf("pool = %v", y)
	}
	if mp.OutputDim() != 4 || mp.InputDim() != 16 {
		t.Errorf("dims = %d, %d", mp.InputDim(), mp.OutputDim())
	}
}

func TestMaxPoolBackwardRouting(t *testing.T) {
	mp, err := NewMaxPool2D(1, 2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.Vector{1, 9, 3, 4} // max at index 1
	if _, err := mp.Forward(x); err != nil {
		t.Fatal(err)
	}
	gin, err := mp.Backward(tensor.Vector{5})
	if err != nil {
		t.Fatal(err)
	}
	if !gin.Equal(tensor.Vector{0, 5, 0, 0}, 0) {
		t.Errorf("grad routing = %v", gin)
	}
}

func TestMaxPoolValidation(t *testing.T) {
	if _, err := NewMaxPool2D(0, 4, 4, 2); err == nil {
		t.Error("zero channels accepted")
	}
	if _, err := NewMaxPool2D(1, 5, 4, 2); err == nil {
		t.Error("non-dividing window accepted")
	}
	mp, err := NewMaxPool2D(1, 4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mp.Forward(tensor.NewVector(3)); err == nil {
		t.Error("wrong input size accepted")
	}
	if _, err := mp.Backward(tensor.NewVector(4)); err == nil {
		t.Error("backward before forward accepted")
	}
	if _, err := mp.Forward(tensor.NewVector(16)); err != nil {
		t.Fatal(err)
	}
	if _, err := mp.Backward(tensor.NewVector(3)); err == nil {
		t.Error("wrong grad size accepted")
	}
	if mp.Params() != nil || mp.Grads() != nil || mp.Name() != "maxpool2d" {
		t.Error("metadata wrong")
	}
}

func TestMaxPoolGradCheckInNetwork(t *testing.T) {
	rng := tensor.NewRNG(21)
	conv, err := NewConv2D(1, 4, 4, 2, 3, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	mp, err := NewMaxPool2D(2, 4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	net, err := NewNetwork(conv, mp, NewDense(mp.OutputDim(), 3, rng))
	if err != nil {
		t.Fatal(err)
	}
	x := rng.NormalVector(16, 0, 1)
	checkGradients(t, net, x, 1)
}

func TestMaxPoolMultiChannel(t *testing.T) {
	mp, err := NewMaxPool2D(2, 2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Channel 0: max 4; channel 1: max 8.
	x := tensor.Vector{1, 2, 3, 4, 8, 7, 6, 5}
	y, err := mp.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	if !y.Equal(tensor.Vector{4, 8}, 0) {
		t.Errorf("multi-channel pool = %v", y)
	}
}
