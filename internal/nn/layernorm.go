package nn

import (
	"errors"
	"fmt"
	"math"

	"rpol/internal/parallel"
	"rpol/internal/tensor"
)

// LayerNorm normalizes its input to zero mean and unit variance and applies
// a learned affine transform: y = γ·(x − μ)/σ + b. Unlike batch
// normalization it keeps no running statistics, so training remains a pure
// per-example function — the determinism RPoL's re-execution verification
// requires.
type LayerNorm struct {
	Gamma, Beta         tensor.Vector
	GradGamma, GradBeta tensor.Vector
	Eps                 float64
	Frozen              bool

	lastNorm tensor.Vector // (x − μ)/σ cache for backward
	lastStd  float64
	scratch  *parallel.Arena
}

var _ Layer = (*LayerNorm)(nil)

// NewLayerNorm returns a layer norm over vectors of length dim with γ = 1,
// b = 0.
func NewLayerNorm(dim int) (*LayerNorm, error) {
	if dim < 2 {
		return nil, errors.New("nn: layernorm needs dim ≥ 2")
	}
	ln := &LayerNorm{
		Gamma:     tensor.NewVector(dim),
		Beta:      tensor.NewVector(dim),
		GradGamma: tensor.NewVector(dim),
		GradBeta:  tensor.NewVector(dim),
		Eps:       1e-5,
	}
	ln.Gamma.Fill(1)
	return ln, nil
}

// Forward normalizes x and applies the affine transform.
func (l *LayerNorm) Forward(x tensor.Vector) (tensor.Vector, error) {
	if len(x) != len(l.Gamma) {
		return nil, fmt.Errorf("layernorm input %d, want %d: %w", len(x), len(l.Gamma), tensor.ErrShapeMismatch)
	}
	n := float64(len(x))
	var mean float64
	for _, v := range x {
		mean += v
	}
	mean /= n
	var variance float64
	for _, v := range x {
		d := v - mean
		variance += d * d
	}
	variance /= n
	std := math.Sqrt(variance + l.Eps)

	norm := tensor.Vector(l.scratch.Grab(len(x)))
	out := tensor.Vector(l.scratch.Grab(len(x)))
	for i, v := range x {
		norm[i] = (v - mean) / std
		out[i] = l.Gamma[i]*norm[i] + l.Beta[i]
	}
	l.lastNorm = norm
	l.lastStd = std
	return out, nil
}

// Backward computes parameter gradients and the input gradient using the
// standard layer-norm backward pass.
func (l *LayerNorm) Backward(grad tensor.Vector) (tensor.Vector, error) {
	if l.lastNorm == nil {
		return nil, errors.New("nn: layernorm backward before forward")
	}
	if len(grad) != len(l.Gamma) {
		return nil, fmt.Errorf("layernorm grad %d, want %d: %w", len(grad), len(l.Gamma), tensor.ErrShapeMismatch)
	}
	n := float64(len(grad))

	// dnorm_i = grad_i · γ_i
	dnorm := tensor.Vector(l.scratch.Grab(len(grad)))
	var sumDnorm, sumDnormNorm float64
	for i, g := range grad {
		if !l.Frozen {
			l.GradGamma[i] += g * l.lastNorm[i]
			l.GradBeta[i] += g
		}
		dnorm[i] = g * l.Gamma[i]
		sumDnorm += dnorm[i]
		sumDnormNorm += dnorm[i] * l.lastNorm[i]
	}
	in := tensor.Vector(l.scratch.Grab(len(grad)))
	for i := range in {
		in[i] = (dnorm[i] - sumDnorm/n - l.lastNorm[i]*sumDnormNorm/n) / l.lastStd
	}
	return in, nil
}

// Params returns γ and b, or nil when frozen.
func (l *LayerNorm) Params() []tensor.Vector {
	if l.Frozen {
		return nil
	}
	return []tensor.Vector{l.Gamma, l.Beta}
}

// Grads returns the accumulated gradients, or nil when frozen.
func (l *LayerNorm) Grads() []tensor.Vector {
	if l.Frozen {
		return nil
	}
	return []tensor.Vector{l.GradGamma, l.GradBeta}
}

// ZeroGrads clears the accumulated gradients.
func (l *LayerNorm) ZeroGrads() {
	l.GradGamma.Zero()
	l.GradBeta.Zero()
}

// InputDim returns the vector length.
func (l *LayerNorm) InputDim() int { return len(l.Gamma) }

// OutputDim returns the vector length.
func (l *LayerNorm) OutputDim() int { return len(l.Gamma) }

// Name returns "layernorm".
func (l *LayerNorm) Name() string { return "layernorm" }
