package nn

import (
	"errors"
	"fmt"

	"rpol/internal/tensor"
)

// Network is a sequential stack of layers trained with softmax
// cross-entropy. It exposes its trainable parameters as one flattened
// vector — the representation RPoL checkpoints, hashes, and LSH-digests.
type Network struct {
	Layers []Layer
}

// NewNetwork validates that consecutive layers connect and returns the
// stack.
func NewNetwork(layers ...Layer) (*Network, error) {
	if len(layers) == 0 {
		return nil, errors.New("nn: empty network")
	}
	for i := 1; i < len(layers); i++ {
		if layers[i-1].OutputDim() != layers[i].InputDim() {
			return nil, fmt.Errorf("layer %d (%s) out %d vs layer %d (%s) in %d: %w",
				i-1, layers[i-1].Name(), layers[i-1].OutputDim(),
				i, layers[i].Name(), layers[i].InputDim(), ErrNotConnected)
		}
	}
	return &Network{Layers: layers}, nil
}

// Forward runs x through every layer and returns the logits.
func (n *Network) Forward(x tensor.Vector) (tensor.Vector, error) {
	cur := x
	for i, l := range n.Layers {
		out, err := l.Forward(cur)
		if err != nil {
			return nil, fmt.Errorf("layer %d (%s): %w", i, l.Name(), err)
		}
		cur = out
	}
	return cur, nil
}

// Backward propagates the loss gradient through every layer in reverse,
// accumulating parameter gradients.
func (n *Network) Backward(grad tensor.Vector) error {
	cur := grad
	for i := len(n.Layers) - 1; i >= 0; i-- {
		out, err := n.Layers[i].Backward(cur)
		if err != nil {
			return fmt.Errorf("layer %d (%s): %w", i, n.Layers[i].Name(), err)
		}
		cur = out
	}
	return nil
}

// ZeroGrads clears accumulated gradients across all layers.
func (n *Network) ZeroGrads() {
	for _, l := range n.Layers {
		l.ZeroGrads()
	}
}

// Params returns the trainable parameter tensors of all layers, in order.
// The returned slices alias network storage.
func (n *Network) Params() []tensor.Vector {
	var out []tensor.Vector
	for _, l := range n.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// Grads returns the gradient tensors positionally matching Params.
func (n *Network) Grads() []tensor.Vector {
	var out []tensor.Vector
	for _, l := range n.Layers {
		out = append(out, l.Grads()...)
	}
	return out
}

// NumParams returns the total count of trainable parameters.
func (n *Network) NumParams() int {
	total := 0
	for _, p := range n.Params() {
		total += len(p)
	}
	return total
}

// ParamVector returns a copy of all trainable parameters flattened into one
// vector — the model-weight representation used for checkpoints,
// commitments, and distance measurement throughout the protocol.
func (n *Network) ParamVector() tensor.Vector {
	return n.AppendParams(make(tensor.Vector, 0, n.NumParams()))
}

// AppendParams appends the flattened trainable parameters to dst and returns
// the extended slice — the buffer-reusing form of ParamVector for callers
// that snapshot weights every step (verifier replay, distance checks).
func (n *Network) AppendParams(dst tensor.Vector) tensor.Vector {
	for _, p := range n.Params() {
		dst = append(dst, p...)
	}
	return dst
}

// SetParamVector loads a flattened parameter vector produced by
// ParamVector back into the network.
func (n *Network) SetParamVector(v tensor.Vector) error {
	if len(v) != n.NumParams() {
		return fmt.Errorf("param vector %d, want %d: %w", len(v), n.NumParams(), tensor.ErrShapeMismatch)
	}
	off := 0
	for _, p := range n.Params() {
		copy(p, v[off:off+len(p)])
		off += len(p)
	}
	return nil
}

// TrainBatch runs one optimization step over the batch (xs, labels) and
// returns the mean loss. Gradients are averaged over the batch. The update
// is fully deterministic given the inputs, which is the property RPoL's
// re-execution verification needs.
func (n *Network) TrainBatch(xs []tensor.Vector, labels []int, opt Optimizer) (float64, error) {
	if len(xs) == 0 || len(xs) != len(labels) {
		return 0, fmt.Errorf("batch %d inputs vs %d labels: %w", len(xs), len(labels), tensor.ErrShapeMismatch)
	}
	n.ZeroGrads()
	var total float64
	for i, x := range xs {
		logits, err := n.Forward(x)
		if err != nil {
			return 0, err
		}
		loss, grad, err := SoftmaxCrossEntropy(logits, labels[i])
		if err != nil {
			return 0, err
		}
		total += loss
		grad.Scale(1 / float64(len(xs)))
		if err := n.Backward(grad); err != nil {
			return 0, err
		}
	}
	if err := opt.Step(n.Params(), n.Grads()); err != nil {
		return 0, err
	}
	return total / float64(len(xs)), nil
}

// Predict returns the argmax class for input x.
func (n *Network) Predict(x tensor.Vector) (int, error) {
	logits, err := n.Forward(x)
	if err != nil {
		return 0, err
	}
	return Argmax(logits), nil
}

// Accuracy returns the fraction of (xs, labels) classified correctly.
func (n *Network) Accuracy(xs []tensor.Vector, labels []int) (float64, error) {
	if len(xs) == 0 || len(xs) != len(labels) {
		return 0, fmt.Errorf("eval %d inputs vs %d labels: %w", len(xs), len(labels), tensor.ErrShapeMismatch)
	}
	correct := 0
	for i, x := range xs {
		pred, err := n.Predict(x)
		if err != nil {
			return 0, err
		}
		if pred == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(xs)), nil
}
