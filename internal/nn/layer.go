// Package nn is a from-scratch neural-network training substrate: dense and
// convolutional layers, ReLU activations, residual blocks, softmax
// cross-entropy loss, and the four optimizers the paper evaluates (SGD, SGDM,
// RMSprop, Adam).
//
// It replaces the paper's PyTorch stack. RPoL treats a model as an opaque
// flattened weight vector advanced by a deterministic training step plus
// hardware noise (Eq. 2), so any trainer with reproducible per-step updates
// exercises the same protocol paths. Training here is single-threaded and
// bit-reproducible given (seed, data, schedule); nondeterministic "GPU"
// reproduction error is injected by internal/gpu, not by this package.
package nn

import (
	"errors"
	"fmt"

	"rpol/internal/parallel"
	"rpol/internal/tensor"
)

// Layer is one differentiable stage of a network. Forward caches whatever it
// needs for the subsequent Backward; layers are therefore not safe for
// concurrent use, matching the single-threaded training loop.
type Layer interface {
	// Forward computes the layer output for input x.
	Forward(x tensor.Vector) (tensor.Vector, error)
	// Backward consumes ∂L/∂output, accumulates parameter gradients, and
	// returns ∂L/∂input.
	Backward(grad tensor.Vector) (tensor.Vector, error)
	// Params returns slices aliasing the layer's trainable parameters.
	// Frozen layers return nil.
	Params() []tensor.Vector
	// Grads returns slices aliasing the accumulated parameter gradients,
	// positionally matching Params.
	Grads() []tensor.Vector
	// ZeroGrads clears the accumulated gradients.
	ZeroGrads()
	// InputDim and OutputDim describe the flattened I/O sizes.
	InputDim() int
	OutputDim() int
	// Name identifies the layer kind for diagnostics.
	Name() string
}

// ErrNotConnected is returned when stacked layers have incompatible
// dimensions.
var ErrNotConnected = errors.New("nn: layer dimensions not connected")

// Dense is a fully connected layer: y = W·x + b.
type Dense struct {
	W      *tensor.Matrix // out×in
	B      tensor.Vector  // out
	GradW  *tensor.Matrix
	GradB  tensor.Vector
	Frozen bool // frozen layers expose no params (used by AMLayer)

	lastIn  tensor.Vector
	scratch *parallel.Arena // optional transient-buffer arena; nil = plain make

	// Whole-batch path state (BatchLayer): reusable matrix headers over
	// arena-backed data, plus the cached batch input for backward.
	outB    tensor.Matrix
	inGradB tensor.Matrix
	lastInB *tensor.Matrix
}

var _ Layer = (*Dense)(nil)

// NewDense returns a dense layer with Xavier-initialized weights.
func NewDense(in, out int, rng *tensor.RNG) *Dense {
	return &Dense{
		W:     rng.XavierMatrix(out, in),
		B:     tensor.NewVector(out),
		GradW: tensor.NewMatrix(out, in),
		GradB: tensor.NewVector(out),
	}
}

// Forward computes W·x + b.
func (d *Dense) Forward(x tensor.Vector) (tensor.Vector, error) {
	y := tensor.Vector(d.scratch.Grab(d.W.Rows))
	if err := d.W.MulVecInto(y, x); err != nil {
		return nil, fmt.Errorf("dense forward: %w", err)
	}
	if err := y.AXPY(1, d.B); err != nil {
		return nil, fmt.Errorf("dense bias: %w", err)
	}
	d.lastIn = x
	return y, nil
}

// Backward accumulates ∂L/∂W += g·xᵀ and ∂L/∂b += g, returning Wᵀ·g.
func (d *Dense) Backward(grad tensor.Vector) (tensor.Vector, error) {
	if d.lastIn == nil {
		return nil, errors.New("nn: dense backward before forward")
	}
	if !d.Frozen {
		if err := d.GradW.AddOuter(1, grad, d.lastIn); err != nil {
			return nil, fmt.Errorf("dense gradW: %w", err)
		}
		if err := d.GradB.AXPY(1, grad); err != nil {
			return nil, fmt.Errorf("dense gradB: %w", err)
		}
	}
	in := tensor.Vector(d.scratch.Grab(d.W.Cols))
	if err := d.W.MulVecTInto(in, grad); err != nil {
		return nil, fmt.Errorf("dense backward: %w", err)
	}
	return in, nil
}

// Params returns the weight and bias storage, or nil when frozen.
func (d *Dense) Params() []tensor.Vector {
	if d.Frozen {
		return nil
	}
	return []tensor.Vector{d.W.Data, d.B}
}

// Grads returns the accumulated gradients, or nil when frozen.
func (d *Dense) Grads() []tensor.Vector {
	if d.Frozen {
		return nil
	}
	return []tensor.Vector{d.GradW.Data, d.GradB}
}

// ZeroGrads clears the accumulated gradients.
func (d *Dense) ZeroGrads() {
	d.GradW.Data.Zero()
	d.GradB.Zero()
}

// InputDim returns the expected input length.
func (d *Dense) InputDim() int { return d.W.Cols }

// OutputDim returns the output length.
func (d *Dense) OutputDim() int { return d.W.Rows }

// Name returns "dense".
func (d *Dense) Name() string { return "dense" }

// ReLU is the rectified linear activation, applied element-wise.
type ReLU struct {
	dim     int
	lastIn  tensor.Vector
	scratch *parallel.Arena

	// Whole-batch path state (BatchLayer).
	outB    tensor.Matrix
	gradB   tensor.Matrix
	lastInB *tensor.Matrix
}

var _ Layer = (*ReLU)(nil)

// NewReLU returns a ReLU over vectors of length dim.
func NewReLU(dim int) *ReLU { return &ReLU{dim: dim} }

// Forward returns max(0, x) element-wise.
func (r *ReLU) Forward(x tensor.Vector) (tensor.Vector, error) {
	if len(x) != r.dim {
		return nil, fmt.Errorf("relu input %d, want %d: %w", len(x), r.dim, tensor.ErrShapeMismatch)
	}
	out := tensor.Vector(r.scratch.Grab(len(x)))
	for i, v := range x {
		if v > 0 {
			out[i] = v
		}
	}
	r.lastIn = x
	return out, nil
}

// Backward masks the gradient by the activation pattern.
func (r *ReLU) Backward(grad tensor.Vector) (tensor.Vector, error) {
	if r.lastIn == nil {
		return nil, errors.New("nn: relu backward before forward")
	}
	if len(grad) != r.dim {
		return nil, fmt.Errorf("relu grad %d, want %d: %w", len(grad), r.dim, tensor.ErrShapeMismatch)
	}
	out := tensor.Vector(r.scratch.Grab(len(grad)))
	for i, v := range r.lastIn {
		if v > 0 {
			out[i] = grad[i]
		}
	}
	return out, nil
}

// Params returns nil; ReLU has no parameters.
func (r *ReLU) Params() []tensor.Vector { return nil }

// Grads returns nil; ReLU has no parameters.
func (r *ReLU) Grads() []tensor.Vector { return nil }

// ZeroGrads is a no-op.
func (r *ReLU) ZeroGrads() {}

// InputDim returns the vector length.
func (r *ReLU) InputDim() int { return r.dim }

// OutputDim returns the vector length.
func (r *ReLU) OutputDim() int { return r.dim }

// Name returns "relu".
func (r *ReLU) Name() string { return "relu" }

// Residual wraps an inner layer as y = x + inner(x). The inner layer must
// preserve dimensionality. The paper's AMLayer is a frozen residual block
// whose inner map is Lipschitz-bounded with c < 1, making the whole block an
// invertible 1-1 mapping (Sec. V-A).
type Residual struct {
	Inner Layer
}

var _ Layer = (*Residual)(nil)

// NewResidual wraps inner; inner's input and output dims must match.
func NewResidual(inner Layer) (*Residual, error) {
	if inner.InputDim() != inner.OutputDim() {
		return nil, fmt.Errorf("residual inner %d→%d: %w",
			inner.InputDim(), inner.OutputDim(), ErrNotConnected)
	}
	return &Residual{Inner: inner}, nil
}

// Forward computes x + inner(x).
func (r *Residual) Forward(x tensor.Vector) (tensor.Vector, error) {
	y, err := r.Inner.Forward(x)
	if err != nil {
		return nil, fmt.Errorf("residual forward: %w", err)
	}
	out, err := y.Add(x)
	if err != nil {
		return nil, fmt.Errorf("residual add: %w", err)
	}
	return out, nil
}

// Backward propagates grad through both the identity and the inner branch.
func (r *Residual) Backward(grad tensor.Vector) (tensor.Vector, error) {
	inner, err := r.Inner.Backward(grad)
	if err != nil {
		return nil, fmt.Errorf("residual backward: %w", err)
	}
	out, err := inner.Add(grad)
	if err != nil {
		return nil, fmt.Errorf("residual backward add: %w", err)
	}
	return out, nil
}

// Params delegates to the inner layer.
func (r *Residual) Params() []tensor.Vector { return r.Inner.Params() }

// Grads delegates to the inner layer.
func (r *Residual) Grads() []tensor.Vector { return r.Inner.Grads() }

// ZeroGrads delegates to the inner layer.
func (r *Residual) ZeroGrads() { r.Inner.ZeroGrads() }

// InputDim returns the wrapped dimensionality.
func (r *Residual) InputDim() int { return r.Inner.InputDim() }

// OutputDim returns the wrapped dimensionality.
func (r *Residual) OutputDim() int { return r.Inner.OutputDim() }

// Name returns "residual(inner)".
func (r *Residual) Name() string { return "residual(" + r.Inner.Name() + ")" }
