package nn

import (
	"math"
	"testing"

	"rpol/internal/tensor"
)

func TestLayerNormForwardNormalizes(t *testing.T) {
	ln, err := NewLayerNorm(4)
	if err != nil {
		t.Fatal(err)
	}
	y, err := ln.Forward(tensor.Vector{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	// With γ=1, b=0 the output has (near-)zero mean and unit variance.
	if math.Abs(y.Sum()) > 1e-9 {
		t.Errorf("output mean = %v", y.Sum()/4)
	}
	var variance float64
	for _, v := range y {
		variance += v * v
	}
	variance /= 4
	if math.Abs(variance-1) > 1e-3 {
		t.Errorf("output variance = %v", variance)
	}
}

func TestLayerNormAffine(t *testing.T) {
	ln, err := NewLayerNorm(3)
	if err != nil {
		t.Fatal(err)
	}
	ln.Gamma.Fill(2)
	ln.Beta.Fill(5)
	y, err := ln.Forward(tensor.Vector{-1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	// Symmetric input: norm = x/std; y = 2·norm + 5, so mean is exactly 5.
	if math.Abs(y.Sum()/3-5) > 1e-9 {
		t.Errorf("affine mean = %v, want 5", y.Sum()/3)
	}
}

func TestLayerNormGradCheck(t *testing.T) {
	rng := tensor.NewRNG(31)
	ln, err := NewLayerNorm(6)
	if err != nil {
		t.Fatal(err)
	}
	net, err := NewNetwork(NewDense(5, 6, rng), ln, NewReLU(6), NewDense(6, 3, rng))
	if err != nil {
		t.Fatal(err)
	}
	x := rng.NormalVector(5, 0, 1)
	checkGradients(t, net, x, 2)
}

func TestLayerNormValidation(t *testing.T) {
	if _, err := NewLayerNorm(1); err == nil {
		t.Error("dim 1 accepted")
	}
	ln, err := NewLayerNorm(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ln.Forward(tensor.NewVector(2)); err == nil {
		t.Error("wrong input size accepted")
	}
	if _, err := ln.Backward(tensor.NewVector(3)); err == nil {
		t.Error("backward before forward accepted")
	}
	if _, err := ln.Forward(tensor.NewVector(3)); err != nil {
		t.Fatal(err)
	}
	if _, err := ln.Backward(tensor.NewVector(2)); err == nil {
		t.Error("wrong grad size accepted")
	}
	if ln.Name() != "layernorm" || ln.InputDim() != 3 || ln.OutputDim() != 3 {
		t.Error("metadata wrong")
	}
}

func TestLayerNormFrozen(t *testing.T) {
	ln, err := NewLayerNorm(4)
	if err != nil {
		t.Fatal(err)
	}
	ln.Frozen = true
	if ln.Params() != nil || ln.Grads() != nil {
		t.Error("frozen layernorm exposes params")
	}
	if _, err := ln.Forward(tensor.Vector{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := ln.Backward(tensor.Vector{1, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	if ln.GradGamma.Norm2() != 0 || ln.GradBeta.Norm2() != 0 {
		t.Error("frozen layernorm accumulated gradients")
	}
}

func TestLayerNormTrainsInNetwork(t *testing.T) {
	rng := tensor.NewRNG(32)
	ln, err := NewLayerNorm(8)
	if err != nil {
		t.Fatal(err)
	}
	net, err := NewNetwork(NewDense(4, 8, rng), ln, NewReLU(8), NewDense(8, 2, rng))
	if err != nil {
		t.Fatal(err)
	}
	opt := &SGDM{LR: 0.05, Momentum: 0.9}
	xs := []tensor.Vector{rng.NormalVector(4, 0, 1), rng.NormalVector(4, 3, 1)}
	labels := []int{0, 1}
	first, err := net.TrainBatch(xs, labels, opt)
	if err != nil {
		t.Fatal(err)
	}
	var last float64
	for i := 0; i < 60; i++ {
		last, err = net.TrainBatch(xs, labels, opt)
		if err != nil {
			t.Fatal(err)
		}
	}
	if last >= first {
		t.Errorf("loss did not decrease through layernorm: %v → %v", first, last)
	}
}
