package nn

import (
	"errors"
	"math"
	"testing"

	"rpol/internal/dataset"
	"rpol/internal/tensor"
)

func tinyNet(t *testing.T, seed int64) *Network {
	t.Helper()
	rng := tensor.NewRNG(seed)
	net, err := NewNetwork(
		NewDense(8, 16, rng),
		NewReLU(16),
		NewDense(16, 4, rng),
	)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestNewNetworkValidation(t *testing.T) {
	rng := tensor.NewRNG(1)
	if _, err := NewNetwork(); err == nil {
		t.Error("want error for empty network")
	}
	if _, err := NewNetwork(NewDense(4, 8, rng), NewDense(9, 2, rng)); !errors.Is(err, ErrNotConnected) {
		t.Errorf("err = %v, want ErrNotConnected", err)
	}
}

func TestParamVectorRoundTrip(t *testing.T) {
	net := tinyNet(t, 2)
	v := net.ParamVector()
	if len(v) != net.NumParams() {
		t.Fatalf("vector %d vs NumParams %d", len(v), net.NumParams())
	}
	v2 := v.Clone()
	v2.Scale(2)
	if err := net.SetParamVector(v2); err != nil {
		t.Fatal(err)
	}
	got := net.ParamVector()
	if !got.Equal(v2, 0) {
		t.Error("SetParamVector did not round-trip")
	}
	if err := net.SetParamVector(tensor.NewVector(3)); !errors.Is(err, tensor.ErrShapeMismatch) {
		t.Errorf("err = %v, want shape mismatch", err)
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	ds, err := dataset.Generate(dataset.Config{
		Name: "t", NumClasses: 4, Dim: 8, Size: 240, ClusterStd: 0.3, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	net := tinyNet(t, 3)
	opt := &SGDM{LR: 0.05, Momentum: 0.9}

	xs := make([]tensor.Vector, ds.Len())
	labels := make([]int, ds.Len())
	for i, ex := range ds.Examples {
		xs[i] = ex.Features
		labels[i] = ex.Label
	}

	first, err := net.TrainBatch(xs[:32], labels[:32], opt)
	if err != nil {
		t.Fatal(err)
	}
	var last float64
	for epoch := 0; epoch < 30; epoch++ {
		for i := 0; i+32 <= len(xs); i += 32 {
			last, err = net.TrainBatch(xs[i:i+32], labels[i:i+32], opt)
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	if last >= first {
		t.Errorf("loss did not decrease: first %v, last %v", first, last)
	}
	acc, err := net.Accuracy(xs, labels)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.6 {
		t.Errorf("training accuracy %v too low for separable clusters", acc)
	}
}

func TestTrainBatchDeterministic(t *testing.T) {
	run := func() tensor.Vector {
		net := tinyNet(t, 7)
		opt := &SGDM{LR: 0.1, Momentum: 0.9}
		rng := tensor.NewRNG(11)
		xs := []tensor.Vector{rng.NormalVector(8, 0, 1), rng.NormalVector(8, 0, 1)}
		labels := []int{1, 3}
		for i := 0; i < 5; i++ {
			if _, err := net.TrainBatch(xs, labels, opt); err != nil {
				t.Fatal(err)
			}
		}
		return net.ParamVector()
	}
	a, b := run(), run()
	if !a.Equal(b, 0) {
		t.Error("training must be bit-reproducible for identical inputs")
	}
}

func TestTrainBatchValidation(t *testing.T) {
	net := tinyNet(t, 8)
	opt := &SGD{LR: 0.1}
	if _, err := net.TrainBatch(nil, nil, opt); err == nil {
		t.Error("want error for empty batch")
	}
	rng := tensor.NewRNG(1)
	if _, err := net.TrainBatch([]tensor.Vector{rng.NormalVector(8, 0, 1)}, []int{0, 1}, opt); err == nil {
		t.Error("want error for mismatched labels")
	}
}

func TestAccuracyValidation(t *testing.T) {
	net := tinyNet(t, 9)
	if _, err := net.Accuracy(nil, nil); err == nil {
		t.Error("want error for empty eval set")
	}
}

func TestSoftmaxCrossEntropy(t *testing.T) {
	logits := tensor.Vector{1, 2, 3}
	loss, grad, err := SoftmaxCrossEntropy(logits, 2)
	if err != nil {
		t.Fatal(err)
	}
	probs := Softmax(logits)
	if math.Abs(loss+math.Log(probs[2])) > 1e-9 {
		t.Errorf("loss = %v, want %v", loss, -math.Log(probs[2]))
	}
	// Gradient sums to zero: softmax probs sum to 1, minus one-hot.
	if math.Abs(grad.Sum()) > 1e-9 {
		t.Errorf("grad sum = %v", grad.Sum())
	}
	if _, _, err := SoftmaxCrossEntropy(logits, 5); !errors.Is(err, ErrBadLabel) {
		t.Errorf("err = %v, want ErrBadLabel", err)
	}
	if _, _, err := SoftmaxCrossEntropy(logits, -1); !errors.Is(err, ErrBadLabel) {
		t.Errorf("err = %v, want ErrBadLabel", err)
	}
}

func TestSoftmaxStability(t *testing.T) {
	probs := Softmax(tensor.Vector{1000, 1001, 1002})
	if !probs.IsFinite() {
		t.Fatal("softmax overflowed")
	}
	if math.Abs(probs.Sum()-1) > 1e-9 {
		t.Errorf("softmax sum = %v", probs.Sum())
	}
	if Softmax(nil) != nil {
		t.Error("softmax of empty must be nil")
	}
}

func TestArgmax(t *testing.T) {
	if got := Argmax(tensor.Vector{1, 5, 3}); got != 1 {
		t.Errorf("Argmax = %d, want 1", got)
	}
	if got := Argmax(nil); got != -1 {
		t.Errorf("Argmax(nil) = %d, want -1", got)
	}
	if got := Argmax(tensor.Vector{7}); got != 0 {
		t.Errorf("Argmax single = %d, want 0", got)
	}
}

func TestFrozenLayerNotInParamVector(t *testing.T) {
	rng := tensor.NewRNG(12)
	frozen := NewDense(8, 8, rng)
	frozen.Frozen = true
	res, err := NewResidual(frozen)
	if err != nil {
		t.Fatal(err)
	}
	net, err := NewNetwork(res, NewDense(8, 2, rng))
	if err != nil {
		t.Fatal(err)
	}
	want := 8*2 + 2 // only the trailing dense layer
	if net.NumParams() != want {
		t.Errorf("NumParams = %d, want %d", net.NumParams(), want)
	}
}
