package nn

import (
	"errors"
	"fmt"

	"rpol/internal/parallel"
	"rpol/internal/tensor"
)

// BatchLayer is the whole-batch form of Layer: one call pushes every example
// (one per matrix row) through the layer via the batched GEMM kernels in
// internal/tensor, instead of one matvec per example.
//
// Determinism contract: for any pool (including nil), ForwardBatch and
// BackwardBatch produce bit-identical results to calling Forward/Backward on
// each row in ascending order. The kernels guarantee this per element (each
// output is a single left-to-right accumulation chain in the serial index
// order), and the layer-level reductions below (bias gradient, residual add)
// are explicit ascending-index loops.
//
// Returned matrices alias layer-owned scratch headers backed by the layer's
// arena; they are valid until the arena is reset. Like Layer, a BatchLayer
// caches forward state for the subsequent backward and is therefore not safe
// for concurrent use — the pool parallelism lives inside the kernels.
type BatchLayer interface {
	Layer
	// ForwardBatch computes the layer output for every row of x.
	ForwardBatch(p *parallel.Pool, x *tensor.Matrix) (*tensor.Matrix, error)
	// BackwardBatch consumes per-row ∂L/∂output, accumulates parameter
	// gradients (summed over the batch in ascending row order), and returns
	// per-row ∂L/∂input.
	BackwardBatch(p *parallel.Pool, grad *tensor.Matrix) (*tensor.Matrix, error)
}

// batchCapable reports whether a layer can run the whole-batch path. It is
// not a plain type assertion because Residual structurally implements
// BatchLayer while only supporting it when its inner layer does.
func batchCapable(l Layer) bool {
	switch v := l.(type) {
	case *Residual:
		return batchCapable(v.Inner)
	case BatchLayer:
		return true
	}
	return false
}

// ForwardBatch computes W·x + b for every row of x in one GEMM call. The
// pack scratch (arena-recycled) unlocks the SIMD kernel where the host has
// one; the result is bit-identical with or without it.
func (d *Dense) ForwardBatch(p *parallel.Pool, x *tensor.Matrix) (*tensor.Matrix, error) {
	d.outB = tensor.Matrix{Rows: x.Rows, Cols: d.W.Rows, Data: tensor.Vector(d.scratch.Grab(x.Rows * d.W.Rows))}
	pack := tensor.Vector(d.scratch.Grab(tensor.MulMatPackSize(x.Rows, x.Cols)))
	if err := d.W.MulMatPoolScratch(p, &d.outB, x, pack); err != nil {
		return nil, fmt.Errorf("dense forward: %w", err)
	}
	for r := 0; r < d.outB.Rows; r++ {
		if err := d.outB.Row(r).AXPY(1, d.B); err != nil {
			return nil, fmt.Errorf("dense bias: %w", err)
		}
	}
	d.lastInB = x
	return &d.outB, nil
}

// BackwardBatch accumulates ∂L/∂W += Σ_b g_b·x_bᵀ and ∂L/∂b += Σ_b g_b in
// ascending batch order, returning per-row Wᵀ·g.
func (d *Dense) BackwardBatch(p *parallel.Pool, grad *tensor.Matrix) (*tensor.Matrix, error) {
	if err := d.backwardBatchParams(p, grad); err != nil {
		return nil, err
	}
	d.inGradB = tensor.Matrix{Rows: grad.Rows, Cols: d.W.Cols, Data: tensor.Vector(d.scratch.Grab(grad.Rows * d.W.Cols))}
	if err := d.W.MulMatTPool(p, &d.inGradB, grad); err != nil {
		return nil, fmt.Errorf("dense backward: %w", err)
	}
	return &d.inGradB, nil
}

// BackwardBatchNoInput is BackwardBatch without the Wᵀ·g input-gradient
// GEMM. The trainer calls it on the first layer of the stack, where the
// input gradient has no consumer — the skipped product is discarded in the
// per-example path too, so parameter bits are unchanged.
func (d *Dense) BackwardBatchNoInput(p *parallel.Pool, grad *tensor.Matrix) error {
	return d.backwardBatchParams(p, grad)
}

func (d *Dense) backwardBatchParams(p *parallel.Pool, grad *tensor.Matrix) error {
	if d.lastInB == nil {
		return errors.New("nn: dense batch backward before forward")
	}
	if !d.Frozen {
		if err := d.GradW.AddOuterBatchPool(p, 1, grad, d.lastInB); err != nil {
			return fmt.Errorf("dense gradW: %w", err)
		}
		for r := 0; r < grad.Rows; r++ {
			if err := d.GradB.AXPY(1, grad.Row(r)); err != nil {
				return fmt.Errorf("dense gradB: %w", err)
			}
		}
	}
	return nil
}

// ForwardBatch returns max(0, x) element-wise over the whole batch.
func (r *ReLU) ForwardBatch(_ *parallel.Pool, x *tensor.Matrix) (*tensor.Matrix, error) {
	if x.Cols != r.dim {
		return nil, fmt.Errorf("relu input %d, want %d: %w", x.Cols, r.dim, tensor.ErrShapeMismatch)
	}
	r.outB = tensor.Matrix{Rows: x.Rows, Cols: x.Cols, Data: tensor.Vector(r.scratch.Grab(x.Rows * x.Cols))}
	out := r.outB.Data
	for i, v := range x.Data {
		if v > 0 {
			out[i] = v
		}
	}
	r.lastInB = x
	return &r.outB, nil
}

// BackwardBatch masks the batch gradient by the activation pattern. The mask
// is written to a private scratch matrix, not in place: a residual wrapper
// needs the incoming gradient intact for its identity branch, exactly like
// the per-example Backward.
func (r *ReLU) BackwardBatch(_ *parallel.Pool, grad *tensor.Matrix) (*tensor.Matrix, error) {
	if r.lastInB == nil {
		return nil, errors.New("nn: relu batch backward before forward")
	}
	if grad.Cols != r.dim || grad.Rows != r.lastInB.Rows {
		return nil, fmt.Errorf("relu grad %dx%d, want %dx%d: %w",
			grad.Rows, grad.Cols, r.lastInB.Rows, r.dim, tensor.ErrShapeMismatch)
	}
	r.gradB = tensor.Matrix{Rows: grad.Rows, Cols: grad.Cols, Data: tensor.Vector(r.scratch.Grab(grad.Rows * grad.Cols))}
	out := r.gradB.Data
	g := grad.Data
	for i, v := range r.lastInB.Data {
		if v > 0 {
			out[i] = g[i]
		}
	}
	return &r.gradB, nil
}

// ForwardBatch computes x + inner(x) row-wise. The inner layer must itself
// be batch-capable (batchCapable checks this before the path is selected).
func (r *Residual) ForwardBatch(p *parallel.Pool, x *tensor.Matrix) (*tensor.Matrix, error) {
	bl, ok := r.Inner.(BatchLayer)
	if !ok {
		return nil, fmt.Errorf("nn: residual inner layer %s has no batch path", r.Inner.Name())
	}
	y, err := bl.ForwardBatch(p, x)
	if err != nil {
		return nil, fmt.Errorf("residual forward: %w", err)
	}
	if y.Rows != x.Rows || y.Cols != x.Cols {
		return nil, fmt.Errorf("residual inner %dx%d vs input %dx%d: %w",
			y.Rows, y.Cols, x.Rows, x.Cols, tensor.ErrShapeMismatch)
	}
	for i, v := range x.Data {
		y.Data[i] += v
	}
	return y, nil
}

// BackwardBatch propagates grad through both the identity and the inner
// branch, summing in place on the inner result (same operand order as the
// per-example Backward).
func (r *Residual) BackwardBatch(p *parallel.Pool, grad *tensor.Matrix) (*tensor.Matrix, error) {
	bl, ok := r.Inner.(BatchLayer)
	if !ok {
		return nil, fmt.Errorf("nn: residual inner layer %s has no batch path", r.Inner.Name())
	}
	ig, err := bl.BackwardBatch(p, grad)
	if err != nil {
		return nil, fmt.Errorf("residual backward: %w", err)
	}
	if ig.Rows != grad.Rows || ig.Cols != grad.Cols {
		return nil, fmt.Errorf("residual inner grad %dx%d vs grad %dx%d: %w",
			ig.Rows, ig.Cols, grad.Rows, grad.Cols, tensor.ErrShapeMismatch)
	}
	for i, v := range grad.Data {
		ig.Data[i] += v
	}
	return ig, nil
}
