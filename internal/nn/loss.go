package nn

import (
	"errors"
	"fmt"
	"math"

	"rpol/internal/tensor"
)

// ErrBadLabel is returned when a class label is outside the logits range.
var ErrBadLabel = errors.New("nn: label out of range")

// SoftmaxCrossEntropy computes the cross-entropy loss of logits against the
// true class label, and the gradient ∂L/∂logits. It uses the max-shift trick
// for numerical stability.
func SoftmaxCrossEntropy(logits tensor.Vector, label int) (loss float64, grad tensor.Vector, err error) {
	grad = make(tensor.Vector, len(logits))
	loss, err = SoftmaxCrossEntropyInto(grad, logits, label)
	if err != nil {
		return 0, nil, err
	}
	return loss, grad, nil
}

// SoftmaxCrossEntropyInto is SoftmaxCrossEntropy writing the gradient into
// grad instead of allocating. grad may alias logits (the batched trainer
// computes the loss gradient in place over the logits buffer); each element
// is read before it is overwritten. The arithmetic — max shift, ascending-
// index exp sum, normalize, label subtraction — is term-for-term identical
// to the allocating form, so the two produce the same float bits.
func SoftmaxCrossEntropyInto(grad, logits tensor.Vector, label int) (float64, error) {
	if label < 0 || label >= len(logits) {
		return 0, fmt.Errorf("label %d of %d logits: %w", label, len(logits), ErrBadLabel)
	}
	if len(grad) != len(logits) {
		return 0, fmt.Errorf("grad %d for %d logits: %w", len(grad), len(logits), tensor.ErrShapeMismatch)
	}
	maxv := logits[0]
	for _, v := range logits[1:] {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	for i, v := range logits {
		e := math.Exp(v - maxv)
		grad[i] = e
		sum += e
	}
	for i, e := range grad {
		grad[i] = e / sum
	}
	loss := -math.Log(grad[label] + 1e-300)
	grad[label] -= 1
	return loss, nil
}

// Softmax returns the softmax probabilities of logits.
func Softmax(logits tensor.Vector) tensor.Vector {
	if len(logits) == 0 {
		return nil
	}
	maxv := logits[0]
	for _, v := range logits[1:] {
		if v > maxv {
			maxv = v
		}
	}
	out := make(tensor.Vector, len(logits))
	var sum float64
	for i, v := range logits {
		e := math.Exp(v - maxv)
		out[i] = e
		sum += e
	}
	out.Scale(1 / sum)
	return out
}

// Argmax returns the index of the largest element, or -1 for an empty
// vector.
func Argmax(v tensor.Vector) int {
	if len(v) == 0 {
		return -1
	}
	best := 0
	for i, x := range v[1:] {
		if x > v[best] {
			best = i + 1
		}
	}
	return best
}
