package nn

import (
	"fmt"

	"rpol/internal/parallel"
	"rpol/internal/tensor"
)

// maxBatchChunks bounds how many fixed chunks a batch is split into. Chunk
// boundaries depend only on the batch size and this constant — NEVER on the
// worker count — so the gradient merge order, and therefore every float bit
// of the update, is identical whether the chunks ran on 1 or 16 goroutines.
const maxBatchChunks = 16

// BatchTrainer runs Network.TrainBatch's per-example forward/backward work
// through the parallel runtime. Networks whose layers all support the
// whole-batch path (dense stacks: Dense, ReLU, Residual) take the GEMM fast
// path: ONE shared-parameter replica pushes the entire batch through the
// batched kernels in internal/tensor, whose internal row-chunking composes
// with the pool. Other networks (convolutional) fall back to the chunked
// path: the batch is split into fixed chunks, each chunk is processed by a
// private replica network (shared weights, private gradients and caches,
// arena-backed scratch), and per-chunk gradients and losses are merged in
// chunk-index order before the single optimizer step on the source network.
//
// Determinism: results are bit-identical for any pool size, including a nil
// (serial) pool, because chunking and merge order are fixed. On the GEMM
// path they are additionally bit-identical to the plain serial
// Network.TrainBatch at ANY batch size: every kernel output element is one
// left-to-right accumulation chain in the serial per-example index order,
// and the loss/bias reductions are explicit ascending-batch loops. The
// chunked fallback may differ from serial in low-order float bits on layers
// that accumulate several gradient terms per parameter per example (Conv2D):
// the serial loop folds those terms into the running cross-example total,
// while the chunked merge folds per-chunk subtotals. Callers choose one
// semantics and stay with it (rpol gates on Workers == 0 for the legacy
// path).
//
// The trainer snapshots the network's layer graph and parameter layout at
// construction; mutate the architecture afterwards and the trainer is stale.
// Not safe for concurrent use.
type BatchTrainer struct {
	net    *Network
	pool   *parallel.Pool
	params []tensor.Vector
	grads  []tensor.Vector

	reps      []*Network
	repGrads  [][]tensor.Vector
	arenas    []*parallel.Arena
	chunkLoss []float64
	chunkErr  []error

	// GEMM fast path (nil batchLayers = chunked fallback): one
	// shared-parameter replica, batched kernels, arena reset per batch.
	batchRep    *Network
	batchLayers []BatchLayer
	batchGrads  []tensor.Vector
	batchArena  *parallel.Arena
	xb          tensor.Matrix
}

// NewBatchTrainer returns a trainer for net over pool. A nil pool is valid
// and runs chunks serially — same bits, no concurrency. Errors if any layer
// does not support replication.
func NewBatchTrainer(net *Network, pool *parallel.Pool) (*BatchTrainer, error) {
	for i, l := range net.Layers {
		if _, ok := l.(Replicable); !ok {
			return nil, fmt.Errorf("nn: layer %d (%s) does not support replication", i, l.Name())
		}
	}
	bt := &BatchTrainer{
		net:    net,
		pool:   pool,
		params: net.Params(),
		grads:  net.Grads(),
	}
	allBatch := true
	for _, l := range net.Layers {
		if !batchCapable(l) {
			allBatch = false
			break
		}
	}
	if allBatch {
		rep, err := net.Replicate(true)
		if err != nil {
			return nil, err
		}
		arena := parallel.NewArena(0)
		rep.setScratch(arena)
		layers := make([]BatchLayer, len(rep.Layers))
		for i, l := range rep.Layers {
			layers[i] = l.(BatchLayer)
		}
		bt.batchRep = rep
		bt.batchLayers = layers
		bt.batchGrads = rep.Grads()
		bt.batchArena = arena
	}
	return bt, nil
}

// ensureReplicas grows the replica set to at least chunks entries.
func (bt *BatchTrainer) ensureReplicas(chunks int) error {
	for len(bt.reps) < chunks {
		rep, err := bt.net.Replicate(true)
		if err != nil {
			return err
		}
		arena := parallel.NewArena(0)
		rep.setScratch(arena)
		bt.reps = append(bt.reps, rep)
		bt.repGrads = append(bt.repGrads, rep.Grads())
		bt.arenas = append(bt.arenas, arena)
	}
	if cap(bt.chunkLoss) < chunks {
		bt.chunkLoss = make([]float64, chunks)
		bt.chunkErr = make([]error, chunks)
	}
	bt.chunkLoss = bt.chunkLoss[:chunks]
	bt.chunkErr = bt.chunkErr[:chunks]
	return nil
}

// TrainBatch runs one optimization step over (xs, labels) and returns the
// mean loss, exactly like Network.TrainBatch but with the per-example work
// spread across the pool.
func (bt *BatchTrainer) TrainBatch(xs []tensor.Vector, labels []int, opt Optimizer) (float64, error) {
	b := len(xs)
	if b == 0 || b != len(labels) {
		return 0, fmt.Errorf("batch %d inputs vs %d labels: %w", b, len(labels), tensor.ErrShapeMismatch)
	}
	if bt.batchLayers != nil {
		return bt.trainBatchGEMM(xs, labels, opt)
	}
	grain := (b + maxBatchChunks - 1) / maxBatchChunks
	chunks := parallel.NumChunks(b, grain)
	if err := bt.ensureReplicas(chunks); err != nil {
		return 0, err
	}
	bt.net.ZeroGrads()
	invB := 1 / float64(b)
	bt.pool.ForChunks(b, grain, func(c, lo, hi int) {
		rep, arena := bt.reps[c], bt.arenas[c]
		rep.ZeroGrads()
		bt.chunkErr[c] = nil
		var sum float64
		for i := lo; i < hi; i++ {
			logits, err := rep.Forward(xs[i])
			if err != nil {
				bt.chunkErr[c] = err
				return
			}
			loss, grad, err := SoftmaxCrossEntropy(logits, labels[i])
			if err != nil {
				bt.chunkErr[c] = err
				return
			}
			sum += loss
			grad.Scale(invB)
			if err := rep.Backward(grad); err != nil {
				bt.chunkErr[c] = err
				return
			}
			// All forward caches and intermediates for this example are dead
			// once its backward completed; recycle them.
			arena.Reset()
		}
		bt.chunkLoss[c] = sum
	})
	// Ordered reduction: chunk 0, 1, 2, … regardless of which goroutine
	// finished first. This is what pins the float bits.
	var total float64
	for c := 0; c < chunks; c++ {
		if err := bt.chunkErr[c]; err != nil {
			return 0, err
		}
		total += bt.chunkLoss[c]
		for j, g := range bt.repGrads[c] {
			if err := bt.grads[j].AXPY(1, g); err != nil {
				return 0, err
			}
		}
	}
	if err := opt.Step(bt.params, bt.grads); err != nil {
		return 0, err
	}
	return total / float64(b), nil
}

// trainBatchGEMM is the whole-batch fast path: pack the batch into one
// matrix, run each layer's batched kernel once, compute the loss gradient in
// place over the logits, run the batched backward, step. Allocation-free at
// steady state (arena scratch, reusable matrix headers); bit-identical to
// the serial per-example Network.TrainBatch for any pool size.
func (bt *BatchTrainer) trainBatchGEMM(xs []tensor.Vector, labels []int, opt Optimizer) (float64, error) {
	b := len(xs)
	in := bt.net.Layers[0].InputDim()
	bt.batchArena.Reset()
	bt.xb = tensor.Matrix{Rows: b, Cols: in, Data: tensor.Vector(bt.batchArena.Grab(b * in))}
	for i, x := range xs {
		if len(x) != in {
			return 0, fmt.Errorf("batch example %d: input %d, want %d: %w", i, len(x), in, tensor.ErrShapeMismatch)
		}
		copy(bt.xb.Row(i), x)
	}
	cur := &bt.xb
	var err error
	for i, l := range bt.batchLayers {
		if cur, err = l.ForwardBatch(bt.pool, cur); err != nil {
			return 0, fmt.Errorf("layer %d (%s): %w", i, bt.batchRep.Layers[i].Name(), err)
		}
	}
	// Loss gradient in place over the logits, scaled to the batch mean, in
	// ascending batch order — the exact serial reduction.
	invB := 1 / float64(b)
	var total float64
	for r := 0; r < b; r++ {
		row := cur.Row(r)
		loss, err := SoftmaxCrossEntropyInto(row, row, labels[r])
		if err != nil {
			return 0, err
		}
		total += loss
		row.Scale(invB)
	}
	bt.batchRep.ZeroGrads()
	for i := len(bt.batchLayers) - 1; i > 0; i-- {
		if cur, err = bt.batchLayers[i].BackwardBatch(bt.pool, cur); err != nil {
			return 0, fmt.Errorf("layer %d (%s): %w", i, bt.batchRep.Layers[i].Name(), err)
		}
	}
	// The first layer's input gradient has no consumer; skip its GEMM when
	// the layer supports it (pure wall-clock win, parameter bits unchanged).
	if ni, ok := bt.batchLayers[0].(interface {
		BackwardBatchNoInput(p *parallel.Pool, grad *tensor.Matrix) error
	}); ok {
		if err = ni.BackwardBatchNoInput(bt.pool, cur); err != nil {
			return 0, fmt.Errorf("layer 0 (%s): %w", bt.batchRep.Layers[0].Name(), err)
		}
	} else if _, err = bt.batchLayers[0].BackwardBatch(bt.pool, cur); err != nil {
		return 0, fmt.Errorf("layer 0 (%s): %w", bt.batchRep.Layers[0].Name(), err)
	}
	if err := opt.Step(bt.params, bt.batchGrads); err != nil {
		return 0, err
	}
	return total / float64(b), nil
}
