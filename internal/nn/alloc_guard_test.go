package nn

import (
	"testing"

	"rpol/internal/parallel"
	"rpol/internal/tensor"
)

// TestTrainStepSteadyStateAllocFree pins the whole-batch GEMM path at zero
// steady-state allocations: after warmup (arena slabs grown, optimizer state
// built) a training step must not touch the heap. An alloc regression on the
// hot path then fails here in CI rather than surfacing later as a mystery in
// a benchmark re-record.
//
// The guard runs the serial (nil pool) trainer: worker goroutine spawning in
// parallel.Pool allocates by design, and the kernels take the direct call
// path at Workers() <= 1.
func TestTrainStepSteadyStateAllocFree(t *testing.T) {
	rng := tensor.NewRNG(21)
	net, err := NewNetwork(
		NewDense(64, 96, rng), NewReLU(96), NewDense(96, 10, rng),
	)
	if err != nil {
		t.Fatal(err)
	}
	bt, err := NewBatchTrainer(net, nil)
	if err != nil {
		t.Fatal(err)
	}
	if bt.batchLayers == nil {
		t.Fatal("dense stack did not select the GEMM path")
	}
	xs, labels := batchData(8, 64, 22)
	opt := &SGDM{LR: 0.01, Momentum: 0.9}
	for i := 0; i < 3; i++ {
		if _, err := bt.TrainBatch(xs, labels, opt); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := bt.TrainBatch(xs, labels, opt); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("GEMM TrainBatch allocates %.0f per step after warmup, want 0", allocs)
	}
}

// TestTrainStepPooledSteadyStateAllocs bounds the pooled trainer: beyond the
// per-call goroutine fan-out in parallel.Pool (a handful of allocations per
// kernel launch, independent of model and batch size), nothing on the path
// may allocate.
func TestTrainStepPooledSteadyStateAllocs(t *testing.T) {
	rng := tensor.NewRNG(23)
	net, err := NewNetwork(
		NewDense(64, 96, rng), NewReLU(96), NewDense(96, 10, rng),
	)
	if err != nil {
		t.Fatal(err)
	}
	bt, err := NewBatchTrainer(net, parallel.New(4))
	if err != nil {
		t.Fatal(err)
	}
	xs, labels := batchData(8, 64, 24)
	opt := &SGDM{LR: 0.01, Momentum: 0.9}
	for i := 0; i < 3; i++ {
		if _, err := bt.TrainBatch(xs, labels, opt); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := bt.TrainBatch(xs, labels, opt); err != nil {
			t.Fatal(err)
		}
	})
	// 6 pooled kernel launches per step (2 dense layers × 3 kernels), each
	// spawning at most 4 workers plus closure/waitgroup bookkeeping.
	const maxPooledAllocs = 6 * 8
	if allocs > maxPooledAllocs {
		t.Errorf("pooled GEMM TrainBatch allocates %.0f per step after warmup, want <= %d",
			allocs, maxPooledAllocs)
	}
}
