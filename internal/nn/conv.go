package nn

import (
	"errors"
	"fmt"
	"math"

	"rpol/internal/parallel"
	"rpol/internal/tensor"
)

// Conv2D is a stride-1 2-D convolution over a flattened (channels, height,
// width) input layout. It is the building block for the paper's
// convolutional AMLayer (3→64 channels, 3×3 kernel, padding 1, Sec. VII-B)
// and for the small convolutional proxy models in internal/modelzoo.
type Conv2D struct {
	InC, InH, InW int
	OutC          int
	K             int // square kernel size
	Pad           int
	// W is laid out [outC][inC][K][K]; B has one bias per output channel.
	W, B         tensor.Vector
	GradW, GradB tensor.Vector
	Frozen       bool

	lastIn  tensor.Vector
	scratch *parallel.Arena
}

var _ Layer = (*Conv2D)(nil)

// NewConv2D returns a stride-1 convolution with Xavier-initialized weights.
func NewConv2D(inC, inH, inW, outC, k, pad int, rng *tensor.RNG) (*Conv2D, error) {
	if inC < 1 || inH < 1 || inW < 1 || outC < 1 || k < 1 || pad < 0 {
		return nil, errors.New("nn: invalid conv2d geometry")
	}
	if inH+2*pad < k || inW+2*pad < k {
		return nil, errors.New("nn: conv2d kernel larger than padded input")
	}
	fanIn := inC * k * k
	fanOut := outC * k * k
	limit := math.Sqrt(6 / float64(fanIn+fanOut))
	c := &Conv2D{
		InC: inC, InH: inH, InW: inW,
		OutC: outC, K: k, Pad: pad,
		W:     rng.UniformVector(outC*fanIn, -limit, limit),
		B:     tensor.NewVector(outC),
		GradW: tensor.NewVector(outC * fanIn),
		GradB: tensor.NewVector(outC),
	}
	return c, nil
}

// outH and outW are the spatial output dims for stride-1 convolution.
func (c *Conv2D) outH() int { return c.InH + 2*c.Pad - c.K + 1 }
func (c *Conv2D) outW() int { return c.InW + 2*c.Pad - c.K + 1 }

// InputDim returns inC·inH·inW.
func (c *Conv2D) InputDim() int { return c.InC * c.InH * c.InW }

// OutputDim returns outC·outH·outW.
func (c *Conv2D) OutputDim() int { return c.OutC * c.outH() * c.outW() }

// weight returns w[oc][ic][ki][kj].
func (c *Conv2D) weight(oc, ic, ki, kj int) float64 {
	return c.W[((oc*c.InC+ic)*c.K+ki)*c.K+kj]
}

func (c *Conv2D) gradWAt(oc, ic, ki, kj int) *float64 {
	return &c.GradW[((oc*c.InC+ic)*c.K+ki)*c.K+kj]
}

// Forward computes the stride-1 convolution with zero padding.
func (c *Conv2D) Forward(x tensor.Vector) (tensor.Vector, error) {
	if len(x) != c.InputDim() {
		return nil, fmt.Errorf("conv2d input %d, want %d: %w", len(x), c.InputDim(), tensor.ErrShapeMismatch)
	}
	oh, ow := c.outH(), c.outW()
	out := tensor.Vector(c.scratch.Grab(c.OutC * oh * ow))
	for oc := 0; oc < c.OutC; oc++ {
		bias := c.B[oc]
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				s := bias
				for ic := 0; ic < c.InC; ic++ {
					for ki := 0; ki < c.K; ki++ {
						iy := oy + ki - c.Pad
						if iy < 0 || iy >= c.InH {
							continue
						}
						for kj := 0; kj < c.K; kj++ {
							ix := ox + kj - c.Pad
							if ix < 0 || ix >= c.InW {
								continue
							}
							s += c.weight(oc, ic, ki, kj) * x[(ic*c.InH+iy)*c.InW+ix]
						}
					}
				}
				out[(oc*oh+oy)*ow+ox] = s
			}
		}
	}
	c.lastIn = x
	return out, nil
}

// Backward accumulates weight/bias gradients and returns the input gradient.
func (c *Conv2D) Backward(grad tensor.Vector) (tensor.Vector, error) {
	if c.lastIn == nil {
		return nil, errors.New("nn: conv2d backward before forward")
	}
	if len(grad) != c.OutputDim() {
		return nil, fmt.Errorf("conv2d grad %d, want %d: %w", len(grad), c.OutputDim(), tensor.ErrShapeMismatch)
	}
	oh, ow := c.outH(), c.outW()
	gin := tensor.Vector(c.scratch.Grab(c.InputDim()))
	for oc := 0; oc < c.OutC; oc++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				g := grad[(oc*oh+oy)*ow+ox]
				if g == 0 {
					continue
				}
				if !c.Frozen {
					c.GradB[oc] += g
				}
				for ic := 0; ic < c.InC; ic++ {
					for ki := 0; ki < c.K; ki++ {
						iy := oy + ki - c.Pad
						if iy < 0 || iy >= c.InH {
							continue
						}
						for kj := 0; kj < c.K; kj++ {
							ix := ox + kj - c.Pad
							if ix < 0 || ix >= c.InW {
								continue
							}
							in := c.lastIn[(ic*c.InH+iy)*c.InW+ix]
							if !c.Frozen {
								*c.gradWAt(oc, ic, ki, kj) += g * in
							}
							gin[(ic*c.InH+iy)*c.InW+ix] += g * c.weight(oc, ic, ki, kj)
						}
					}
				}
			}
		}
	}
	return gin, nil
}

// Params returns the kernel and bias storage, or nil when frozen.
func (c *Conv2D) Params() []tensor.Vector {
	if c.Frozen {
		return nil
	}
	return []tensor.Vector{c.W, c.B}
}

// Grads returns the accumulated gradients, or nil when frozen.
func (c *Conv2D) Grads() []tensor.Vector {
	if c.Frozen {
		return nil
	}
	return []tensor.Vector{c.GradW, c.GradB}
}

// ZeroGrads clears the accumulated gradients.
func (c *Conv2D) ZeroGrads() {
	c.GradW.Zero()
	c.GradB.Zero()
}

// Name returns "conv2d".
func (c *Conv2D) Name() string { return "conv2d" }

// WeightMatrix views the kernel as an outC×(inC·K·K) matrix sharing storage
// with the layer. Spectral normalization for the AMLayer operates on this
// view (Eq. 4).
func (c *Conv2D) WeightMatrix() *tensor.Matrix {
	return &tensor.Matrix{Rows: c.OutC, Cols: c.InC * c.K * c.K, Data: c.W}
}
