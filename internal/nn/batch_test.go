package nn

import (
	"math"
	"testing"

	"rpol/internal/parallel"
	"rpol/internal/tensor"
)

// convNet builds a small conv→pool→dense stack covering every layer kind.
func convNet(t *testing.T, seed int64) *Network {
	t.Helper()
	rng := tensor.NewRNG(seed)
	conv, err := NewConv2D(1, 8, 8, 2, 3, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	mp, err := NewMaxPool2D(2, 8, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := NewLayerNorm(2 * 4 * 4)
	if err != nil {
		t.Fatal(err)
	}
	inner := NewDense(2*4*4, 2*4*4, rng)
	res, err := NewResidual(inner)
	if err != nil {
		t.Fatal(err)
	}
	net, err := NewNetwork(conv, NewReLU(conv.OutputDim()), mp, ln, res, NewDense(2*4*4, 3, rng))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func batchData(n, dim int, seed int64) ([]tensor.Vector, []int) {
	rng := tensor.NewRNG(seed)
	xs := make([]tensor.Vector, n)
	labels := make([]int, n)
	for i := range xs {
		xs[i] = rng.NormalVector(dim, 0, 1)
		labels[i] = rng.Intn(3)
	}
	return xs, labels
}

// TestBatchTrainerDeterministicAcrossWorkers is the nn-level half of the
// repo's parallel-determinism guarantee: identical initial weights and data
// must yield bit-identical parameters and losses at every worker count.
func TestBatchTrainerDeterministicAcrossWorkers(t *testing.T) {
	xs, labels := batchData(13, 64, 7)
	var refParams tensor.Vector
	var refLoss float64
	for _, workers := range []int{1, 2, 8} {
		net := convNet(t, 42)
		bt, err := NewBatchTrainer(net, parallel.New(workers))
		if err != nil {
			t.Fatal(err)
		}
		opt := &SGDM{LR: 0.05, Momentum: 0.9}
		var loss float64
		for step := 0; step < 4; step++ {
			loss, err = bt.TrainBatch(xs, labels, opt)
			if err != nil {
				t.Fatal(err)
			}
		}
		params := net.ParamVector()
		if workers == 1 {
			refParams, refLoss = params, loss
			continue
		}
		if math.Float64bits(loss) != math.Float64bits(refLoss) {
			t.Errorf("workers=%d: loss %x vs %x", workers, math.Float64bits(loss), math.Float64bits(refLoss))
		}
		for i := range params {
			if math.Float64bits(params[i]) != math.Float64bits(refParams[i]) {
				t.Fatalf("workers=%d: param %d bits %x vs %x",
					workers, i, math.Float64bits(params[i]), math.Float64bits(refParams[i]))
			}
		}
	}
}

// TestBatchTrainerMatchesSerialDense: for stacks whose layers accumulate one
// gradient term per parameter per example (everything except Conv2D), the
// chunked trainer reproduces the plain serial TrainBatch bit for bit.
func TestBatchTrainerMatchesSerialDense(t *testing.T) {
	build := func() *Network {
		rng := tensor.NewRNG(3)
		net, err := NewNetwork(
			NewDense(20, 16, rng), NewReLU(16), NewDense(16, 4, rng),
		)
		if err != nil {
			t.Fatal(err)
		}
		return net
	}
	xs, labels := batchData(9, 20, 11)

	serial := build()
	optS := &Adam{LR: 0.01, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
	parallelNet := build()
	bt, err := NewBatchTrainer(parallelNet, parallel.New(4))
	if err != nil {
		t.Fatal(err)
	}
	optP := &Adam{LR: 0.01, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
	for step := 0; step < 3; step++ {
		lossS, err := serial.TrainBatch(xs, labels, optS)
		if err != nil {
			t.Fatal(err)
		}
		lossP, err := bt.TrainBatch(xs, labels, optP)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(lossS) != math.Float64bits(lossP) {
			t.Fatalf("step %d: loss %x vs %x", step, math.Float64bits(lossS), math.Float64bits(lossP))
		}
	}
	ps, pp := serial.ParamVector(), parallelNet.ParamVector()
	for i := range ps {
		if math.Float64bits(ps[i]) != math.Float64bits(pp[i]) {
			t.Fatalf("param %d: %x vs %x", i, math.Float64bits(ps[i]), math.Float64bits(pp[i]))
		}
	}
}

// denseResNet builds a dense stack with a residual block — every layer kind
// the whole-batch GEMM path supports.
func denseResNet(t *testing.T, seed int64) *Network {
	t.Helper()
	rng := tensor.NewRNG(seed)
	res, err := NewResidual(NewDense(24, 24, rng))
	if err != nil {
		t.Fatal(err)
	}
	net, err := NewNetwork(
		NewDense(32, 24, rng), NewReLU(24), res, NewReLU(24), NewDense(24, 5, rng),
	)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// TestBatchTrainerGEMMMatchesSerialAnyBatch: the whole-batch GEMM path must
// reproduce the plain serial Network.TrainBatch bit for bit at ANY batch
// size and worker count — including batches larger than maxBatchChunks,
// where the retired chunked path would have merged per-chunk subtotals in a
// different association order.
func TestBatchTrainerGEMMMatchesSerialAnyBatch(t *testing.T) {
	for _, b := range []int{1, 3, 16, 33} {
		xs, labels := batchData(b, 32, int64(100+b))

		// Serial reference: plain per-example Network.TrainBatch.
		serial := denseResNet(t, 9)
		optS := &SGDM{LR: 0.05, Momentum: 0.9}
		var lossS float64
		var err error
		for step := 0; step < 3; step++ {
			if lossS, err = serial.TrainBatch(xs, labels, optS); err != nil {
				t.Fatal(err)
			}
		}
		refParams := serial.ParamVector()

		for _, workers := range []int{0, 1, 4} {
			net := denseResNet(t, 9)
			var pool *parallel.Pool
			if workers > 0 {
				pool = parallel.New(workers)
			}
			bt, err := NewBatchTrainer(net, pool)
			if err != nil {
				t.Fatal(err)
			}
			if bt.batchLayers == nil {
				t.Fatal("dense stack did not select the GEMM path")
			}
			optP := &SGDM{LR: 0.05, Momentum: 0.9}
			var lossP float64
			for step := 0; step < 3; step++ {
				if lossP, err = bt.TrainBatch(xs, labels, optP); err != nil {
					t.Fatal(err)
				}
			}
			if math.Float64bits(lossP) != math.Float64bits(lossS) {
				t.Errorf("batch=%d workers=%d: loss %x vs serial %x",
					b, workers, math.Float64bits(lossP), math.Float64bits(lossS))
			}
			pp := net.ParamVector()
			for i := range refParams {
				if math.Float64bits(pp[i]) != math.Float64bits(refParams[i]) {
					t.Fatalf("batch=%d workers=%d: param %d bits %x vs %x",
						b, workers, i, math.Float64bits(pp[i]), math.Float64bits(refParams[i]))
				}
			}
		}
	}
}

// TestBatchTrainerConvFallsBack: conv stacks have no whole-batch kernels and
// must keep using the chunked-replica path.
func TestBatchTrainerConvFallsBack(t *testing.T) {
	bt, err := NewBatchTrainer(convNet(t, 2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if bt.batchLayers != nil {
		t.Fatal("conv stack unexpectedly selected the GEMM path")
	}
}

// TestReplicateShared: replicas alias parameter storage but own gradients.
func TestReplicateShared(t *testing.T) {
	net := convNet(t, 5)
	rep, err := net.Replicate(true)
	if err != nil {
		t.Fatal(err)
	}
	src, dup := net.Params(), rep.Params()
	if len(src) != len(dup) {
		t.Fatalf("param count %d vs %d", len(src), len(dup))
	}
	for i := range src {
		if &src[i][0] != &dup[i][0] {
			t.Errorf("param %d not shared", i)
		}
	}
	sg, dg := net.Grads(), rep.Grads()
	for i := range sg {
		if &sg[i][0] == &dg[i][0] {
			t.Errorf("grad %d shared, want private", i)
		}
	}
	// Detached replica: nothing shared, training it leaves the source alone.
	det, err := net.Replicate(false)
	if err != nil {
		t.Fatal(err)
	}
	dp := det.Params()
	for i := range src {
		if &src[i][0] == &dp[i][0] {
			t.Errorf("detached param %d shared", i)
		}
	}
	before := net.ParamVector()
	xs, labels := batchData(4, 64, 2)
	if _, err := det.TrainBatch(xs, labels, &SGD{LR: 0.1}); err != nil {
		t.Fatal(err)
	}
	after := net.ParamVector()
	if !before.Equal(after, 0) {
		t.Error("training a detached replica mutated the source network")
	}
	// Frozen layers stay frozen through replication.
	frozen := &Dense{W: tensor.NewMatrix(2, 2), B: tensor.NewVector(2),
		GradW: tensor.NewMatrix(2, 2), GradB: tensor.NewVector(2), Frozen: true}
	fr := frozen.Replicate(true)
	if fr.Params() != nil {
		t.Error("frozen replica exposes params")
	}
}

// TestBatchTrainerErrors: shape errors surface, in deterministic order.
func TestBatchTrainerErrors(t *testing.T) {
	net := convNet(t, 1)
	bt, err := NewBatchTrainer(net, parallel.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bt.TrainBatch(nil, nil, &SGD{LR: 0.1}); err == nil {
		t.Error("empty batch accepted")
	}
	xs, labels := batchData(4, 64, 2)
	xs[2] = tensor.NewVector(3) // wrong dim mid-batch
	if _, err := bt.TrainBatch(xs, labels, &SGD{LR: 0.1}); err == nil {
		t.Error("bad example accepted")
	}
}
