package nn

import "rpol/internal/tensor"

// SpectralNormalize rescales the matrix in place so that its spectral norm
// does not exceed c, implementing the paper's Eq. (4):
//
//	W̃ = c·W/σ̃  if c/σ̃ < 1,   W̃ = W otherwise,
//
// where σ̃ is the maximum singular value estimated with iters rounds of power
// iteration. It returns the estimated σ̃ of the original matrix.
// The AMLayer uses this to enforce Lipschitz continuity with c < 1 so the
// residual block is an invertible 1-1 mapping (Sec. V-A).
func SpectralNormalize(m *tensor.Matrix, c float64, iters int) float64 {
	sigma := m.SpectralNorm(iters)
	if sigma > 0 && c/sigma < 1 {
		m.Data.Scale(c / sigma)
	}
	return sigma
}
