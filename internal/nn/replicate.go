package nn

import (
	"fmt"

	"rpol/internal/parallel"
	"rpol/internal/tensor"
)

// Replicable is implemented by layers that can produce an independent copy
// of themselves for use on another goroutine. With shareParams=true the
// replica aliases the source's parameter storage (weights are read-only
// during forward/backward, so batch-parallel replicas can share them) while
// owning private gradient buffers and caches. With shareParams=false the
// replica is a full deep copy — detached networks for verifier re-execution.
//
// Every layer shipped by this package implements Replicable; the interface
// exists so Network.Replicate can reject third-party layers that would race.
type Replicable interface {
	Layer
	Replicate(shareParams bool) Layer
}

// scratchLayer is implemented by layers that can take an optional arena for
// transient forward/backward buffers.
type scratchLayer interface {
	setScratch(a *parallel.Arena)
}

// Replicate returns a Dense sharing (or copying) W and B with private
// gradient buffers.
func (d *Dense) Replicate(shareParams bool) Layer {
	r := &Dense{
		W: d.W, B: d.B,
		GradW:  tensor.NewMatrix(d.W.Rows, d.W.Cols),
		GradB:  tensor.NewVector(len(d.B)),
		Frozen: d.Frozen,
	}
	if !shareParams {
		r.W = d.W.Clone()
		r.B = d.B.Clone()
	}
	return r
}

func (d *Dense) setScratch(a *parallel.Arena) { d.scratch = a }

// Replicate returns a fresh ReLU of the same width.
func (r *ReLU) Replicate(bool) Layer { return &ReLU{dim: r.dim} }

func (r *ReLU) setScratch(a *parallel.Arena) { r.scratch = a }

// Replicate wraps a replica of the inner layer. It panics if the inner layer
// is not Replicable; Network.Replicate surfaces that as an error before any
// replica is used.
func (r *Residual) Replicate(shareParams bool) Layer {
	inner, ok := r.Inner.(Replicable)
	if !ok {
		panic(fmt.Sprintf("nn: residual inner layer %s is not replicable", r.Inner.Name()))
	}
	return &Residual{Inner: inner.Replicate(shareParams)}
}

func (r *Residual) setScratch(a *parallel.Arena) {
	if s, ok := r.Inner.(scratchLayer); ok {
		s.setScratch(a)
	}
}

// Replicate returns a Conv2D sharing (or copying) the kernel and bias with
// private gradient buffers.
func (c *Conv2D) Replicate(shareParams bool) Layer {
	r := &Conv2D{
		InC: c.InC, InH: c.InH, InW: c.InW,
		OutC: c.OutC, K: c.K, Pad: c.Pad,
		W: c.W, B: c.B,
		GradW:  tensor.NewVector(len(c.GradW)),
		GradB:  tensor.NewVector(len(c.GradB)),
		Frozen: c.Frozen,
	}
	if !shareParams {
		r.W = c.W.Clone()
		r.B = c.B.Clone()
	}
	return r
}

func (c *Conv2D) setScratch(a *parallel.Arena) { c.scratch = a }

// Replicate returns a LayerNorm sharing (or copying) γ and b with private
// gradient buffers.
func (l *LayerNorm) Replicate(shareParams bool) Layer {
	r := &LayerNorm{
		Gamma: l.Gamma, Beta: l.Beta,
		GradGamma: tensor.NewVector(len(l.GradGamma)),
		GradBeta:  tensor.NewVector(len(l.GradBeta)),
		Eps:       l.Eps,
		Frozen:    l.Frozen,
	}
	if !shareParams {
		r.Gamma = l.Gamma.Clone()
		r.Beta = l.Beta.Clone()
	}
	return r
}

func (l *LayerNorm) setScratch(a *parallel.Arena) { l.scratch = a }

// Replicate returns a fresh MaxPool2D of the same geometry.
func (m *MaxPool2D) Replicate(bool) Layer {
	return &MaxPool2D{C: m.C, H: m.H, W: m.W, Window: m.Window}
}

func (m *MaxPool2D) setScratch(a *parallel.Arena) { m.scratch = a }

// Replicate returns a structural copy of the network. shareParams=true
// yields a batch-parallel replica: parameter storage is aliased (writes to
// the source's weights are visible, e.g. an optimizer step between batches)
// while gradients and forward caches are private. shareParams=false yields a
// fully detached deep copy, the form verifier re-execution uses so
// concurrent interval replays cannot touch each other's weights.
//
// The replica snapshots the layer graph at call time: architecture mutations
// on the source afterwards (e.g. amlayer.ReplaceDense swapping a residual's
// inner layer) are NOT reflected — replicate after the architecture is
// final.
func (n *Network) Replicate(shareParams bool) (*Network, error) {
	layers := make([]Layer, len(n.Layers))
	for i, l := range n.Layers {
		r, ok := l.(Replicable)
		if !ok {
			return nil, fmt.Errorf("nn: layer %d (%s) does not support replication", i, l.Name())
		}
		layers[i] = r.Replicate(shareParams)
	}
	return &Network{Layers: layers}, nil
}

// setScratch installs an arena on every layer that supports one. Only
// replica networks get arenas: their buffers are recycled after each
// example, an ownership discipline the package controls internally.
func (n *Network) setScratch(a *parallel.Arena) {
	for _, l := range n.Layers {
		if s, ok := l.(scratchLayer); ok {
			s.setScratch(a)
		}
	}
}
