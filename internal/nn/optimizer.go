package nn

import (
	"errors"
	"fmt"
	"math"

	"rpol/internal/tensor"
)

// Optimizer applies a gradient-descent update to a set of parameter tensors.
// The params and grads slices are positionally matched; implementations keep
// per-tensor state (momentum, second moments) keyed by position, so an
// optimizer instance must be used with a single network.
type Optimizer interface {
	// Step updates params in place from grads.
	Step(params, grads []tensor.Vector) error
	// Reset clears any accumulated state (momentum buffers etc.).
	Reset()
	// Name identifies the optimizer ("sgd", "sgdm", "rmsprop", "adam").
	Name() string
}

// ErrStateMismatch is returned when Step is called with a parameter layout
// different from earlier calls.
var ErrStateMismatch = errors.New("nn: optimizer state mismatch")

func checkPairs(params, grads []tensor.Vector) error {
	if len(params) != len(grads) {
		return fmt.Errorf("params %d vs grads %d: %w", len(params), len(grads), ErrStateMismatch)
	}
	for i := range params {
		if len(params[i]) != len(grads[i]) {
			return fmt.Errorf("tensor %d: param %d vs grad %d: %w",
				i, len(params[i]), len(grads[i]), ErrStateMismatch)
		}
	}
	return nil
}

// SGD is plain stochastic gradient descent: θ ← θ − lr·g.
type SGD struct {
	LR float64
}

var _ Optimizer = (*SGD)(nil)

// Step applies θ ← θ − lr·g.
func (o *SGD) Step(params, grads []tensor.Vector) error {
	if err := checkPairs(params, grads); err != nil {
		return err
	}
	for i := range params {
		if err := params[i].AXPY(-o.LR, grads[i]); err != nil {
			return err
		}
	}
	return nil
}

// Reset is a no-op; SGD is stateless.
func (o *SGD) Reset() {}

// Name returns "sgd".
func (o *SGD) Name() string { return "sgd" }

// SGDM is SGD with classical momentum — the paper's default optimizer
// (lr 0.1, momentum 0.9, Sec. VII-A).
type SGDM struct {
	LR       float64
	Momentum float64

	velocity []tensor.Vector
}

var _ Optimizer = (*SGDM)(nil)

// Step applies v ← μ·v + g; θ ← θ − lr·v.
func (o *SGDM) Step(params, grads []tensor.Vector) error {
	if err := checkPairs(params, grads); err != nil {
		return err
	}
	if o.velocity == nil {
		o.velocity = make([]tensor.Vector, len(params))
		for i := range params {
			o.velocity[i] = tensor.NewVector(len(params[i]))
		}
	}
	if len(o.velocity) != len(params) {
		return fmt.Errorf("velocity %d vs params %d: %w", len(o.velocity), len(params), ErrStateMismatch)
	}
	for i := range params {
		v := o.velocity[i]
		if len(v) != len(params[i]) {
			return fmt.Errorf("velocity tensor %d size changed: %w", i, ErrStateMismatch)
		}
		g := grads[i]
		for j := range v {
			v[j] = o.Momentum*v[j] + g[j]
			params[i][j] -= o.LR * v[j]
		}
	}
	return nil
}

// Reset drops the momentum buffers.
func (o *SGDM) Reset() { o.velocity = nil }

// Name returns "sgdm".
func (o *SGDM) Name() string { return "sgdm" }

// RMSprop divides the learning rate by a running RMS of recent gradients.
type RMSprop struct {
	LR    float64
	Decay float64 // typically 0.99
	Eps   float64 // typically 1e-8

	sq []tensor.Vector
}

var _ Optimizer = (*RMSprop)(nil)

// Step applies s ← ρ·s + (1−ρ)·g²; θ ← θ − lr·g/√(s+ε).
func (o *RMSprop) Step(params, grads []tensor.Vector) error {
	if err := checkPairs(params, grads); err != nil {
		return err
	}
	if o.sq == nil {
		o.sq = make([]tensor.Vector, len(params))
		for i := range params {
			o.sq[i] = tensor.NewVector(len(params[i]))
		}
	}
	if len(o.sq) != len(params) {
		return fmt.Errorf("state %d vs params %d: %w", len(o.sq), len(params), ErrStateMismatch)
	}
	eps := o.Eps
	if eps == 0 {
		eps = 1e-8
	}
	for i := range params {
		s := o.sq[i]
		if len(s) != len(params[i]) {
			return fmt.Errorf("state tensor %d size changed: %w", i, ErrStateMismatch)
		}
		g := grads[i]
		for j := range s {
			s[j] = o.Decay*s[j] + (1-o.Decay)*g[j]*g[j]
			params[i][j] -= o.LR * g[j] / (math.Sqrt(s[j]) + eps)
		}
	}
	return nil
}

// Reset drops the running squared-gradient buffers.
func (o *RMSprop) Reset() { o.sq = nil }

// Name returns "rmsprop".
func (o *RMSprop) Name() string { return "rmsprop" }

// Adam combines momentum and RMS scaling with bias correction.
type Adam struct {
	LR       float64
	Beta1    float64 // typically 0.9
	Beta2    float64 // typically 0.999
	Eps      float64 // typically 1e-8
	timestep int

	m, v []tensor.Vector
}

var _ Optimizer = (*Adam)(nil)

// Step applies the Adam update with bias correction.
func (o *Adam) Step(params, grads []tensor.Vector) error {
	if err := checkPairs(params, grads); err != nil {
		return err
	}
	if o.m == nil {
		o.m = make([]tensor.Vector, len(params))
		o.v = make([]tensor.Vector, len(params))
		for i := range params {
			o.m[i] = tensor.NewVector(len(params[i]))
			o.v[i] = tensor.NewVector(len(params[i]))
		}
	}
	if len(o.m) != len(params) {
		return fmt.Errorf("state %d vs params %d: %w", len(o.m), len(params), ErrStateMismatch)
	}
	eps := o.Eps
	if eps == 0 {
		eps = 1e-8
	}
	o.timestep++
	bc1 := 1 - math.Pow(o.Beta1, float64(o.timestep))
	bc2 := 1 - math.Pow(o.Beta2, float64(o.timestep))
	for i := range params {
		m, v := o.m[i], o.v[i]
		if len(m) != len(params[i]) {
			return fmt.Errorf("state tensor %d size changed: %w", i, ErrStateMismatch)
		}
		g := grads[i]
		for j := range m {
			m[j] = o.Beta1*m[j] + (1-o.Beta1)*g[j]
			v[j] = o.Beta2*v[j] + (1-o.Beta2)*g[j]*g[j]
			mhat := m[j] / bc1
			vhat := v[j] / bc2
			params[i][j] -= o.LR * mhat / (math.Sqrt(vhat) + eps)
		}
	}
	return nil
}

// Reset drops moment buffers and the timestep.
func (o *Adam) Reset() { o.m, o.v, o.timestep = nil, nil, 0 }

// Name returns "adam".
func (o *Adam) Name() string { return "adam" }

// NewOptimizer constructs an optimizer by name with the paper's default
// hyper-parameters (Sec. VII-A: SGDM lr 0.1, momentum 0.9).
func NewOptimizer(name string, lr float64) (Optimizer, error) {
	switch name {
	case "sgd":
		return &SGD{LR: lr}, nil
	case "sgdm":
		return &SGDM{LR: lr, Momentum: 0.9}, nil
	case "rmsprop":
		return &RMSprop{LR: lr, Decay: 0.99, Eps: 1e-8}, nil
	case "adam":
		return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}, nil
	default:
		return nil, fmt.Errorf("nn: unknown optimizer %q", name)
	}
}
