package fsio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"path/filepath"
	"sync"
)

// ErrInjectedCrash is the error every FaultFS operation returns once its
// plan has killed the process's write stream. Callers treat it like a
// process death: the run is over, and recovery happens in a fresh process
// over whatever bytes made it to disk.
var ErrInjectedCrash = errors.New("fsio: injected crash")

// FaultPlan is a deterministic filesystem fault schedule, the storage twin
// of netsim.FaultPlan: every decision is a pure function of (seed, path,
// write ordinal) — never of goroutine scheduling or the wall clock — so a
// seeded crash replays bit-identically, which is what lets the recovery
// tests crash a run at every write ordinal and compare resumed state
// against the crash-free run.
//
// A nil *FaultPlan is valid and injects nothing.
type FaultPlan struct {
	seed int64
	cfg  FaultConfig
}

// FaultConfig parameterizes a FaultPlan. Rates are probabilities in [0, 1];
// a zero config injects nothing even with a non-zero seed.
type FaultConfig struct {
	// CrashAtWrite, when non-zero, kills the write stream at exactly the
	// (CrashAtWrite−1)-th write ordinal (so 1 crashes the first write). The
	// dying write persists a deterministic prefix of its bytes — appends
	// leave a torn tail; atomic writes leave the old file — and every
	// subsequent operation fails with ErrInjectedCrash.
	CrashAtWrite uint64
	// CrashRate is the per-write probability of the same death, for
	// randomized soaks rather than exhaustive sweeps.
	CrashRate float64
	// ShortWriteRate is the per-write probability that a write silently
	// persists only a prefix of its bytes while reporting success —
	// modelling lost trailing sectors discovered only at read time.
	ShortWriteRate float64
	// BitFlipRate is the per-write probability that one deterministically
	// chosen bit of the payload is flipped — modelling bit rot the
	// checksum layer must catch.
	BitFlipRate float64
}

// NewFaultPlan derives a plan from the seed. The same (seed, cfg) always
// yields the same schedule.
func NewFaultPlan(seed int64, cfg FaultConfig) *FaultPlan {
	return &FaultPlan{seed: seed, cfg: cfg}
}

// CrashAtWrite is the exhaustive-sweep constructor: a plan whose only fault
// is a crash at the given 0-based write ordinal. seed still individualizes
// the dying write's persisted prefix length.
func CrashAtWrite(seed int64, ordinal uint64) *FaultPlan {
	return NewFaultPlan(seed, FaultConfig{CrashAtWrite: ordinal + 1})
}

// WriteFault is one write's injected behaviour.
type WriteFault struct {
	// Crash kills the stream at this write: a prefix persists, the
	// operation fails, and the FaultFS goes permanently down.
	Crash bool
	// Short silently persists only a prefix while reporting success.
	Short bool
	// FlipBit corrupts one payload bit while reporting success.
	FlipBit bool
	// Fraction positions the fault within the payload: the persisted
	// prefix length (Crash/Short) or the flipped bit (FlipBit) is this
	// fraction of the way through, in [0, 1).
	Fraction float64
}

// Decide returns the fault injected into the ord-th write (a process-global
// ordinal maintained by the FaultFS) landing on path. Only the path's base
// name enters the hash: fault schedules then replay identically when the
// same run executes under a different root directory (every recovery test
// runs in a fresh temp dir).
func (p *FaultPlan) Decide(path string, ord uint64) WriteFault {
	if p == nil {
		return WriteFault{}
	}
	path = filepath.Base(path)
	if p.cfg.CrashAtWrite != 0 && ord == p.cfg.CrashAtWrite-1 {
		return WriteFault{Crash: true, Fraction: p.uniform("crash-keep", path, ord)}
	}
	if p.cfg.CrashRate > 0 && p.uniform("crash", path, ord) < p.cfg.CrashRate {
		return WriteFault{Crash: true, Fraction: p.uniform("crash-keep", path, ord)}
	}
	if p.cfg.ShortWriteRate > 0 && p.uniform("short", path, ord) < p.cfg.ShortWriteRate {
		return WriteFault{Short: true, Fraction: p.uniform("short-keep", path, ord)}
	}
	if p.cfg.BitFlipRate > 0 && p.uniform("flip", path, ord) < p.cfg.BitFlipRate {
		return WriteFault{FlipBit: true, Fraction: p.uniform("flip-pos", path, ord)}
	}
	return WriteFault{}
}

// hash mixes the seed with the decision's identity into 64 uniform bits
// (FNV-1a finalized with SplitMix64, as in netsim).
func (p *FaultPlan) hash(kind, path string, n uint64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(p.seed))
	_, _ = h.Write(buf[:])
	_, _ = h.Write([]byte(kind))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(path))
	_, _ = h.Write([]byte{0})
	binary.BigEndian.PutUint64(buf[:], n)
	_, _ = h.Write(buf[:])
	return splitmix64(h.Sum64())
}

// uniform maps a decision's hash to [0, 1).
func (p *FaultPlan) uniform(kind, path string, n uint64) float64 {
	return float64(p.hash(kind, path, n)>>11) / float64(uint64(1)<<53)
}

// splitmix64 is the finalizer of the SplitMix64 generator: a strong 64-bit
// mix that decorrelates the structured FNV input.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// FaultFS wraps an FS with a FaultPlan. Every data write — one
// WriteFileAtomic call or one Appender.Write call — consumes one
// process-global write ordinal; the plan maps (path, ordinal) to a fault.
// After an injected crash the FaultFS is permanently down: every operation,
// reads included, fails with ErrInjectedCrash, exactly as the filesystem
// looks to a process that just died. A nil plan counts ordinals without
// injecting — the recovery sweep uses that to size its crash schedule.
type FaultFS struct {
	inner FS
	plan  *FaultPlan

	mu   sync.Mutex
	ord  uint64
	down bool
}

var _ FS = (*FaultFS)(nil)

// NewFaultFS wraps inner with the plan.
func NewFaultFS(inner FS, plan *FaultPlan) *FaultFS {
	return &FaultFS{inner: inner, plan: plan}
}

// Writes returns the number of write ordinals consumed so far.
func (f *FaultFS) Writes() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ord
}

// Down reports whether an injected crash has killed this filesystem.
func (f *FaultFS) Down() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.down
}

// prefixLen maps a fault's fraction to a strict prefix of an n-byte payload.
func prefixLen(frac float64, n int) int {
	keep := int(frac * float64(n))
	if keep >= n && n > 0 {
		keep = n - 1
	}
	if keep < 0 {
		keep = 0
	}
	return keep
}

// corrupt applies a short-write or bit-flip fault to data, returning the
// bytes that actually persist. The input is not modified.
func corrupt(fault WriteFault, data []byte) []byte {
	switch {
	case fault.Short:
		return data[:prefixLen(fault.Fraction, len(data))]
	case fault.FlipBit && len(data) > 0:
		out := append([]byte(nil), data...)
		bit := int(fault.Fraction * float64(len(out)*8))
		if bit >= len(out)*8 {
			bit = len(out)*8 - 1
		}
		out[bit/8] ^= 1 << (bit % 8)
		return out
	default:
		return data
	}
}

// guard fails the operation when the filesystem is already down.
func (f *FaultFS) guard() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.down {
		return ErrInjectedCrash
	}
	return nil
}

// decide consumes one write ordinal and, on a crash fault, marks the
// filesystem down.
func (f *FaultFS) decide(path string) (WriteFault, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.down {
		return WriteFault{}, ErrInjectedCrash
	}
	fault := f.plan.Decide(path, f.ord)
	f.ord++
	if fault.Crash {
		f.down = true
	}
	return fault, nil
}

// MkdirAll passes through (directory creation is not a data write).
func (f *FaultFS) MkdirAll(dir string) error {
	if err := f.guard(); err != nil {
		return err
	}
	return f.inner.MkdirAll(dir)
}

// WriteFileAtomic consumes one write ordinal. A crash fault persists
// nothing — the temp-file + rename discipline means a death mid-write
// leaves the previous file — while short writes and bit flips corrupt the
// payload that lands, modelling storage that lies about durability.
func (f *FaultFS) WriteFileAtomic(path string, data []byte) error {
	fault, err := f.decide(path)
	if err != nil {
		return err
	}
	if fault.Crash {
		return fmt.Errorf("atomic write %s at ordinal %d: %w", path, f.ord-1, ErrInjectedCrash)
	}
	return f.inner.WriteFileAtomic(path, corrupt(fault, data))
}

// ReadFile passes through unless the filesystem is down.
func (f *FaultFS) ReadFile(path string) ([]byte, error) {
	if err := f.guard(); err != nil {
		return nil, err
	}
	return f.inner.ReadFile(path)
}

// Append returns a fault-injecting handle over the inner appender.
func (f *FaultFS) Append(path string) (Appender, error) {
	if err := f.guard(); err != nil {
		return nil, err
	}
	inner, err := f.inner.Append(path)
	if err != nil {
		return nil, err
	}
	return &faultAppender{fs: f, path: path, inner: inner}, nil
}

// Remove passes through unless the filesystem is down.
func (f *FaultFS) Remove(path string) error {
	if err := f.guard(); err != nil {
		return err
	}
	return f.inner.Remove(path)
}

// ReadDir passes through unless the filesystem is down.
func (f *FaultFS) ReadDir(dir string) ([]string, error) {
	if err := f.guard(); err != nil {
		return nil, err
	}
	return f.inner.ReadDir(dir)
}

// Size passes through unless the filesystem is down.
func (f *FaultFS) Size(path string) (int64, error) {
	if err := f.guard(); err != nil {
		return 0, err
	}
	return f.inner.Size(path)
}

// faultAppender applies the plan to each append. A crash mid-append
// persists a deterministic prefix — the torn tail journal recovery must
// discard — then kills the filesystem.
type faultAppender struct {
	fs    *FaultFS
	path  string
	inner Appender
}

func (a *faultAppender) Write(data []byte) (int, error) {
	fault, err := a.fs.decide(a.path)
	if err != nil {
		return 0, err
	}
	if fault.Crash {
		keep := prefixLen(fault.Fraction, len(data))
		if keep > 0 {
			if _, err := a.inner.Write(data[:keep]); err != nil {
				return 0, err
			}
			_ = a.inner.Sync()
		}
		return keep, fmt.Errorf("append %s at ordinal %d: %w", a.path, a.fs.Writes()-1, ErrInjectedCrash)
	}
	persisted := corrupt(fault, data)
	if _, err := a.inner.Write(persisted); err != nil {
		return 0, err
	}
	// Short writes and bit flips report full success: the caller learns
	// about them at read time, through the checksum layer.
	return len(data), nil
}

func (a *faultAppender) Sync() error {
	if err := a.fs.guard(); err != nil {
		return err
	}
	return a.inner.Sync()
}

func (a *faultAppender) Close() error {
	// Closing must work even when down, so crashed runs can release their
	// handles before the recovery process takes over.
	return a.inner.Close()
}
