// Package fsio is the repo's durable-write layer: every byte the protocol
// persists — checkpoints, the blockchain file, trace files, the epoch
// journal — goes through it. It provides two guarantees the bare
// os.WriteFile call sites it replaced could not:
//
//  1. Atomicity. WriteFileAtomic stages the payload in a temp file, fsyncs
//     it, renames it over the destination, and fsyncs the directory, so a
//     crash mid-write leaves either the old file or the new file — never a
//     torn hybrid.
//  2. Integrity. Frames carry a length prefix and an FNV-1a checksum, so a
//     reader distinguishes "intact", "torn" (truncated mid-frame), and
//     "corrupt" (bit flip) instead of decoding garbage weights.
//
// Both guarantees are testable because the package's filesystem surface is
// the injectable FS interface: the production OS implementation talks to the
// real filesystem, while FaultFS wraps any FS with a deterministic fault
// plan — seeded exactly like netsim.FaultPlan, every decision a pure hash of
// (seed, path, write ordinal) — that can kill the write stream at the Nth
// write, short-write a file, or flip a bit. The crash-recovery tests replay
// every crash point bit-identically from a single seed.
package fsio

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// Errors classifying unreadable durable data.
var (
	// ErrTornFrame marks a frame truncated mid-write: the bytes end before
	// the frame's declared length. Journal recovery discards torn tails;
	// whole-file readers treat it as corruption.
	ErrTornFrame = errors.New("fsio: torn frame")
	// ErrChecksum marks a frame whose payload bytes do not hash to the
	// recorded checksum: a bit flip or an overwrite, not a truncation.
	ErrChecksum = errors.New("fsio: checksum mismatch")
)

// Appender is an open append-only file handle. Write appends at the end;
// Sync makes previous writes durable.
type Appender interface {
	io.Writer
	Sync() error
	Close() error
}

// FS is the filesystem surface durable writers use. The production
// implementation is OS; tests inject a FaultFS to crash, truncate, or
// corrupt writes deterministically.
type FS interface {
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// WriteFileAtomic durably replaces path with data: temp file + fsync +
	// rename + directory fsync. After it returns, path holds exactly data;
	// if it fails (or the process dies), path holds its previous content.
	WriteFileAtomic(path string, data []byte) error
	// ReadFile returns the file's contents.
	ReadFile(path string) ([]byte, error)
	// Append opens path for appending, creating it if missing.
	Append(path string) (Appender, error)
	// Remove deletes path.
	Remove(path string) error
	// ReadDir lists the names (not paths) of dir's entries, sorted.
	ReadDir(dir string) ([]string, error)
	// Size returns the file's length in bytes.
	Size(path string) (int64, error)
}

// OS is the production filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) WriteFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("fsio atomic write: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("fsio atomic write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("fsio atomic write: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("fsio atomic write: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("fsio atomic write: %w", err)
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs the directory so the rename itself is durable. Best-effort
// on filesystems that reject directory fsync (some network mounts): the
// rename already happened, so readers see a consistent file either way.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}

func (osFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func (osFS) Append(path string) (Appender, error) {
	return os.OpenFile(path, os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
}

func (osFS) Remove(path string) error { return os.Remove(path) }

func (osFS) ReadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

func (osFS) Size(path string) (int64, error) {
	info, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	return info.Size(), nil
}

// WriteFileAtomic writes through the production filesystem. Call sites that
// need fault injection take an FS instead.
func WriteFileAtomic(path string, data []byte) error {
	return OS.WriteFileAtomic(path, data)
}
