package fsio

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
)

// Frame layout: a 4-byte big-endian payload length, the payload, and an
// 8-byte big-endian FNV-1a checksum over the length prefix and payload.
// Checksumming the length too means a flipped length bit is detected as
// corruption rather than silently re-framing the stream.
const (
	frameLenSize = 4
	frameSumSize = 8
	// frameOverhead is the per-frame framing cost in bytes.
	frameOverhead = frameLenSize + frameSumSize
	// maxFramePayload bounds one frame; a torn or corrupt length prefix
	// otherwise turns into a multi-gigabyte allocation.
	maxFramePayload = 1 << 30
)

// FileOverhead is the byte cost EncodeFile adds to a payload: the file magic
// plus one frame's length prefix and checksum. Storage accounting adds it
// per persisted file.
const FileOverhead = len(fileMagic) + frameOverhead

// fileMagic marks a checksummed single-frame file written by EncodeFile. The
// leading byte is outside ASCII so no legacy format (JSON, base64, or the
// tensor wire encoding of any plausibly-sized vector) collides with it.
const fileMagic = "\x93RPoLfs1"

// Checksum returns the FNV-1a/SplitMix64 digest of data — the same hash
// family the deterministic fault plans use. It is not cryptographic: it
// detects accidental corruption (torn writes, bit rot), while adversarial
// binding is the commitment layer's job.
func Checksum(data []byte) uint64 {
	h := fnv.New64a()
	_, _ = h.Write(data)
	return splitmix64(h.Sum64())
}

// AppendFrame appends one checksummed frame carrying payload to dst and
// returns the extended slice.
func AppendFrame(dst, payload []byte) []byte {
	var lenBuf [frameLenSize]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(payload)))
	start := len(dst)
	dst = append(dst, lenBuf[:]...)
	dst = append(dst, payload...)
	var sumBuf [frameSumSize]byte
	binary.BigEndian.PutUint64(sumBuf[:], Checksum(dst[start:]))
	return append(dst, sumBuf[:]...)
}

// ReadFrame parses one frame from the front of data, returning its payload
// and the remaining bytes. A truncation (fewer bytes than the frame
// declares) is ErrTornFrame; a checksum mismatch or an absurd declared
// length is ErrChecksum. The payload aliases data.
func ReadFrame(data []byte) (payload, rest []byte, err error) {
	if len(data) < frameLenSize {
		return nil, nil, fmt.Errorf("%d bytes before length prefix: %w", len(data), ErrTornFrame)
	}
	n := int(binary.BigEndian.Uint32(data[:frameLenSize]))
	if n > maxFramePayload {
		return nil, nil, fmt.Errorf("declared payload %d bytes: %w", n, ErrChecksum)
	}
	total := frameLenSize + n + frameSumSize
	if len(data) < total {
		return nil, nil, fmt.Errorf("%d of %d frame bytes: %w", len(data), total, ErrTornFrame)
	}
	want := binary.BigEndian.Uint64(data[frameLenSize+n : total])
	if got := Checksum(data[:frameLenSize+n]); got != want {
		return nil, nil, ErrChecksum
	}
	return data[frameLenSize : frameLenSize+n], data[total:], nil
}

// EncodeFile wraps payload as a checksummed single-frame file: magic header
// plus one frame. Readers use DecodeFile, which also accepts pre-fsio files
// (no magic) for upgrade compatibility.
func EncodeFile(payload []byte) []byte {
	out := make([]byte, 0, FileOverhead+len(payload))
	return AppendFile(out, payload)
}

// AppendFile appends the EncodeFile representation of payload to dst and
// returns the extended slice (the append-style variant for hot write paths
// that reuse one buffer across calls).
func AppendFile(dst, payload []byte) []byte {
	dst = append(dst, fileMagic...)
	return AppendFrame(dst, payload)
}

// DecodeFile returns the payload of a file written by EncodeFile, verifying
// its checksum. Files without the magic header are returned verbatim with
// legacy=true: the pre-fsio formats carried no checksum, so the caller's own
// validation is all the protection they ever had.
func DecodeFile(data []byte) (payload []byte, legacy bool, err error) {
	if len(data) < len(fileMagic) || string(data[:len(fileMagic)]) != fileMagic {
		return data, true, nil
	}
	payload, rest, err := ReadFrame(data[len(fileMagic):])
	if err != nil {
		return nil, false, err
	}
	if len(rest) != 0 {
		return nil, false, fmt.Errorf("%d trailing bytes: %w", len(rest), ErrChecksum)
	}
	return payload, false, nil
}
