package fsio

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{[]byte("alpha"), {}, []byte("a longer third payload with \x00 bytes \xff")}
	var buf []byte
	for _, p := range payloads {
		buf = AppendFrame(buf, p)
	}
	rest := buf
	for i, want := range payloads {
		got, r, err := ReadFrame(rest)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d payload = %q, want %q", i, got, want)
		}
		rest = r
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
}

func TestReadFrameTornAtEveryPrefix(t *testing.T) {
	full := AppendFrame(nil, []byte("torn tail victim"))
	for cut := 0; cut < len(full); cut++ {
		_, _, err := ReadFrame(full[:cut])
		if !errors.Is(err, ErrTornFrame) {
			t.Fatalf("cut %d: err = %v, want ErrTornFrame", cut, err)
		}
	}
}

func TestReadFrameDetectsBitFlips(t *testing.T) {
	full := AppendFrame(nil, []byte("bit flip victim"))
	for i := range full {
		flipped := append([]byte(nil), full...)
		flipped[i] ^= 0x01
		_, _, err := ReadFrame(flipped)
		if err == nil {
			t.Fatalf("flip at byte %d accepted", i)
		}
		// A flipped length byte may read as a torn frame (declared length
		// beyond the buffer); every other flip must be a checksum failure.
		if !errors.Is(err, ErrChecksum) && !errors.Is(err, ErrTornFrame) {
			t.Fatalf("flip at byte %d: unexpected error %v", i, err)
		}
	}
}

func TestEncodeDecodeFile(t *testing.T) {
	payload := []byte(`{"kind":"state"}`)
	enc := EncodeFile(payload)
	got, legacy, err := DecodeFile(enc)
	if err != nil || legacy {
		t.Fatalf("DecodeFile: legacy=%v err=%v", legacy, err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload = %q", got)
	}

	// Pre-fsio files carry no magic and pass through verbatim.
	raw := []byte(`{"version":1}`)
	got, legacy, err = DecodeFile(raw)
	if err != nil || !legacy {
		t.Fatalf("legacy DecodeFile: legacy=%v err=%v", legacy, err)
	}
	if !bytes.Equal(got, raw) {
		t.Fatalf("legacy payload = %q", got)
	}

	// A flipped payload bit fails the checksum.
	bad := append([]byte(nil), enc...)
	bad[len(bad)/2] ^= 0x10
	if _, _, err := DecodeFile(bad); err == nil {
		t.Fatal("corrupted file decoded")
	}

	// Trailing garbage after the frame is corruption, not extra frames.
	if _, _, err := DecodeFile(append(append([]byte(nil), enc...), 0xEE)); !errors.Is(err, ErrChecksum) {
		t.Fatalf("trailing garbage: err = %v", err)
	}
}

func TestWriteFileAtomic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.bin")
	if err := OS.WriteFileAtomic(path, []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := OS.WriteFileAtomic(path, []byte("second")); err != nil {
		t.Fatal(err)
	}
	data, err := OS.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "second" {
		t.Fatalf("content = %q", data)
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("temp file left behind")
	}
}

func TestFaultFSCrashAtAtomicWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.bin")
	if err := OS.WriteFileAtomic(path, []byte("old")); err != nil {
		t.Fatal(err)
	}
	ffs := NewFaultFS(OS, CrashAtWrite(7, 0))
	err := ffs.WriteFileAtomic(path, []byte("new"))
	if !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("err = %v", err)
	}
	// Atomicity: the dying write leaves the previous content.
	data, err := OS.ReadFile(path)
	if err != nil || string(data) != "old" {
		t.Fatalf("after crash: %q, %v", data, err)
	}
	// The filesystem is permanently down.
	if !ffs.Down() {
		t.Fatal("not down after crash")
	}
	if _, err := ffs.ReadFile(path); !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("read after crash: %v", err)
	}
	if err := ffs.MkdirAll(filepath.Join(dir, "x")); !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("mkdir after crash: %v", err)
	}
}

func TestFaultFSCrashMidAppendLeavesTornPrefix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	payload := bytes.Repeat([]byte("0123456789"), 20)

	ffs := NewFaultFS(OS, CrashAtWrite(11, 1))
	ap, err := ffs.Append(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ap.Write(payload); err != nil {
		t.Fatal(err)
	}
	n, err := ap.Write(payload)
	if !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("second write err = %v", err)
	}
	if n >= len(payload) {
		t.Fatalf("crash persisted all %d bytes", n)
	}
	if err := ap.Close(); err != nil {
		t.Fatalf("close after crash: %v", err)
	}
	data, err := OS.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(payload) + n; len(data) != want {
		t.Fatalf("persisted %d bytes, want %d", len(data), want)
	}
	if !bytes.Equal(data[:len(payload)], payload) {
		t.Fatal("intact prefix corrupted")
	}
}

func TestFaultFSShortWriteAndBitFlipReportSuccess(t *testing.T) {
	dir := t.TempDir()
	payload := bytes.Repeat([]byte("abcd"), 64)

	short := NewFaultFS(OS, NewFaultPlan(3, FaultConfig{ShortWriteRate: 1}))
	p1 := filepath.Join(dir, "short.bin")
	if err := short.WriteFileAtomic(p1, payload); err != nil {
		t.Fatalf("short write should report success: %v", err)
	}
	data, _ := OS.ReadFile(p1)
	if len(data) >= len(payload) {
		t.Fatalf("short write persisted %d of %d bytes", len(data), len(payload))
	}

	flip := NewFaultFS(OS, NewFaultPlan(3, FaultConfig{BitFlipRate: 1}))
	p2 := filepath.Join(dir, "flip.bin")
	if err := flip.WriteFileAtomic(p2, payload); err != nil {
		t.Fatalf("bit flip should report success: %v", err)
	}
	data, _ = OS.ReadFile(p2)
	if len(data) != len(payload) {
		t.Fatalf("bit flip changed length: %d", len(data))
	}
	diff := 0
	for i := range data {
		if data[i] != payload[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("%d corrupted bytes, want exactly 1", diff)
	}
}

func TestFaultFSWriteOrdinalsAreDeterministic(t *testing.T) {
	run := func() []byte {
		dir := t.TempDir()
		ffs := NewFaultFS(OS, NewFaultPlan(99, FaultConfig{ShortWriteRate: 0.5, BitFlipRate: 0.5}))
		var out []byte
		for i := 0; i < 8; i++ {
			p := filepath.Join(dir, "f.bin")
			if err := ffs.WriteFileAtomic(p, bytes.Repeat([]byte{byte(i)}, 32)); err != nil {
				t.Fatal(err)
			}
			data, err := OS.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			out = AppendFrame(out, data)
		}
		if ffs.Writes() != 8 {
			t.Fatalf("Writes = %d", ffs.Writes())
		}
		return out
	}
	if !bytes.Equal(run(), run()) {
		t.Fatal("same seed produced different fault effects")
	}
}

func TestChecksumDistinguishesInputs(t *testing.T) {
	a := Checksum([]byte("a"))
	b := Checksum([]byte("b"))
	if a == b {
		t.Fatal("trivial collision")
	}
	if Checksum([]byte("a")) != a {
		t.Fatal("checksum not stable")
	}
}
