package netsim

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestWriteFrameRejectsOversized(t *testing.T) {
	var buf bytes.Buffer
	msg := Message{From: "a", To: "b", Kind: "k", Payload: make([]byte, maxFrameSize+1)}
	err := writeFrame(&buf, msg)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("oversized frame wrote %d bytes before failing", buf.Len())
	}
}

// TestTCPOversizedSendDoesNotPoisonConnection asserts the sender-side frame
// bound: an oversized Send must fail locally, before any bytes hit the
// socket, so the same connection keeps working afterwards. Before the fix
// the length prefix could silently truncate and/or the peer's read loop died
// with ErrFrameTooLarge.
func TestTCPOversizedSendDoesNotPoisonConnection(t *testing.T) {
	if testing.Short() {
		t.Skip("allocates a >64MB payload")
	}
	hub := startHub(t)
	a := dial(t, hub, "manager")
	b := dial(t, hub, "worker-1")

	err := a.Send("worker-1", "blob", make([]byte, maxFrameSize+1))
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized send err = %v, want ErrFrameTooLarge", err)
	}
	// The connection must still carry ordinary traffic in both directions.
	if err := a.Send("worker-1", "task", []byte("after")); err != nil {
		t.Fatal(err)
	}
	msg, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if msg.Kind != "task" || string(msg.Payload) != "after" {
		t.Errorf("msg = %+v", msg)
	}
	if err := b.Send("manager", "result", []byte("ok")); err != nil {
		t.Fatal(err)
	}
	if reply, err := a.Recv(); err != nil || string(reply.Payload) != "ok" {
		t.Fatalf("reply = %+v, err = %v", reply, err)
	}
}

// FuzzReadFrame fuzzes the wire frame decoder. The seeds include the
// truncated-length-prefix case: a prefix announcing more bytes than follow
// must fail with an unexpected-EOF-style error, never hang or panic, and a
// prefix over maxFrameSize must be rejected before allocating.
func FuzzReadFrame(f *testing.F) {
	// Valid frame.
	var valid bytes.Buffer
	if err := writeFrame(&valid, Message{From: "a", To: "b", Kind: "k", Payload: []byte("p")}); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	// Truncated length prefix: fewer than 4 header bytes.
	f.Add([]byte{0x00})
	f.Add([]byte{0x00, 0x00, 0x00})
	// Prefix announces 16 bytes, body is shorter.
	truncated := []byte{0x00, 0x00, 0x00, 0x10, 'x', 'y'}
	f.Add(truncated)
	// Prefix over maxFrameSize.
	var huge [4]byte
	binary.BigEndian.PutUint32(huge[:], maxFrameSize+1)
	f.Add(huge[:])
	// Valid prefix, garbage JSON body.
	f.Add([]byte{0x00, 0x00, 0x00, 0x02, '{', 'x'})

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := readFrame(bytes.NewReader(data))
		if err != nil {
			if strings.Contains(err.Error(), "netsim") ||
				errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
				errors.Is(err, ErrFrameTooLarge) {
				return
			}
			t.Fatalf("unexpected error class: %v", err)
		}
		// A decoded frame must round-trip.
		var buf bytes.Buffer
		if err := writeFrame(&buf, msg); err != nil {
			t.Fatalf("re-encode of decoded frame failed: %v", err)
		}
	})
}
