package netsim

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"testing"
)

// TestFrameBinaryRoundTrip pins the binary frame codec: every field survives
// and the body does not start with '{' (the legacy-JSON sniff byte).
func TestFrameBinaryRoundTrip(t *testing.T) {
	msgs := []Message{
		{},
		{From: "manager", To: "w1", Kind: "task", Seq: 7, Payload: []byte("payload")},
		{From: "w1", To: "manager", Kind: "result", Payload: bytes.Repeat([]byte{0xAB}, 1<<16)},
		{From: "a", Kind: KindRegister},
	}
	for _, msg := range msgs {
		var buf bytes.Buffer
		if err := writeFrame(&buf, msg); err != nil {
			t.Fatalf("%+v: %v", msg, err)
		}
		if body := buf.Bytes()[4:]; body[0] == '{' {
			t.Fatal("binary frame body starts with '{' — collides with the JSON sniff")
		}
		got, err := readFrame(&buf)
		if err != nil {
			t.Fatalf("%+v: %v", msg, err)
		}
		if got.From != msg.From || got.To != msg.To || got.Kind != msg.Kind || got.Seq != msg.Seq {
			t.Errorf("frame changed: %+v -> %+v", msg, got)
		}
		if !bytes.Equal(got.Payload, msg.Payload) {
			t.Errorf("payload changed for %+v", msg)
		}
	}
}

// TestReadFrameLegacyJSON feeds a frame in the pre-binary JSON encoding and
// requires the reader to fall back to it.
func TestReadFrameLegacyJSON(t *testing.T) {
	msg := Message{From: "m", To: "w", Kind: "task", Seq: 3, Payload: []byte{1, 2, 3}}
	body, err := json.Marshal(msg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	var prefix [4]byte
	binary.BigEndian.PutUint32(prefix[:], uint32(len(body)))
	buf.Write(prefix[:])
	buf.Write(body)
	got, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.From != msg.From || got.To != msg.To || got.Kind != msg.Kind ||
		got.Seq != msg.Seq || !bytes.Equal(got.Payload, msg.Payload) {
		t.Errorf("legacy frame decode = %+v, want %+v", got, msg)
	}
}

// TestDecodeFrameMalformed walks the truncation points of the binary body.
func TestDecodeFrameMalformed(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, Message{From: "a", To: "b", Kind: "k", Seq: 9, Payload: []byte("p")}); err != nil {
		t.Fatal(err)
	}
	body := buf.Bytes()[4:]
	for cut := 0; cut < len(body)-len("p"); cut++ {
		if _, err := decodeFrame(body[:cut]); err == nil {
			t.Errorf("decodeFrame accepted a body truncated to %d bytes", cut)
		}
	}
	if _, err := decodeFrame([]byte{0x42, frameVersion}); err == nil {
		t.Error("decodeFrame accepted a bad magic byte")
	}
	if _, err := decodeFrame([]byte{frameMagic, 0x7F}); err == nil {
		t.Error("decodeFrame accepted an unsupported version")
	}
}
