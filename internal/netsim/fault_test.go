package netsim

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"rpol/internal/obs"
)

func TestFaultPlanDeterministic(t *testing.T) {
	cfg := DefaultFaultConfig()
	a := NewFaultPlan(42, cfg)
	b := NewFaultPlan(42, cfg)
	for seq := uint64(0); seq < 500; seq++ {
		fa := a.Decide("manager", "worker-01", seq)
		fb := b.Decide("manager", "worker-01", seq)
		if fa != fb {
			t.Fatalf("seq %d: same seed diverged: %+v vs %+v", seq, fa, fb)
		}
	}
	for epoch := 0; epoch < 64; epoch++ {
		for w := 0; w < 4; w++ {
			id := fmt.Sprintf("worker-%02d", w)
			if a.WorkerDown(id, epoch) != b.WorkerDown(id, epoch) {
				t.Fatalf("WorkerDown(%s, %d) diverged for same seed", id, epoch)
			}
		}
	}
}

func TestFaultPlanSeedSensitive(t *testing.T) {
	cfg := DefaultFaultConfig()
	a := NewFaultPlan(1, cfg)
	b := NewFaultPlan(2, cfg)
	same := 0
	const n = 2000
	for seq := uint64(0); seq < n; seq++ {
		if a.Decide("m", "w", seq) == b.Decide("m", "w", seq) {
			same++
		}
	}
	if same == n {
		t.Fatal("different seeds produced identical fault schedules")
	}
}

func TestFaultPlanRates(t *testing.T) {
	// With only drops configured at 10%, the empirical drop rate over many
	// independent links should land near 10%.
	p := NewFaultPlan(7, FaultConfig{DropRate: 0.1})
	drops := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if p.Decide("a", fmt.Sprintf("b%d", i), 0).Drop {
			drops++
		}
	}
	rate := float64(drops) / n
	if rate < 0.07 || rate > 0.13 {
		t.Fatalf("empirical drop rate %.3f, want ≈ 0.10", rate)
	}
}

func TestFaultPlanNilSafe(t *testing.T) {
	var p *FaultPlan
	if f := p.Decide("a", "b", 0); f.Drop || f.Delay != 0 {
		t.Fatalf("nil plan injected %+v", f)
	}
	if p.WorkerDown("a", 3) {
		t.Fatal("nil plan crashed a worker")
	}
	if p.Seed() != 0 {
		t.Fatal("nil plan has a seed")
	}
}

func TestFaultPlanWorkerDownWindows(t *testing.T) {
	// Crashes must respect MaxCrashLen: within any cycle the down epochs
	// form one contiguous window of at most MaxCrashLen epochs.
	cfg := DefaultFaultConfig()
	cfg.CrashRate = 1 // crash every cycle so every window is exercised
	p := NewFaultPlan(9, cfg)
	period := int(cfg.CrashPeriod)
	for cycle := 0; cycle < 50; cycle++ {
		down := 0
		transitions := 0
		prev := false
		for off := 0; off < period; off++ {
			d := p.WorkerDown("w", cycle*period+off)
			if d {
				down++
			}
			if d != prev {
				transitions++
			}
			prev = d
		}
		if down < 1 || down > int(cfg.MaxCrashLen) {
			t.Fatalf("cycle %d: %d down epochs, want 1..%d", cycle, down, cfg.MaxCrashLen)
		}
		if transitions > 2 {
			t.Fatalf("cycle %d: down window not contiguous", cycle)
		}
	}
}

// TestBusSendCloseRace is the regression test for the send-on-closed-channel
// panic: Endpoint.Send used to release the bus lock before enqueuing, so a
// concurrent Bus.Close (which closes every inbox) made the enqueue panic.
// Run with -race.
func TestBusSendCloseRace(t *testing.T) {
	for round := 0; round < 50; round++ {
		bus := NewBus()
		ep, err := bus.Register("a")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := bus.Register("b"); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		start := make(chan struct{})
		for s := 0; s < 4; s++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for i := 0; i < 100; i++ {
					if err := ep.Send("b", "k", []byte("x")); err != nil {
						if !errors.Is(err, ErrClosed) {
							t.Errorf("send: %v", err)
						}
						return
					}
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			bus.Close()
		}()
		close(start)
		wg.Wait()
	}
}

func TestBusFaultInjectionDrops(t *testing.T) {
	cfg := FaultConfig{DropRate: 0.5}
	run := func() (delivered int, drops int64) {
		bus := NewBus()
		a, err := bus.Register("a")
		if err != nil {
			t.Fatal(err)
		}
		b, err := bus.Register("b")
		if err != nil {
			t.Fatal(err)
		}
		bus.InjectFaults(NewFaultPlan(3, cfg), obs.NewSimClock(0))
		for i := 0; i < 200; i++ {
			if err := a.Send("b", "k", []byte("x")); err != nil {
				t.Fatal(err)
			}
		}
		for {
			if _, ok := b.TryRecv(); !ok {
				break
			}
			delivered++
		}
		drops, _ = bus.Meter().Injected()
		return delivered, drops
	}
	d1, drops1 := run()
	d2, drops2 := run()
	if drops1 == 0 {
		t.Fatal("no injected drops at 50% drop rate")
	}
	if d1+int(drops1) != 200 {
		t.Fatalf("delivered %d + dropped %d != 200 sent", d1, drops1)
	}
	if d1 != d2 || drops1 != drops2 {
		t.Fatalf("same seed, different outcomes: (%d, %d) vs (%d, %d)", d1, drops1, d2, drops2)
	}
}

func TestBusFaultDelayAdvancesClock(t *testing.T) {
	bus := NewBus()
	a, err := bus.Register("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bus.Register("b"); err != nil {
		t.Fatal(err)
	}
	clock := obs.NewSimClock(time.Microsecond)
	before := clock.Now()
	bus.InjectFaults(NewFaultPlan(5, FaultConfig{DelayRate: 1, MaxDelay: time.Millisecond}), clock)
	for i := 0; i < 50; i++ {
		if err := a.Send("b", "k", nil); err != nil {
			t.Fatal(err)
		}
	}
	_, delays := bus.Meter().Injected()
	if delays == 0 {
		t.Fatal("no injected delays at 100% delay rate")
	}
	// 50 deliveries all delayed: logical time must have advanced well past
	// the two Now() readings' own ticks.
	if advanced := clock.Now() - before; advanced < int64(50*time.Microsecond) {
		t.Fatalf("clock advanced only %d ns across %d delayed sends", advanced, delays)
	}
}
