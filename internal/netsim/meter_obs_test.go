package netsim

import (
	"testing"

	"rpol/internal/obs"
)

func TestMeterDropAccounting(t *testing.T) {
	m := NewMeter()
	m.Record("a", "b", "k", 100)
	m.RecordDrop("a", "ghost", "k", 50)
	m.RecordDrop("a", "ghost", "k", -1) // clamped to 0 bytes, still one drop
	if got := m.Messages(); got != 1 {
		t.Errorf("Messages = %d, want 1", got)
	}
	if msgs, bytes := m.Dropped(); msgs != 2 || bytes != 50 {
		t.Errorf("Dropped = %d msgs, %d bytes; want 2 and 50", msgs, bytes)
	}
	// Dropped traffic must not pollute the delivered totals.
	if m.Total() != 100 {
		t.Errorf("Total = %d, want 100", m.Total())
	}
	m.Reset()
	if msgs, bytes := m.Dropped(); msgs != 0 || bytes != 0 || m.Messages() != 0 {
		t.Errorf("Reset left drops: %d msgs, %d bytes", msgs, bytes)
	}
}

func TestMeterAttachMirrorsToRegistry(t *testing.T) {
	m := NewMeter()
	reg := obs.NewRegistry()
	m.Attach(reg, "bus")
	m.Attach(nil, "ignored") // nil registry must not clear the counters
	m.Attach(reg, "bus")
	m.Record("a", "b", "k", 100)
	m.Record("a", "b", "k", 28)
	m.RecordDrop("a", "ghost", "k", 64)
	s := reg.Snapshot()
	if got := s.Counters["net_bus_bytes_total"]; got != 128 {
		t.Errorf("net_bus_bytes_total = %d", got)
	}
	if got := s.Counters["net_bus_messages_total"]; got != 2 {
		t.Errorf("net_bus_messages_total = %d", got)
	}
	if got := s.Counters["net_bus_dropped_total"]; got != 1 {
		t.Errorf("net_bus_dropped_total = %d", got)
	}
	if got := s.Counters["net_bus_dropped_bytes_total"]; got != 64 {
		t.Errorf("net_bus_dropped_bytes_total = %d", got)
	}
	// Meter.Reset leaves the cumulative obs counters alone.
	m.Reset()
	if got := reg.Counter("net_bus_bytes_total").Value(); got != 128 {
		t.Errorf("obs counter reset by Meter.Reset: %d", got)
	}
}

func TestBusFullInboxRecordsDrop(t *testing.T) {
	bus := NewBus()
	a, err := bus.Register("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bus.Register("sink"); err != nil {
		t.Fatal(err)
	}
	// Fill the sink's inbox (it never receives), then overflow it.
	for i := 0; i < busQueueDepth; i++ {
		if err := a.Send("sink", "k", nil); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if err := a.Send("sink", "k", nil); err == nil {
		t.Fatal("overflow send did not fail")
	}
	if msgs, bytes := bus.Meter().Dropped(); msgs != 1 || bytes != 64 {
		t.Errorf("Dropped = %d msgs, %d bytes; want 1 and 64", msgs, bytes)
	}
	if got := bus.Meter().Messages(); got != busQueueDepth {
		t.Errorf("Messages = %d, want %d", got, busQueueDepth)
	}
}

func TestTCPDropAccounting(t *testing.T) {
	hub := startHub(t)
	a := dial(t, hub, "a")
	b := dial(t, hub, "b")
	if err := a.Send("ghost", "x", nil); err != nil {
		t.Fatal(err)
	}
	// Synchronize on a routed follow-up: once b receives it, the ghost
	// frame has been through route() too.
	if err := a.Send("b", "y", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(); err != nil {
		t.Fatal(err)
	}
	if msgs, bytes := hub.Meter().Dropped(); msgs != 1 || bytes != 64 {
		t.Errorf("Dropped = %d msgs, %d bytes; want 1 and 64", msgs, bytes)
	}
}
