package netsim

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func startHub(t *testing.T) *TCPHub {
	t.Helper()
	hub, err := NewTCPHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(hub.Close)
	return hub
}

func dial(t *testing.T, hub *TCPHub, name string) *TCPEndpoint {
	t.Helper()
	ep, err := DialHub(hub.Addr(), name)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ep.Close() })
	return ep
}

func TestTCPSendRecv(t *testing.T) {
	hub := startHub(t)
	a := dial(t, hub, "manager")
	b := dial(t, hub, "worker-1")

	if err := a.Send("worker-1", "task", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	msg, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if msg.From != "manager" || msg.Kind != "task" || string(msg.Payload) != "payload" {
		t.Errorf("msg = %+v", msg)
	}
	// Reply path.
	if err := b.Send("manager", "result", []byte("done")); err != nil {
		t.Fatal(err)
	}
	reply, err := a.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if reply.From != "worker-1" || string(reply.Payload) != "done" {
		t.Errorf("reply = %+v", reply)
	}
}

func TestTCPSenderIsAuthenticated(t *testing.T) {
	// A client cannot spoof its From field: the hub overwrites it with the
	// registered name.
	hub := startHub(t)
	mallory := dial(t, hub, "mallory")
	victim := dial(t, hub, "victim")

	if err := mallory.writeMsg(Message{From: "manager", To: "victim", Kind: "task"}); err != nil {
		t.Fatal(err)
	}
	msg, err := victim.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if msg.From != "mallory" {
		t.Errorf("spoofed From accepted: %q", msg.From)
	}
}

func TestTCPMeter(t *testing.T) {
	hub := startHub(t)
	a := dial(t, hub, "a")
	b := dial(t, hub, "b")

	payload := make([]byte, 500)
	if err := a.Send("b", "weights", payload); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(); err != nil {
		t.Fatal(err)
	}
	// Each dial meters its two-frame registration handshake (register +
	// registered ack, 64 bytes apiece), on top of the 564-byte transfer.
	// Metering runs on the hub's relay goroutines, so wait for it with the
	// meter's condition-signalled wait rather than sleep-polling.
	const want = 2*2*64 + 564
	if got := hub.Meter().WaitTotal(want, 2*time.Second); got != want {
		t.Errorf("metered %d bytes, want %d", got, want)
	}
	if hub.Meter().SentBy("a") == 0 || hub.Meter().ReceivedBy("b") == 0 {
		t.Error("per-endpoint accounting missing")
	}
}

func TestTCPUnknownDestinationDropped(t *testing.T) {
	hub := startHub(t)
	a := dial(t, hub, "a")
	b := dial(t, hub, "b")
	if err := a.Send("ghost", "x", nil); err != nil {
		t.Fatal(err)
	}
	// The message to the unknown destination is dropped; a follow-up to a
	// real destination still arrives.
	if err := a.Send("b", "y", nil); err != nil {
		t.Fatal(err)
	}
	msg, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if msg.Kind != "y" {
		t.Errorf("got %q", msg.Kind)
	}
}

func TestTCPDuplicateNameRejected(t *testing.T) {
	hub := startHub(t)
	_ = dial(t, hub, "dup")
	second, err := DialHub(hub.Addr(), "dup")
	if err != nil {
		// Rejected at dial time is fine too.
		return
	}
	defer func() { _ = second.Close() }()
	// The hub closes the duplicate connection; Recv must fail promptly.
	done := make(chan error, 1)
	go func() {
		_, err := second.Recv()
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Error("duplicate registration delivered a message")
		}
	case <-time.After(2 * time.Second):
		t.Error("duplicate connection not closed")
	}
}

func TestTCPConcurrentClients(t *testing.T) {
	hub := startHub(t)
	const n = 8
	manager := dial(t, hub, "manager")

	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		name := string(rune('a' + i))
		ep := dial(t, hub, name)
		wg.Add(1)
		go func(ep *TCPEndpoint) {
			defer wg.Done()
			msg, err := ep.Recv()
			if err != nil {
				t.Errorf("%s recv: %v", ep.Name(), err)
				return
			}
			if err := ep.Send("manager", "ack", msg.Payload); err != nil {
				t.Errorf("%s send: %v", ep.Name(), err)
			}
		}(ep)
	}
	for i := 0; i < n; i++ {
		name := string(rune('a' + i))
		if err := manager.Send(name, "ping", []byte(name)); err != nil {
			t.Fatal(err)
		}
	}
	acks := map[string]bool{}
	for i := 0; i < n; i++ {
		msg, err := manager.Recv()
		if err != nil {
			t.Fatal(err)
		}
		acks[string(msg.Payload)] = true
	}
	wg.Wait()
	if len(acks) != n {
		t.Errorf("acks = %d, want %d", len(acks), n)
	}
}

func TestTCPDialValidation(t *testing.T) {
	hub := startHub(t)
	if _, err := DialHub(hub.Addr(), ""); err == nil {
		t.Error("want error for empty name")
	}
	if _, err := DialHub("127.0.0.1:1", "x"); err == nil {
		t.Error("want error for refused connection")
	}
}

func TestTCPCloseUnblocksClients(t *testing.T) {
	hub := startHub(t)
	ep := dial(t, hub, "lonely")
	done := make(chan error, 1)
	go func() {
		_, err := ep.Recv()
		done <- err
	}()
	hub.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Error("Recv returned a message after close")
		}
	case <-time.After(2 * time.Second):
		t.Error("Recv not unblocked by hub close")
	}
}

func TestFrameTooLargeRejected(t *testing.T) {
	// A corrupt length prefix must not cause a giant allocation.
	hub := startHub(t)
	ep := dial(t, hub, "x")
	// Write a bogus frame directly.
	e := ep
	e.writeMu.Lock()
	_, err := e.conn.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	e.writeMu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	// The hub drops the client; its Recv fails.
	done := make(chan error, 1)
	go func() {
		_, err := ep.Recv()
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Error("oversized frame tolerated")
		}
	case <-time.After(2 * time.Second):
		t.Error("client not dropped after oversized frame")
	}
	if errors.Is(nil, ErrFrameTooLarge) {
		t.Error("sanity")
	}
}
