package netsim

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"rpol/internal/obs"
)

// Message is one payload in flight on the Bus.
type Message struct {
	From    string
	To      string
	Kind    string // protocol message type, e.g. "commit", "proof-request"
	Payload []byte
	// Seq is the sender's request/response correlation number: the wire
	// layer stamps requests with a fresh Seq and workers echo it, so a
	// retrying caller can discard stale replies to earlier attempts. Zero
	// for callers that don't correlate.
	Seq uint64 `json:"seq,omitempty"`
}

// Size returns the accounted wire size of the message: payload plus a small
// fixed header, approximating a TLS record with framing.
func (m Message) Size() int64 { return int64(len(m.Payload)) + 64 }

// Bus is an in-memory, metered message fabric connecting named endpoints.
// It stands in for the TLS channels between the manager and workers; every
// delivered byte is recorded in the Meter.
type Bus struct {
	mu        sync.Mutex
	endpoints map[string]chan Message
	meter     *Meter
	closed    bool

	// Fault injection (nil plan = none). linkSeq orders each directed
	// link's messages so the plan's decisions are a pure function of the
	// link's own traffic, immune to cross-link interleaving.
	faults  *FaultPlan
	clock   obs.Clock
	linkSeq map[string]uint64
	events  *obs.Events
}

// publishFault mirrors an injected fault into a live event stream: the
// transport's explicit log if one was attached with StreamEvents, else the
// process-wide default observer's log. Unobserved transports pay only two
// nil checks on the (already rare) fault path.
func publishFault(events *obs.Events, what, msgKind, from, to string) {
	if events == nil {
		events = obs.Default().Events()
	}
	if events == nil {
		return
	}
	events.Publish(obs.StreamEvent{
		Kind:   obs.EventFaultInjected,
		Worker: to,
		Detail: what + " " + msgKind + " " + from + "->" + to,
	})
}

// Errors returned by Bus operations.
var (
	ErrUnknownEndpoint = errors.New("netsim: unknown endpoint")
	ErrDuplicate       = errors.New("netsim: endpoint already registered")
	ErrClosed          = errors.New("netsim: bus closed")
)

// busQueueDepth bounds each endpoint's in-flight messages. The pool protocol
// is strictly request/response per epoch, so the depth only needs to cover
// one round of fan-in from all peers.
const busQueueDepth = 1024

// NewBus returns an empty bus with a fresh meter.
func NewBus() *Bus {
	return &Bus{
		endpoints: make(map[string]chan Message),
		meter:     NewMeter(),
	}
}

// Meter returns the bus's byte meter.
func (b *Bus) Meter() *Meter { return b.meter }

// InjectFaults applies a deterministic fault plan to every subsequent Send.
// clock is the logical clock injected delays advance (typically the run's
// obs.SimClock); it may be nil, in which case delays are accounting-only.
// A nil plan restores fault-free delivery.
func (b *Bus) InjectFaults(plan *FaultPlan, clock obs.Clock) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.faults = plan
	b.clock = clock
	if plan != nil && b.linkSeq == nil {
		b.linkSeq = make(map[string]uint64)
	}
}

// Observe mirrors the bus's traffic into reg under net_bus_* counters.
func (b *Bus) Observe(reg *obs.Registry) { b.meter.Attach(reg, "bus") }

// StreamEvents mirrors injected faults into e as fault_injected events (in
// addition to the meter's counters). Nil falls back to the process-wide
// default observer's event log, if any.
func (b *Bus) StreamEvents(e *obs.Events) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.events = e
}

// Endpoint is one party's handle on the bus.
type Endpoint struct {
	bus   *Bus
	name  string
	inbox chan Message
}

// Register adds a named endpoint. Names must be unique.
func (b *Bus) Register(name string) (*Endpoint, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, ErrClosed
	}
	if _, ok := b.endpoints[name]; ok {
		return nil, fmt.Errorf("%s: %w", name, ErrDuplicate)
	}
	ch := make(chan Message, busQueueDepth)
	b.endpoints[name] = ch
	return &Endpoint{bus: b, name: name, inbox: ch}, nil
}

// Close shuts the bus down; subsequent sends fail and pending receivers
// drain then see closed inboxes.
func (b *Bus) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for _, ch := range b.endpoints {
		close(ch)
	}
}

// Name returns the endpoint's registered name.
func (e *Endpoint) Name() string { return e.name }

// Send delivers a message to the named endpoint and meters its size.
func (e *Endpoint) Send(to, kind string, payload []byte) error {
	return e.SendSeq(to, kind, 0, payload)
}

// SendSeq delivers a message carrying the given correlation number. The
// lock is held across the (non-blocking) enqueue exactly as TCPHub.route
// holds its own: a concurrent Close closes every inbox, so releasing the
// lock before the enqueue would race the close and panic the sender.
func (e *Endpoint) SendSeq(to, kind string, seq uint64, payload []byte) error {
	b := e.bus
	// Fault events publish only after the critical section: this defer is
	// registered before the Lock below, so LIFO ordering runs it after the
	// deferred Unlock, keeping the observer fan-out outside the lock.
	var pendingFaults []string
	defer func() {
		for _, what := range pendingFaults {
			publishFault(b.events, what, kind, e.name, to)
		}
	}()
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrClosed
	}
	ch, ok := b.endpoints[to]
	if !ok {
		return fmt.Errorf("%s: %w", to, ErrUnknownEndpoint)
	}
	msg := Message{From: e.name, To: to, Kind: kind, Payload: payload, Seq: seq}
	if b.faults != nil {
		link := e.name + "\x00" + to
		n := b.linkSeq[link]
		b.linkSeq[link] = n + 1
		fault := b.faults.Decide(e.name, to, n)
		if fault.Drop {
			// A real lossy network loses the packet silently: the sender
			// sees success and only the meter (and the receiver's silence)
			// records the loss.
			b.meter.RecordInjectedDrop(e.name, to, kind, msg.Size())
			pendingFaults = append(pendingFaults, "drop")
			return nil
		}
		if fault.Delay > 0 {
			b.meter.RecordInjectedDelay()
			pendingFaults = append(pendingFaults, "delay")
			if adv, ok := b.clock.(advancer); ok {
				adv.Advance(fault.Delay)
			}
		}
	}
	select {
	case ch <- msg:
		b.meter.Record(e.name, to, kind, msg.Size())
		return nil
	default:
		// The send fails loudly (error below) but the attempted bytes must
		// not vanish from the accounting either.
		b.meter.RecordDrop(e.name, to, kind, msg.Size())
		return fmt.Errorf("netsim: inbox of %s full", to)
	}
}

// Recv blocks until a message arrives or the bus closes.
func (e *Endpoint) Recv() (Message, error) {
	msg, ok := <-e.inbox
	if !ok {
		return Message{}, ErrClosed
	}
	return msg, nil
}

// TryRecv returns the next message if one is queued.
func (e *Endpoint) TryRecv() (Message, bool) {
	select {
	case msg, ok := <-e.inbox:
		if !ok {
			return Message{}, false
		}
		return msg, true
	default:
		return Message{}, false
	}
}

// Meter accumulates transferred bytes and message counts, grouped by
// endpoint and message kind, and tallies dropped traffic so no send path
// loses its size accounting silently. It is safe for concurrent use.
type Meter struct {
	mu           sync.Mutex
	sent         map[string]int64 // bytes by sender
	received     map[string]int64 // bytes by receiver
	byKind       map[string]int64
	total        int64
	messages     int64
	dropped      int64
	droppedBytes int64

	// Injected-fault tallies: losses and delays a FaultPlan caused, kept
	// separate from organic drops so a soak run can tell "the plan fired"
	// apart from "a queue overflowed".
	injectedDrops  int64
	injectedDelays int64

	// watch is closed (and replaced) on every recorded transfer while a
	// WaitTotal caller is parked; nil when nobody is waiting, so the hot
	// path pays one nil check.
	watch chan struct{}

	// Mirrored obs counters; nil until Attach.
	cBytes, cMsgs, cDropped, cDroppedBytes *obs.Counter
	cInjDrops, cInjDelays                  *obs.Counter
}

// NewMeter returns an empty meter.
func NewMeter() *Meter {
	return &Meter{
		sent:     make(map[string]int64),
		received: make(map[string]int64),
		byKind:   make(map[string]int64),
	}
}

// Attach mirrors the meter's totals into reg under the transport name:
// net_<transport>_bytes_total, net_<transport>_messages_total,
// net_<transport>_dropped_total, net_<transport>_dropped_bytes_total.
// Traffic recorded before Attach is not backfilled.
func (m *Meter) Attach(reg *obs.Registry, transport string) {
	if reg == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cBytes = reg.Counter("net_" + transport + "_bytes_total")
	m.cMsgs = reg.Counter("net_" + transport + "_messages_total")
	m.cDropped = reg.Counter("net_" + transport + "_dropped_total")
	m.cDroppedBytes = reg.Counter("net_" + transport + "_dropped_bytes_total")
	m.cInjDrops = reg.Counter("net_" + transport + "_injected_drops_total")
	m.cInjDelays = reg.Counter("net_" + transport + "_injected_delays_total")
}

// Record accounts one delivered transfer.
func (m *Meter) Record(from, to, kind string, bytes int64) {
	if bytes < 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sent[from] += bytes
	m.received[to] += bytes
	m.byKind[kind] += bytes
	m.total += bytes
	m.messages++
	m.signalLocked()
	m.cBytes.Add(bytes)
	m.cMsgs.Inc()
}

// signalLocked wakes WaitTotal callers; m.mu must be held.
func (m *Meter) signalLocked() {
	if m.watch != nil {
		close(m.watch)
		m.watch = nil
	}
}

// RecordDrop accounts one message that could not be delivered (unknown
// destination, full queue), so dropped traffic shows up in the accounting
// instead of vanishing.
func (m *Meter) RecordDrop(from, to, kind string, bytes int64) {
	if bytes < 0 {
		bytes = 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dropped++
	m.droppedBytes += bytes
	m.signalLocked()
	m.cDropped.Inc()
	m.cDroppedBytes.Add(bytes)
}

// RecordInjectedDrop accounts one message a FaultPlan lost in transit. The
// bytes flow into the same dropped accounting as organic drops (nothing
// vanishes silently), plus the injected tally.
func (m *Meter) RecordInjectedDrop(from, to, kind string, bytes int64) {
	if bytes < 0 {
		bytes = 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dropped++
	m.droppedBytes += bytes
	m.injectedDrops++
	m.signalLocked()
	m.cDropped.Inc()
	m.cDroppedBytes.Add(bytes)
	m.cInjDrops.Inc()
}

// RecordInjectedDelay accounts one delivery a FaultPlan delayed in transit.
func (m *Meter) RecordInjectedDelay() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.injectedDelays++
	m.cInjDelays.Inc()
}

// Injected returns the number of plan-injected drops and delays.
func (m *Meter) Injected() (drops, delays int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.injectedDrops, m.injectedDelays
}

// Total returns all bytes transferred.
func (m *Meter) Total() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.total
}

// WaitTotal blocks until the delivered byte total reaches at least min or
// timeout elapses, and returns the total at that moment. The wait is
// condition-signalled by Record, so callers (typically tests synchronizing
// on asynchronous delivery) wake the instant the traffic lands instead of
// sleep-polling.
func (m *Meter) WaitTotal(min int64, timeout time.Duration) int64 {
	//rpolvet:ignore nowallclock bounded wait for real-TCP delivery; the timeout never reaches protocol state
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	for {
		m.mu.Lock()
		if m.total >= min {
			t := m.total
			m.mu.Unlock()
			return t
		}
		if m.watch == nil {
			m.watch = make(chan struct{})
		}
		ch := m.watch
		m.mu.Unlock()
		select {
		case <-ch:
		case <-timer.C:
			m.mu.Lock()
			t := m.total
			m.mu.Unlock()
			return t
		}
	}
}

// SentBy returns the bytes sent by the named endpoint.
func (m *Meter) SentBy(name string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sent[name]
}

// ReceivedBy returns the bytes received by the named endpoint.
func (m *Meter) ReceivedBy(name string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.received[name]
}

// Messages returns the number of delivered messages.
func (m *Meter) Messages() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.messages
}

// Dropped returns the number of undeliverable messages and their bytes.
func (m *Meter) Dropped() (msgs, bytes int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dropped, m.droppedBytes
}

// ByKind returns a copy of the per-message-kind byte totals.
func (m *Meter) ByKind() map[string]int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int64, len(m.byKind))
	for k, v := range m.byKind {
		out[k] = v
	}
	return out
}

// Reset zeroes all counters (attached obs counters are cumulative and are
// left untouched — reset those through their registry).
func (m *Meter) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sent = make(map[string]int64)
	m.received = make(map[string]int64)
	m.byKind = make(map[string]int64)
	m.total = 0
	m.messages = 0
	m.dropped = 0
	m.droppedBytes = 0
	m.injectedDrops = 0
	m.injectedDelays = 0
}
