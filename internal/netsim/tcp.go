package netsim

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"rpol/internal/obs"
)

// TCPHub is a real-sockets counterpart to the in-memory Bus: a star-topology
// router that endpoints join over TCP. Each client registers a unique name
// and then exchanges the same Message frames as the Bus, with the hub
// routing by destination name and metering every delivered byte. It exists
// so the wire-level protocol (internal/wire) can be exercised over an
// actual network stack as well as in memory.
//
// Frame format: 4-byte big-endian length prefix followed by a binary
// Message body (see writeFrame; legacy JSON bodies are still decoded). The
// first frame a client sends is its registration: a Message whose Kind is
// "register" and whose From is the client's name.
type TCPHub struct {
	listener net.Listener
	meter    *Meter

	mu      sync.Mutex
	clients map[string]*hubClient
	closed  bool

	// Fault injection (nil plan = none); linkSeq orders each directed
	// link's routed messages for the plan's deterministic decisions.
	faults  *FaultPlan
	clock   obs.Clock
	linkSeq map[string]uint64
	events  *obs.Events

	wg sync.WaitGroup
}

type hubClient struct {
	name string
	conn net.Conn
	out  chan Message
}

// Reserved message kinds for the registration handshake.
const (
	KindRegister    = "register"
	KindRegistered  = "registered"
	KindRegisterErr = "register-error"
)

// maxFrameSize bounds a single frame to guard against corrupt length
// prefixes.
const maxFrameSize = 64 << 20

// ErrFrameTooLarge is returned when a peer announces an oversized frame.
var ErrFrameTooLarge = errors.New("netsim: frame too large")

// errBadFrame is returned when a frame body parses as neither the binary
// format nor legacy JSON.
var errBadFrame = errors.New("netsim: malformed frame")

// NewTCPHub starts a hub listening on addr (e.g. "127.0.0.1:0").
func NewTCPHub(addr string) (*TCPHub, error) {
	listener, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netsim hub: %w", err)
	}
	h := &TCPHub{
		listener: listener,
		meter:    NewMeter(),
		clients:  make(map[string]*hubClient),
	}
	h.wg.Add(1)
	go h.acceptLoop()
	return h, nil
}

// Addr returns the hub's listening address.
func (h *TCPHub) Addr() string { return h.listener.Addr().String() }

// Meter returns the hub's byte meter.
func (h *TCPHub) Meter() *Meter { return h.meter }

// Observe mirrors the hub's traffic into reg under net_tcp_* counters.
func (h *TCPHub) Observe(reg *obs.Registry) { h.meter.Attach(reg, "tcp") }

// StreamEvents mirrors injected faults into e as fault_injected events (in
// addition to the meter's counters). Nil falls back to the process-wide
// default observer's event log, if any.
func (h *TCPHub) StreamEvents(e *obs.Events) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.events = e
}

// InjectFaults applies a deterministic fault plan to every subsequently
// routed message (registration handshakes are exempt — a plan describes a
// faulty network, not a refusing hub). clock is the logical clock injected
// delays advance; nil makes delays accounting-only. A nil plan restores
// fault-free routing.
func (h *TCPHub) InjectFaults(plan *FaultPlan, clock obs.Clock) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.faults = plan
	h.clock = clock
	if plan != nil && h.linkSeq == nil {
		h.linkSeq = make(map[string]uint64)
	}
}

// Close shuts the hub and all client connections down and waits for its
// goroutines to exit.
func (h *TCPHub) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		h.wg.Wait()
		return
	}
	h.closed = true
	_ = h.listener.Close()
	for _, c := range h.clients {
		_ = c.conn.Close()
		close(c.out)
	}
	h.clients = make(map[string]*hubClient)
	h.mu.Unlock()
	h.wg.Wait()
}

func (h *TCPHub) acceptLoop() {
	defer h.wg.Done()
	for {
		conn, err := h.listener.Accept()
		if err != nil {
			return // listener closed
		}
		h.wg.Add(1)
		go h.serveConn(conn)
	}
}

// serveConn handles one client: registration, then routing its frames.
func (h *TCPHub) serveConn(conn net.Conn) {
	defer h.wg.Done()
	reader := bufio.NewReader(conn)
	reg, err := readFrame(reader)
	if err != nil || reg.Kind != KindRegister || reg.From == "" {
		_ = conn.Close()
		return
	}
	// The registration handshake is real traffic too: without this the
	// hub's accounting silently understates every connection by two frames.
	h.meter.Record(reg.From, "hub", KindRegister, reg.Size())
	client := &hubClient{name: reg.From, conn: conn, out: make(chan Message, busQueueDepth)}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		_ = conn.Close()
		return
	}
	if _, exists := h.clients[client.name]; exists {
		h.mu.Unlock()
		// Refuse the duplicate explicitly so the dialer fails fast.
		refusal := Message{To: reg.From, Kind: KindRegisterErr, Payload: []byte("name already registered")}
		w := bufio.NewWriter(conn)
		_ = writeFrame(w, refusal)
		_ = w.Flush()
		h.meter.Record("hub", reg.From, KindRegisterErr, refusal.Size())
		_ = conn.Close()
		return
	}
	h.clients[client.name] = client
	// Registration is acknowledged synchronously: the dialer blocks until
	// this ack arrives, so a message sent right after DialHub returns can
	// never race the hub's routing table. Enqueued under the lock so a
	// concurrent Close cannot close the queue first.
	ack := Message{To: client.name, Kind: KindRegistered}
	//rpolvet:ignore locksend the queue was created above with busQueueDepth capacity and is not yet visible to any other goroutine, so this send cannot block; the lock orders it before a concurrent Close can close the queue
	client.out <- ack
	h.meter.Record("hub", client.name, KindRegistered, ack.Size())
	h.mu.Unlock()

	// Writer: drain the client's outbound queue onto the socket.
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		w := bufio.NewWriter(conn)
		for msg := range client.out {
			if err := writeFrame(w, msg); err != nil {
				return
			}
			if err := w.Flush(); err != nil {
				return
			}
		}
	}()

	// Reader: route inbound frames until the connection drops.
	for {
		msg, err := readFrame(reader)
		if err != nil {
			break
		}
		msg.From = client.name // the hub authenticates the sender
		h.route(msg)
	}
	h.dropClient(client.name)
}

func (h *TCPHub) route(msg Message) {
	// Fault events publish only after the critical section: this defer is
	// registered before the Lock below, so LIFO ordering runs it after the
	// deferred Unlock, keeping the observer fan-out outside the lock.
	var pendingFaults []string
	defer func() {
		for _, what := range pendingFaults {
			publishFault(h.events, what, msg.Kind, msg.From, msg.To)
		}
	}()
	// The lock is held across the (non-blocking) enqueue so that a
	// concurrent dropClient cannot close the destination queue mid-send.
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.faults != nil {
		link := msg.From + "\x00" + msg.To
		n := h.linkSeq[link]
		h.linkSeq[link] = n + 1
		fault := h.faults.Decide(msg.From, msg.To, n)
		if fault.Drop {
			h.meter.RecordInjectedDrop(msg.From, msg.To, msg.Kind, msg.Size())
			pendingFaults = append(pendingFaults, "drop")
			return
		}
		if fault.Delay > 0 {
			h.meter.RecordInjectedDelay()
			pendingFaults = append(pendingFaults, "delay")
			if adv, ok := h.clock.(advancer); ok {
				adv.Advance(fault.Delay)
			}
		}
	}
	dst, ok := h.clients[msg.To]
	if !ok {
		// Unknown destination: drop (as a datagram fabric would), but keep
		// the bytes in the accounting.
		h.meter.RecordDrop(msg.From, msg.To, msg.Kind, msg.Size())
		return
	}
	select {
	case dst.out <- msg:
		h.meter.Record(msg.From, msg.To, msg.Kind, msg.Size())
	default:
		// Destination queue full: drop rather than block the router — but
		// never silently lose the size accounting.
		h.meter.RecordDrop(msg.From, msg.To, msg.Kind, msg.Size())
	}
}

func (h *TCPHub) dropClient(name string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	if c, ok := h.clients[name]; ok {
		delete(h.clients, name)
		_ = c.conn.Close()
		close(c.out)
	}
}

// Binary frame body format (after the 4-byte big-endian length prefix):
//
//	[0] magic 0xBF — distinct from '{' (0x7B), so readFrame can sniff the
//	    first body byte and fall back to the legacy JSON encoding
//	[1] version 1
//	from, to, kind as uvarint-length-prefixed strings, seq as uvarint,
//	then the payload as the remainder of the frame — written straight from
//	the caller's buffer and aliased out of the read buffer on receive, so a
//	bulky payload is never copied into an intermediate frame encoding (the
//	JSON format base64-expanded it by 4/3 and marshalled a full copy).
const (
	frameMagic   = 0xBF
	frameVersion = 1
)

func appendFrameString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func writeFrame(w io.Writer, msg Message) error {
	// Fast pre-check so the header below is never written for a frame that
	// cannot fit.
	if len(msg.Payload) > maxFrameSize {
		return fmt.Errorf("%d payload bytes: %w", len(msg.Payload), ErrFrameTooLarge)
	}
	hdr := make([]byte, 4, 64)
	hdr = append(hdr, frameMagic, frameVersion)
	hdr = appendFrameString(hdr, msg.From)
	hdr = appendFrameString(hdr, msg.To)
	hdr = appendFrameString(hdr, msg.Kind)
	hdr = binary.AppendUvarint(hdr, msg.Seq)
	// Reject oversized frames before writing a single byte: maxFrameSize is
	// well under math.MaxUint32, so this one check also rules out silently
	// truncating the uint32 length prefix — and because nothing has hit the
	// socket yet, the connection stays usable after the error.
	total := len(hdr) - 4 + len(msg.Payload)
	if total > maxFrameSize {
		return fmt.Errorf("%d bytes: %w", total, ErrFrameTooLarge)
	}
	binary.BigEndian.PutUint32(hdr[:4], uint32(total))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	if len(msg.Payload) == 0 {
		return nil
	}
	_, err := w.Write(msg.Payload)
	return err
}

func readFrame(r io.Reader) (Message, error) {
	var prefix [4]byte
	if _, err := io.ReadFull(r, prefix[:]); err != nil {
		return Message{}, err
	}
	size := binary.BigEndian.Uint32(prefix[:])
	if size > maxFrameSize {
		return Message{}, fmt.Errorf("%d bytes: %w", size, ErrFrameTooLarge)
	}
	data := make([]byte, size)
	if _, err := io.ReadFull(r, data); err != nil {
		return Message{}, err
	}
	if len(data) > 0 && data[0] == '{' {
		// Legacy JSON frame from a pre-binary peer.
		var msg Message
		if err := json.Unmarshal(data, &msg); err != nil {
			return Message{}, fmt.Errorf("netsim frame: %w", err)
		}
		return msg, nil
	}
	return decodeFrame(data)
}

// decodeFrame parses a binary frame body. The payload aliases data, which is
// freshly allocated per frame by readFrame.
func decodeFrame(data []byte) (Message, error) {
	if len(data) < 2 || data[0] != frameMagic {
		return Message{}, fmt.Errorf("netsim frame: unrecognized format: %w", errBadFrame)
	}
	if data[1] != frameVersion {
		return Message{}, fmt.Errorf("netsim frame: unsupported version %d: %w", data[1], errBadFrame)
	}
	off := 2
	next := func() (string, bool) {
		n, w := binary.Uvarint(data[off:])
		if w <= 0 || n > uint64(len(data)-off-w) {
			return "", false
		}
		off += w
		s := string(data[off : off+int(n)])
		off += int(n)
		return s, true
	}
	var msg Message
	var ok bool
	if msg.From, ok = next(); !ok {
		return Message{}, fmt.Errorf("netsim frame: truncated sender: %w", errBadFrame)
	}
	if msg.To, ok = next(); !ok {
		return Message{}, fmt.Errorf("netsim frame: truncated destination: %w", errBadFrame)
	}
	if msg.Kind, ok = next(); !ok {
		return Message{}, fmt.Errorf("netsim frame: truncated kind: %w", errBadFrame)
	}
	seq, w := binary.Uvarint(data[off:])
	if w <= 0 {
		return Message{}, fmt.Errorf("netsim frame: truncated seq: %w", errBadFrame)
	}
	msg.Seq = seq
	off += w
	if off < len(data) {
		msg.Payload = data[off:]
	}
	return msg, nil
}

// TCPEndpoint is a client connection to a TCPHub offering the same
// Send/Recv/TryRecv surface as the in-memory Endpoint. A background pump
// reads frames off the socket into a bounded inbox, which is what gives the
// endpoint a non-blocking TryRecv for deadline-driven callers.
type TCPEndpoint struct {
	name string
	conn net.Conn

	writeMu sync.Mutex
	writer  *bufio.Writer
	reader  *bufio.Reader

	inbox     chan Message
	done      chan struct{}
	closeOnce sync.Once
	readErr   error // set by the pump before it closes inbox
}

// DialHub connects to the hub at addr and registers under name.
func DialHub(addr, name string) (*TCPEndpoint, error) {
	if name == "" {
		return nil, errors.New("netsim: endpoint needs a name")
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netsim dial: %w", err)
	}
	ep := &TCPEndpoint{
		name:   name,
		conn:   conn,
		writer: bufio.NewWriter(conn),
		reader: bufio.NewReader(conn),
		inbox:  make(chan Message, busQueueDepth),
		done:   make(chan struct{}),
	}
	if err := ep.writeMsg(Message{From: name, Kind: KindRegister}); err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("netsim register: %w", err)
	}
	ack, err := readFrame(ep.reader)
	if err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("netsim register: %w", err)
	}
	if ack.Kind != KindRegistered {
		_ = conn.Close()
		return nil, fmt.Errorf("netsim register %q: %s", name, ack.Payload)
	}
	go ep.pump()
	return ep, nil
}

// pump moves frames from the socket into the inbox until the connection
// drops; the terminal error is published before the inbox closes (a close
// happens-before the receive that observes it, so readers need no lock).
func (e *TCPEndpoint) pump() {
	for {
		msg, err := readFrame(e.reader)
		if err != nil {
			e.readErr = err
			close(e.inbox)
			return
		}
		select {
		case e.inbox <- msg:
		case <-e.done:
			return
		}
	}
}

// Name returns the endpoint's registered name.
func (e *TCPEndpoint) Name() string { return e.name }

func (e *TCPEndpoint) writeMsg(msg Message) error {
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	if err := writeFrame(e.writer, msg); err != nil {
		return err
	}
	return e.writer.Flush()
}

// Send delivers a message through the hub.
func (e *TCPEndpoint) Send(to, kind string, payload []byte) error {
	return e.SendSeq(to, kind, 0, payload)
}

// SendSeq delivers a message carrying the given correlation number.
func (e *TCPEndpoint) SendSeq(to, kind string, seq uint64, payload []byte) error {
	return e.writeMsg(Message{From: e.name, To: to, Kind: kind, Payload: payload, Seq: seq})
}

// SendSerializes marks that Send/SendSeq fully serialize the payload onto
// the socket (under writeMu) before returning, so callers may reuse their
// payload buffer for the next message.
func (e *TCPEndpoint) SendSerializes() {}

// Recv blocks until a message arrives or the connection closes.
func (e *TCPEndpoint) Recv() (Message, error) {
	msg, ok := <-e.inbox
	if !ok {
		return Message{}, fmt.Errorf("netsim recv: %w", e.readErr)
	}
	return msg, nil
}

// TryRecv returns the next message if one is queued.
func (e *TCPEndpoint) TryRecv() (Message, bool) {
	select {
	case msg, ok := <-e.inbox:
		if !ok {
			return Message{}, false
		}
		return msg, true
	default:
		return Message{}, false
	}
}

// Close terminates the connection.
func (e *TCPEndpoint) Close() error {
	e.closeOnce.Do(func() { close(e.done) })
	return e.conn.Close()
}
