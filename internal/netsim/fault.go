package netsim

import (
	"encoding/binary"
	"hash/fnv"
	"sync/atomic"
	"time"
)

// FaultPlan is a deterministic fault-injection schedule for the message
// fabrics: per-link drop, delay, and partition decisions, plus per-worker
// crash-restart windows. Every decision is a pure function of (seed, link or
// worker identity, ordinal), never of arrival order, goroutine scheduling,
// or the wall clock — so two runs with the same seed replay the exact same
// fault sequence bit-identically, which is what lets the protocol's
// fault-tolerance tests assert identical EpochStats across replays.
//
// A nil *FaultPlan is valid and injects nothing; every method is nil-safe,
// so the fabrics pay a single pointer check on the fault-free path.
type FaultPlan struct {
	seed int64
	cfg  FaultConfig
}

// FaultConfig parameterizes a FaultPlan. Rates are probabilities in [0, 1];
// a zero config injects nothing even with a non-zero seed.
type FaultConfig struct {
	// DropRate is the per-message probability that a delivery is silently
	// lost in transit (the sender sees success, as on a real lossy network;
	// the loss is visible only through the meter and the receiver's silence).
	DropRate float64
	// DelayRate is the fraction of deliveries that incur injected transit
	// delay; the delay advances the fabric's logical clock, consuming the
	// caller's retry deadline budget.
	DelayRate float64
	// MaxDelay bounds one injected transit delay. The actual delay of a
	// delayed message is a deterministic value in (0, MaxDelay].
	MaxDelay time.Duration
	// PartitionRate is the per-(link, window) probability that a link is
	// partitioned for a whole window of PartitionWindow messages; partitioned
	// links drop everything.
	PartitionRate float64
	// PartitionWindow is the number of consecutive messages on a link that
	// share one partition decision (default 64).
	PartitionWindow uint64
	// CrashRate is the per-(worker, cycle) probability that the worker
	// crashes during a cycle of CrashPeriod epochs.
	CrashRate float64
	// CrashPeriod is the length, in epochs, of one crash-decision cycle
	// (default 4).
	CrashPeriod uint64
	// MaxCrashLen bounds one crash-restart window, in epochs (default 2):
	// a crashed worker is absent for 1..MaxCrashLen consecutive epochs of
	// its cycle and then restarts.
	MaxCrashLen uint64
}

// DefaultFaultConfig is the moderate fault mix the -faultseed flag applies:
// a few percent of messages lost or delayed, occasional short partitions,
// and workers that crash for an epoch or two within every four-epoch cycle
// about a quarter of the time.
func DefaultFaultConfig() FaultConfig {
	return FaultConfig{
		DropRate:        0.05,
		DelayRate:       0.10,
		MaxDelay:        5 * time.Millisecond,
		PartitionRate:   0.02,
		PartitionWindow: 64,
		CrashRate:       0.25,
		CrashPeriod:     4,
		MaxCrashLen:     2,
	}
}

// NewFaultPlan derives a plan from the seed. The same (seed, cfg) always
// yields the same schedule.
func NewFaultPlan(seed int64, cfg FaultConfig) *FaultPlan {
	if cfg.PartitionWindow == 0 {
		cfg.PartitionWindow = 64
	}
	if cfg.CrashPeriod == 0 {
		cfg.CrashPeriod = 4
	}
	if cfg.MaxCrashLen == 0 {
		cfg.MaxCrashLen = 2
	}
	if cfg.MaxCrashLen > cfg.CrashPeriod {
		cfg.MaxCrashLen = cfg.CrashPeriod
	}
	return &FaultPlan{seed: seed, cfg: cfg}
}

// Seed returns the seed the plan was derived from.
func (p *FaultPlan) Seed() int64 {
	if p == nil {
		return 0
	}
	return p.seed
}

// Fault is one delivery's injected behaviour.
type Fault struct {
	// Drop loses the message in transit.
	Drop bool
	// Delay is the injected transit time (zero when not delayed).
	Delay time.Duration
}

// Decide returns the fault injected into the seq-th message on the from→to
// link: a partition- or loss-induced drop, an injected delay, or nothing.
// seq must be a per-link ordinal maintained by the fabric; given the fabric
// delivers each link's messages in a deterministic order, the whole fault
// sequence replays identically.
func (p *FaultPlan) Decide(from, to string, seq uint64) Fault {
	if p == nil {
		return Fault{}
	}
	if p.cfg.PartitionRate > 0 &&
		p.uniform("partition", from, to, seq/p.cfg.PartitionWindow) < p.cfg.PartitionRate {
		return Fault{Drop: true}
	}
	if p.cfg.DropRate > 0 && p.uniform("drop", from, to, seq) < p.cfg.DropRate {
		return Fault{Drop: true}
	}
	if p.cfg.DelayRate > 0 && p.cfg.MaxDelay > 0 &&
		p.uniform("delay", from, to, seq) < p.cfg.DelayRate {
		frac := p.uniform("delay-len", from, to, seq)
		d := time.Duration(frac * float64(p.cfg.MaxDelay))
		if d <= 0 {
			d = time.Nanosecond
		}
		return Fault{Delay: d}
	}
	return Fault{}
}

// WorkerDown reports whether the plan's crash-restart schedule has worker id
// down for the whole of epoch e. Epochs are grouped into cycles of
// CrashPeriod; a crashed cycle knocks the worker out for a deterministic
// window of 1..MaxCrashLen epochs within it, after which it restarts.
func (p *FaultPlan) WorkerDown(id string, epoch int) bool {
	if p == nil || p.cfg.CrashRate <= 0 || epoch < 0 {
		return false
	}
	cycle := uint64(epoch) / p.cfg.CrashPeriod
	if p.uniform("crash", id, "", cycle) >= p.cfg.CrashRate {
		return false
	}
	start := p.hash("crash-start", id, "", cycle) % p.cfg.CrashPeriod
	length := 1 + p.hash("crash-len", id, "", cycle)%p.cfg.MaxCrashLen
	offset := uint64(epoch) % p.cfg.CrashPeriod
	return offset >= start && offset < start+length
}

// hash mixes the seed with the decision's identity into 64 uniform bits.
func (p *FaultPlan) hash(kind, a, b string, n uint64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(p.seed))
	_, _ = h.Write(buf[:])
	_, _ = h.Write([]byte(kind))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(a))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(b))
	_, _ = h.Write([]byte{0})
	binary.BigEndian.PutUint64(buf[:], n)
	_, _ = h.Write(buf[:])
	return splitmix64(h.Sum64())
}

// uniform maps a decision's hash to [0, 1).
func (p *FaultPlan) uniform(kind, a, b string, n uint64) float64 {
	return float64(p.hash(kind, a, b, n)>>11) / float64(uint64(1)<<53)
}

// splitmix64 is the finalizer of the SplitMix64 generator: a strong 64-bit
// mix that decorrelates the structured FNV input.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// defaultFaultPlan is the process-wide fallback plan, installed by the
// -faultseed flag (mirroring parallel.SetDefaultWorkers for -jobs) so pools
// constructed deep inside experiment runners pick it up without threading a
// plan through every options struct. It starts nil: no faults.
var defaultFaultPlan atomic.Pointer[FaultPlan]

// DefaultFaultPlan returns the process-wide plan, nil when none installed.
func DefaultFaultPlan() *FaultPlan { return defaultFaultPlan.Load() }

// SetDefaultFaultPlan installs the process-wide plan; nil disables it.
func SetDefaultFaultPlan(p *FaultPlan) { defaultFaultPlan.Store(p) }

// advancer is the optional clock surface injected delays act on: the fabric
// moves logical time forward by the transit delay, so deadline-bounded
// callers consume their budget deterministically. obs.SimClock implements
// it; clocks that don't are left untouched (the delay is then accounting
// only).
type advancer interface {
	Advance(d time.Duration)
}
