// Package netsim models the wide-area network of the paper's evaluation
// (one pool manager on a 10 Gbps link, workers on 100 Mbps links,
// Sec. VII-E) and meters every byte the protocol moves.
//
// Two layers are provided:
//
//   - a closed-form cost model (TransferTime, FanOutTime, FanInTime) used by
//     the Table II/III epoch-time and overhead calculations at paper scale,
//   - an in-memory message Bus with per-endpoint byte metering used by the
//     runnable pool simulation, so measured traffic and modelled traffic can
//     be cross-checked.
package netsim

import (
	"errors"
	"time"
)

// LinkSpec is a duplex link capacity in bits per second.
type LinkSpec struct {
	UpBps   float64
	DownBps float64
}

// The paper's evaluation links (Sec. VII-E).
var (
	// ManagerLink is the pool manager's 10 Gbps connection.
	ManagerLink = LinkSpec{UpBps: 10e9, DownBps: 10e9}
	// WorkerLink is each pool worker's 100 Mbps connection.
	WorkerLink = LinkSpec{UpBps: 100e6, DownBps: 100e6}
)

// ErrBadLink is returned for non-positive link capacities.
var ErrBadLink = errors.New("netsim: link capacity must be positive")

// TransferTime returns the time to move payloadBytes from a sender with
// uplink senderUpBps to a receiver with downlink receiverDownBps: the
// bottleneck link governs.
func TransferTime(payloadBytes int64, senderUpBps, receiverDownBps float64) (time.Duration, error) {
	if senderUpBps <= 0 || receiverDownBps <= 0 {
		return 0, ErrBadLink
	}
	if payloadBytes <= 0 {
		return 0, nil
	}
	bps := senderUpBps
	if receiverDownBps < bps {
		bps = receiverDownBps
	}
	seconds := float64(payloadBytes) * 8 / bps
	return time.Duration(seconds * float64(time.Second)), nil
}

// FanOutTime returns the time for the manager to send a distinct payload of
// bytesEach to each of n workers. The manager's uplink carries n·bytesEach
// in aggregate; each worker's downlink carries bytesEach. Transfers overlap,
// so the slower of the two constraints governs.
func FanOutTime(n int, bytesEach int64, manager, worker LinkSpec) (time.Duration, error) {
	if manager.UpBps <= 0 || worker.DownBps <= 0 {
		return 0, ErrBadLink
	}
	if n <= 0 || bytesEach <= 0 {
		return 0, nil
	}
	aggregate := float64(n) * float64(bytesEach) * 8 / manager.UpBps
	perWorker := float64(bytesEach) * 8 / worker.DownBps
	seconds := aggregate
	if perWorker > seconds {
		seconds = perWorker
	}
	return time.Duration(seconds * float64(time.Second)), nil
}

// FanInTime returns the time for n workers to upload bytesEach to the
// manager, symmetric to FanOutTime.
func FanInTime(n int, bytesEach int64, manager, worker LinkSpec) (time.Duration, error) {
	if manager.DownBps <= 0 || worker.UpBps <= 0 {
		return 0, ErrBadLink
	}
	if n <= 0 || bytesEach <= 0 {
		return 0, nil
	}
	aggregate := float64(n) * float64(bytesEach) * 8 / manager.DownBps
	perWorker := float64(bytesEach) * 8 / worker.UpBps
	seconds := aggregate
	if perWorker > seconds {
		seconds = perWorker
	}
	return time.Duration(seconds * float64(time.Second)), nil
}
