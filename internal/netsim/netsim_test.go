package netsim

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestTransferTimeBottleneck(t *testing.T) {
	// 100 MB over a 100 Mbps bottleneck = 8 s.
	got, err := TransferTime(100_000_000, 10e9, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	want := 8 * time.Second
	if got < want-time.Millisecond || got > want+time.Millisecond {
		t.Errorf("TransferTime = %v, want %v", got, want)
	}
	// Direction of the bottleneck must not matter.
	rev, err := TransferTime(100_000_000, 100e6, 10e9)
	if err != nil {
		t.Fatal(err)
	}
	if rev != got {
		t.Errorf("asymmetric bottleneck: %v vs %v", rev, got)
	}
}

func TestTransferTimeEdge(t *testing.T) {
	if _, err := TransferTime(1, 0, 1); !errors.Is(err, ErrBadLink) {
		t.Errorf("err = %v", err)
	}
	got, err := TransferTime(0, 1e6, 1e6)
	if err != nil || got != 0 {
		t.Errorf("zero bytes: %v, %v", got, err)
	}
}

func TestFanOutSmallPoolWorkerBound(t *testing.T) {
	// 10 workers × 90.7 MB through a 10 Gbps manager uplink = 0.73 s
	// aggregate, but each worker's 100 Mbps downlink needs 7.26 s — the
	// worker link governs.
	got, err := FanOutTime(10, 90_700_000, ManagerLink, WorkerLink)
	if err != nil {
		t.Fatal(err)
	}
	want := time.Duration(90_700_000 * 8 / 100e6 * float64(time.Second))
	if got < want-10*time.Millisecond || got > want+10*time.Millisecond {
		t.Errorf("FanOut = %v, want ≈ %v", got, want)
	}
}

func TestFanOutLargePoolManagerBound(t *testing.T) {
	// 1000 workers × 90.7 MB = 90.7 GB through 10 Gbps = 72.6 s aggregate,
	// exceeding the per-worker 7.26 s — the manager uplink governs.
	got, err := FanOutTime(1000, 90_700_000, ManagerLink, WorkerLink)
	if err != nil {
		t.Fatal(err)
	}
	aggregate := time.Duration(1000 * 90_700_000 * 8 / 10e9 * float64(time.Second))
	if got < aggregate-100*time.Millisecond || got > aggregate+100*time.Millisecond {
		t.Errorf("FanOut = %v, want ≈ %v", got, aggregate)
	}
}

func TestFanInMirrorsFanOut(t *testing.T) {
	out, err := FanOutTime(10, 1_000_000, ManagerLink, WorkerLink)
	if err != nil {
		t.Fatal(err)
	}
	in, err := FanInTime(10, 1_000_000, ManagerLink, WorkerLink)
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("symmetric links must give equal times: %v vs %v", out, in)
	}
}

func TestFanEdgeCases(t *testing.T) {
	if _, err := FanOutTime(1, 1, LinkSpec{}, WorkerLink); !errors.Is(err, ErrBadLink) {
		t.Errorf("err = %v", err)
	}
	if _, err := FanInTime(1, 1, ManagerLink, LinkSpec{}); !errors.Is(err, ErrBadLink) {
		t.Errorf("err = %v", err)
	}
	if got, err := FanOutTime(0, 100, ManagerLink, WorkerLink); err != nil || got != 0 {
		t.Errorf("n=0: %v, %v", got, err)
	}
}

func TestBusSendRecv(t *testing.T) {
	bus := NewBus()
	a, err := bus.Register("manager")
	if err != nil {
		t.Fatal(err)
	}
	b, err := bus.Register("worker-1")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send("worker-1", "model", []byte("weights")); err != nil {
		t.Fatal(err)
	}
	msg, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if msg.From != "manager" || msg.Kind != "model" || string(msg.Payload) != "weights" {
		t.Errorf("msg = %+v", msg)
	}
}

func TestBusUnknownAndDuplicate(t *testing.T) {
	bus := NewBus()
	a, err := bus.Register("a")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send("ghost", "x", nil); !errors.Is(err, ErrUnknownEndpoint) {
		t.Errorf("err = %v", err)
	}
	if _, err := bus.Register("a"); !errors.Is(err, ErrDuplicate) {
		t.Errorf("err = %v", err)
	}
}

func TestBusClose(t *testing.T) {
	bus := NewBus()
	a, err := bus.Register("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := bus.Register("b")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	var recvErr error
	go func() {
		defer wg.Done()
		_, recvErr = b.Recv()
	}()
	bus.Close()
	wg.Wait()
	if !errors.Is(recvErr, ErrClosed) {
		t.Errorf("Recv after close = %v", recvErr)
	}
	if err := a.Send("b", "x", nil); !errors.Is(err, ErrClosed) {
		t.Errorf("Send after close = %v", err)
	}
	if _, err := bus.Register("c"); !errors.Is(err, ErrClosed) {
		t.Errorf("Register after close = %v", err)
	}
	bus.Close() // double close must not panic
}

func TestBusTryRecv(t *testing.T) {
	bus := NewBus()
	a, err := bus.Register("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := bus.Register("b")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := b.TryRecv(); ok {
		t.Error("TryRecv on empty inbox must return false")
	}
	if err := a.Send("b", "x", []byte{1}); err != nil {
		t.Fatal(err)
	}
	if msg, ok := b.TryRecv(); !ok || msg.Kind != "x" {
		t.Errorf("TryRecv = %+v, %v", msg, ok)
	}
}

func TestMeterAccounting(t *testing.T) {
	bus := NewBus()
	a, err := bus.Register("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bus.Register("b"); err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 1000)
	if err := a.Send("b", "weights", payload); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", "digest", payload[:100]); err != nil {
		t.Fatal(err)
	}
	m := bus.Meter()
	if m.Total() != 1064+164 {
		t.Errorf("Total = %d", m.Total())
	}
	if m.SentBy("a") != m.Total() {
		t.Errorf("SentBy(a) = %d", m.SentBy("a"))
	}
	if m.ReceivedBy("b") != m.Total() {
		t.Errorf("ReceivedBy(b) = %d", m.ReceivedBy("b"))
	}
	byKind := m.ByKind()
	if byKind["weights"] != 1064 || byKind["digest"] != 164 {
		t.Errorf("ByKind = %v", byKind)
	}
	m.Reset()
	if m.Total() != 0 || m.SentBy("a") != 0 {
		t.Error("Reset did not clear counters")
	}
}

func TestMeterConcurrentSafety(t *testing.T) {
	m := NewMeter()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				m.Record("x", "y", "k", 10)
			}
		}()
	}
	wg.Wait()
	if m.Total() != 8000 {
		t.Errorf("Total = %d, want 8000", m.Total())
	}
}

func TestMeterIgnoresNonPositive(t *testing.T) {
	m := NewMeter()
	m.Record("a", "b", "k", 0)
	m.Record("a", "b", "k", -5)
	if m.Total() != 0 {
		t.Errorf("Total = %d", m.Total())
	}
}

func TestMeterWaitTotal(t *testing.T) {
	m := NewMeter()
	m.Record("a", "b", "k", 100)
	// Already satisfied: returns immediately without arming the watch.
	if got := m.WaitTotal(100, time.Second); got != 100 {
		t.Errorf("WaitTotal = %d, want 100", got)
	}

	// A parked waiter wakes the instant the threshold lands.
	done := make(chan int64, 1)
	go func() { done <- m.WaitTotal(250, 5*time.Second) }()
	m.Record("a", "b", "k", 50)  // wakes, re-parks: still below threshold
	m.Record("a", "b", "k", 100) // crosses 250
	select {
	case got := <-done:
		if got < 250 {
			t.Errorf("WaitTotal woke at %d, want >= 250", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitTotal never woke")
	}

	// Timeout path: returns the current (insufficient) total.
	if got := m.WaitTotal(1<<40, 10*time.Millisecond); got != 250 {
		t.Errorf("timed-out WaitTotal = %d, want 250", got)
	}
}
