// Package checkpoint provides the storage layer for a worker's training
// proofs. A pool worker must retain every checkpoint of the current epoch
// until verification completes (the paper bills this at ~4.5 GB per
// ResNet50 worker, Table III); this package offers an in-memory store for
// simulations and a disk-backed store whose files round-trip through the
// exact wire encoding, so opening a stored checkpoint during verification
// is bit-identical to opening a live one.
package checkpoint

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"

	"rpol/internal/fsio"
	"rpol/internal/tensor"
)

// Store persists the checkpoints of one epoch, addressed by index.
type Store interface {
	// Put saves the snapshot at idx, overwriting any previous value.
	Put(idx int, w tensor.Vector) error
	// Get returns the snapshot at idx.
	Get(idx int) (tensor.Vector, error)
	// Len returns the number of stored snapshots.
	Len() int
	// Bytes returns the storage consumed, in bytes.
	Bytes() int64
	// Clear removes all snapshots (called when a new epoch begins).
	Clear() error
}

// Errors returned by stores.
var (
	ErrNotFound = errors.New("checkpoint: not found")
	ErrBadIndex = errors.New("checkpoint: negative index")
	// ErrCorruptCheckpoint marks a stored snapshot whose bytes fail the
	// checksum or do not decode: a torn write, a bit flip, or truncation.
	// Callers fall back to an earlier intact checkpoint instead of feeding
	// garbage weights into training or verification.
	ErrCorruptCheckpoint = errors.New("checkpoint: corrupt snapshot")
)

// MemoryStore keeps snapshots in process memory.
type MemoryStore struct {
	snaps map[int]tensor.Vector
}

var _ Store = (*MemoryStore)(nil)

// NewMemoryStore returns an empty in-memory store.
func NewMemoryStore() *MemoryStore {
	return &MemoryStore{snaps: make(map[int]tensor.Vector)}
}

// Put saves a copy of the snapshot.
func (s *MemoryStore) Put(idx int, w tensor.Vector) error {
	if idx < 0 {
		return fmt.Errorf("index %d: %w", idx, ErrBadIndex)
	}
	s.snaps[idx] = w.Clone()
	return nil
}

// Get returns a copy of the snapshot at idx.
func (s *MemoryStore) Get(idx int) (tensor.Vector, error) {
	w, ok := s.snaps[idx]
	if !ok {
		return nil, fmt.Errorf("index %d: %w", idx, ErrNotFound)
	}
	return w.Clone(), nil
}

// Len returns the number of stored snapshots.
func (s *MemoryStore) Len() int { return len(s.snaps) }

// Bytes returns the in-memory footprint at wire-encoding size.
func (s *MemoryStore) Bytes() int64 {
	var total int64
	//rpolvet:ignore maporder commutative sum over values; iteration order never reaches a hash or encoder
	for _, w := range s.snaps {
		total += int64(tensor.EncodedSize(len(w)))
	}
	return total
}

// Clear removes all snapshots.
func (s *MemoryStore) Clear() error {
	s.snaps = make(map[int]tensor.Vector)
	return nil
}

// DiskStore persists snapshots as one file per checkpoint under a
// directory. Each file is a checksummed fsio frame around the canonical
// wire encoding, written atomically (temp file + rename), so a crash
// mid-Put leaves the previous snapshot rather than a torn hybrid and Get
// detects any corruption instead of decoding garbage weights. Files
// written before the framed format (raw wire encoding) still load.
//
// Put reuses internal encode buffers under a mutex (checkpoints land every
// interval, and re-encoding a full weight vector per Put doubled the
// write's allocation cost), so concurrent Puts and Gets are safe.
type DiskStore struct {
	fs  fsio.FS
	dir string

	mu      sync.Mutex
	encBuf  []byte // wire-encoded payload scratch
	fileBuf []byte // framed file scratch
}

var _ Store = (*DiskStore)(nil)

// NewDiskStore creates (if needed) and uses the given directory on the
// production filesystem.
func NewDiskStore(dir string) (*DiskStore, error) {
	return NewDiskStoreFS(fsio.OS, dir)
}

// NewDiskStoreFS is NewDiskStore over an injected filesystem (fault
// injection in crash-recovery tests).
func NewDiskStoreFS(fs fsio.FS, dir string) (*DiskStore, error) {
	if err := fs.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("checkpoint dir: %w", err)
	}
	return &DiskStore{fs: fs, dir: dir}, nil
}

// Dir returns the backing directory.
func (s *DiskStore) Dir() string { return s.dir }

func (s *DiskStore) path(idx int) string {
	return filepath.Join(s.dir, "ckpt-"+strconv.Itoa(idx)+".bin")
}

// Put atomically writes the snapshot's checksummed wire encoding to disk.
func (s *DiskStore) Put(idx int, w tensor.Vector) error {
	if idx < 0 {
		return fmt.Errorf("index %d: %w", idx, ErrBadIndex)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.encBuf = w.AppendEncode(s.encBuf[:0])
	s.fileBuf = fsio.AppendFile(s.fileBuf[:0], s.encBuf)
	if err := s.fs.WriteFileAtomic(s.path(idx), s.fileBuf); err != nil {
		return fmt.Errorf("checkpoint put %d: %w", idx, err)
	}
	return nil
}

// Get reads, verifies, and decodes the snapshot from disk. Corrupt or torn
// files fail with ErrCorruptCheckpoint.
func (s *DiskStore) Get(idx int) (tensor.Vector, error) {
	data, err := s.fs.ReadFile(s.path(idx))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("index %d: %w", idx, ErrNotFound)
	}
	if err != nil {
		return nil, fmt.Errorf("checkpoint get %d: %w", idx, err)
	}
	payload, _, err := fsio.DecodeFile(data)
	if err != nil {
		return nil, fmt.Errorf("checkpoint get %d: %v: %w", idx, err, ErrCorruptCheckpoint)
	}
	w, err := tensor.DecodeVector(payload)
	if err != nil {
		return nil, fmt.Errorf("checkpoint get %d: %v: %w", idx, err, ErrCorruptCheckpoint)
	}
	return w, nil
}

// list returns the stored checkpoint files.
func (s *DiskStore) list() ([]string, error) {
	names, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, name := range names {
		if filepath.Ext(name) == ".bin" {
			files = append(files, filepath.Join(s.dir, name))
		}
	}
	sort.Strings(files)
	return files, nil
}

// Len returns the number of stored snapshots.
func (s *DiskStore) Len() int {
	files, err := s.list()
	if err != nil {
		return 0
	}
	return len(files)
}

// Bytes returns the on-disk footprint (framing overhead included).
func (s *DiskStore) Bytes() int64 {
	files, err := s.list()
	if err != nil {
		return 0
	}
	var total int64
	for _, f := range files {
		if size, err := s.fs.Size(f); err == nil {
			total += size
		}
	}
	return total
}

// Clear deletes all snapshot files.
func (s *DiskStore) Clear() error {
	files, err := s.list()
	if err != nil {
		return fmt.Errorf("checkpoint clear: %w", err)
	}
	for _, f := range files {
		if err := s.fs.Remove(f); err != nil {
			return fmt.Errorf("checkpoint clear: %w", err)
		}
	}
	return nil
}
