// Package checkpoint provides the storage layer for a worker's training
// proofs. A pool worker must retain every checkpoint of the current epoch
// until verification completes (the paper bills this at ~4.5 GB per
// ResNet50 worker, Table III); this package offers an in-memory store for
// simulations and a disk-backed store whose files round-trip through the
// exact wire encoding, so opening a stored checkpoint during verification
// is bit-identical to opening a live one.
package checkpoint

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"

	"rpol/internal/tensor"
)

// Store persists the checkpoints of one epoch, addressed by index.
type Store interface {
	// Put saves the snapshot at idx, overwriting any previous value.
	Put(idx int, w tensor.Vector) error
	// Get returns the snapshot at idx.
	Get(idx int) (tensor.Vector, error)
	// Len returns the number of stored snapshots.
	Len() int
	// Bytes returns the storage consumed, in bytes.
	Bytes() int64
	// Clear removes all snapshots (called when a new epoch begins).
	Clear() error
}

// Errors returned by stores.
var (
	ErrNotFound = errors.New("checkpoint: not found")
	ErrBadIndex = errors.New("checkpoint: negative index")
)

// MemoryStore keeps snapshots in process memory.
type MemoryStore struct {
	snaps map[int]tensor.Vector
}

var _ Store = (*MemoryStore)(nil)

// NewMemoryStore returns an empty in-memory store.
func NewMemoryStore() *MemoryStore {
	return &MemoryStore{snaps: make(map[int]tensor.Vector)}
}

// Put saves a copy of the snapshot.
func (s *MemoryStore) Put(idx int, w tensor.Vector) error {
	if idx < 0 {
		return fmt.Errorf("index %d: %w", idx, ErrBadIndex)
	}
	s.snaps[idx] = w.Clone()
	return nil
}

// Get returns a copy of the snapshot at idx.
func (s *MemoryStore) Get(idx int) (tensor.Vector, error) {
	w, ok := s.snaps[idx]
	if !ok {
		return nil, fmt.Errorf("index %d: %w", idx, ErrNotFound)
	}
	return w.Clone(), nil
}

// Len returns the number of stored snapshots.
func (s *MemoryStore) Len() int { return len(s.snaps) }

// Bytes returns the in-memory footprint at wire-encoding size.
func (s *MemoryStore) Bytes() int64 {
	var total int64
	//rpolvet:ignore maporder commutative sum over values; iteration order never reaches a hash or encoder
	for _, w := range s.snaps {
		total += int64(tensor.EncodedSize(len(w)))
	}
	return total
}

// Clear removes all snapshots.
func (s *MemoryStore) Clear() error {
	s.snaps = make(map[int]tensor.Vector)
	return nil
}

// DiskStore persists snapshots as one file per checkpoint under a
// directory, using the canonical wire encoding.
//
// Put reuses an internal encode buffer (checkpoints land every interval, and
// re-encoding a full weight vector per Put doubled the write's allocation
// cost), so concurrent Puts are not safe; concurrent Gets are.
type DiskStore struct {
	dir    string
	encBuf []byte
}

var _ Store = (*DiskStore)(nil)

// NewDiskStore creates (if needed) and uses the given directory.
func NewDiskStore(dir string) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint dir: %w", err)
	}
	return &DiskStore{dir: dir}, nil
}

// Dir returns the backing directory.
func (s *DiskStore) Dir() string { return s.dir }

func (s *DiskStore) path(idx int) string {
	return filepath.Join(s.dir, "ckpt-"+strconv.Itoa(idx)+".bin")
}

// Put writes the snapshot's wire encoding to disk.
func (s *DiskStore) Put(idx int, w tensor.Vector) error {
	if idx < 0 {
		return fmt.Errorf("index %d: %w", idx, ErrBadIndex)
	}
	s.encBuf = w.AppendEncode(s.encBuf[:0])
	if err := os.WriteFile(s.path(idx), s.encBuf, 0o644); err != nil {
		return fmt.Errorf("checkpoint put %d: %w", idx, err)
	}
	return nil
}

// Get reads and decodes the snapshot from disk.
func (s *DiskStore) Get(idx int) (tensor.Vector, error) {
	data, err := os.ReadFile(s.path(idx))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("index %d: %w", idx, ErrNotFound)
	}
	if err != nil {
		return nil, fmt.Errorf("checkpoint get %d: %w", idx, err)
	}
	w, err := tensor.DecodeVector(data)
	if err != nil {
		return nil, fmt.Errorf("checkpoint get %d: %w", idx, err)
	}
	return w, nil
}

// list returns the stored checkpoint files.
func (s *DiskStore) list() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".bin" {
			files = append(files, filepath.Join(s.dir, e.Name()))
		}
	}
	sort.Strings(files)
	return files, nil
}

// Len returns the number of stored snapshots.
func (s *DiskStore) Len() int {
	files, err := s.list()
	if err != nil {
		return 0
	}
	return len(files)
}

// Bytes returns the on-disk footprint.
func (s *DiskStore) Bytes() int64 {
	files, err := s.list()
	if err != nil {
		return 0
	}
	var total int64
	for _, f := range files {
		if info, err := os.Stat(f); err == nil {
			total += info.Size()
		}
	}
	return total
}

// Clear deletes all snapshot files.
func (s *DiskStore) Clear() error {
	files, err := s.list()
	if err != nil {
		return fmt.Errorf("checkpoint clear: %w", err)
	}
	for _, f := range files {
		if err := os.Remove(f); err != nil {
			return fmt.Errorf("checkpoint clear: %w", err)
		}
	}
	return nil
}
