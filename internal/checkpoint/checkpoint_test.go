package checkpoint

import (
	"errors"
	"os"
	"sync"
	"testing"

	"rpol/internal/fsio"
	"rpol/internal/tensor"
)

// storeUnderTest runs the shared contract tests against any Store.
// perFileOverhead is the framing cost Bytes reports per snapshot beyond the
// wire encoding (zero for memory, fsio.FileOverhead for disk).
func storeUnderTest(t *testing.T, s Store, perFileOverhead int) {
	t.Helper()
	if s.Len() != 0 || s.Bytes() != 0 {
		t.Fatalf("fresh store not empty: len %d, bytes %d", s.Len(), s.Bytes())
	}
	w0 := tensor.Vector{1.5, -2.25, 3}
	w1 := tensor.Vector{4, 5, 6}
	if err := s.Put(0, w0); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(1, w1); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
	wantBytes := int64(2 * (tensor.EncodedSize(3) + perFileOverhead))
	if s.Bytes() != wantBytes {
		t.Errorf("Bytes = %d, want %d", s.Bytes(), wantBytes)
	}
	got, err := s.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(w0, 0) {
		t.Errorf("Get(0) = %v", got)
	}
	// Overwrite.
	if err := s.Put(0, w1); err != nil {
		t.Fatal(err)
	}
	got, err = s.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(w1, 0) {
		t.Error("overwrite lost")
	}
	if s.Len() != 2 {
		t.Errorf("Len after overwrite = %d", s.Len())
	}
	// Missing and invalid indices.
	if _, err := s.Get(9); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get(9) err = %v", err)
	}
	if err := s.Put(-1, w0); !errors.Is(err, ErrBadIndex) {
		t.Errorf("Put(-1) err = %v", err)
	}
	// Clear.
	if err := s.Clear(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 || s.Bytes() != 0 {
		t.Errorf("store not empty after Clear: len %d", s.Len())
	}
	if _, err := s.Get(0); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get after Clear err = %v", err)
	}
}

func TestMemoryStoreContract(t *testing.T) {
	storeUnderTest(t, NewMemoryStore(), 0)
}

func TestDiskStoreContract(t *testing.T) {
	s, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	storeUnderTest(t, s, fsio.FileOverhead)
}

func TestMemoryStoreCopies(t *testing.T) {
	s := NewMemoryStore()
	w := tensor.Vector{1, 2}
	if err := s.Put(0, w); err != nil {
		t.Fatal(err)
	}
	w[0] = 99 // caller mutation must not leak in
	got, err := s.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 {
		t.Error("store aliases the caller's slice")
	}
	got[1] = 99 // reader mutation must not leak back
	again, err := s.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	if again[1] != 2 {
		t.Error("store aliases returned slices")
	}
}

func TestDiskStoreBitExactRoundTrip(t *testing.T) {
	// Verification demands bit-identical openings: the disk round trip must
	// preserve every float exactly.
	s, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(4)
	w := rng.NormalVector(512, 0, 1)
	if err := s.Put(3, w); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(3)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(w, 0) {
		t.Error("disk round trip not bit-exact")
	}
	if s.Dir() == "" {
		t.Error("Dir empty")
	}
}

// TestDiskStoreConcurrentPuts is the -race regression for the shared
// encode-buffer data race: the parallel runtime's workers checkpoint
// concurrently through one store, so concurrent Puts (and Gets) must be
// safe and every snapshot must land intact.
func TestDiskStoreConcurrentPuts(t *testing.T) {
	s, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const n = 16
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := tensor.NewVector(64)
			for j := range w {
				w[j] = float64(i*1000 + j)
			}
			if err := s.Put(i, w); err != nil {
				t.Error(err)
			}
			if _, err := s.Get(i); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if s.Len() != n {
		t.Fatalf("Len = %d", s.Len())
	}
	for i := 0; i < n; i++ {
		got, err := s.Get(i)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != float64(i*1000) || got[63] != float64(i*1000+63) {
			t.Fatalf("snapshot %d interleaved with another Put: %v...", i, got[:2])
		}
	}
}

// TestDiskStoreDetectsCorruption: a truncated or bit-flipped snapshot file
// must surface as ErrCorruptCheckpoint, never as garbage weights.
func TestDiskStoreDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	w := tensor.NewRNG(9).NormalVector(32, 0, 1)
	if err := s.Put(0, w); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(s.path(0))
	if err != nil {
		t.Fatal(err)
	}

	// Bit flip in the payload.
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)/2] ^= 0x08
	if err := os.WriteFile(s.path(0), flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(0); !errors.Is(err, ErrCorruptCheckpoint) {
		t.Fatalf("bit flip: err = %v, want ErrCorruptCheckpoint", err)
	}

	// Truncation (torn write).
	if err := os.WriteFile(s.path(0), data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(0); !errors.Is(err, ErrCorruptCheckpoint) {
		t.Fatalf("truncation: err = %v, want ErrCorruptCheckpoint", err)
	}

	// Intact again after a fresh Put.
	if err := s.Put(0, w); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(0)
	if err != nil || !got.Equal(w, 0) {
		t.Fatalf("after re-put: %v", err)
	}
}

// TestDiskStoreReadsLegacyFiles: snapshots written by the pre-fsio format
// (raw wire encoding, no checksum frame) still load.
func TestDiskStoreReadsLegacyFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	w := tensor.Vector{3.5, -1.25, 0.75}
	if err := os.WriteFile(s.path(2), w.Encode(), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(2)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(w, 0) {
		t.Fatalf("legacy read = %v", got)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestDiskStorePersistsAcrossInstances(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Put(0, tensor.Vector{7}); err != nil {
		t.Fatal(err)
	}
	s2, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 7 {
		t.Error("checkpoint lost across instances")
	}
	if s2.Len() != 1 {
		t.Errorf("Len = %d", s2.Len())
	}
}
