package checkpoint

import (
	"errors"
	"testing"

	"rpol/internal/tensor"
)

// storeUnderTest runs the shared contract tests against any Store.
func storeUnderTest(t *testing.T, s Store) {
	t.Helper()
	if s.Len() != 0 || s.Bytes() != 0 {
		t.Fatalf("fresh store not empty: len %d, bytes %d", s.Len(), s.Bytes())
	}
	w0 := tensor.Vector{1.5, -2.25, 3}
	w1 := tensor.Vector{4, 5, 6}
	if err := s.Put(0, w0); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(1, w1); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
	wantBytes := int64(2 * tensor.EncodedSize(3))
	if s.Bytes() != wantBytes {
		t.Errorf("Bytes = %d, want %d", s.Bytes(), wantBytes)
	}
	got, err := s.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(w0, 0) {
		t.Errorf("Get(0) = %v", got)
	}
	// Overwrite.
	if err := s.Put(0, w1); err != nil {
		t.Fatal(err)
	}
	got, err = s.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(w1, 0) {
		t.Error("overwrite lost")
	}
	if s.Len() != 2 {
		t.Errorf("Len after overwrite = %d", s.Len())
	}
	// Missing and invalid indices.
	if _, err := s.Get(9); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get(9) err = %v", err)
	}
	if err := s.Put(-1, w0); !errors.Is(err, ErrBadIndex) {
		t.Errorf("Put(-1) err = %v", err)
	}
	// Clear.
	if err := s.Clear(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 || s.Bytes() != 0 {
		t.Errorf("store not empty after Clear: len %d", s.Len())
	}
	if _, err := s.Get(0); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get after Clear err = %v", err)
	}
}

func TestMemoryStoreContract(t *testing.T) {
	storeUnderTest(t, NewMemoryStore())
}

func TestDiskStoreContract(t *testing.T) {
	s, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	storeUnderTest(t, s)
}

func TestMemoryStoreCopies(t *testing.T) {
	s := NewMemoryStore()
	w := tensor.Vector{1, 2}
	if err := s.Put(0, w); err != nil {
		t.Fatal(err)
	}
	w[0] = 99 // caller mutation must not leak in
	got, err := s.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 {
		t.Error("store aliases the caller's slice")
	}
	got[1] = 99 // reader mutation must not leak back
	again, err := s.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	if again[1] != 2 {
		t.Error("store aliases returned slices")
	}
}

func TestDiskStoreBitExactRoundTrip(t *testing.T) {
	// Verification demands bit-identical openings: the disk round trip must
	// preserve every float exactly.
	s, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(4)
	w := rng.NormalVector(512, 0, 1)
	if err := s.Put(3, w); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(3)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(w, 0) {
		t.Error("disk round trip not bit-exact")
	}
	if s.Dir() == "" {
		t.Error("Dir empty")
	}
}

func TestDiskStorePersistsAcrossInstances(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Put(0, tensor.Vector{7}); err != nil {
		t.Fatal(err)
	}
	s2, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 7 {
		t.Error("checkpoint lost across instances")
	}
	if s2.Len() != 1 {
		t.Errorf("Len = %d", s2.Len())
	}
}
