package adversary

import (
	"testing"

	"rpol/internal/dataset"
	"rpol/internal/gpu"
	"rpol/internal/lsh"
	"rpol/internal/nn"
	"rpol/internal/rpol"
	"rpol/internal/tensor"
)

func advTask(t *testing.T, netSeed int64) (*nn.Network, *dataset.Dataset) {
	t.Helper()
	ds, err := dataset.Generate(dataset.Config{
		Name: "adv-test", NumClasses: 4, Dim: 8, Size: 400, ClusterStd: 0.4, Seed: 88,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(netSeed)
	net, err := nn.NewNetwork(
		nn.NewDense(8, 16, rng),
		nn.NewReLU(16),
		nn.NewDense(16, 4, rng),
	)
	if err != nil {
		t.Fatal(err)
	}
	return net, ds
}

func advParams(global tensor.Vector) rpol.TaskParams {
	return rpol.TaskParams{
		Global:          global,
		Hyper:           rpol.Hyper{Optimizer: "sgdm", LR: 0.05, BatchSize: 8},
		Nonce:           4242,
		Steps:           15,
		CheckpointEvery: 5,
	}
}

func TestSpoofExtrapolates(t *testing.T) {
	// With a linear trajectory, Eq. (12) predicts the exact next point.
	history := []tensor.Vector{{0, 0}, {1, 2}, {2, 4}}
	next, err := Spoof(history, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !next.Equal(tensor.Vector{3, 6}, 1e-12) {
		t.Errorf("spoof = %v, want [3 6]", next)
	}
}

func TestSpoofLambdaWeighting(t *testing.T) {
	// λ = 0 uses only the most recent delta.
	history := []tensor.Vector{{0}, {10}, {11}}
	next, err := Spoof(history, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !next.Equal(tensor.Vector{12}, 1e-12) {
		t.Errorf("λ=0 spoof = %v, want [12]", next)
	}
	// λ = 1 averages both deltas: (1 + 10)/2 = 5.5.
	next, err = Spoof(history, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !next.Equal(tensor.Vector{16.5}, 1e-12) {
		t.Errorf("λ=1 spoof = %v, want [16.5]", next)
	}
}

func TestSpoofValidation(t *testing.T) {
	if _, err := Spoof([]tensor.Vector{{1}}, 0.5); err == nil {
		t.Error("want error for single checkpoint")
	}
	if _, err := Spoof([]tensor.Vector{{1}, {2}}, -0.1); err == nil {
		t.Error("want error for negative lambda")
	}
	if _, err := Spoof([]tensor.Vector{{1}, {2}}, 1.1); err == nil {
		t.Error("want error for lambda > 1")
	}
}

func TestAdv1SubmitsZeroUpdate(t *testing.T) {
	net, _ := advTask(t, 1)
	adv := NewAdv1("adv1", gpu.GT4, 100)
	p := advParams(net.ParamVector())
	res, err := adv.RunEpoch(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Update.Norm2() != 0 {
		t.Error("Adv1 must submit a zero update")
	}
	if res.DataSize != 100 {
		t.Errorf("claimed data size = %d", res.DataSize)
	}
	if res.NumCheckpoints != p.NumCheckpoints() {
		t.Errorf("checkpoints = %d", res.NumCheckpoints)
	}
	// Every committed checkpoint is the unchanged global model.
	for i := 0; i < res.NumCheckpoints; i++ {
		w, err := adv.OpenCheckpoint(i)
		if err != nil {
			t.Fatal(err)
		}
		if !w.Equal(p.Global, 0) {
			t.Errorf("checkpoint %d differs from global", i)
		}
	}
}

func TestAdv1ConsistentWithCommitment(t *testing.T) {
	net, _ := advTask(t, 2)
	adv := NewAdv1("adv1", gpu.GT4, 10)
	p := advParams(net.ParamVector())
	res, err := adv.RunEpoch(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < res.NumCheckpoints; i++ {
		w, err := adv.OpenCheckpoint(i)
		if err != nil {
			t.Fatal(err)
		}
		if err := rpol.VerifyOpening(res, nil, i, w); err != nil {
			t.Errorf("Adv1 opening %d inconsistent with its own commitment: %v", i, err)
		}
	}
}

func TestAdv2TrainsPrefixSpoofsSuffix(t *testing.T) {
	net, ds := advTask(t, 3)
	adv, err := NewAdv2("adv2", gpu.GA10, 7, net, ds, 0.34, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	p := advParams(net.ParamVector())
	res, err := adv.RunEpoch(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumCheckpoints != p.NumCheckpoints() {
		t.Fatalf("checkpoints = %d, want %d", res.NumCheckpoints, p.NumCheckpoints())
	}
	trace := adv.LastTrace()
	// First interval honestly trained: checkpoint 1 differs from global.
	d1, err := tensor.Distance(trace.Checkpoints[1], p.Global)
	if err != nil {
		t.Fatal(err)
	}
	if d1 == 0 {
		t.Error("Adv2 trained nothing in its honest prefix")
	}
	// The spoofed final checkpoint must differ from an honestly trained one.
	honestNet, _ := advTask(t, 3)
	honest, err := rpol.NewHonestWorker("h", gpu.GA10, 7, honestNet, ds)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := honest.RunEpoch(p); err != nil {
		t.Fatal(err)
	}
	dFinal, err := tensor.Distance(trace.Final(), honest.LastTrace().Final())
	if err != nil {
		t.Fatal(err)
	}
	if dFinal == 0 {
		t.Error("spoofed trajectory coincides with honest one")
	}
}

func TestAdv2HonestSteps(t *testing.T) {
	net, ds := advTask(t, 4)
	adv, err := NewAdv2("adv2", gpu.GA10, 7, net, ds, 0.1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	p := advParams(net.ParamVector())
	// 3 intervals, 10% honest rounds up to 1 interval = 5 steps.
	if got := adv.HonestSteps(p); got != 5 {
		t.Errorf("HonestSteps = %d, want 5", got)
	}
	full, err := NewAdv2("adv2b", gpu.GA10, 7, net, ds, 1.0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got := full.HonestSteps(p); got != p.Steps {
		t.Errorf("fully honest Adv2 steps = %d, want %d", got, p.Steps)
	}
}

func TestAdv2Validation(t *testing.T) {
	net, ds := advTask(t, 5)
	if _, err := NewAdv2("x", gpu.GA10, 1, net, &dataset.Dataset{}, 0.1, 0.5); err == nil {
		t.Error("want error for empty shard")
	}
	if _, err := NewAdv2("x", gpu.GA10, 1, net, ds, -0.1, 0.5); err == nil {
		t.Error("want error for bad fraction")
	}
	if _, err := NewAdv2("x", gpu.Profile{Name: "bad"}, 1, net, ds, 0.1, 0.5); err == nil {
		t.Error("want error for bad profile")
	}
}

func TestSpoofDistanceExceedsReproductionError(t *testing.T) {
	// The separation Fig. 5 depends on: even the strong Adv2 spoof lands
	// far from the true next checkpoint relative to hardware reproduction
	// error.
	net, ds := advTask(t, 6)
	p := advParams(net.ParamVector())

	// Honest run on GA10 plus an independent re-run on G3090 establish the
	// reproduction-error scale.
	h1Net, _ := advTask(t, 6)
	h1, err := rpol.NewHonestWorker("h1", gpu.GA10, 11, h1Net, ds)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h1.RunEpoch(p); err != nil {
		t.Fatal(err)
	}
	h2Net, _ := advTask(t, 6)
	h2, err := rpol.NewHonestWorker("h2", gpu.G3090, 12, h2Net, ds)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h2.RunEpoch(p); err != nil {
		t.Fatal(err)
	}
	reproErrs, err := rpol.TraceDistances(h1.LastTrace(), h2.LastTrace())
	if err != nil {
		t.Fatal(err)
	}
	maxRepro := 0.0
	for _, e := range reproErrs {
		if e > maxRepro {
			maxRepro = e
		}
	}

	// Spoof the final checkpoint from the honest history and measure its
	// distance to the true final checkpoint.
	hist := h1.LastTrace().Checkpoints
	spoofed, err := Spoof(hist[:len(hist)-1], 0.5)
	if err != nil {
		t.Fatal(err)
	}
	spoofDist, err := tensor.Distance(spoofed, hist[len(hist)-1])
	if err != nil {
		t.Fatal(err)
	}
	if spoofDist <= maxRepro*5 {
		t.Errorf("spoof distance %v not clearly above repro error %v", spoofDist, maxRepro)
	}
}

func TestFabricatorCommitsConsistently(t *testing.T) {
	net, _ := advTask(t, 7)
	p := advParams(net.ParamVector())
	fam, err := lsh.NewFamily(len(p.Global), lsh.Params{R: 1, K: 2, L: 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	p.LSH = fam
	fab := NewFabricator("fab", gpu.GT4, 9, 0.5, 50)
	res, err := fab.RunEpoch(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.DataSize != 50 {
		t.Errorf("claimed data size = %d", res.DataSize)
	}
	if len(res.LSHDigests) != res.NumCheckpoints {
		t.Errorf("digests = %d", len(res.LSHDigests))
	}
	for i := 0; i < res.NumCheckpoints; i++ {
		w, err := fab.OpenCheckpoint(i)
		if err != nil {
			t.Fatal(err)
		}
		if err := rpol.VerifyOpening(res, fam, i, w); err != nil {
			t.Errorf("fabricator opening %d inconsistent: %v", i, err)
		}
	}
}

func TestAdversariesErrorBeforeFirstEpoch(t *testing.T) {
	if _, err := NewAdv1("a", gpu.GT4, 1).OpenCheckpoint(0); err == nil {
		t.Error("Adv1: want error before first epoch")
	}
	if _, err := NewFabricator("f", gpu.GT4, 1, 1, 1).OpenCheckpoint(0); err == nil {
		t.Error("Fabricator: want error before first epoch")
	}
}

func TestAdversariesRejectBadParams(t *testing.T) {
	net, ds := advTask(t, 8)
	bad := advParams(net.ParamVector())
	bad.Steps = 0
	if _, err := NewAdv1("a", gpu.GT4, 1).RunEpoch(bad); err == nil {
		t.Error("Adv1 accepted bad params")
	}
	adv2, err := NewAdv2("b", gpu.GA10, 1, net, ds, 0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := adv2.RunEpoch(bad); err == nil {
		t.Error("Adv2 accepted bad params")
	}
	if _, err := NewFabricator("c", gpu.GT4, 1, 1, 1).RunEpoch(bad); err == nil {
		t.Error("Fabricator accepted bad params")
	}
}
