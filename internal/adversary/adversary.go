// Package adversary implements the dishonest pool workers the paper
// evaluates RPoL against (Sec. VII-D/E):
//
//   - Adv1 resubmits the previous global model without training (a replay /
//     free-riding attack).
//   - Adv2 trains only a fraction of its steps honestly and extrapolates the
//     remaining checkpoints with the momentum-based spoofing strategy of
//     Eq. (12) — the strongest attack the paper considers, since spoofed
//     weights ride the true optimization trajectory.
//   - Fabricator commits arbitrary random weights (a naive cheater used as
//     a floor in experiments).
//
// Two further attackers probe gaps the paper leaves implicit; both train
// genuinely and are caught only by the verifier's binding checks:
//
//   - WrongInit trains honestly from a substituted initialization (caught
//     by the trace-origin binding), and
//   - UpdateScaler trains and commits honestly but submits a scaled update
//     (caught by the update-to-trace binding).
//
// All of them satisfy rpol.Worker, so they drop into the pool next to
// honest workers. Each is internally consistent: it really commits to the
// checkpoints it will open — the attacks target the re-execution and
// binding checks, not the hash commitment itself.
package adversary

import (
	"errors"
	"fmt"
	"math"

	"rpol/internal/dataset"
	"rpol/internal/gpu"
	"rpol/internal/nn"
	"rpol/internal/rpol"
	"rpol/internal/tensor"
)

// Spoof implements Eq. (12): given the honest checkpoint history
// c_1, …, c_i (oldest first), it predicts c_{i+1} as c_i plus the
// exponentially weighted average of past checkpoint deltas with coefficients
// K_j = λ^j:
//
//	c_{i+1} = c_i + Σ_j λ^j (c_{i-j} − c_{i-j-1}) / Σ_j λ^j.
//
// It needs at least two checkpoints.
func Spoof(history []tensor.Vector, lambda float64) (tensor.Vector, error) {
	if len(history) < 2 {
		return nil, errors.New("adversary: spoofing needs at least two checkpoints")
	}
	if lambda < 0 || lambda > 1 {
		return nil, fmt.Errorf("adversary: lambda %v outside [0, 1]", lambda)
	}
	last := history[len(history)-1]
	out := last.Clone()
	var weightSum float64
	momentum := tensor.NewVector(len(last))
	for j := 0; j+1 < len(history); j++ {
		newer := history[len(history)-1-j]
		older := history[len(history)-2-j]
		k := math.Pow(lambda, float64(j))
		if k == 0 {
			break
		}
		delta, err := newer.Sub(older)
		if err != nil {
			return nil, fmt.Errorf("adversary spoof: %w", err)
		}
		if err := momentum.AXPY(k, delta); err != nil {
			return nil, fmt.Errorf("adversary spoof: %w", err)
		}
		weightSum += k
	}
	if weightSum == 0 {
		return out, nil
	}
	if err := out.AXPY(1/weightSum, momentum); err != nil {
		return nil, fmt.Errorf("adversary spoof: %w", err)
	}
	return out, nil
}

// Adv1 is the replay attacker: it performs no training and submits a zero
// update, committing a trace in which every checkpoint equals the initial
// global weights.
type Adv1 struct {
	id      string
	profile gpu.Profile
	// claimedDataSize is the |D_w| the attacker reports for Eq. (1)
	// weighting — it claims its assigned shard even though it trained on
	// nothing.
	claimedDataSize int

	lastTrace  *rpol.Trace
	lastCommit *rpol.EpochCommitment
}

var _ rpol.Worker = (*Adv1)(nil)

// NewAdv1 builds a replay attacker that claims the given data size.
func NewAdv1(id string, profile gpu.Profile, claimedDataSize int) *Adv1 {
	if claimedDataSize < 1 {
		claimedDataSize = 1
	}
	return &Adv1{id: id, profile: profile, claimedDataSize: claimedDataSize}
}

// ID returns the attacker's identifier.
func (a *Adv1) ID() string { return a.id }

// GPUProfile returns the registered hardware profile.
func (a *Adv1) GPUProfile() gpu.Profile { return a.profile }

// RunEpoch fabricates a no-op submission at zero computational cost.
func (a *Adv1) RunEpoch(p rpol.TaskParams) (*rpol.EpochResult, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := p.NumCheckpoints()
	trace := &rpol.Trace{}
	for i := 0; i < n; i++ {
		trace.Checkpoints = append(trace.Checkpoints, p.Global.Clone())
		trace.Steps = append(trace.Steps, minInt(i*p.CheckpointEvery, p.Steps))
	}
	result := &rpol.EpochResult{
		WorkerID:       a.id,
		Epoch:          p.Epoch,
		Update:         tensor.NewVector(len(p.Global)), // zero update
		DataSize:       a.claimedDataSize,
		NumCheckpoints: n,
	}
	ec, err := stampCommitment(a.id, p, trace, result)
	if err != nil {
		return nil, err
	}
	a.lastTrace = trace
	a.lastCommit = ec
	return result, nil
}

// OpenCheckpoint serves the committed (replayed) snapshots.
func (a *Adv1) OpenCheckpoint(idx int) (tensor.Vector, error) {
	return openFrom(a.lastTrace, a.id, idx)
}

// OpenProof serves Merkle proof pulls over the replayed commitment.
func (a *Adv1) OpenProof(idx int) (rpol.LeafProof, error) {
	return openProofFrom(a.lastCommit, a.id, idx)
}

// FastForwardEpochs is a no-op: the replay attacker holds no stateful
// hardware noise stream (it never trains). Implemented so crash recovery
// can fast-forward every pool member uniformly.
func (a *Adv1) FastForwardEpochs(epochs, stepsPerEpoch, checkpointEvery int) {}

var _ rpol.EpochFastForwarder = (*Adv1)(nil)

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func openFrom(trace *rpol.Trace, id string, idx int) (tensor.Vector, error) {
	if trace == nil {
		return nil, fmt.Errorf("adversary %s: no epoch run yet", id)
	}
	if idx < 0 || idx >= len(trace.Checkpoints) {
		return nil, fmt.Errorf("adversary %s: checkpoint %d of %d", id, idx, len(trace.Checkpoints))
	}
	return trace.Checkpoints[idx], nil
}

// stampCommitment builds the commitment over the (possibly forged) trace in
// whichever form the task demands — legacy hash list or streaming Merkle
// root — stamps it onto the submission, and returns it for proof serving.
// Adversaries forge checkpoints, not the commitment construction itself:
// they always commit to exactly what they will open.
func stampCommitment(id string, p rpol.TaskParams, trace *rpol.Trace, r *rpol.EpochResult) (*rpol.EpochCommitment, error) {
	ec, err := rpol.CommitTrace(nil, trace.Checkpoints, p.LSH, p.MerkleCommit)
	if err != nil {
		return nil, fmt.Errorf("adversary %s: %w", id, err)
	}
	ec.Apply(r)
	return ec, nil
}

// openProofFrom serves a Merkle proof pull from the attacker's retained
// commitment.
func openProofFrom(ec *rpol.EpochCommitment, id string, idx int) (rpol.LeafProof, error) {
	if ec == nil {
		return rpol.LeafProof{}, fmt.Errorf("adversary %s: no epoch run yet", id)
	}
	return ec.OpenProof(idx)
}

// Adv2 trains the first HonestIntervals checkpoint intervals honestly
// (with real gradients and hardware noise) and spoofs the rest with Eq. (12).
type Adv2 struct {
	id      string
	profile gpu.Profile
	trainer *rpol.Trainer
	// HonestFraction is the fraction of checkpoint intervals trained
	// honestly (the paper's Adv2 trains 10% of the steps; Fig. 5's attacker
	// trains the first third of the checkpoints).
	HonestFraction float64
	// Lambda is the exponential-descent coefficient of Eq. (12).
	Lambda float64

	lastTrace  *rpol.Trace
	lastCommit *rpol.EpochCommitment
	dataSize   int
}

var _ rpol.Worker = (*Adv2)(nil)

// NewAdv2 builds the spoofing attacker.
func NewAdv2(id string, profile gpu.Profile, runSeed int64, net *nn.Network, shard *dataset.Dataset, honestFraction, lambda float64) (*Adv2, error) {
	if shard == nil || shard.Len() == 0 {
		return nil, fmt.Errorf("adversary %s: empty shard", id)
	}
	if honestFraction < 0 || honestFraction > 1 {
		return nil, fmt.Errorf("adversary %s: honest fraction %v", id, honestFraction)
	}
	device, err := gpu.NewDevice(profile, runSeed)
	if err != nil {
		return nil, fmt.Errorf("adversary %s: %w", id, err)
	}
	return &Adv2{
		id:             id,
		profile:        profile,
		trainer:        &rpol.Trainer{Net: net, Shard: shard, Device: device},
		HonestFraction: honestFraction,
		Lambda:         lambda,
		dataSize:       shard.Len(),
	}, nil
}

// ID returns the attacker's identifier.
func (a *Adv2) ID() string { return a.id }

// GPUProfile returns the registered hardware profile.
func (a *Adv2) GPUProfile() gpu.Profile { return a.profile }

// HonestSteps returns the number of training steps Adv2 actually executes
// under params p (for cost accounting).
func (a *Adv2) HonestSteps(p rpol.TaskParams) int {
	intervals := p.NumCheckpoints() - 1
	honest := int(math.Ceil(a.HonestFraction * float64(intervals)))
	if honest < 1 {
		honest = 1 // Eq. (12) needs at least one real delta
	}
	if honest > intervals {
		honest = intervals
	}
	steps := honest * p.CheckpointEvery
	if steps > p.Steps {
		steps = p.Steps
	}
	return steps
}

// RunEpoch trains the honest prefix and spoofs the remaining checkpoints.
func (a *Adv2) RunEpoch(p rpol.TaskParams) (*rpol.EpochResult, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	intervals := p.NumCheckpoints() - 1
	honest := int(math.Ceil(a.HonestFraction * float64(intervals)))
	if honest < 1 {
		honest = 1
	}
	if honest > intervals {
		honest = intervals
	}

	trace := &rpol.Trace{
		Checkpoints: []tensor.Vector{p.Global.Clone()},
		Steps:       []int{0},
	}
	cur := p.Global.Clone()
	step := 0
	// Honest prefix.
	for i := 0; i < honest; i++ {
		interval := p.CheckpointEvery
		if step+interval > p.Steps {
			interval = p.Steps - step
		}
		if interval <= 0 {
			break
		}
		next, err := a.trainer.ExecuteInterval(cur, step, interval, p.Hyper, p.Nonce)
		if err != nil {
			return nil, fmt.Errorf("adversary %s: %w", a.id, err)
		}
		step += interval
		cur = next
		trace.Checkpoints = append(trace.Checkpoints, cur.Clone())
		trace.Steps = append(trace.Steps, step)
	}
	// Spoofed suffix.
	for len(trace.Checkpoints) < p.NumCheckpoints() {
		spoofed, err := Spoof(trace.Checkpoints, a.Lambda)
		if err != nil {
			return nil, fmt.Errorf("adversary %s: %w", a.id, err)
		}
		interval := p.CheckpointEvery
		if step+interval > p.Steps {
			interval = p.Steps - step
		}
		step += interval
		trace.Checkpoints = append(trace.Checkpoints, spoofed)
		trace.Steps = append(trace.Steps, step)
	}

	update, err := rpol.BindFinalCheckpoint(trace, p.Global)
	if err != nil {
		return nil, fmt.Errorf("adversary %s: %w", a.id, err)
	}
	result := &rpol.EpochResult{
		WorkerID:       a.id,
		Epoch:          p.Epoch,
		Update:         update,
		DataSize:       a.dataSize,
		NumCheckpoints: len(trace.Checkpoints),
	}
	ec, err := stampCommitment(a.id, p, trace, result)
	if err != nil {
		return nil, err
	}
	a.lastTrace = trace
	a.lastCommit = ec
	return result, nil
}

// OpenCheckpoint serves the committed (partially spoofed) snapshots.
func (a *Adv2) OpenCheckpoint(idx int) (tensor.Vector, error) {
	return openFrom(a.lastTrace, a.id, idx)
}

// OpenProof serves Merkle proof pulls over the partially spoofed commitment.
func (a *Adv2) OpenProof(idx int) (rpol.LeafProof, error) {
	return openProofFrom(a.lastCommit, a.id, idx)
}

// FastForwardEpochs advances the attacker's device noise stream past the
// honest training it performed in epochs before a crash: Adv2 executes only
// HonestSteps per epoch (the spoofed suffix draws no hardware noise).
func (a *Adv2) FastForwardEpochs(epochs, stepsPerEpoch, checkpointEvery int) {
	if epochs <= 0 || stepsPerEpoch <= 0 || checkpointEvery <= 0 {
		return
	}
	p := rpol.TaskParams{Steps: stepsPerEpoch, CheckpointEvery: checkpointEvery}
	for e := 0; e < epochs; e++ {
		a.trainer.FastForward(a.HonestSteps(p))
	}
}

var _ rpol.EpochFastForwarder = (*Adv2)(nil)

// LastTrace exposes the attacker's trace for spoof-distance measurements
// (Fig. 5).
func (a *Adv2) LastTrace() *rpol.Trace { return a.lastTrace }

// WrongInit trains its shard fully honestly — but starting from weights of
// its own choosing instead of the distributed global model (modelling a
// worker that substitutes a stale or poisoned initialization). Every
// sampled interval re-executes consistently, so only the verifier's
// trace-origin binding catches it.
type WrongInit struct {
	id      string
	profile gpu.Profile
	trainer *rpol.Trainer
	// InitShift is added to the global model before training.
	InitShift tensor.Vector

	lastTrace  *rpol.Trace
	lastCommit *rpol.EpochCommitment
	dataSize   int
}

var _ rpol.Worker = (*WrongInit)(nil)

// NewWrongInit builds the wrong-initialization attacker. shift is added
// element-wise to the distributed weights.
func NewWrongInit(id string, profile gpu.Profile, runSeed int64, net *nn.Network, shard *dataset.Dataset, shift tensor.Vector) (*WrongInit, error) {
	if shard == nil || shard.Len() == 0 {
		return nil, fmt.Errorf("adversary %s: empty shard", id)
	}
	device, err := gpu.NewDevice(profile, runSeed)
	if err != nil {
		return nil, fmt.Errorf("adversary %s: %w", id, err)
	}
	return &WrongInit{
		id:        id,
		profile:   profile,
		trainer:   &rpol.Trainer{Net: net, Shard: shard, Device: device},
		InitShift: shift,
		dataSize:  shard.Len(),
	}, nil
}

// ID returns the attacker's identifier.
func (a *WrongInit) ID() string { return a.id }

// GPUProfile returns the registered hardware profile.
func (a *WrongInit) GPUProfile() gpu.Profile { return a.profile }

// RunEpoch trains honestly from the shifted initialization.
func (a *WrongInit) RunEpoch(p rpol.TaskParams) (*rpol.EpochResult, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	shifted := p.Global.Clone()
	if err := shifted.AXPY(1, a.InitShift); err != nil {
		return nil, fmt.Errorf("adversary %s: %w", a.id, err)
	}
	substituted := p
	substituted.Global = shifted
	trace, err := a.trainer.RunEpoch(substituted)
	if err != nil {
		return nil, fmt.Errorf("adversary %s: %w", a.id, err)
	}
	// The update is reported relative to the REAL global model so the
	// submission looks plausible to aggregation.
	update, err := trace.Final().Sub(p.Global)
	if err != nil {
		return nil, fmt.Errorf("adversary %s: %w", a.id, err)
	}
	result := &rpol.EpochResult{
		WorkerID:       a.id,
		Epoch:          p.Epoch,
		Update:         update,
		DataSize:       a.dataSize,
		NumCheckpoints: len(trace.Checkpoints),
	}
	ec, err := stampCommitment(a.id, p, trace, result)
	if err != nil {
		return nil, err
	}
	a.lastTrace = trace
	a.lastCommit = ec
	return result, nil
}

// OpenCheckpoint serves the (honestly trained, wrongly rooted) snapshots.
func (a *WrongInit) OpenCheckpoint(idx int) (tensor.Vector, error) {
	return openFrom(a.lastTrace, a.id, idx)
}

// OpenProof serves Merkle proof pulls over the wrongly rooted commitment.
func (a *WrongInit) OpenProof(idx int) (rpol.LeafProof, error) {
	return openProofFrom(a.lastCommit, a.id, idx)
}

// UpdateScaler trains and commits fully honestly but submits its model
// update scaled by Factor — the classic model-boosting/poisoning move from
// the federated-learning literature, which lets a single worker dominate
// the aggregate. Every checkpoint proof is genuine; only the verifier's
// update-to-trace binding (θ_t + L must be the committed final checkpoint)
// catches the substitution.
type UpdateScaler struct {
	id      string
	profile gpu.Profile
	trainer *rpol.Trainer
	// Factor multiplies the honest update before submission.
	Factor float64

	lastTrace  *rpol.Trace
	lastCommit *rpol.EpochCommitment
	dataSize   int
}

var _ rpol.Worker = (*UpdateScaler)(nil)

// NewUpdateScaler builds the update-scaling attacker.
func NewUpdateScaler(id string, profile gpu.Profile, runSeed int64, net *nn.Network, shard *dataset.Dataset, factor float64) (*UpdateScaler, error) {
	if shard == nil || shard.Len() == 0 {
		return nil, fmt.Errorf("adversary %s: empty shard", id)
	}
	device, err := gpu.NewDevice(profile, runSeed)
	if err != nil {
		return nil, fmt.Errorf("adversary %s: %w", id, err)
	}
	return &UpdateScaler{
		id:       id,
		profile:  profile,
		trainer:  &rpol.Trainer{Net: net, Shard: shard, Device: device},
		Factor:   factor,
		dataSize: shard.Len(),
	}, nil
}

// ID returns the attacker's identifier.
func (a *UpdateScaler) ID() string { return a.id }

// GPUProfile returns the registered hardware profile.
func (a *UpdateScaler) GPUProfile() gpu.Profile { return a.profile }

// RunEpoch trains honestly, commits honestly, and submits a scaled update.
func (a *UpdateScaler) RunEpoch(p rpol.TaskParams) (*rpol.EpochResult, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	trace, err := a.trainer.RunEpoch(p)
	if err != nil {
		return nil, fmt.Errorf("adversary %s: %w", a.id, err)
	}
	update, err := rpol.BindFinalCheckpoint(trace, p.Global)
	if err != nil {
		return nil, fmt.Errorf("adversary %s: %w", a.id, err)
	}
	update.Scale(a.Factor) // the poisoned submission
	result := &rpol.EpochResult{
		WorkerID:       a.id,
		Epoch:          p.Epoch,
		Update:         update,
		DataSize:       a.dataSize,
		NumCheckpoints: len(trace.Checkpoints),
	}
	ec, err := stampCommitment(a.id, p, trace, result)
	if err != nil {
		return nil, err
	}
	a.lastTrace = trace
	a.lastCommit = ec
	return result, nil
}

// OpenCheckpoint serves the genuinely trained snapshots.
func (a *UpdateScaler) OpenCheckpoint(idx int) (tensor.Vector, error) {
	return openFrom(a.lastTrace, a.id, idx)
}

// OpenProof serves Merkle proof pulls over the honestly built commitment.
func (a *UpdateScaler) OpenProof(idx int) (rpol.LeafProof, error) {
	return openProofFrom(a.lastCommit, a.id, idx)
}

// Fabricator commits random weights scaled like plausible models — the
// naive cheater.
type Fabricator struct {
	id              string
	profile         gpu.Profile
	rng             *tensor.RNG
	scale           float64
	claimedDataSize int

	lastTrace  *rpol.Trace
	lastCommit *rpol.EpochCommitment
}

var _ rpol.Worker = (*Fabricator)(nil)

// NewFabricator builds a random-weights cheater. scale controls the forged
// weights' magnitude; claimedDataSize is the |D_w| it reports.
func NewFabricator(id string, profile gpu.Profile, seed int64, scale float64, claimedDataSize int) *Fabricator {
	if claimedDataSize < 1 {
		claimedDataSize = 1
	}
	return &Fabricator{
		id: id, profile: profile, rng: tensor.NewRNG(seed),
		scale: scale, claimedDataSize: claimedDataSize,
	}
}

// ID returns the attacker's identifier.
func (f *Fabricator) ID() string { return f.id }

// GPUProfile returns the registered hardware profile.
func (f *Fabricator) GPUProfile() gpu.Profile { return f.profile }

// RunEpoch fabricates a random trace.
func (f *Fabricator) RunEpoch(p rpol.TaskParams) (*rpol.EpochResult, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := p.NumCheckpoints()
	trace := &rpol.Trace{
		Checkpoints: []tensor.Vector{p.Global.Clone()},
		Steps:       []int{0},
	}
	for i := 1; i < n; i++ {
		fake, err := p.Global.Add(f.rng.NormalVector(len(p.Global), 0, f.scale))
		if err != nil {
			return nil, fmt.Errorf("adversary %s: %w", f.id, err)
		}
		trace.Checkpoints = append(trace.Checkpoints, fake)
		trace.Steps = append(trace.Steps, minInt(i*p.CheckpointEvery, p.Steps))
	}
	update, err := rpol.BindFinalCheckpoint(trace, p.Global)
	if err != nil {
		return nil, fmt.Errorf("adversary %s: %w", f.id, err)
	}
	result := &rpol.EpochResult{
		WorkerID:       f.id,
		Epoch:          p.Epoch,
		Update:         update,
		DataSize:       f.claimedDataSize,
		NumCheckpoints: n,
	}
	ec, err := stampCommitment(f.id, p, trace, result)
	if err != nil {
		return nil, err
	}
	f.lastTrace = trace
	f.lastCommit = ec
	return result, nil
}

// OpenCheckpoint serves the fabricated snapshots.
func (f *Fabricator) OpenCheckpoint(idx int) (tensor.Vector, error) {
	return openFrom(f.lastTrace, f.id, idx)
}

// OpenProof serves Merkle proof pulls over the fabricated commitment.
func (f *Fabricator) OpenProof(idx int) (rpol.LeafProof, error) {
	return openProofFrom(f.lastCommit, f.id, idx)
}
