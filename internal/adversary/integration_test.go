package adversary

import (
	"testing"

	"rpol/internal/gpu"
	"rpol/internal/rpol"
	"rpol/internal/tensor"
)

// buildVerifier calibrates β (and the LSH family for v2) from the real task
// and returns a ready verifier, mirroring the manager's per-epoch setup.
func buildVerifier(t *testing.T, scheme rpol.Scheme, p *rpol.TaskParams) *rpol.Verifier {
	t.Helper()
	netC, ds := advTask(t, 40)
	cal := &rpol.Calibrator{Net: netC, Shard: ds, XFactor: 5, KLsh: 16}
	calOut, fam, err := cal.Calibrate(*p, gpu.G3090, gpu.GA10, [2]int64{51, 52}, 53)
	if err != nil {
		t.Fatal(err)
	}
	netV, _ := advTask(t, 40)
	device, err := gpu.NewDevice(gpu.G3090, 54)
	if err != nil {
		t.Fatal(err)
	}
	v := &rpol.Verifier{
		Scheme:  scheme,
		Net:     netV,
		Device:  device,
		Beta:    calOut.Beta,
		Samples: 3,
		Sampler: tensor.NewRNG(55),
	}
	if scheme == rpol.SchemeV2 {
		v.LSH = fam
		p.LSH = fam
	}
	return v
}

func TestVerifierCatchesAdv1(t *testing.T) {
	for _, scheme := range []rpol.Scheme{rpol.SchemeV1, rpol.SchemeV2} {
		t.Run(scheme.String(), func(t *testing.T) {
			net, ds := advTask(t, 40)
			p := advParams(net.ParamVector())
			verifier := buildVerifier(t, scheme, &p)
			adv := NewAdv1("adv1", gpu.GT4, ds.Len())
			res, err := adv.RunEpoch(p)
			if err != nil {
				t.Fatal(err)
			}
			out, err := verifier.VerifySubmission(adv, ds, res, p)
			if err != nil {
				t.Fatal(err)
			}
			if out.Accepted {
				t.Error("replay attacker passed verification")
			}
		})
	}
}

func TestVerifierCatchesAdv2(t *testing.T) {
	// With 3 intervals sampled out of 3 and only 1 honestly trained, at
	// least one spoofed interval is always checked; the spoof distance
	// exceeds β, so the attacker is rejected.
	for _, scheme := range []rpol.Scheme{rpol.SchemeV1, rpol.SchemeV2} {
		t.Run(scheme.String(), func(t *testing.T) {
			net, ds := advTask(t, 40)
			p := advParams(net.ParamVector())
			verifier := buildVerifier(t, scheme, &p)
			advNet, _ := advTask(t, 40)
			adv, err := NewAdv2("adv2", gpu.GA10, 61, advNet, ds, 0.1, 0.5)
			if err != nil {
				t.Fatal(err)
			}
			res, err := adv.RunEpoch(p)
			if err != nil {
				t.Fatal(err)
			}
			out, err := verifier.VerifySubmission(adv, ds, res, p)
			if err != nil {
				t.Fatal(err)
			}
			if out.Accepted {
				t.Error("spoofing attacker passed verification")
			}
		})
	}
}

func TestVerifierCatchesFabricator(t *testing.T) {
	net, ds := advTask(t, 40)
	p := advParams(net.ParamVector())
	verifier := buildVerifier(t, rpol.SchemeV2, &p)
	fab := NewFabricator("fab", gpu.GT4, 62, 0.5, ds.Len())
	res, err := fab.RunEpoch(p)
	if err != nil {
		t.Fatal(err)
	}
	out, err := verifier.VerifySubmission(fab, ds, res, p)
	if err != nil {
		t.Fatal(err)
	}
	if out.Accepted {
		t.Error("fabricator passed verification")
	}
}

func TestHonestWorkerStillPassesSameSetup(t *testing.T) {
	// Sanity companion to the rejection tests: the exact same calibrated
	// verifier accepts an honest worker (0 false negatives, Sec. VII-D).
	for _, scheme := range []rpol.Scheme{rpol.SchemeV1, rpol.SchemeV2} {
		t.Run(scheme.String(), func(t *testing.T) {
			net, ds := advTask(t, 40)
			p := advParams(net.ParamVector())
			verifier := buildVerifier(t, scheme, &p)
			hNet, _ := advTask(t, 40)
			honest, err := rpol.NewHonestWorker("h", gpu.GA10, 63, hNet, ds)
			if err != nil {
				t.Fatal(err)
			}
			res, err := honest.RunEpoch(p)
			if err != nil {
				t.Fatal(err)
			}
			out, err := verifier.VerifySubmission(honest, ds, res, p)
			if err != nil {
				t.Fatal(err)
			}
			if !out.Accepted {
				t.Errorf("honest worker rejected: %s", out.FailReason)
			}
		})
	}
}

func TestVerifierCatchesWrongInit(t *testing.T) {
	// The attacker trains fully honestly but from a shifted initialization.
	// Sampled intervals re-execute perfectly; only the trace-origin binding
	// (first committed checkpoint must equal the distributed θ_t) catches
	// it.
	for _, scheme := range []rpol.Scheme{rpol.SchemeV1, rpol.SchemeV2} {
		t.Run(scheme.String(), func(t *testing.T) {
			net, ds := advTask(t, 40)
			p := advParams(net.ParamVector())
			verifier := buildVerifier(t, scheme, &p)
			advNet, _ := advTask(t, 40)
			shift := tensor.NewRNG(77).NormalVector(len(p.Global), 0, 0.5)
			adv, err := NewWrongInit("wronginit", gpu.GA10, 71, advNet, ds, shift)
			if err != nil {
				t.Fatal(err)
			}
			res, err := adv.RunEpoch(p)
			if err != nil {
				t.Fatal(err)
			}
			out, err := verifier.VerifySubmission(adv, ds, res, p)
			if err != nil {
				t.Fatal(err)
			}
			if out.Accepted {
				t.Error("wrong-initialization attacker passed verification")
			}
			if len(out.SampledCheckpoints) != 0 {
				t.Error("origin binding should reject before any sampling")
			}
		})
	}
}

func TestVerifierCatchesUpdateScaler(t *testing.T) {
	// The attacker's proofs are all genuine; only the update-to-trace
	// binding rejects the scaled submission.
	for _, scheme := range []rpol.Scheme{rpol.SchemeV1, rpol.SchemeV2} {
		t.Run(scheme.String(), func(t *testing.T) {
			net, ds := advTask(t, 40)
			p := advParams(net.ParamVector())
			verifier := buildVerifier(t, scheme, &p)
			advNet, _ := advTask(t, 40)
			adv, err := NewUpdateScaler("scaler", gpu.GA10, 81, advNet, ds, 10)
			if err != nil {
				t.Fatal(err)
			}
			res, err := adv.RunEpoch(p)
			if err != nil {
				t.Fatal(err)
			}
			out, err := verifier.VerifySubmission(adv, ds, res, p)
			if err != nil {
				t.Fatal(err)
			}
			if out.Accepted {
				t.Error("update-scaling attacker passed verification")
			}
			if len(out.SampledCheckpoints) != 0 {
				t.Error("update binding should reject before any sampling")
			}
		})
	}
}

func TestUpdateScalerWithFactorOnePasses(t *testing.T) {
	// Sanity: with Factor 1 the "attacker" is an honest worker and must be
	// accepted — the binding check cannot cause false rejections.
	net, ds := advTask(t, 40)
	p := advParams(net.ParamVector())
	verifier := buildVerifier(t, rpol.SchemeV2, &p)
	advNet, _ := advTask(t, 40)
	adv, err := NewUpdateScaler("unit", gpu.GA10, 82, advNet, ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := adv.RunEpoch(p)
	if err != nil {
		t.Fatal(err)
	}
	out, err := verifier.VerifySubmission(adv, ds, res, p)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Accepted {
		t.Errorf("factor-1 scaler rejected: %s", out.FailReason)
	}
}
