package blockchain

import (
	"errors"
	"testing"

	"rpol/internal/amlayer"
	"rpol/internal/dataset"
	"rpol/internal/nn"
	"rpol/internal/tensor"
)

// buildCandidate trains nothing; it just assembles a model whose AMLayer
// encodes the wallet's address, optionally tuned to predict a constant
// class so candidates have different accuracies.
func buildCandidate(t *testing.T, w *Wallet, biasClass int) Candidate {
	t.Helper()
	cfg := amlayer.DefaultConfig()
	layer, err := amlayer.NewDense(w.Address(), 8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(1)
	head := nn.NewDense(8, 4, rng)
	head.W.Data.Zero()
	head.B.Zero()
	if biasClass >= 0 {
		head.B[biasClass] = 10 // always predict biasClass
	}
	base, err := nn.NewNetwork(head)
	if err != nil {
		t.Fatal(err)
	}
	net, err := amlayer.Prepend(layer, base)
	if err != nil {
		t.Fatal(err)
	}
	return Candidate{
		Proposer: w.Address(),
		Net:      net,
		PubKey:   w.PublicKey(),
		Sig:      SignCandidate(w, net),
	}
}

// skewedTest builds a test set where class 0 dominates, so a candidate that
// always predicts class 0 scores ≈ 70%.
func skewedTest(t *testing.T) *dataset.Dataset {
	t.Helper()
	rng := tensor.NewRNG(9)
	ds := &dataset.Dataset{NumClasses: 4, Dim: 8}
	for i := 0; i < 100; i++ {
		label := 0
		if i%10 >= 7 {
			label = 1 + i%3
		}
		ds.Examples = append(ds.Examples, dataset.Example{
			Features: rng.NormalVector(8, 0, 1),
			Label:    label,
		})
	}
	return ds
}

func testTask() Task {
	return Task{ID: "t1", ModelSpec: "resnet18-cifar10", MinProposals: 2, Reward: 10, TargetAccuracy: 0.99}
}

func TestRoundSealedUntilEnoughProposals(t *testing.T) {
	round, err := NewRound(testTask(), amlayer.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	chain := NewChain()
	if round.TestSetReleased() {
		t.Error("test set must start sealed")
	}
	if _, err := round.Decide(skewedTest(t), chain); !errors.Is(err, ErrSealed) {
		t.Errorf("decide while sealed: err = %v", err)
	}
	w1 := testWallet(t, 10)
	if err := round.Propose(buildCandidate(t, w1, 0)); err != nil {
		t.Fatal(err)
	}
	if round.TestSetReleased() {
		t.Error("one proposal must not release the test set")
	}
	w2 := testWallet(t, 11)
	if err := round.Propose(buildCandidate(t, w2, 1)); err != nil {
		t.Fatal(err)
	}
	if !round.TestSetReleased() {
		t.Error("test set must be released after MinProposals")
	}
}

func TestRoundElectsBestAccuracy(t *testing.T) {
	round, err := NewRound(testTask(), amlayer.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	chain := NewChain()
	wGood := testWallet(t, 20)
	wBad := testWallet(t, 21)
	// wGood always predicts the dominant class 0 (≈70 %); wBad predicts
	// class 1 (≈10 %).
	if err := round.Propose(buildCandidate(t, wGood, 0)); err != nil {
		t.Fatal(err)
	}
	if err := round.Propose(buildCandidate(t, wBad, 1)); err != nil {
		t.Fatal(err)
	}
	out, err := round.Decide(skewedTest(t), chain)
	if err != nil {
		t.Fatal(err)
	}
	if out.Winner.Proposer != wGood.Address() {
		t.Errorf("winner = %s, want %s", out.Winner.Proposer, wGood.Address())
	}
	if out.Accuracy < 0.5 {
		t.Errorf("winning accuracy = %v", out.Accuracy)
	}
	if chain.Height() != 1 || chain.Tip().Proposer != wGood.Address() {
		t.Error("winning block not appended")
	}
	if err := chain.Verify(); err != nil {
		t.Errorf("chain invalid after round: %v", err)
	}
}

func TestRoundRejectsStolenModel(t *testing.T) {
	// A thief re-signs the victim's model with its own wallet but cannot
	// make the embedded AMLayer encode its address without destroying the
	// model — consensus rejects the candidate outright.
	round, err := NewRound(testTask(), amlayer.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	chain := NewChain()
	victim := testWallet(t, 30)
	thief := testWallet(t, 31)
	stolen := buildCandidate(t, victim, 0)
	// The thief claims the victim's model as its own: same net, own
	// signature.
	theft := Candidate{
		Proposer: thief.Address(),
		Net:      stolen.Net,
		PubKey:   thief.PublicKey(),
		Sig:      SignCandidate(thief, stolen.Net),
	}
	if err := round.Propose(theft); err != nil {
		t.Fatalf("structural checks should pass (signature is valid): %v", err)
	}
	honest := buildCandidate(t, testWallet(t, 32), 1)
	if err := round.Propose(honest); err != nil {
		t.Fatal(err)
	}
	out, err := round.Decide(skewedTest(t), chain)
	if err != nil {
		t.Fatal(err)
	}
	if out.Winner.Proposer == thief.Address() {
		t.Error("stolen model won the round")
	}
	foundRejected := false
	for _, r := range out.Rejected {
		if r == thief.Address() {
			foundRejected = true
		}
	}
	if !foundRejected {
		t.Error("thief's candidate not rejected by AMLayer verification")
	}
}

func TestRoundRejectsForgedSignature(t *testing.T) {
	round, err := NewRound(testTask(), amlayer.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	w := testWallet(t, 40)
	c := buildCandidate(t, w, 0)
	c.Sig = append([]byte(nil), c.Sig...)
	c.Sig[0] ^= 0xFF
	if err := round.Propose(c); !errors.Is(err, ErrBadSignature) {
		t.Errorf("forged signature: err = %v", err)
	}
	if err := round.Propose(Candidate{Proposer: "x"}); err == nil {
		t.Error("candidate without model accepted")
	}
}

func TestRoundAllRejected(t *testing.T) {
	task := testTask()
	task.MinProposals = 1
	round, err := NewRound(task, amlayer.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	chain := NewChain()
	victim := testWallet(t, 50)
	thief := testWallet(t, 51)
	stolen := buildCandidate(t, victim, 0)
	theft := Candidate{
		Proposer: thief.Address(),
		Net:      stolen.Net,
		PubKey:   thief.PublicKey(),
		Sig:      SignCandidate(thief, stolen.Net),
	}
	if err := round.Propose(theft); err != nil {
		t.Fatal(err)
	}
	if _, err := round.Decide(skewedTest(t), chain); !errors.Is(err, ErrNoCandidate) {
		t.Errorf("err = %v", err)
	}
}

func TestRoundEmptyTestSet(t *testing.T) {
	task := testTask()
	task.MinProposals = 1
	round, err := NewRound(task, amlayer.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := round.Propose(buildCandidate(t, testWallet(t, 60), 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := round.Decide(&dataset.Dataset{}, NewChain()); err == nil {
		t.Error("empty test set accepted")
	}
}

func TestNewRoundValidatesTask(t *testing.T) {
	if _, err := NewRound(Task{}, amlayer.DefaultConfig()); err == nil {
		t.Error("invalid task accepted")
	}
}

func TestModelDigestChangesWithWeights(t *testing.T) {
	rng := tensor.NewRNG(3)
	net, err := nn.NewNetwork(nn.NewDense(4, 2, rng))
	if err != nil {
		t.Fatal(err)
	}
	d1 := ModelDigest(net)
	v := net.ParamVector()
	v[0] += 1
	if err := net.SetParamVector(v); err != nil {
		t.Fatal(err)
	}
	if ModelDigest(net) == d1 {
		t.Error("digest must change with weights")
	}
}
