package blockchain

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Hash is a 32-byte block or model digest.
type Hash [32]byte

// Task is one DNN training task published in the task pool. Miners pull a
// task, train a model for it, and propose blocks; the test set identified by
// TestSeed is withheld until enough proposals arrive (Sec. III-A).
type Task struct {
	ID string
	// ModelSpec names the architecture/dataset pair (a modelzoo key).
	ModelSpec string
	// TargetAccuracy is the difficulty knob: the accuracy that ends the
	// round early.
	TargetAccuracy float64
	// MinProposals is the number of candidate models required before the
	// test set is published.
	MinProposals int
	// Reward is the mining reward for the winning block.
	Reward float64
}

// Validate checks the task's parameters.
func (t Task) Validate() error {
	switch {
	case t.ID == "":
		return errors.New("blockchain: task needs an id")
	case t.ModelSpec == "":
		return errors.New("blockchain: task needs a model spec")
	case t.MinProposals < 1:
		return errors.New("blockchain: task needs at least one proposal")
	case t.Reward <= 0:
		return errors.New("blockchain: task needs a positive reward")
	case t.TargetAccuracy < 0 || t.TargetAccuracy > 1:
		return errors.New("blockchain: target accuracy outside [0, 1]")
	}
	return nil
}

// Block is one agreed block: it carries the winning model's digest, its
// measured test accuracy, and the proposer's address (which the AMLayer
// inside the model also encodes — consensus checks both).
type Block struct {
	Height      int
	Prev        Hash
	TaskID      string
	Proposer    string
	ModelDigest Hash
	Accuracy    float64
}

// HashBlock returns the block's digest.
func (b Block) HashBlock() Hash {
	h := sha256.New()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(b.Height))
	h.Write(buf[:])
	h.Write(b.Prev[:])
	h.Write([]byte(b.TaskID))
	h.Write([]byte{0})
	h.Write([]byte(b.Proposer))
	h.Write([]byte{0})
	h.Write(b.ModelDigest[:])
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(b.Accuracy))
	h.Write(buf[:])
	var out Hash
	copy(out[:], h.Sum(nil))
	return out
}

// Errors returned by chain operations.
var (
	ErrBadLink   = errors.New("blockchain: block does not extend the tip")
	ErrEmptyName = errors.New("blockchain: empty chain")
)

// Chain is an append-only chain of agreed blocks starting from a genesis
// block at height 0.
type Chain struct {
	blocks []Block
}

// NewChain starts a chain with a genesis block.
func NewChain() *Chain {
	genesis := Block{Height: 0, TaskID: "genesis"}
	return &Chain{blocks: []Block{genesis}}
}

// Height returns the tip height.
func (c *Chain) Height() int { return len(c.blocks) - 1 }

// Tip returns the latest block.
func (c *Chain) Tip() Block { return c.blocks[len(c.blocks)-1] }

// Block returns the block at the given height.
func (c *Chain) Block(height int) (Block, error) {
	if height < 0 || height >= len(c.blocks) {
		return Block{}, fmt.Errorf("blockchain: height %d of %d", height, len(c.blocks))
	}
	return c.blocks[height], nil
}

// Append adds a block after validating its linkage.
func (c *Chain) Append(b Block) error {
	tip := c.Tip()
	if b.Height != tip.Height+1 {
		return fmt.Errorf("height %d after tip %d: %w", b.Height, tip.Height, ErrBadLink)
	}
	if b.Prev != tip.HashBlock() {
		return fmt.Errorf("prev hash mismatch at height %d: %w", b.Height, ErrBadLink)
	}
	c.blocks = append(c.blocks, b)
	return nil
}

// Verify re-checks every link in the chain; a tampered historic block breaks
// all subsequent links (the double-spend protection RPoL inherits from the
// underlying PoUW chain).
func (c *Chain) Verify() error {
	for i := 1; i < len(c.blocks); i++ {
		if c.blocks[i].Prev != c.blocks[i-1].HashBlock() {
			return fmt.Errorf("link %d→%d broken: %w", i-1, i, ErrBadLink)
		}
		if c.blocks[i].Height != i {
			return fmt.Errorf("height %d at index %d: %w", c.blocks[i].Height, i, ErrBadLink)
		}
	}
	return nil
}

// TaskPool is the queue of published training tasks (stage A of Fig. 2).
type TaskPool struct {
	tasks []Task
}

// Publish validates and enqueues a task.
func (p *TaskPool) Publish(t Task) error {
	if err := t.Validate(); err != nil {
		return err
	}
	p.tasks = append(p.tasks, t)
	return nil
}

// Pull dequeues the oldest task; ok is false when the pool is empty.
func (p *TaskPool) Pull() (Task, bool) {
	if len(p.tasks) == 0 {
		return Task{}, false
	}
	t := p.tasks[0]
	p.tasks = p.tasks[1:]
	return t, true
}

// Len returns the number of queued tasks.
func (p *TaskPool) Len() int { return len(p.tasks) }
