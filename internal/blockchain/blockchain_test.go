package blockchain

import (
	"errors"
	"math"
	"testing"
)

// detRand is a deterministic entropy source for test wallets.
type detRand struct{ state uint64 }

func (d *detRand) Read(p []byte) (int, error) {
	for i := range p {
		d.state = d.state*6364136223846793005 + 1442695040888963407
		p[i] = byte(d.state >> 56)
	}
	return len(p), nil
}

func testWallet(t *testing.T, seed uint64) *Wallet {
	t.Helper()
	w, err := NewWallet(&detRand{state: seed})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestWalletAddressStable(t *testing.T) {
	w := testWallet(t, 1)
	if len(w.Address()) != 40 {
		t.Errorf("address length = %d", len(w.Address()))
	}
	if w.Address() != w.Address() {
		t.Error("address must be stable")
	}
	w2 := testWallet(t, 2)
	if w.Address() == w2.Address() {
		t.Error("different wallets must have different addresses")
	}
}

func TestSignVerify(t *testing.T) {
	w := testWallet(t, 3)
	msg := []byte("block digest")
	sig := w.Sign(msg)
	if err := VerifySignature(w.Address(), w.PublicKey(), msg, sig); err != nil {
		t.Errorf("genuine signature rejected: %v", err)
	}
	if err := VerifySignature(w.Address(), w.PublicKey(), []byte("other"), sig); !errors.Is(err, ErrBadSignature) {
		t.Errorf("forged message: err = %v", err)
	}
	other := testWallet(t, 4)
	if err := VerifySignature(other.Address(), w.PublicKey(), msg, sig); !errors.Is(err, ErrBadSignature) {
		t.Errorf("address mismatch: err = %v", err)
	}
}

func TestTaskValidate(t *testing.T) {
	good := Task{ID: "t", ModelSpec: "resnet18-cifar10", MinProposals: 2, Reward: 1, TargetAccuracy: 0.9}
	if err := good.Validate(); err != nil {
		t.Errorf("valid task rejected: %v", err)
	}
	bads := []Task{
		{ModelSpec: "m", MinProposals: 1, Reward: 1},
		{ID: "t", MinProposals: 1, Reward: 1},
		{ID: "t", ModelSpec: "m", MinProposals: 0, Reward: 1},
		{ID: "t", ModelSpec: "m", MinProposals: 1, Reward: 0},
		{ID: "t", ModelSpec: "m", MinProposals: 1, Reward: 1, TargetAccuracy: 1.5},
	}
	for i, b := range bads {
		if err := b.Validate(); err == nil {
			t.Errorf("bad task %d accepted", i)
		}
	}
}

func TestChainAppendVerify(t *testing.T) {
	c := NewChain()
	if c.Height() != 0 {
		t.Fatalf("genesis height = %d", c.Height())
	}
	b1 := Block{Height: 1, Prev: c.Tip().HashBlock(), TaskID: "t1", Proposer: "a", Accuracy: 0.8}
	if err := c.Append(b1); err != nil {
		t.Fatal(err)
	}
	b2 := Block{Height: 2, Prev: c.Tip().HashBlock(), TaskID: "t2", Proposer: "b", Accuracy: 0.9}
	if err := c.Append(b2); err != nil {
		t.Fatal(err)
	}
	if err := c.Verify(); err != nil {
		t.Errorf("valid chain rejected: %v", err)
	}
	got, err := c.Block(1)
	if err != nil || got.TaskID != "t1" {
		t.Errorf("Block(1) = %+v, %v", got, err)
	}
	if _, err := c.Block(99); err == nil {
		t.Error("want error for out-of-range height")
	}
}

func TestChainRejectsBadLinks(t *testing.T) {
	c := NewChain()
	wrongHeight := Block{Height: 5, Prev: c.Tip().HashBlock()}
	if err := c.Append(wrongHeight); !errors.Is(err, ErrBadLink) {
		t.Errorf("err = %v", err)
	}
	wrongPrev := Block{Height: 1, Prev: Hash{1, 2, 3}}
	if err := c.Append(wrongPrev); !errors.Is(err, ErrBadLink) {
		t.Errorf("err = %v", err)
	}
}

func TestChainDetectsTampering(t *testing.T) {
	c := NewChain()
	for i := 1; i <= 3; i++ {
		b := Block{Height: i, Prev: c.Tip().HashBlock(), TaskID: "t", Accuracy: float64(i) / 10}
		if err := c.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	// Tamper with a historic block (the double-spend attempt).
	c.blocks[1].Accuracy = 0.99
	if err := c.Verify(); !errors.Is(err, ErrBadLink) {
		t.Errorf("tampered chain verified: %v", err)
	}
}

func TestBlockHashSensitivity(t *testing.T) {
	b := Block{Height: 1, TaskID: "t", Proposer: "a", Accuracy: 0.5}
	h1 := b.HashBlock()
	b.Accuracy = math.Nextafter(0.5, 1)
	if b.HashBlock() == h1 {
		t.Error("hash must change with accuracy")
	}
	b.Accuracy = 0.5
	b.Proposer = "b"
	if b.HashBlock() == h1 {
		t.Error("hash must change with proposer")
	}
}

func TestTaskPoolFIFO(t *testing.T) {
	var p TaskPool
	if _, ok := p.Pull(); ok {
		t.Error("empty pool must not yield tasks")
	}
	t1 := Task{ID: "t1", ModelSpec: "m", MinProposals: 1, Reward: 1}
	t2 := Task{ID: "t2", ModelSpec: "m", MinProposals: 1, Reward: 1}
	if err := p.Publish(t1); err != nil {
		t.Fatal(err)
	}
	if err := p.Publish(t2); err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 {
		t.Errorf("Len = %d", p.Len())
	}
	got, ok := p.Pull()
	if !ok || got.ID != "t1" {
		t.Errorf("Pull = %+v, %v", got, ok)
	}
	if err := p.Publish(Task{}); err == nil {
		t.Error("invalid task accepted")
	}
}

func TestEscrowProportionalSettlement(t *testing.T) {
	e, err := NewEscrow(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Deposit(100); err != nil {
		t.Fatal(err)
	}
	if err := e.Credit("w1", 3); err != nil {
		t.Fatal(err)
	}
	if err := e.Credit("w2", 1); err != nil {
		t.Fatal(err)
	}
	mgr, payouts, err := e.Settle()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mgr-10) > 1e-9 {
		t.Errorf("manager cut = %v", mgr)
	}
	if len(payouts) != 2 {
		t.Fatalf("payouts = %+v", payouts)
	}
	want := map[string]float64{"w1": 67.5, "w2": 22.5}
	var total float64
	for _, p := range payouts {
		if math.Abs(p.Amount-want[p.WorkerID]) > 1e-9 {
			t.Errorf("%s payout = %v, want %v", p.WorkerID, p.Amount, want[p.WorkerID])
		}
		total += p.Amount
	}
	if math.Abs(total+mgr-100) > 1e-9 {
		t.Errorf("settlement loses funds: %v", total+mgr)
	}
}

func TestEscrowOneShot(t *testing.T) {
	e, err := NewEscrow(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Deposit(10); err != nil {
		t.Fatal(err)
	}
	if err := e.Credit("w", 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Settle(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Settle(); !errors.Is(err, ErrEscrowSettled) {
		t.Errorf("double settle: err = %v", err)
	}
	if err := e.Deposit(1); !errors.Is(err, ErrEscrowSettled) {
		t.Errorf("deposit after settle: err = %v", err)
	}
	if err := e.Credit("w", 1); !errors.Is(err, ErrEscrowSettled) {
		t.Errorf("credit after settle: err = %v", err)
	}
}

func TestEscrowEdgeCases(t *testing.T) {
	if _, err := NewEscrow(1); !errors.Is(err, ErrBadCut) {
		t.Errorf("err = %v", err)
	}
	if _, err := NewEscrow(-0.1); !errors.Is(err, ErrBadCut) {
		t.Errorf("err = %v", err)
	}
	e, err := NewEscrow(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Settle(); !errors.Is(err, ErrNoDeposit) {
		t.Errorf("settle without deposit: err = %v", err)
	}
	e2, err := NewEscrow(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.Deposit(-1); err == nil {
		t.Error("negative deposit accepted")
	}
	if err := e2.Credit("w", 0); err == nil {
		t.Error("zero credit accepted")
	}
	// Deposit but no contributions: manager keeps all.
	if err := e2.Deposit(10); err != nil {
		t.Fatal(err)
	}
	mgr, payouts, err := e2.Settle()
	if err != nil {
		t.Fatal(err)
	}
	if mgr != 10 || payouts != nil {
		t.Errorf("no-contribution settle = %v, %v", mgr, payouts)
	}
}
