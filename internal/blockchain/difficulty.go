package blockchain

import (
	"errors"
	"math"
	"time"
)

// DifficultyController retargets a PoUW task's difficulty — the target test
// accuracy that ends a round — so that block production time stays near a
// desired interval. The paper flags this as the open knob for very large
// models ("the difficulty level (test set accuracy) should be adjusted to
// accommodate a reasonable block production time", Sec. VII-E); this
// controller implements the standard logarithmic retarget used by
// production chains, applied to accuracy instead of hash difficulty.
//
// Accuracy difficulty is nonlinear (the last points of accuracy cost far
// more training than the first), so the controller moves the target by a
// fixed accuracy step per doubling/halving of block time, clamped to a
// sane range and a maximum per-retarget swing.
type DifficultyController struct {
	// TargetBlockTime is the desired production interval.
	TargetBlockTime time.Duration
	// Step is the accuracy change applied per log2 unit of timing error
	// (e.g. 0.02 ⇒ a block that took twice the target lowers the bar by
	// two points of accuracy).
	Step float64
	// MinAccuracy and MaxAccuracy clamp the target.
	MinAccuracy, MaxAccuracy float64
	// MaxSwing caps one retarget's change (default: 4×Step).
	MaxSwing float64
}

// Errors for controller configuration.
var ErrBadController = errors.New("blockchain: invalid difficulty controller")

// Validate checks the controller's configuration.
func (d DifficultyController) Validate() error {
	switch {
	case d.TargetBlockTime <= 0:
		return ErrBadController
	case d.Step <= 0:
		return ErrBadController
	case d.MinAccuracy < 0 || d.MaxAccuracy > 1 || d.MinAccuracy >= d.MaxAccuracy:
		return ErrBadController
	}
	return nil
}

// Retarget returns the next round's target accuracy given the current
// target and the last block's production time. Faster-than-target blocks
// raise the bar; slower blocks lower it.
func (d DifficultyController) Retarget(current float64, lastBlockTime time.Duration) (float64, error) {
	if err := d.Validate(); err != nil {
		return 0, err
	}
	if lastBlockTime <= 0 {
		return 0, errors.New("blockchain: non-positive block time")
	}
	// log2(target/actual): positive when the block was fast.
	speed := math.Log2(float64(d.TargetBlockTime) / float64(lastBlockTime))
	delta := d.Step * speed
	maxSwing := d.MaxSwing
	if maxSwing <= 0 {
		maxSwing = 4 * d.Step
	}
	if delta > maxSwing {
		delta = maxSwing
	}
	if delta < -maxSwing {
		delta = -maxSwing
	}
	next := current + delta
	if next < d.MinAccuracy {
		next = d.MinAccuracy
	}
	if next > d.MaxAccuracy {
		next = d.MaxAccuracy
	}
	return next, nil
}
