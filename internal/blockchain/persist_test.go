package blockchain

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func savedChain(t *testing.T) (*Chain, string) {
	t.Helper()
	c := NewChain()
	for i := 1; i <= 3; i++ {
		b := Block{
			Height: i, Prev: c.Tip().HashBlock(),
			TaskID: "t", Proposer: "p", Accuracy: float64(i) / 10,
		}
		b.ModelDigest[0] = byte(i)
		if err := c.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "chain.json")
	if err := c.Save(path); err != nil {
		t.Fatal(err)
	}
	return c, path
}

func TestChainSaveLoadRoundTrip(t *testing.T) {
	orig, path := savedChain(t)
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Height() != orig.Height() {
		t.Fatalf("height = %d, want %d", loaded.Height(), orig.Height())
	}
	if loaded.Tip().HashBlock() != orig.Tip().HashBlock() {
		t.Error("tip hash changed across persistence")
	}
	// The loaded chain keeps extending correctly.
	b := Block{Height: 4, Prev: loaded.Tip().HashBlock(), TaskID: "t"}
	if err := loaded.Append(b); err != nil {
		t.Errorf("append after load: %v", err)
	}
}

func TestLoadDetectsTampering(t *testing.T) {
	_, path := savedChain(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip an accuracy value in the JSON.
	tampered := []byte(string(data))
	idx := -1
	for i := range tampered {
		if tampered[i] == '0' && i+2 < len(tampered) && tampered[i+1] == '.' && tampered[i+2] == '1' {
			idx = i + 2
			break
		}
	}
	if idx < 0 {
		t.Skip("accuracy literal not found")
	}
	tampered[idx] = '9'
	if err := os.WriteFile(path, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); !errors.Is(err, ErrCorruptChain) {
		t.Errorf("tampered chain loaded: %v", err)
	}
}

func TestLoadValidation(t *testing.T) {
	dir := t.TempDir()
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file loaded")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); err == nil {
		t.Error("bad JSON loaded")
	}
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte(`{"version":1,"blocks":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(empty); !errors.Is(err, ErrCorruptChain) {
		t.Errorf("empty chain loaded: %v", err)
	}
	badVersion := filepath.Join(dir, "v.json")
	if err := os.WriteFile(badVersion, []byte(`{"version":9,"blocks":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(badVersion); !errors.Is(err, ErrCorruptChain) {
		t.Errorf("bad version loaded: %v", err)
	}
	badHash := filepath.Join(dir, "h.json")
	if err := os.WriteFile(badHash, []byte(`{"version":1,"blocks":[{"height":0,"prev":"AA==","taskId":"genesis","proposer":"","modelDigest":"AA==","accuracy":0}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(badHash); !errors.Is(err, ErrCorruptChain) {
		t.Errorf("ragged hashes loaded: %v", err)
	}
}
