package blockchain

import (
	"errors"
	"fmt"
	"sort"
)

// Escrow is the smart-contract-style fair-exchange ledger the paper lists
// as future work (Sec. IX): the pool manager deposits a round's mining
// reward, records each worker's verified contribution, and the contract
// releases proportional payouts — the manager cannot withhold rewards from
// verified workers, and workers whose submissions were rejected receive
// nothing.
type Escrow struct {
	deposited     float64
	managerCut    float64
	contributions map[string]float64
	settled       bool
}

// Errors returned by escrow operations.
var (
	ErrEscrowSettled = errors.New("blockchain: escrow already settled")
	ErrNoDeposit     = errors.New("blockchain: nothing deposited")
	ErrBadCut        = errors.New("blockchain: manager cut outside [0, 1)")
)

// NewEscrow opens an escrow with the manager's fee fraction.
func NewEscrow(managerCut float64) (*Escrow, error) {
	if managerCut < 0 || managerCut >= 1 {
		return nil, fmt.Errorf("cut %v: %w", managerCut, ErrBadCut)
	}
	return &Escrow{managerCut: managerCut, contributions: make(map[string]float64)}, nil
}

// Deposit adds reward funds (called when the pool's block wins).
func (e *Escrow) Deposit(amount float64) error {
	if e.settled {
		return ErrEscrowSettled
	}
	if amount <= 0 {
		return errors.New("blockchain: deposit must be positive")
	}
	e.deposited += amount
	return nil
}

// Credit records a worker's verified contribution weight (e.g. accepted
// epochs × shard size). Rejected submissions are simply never credited.
func (e *Escrow) Credit(workerID string, weight float64) error {
	if e.settled {
		return ErrEscrowSettled
	}
	if weight <= 0 {
		return errors.New("blockchain: contribution weight must be positive")
	}
	e.contributions[workerID] += weight
	return nil
}

// Payout is one settled transfer.
type Payout struct {
	WorkerID string
	Amount   float64
}

// Settle distributes the deposit: the manager keeps its cut, workers split
// the remainder proportionally to credited contributions. Settling is
// one-shot.
func (e *Escrow) Settle() (managerAmount float64, payouts []Payout, err error) {
	if e.settled {
		return 0, nil, ErrEscrowSettled
	}
	if e.deposited <= 0 {
		return 0, nil, ErrNoDeposit
	}
	e.settled = true
	managerAmount = e.deposited * e.managerCut
	pool := e.deposited - managerAmount
	var total float64
	for _, w := range e.contributions {
		total += w
	}
	if total == 0 {
		// No verified work: the manager keeps everything (nobody earned).
		return e.deposited, nil, nil
	}
	ids := make([]string, 0, len(e.contributions))
	for id := range e.contributions {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	payouts = make([]Payout, 0, len(ids))
	for _, id := range ids {
		payouts = append(payouts, Payout{
			WorkerID: id,
			Amount:   pool * e.contributions[id] / total,
		})
	}
	return managerAmount, payouts, nil
}
