package blockchain

import (
	"errors"
	"math"
	"testing"
	"time"
)

func controller() DifficultyController {
	return DifficultyController{
		TargetBlockTime: 10 * time.Minute,
		Step:            0.02,
		MinAccuracy:     0.5,
		MaxAccuracy:     0.99,
	}
}

func TestRetargetFastBlocksRaiseDifficulty(t *testing.T) {
	d := controller()
	next, err := d.Retarget(0.8, 5*time.Minute) // twice as fast
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(next-0.82) > 1e-12 {
		t.Errorf("next = %v, want 0.82", next)
	}
}

func TestRetargetSlowBlocksLowerDifficulty(t *testing.T) {
	d := controller()
	next, err := d.Retarget(0.8, 20*time.Minute) // twice as slow
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(next-0.78) > 1e-12 {
		t.Errorf("next = %v, want 0.78", next)
	}
}

func TestRetargetStableAtTarget(t *testing.T) {
	d := controller()
	next, err := d.Retarget(0.8, 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if next != 0.8 {
		t.Errorf("on-target block moved difficulty: %v", next)
	}
}

func TestRetargetSwingCapped(t *testing.T) {
	d := controller()
	// A block 1000× too fast must move at most MaxSwing (= 4×Step).
	next, err := d.Retarget(0.8, 600*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(next-0.88) > 1e-12 {
		t.Errorf("next = %v, want capped 0.88", next)
	}
}

func TestRetargetClampedToRange(t *testing.T) {
	d := controller()
	hi, err := d.Retarget(0.985, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if hi > d.MaxAccuracy {
		t.Errorf("exceeded max: %v", hi)
	}
	lo, err := d.Retarget(0.51, 10*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if lo < d.MinAccuracy {
		t.Errorf("below min: %v", lo)
	}
}

func TestRetargetConverges(t *testing.T) {
	// Model: block time grows with difficulty (a round at accuracy a takes
	// a/0.8 × target). Iterating the controller must settle near the
	// accuracy whose block time equals the target (a = 0.8).
	d := controller()
	acc := 0.6
	for i := 0; i < 60; i++ {
		blockTime := time.Duration(float64(d.TargetBlockTime) * acc / 0.8)
		next, err := d.Retarget(acc, blockTime)
		if err != nil {
			t.Fatal(err)
		}
		acc = next
	}
	if math.Abs(acc-0.8) > 0.02 {
		t.Errorf("controller settled at %v, want ≈ 0.8", acc)
	}
}

func TestControllerValidation(t *testing.T) {
	bads := []DifficultyController{
		{TargetBlockTime: 0, Step: 0.1, MinAccuracy: 0.1, MaxAccuracy: 0.9},
		{TargetBlockTime: time.Minute, Step: 0, MinAccuracy: 0.1, MaxAccuracy: 0.9},
		{TargetBlockTime: time.Minute, Step: 0.1, MinAccuracy: 0.9, MaxAccuracy: 0.1},
		{TargetBlockTime: time.Minute, Step: 0.1, MinAccuracy: 0.1, MaxAccuracy: 1.5},
	}
	for i, b := range bads {
		if _, err := b.Retarget(0.5, time.Minute); !errors.Is(err, ErrBadController) {
			t.Errorf("bad controller %d accepted: %v", i, err)
		}
	}
	d := controller()
	if _, err := d.Retarget(0.5, 0); err == nil {
		t.Error("zero block time accepted")
	}
}
