// Package blockchain implements the PoUW blockchain substrate the mining
// pool lives in (Sec. III-A): Ed25519 wallets and addresses, a task pool
// that publishes DNN training tasks, blocks that carry trained models, the
// consensus round that releases the test set only after enough proposals
// arrive and elects the best-generalizing model, and an escrow ledger for
// the reward fair-exchange the paper lists as future work.
package blockchain

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
)

// Wallet is a consensus node's signing identity. Its address is derived
// from the public key and is what the AMLayer encodes.
type Wallet struct {
	pub  ed25519.PublicKey
	priv ed25519.PrivateKey
}

// ErrBadSignature is returned when signature verification fails.
var ErrBadSignature = errors.New("blockchain: bad signature")

// NewWallet generates a wallet from the given entropy source (use
// crypto/rand.Reader in production; tests may use a deterministic reader).
func NewWallet(entropy io.Reader) (*Wallet, error) {
	pub, priv, err := ed25519.GenerateKey(entropy)
	if err != nil {
		return nil, fmt.Errorf("blockchain wallet: %w", err)
	}
	return &Wallet{pub: pub, priv: priv}, nil
}

// Address returns the wallet's blockchain address: the hex-encoded SHA-256
// of the public key, truncated to 40 characters (20 bytes), Ethereum-style.
func (w *Wallet) Address() string {
	sum := sha256.Sum256(w.pub)
	return hex.EncodeToString(sum[:20])
}

// PublicKey returns the wallet's public key.
func (w *Wallet) PublicKey() ed25519.PublicKey { return w.pub }

// Sign signs the message with the wallet's private key.
func (w *Wallet) Sign(message []byte) []byte {
	return ed25519.Sign(w.priv, message)
}

// VerifySignature checks a signature against a public key and confirms the
// public key hashes to the claimed address.
func VerifySignature(address string, pub ed25519.PublicKey, message, sig []byte) error {
	sum := sha256.Sum256(pub)
	if hex.EncodeToString(sum[:20]) != address {
		return fmt.Errorf("public key does not match address %s: %w", address, ErrBadSignature)
	}
	if !ed25519.Verify(pub, message, sig) {
		return ErrBadSignature
	}
	return nil
}
