package blockchain

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"sort"

	"rpol/internal/amlayer"
	"rpol/internal/dataset"
	"rpol/internal/nn"
	"rpol/internal/tensor"
)

// Candidate is one consensus node's proposal for a round: a trained model
// claimed by a proposer address, signed by the proposer's wallet.
type Candidate struct {
	Proposer string
	Net      *nn.Network
	PubKey   []byte
	Sig      []byte
}

// ModelDigest hashes a network's trainable parameters.
func ModelDigest(net *nn.Network) Hash {
	sum := sha256.Sum256(net.ParamVector().Encode())
	return Hash(sum)
}

// SignCandidate produces the signature binding (proposer, model digest).
func SignCandidate(w *Wallet, net *nn.Network) []byte {
	digest := ModelDigest(net)
	return w.Sign(digest[:])
}

// Round collects candidates for one task and elects a winner once the test
// set is released. Before MinProposals candidates have arrived, the test
// set stays sealed — this is the mechanism that stops miners from training
// directly on the test data (Sec. III-A).
type Round struct {
	Task      Task
	AMLConfig amlayer.Config
	// AMLDepth selects the AMLayer variant consensus verifies: 0 checks a
	// single residual block (amlayer.VerifyDense), ≥1 checks a stacked
	// AMLayer of that depth (amlayer.VerifyDenseStack).
	AMLDepth   int
	candidates []Candidate
}

// Errors returned by consensus operations.
var (
	ErrSealed      = errors.New("blockchain: test set still sealed")
	ErrNoCandidate = errors.New("blockchain: no valid candidate")
)

// NewRound starts a consensus round for the task.
func NewRound(task Task, amlCfg amlayer.Config) (*Round, error) {
	if err := task.Validate(); err != nil {
		return nil, err
	}
	return &Round{Task: task, AMLConfig: amlCfg}, nil
}

// Propose submits a candidate. Structural checks (signature, address
// binding) happen immediately; accuracy evaluation waits for the reveal.
func (r *Round) Propose(c Candidate) error {
	if c.Net == nil {
		return errors.New("blockchain: candidate without model")
	}
	digest := ModelDigest(c.Net)
	if err := VerifySignature(c.Proposer, c.PubKey, digest[:], c.Sig); err != nil {
		return fmt.Errorf("candidate from %s: %w", c.Proposer, err)
	}
	r.candidates = append(r.candidates, c)
	return nil
}

// Proposals returns the number of submitted candidates.
func (r *Round) Proposals() int { return len(r.candidates) }

// TestSetReleased reports whether enough proposals arrived to unseal the
// test set.
func (r *Round) TestSetReleased() bool {
	return len(r.candidates) >= r.Task.MinProposals
}

// Outcome is the result of deciding a round.
type Outcome struct {
	Winner   Candidate
	Accuracy float64
	Block    Block
	// Rejected lists proposer addresses whose candidates failed AMLayer
	// ownership verification — stolen models (Sec. V-A).
	Rejected []string
}

// Decide evaluates all candidates on the (now released) test set, discards
// any whose AMLayer does not encode the proposer's address, and elects the
// highest test accuracy. The winning block extends the chain tip.
func (r *Round) Decide(test *dataset.Dataset, chain *Chain) (*Outcome, error) {
	if !r.TestSetReleased() {
		return nil, fmt.Errorf("%d of %d proposals: %w", len(r.candidates), r.Task.MinProposals, ErrSealed)
	}
	if test == nil || test.Len() == 0 {
		return nil, errors.New("blockchain: empty test set")
	}
	xs := make([]tensor.Vector, test.Len())
	labels := make([]int, test.Len())
	for i, ex := range test.Examples {
		xs[i] = ex.Features
		labels[i] = ex.Label
	}

	out := &Outcome{Accuracy: -1}
	// Deterministic evaluation order regardless of proposal arrival.
	ordered := append([]Candidate(nil), r.candidates...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Proposer < ordered[j].Proposer })
	for _, c := range ordered {
		// Consensus nodes regenerate the AMLayer from the proposer's address
		// and check the model embeds it (Sec. V-A).
		var ownerErr error
		if r.AMLDepth > 0 {
			ownerErr = amlayer.VerifyDenseStack(c.Net, c.Proposer, r.AMLDepth, r.AMLConfig)
		} else {
			ownerErr = amlayer.VerifyDense(c.Net, c.Proposer, r.AMLConfig)
		}
		if ownerErr != nil {
			out.Rejected = append(out.Rejected, c.Proposer)
			continue
		}
		acc, err := c.Net.Accuracy(xs, labels)
		if err != nil {
			return nil, fmt.Errorf("evaluate candidate %s: %w", c.Proposer, err)
		}
		if acc > out.Accuracy {
			out.Accuracy = acc
			out.Winner = c
		}
	}
	if out.Accuracy < 0 {
		return nil, ErrNoCandidate
	}
	tip := chain.Tip()
	out.Block = Block{
		Height:      tip.Height + 1,
		Prev:        tip.HashBlock(),
		TaskID:      r.Task.ID,
		Proposer:    out.Winner.Proposer,
		ModelDigest: ModelDigest(out.Winner.Net),
		Accuracy:    out.Accuracy,
	}
	if err := chain.Append(out.Block); err != nil {
		return nil, err
	}
	return out, nil
}
