package blockchain

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"rpol/internal/fsio"
)

// chainFile is the on-disk chain encoding.
type chainFile struct {
	Version int         `json:"version"`
	Blocks  []blockJSON `json:"blocks"`
}

// blockJSON is a Block with explicit wire tags.
type blockJSON struct {
	Height      int     `json:"height"`
	Prev        []byte  `json:"prev"`
	TaskID      string  `json:"taskId"`
	Proposer    string  `json:"proposer"`
	ModelDigest []byte  `json:"modelDigest"`
	Accuracy    float64 `json:"accuracy"`
}

// chainFileVersion identifies the chain-file schema.
const chainFileVersion = 1

// ErrCorruptChain is returned when a loaded chain fails validation.
var ErrCorruptChain = errors.New("blockchain: corrupt chain file")

// Save writes the chain (including the genesis block) to path. A saved
// chain re-validates on load, so on-disk tampering is detected.
func (c *Chain) Save(path string) error {
	file := chainFile{Version: chainFileVersion}
	for _, b := range c.blocks {
		file.Blocks = append(file.Blocks, blockJSON{
			Height:      b.Height,
			Prev:        append([]byte(nil), b.Prev[:]...),
			TaskID:      b.TaskID,
			Proposer:    b.Proposer,
			ModelDigest: append([]byte(nil), b.ModelDigest[:]...),
			Accuracy:    b.Accuracy,
		})
	}
	data, err := json.MarshalIndent(file, "", " ")
	if err != nil {
		return fmt.Errorf("blockchain save: %w", err)
	}
	// Checksummed frame + atomic rename: a crash mid-save leaves the previous
	// chain file, and any later on-disk bit rot fails the checksum on load.
	if err := fsio.WriteFileAtomic(path, fsio.EncodeFile(data)); err != nil {
		return fmt.Errorf("blockchain save: %w", err)
	}
	return nil
}

// Load reads a chain from path and verifies every link.
func Load(path string) (*Chain, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("blockchain load: %w", err)
	}
	// Pre-fsio chain files are raw JSON; DecodeFile passes them through.
	payload, _, err := fsio.DecodeFile(data)
	if err != nil {
		return nil, fmt.Errorf("blockchain load: %v: %w", err, ErrCorruptChain)
	}
	var file chainFile
	if err := json.Unmarshal(payload, &file); err != nil {
		return nil, fmt.Errorf("blockchain load: %w", err)
	}
	if file.Version != chainFileVersion {
		return nil, fmt.Errorf("version %d: %w", file.Version, ErrCorruptChain)
	}
	if len(file.Blocks) == 0 {
		return nil, fmt.Errorf("no blocks: %w", ErrCorruptChain)
	}
	chain := &Chain{}
	for i, bj := range file.Blocks {
		if len(bj.Prev) != len(Hash{}) || len(bj.ModelDigest) != len(Hash{}) {
			return nil, fmt.Errorf("block %d hash sizes: %w", i, ErrCorruptChain)
		}
		b := Block{
			Height:   bj.Height,
			TaskID:   bj.TaskID,
			Proposer: bj.Proposer,
			Accuracy: bj.Accuracy,
		}
		copy(b.Prev[:], bj.Prev)
		copy(b.ModelDigest[:], bj.ModelDigest)
		chain.blocks = append(chain.blocks, b)
	}
	if err := chain.Verify(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptChain, err)
	}
	return chain, nil
}
