// Package obscli wires the runtime flag surface shared by the rpolbench
// and rpolsim commands: -metrics, -table, -trace, -pprof, -wallclock,
// -jobs, and -faultseed. It builds the obs.Observer those flags describe,
// installs it as the process-wide default (so pools constructed deep inside
// experiment runners record into it), installs the -jobs compute default
// and the -faultseed fault plan, and renders the snapshot when the run
// finishes.
package obscli

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof" // -pprof registers the profiling handlers
	"os"

	"rpol/internal/netsim"
	"rpol/internal/obs"
	"rpol/internal/parallel"
)

// Options holds the parsed observability flags.
type Options struct {
	// Metrics prints a text metrics snapshot after the run.
	Metrics bool
	// Table renders the snapshot (and per-phase counters) as a box-drawing
	// table instead of the plain text exposition. Implies Metrics.
	Table bool
	// TraceFile receives the JSONL span trace when non-empty.
	TraceFile string
	// PprofAddr serves net/http/pprof when non-empty (e.g. "localhost:6060").
	PprofAddr string
	// WallClock timestamps trace spans with real elapsed time instead of the
	// deterministic simulated clock.
	WallClock bool
	// Jobs is the process-wide default worker count for the deterministic
	// compute runtime (internal/parallel): 0 keeps the serial code paths,
	// any n ≥ 1 enables the chunked runtime, whose results are
	// bit-identical for every n.
	Jobs int
	// FaultSeed seeds the process-wide deterministic fault plan
	// (netsim.DefaultFaultConfig rates): injected message drops/delays and
	// worker crash-restart windows, replayed bit-identically for the same
	// seed. 0 (the default) injects no faults.
	FaultSeed int64
}

// Register declares the flags on fs (the default flag.CommandLine in main).
func (o *Options) Register(fs *flag.FlagSet) {
	fs.BoolVar(&o.Metrics, "metrics", false, "print a metrics snapshot after the run")
	fs.BoolVar(&o.Table, "table", false, "render the metrics snapshot as a box-drawing table (implies -metrics)")
	fs.StringVar(&o.TraceFile, "trace", "", "write a JSONL span trace to this file")
	fs.StringVar(&o.PprofAddr, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	fs.BoolVar(&o.WallClock, "wallclock", false, "timestamp trace spans with wall time (non-deterministic) instead of simulated time")
	fs.IntVar(&o.Jobs, "jobs", 0, "deterministic compute workers per task (0 = serial; results are bit-identical for any value ≥ 1)")
	fs.Int64Var(&o.FaultSeed, "faultseed", 0, "seed for deterministic fault injection (drops, delays, worker crashes); 0 disables, same seed replays identically")
}

// enabled reports whether any flag asks for an observer.
func (o *Options) enabled() bool {
	return o.Metrics || o.Table || o.TraceFile != ""
}

// ProtocolClock returns the clock experiment timings should read: an
// obs.WallClock when -wallclock was set, nil otherwise (callers fall back
// to their deterministic SimClock default). This is the only sanctioned
// route from real time into experiment measurements; rpolvet's nowallclock
// analyzer rejects direct time.Now use in protocol code.
func (o *Options) ProtocolClock() obs.Clock {
	if o.WallClock {
		return obs.NewWallClock()
	}
	return nil
}

// Setup builds the observer the options describe, installs it as the
// process-wide default, and starts the pprof server if requested. The
// returned finish func must run after the workload: it prints the snapshot
// to out and closes the trace file, returning the first trace write error.
// When no observability flag is set the observer is nil and finish only
// serves pprof cleanup (a no-op).
func (o *Options) Setup(out io.Writer) (*obs.Observer, func() error, error) {
	// -jobs and -faultseed configure process-wide defaults regardless of
	// whether any observability flag is set.
	parallel.SetDefaultWorkers(o.Jobs)
	if o.FaultSeed != 0 {
		netsim.SetDefaultFaultPlan(netsim.NewFaultPlan(o.FaultSeed, netsim.DefaultFaultConfig()))
	}
	if o.PprofAddr != "" {
		ln := o.PprofAddr
		go func() {
			// The profiling server runs for the process lifetime; failure to
			// bind is reported but never fatal to the workload.
			if err := http.ListenAndServe(ln, nil); err != nil {
				fmt.Fprintln(os.Stderr, "pprof:", err)
			}
		}()
	}
	if !o.enabled() {
		return nil, func() error { return nil }, nil
	}

	reg := obs.NewRegistry()
	var (
		tracer    *obs.Tracer
		traceSink *os.File
	)
	if o.TraceFile != "" {
		f, err := os.Create(o.TraceFile)
		if err != nil {
			return nil, nil, fmt.Errorf("trace file: %w", err)
		}
		traceSink = f
		var clock obs.Clock
		if o.WallClock {
			clock = obs.NewWallClock()
		}
		tracer = obs.NewTracer(f, clock) // nil clock selects the SimClock
	}
	observer := obs.NewObserver(reg, tracer)
	obs.SetDefault(observer)

	finish := func() error {
		if o.Table {
			fmt.Fprint(out, obs.MetricsTable(reg.Snapshot()))
		} else if o.Metrics {
			if err := reg.Snapshot().WriteText(out); err != nil {
				return err
			}
		}
		if traceSink != nil {
			if err := traceSink.Close(); err != nil {
				return err
			}
			if err := tracer.Err(); err != nil {
				return fmt.Errorf("trace: %w", err)
			}
		}
		return nil
	}
	return observer, finish, nil
}
