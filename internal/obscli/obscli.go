// Package obscli wires the runtime flag surface shared by the rpolbench
// and rpolsim commands: -metrics, -table, -trace, -serve, -pprof,
// -wallclock, -jobs, and -faultseed. It builds the obs.Observer those flags
// describe, installs it as the process-wide default (so pools constructed
// deep inside experiment runners record into it), installs the -jobs
// compute default and the -faultseed fault plan, starts the live exposition
// and profiling servers, and renders the snapshot when the run finishes.
package obscli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof" // -pprof registers the profiling handlers
	"os"
	"time"

	"rpol/internal/netsim"
	"rpol/internal/obs"
	"rpol/internal/obshttp"
	"rpol/internal/parallel"
)

// Options holds the parsed observability flags.
type Options struct {
	// Metrics prints a text metrics snapshot after the run.
	Metrics bool
	// Table renders the snapshot (and per-phase counters) as a box-drawing
	// table instead of the plain text exposition. Implies Metrics.
	Table bool
	// TraceFile receives the JSONL span trace when non-empty.
	TraceFile string
	// Serve exposes the live observability plane (/metrics, /snapshot,
	// /delta, /events, /healthz) on this address while the run is in
	// flight (e.g. "localhost:7070"). Implies an observer with an event
	// log attached.
	Serve string
	// PprofAddr serves net/http/pprof when non-empty (e.g. "localhost:6060").
	PprofAddr string
	// WallClock timestamps trace spans with real elapsed time instead of the
	// deterministic simulated clock.
	WallClock bool
	// Jobs is the process-wide default worker count for the deterministic
	// compute runtime (internal/parallel): 0 keeps the serial code paths,
	// any n ≥ 1 enables the chunked runtime, whose results are
	// bit-identical for every n.
	Jobs int
	// FaultSeed seeds the process-wide deterministic fault plan
	// (netsim.DefaultFaultConfig rates): injected message drops/delays and
	// worker crash-restart windows, replayed bit-identically for the same
	// seed. 0 (the default) injects no faults.
	FaultSeed int64

	// BoundServe and BoundPprof are the resolved listen addresses after
	// Setup (":0" ports filled in); empty when the server was not requested.
	BoundServe string
	BoundPprof string
}

// DefaultMaxSealAge is the /healthz liveness threshold a -serve endpoint
// enforces: the run reports unhealthy when no epoch has sealed for this
// long on the event log's clock.
const DefaultMaxSealAge = 2 * time.Minute

// shutdownTimeout bounds how long finish waits for in-flight scrapes
// before force-closing the exposition and pprof listeners.
const shutdownTimeout = 2 * time.Second

// Register declares the flags on fs (the default flag.CommandLine in main).
func (o *Options) Register(fs *flag.FlagSet) {
	fs.BoolVar(&o.Metrics, "metrics", false, "print a metrics snapshot after the run")
	fs.BoolVar(&o.Table, "table", false, "render the metrics snapshot as a box-drawing table (implies -metrics)")
	fs.StringVar(&o.TraceFile, "trace", "", "write a JSONL span trace to this file")
	fs.StringVar(&o.Serve, "serve", "", "serve live metrics/events HTTP endpoints on this address (e.g. localhost:7070)")
	fs.StringVar(&o.PprofAddr, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	fs.BoolVar(&o.WallClock, "wallclock", false, "timestamp trace spans with wall time (non-deterministic) instead of simulated time")
	fs.IntVar(&o.Jobs, "jobs", 0, "deterministic compute workers per task (0 = serial; results are bit-identical for any value ≥ 1)")
	fs.Int64Var(&o.FaultSeed, "faultseed", 0, "seed for deterministic fault injection (drops, delays, worker crashes); 0 disables, same seed replays identically")
}

// enabled reports whether any flag asks for an observer.
func (o *Options) enabled() bool {
	return o.Metrics || o.Table || o.TraceFile != "" || o.Serve != ""
}

// ProtocolClock returns the clock experiment timings should read: an
// obs.WallClock when -wallclock was set, nil otherwise (callers fall back
// to their deterministic SimClock default). This is the only sanctioned
// route from real time into experiment measurements; rpolvet's nowallclock
// analyzer rejects direct time.Now use in protocol code.
func (o *Options) ProtocolClock() obs.Clock {
	if o.WallClock {
		return obs.NewWallClock()
	}
	return nil
}

// serveHTTP binds addr and serves handler in the background, returning the
// bound address and a bounded-deadline stopper. Startup (bind) failures are
// returned synchronously so a typo'd address fails the command instead of
// a goroutine racing os.Exit.
func serveHTTP(addr string, handler http.Handler) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: handler}
	go func() { _ = srv.Serve(ln) }()
	stop := func() error {
		ctx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return srv.Close()
		}
		return nil
	}
	return ln.Addr().String(), stop, nil
}

// Setup builds the observer the options describe, installs it as the
// process-wide default, and starts the exposition and pprof servers if
// requested. The returned finish func must run after the workload: it
// prints the snapshot to out, closes the trace file, and shuts the HTTP
// servers down with a bounded deadline so no listener outlives the
// command. When no observability flag is set the observer is nil and
// finish is a no-op.
func (o *Options) Setup(out io.Writer) (*obs.Observer, func() error, error) {
	// -jobs and -faultseed configure process-wide defaults regardless of
	// whether any observability flag is set.
	parallel.SetDefaultWorkers(o.Jobs)
	if o.FaultSeed != 0 {
		netsim.SetDefaultFaultPlan(netsim.NewFaultPlan(o.FaultSeed, netsim.DefaultFaultConfig()))
	}
	var stops []func() error
	if o.PprofAddr != "" {
		addr, stop, err := serveHTTP(o.PprofAddr, http.DefaultServeMux)
		if err != nil {
			return nil, nil, fmt.Errorf("pprof: %w", err)
		}
		fmt.Fprintln(os.Stderr, "pprof listening on", addr)
		o.BoundPprof = addr
		stops = append(stops, stop)
	}
	stopAll := func() error {
		var first error
		for _, stop := range stops {
			if err := stop(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	if !o.enabled() {
		return nil, stopAll, nil
	}

	reg := obs.NewRegistry()
	var (
		tracer    *obs.Tracer
		traceSink *os.File
	)
	if o.TraceFile != "" {
		f, err := os.Create(o.TraceFile)
		if err != nil {
			return nil, nil, fmt.Errorf("trace file: %w", err)
		}
		traceSink = f
		tracer = obs.NewTracer(f, o.ProtocolClock()) // nil clock selects the SimClock
	}
	observer := obs.NewObserver(reg, tracer)
	if o.Serve != "" {
		// The event log backing -serve runs on a wall clock: /healthz ages
		// the last seal against real time, which is what a liveness probe
		// means operationally. Event timestamps are operator-facing only —
		// the protocol's deterministic results never read them.
		events := obs.NewEvents(0, obs.NewWallClock())
		events.Observe(reg)
		observer.AttachEvents(events)
		addr, stop, err := serveHTTP(o.Serve, obshttp.NewServer(obshttp.Config{
			Observer:   observer,
			MaxSealAge: DefaultMaxSealAge,
		}).Handler())
		if err != nil {
			return nil, nil, fmt.Errorf("serve: %w", err)
		}
		fmt.Fprintln(os.Stderr, "observability plane listening on", addr)
		o.BoundServe = addr
		stops = append(stops, stop)
	}
	obs.SetDefault(observer)

	finish := func() error {
		if o.Table {
			fmt.Fprint(out, obs.MetricsTable(reg.Snapshot()))
		} else if o.Metrics {
			if err := reg.Snapshot().WriteText(out); err != nil {
				return err
			}
		}
		if traceSink != nil {
			if err := traceSink.Close(); err != nil {
				return err
			}
			if err := tracer.Err(); err != nil {
				return fmt.Errorf("trace: %w", err)
			}
		}
		return stopAll()
	}
	return observer, finish, nil
}
