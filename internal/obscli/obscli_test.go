package obscli

import (
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rpol/internal/obs"
)

func TestRegisterDeclaresFlags(t *testing.T) {
	var o Options
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	o.Register(fs)
	err := fs.Parse([]string{"-metrics", "-table", "-trace", "t.jsonl", "-serve", "localhost:0", "-pprof", "localhost:0", "-wallclock"})
	if err != nil {
		t.Fatal(err)
	}
	if !o.Metrics || !o.Table || o.TraceFile != "t.jsonl" || o.Serve != "localhost:0" ||
		o.PprofAddr != "localhost:0" || !o.WallClock {
		t.Errorf("parsed options: %+v", o)
	}
}

func TestSetupDisabledIsNoOp(t *testing.T) {
	prev := obs.Default()
	defer obs.SetDefault(prev)
	var o Options
	observer, finish, err := o.Setup(os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	if observer != nil {
		t.Error("disabled options built an observer")
	}
	if err := finish(); err != nil {
		t.Errorf("finish: %v", err)
	}
}

func TestSetupMetricsAndTrace(t *testing.T) {
	prev := obs.Default()
	defer obs.SetDefault(prev)

	tracePath := filepath.Join(t.TempDir(), "out.jsonl")
	o := Options{Metrics: true, TraceFile: tracePath}
	var out strings.Builder
	observer, finish, err := o.Setup(&out)
	if err != nil {
		t.Fatal(err)
	}
	if observer == nil {
		t.Fatal("no observer built")
	}
	if obs.Default() != observer {
		t.Error("observer not installed as process default")
	}
	observer.Counter("demo_total").Add(3)
	observer.Start(nil, "demo").End()
	if err := finish(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "counter demo_total 3") {
		t.Errorf("snapshot output missing counter:\n%s", out.String())
	}
	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = f.Close() }()
	events, err := obs.ReadEvents(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Errorf("trace has %d events, want 2", len(events))
	}
}

// TestSetupServeLifecycle brings the live exposition plane up via the flag
// surface, scrapes it, and proves finish() releases the listener: the bug
// this guards against is HTTP servers leaking past the run.
func TestSetupServeLifecycle(t *testing.T) {
	prev := obs.Default()
	defer obs.SetDefault(prev)

	o := Options{Serve: "localhost:0"}
	var out strings.Builder
	observer, finish, err := o.Setup(&out)
	if err != nil {
		t.Fatal(err)
	}
	if o.BoundServe == "" {
		t.Fatal("Setup did not record the bound serve address")
	}
	if observer.Events() == nil {
		t.Fatal("-serve observer has no event log attached")
	}
	observer.Counter("demo_total").Add(2)
	observer.Publish(obs.StreamEvent{Kind: obs.EventEpochSealed, Epoch: 0})

	resp, err := http.Get("http://" + o.BoundServe + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if !strings.Contains(string(body), "counter demo_total 2") {
		t.Errorf("/metrics = %q", body)
	}
	resp, err = http.Get("http://" + o.BoundServe + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz = %d", resp.StatusCode)
	}

	if err := finish(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + o.BoundServe + "/metrics"); err == nil {
		t.Error("serve listener still accepting after finish()")
	}
}

// TestSetupPprofLifecycle checks the same contract for -pprof, which used
// to leak its listener for the process lifetime.
func TestSetupPprofLifecycle(t *testing.T) {
	prev := obs.Default()
	defer obs.SetDefault(prev)

	o := Options{PprofAddr: "localhost:0"}
	_, finish, err := o.Setup(os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	if o.BoundPprof == "" {
		t.Fatal("Setup did not record the bound pprof address")
	}
	resp, err := http.Get("http://" + o.BoundPprof + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof endpoint = %d", resp.StatusCode)
	}
	if err := finish(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + o.BoundPprof + "/debug/pprof/cmdline"); err == nil {
		t.Error("pprof listener still accepting after finish()")
	}
}

func TestSetupTableOutput(t *testing.T) {
	prev := obs.Default()
	defer obs.SetDefault(prev)

	o := Options{Table: true}
	var out strings.Builder
	observer, finish, err := o.Setup(&out)
	if err != nil {
		t.Fatal(err)
	}
	observer.Counter("x_total").Inc()
	if err := finish(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "┌") || !strings.Contains(out.String(), "x_total") {
		t.Errorf("table output missing:\n%s", out.String())
	}
}
