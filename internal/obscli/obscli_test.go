package obscli

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rpol/internal/obs"
)

func TestRegisterDeclaresFlags(t *testing.T) {
	var o Options
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	o.Register(fs)
	err := fs.Parse([]string{"-metrics", "-table", "-trace", "t.jsonl", "-pprof", "localhost:0", "-wallclock"})
	if err != nil {
		t.Fatal(err)
	}
	if !o.Metrics || !o.Table || o.TraceFile != "t.jsonl" || o.PprofAddr != "localhost:0" || !o.WallClock {
		t.Errorf("parsed options: %+v", o)
	}
}

func TestSetupDisabledIsNoOp(t *testing.T) {
	prev := obs.Default()
	defer obs.SetDefault(prev)
	var o Options
	observer, finish, err := o.Setup(os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	if observer != nil {
		t.Error("disabled options built an observer")
	}
	if err := finish(); err != nil {
		t.Errorf("finish: %v", err)
	}
}

func TestSetupMetricsAndTrace(t *testing.T) {
	prev := obs.Default()
	defer obs.SetDefault(prev)

	tracePath := filepath.Join(t.TempDir(), "out.jsonl")
	o := Options{Metrics: true, TraceFile: tracePath}
	var out strings.Builder
	observer, finish, err := o.Setup(&out)
	if err != nil {
		t.Fatal(err)
	}
	if observer == nil {
		t.Fatal("no observer built")
	}
	if obs.Default() != observer {
		t.Error("observer not installed as process default")
	}
	observer.Counter("demo_total").Add(3)
	observer.Start(nil, "demo").End()
	if err := finish(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "counter demo_total 3") {
		t.Errorf("snapshot output missing counter:\n%s", out.String())
	}
	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = f.Close() }()
	events, err := obs.ReadEvents(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Errorf("trace has %d events, want 2", len(events))
	}
}

func TestSetupTableOutput(t *testing.T) {
	prev := obs.Default()
	defer obs.SetDefault(prev)

	o := Options{Table: true}
	var out strings.Builder
	observer, finish, err := o.Setup(&out)
	if err != nil {
		t.Fatal(err)
	}
	observer.Counter("x_total").Inc()
	if err := finish(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "┌") || !strings.Contains(out.String(), "x_total") {
		t.Errorf("table output missing:\n%s", out.String())
	}
}
