package commitment

import "testing"

// FuzzDecodeHashList drives the commitment decoder with arbitrary bytes.
func FuzzDecodeHashList(f *testing.F) {
	hl, err := NewHashList([][]byte{[]byte("a"), []byte("b")})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(hl.Encode())
	f.Add([]byte{})
	f.Add(make([]byte, HashSize-1))
	f.Add(make([]byte, HashSize*3))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeHashList(data)
		if err != nil {
			return
		}
		re := got.Encode()
		if len(re) != len(data) {
			t.Fatalf("round trip length %d != %d", len(re), len(data))
		}
		for i := range re {
			if re[i] != data[i] {
				t.Fatalf("round trip byte %d differs", i)
			}
		}
		// Any decoded commitment must support leaf verification without
		// panicking, even on out-of-range indices.
		_ = got.VerifyLeaf(-1, nil)
		_ = got.VerifyLeaf(got.Len(), nil)
		_ = got.VerifyLeaf(0, []byte("probe"))
	})
}

// FuzzVerifyMerkle drives Merkle proof verification with hostile proofs.
func FuzzVerifyMerkle(f *testing.F) {
	tree, err := NewMerkleTree([][]byte{[]byte("x"), []byte("y"), []byte("z")})
	if err != nil {
		f.Fatal(err)
	}
	root := tree.Root()
	proof, err := tree.Prove(1)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(1, []byte("y"), proof.Siblings[0][:], proof.Siblings[1][:])
	f.Add(0, []byte(""), []byte{}, []byte{})
	f.Fuzz(func(t *testing.T, idx int, payload, sib1, sib2 []byte) {
		p := MerkleProof{Index: idx}
		var h1, h2 Hash
		copy(h1[:], sib1)
		copy(h2[:], sib2)
		p.Siblings = []Hash{h1, h2}
		// Must never panic; acceptance only for the genuine (payload,
		// proof) pair.
		err := VerifyMerkle(root, 3, payload, p)
		if err == nil {
			if idx != 1 || string(payload) != "y" {
				t.Fatalf("forged proof accepted at idx %d payload %q", idx, payload)
			}
		}
	})
}

// FuzzMutateMerkleProof starts from a genuine proof and applies a fuzzed
// mutation — flip a sibling bit, shift the index, truncate or extend the
// path. No mutated proof may ever verify: the commitment must bind the
// payload to exactly one (index, path) pair.
func FuzzMutateMerkleProof(f *testing.F) {
	const leaves = 11
	ps := make([][]byte, leaves)
	for i := range ps {
		ps[i] = []byte{byte('a' + i)}
	}
	tree, err := NewMerkleTree(ps)
	if err != nil {
		f.Fatal(err)
	}
	root := tree.Root()
	f.Add(3, 0, 0, uint8(0x01), 0)
	f.Add(10, 1, 5, uint8(0x80), 0)
	f.Add(0, 0, 0, uint8(0), 7)
	f.Add(5, 2, 31, uint8(0), -2)
	f.Fuzz(func(t *testing.T, leaf, sibIdx, byteIdx int, flip uint8, depthDelta int) {
		leaf = int(uint(leaf) % uint(leaves))
		proof, err := tree.Prove(leaf)
		if err != nil {
			t.Fatal(err)
		}
		mutated := false
		if flip != 0 && len(proof.Siblings) > 0 {
			si := int(uint(sibIdx) % uint(len(proof.Siblings)))
			bi := int(uint(byteIdx) % uint(HashSize))
			proof.Siblings[si][bi] ^= flip
			mutated = true
		}
		if depthDelta > 0 {
			proof.Siblings = append(proof.Siblings, make([]Hash, depthDelta%4+1)...)
			mutated = true
		} else if depthDelta < 0 && len(proof.Siblings) > 0 {
			cut := int(uint(-(depthDelta+1))%uint(len(proof.Siblings))) + 1
			proof.Siblings = proof.Siblings[:len(proof.Siblings)-cut]
			mutated = true
		}
		if !mutated {
			// Index shift alone: any wrong index must fail too.
			proof.Index = (proof.Index + 1) % leaves
		}
		if err := VerifyMerkle(root, leaves, ps[leaf], proof); err == nil {
			t.Fatalf("mutated proof verified: leaf=%d sib=%d byte=%d flip=%#x depth=%d",
				leaf, sibIdx, byteIdx, flip, depthDelta)
		}
	})
}

// FuzzDecodeProof drives the proof decoder with arbitrary bytes: it must
// never panic or over-allocate, and anything it accepts must re-encode to
// the same bytes.
func FuzzDecodeProof(f *testing.F) {
	tree, err := NewMerkleTree([][]byte{[]byte("x"), []byte("y"), []byte("z")})
	if err != nil {
		f.Fatal(err)
	}
	proof, err := tree.Prove(2)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(proof.AppendEncode(nil))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0x7F, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeProof(data)
		if err != nil {
			return
		}
		re := got.AppendEncode(nil)
		if len(re) != len(data) {
			t.Fatalf("round trip length %d != %d", len(re), len(data))
		}
		for i := range re {
			if re[i] != data[i] {
				t.Fatalf("round trip byte %d differs", i)
			}
		}
	})
}
