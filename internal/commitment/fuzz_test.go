package commitment

import "testing"

// FuzzDecodeHashList drives the commitment decoder with arbitrary bytes.
func FuzzDecodeHashList(f *testing.F) {
	hl, err := NewHashList([][]byte{[]byte("a"), []byte("b")})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(hl.Encode())
	f.Add([]byte{})
	f.Add(make([]byte, HashSize-1))
	f.Add(make([]byte, HashSize*3))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeHashList(data)
		if err != nil {
			return
		}
		re := got.Encode()
		if len(re) != len(data) {
			t.Fatalf("round trip length %d != %d", len(re), len(data))
		}
		for i := range re {
			if re[i] != data[i] {
				t.Fatalf("round trip byte %d differs", i)
			}
		}
		// Any decoded commitment must support leaf verification without
		// panicking, even on out-of-range indices.
		_ = got.VerifyLeaf(-1, nil)
		_ = got.VerifyLeaf(got.Len(), nil)
		_ = got.VerifyLeaf(0, []byte("probe"))
	})
}

// FuzzVerifyMerkle drives Merkle proof verification with hostile proofs.
func FuzzVerifyMerkle(f *testing.F) {
	tree, err := NewMerkleTree([][]byte{[]byte("x"), []byte("y"), []byte("z")})
	if err != nil {
		f.Fatal(err)
	}
	root := tree.Root()
	proof, err := tree.Prove(1)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(1, []byte("y"), proof.Siblings[0][:], proof.Siblings[1][:])
	f.Add(0, []byte(""), []byte{}, []byte{})
	f.Fuzz(func(t *testing.T, idx int, payload, sib1, sib2 []byte) {
		p := MerkleProof{Index: idx}
		var h1, h2 Hash
		copy(h1[:], sib1)
		copy(h2[:], sib2)
		p.Siblings = []Hash{h1, h2}
		// Must never panic; acceptance only for the genuine (payload,
		// proof) pair.
		err := VerifyMerkle(root, 3, payload, p)
		if err == nil {
			if idx != 1 || string(payload) != "y" {
				t.Fatalf("forged proof accepted at idx %d payload %q", idx, payload)
			}
		}
	})
}
