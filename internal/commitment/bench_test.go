package commitment

import (
	"encoding/binary"
	"testing"
)

// benchLeaves is the benchmark epoch size: 64 checkpoints, the BENCH_pr9
// reference point for the hash-list vs Merkle comparison.
const benchLeaves = 64

func benchPayloads() [][]byte {
	payloads := make([][]byte, benchLeaves)
	for i := range payloads {
		p := make([]byte, 128)
		binary.LittleEndian.PutUint64(p, uint64(i)*0x9e3779b97f4a7c15)
		payloads[i] = p
	}
	return payloads
}

// BenchmarkMerkleTreeBuild measures the batch tree construction a worker
// would pay if it deferred commitment to the end of the epoch.
func BenchmarkMerkleTreeBuild(b *testing.B) {
	payloads := benchPayloads()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewMerkleTree(payloads); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIncrementalMerkle measures the streaming path: leaves pushed one
// at a time as checkpoints land during training, root taken at the end. It
// must stay in the same ballpark as the batch build — the streaming
// commitment is free relative to training, not a new cost center.
func BenchmarkIncrementalMerkle(b *testing.B) {
	payloads := benchPayloads()
	leaves := make([]Hash, len(payloads))
	for i, p := range payloads {
		leaves[i] = HashLeaf(p)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var inc IncrementalMerkle
		for _, l := range leaves {
			inc.Push(l)
		}
		if _, err := inc.Root(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMerkleProveVerify measures one verifier pull: open a leaf of the
// 64-leaf tree and check the inclusion proof against the root.
func BenchmarkMerkleProveVerify(b *testing.B) {
	payloads := benchPayloads()
	tree, err := NewMerkleTree(payloads)
	if err != nil {
		b.Fatal(err)
	}
	root := tree.Root()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx := i % benchLeaves
		proof, err := tree.Prove(idx)
		if err != nil {
			b.Fatal(err)
		}
		if err := VerifyMerkle(root, benchLeaves, payloads[idx], proof); err != nil {
			b.Fatal(err)
		}
	}
}
