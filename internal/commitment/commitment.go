// Package commitment implements the binding commitments pool workers publish
// over their training checkpoints (Sec. V-B). A commitment must satisfy two
// requirements: it covers the proofs of all checkpoints in order, and any
// individual proof can later be verified against it.
//
// Both constructions from the paper are provided:
//
//   - HashList: the ordered list of SHA-256 digests of the checkpoint
//     payloads (the paper's primary construction), and
//   - MerkleTree: a Merkle hash tree whose leaves are the checkpoint
//     payloads, yielding O(log n) inclusion proofs (Merkle 1980).
//
// The worker publishes the commitment *before* the manager reveals its
// sampling decisions — the "commit-and-prove" paradigm that prevents lazy
// workers from training only the sampled steps.
package commitment

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"

	"rpol/internal/parallel"
)

// HashSize is the digest size in bytes (SHA-256).
const HashSize = sha256.Size

// Hash is a single SHA-256 digest.
type Hash [HashSize]byte

// HashLeaf returns the domain-separated digest of a leaf payload.
func HashLeaf(payload []byte) Hash {
	h := sha256.New()
	h.Write([]byte{0x00}) // leaf domain separator
	h.Write(payload)
	var out Hash
	copy(out[:], h.Sum(nil))
	return out
}

func hashNodes(l, r Hash) Hash {
	h := sha256.New()
	h.Write([]byte{0x01}) // interior-node domain separator
	h.Write(l[:])
	h.Write(r[:])
	var out Hash
	copy(out[:], h.Sum(nil))
	return out
}

// Errors returned by commitment verification.
var (
	ErrEmpty      = errors.New("commitment: no leaves")
	ErrOutOfRange = errors.New("commitment: leaf index out of range")
	ErrMismatch   = errors.New("commitment: payload does not match commitment")
)

// HashList is the paper's primary commitment construction: the ordered
// SHA-256 digests of all checkpoint payloads.
type HashList struct {
	Leaves []Hash
}

// NewHashList commits to the ordered payloads.
func NewHashList(payloads [][]byte) (*HashList, error) {
	return NewHashListPool(nil, payloads)
}

// NewHashListPool is NewHashList with leaf hashing chunked across the pool.
// Leaf i's digest depends only on payload i and is written to slot i, so the
// commitment is identical to the serial construction for any worker count. A
// nil pool runs serially.
func NewHashListPool(p *parallel.Pool, payloads [][]byte) (*HashList, error) {
	if len(payloads) == 0 {
		return nil, ErrEmpty
	}
	return &HashList{Leaves: hashLeaves(p, payloads)}, nil
}

// NewLeafList wraps pre-computed leaf digests as a HashList commitment.
// Callers that stream payloads through a reused encode buffer hash each
// leaf themselves with HashLeaf and commit the digests without ever
// retaining a payload copy; the result is identical to NewHashList over
// the same payload bytes.
func NewLeafList(leaves []Hash) (*HashList, error) {
	if len(leaves) == 0 {
		return nil, ErrEmpty
	}
	return &HashList{Leaves: leaves}, nil
}

// hashLeaves digests every payload, chunked across the pool when one is
// given.
func hashLeaves(p *parallel.Pool, payloads [][]byte) []Hash {
	leaves := make([]Hash, len(payloads))
	p.For(len(payloads), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			leaves[i] = HashLeaf(payloads[i])
		}
	})
	return leaves
}

// Len returns the number of committed leaves.
func (h *HashList) Len() int { return len(h.Leaves) }

// Root condenses the list into a single digest (hash of the concatenated
// leaf digests), used when a compact identifier of the whole commitment is
// needed.
func (h *HashList) Root() Hash {
	hs := sha256.New()
	hs.Write([]byte{0x02})
	for _, l := range h.Leaves {
		hs.Write(l[:])
	}
	var out Hash
	copy(out[:], hs.Sum(nil))
	return out
}

// VerifyLeaf checks that payload is exactly what was committed at index i.
func (h *HashList) VerifyLeaf(i int, payload []byte) error {
	if i < 0 || i >= len(h.Leaves) {
		return fmt.Errorf("index %d of %d: %w", i, len(h.Leaves), ErrOutOfRange)
	}
	if HashLeaf(payload) != h.Leaves[i] {
		return fmt.Errorf("leaf %d: %w", i, ErrMismatch)
	}
	return nil
}

// Size returns the commitment's wire size in bytes.
func (h *HashList) Size() int { return HashSize * len(h.Leaves) }

// Encode serializes the commitment.
func (h *HashList) Encode() []byte {
	return h.AppendEncode(make([]byte, 0, h.Size()))
}

// AppendEncode appends the Encode representation to dst and returns the
// extended slice, so wire paths can serialize into a reused buffer.
func (h *HashList) AppendEncode(dst []byte) []byte {
	for _, l := range h.Leaves {
		dst = append(dst, l[:]...)
	}
	return dst
}

// DecodeHashList parses a commitment previously produced by Encode.
func DecodeHashList(buf []byte) (*HashList, error) {
	if len(buf) == 0 || len(buf)%HashSize != 0 {
		return nil, fmt.Errorf("commitment: bad encoding length %d", len(buf))
	}
	leaves := make([]Hash, len(buf)/HashSize)
	for i := range leaves {
		copy(leaves[i][:], buf[i*HashSize:])
	}
	return &HashList{Leaves: leaves}, nil
}

// MerkleTree is the alternative O(log n)-proof construction.
type MerkleTree struct {
	levels [][]Hash // levels[0] = leaves, last level = [root]
}

// MerkleProof is an inclusion path from a leaf to the root.
type MerkleProof struct {
	Index    int
	Siblings []Hash
}

// NewMerkleTree builds the tree over the ordered payloads. Odd nodes are
// paired with themselves.
func NewMerkleTree(payloads [][]byte) (*MerkleTree, error) {
	return NewMerkleTreePool(nil, payloads)
}

// NewMerkleTreePool is NewMerkleTree with leaf hashing chunked across the
// pool (the leaves dominate the work: each one digests a full checkpoint
// payload, while interior levels hash 64 bytes each). The tree is identical
// to the serial construction for any worker count. A nil pool runs serially.
func NewMerkleTreePool(p *parallel.Pool, payloads [][]byte) (*MerkleTree, error) {
	if len(payloads) == 0 {
		return nil, ErrEmpty
	}
	level := hashLeaves(p, payloads)
	levels := [][]Hash{level}
	for len(level) > 1 {
		next := make([]Hash, (len(level)+1)/2)
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				next[i/2] = hashNodes(level[i], level[i+1])
			} else {
				next[i/2] = hashNodes(level[i], level[i])
			}
		}
		levels = append(levels, next)
		level = next
	}
	return &MerkleTree{levels: levels}, nil
}

// Len returns the number of leaves.
func (t *MerkleTree) Len() int { return len(t.levels[0]) }

// Root returns the Merkle root.
func (t *MerkleTree) Root() Hash { return t.levels[len(t.levels)-1][0] }

// Prove returns the inclusion proof for leaf i.
func (t *MerkleTree) Prove(i int) (MerkleProof, error) {
	if i < 0 || i >= t.Len() {
		return MerkleProof{}, fmt.Errorf("index %d of %d: %w", i, t.Len(), ErrOutOfRange)
	}
	proof := MerkleProof{Index: i}
	idx := i
	for _, level := range t.levels[:len(t.levels)-1] {
		sib := idx ^ 1
		if sib >= len(level) {
			sib = idx // odd node paired with itself
		}
		proof.Siblings = append(proof.Siblings, level[sib])
		idx /= 2
	}
	return proof, nil
}

// VerifyMerkle checks an inclusion proof of payload against root for a tree
// with the given leaf count. The count is part of the verification contract:
// without it, a proof for leaf i would also verify for any phantom index
// sharing i's left/right path bits (e.g. index 17 with a depth-2 proof for
// index 1), letting a prover claim one committed value at several positions.
func VerifyMerkle(root Hash, leaves int, payload []byte, proof MerkleProof) error {
	if leaves < 1 {
		return fmt.Errorf("tree with %d leaves: %w", leaves, ErrEmpty)
	}
	if proof.Index < 0 || proof.Index >= leaves {
		return fmt.Errorf("index %d of %d: %w", proof.Index, leaves, ErrOutOfRange)
	}
	if len(proof.Siblings) != treeDepth(leaves) {
		return fmt.Errorf("proof depth %d, want %d: %w",
			len(proof.Siblings), treeDepth(leaves), ErrMismatch)
	}
	cur := HashLeaf(payload)
	idx := proof.Index
	for _, sib := range proof.Siblings {
		if idx%2 == 0 {
			cur = hashNodes(cur, sib)
		} else {
			cur = hashNodes(sib, cur)
		}
		idx /= 2
	}
	if !bytes.Equal(cur[:], root[:]) {
		return fmt.Errorf("leaf %d: %w", proof.Index, ErrMismatch)
	}
	return nil
}

// treeDepth returns the proof length of a tree with n leaves (levels below
// the root).
func treeDepth(n int) int {
	depth := 0
	for n > 1 {
		n = (n + 1) / 2
		depth++
	}
	return depth
}

// ProofSize returns the wire size in bytes of a Merkle proof with the given
// number of siblings.
func ProofSize(siblings int) int { return 8 + HashSize*siblings }
