// Package commitment implements the binding commitments pool workers publish
// over their training checkpoints (Sec. V-B). A commitment must satisfy two
// requirements: it covers the proofs of all checkpoints in order, and any
// individual proof can later be verified against it.
//
// Both constructions from the paper are provided:
//
//   - HashList: the ordered list of SHA-256 digests of the checkpoint
//     payloads (the paper's primary construction), and
//   - MerkleTree: a Merkle hash tree whose leaves are the checkpoint
//     payloads, yielding O(log n) inclusion proofs (Merkle 1980).
//
// The worker publishes the commitment *before* the manager reveals its
// sampling decisions — the "commit-and-prove" paradigm that prevents lazy
// workers from training only the sampled steps.
package commitment

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"

	"rpol/internal/parallel"
)

// HashSize is the digest size in bytes (SHA-256).
const HashSize = sha256.Size

// Hash is a single SHA-256 digest.
type Hash [HashSize]byte

// HashLeaf returns the domain-separated digest of a leaf payload.
func HashLeaf(payload []byte) Hash {
	h := sha256.New()
	h.Write([]byte{0x00}) // leaf domain separator
	h.Write(payload)
	var out Hash
	copy(out[:], h.Sum(nil))
	return out
}

func hashNodes(l, r Hash) Hash {
	h := sha256.New()
	h.Write([]byte{0x01}) // interior-node domain separator
	h.Write(l[:])
	h.Write(r[:])
	var out Hash
	copy(out[:], h.Sum(nil))
	return out
}

// Errors returned by commitment verification.
var (
	ErrEmpty      = errors.New("commitment: no leaves")
	ErrOutOfRange = errors.New("commitment: leaf index out of range")
	ErrMismatch   = errors.New("commitment: payload does not match commitment")
)

// HashList is the paper's primary commitment construction: the ordered
// SHA-256 digests of all checkpoint payloads.
type HashList struct {
	Leaves []Hash
}

// NewHashList commits to the ordered payloads.
func NewHashList(payloads [][]byte) (*HashList, error) {
	return NewHashListPool(nil, payloads)
}

// NewHashListPool is NewHashList with leaf hashing chunked across the pool.
// Leaf i's digest depends only on payload i and is written to slot i, so the
// commitment is identical to the serial construction for any worker count. A
// nil pool runs serially.
func NewHashListPool(p *parallel.Pool, payloads [][]byte) (*HashList, error) {
	if len(payloads) == 0 {
		return nil, ErrEmpty
	}
	return &HashList{Leaves: hashLeaves(p, payloads)}, nil
}

// NewLeafList wraps pre-computed leaf digests as a HashList commitment.
// Callers that stream payloads through a reused encode buffer hash each
// leaf themselves with HashLeaf and commit the digests without ever
// retaining a payload copy; the result is identical to NewHashList over
// the same payload bytes.
func NewLeafList(leaves []Hash) (*HashList, error) {
	if len(leaves) == 0 {
		return nil, ErrEmpty
	}
	return &HashList{Leaves: leaves}, nil
}

// hashLeaves digests every payload, chunked across the pool when one is
// given.
func hashLeaves(p *parallel.Pool, payloads [][]byte) []Hash {
	leaves := make([]Hash, len(payloads))
	p.For(len(payloads), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			leaves[i] = HashLeaf(payloads[i])
		}
	})
	return leaves
}

// Len returns the number of committed leaves.
func (h *HashList) Len() int { return len(h.Leaves) }

// Root condenses the list into a single digest (hash of the concatenated
// leaf digests), used when a compact identifier of the whole commitment is
// needed.
func (h *HashList) Root() Hash {
	hs := sha256.New()
	hs.Write([]byte{0x02})
	for _, l := range h.Leaves {
		hs.Write(l[:])
	}
	var out Hash
	copy(out[:], hs.Sum(nil))
	return out
}

// VerifyLeaf checks that payload is exactly what was committed at index i.
func (h *HashList) VerifyLeaf(i int, payload []byte) error {
	if i < 0 || i >= len(h.Leaves) {
		return fmt.Errorf("index %d of %d: %w", i, len(h.Leaves), ErrOutOfRange)
	}
	if HashLeaf(payload) != h.Leaves[i] {
		return fmt.Errorf("leaf %d: %w", i, ErrMismatch)
	}
	return nil
}

// Size returns the commitment's wire size in bytes.
func (h *HashList) Size() int { return HashSize * len(h.Leaves) }

// Encode serializes the commitment.
func (h *HashList) Encode() []byte {
	return h.AppendEncode(make([]byte, 0, h.Size()))
}

// AppendEncode appends the Encode representation to dst and returns the
// extended slice, so wire paths can serialize into a reused buffer.
func (h *HashList) AppendEncode(dst []byte) []byte {
	for _, l := range h.Leaves {
		dst = append(dst, l[:]...)
	}
	return dst
}

// DecodeHashList parses a commitment previously produced by Encode.
//
// The leaf count is taken from the buffer length, so callers decoding
// attacker-controlled bytes should prefer DecodeHashListN, which bounds the
// allocation by an independently declared leaf count.
func DecodeHashList(buf []byte) (*HashList, error) {
	if len(buf) == 0 || len(buf)%HashSize != 0 {
		return nil, fmt.Errorf("commitment: bad encoding length %d", len(buf))
	}
	return DecodeHashListN(buf, len(buf)/HashSize)
}

// DecodeHashListN parses a commitment previously produced by Encode,
// requiring it to hold exactly n leaves. Decoding attacker-controlled bytes
// through this form bounds the leaf allocation by the declared checkpoint
// count instead of whatever length the peer chose to send.
func DecodeHashListN(buf []byte, n int) (*HashList, error) {
	if n < 1 {
		return nil, fmt.Errorf("commitment: bad leaf count %d", n)
	}
	if len(buf) != n*HashSize {
		return nil, fmt.Errorf("commitment: encoding length %d, want %d for %d leaves",
			len(buf), n*HashSize, n)
	}
	leaves := make([]Hash, n)
	for i := range leaves {
		copy(leaves[i][:], buf[i*HashSize:])
	}
	return &HashList{Leaves: leaves}, nil
}

// MerkleTree is the alternative O(log n)-proof construction.
type MerkleTree struct {
	levels [][]Hash // levels[0] = leaves, last level = [root]
}

// MerkleProof is an inclusion path from a leaf to the root.
type MerkleProof struct {
	Index    int
	Siblings []Hash
}

// NewMerkleTree builds the tree over the ordered payloads. Odd nodes are
// paired with themselves.
func NewMerkleTree(payloads [][]byte) (*MerkleTree, error) {
	return NewMerkleTreePool(nil, payloads)
}

// NewMerkleTreePool is NewMerkleTree with leaf hashing chunked across the
// pool (the leaves dominate the work: each one digests a full checkpoint
// payload, while interior levels hash 64 bytes each). The tree is identical
// to the serial construction for any worker count. A nil pool runs serially.
func NewMerkleTreePool(p *parallel.Pool, payloads [][]byte) (*MerkleTree, error) {
	if len(payloads) == 0 {
		return nil, ErrEmpty
	}
	return NewMerkleFromLeaves(hashLeaves(p, payloads))
}

// NewMerkleFromLeaves builds the tree over pre-computed leaf digests, the
// counterpart of NewLeafList for callers that hash streamed payloads
// themselves. The result is identical to NewMerkleTree over the same payload
// bytes.
func NewMerkleFromLeaves(leaves []Hash) (*MerkleTree, error) {
	if len(leaves) == 0 {
		return nil, ErrEmpty
	}
	level := leaves
	levels := [][]Hash{level}
	for len(level) > 1 {
		next := make([]Hash, (len(level)+1)/2)
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				next[i/2] = hashNodes(level[i], level[i+1])
			} else {
				next[i/2] = hashNodes(level[i], level[i])
			}
		}
		levels = append(levels, next)
		level = next
	}
	return &MerkleTree{levels: levels}, nil
}

// Len returns the number of leaves.
func (t *MerkleTree) Len() int { return len(t.levels[0]) }

// Root returns the Merkle root.
func (t *MerkleTree) Root() Hash { return t.levels[len(t.levels)-1][0] }

// Prove returns the inclusion proof for leaf i.
func (t *MerkleTree) Prove(i int) (MerkleProof, error) {
	if i < 0 || i >= t.Len() {
		return MerkleProof{}, fmt.Errorf("index %d of %d: %w", i, t.Len(), ErrOutOfRange)
	}
	proof := MerkleProof{Index: i}
	idx := i
	for _, level := range t.levels[:len(t.levels)-1] {
		sib := idx ^ 1
		if sib >= len(level) {
			sib = idx // odd node paired with itself
		}
		proof.Siblings = append(proof.Siblings, level[sib])
		idx /= 2
	}
	return proof, nil
}

// VerifyMerkle checks an inclusion proof of payload against root for a tree
// with the given leaf count. The count is part of the verification contract:
// without it, a proof for leaf i would also verify for any phantom index
// sharing i's left/right path bits (e.g. index 17 with a depth-2 proof for
// index 1), letting a prover claim one committed value at several positions.
func VerifyMerkle(root Hash, leaves int, payload []byte, proof MerkleProof) error {
	if leaves < 1 {
		return fmt.Errorf("tree with %d leaves: %w", leaves, ErrEmpty)
	}
	if proof.Index < 0 || proof.Index >= leaves {
		return fmt.Errorf("index %d of %d: %w", proof.Index, leaves, ErrOutOfRange)
	}
	if len(proof.Siblings) != treeDepth(leaves) {
		return fmt.Errorf("proof depth %d, want %d: %w",
			len(proof.Siblings), treeDepth(leaves), ErrMismatch)
	}
	cur := HashLeaf(payload)
	idx := proof.Index
	for _, sib := range proof.Siblings {
		if idx%2 == 0 {
			cur = hashNodes(cur, sib)
		} else {
			cur = hashNodes(sib, cur)
		}
		idx /= 2
	}
	if !bytes.Equal(cur[:], root[:]) {
		return fmt.Errorf("leaf %d: %w", proof.Index, ErrMismatch)
	}
	return nil
}

// treeDepth returns the proof length of a tree with n leaves (levels below
// the root).
func treeDepth(n int) int {
	depth := 0
	for n > 1 {
		n = (n + 1) / 2
		depth++
	}
	return depth
}

// ProofSize returns the wire size in bytes of a Merkle proof with the given
// number of siblings.
func ProofSize(siblings int) int { return 8 + HashSize*siblings }

// MaxProofSiblings bounds the depth a decoded proof may claim. A tree with
// 2^40 leaves is far beyond any epoch's checkpoint count, so anything deeper
// is malformed rather than merely large.
const MaxProofSiblings = 40

// Size returns the proof's wire size in bytes.
func (p MerkleProof) Size() int { return ProofSize(len(p.Siblings)) }

// AppendEncode appends the proof's wire form — index and sibling count as
// 4-byte big-endian words, then the raw sibling digests root-ward — to dst
// and returns the extended slice. The fixed-width header keeps the encoded
// size equal to ProofSize(len(Siblings)).
func (p MerkleProof) AppendEncode(dst []byte) []byte {
	dst = append(dst,
		byte(p.Index>>24), byte(p.Index>>16), byte(p.Index>>8), byte(p.Index))
	n := len(p.Siblings)
	dst = append(dst, byte(n>>24), byte(n>>16), byte(n>>8), byte(n))
	for _, s := range p.Siblings {
		dst = append(dst, s[:]...)
	}
	return dst
}

// DecodeProof parses a proof previously produced by AppendEncode. The
// sibling count is bounded by MaxProofSiblings before any allocation, so a
// malformed header cannot force a large leaf slice; the buffer must contain
// exactly the declared siblings.
func DecodeProof(buf []byte) (MerkleProof, error) {
	if len(buf) < 8 {
		return MerkleProof{}, fmt.Errorf("commitment: proof too short (%d bytes)", len(buf))
	}
	idx := int(buf[0])<<24 | int(buf[1])<<16 | int(buf[2])<<8 | int(buf[3])
	n := int(buf[4])<<24 | int(buf[5])<<16 | int(buf[6])<<8 | int(buf[7])
	if n < 0 || n > MaxProofSiblings {
		return MerkleProof{}, fmt.Errorf("commitment: proof depth %d out of range", n)
	}
	if len(buf) != ProofSize(n) {
		return MerkleProof{}, fmt.Errorf("commitment: proof length %d, want %d for depth %d",
			len(buf), ProofSize(n), n)
	}
	proof := MerkleProof{Index: idx, Siblings: make([]Hash, n)}
	for i := range proof.Siblings {
		copy(proof.Siblings[i][:], buf[8+i*HashSize:])
	}
	return proof, nil
}

// IncrementalMerkle builds a Merkle tree one leaf at a time — the streaming
// counterpart of NewMerkleFromLeaves for workers that commit checkpoints as
// training produces them. Internally it keeps the classic frozen-subtree
// state: frozen[h] holds the root of the completed subtree of height h whose
// presence is recorded by bit h of the leaf count, so Push does O(1)
// amortized hashing and Root folds the O(log n) frozen roots with the same
// duplicate-odd-node rule as the batch construction. At every leaf count the
// root is bit-identical to NewMerkleTree over the same leaves.
//
// The builder also retains the pushed leaf digests so that Tree can
// materialize the full tree for proof serving after training completes; the
// retained slice costs HashSize bytes per leaf, negligible next to the
// checkpoints themselves.
type IncrementalMerkle struct {
	n      int
	frozen []Hash
	leaves []Hash
	tree   *MerkleTree
}

// Push appends the next leaf digest.
func (m *IncrementalMerkle) Push(leaf Hash) {
	m.tree = nil
	m.leaves = append(m.leaves, leaf)
	cur := leaf
	h := 0
	for m.n>>h&1 == 1 {
		cur = hashNodes(m.frozen[h], cur)
		h++
	}
	if h < len(m.frozen) {
		m.frozen[h] = cur
	} else {
		m.frozen = append(m.frozen, cur)
	}
	m.n++
}

// Len returns the number of pushed leaves.
func (m *IncrementalMerkle) Len() int { return m.n }

// Root folds the frozen subtree roots into the Merkle root, duplicating odd
// nodes exactly as NewMerkleTree does. It is an error to ask for the root of
// an empty builder.
func (m *IncrementalMerkle) Root() (Hash, error) {
	if m.n == 0 {
		return Hash{}, ErrEmpty
	}
	// Walk heights low to high. pending carries the root of the ragged
	// right edge — the subtree built from all frozen roots below the
	// current height — which the duplicate-odd rule pairs with itself
	// whenever the current height contributes no frozen root.
	var pending *Hash
	var acc Hash
	k := m.n
	for h := 0; k > 0; h++ {
		if k&1 == 1 {
			f := m.frozen[h]
			if pending != nil {
				acc = hashNodes(f, *pending)
				pending = &acc
			} else if k > 1 {
				acc = hashNodes(f, f)
				pending = &acc
			} else {
				return f, nil
			}
		} else if pending != nil {
			acc = hashNodes(*pending, *pending)
			pending = &acc
		}
		k >>= 1
	}
	return *pending, nil
}

// Tree materializes (and caches) the full tree over the pushed leaves, for
// serving inclusion proofs once streaming ends.
func (m *IncrementalMerkle) Tree() (*MerkleTree, error) {
	if m.tree == nil {
		t, err := NewMerkleFromLeaves(m.leaves)
		if err != nil {
			return nil, err
		}
		m.tree = t
	}
	return m.tree, nil
}

// Prove returns the inclusion proof for leaf i, materializing the tree on
// first use.
func (m *IncrementalMerkle) Prove(i int) (MerkleProof, error) {
	t, err := m.Tree()
	if err != nil {
		return MerkleProof{}, err
	}
	return t.Prove(i)
}
