package commitment

import (
	"errors"
	"testing"
)

// TestIncrementalMatchesBatch pins the streaming builder to the batch
// construction: after every push the incremental root must equal
// NewMerkleTree over the prefix, across every ragged shape up to 65 leaves
// (covering odd counts at every level of a depth-7 tree).
func TestIncrementalMatchesBatch(t *testing.T) {
	const maxLeaves = 65
	ps := payloads(maxLeaves)
	var inc IncrementalMerkle
	for n := 1; n <= maxLeaves; n++ {
		inc.Push(HashLeaf(ps[n-1]))
		if inc.Len() != n {
			t.Fatalf("Len = %d after %d pushes", inc.Len(), n)
		}
		batch, err := NewMerkleTree(ps[:n])
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		root, err := inc.Root()
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if root != batch.Root() {
			t.Fatalf("n=%d: incremental root diverges from batch root", n)
		}
	}
}

// TestIncrementalTreeProves checks that the materialized tree serves proofs
// that verify against the streamed root, including after further pushes
// invalidate a cached tree.
func TestIncrementalTreeProves(t *testing.T) {
	ps := payloads(7)
	var inc IncrementalMerkle
	for _, p := range ps[:5] {
		inc.Push(HashLeaf(p))
	}
	if _, err := inc.Tree(); err != nil {
		t.Fatal(err)
	}
	for _, p := range ps[5:] {
		inc.Push(HashLeaf(p)) // must drop the cached 5-leaf tree
	}
	root, err := inc.Root()
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range ps {
		proof, err := inc.Prove(i)
		if err != nil {
			t.Fatalf("prove %d: %v", i, err)
		}
		if err := VerifyMerkle(root, len(ps), p, proof); err != nil {
			t.Errorf("leaf %d: %v", i, err)
		}
	}
}

func TestIncrementalEmpty(t *testing.T) {
	var inc IncrementalMerkle
	if _, err := inc.Root(); !errors.Is(err, ErrEmpty) {
		t.Errorf("Root err = %v, want ErrEmpty", err)
	}
	if _, err := inc.Tree(); !errors.Is(err, ErrEmpty) {
		t.Errorf("Tree err = %v, want ErrEmpty", err)
	}
}

// TestMerkleSingleLeaf pins the degenerate tree: the root is the leaf hash
// and the only valid proof is empty at index 0.
func TestMerkleSingleLeaf(t *testing.T) {
	payload := []byte("only")
	tree, err := NewMerkleTree([][]byte{payload})
	if err != nil {
		t.Fatal(err)
	}
	proof, err := tree.Prove(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(proof.Siblings) != 0 {
		t.Errorf("single-leaf proof has %d siblings", len(proof.Siblings))
	}
	if err := VerifyMerkle(tree.Root(), 1, payload, proof); err != nil {
		t.Errorf("single leaf: %v", err)
	}
	// A non-empty proof against a single-leaf tree must be rejected by the
	// depth check, whatever its contents.
	padded := MerkleProof{Index: 0, Siblings: []Hash{HashLeaf(payload)}}
	if err := VerifyMerkle(tree.Root(), 1, payload, padded); !errors.Is(err, ErrMismatch) {
		t.Errorf("padded proof: err = %v, want ErrMismatch", err)
	}
}

// TestMerkleOddCountsEveryLevel exercises leaf counts whose binary-carry
// shape leaves an odd node at each interior level (2^d + 1 for d = 0..6),
// where the duplicate-odd pairing rule matters most.
func TestMerkleOddCountsEveryLevel(t *testing.T) {
	for d := 0; d <= 6; d++ {
		n := 1<<d + 1
		ps := payloads(n)
		tree, err := NewMerkleTree(ps)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		root := tree.Root()
		for i, p := range ps {
			proof, err := tree.Prove(i)
			if err != nil {
				t.Fatalf("n=%d prove %d: %v", n, i, err)
			}
			if err := VerifyMerkle(root, n, p, proof); err != nil {
				t.Errorf("n=%d leaf %d: %v", n, i, err)
			}
		}
	}
}

// TestMerklePhantomIndex reproduces the attack from the VerifyMerkle
// docstring: without the leaf-count/depth contract, a depth-2 proof for
// index 1 would also verify at phantom index 17, whose low path bits match.
// The verifier must reject both the out-of-range index and any proof whose
// depth disagrees with the tree.
func TestMerklePhantomIndex(t *testing.T) {
	ps := payloads(4)
	tree, err := NewMerkleTree(ps)
	if err != nil {
		t.Fatal(err)
	}
	proof, err := tree.Prove(1)
	if err != nil {
		t.Fatal(err)
	}
	phantom := proof
	phantom.Index = 17 // same left/right path bits as index 1 at depth 2
	if err := VerifyMerkle(tree.Root(), 4, ps[1], phantom); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("phantom index: err = %v, want ErrOutOfRange", err)
	}
	// Lying about the leaf count to legitimize the phantom index changes the
	// required depth, so the depth check fires instead.
	if err := VerifyMerkle(tree.Root(), 32, ps[1], phantom); !errors.Is(err, ErrMismatch) {
		t.Errorf("inflated leaf count: err = %v, want ErrMismatch", err)
	}
	// Truncating or extending the path must never verify either.
	short := MerkleProof{Index: 1, Siblings: proof.Siblings[:1]}
	if err := VerifyMerkle(tree.Root(), 4, ps[1], short); !errors.Is(err, ErrMismatch) {
		t.Errorf("truncated proof: err = %v, want ErrMismatch", err)
	}
	long := MerkleProof{Index: 1, Siblings: append(append([]Hash{}, proof.Siblings...), Hash{})}
	if err := VerifyMerkle(tree.Root(), 4, ps[1], long); !errors.Is(err, ErrMismatch) {
		t.Errorf("extended proof: err = %v, want ErrMismatch", err)
	}
}

func TestProofEncodeDecode(t *testing.T) {
	tree, err := NewMerkleTree(payloads(6))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		proof, err := tree.Prove(i)
		if err != nil {
			t.Fatal(err)
		}
		enc := proof.AppendEncode(nil)
		if len(enc) != proof.Size() {
			t.Errorf("leaf %d: encoded %d bytes, Size says %d", i, len(enc), proof.Size())
		}
		got, err := DecodeProof(enc)
		if err != nil {
			t.Fatalf("leaf %d: %v", i, err)
		}
		if got.Index != proof.Index || len(got.Siblings) != len(proof.Siblings) {
			t.Fatalf("leaf %d: round trip changed shape", i)
		}
		for j := range got.Siblings {
			if got.Siblings[j] != proof.Siblings[j] {
				t.Fatalf("leaf %d sibling %d differs", i, j)
			}
		}
	}
}

func TestDecodeProofBounds(t *testing.T) {
	if _, err := DecodeProof(nil); err == nil {
		t.Error("want error for empty proof")
	}
	if _, err := DecodeProof(make([]byte, 7)); err == nil {
		t.Error("want error for short header")
	}
	// A header declaring a huge depth must be rejected before allocation.
	huge := []byte{0, 0, 0, 1, 0x7F, 0xFF, 0xFF, 0xFF}
	if _, err := DecodeProof(huge); err == nil {
		t.Error("want error for absurd depth")
	}
	// Declared depth must match the buffer exactly.
	tree, err := NewMerkleTree(payloads(4))
	if err != nil {
		t.Fatal(err)
	}
	proof, err := tree.Prove(0)
	if err != nil {
		t.Fatal(err)
	}
	enc := proof.AppendEncode(nil)
	if _, err := DecodeProof(enc[:len(enc)-1]); err == nil {
		t.Error("want error for truncated siblings")
	}
	if _, err := DecodeProof(append(enc, 0)); err == nil {
		t.Error("want error for trailing bytes")
	}
}

func TestDecodeHashListN(t *testing.T) {
	hl, err := NewHashList(payloads(4))
	if err != nil {
		t.Fatal(err)
	}
	enc := hl.Encode()
	got, err := DecodeHashListN(enc, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got.Root() != hl.Root() {
		t.Error("round trip changed root")
	}
	// The declared count must match the buffer exactly: a peer cannot force
	// a larger allocation than its checkpoint claim justifies.
	if _, err := DecodeHashListN(enc, 5); err == nil {
		t.Error("want error for count > buffer")
	}
	if _, err := DecodeHashListN(enc, 3); err == nil {
		t.Error("want error for count < buffer")
	}
	if _, err := DecodeHashListN(enc, 0); err == nil {
		t.Error("want error for zero count")
	}
	if _, err := DecodeHashListN(nil, 1); err == nil {
		t.Error("want error for empty buffer")
	}
}
