package commitment

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
)

func payloads(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("checkpoint-%d", i))
	}
	return out
}

func TestHashListCommitVerify(t *testing.T) {
	ps := payloads(5)
	hl, err := NewHashList(ps)
	if err != nil {
		t.Fatal(err)
	}
	if hl.Len() != 5 {
		t.Errorf("Len = %d", hl.Len())
	}
	for i, p := range ps {
		if err := hl.VerifyLeaf(i, p); err != nil {
			t.Errorf("leaf %d: %v", i, err)
		}
	}
}

func TestHashListRejectsTamperedPayload(t *testing.T) {
	hl, err := NewHashList(payloads(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := hl.VerifyLeaf(1, []byte("forged")); !errors.Is(err, ErrMismatch) {
		t.Errorf("err = %v, want ErrMismatch", err)
	}
	// Correct payload at wrong index must also fail.
	if err := hl.VerifyLeaf(0, []byte("checkpoint-1")); !errors.Is(err, ErrMismatch) {
		t.Errorf("err = %v, want ErrMismatch", err)
	}
}

func TestHashListIndexBounds(t *testing.T) {
	hl, err := NewHashList(payloads(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := hl.VerifyLeaf(-1, nil); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("err = %v", err)
	}
	if err := hl.VerifyLeaf(2, nil); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("err = %v", err)
	}
}

func TestHashListEmpty(t *testing.T) {
	if _, err := NewHashList(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("err = %v, want ErrEmpty", err)
	}
}

func TestHashListRootChangesWithOrder(t *testing.T) {
	a, err := NewHashList([][]byte{[]byte("x"), []byte("y")})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewHashList([][]byte{[]byte("y"), []byte("x")})
	if err != nil {
		t.Fatal(err)
	}
	if a.Root() == b.Root() {
		t.Error("commitment must bind leaf order")
	}
}

func TestHashListEncodeDecode(t *testing.T) {
	hl, err := NewHashList(payloads(4))
	if err != nil {
		t.Fatal(err)
	}
	enc := hl.Encode()
	if len(enc) != hl.Size() {
		t.Errorf("encoded %d bytes, Size says %d", len(enc), hl.Size())
	}
	got, err := DecodeHashList(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Root() != hl.Root() {
		t.Error("round trip changed root")
	}
	if _, err := DecodeHashList(enc[:HashSize-1]); err == nil {
		t.Error("want error for ragged encoding")
	}
	if _, err := DecodeHashList(nil); err == nil {
		t.Error("want error for empty encoding")
	}
}

func TestMerkleCommitVerify(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 8, 13} {
		ps := payloads(n)
		tree, err := NewMerkleTree(ps)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if tree.Len() != n {
			t.Errorf("n=%d: Len = %d", n, tree.Len())
		}
		root := tree.Root()
		for i, p := range ps {
			proof, err := tree.Prove(i)
			if err != nil {
				t.Fatalf("n=%d prove %d: %v", n, i, err)
			}
			if err := VerifyMerkle(root, n, p, proof); err != nil {
				t.Errorf("n=%d leaf %d: %v", n, i, err)
			}
		}
	}
}

func TestMerkleRejectsTampering(t *testing.T) {
	ps := payloads(6)
	tree, err := NewMerkleTree(ps)
	if err != nil {
		t.Fatal(err)
	}
	root := tree.Root()
	proof, err := tree.Prove(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyMerkle(root, 6, []byte("forged"), proof); !errors.Is(err, ErrMismatch) {
		t.Errorf("forged payload: err = %v", err)
	}
	// Proof for a different index must not verify this payload.
	other, err := tree.Prove(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyMerkle(root, 6, ps[2], other); !errors.Is(err, ErrMismatch) {
		t.Errorf("wrong proof: err = %v", err)
	}
	// Tampered sibling breaks verification.
	proof.Siblings[0][0] ^= 0xFF
	if err := VerifyMerkle(root, 6, ps[2], proof); !errors.Is(err, ErrMismatch) {
		t.Errorf("tampered sibling: err = %v", err)
	}
}

func TestMerkleProveBounds(t *testing.T) {
	tree, err := NewMerkleTree(payloads(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tree.Prove(-1); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("err = %v", err)
	}
	if _, err := tree.Prove(3); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("err = %v", err)
	}
	if _, err := NewMerkleTree(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("err = %v", err)
	}
}

func TestMerkleProofNegativeIndex(t *testing.T) {
	tree, err := NewMerkleTree(payloads(2))
	if err != nil {
		t.Fatal(err)
	}
	proof := MerkleProof{Index: -1}
	if err := VerifyMerkle(tree.Root(), 2, []byte("x"), proof); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("err = %v", err)
	}
}

func TestLeafDomainSeparation(t *testing.T) {
	// A single-leaf tree's root must differ from the raw leaf hash of the
	// same bytes interpreted as an interior node — domain separation.
	tree, err := NewMerkleTree([][]byte{[]byte("data")})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Root() != HashLeaf([]byte("data")) {
		// Single leaf: root IS the leaf hash. Sanity-check that holds.
		t.Error("single-leaf root should equal leaf hash")
	}
}

func TestMerkleSecondPreimageResistance(t *testing.T) {
	// Classic attack: present an interior node as a leaf. With domain
	// separation the interior node bytes hashed as a leaf cannot equal the
	// interior hash.
	ps := payloads(4)
	tree, err := NewMerkleTree(ps)
	if err != nil {
		t.Fatal(err)
	}
	l0 := HashLeaf(ps[0])
	l1 := HashLeaf(ps[1])
	interior := hashNodes(l0, l1)
	// Try to verify the interior node's bytes as a depth-1 "leaf".
	fake := MerkleProof{Index: 0, Siblings: []Hash{hashNodes(HashLeaf(ps[2]), HashLeaf(ps[3]))}}
	if err := VerifyMerkle(tree.Root(), 4, interior[:], fake); err == nil {
		t.Error("interior node accepted as leaf — missing domain separation")
	}
}

// Property: HashList and Merkle agree on membership for random payload sets.
func TestConstructionsAgree(t *testing.T) {
	f := func(raw [][]byte) bool {
		if len(raw) == 0 || len(raw) > 32 {
			return true
		}
		hl, err1 := NewHashList(raw)
		mt, err2 := NewMerkleTree(raw)
		if err1 != nil || err2 != nil {
			return false
		}
		for i, p := range raw {
			if hl.VerifyLeaf(i, p) != nil {
				return false
			}
			proof, err := mt.Prove(i)
			if err != nil {
				return false
			}
			if VerifyMerkle(mt.Root(), len(raw), p, proof) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProofSize(t *testing.T) {
	if got := ProofSize(3); got != 8+3*HashSize {
		t.Errorf("ProofSize = %d", got)
	}
}
