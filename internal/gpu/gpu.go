// Package gpu simulates the accelerator hardware the paper evaluates on.
// It substitutes for the physical NVIDIA GPUs (G3090, GA10, GP100, GT4) the
// authors used, reproducing the two properties the protocol depends on:
//
//  1. Throughput. Each profile carries the device's FP32 capacity, which
//     drives the epoch-time model behind Table II.
//  2. Nondeterminism. Real GPU training is not bit-reproducible: cuDNN
//     kernels, parallel reductions, and low-level libraries inject tiny
//     per-step weight perturbations (Eq. 2's ε_t). The Device here adds a
//     structured Gaussian perturbation after every training step, composed
//     of
//     - a device-systematic component shared by all runs on the same
//     profile (so identical hardware reproduces more closely than
//     different hardware),
//     - a run-specific component drawn per execution (so even the same GPU
//     never reproduces exactly), and
//     - white per-step noise.
//
// All components scale with device throughput, matching the paper's
// Sec. VII-C observations: errors exist on identical GPUs, grow with GPU
// performance, are larger across different GPUs, and are largest for the
// top-2-performance pair (G3090 + GA10). Accumulated over a checkpoint
// interval the systematic components dominate, so reproduction distance
// grows roughly linearly with the interval — also as measured in the paper.
package gpu

import (
	"errors"
	"fmt"
	"time"

	"rpol/internal/prf"
	"rpol/internal/tensor"
)

// Profile describes one accelerator model.
type Profile struct {
	Name   string
	TFLOPS float64 // FP32 capacity in teraFLOPS
}

// The paper's four evaluation devices with their FP32 capacities
// (Sec. VII-C).
var (
	G3090 = Profile{Name: "G3090", TFLOPS: 35.7}
	GA10  = Profile{Name: "GA10", TFLOPS: 31.2}
	GP100 = Profile{Name: "GP100", TFLOPS: 10.6}
	GT4   = Profile{Name: "GT4", TFLOPS: 8.1}
)

// Profiles lists the standard devices in descending performance order.
func Profiles() []Profile { return []Profile{G3090, GA10, GP100, GT4} }

// Noise scales relative to the fastest standard device. The absolute values
// are small compared with per-step gradient updates, as real reproduction
// errors are; the protocol's adaptive calibration measures whatever the
// deployment produces, so only the orderings above are load-bearing.
const (
	refTFLOPS     = 35.7
	devNoiseBase  = 3e-6 // device-systematic per-element std at refTFLOPS
	runNoiseBase  = 1e-6 // run-specific per-element std at refTFLOPS
	whiteFraction = 0.2  // white noise relative to run noise
	// gpuEfficiency discounts peak FLOPS to sustained training throughput.
	gpuEfficiency = 0.35
)

// ErrBadProfile is returned for profiles with non-positive throughput.
var ErrBadProfile = errors.New("gpu: profile needs positive TFLOPS")

// Device is one executing accelerator instance. Two Devices with the same
// Profile but different run seeds model "the same task re-run on the same
// GPU model"; different Profiles model cross-hardware reproduction.
//
// A Device is not safe for concurrent use.
type Device struct {
	profile Profile
	rng     *tensor.RNG
	runSeed int64

	devScale float64
	runScale float64

	// Lazily built per-dimension bias vectors.
	deviceBias map[int]tensor.Vector
	runBias    map[int]tensor.Vector

	// noiseBuf is the reusable white-noise scratch for Perturb, sized to the
	// last weight dimension seen.
	noiseBuf tensor.Vector
}

// NewDevice returns a Device for the profile. runSeed individualizes this
// execution: re-running the same training with a different runSeed models
// the nondeterminism of a fresh run on the same hardware.
func NewDevice(profile Profile, runSeed int64) (*Device, error) {
	if profile.TFLOPS <= 0 {
		return nil, fmt.Errorf("%s: %w", profile.Name, ErrBadProfile)
	}
	perf := profile.TFLOPS / refTFLOPS
	return &Device{
		profile:    profile,
		rng:        tensor.NewRNG(runSeed),
		runSeed:    runSeed,
		devScale:   devNoiseBase * perf,
		runScale:   runNoiseBase * perf,
		deviceBias: make(map[int]tensor.Vector),
		runBias:    make(map[int]tensor.Vector),
	}, nil
}

// Fork returns a fresh Device on the same hardware profile whose run seed is
// derived deterministically from (this device's run seed, salt). The fork
// models an additional independent execution on the same GPU model: the
// device-systematic bias is shared (it is a pure function of the profile)
// while the run-specific components are re-drawn. Parallel interval
// verification forks one device per interval so concurrent replays never
// interleave draws from a shared RNG — the per-interval noise then depends
// only on (runSeed, salt), not on scheduling.
func (d *Device) Fork(salt int64) *Device {
	seed := prf.SeedFromString(fmt.Sprintf("gpu-fork/%d/%d", d.runSeed, salt))
	fork, err := NewDevice(d.profile, seed)
	if err != nil {
		// Unreachable: d was already validated with the same profile.
		panic(err)
	}
	return fork
}

// Profile returns the device's hardware profile.
func (d *Device) Profile() Profile { return d.profile }

func (d *Device) deviceBiasFor(dim int) tensor.Vector {
	if b, ok := d.deviceBias[dim]; ok {
		return b
	}
	// Device-systematic bias is a pure function of (profile, dim): all runs
	// on the same profile share it, so it cancels in same-GPU reproduction
	// and survives in cross-GPU reproduction.
	seed := prf.SeedFromString("gpu-device-bias/" + d.profile.Name)
	b := tensor.NewRNG(seed^int64(dim)).NormalVector(dim, 0, d.devScale)
	d.deviceBias[dim] = b
	return b
}

func (d *Device) runBiasFor(dim int) tensor.Vector {
	if b, ok := d.runBias[dim]; ok {
		return b
	}
	b := d.rng.NormalVector(dim, 0, d.runScale)
	d.runBias[dim] = b
	return b
}

// StepNoise returns the ε_t of Eq. (2) for one training step over a weight
// vector of length dim. Callers add it to the weights after the optimizer
// update.
func (d *Device) StepNoise(dim int) tensor.Vector {
	noise := d.rng.NormalVector(dim, 0, d.runScale*whiteFraction)
	dev := d.deviceBiasFor(dim)
	run := d.runBiasFor(dim)
	for i := range noise {
		noise[i] += dev[i] + run[i]
	}
	return noise
}

// Perturb applies one step of hardware noise to weights in place. It draws
// the identical noise sequence StepNoise produces but reuses an internal
// scratch buffer, so the per-step cost is allocation-free after the first
// call at a given dimension.
func (d *Device) Perturb(weights tensor.Vector) {
	dim := len(weights)
	if len(d.noiseBuf) != dim {
		d.noiseBuf = tensor.NewVector(dim)
	}
	d.rng.FillNormal(d.noiseBuf, 0, d.runScale*whiteFraction)
	dev := d.deviceBiasFor(dim)
	run := d.runBiasFor(dim)
	for i := range weights {
		// Grouped exactly as StepNoise does (noise += dev + run, then
		// weights += noise) so the float result is bit-identical.
		weights[i] += d.noiseBuf[i] + (dev[i] + run[i])
	}
}

// SkipPerturb advances the device's noise stream past one Perturb call at
// the given weight dimension without touching any weights. Crash recovery
// uses it to fast-forward a worker's device through the steps already
// persisted in checkpoints: replaying the RNG draws (and materializing the
// lazy run bias exactly when Perturb would) leaves the device in the
// bit-identical state a live run would have reached.
func (d *Device) SkipPerturb(dim int) {
	if len(d.noiseBuf) != dim {
		d.noiseBuf = tensor.NewVector(dim)
	}
	d.rng.FillNormal(d.noiseBuf, 0, d.runScale*whiteFraction)
	d.runBiasFor(dim)
}

// ExecTime models the wall-clock time to execute the given number of
// floating-point operations at sustained throughput.
func (d *Device) ExecTime(flops float64) time.Duration {
	if flops <= 0 {
		return 0
	}
	seconds := flops / (d.profile.TFLOPS * 1e12 * gpuEfficiency)
	return time.Duration(seconds * float64(time.Second))
}

// TopTwo returns the two highest-throughput profiles from the list. The
// manager's adaptive calibration runs its probe sub-task on the top-2
// best-performant GPUs registered by pool workers, to measure reproduction
// errors near their worst case (Sec. V-C).
func TopTwo(profiles []Profile) (first, second Profile, err error) {
	if len(profiles) < 2 {
		return Profile{}, Profile{}, errors.New("gpu: need at least two profiles")
	}
	first, second = profiles[0], profiles[1]
	if second.TFLOPS > first.TFLOPS {
		first, second = second, first
	}
	for _, p := range profiles[2:] {
		switch {
		case p.TFLOPS > first.TFLOPS:
			second = first
			first = p
		case p.TFLOPS > second.TFLOPS:
			second = p
		}
	}
	return first, second, nil
}
