package gpu

import (
	"errors"
	"testing"
	"time"

	"rpol/internal/tensor"
)

func TestNewDeviceValidation(t *testing.T) {
	if _, err := NewDevice(Profile{Name: "bad", TFLOPS: 0}, 1); !errors.Is(err, ErrBadProfile) {
		t.Errorf("err = %v, want ErrBadProfile", err)
	}
}

func TestProfilesOrdering(t *testing.T) {
	ps := Profiles()
	if len(ps) != 4 {
		t.Fatalf("profiles = %d", len(ps))
	}
	for i := 1; i < len(ps); i++ {
		if ps[i].TFLOPS >= ps[i-1].TFLOPS {
			t.Errorf("profiles not descending at %d", i)
		}
	}
}

// reproDistance trains nothing; it simply accumulates the per-step noise of
// two devices over `steps` steps and measures the divergence — the pure
// hardware component of the reproduction error.
func reproDistance(t *testing.T, a, b *Device, dim, steps int) float64 {
	t.Helper()
	wa, wb := tensor.NewVector(dim), tensor.NewVector(dim)
	for s := 0; s < steps; s++ {
		a.Perturb(wa)
		b.Perturb(wb)
	}
	d, err := tensor.Distance(wa, wb)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestSameGPUHasNonzeroError(t *testing.T) {
	a, err := NewDevice(G3090, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewDevice(G3090, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d := reproDistance(t, a, b, 256, 10); d == 0 {
		t.Error("same-GPU reproduction must still diverge (paper Sec. VII-C)")
	}
}

func TestCrossGPUErrorLargerThanSame(t *testing.T) {
	mean := func(pa, pb Profile) float64 {
		var sum float64
		const trials = 10
		for i := 0; i < trials; i++ {
			a, err := NewDevice(pa, int64(100+i))
			if err != nil {
				t.Fatal(err)
			}
			b, err := NewDevice(pb, int64(200+i))
			if err != nil {
				t.Fatal(err)
			}
			sum += reproDistance(t, a, b, 256, 10)
		}
		return sum / trials
	}
	same := mean(G3090, G3090)
	cross := mean(G3090, GA10)
	if cross <= same {
		t.Errorf("cross-GPU error %v must exceed same-GPU %v", cross, same)
	}
}

func TestTopPairHasLargestCrossError(t *testing.T) {
	mean := func(pa, pb Profile) float64 {
		var sum float64
		const trials = 8
		for i := 0; i < trials; i++ {
			a, err := NewDevice(pa, int64(300+i))
			if err != nil {
				t.Fatal(err)
			}
			b, err := NewDevice(pb, int64(400+i))
			if err != nil {
				t.Fatal(err)
			}
			sum += reproDistance(t, a, b, 256, 10)
		}
		return sum / trials
	}
	top := mean(G3090, GA10)
	slow := mean(GP100, GT4)
	if top <= slow {
		t.Errorf("top-2 pair error %v must exceed slow pair %v", top, slow)
	}
}

func TestErrorGrowsWithGPUPerformance(t *testing.T) {
	mean := func(p Profile) float64 {
		var sum float64
		const trials = 8
		for i := 0; i < trials; i++ {
			a, err := NewDevice(p, int64(500+i))
			if err != nil {
				t.Fatal(err)
			}
			b, err := NewDevice(p, int64(600+i))
			if err != nil {
				t.Fatal(err)
			}
			sum += reproDistance(t, a, b, 256, 10)
		}
		return sum / trials
	}
	fast := mean(G3090)
	slow := mean(GT4)
	if fast <= slow {
		t.Errorf("fast-GPU error %v must exceed slow-GPU %v", fast, slow)
	}
}

func TestErrorGrowsWithInterval(t *testing.T) {
	// Paper: reproduction errors increase roughly linearly with checkpoint
	// interval. Verify monotone growth and rough linearity.
	dist := func(steps int) float64 {
		a, err := NewDevice(G3090, 11)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewDevice(G3090, 22)
		if err != nil {
			t.Fatal(err)
		}
		return reproDistance(t, a, b, 256, steps)
	}
	d5, d10, d20 := dist(5), dist(10), dist(20)
	if !(d5 < d10 && d10 < d20) {
		t.Errorf("error not monotone in interval: %v %v %v", d5, d10, d20)
	}
	ratio := d20 / d5
	if ratio < 2 || ratio > 8 {
		t.Errorf("interval scaling ratio %v outside rough-linear band", ratio)
	}
}

func TestExecTime(t *testing.T) {
	d, err := NewDevice(G3090, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.ExecTime(0); got != 0 {
		t.Errorf("ExecTime(0) = %v", got)
	}
	one := d.ExecTime(1e12)
	if one <= 0 {
		t.Errorf("ExecTime(1e12) = %v", one)
	}
	// Linear in FLOPs.
	two := d.ExecTime(2e12)
	if two < one*2-time.Nanosecond || two > one*2+time.Nanosecond {
		t.Errorf("ExecTime not linear: %v vs %v", one, two)
	}
	// Faster device is faster.
	slow, err := NewDevice(GT4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if slow.ExecTime(1e12) <= one {
		t.Error("GT4 must be slower than G3090")
	}
}

func TestTopTwo(t *testing.T) {
	first, second, err := TopTwo([]Profile{GT4, GP100, G3090, GA10})
	if err != nil {
		t.Fatal(err)
	}
	if first.Name != "G3090" || second.Name != "GA10" {
		t.Errorf("TopTwo = %s, %s", first.Name, second.Name)
	}
	// Order of the first two inputs must not matter.
	first, second, err = TopTwo([]Profile{GP100, G3090, GT4})
	if err != nil {
		t.Fatal(err)
	}
	if first.Name != "G3090" || second.Name != "GP100" {
		t.Errorf("TopTwo = %s, %s", first.Name, second.Name)
	}
	if _, _, err := TopTwo([]Profile{G3090}); err == nil {
		t.Error("want error for short list")
	}
}

func TestPerturbChangesWeights(t *testing.T) {
	d, err := NewDevice(GA10, 5)
	if err != nil {
		t.Fatal(err)
	}
	w := tensor.NewVector(64)
	d.Perturb(w)
	if w.Norm2() == 0 {
		t.Error("Perturb must inject noise")
	}
	if w.MaxAbs() > 1e-2 {
		t.Errorf("noise implausibly large: %v", w.MaxAbs())
	}
}

func TestRunSeedIndividualizesRuns(t *testing.T) {
	a, err := NewDevice(G3090, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewDevice(G3090, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Identical run seeds replay identically (determinism of the simulator).
	wa, wb := tensor.NewVector(32), tensor.NewVector(32)
	a.Perturb(wa)
	b.Perturb(wb)
	if !wa.Equal(wb, 0) {
		t.Error("same run seed must replay identically")
	}
}

func TestSkipPerturbMatchesPerturbStream(t *testing.T) {
	// Two devices with the same run seed: one perturbs three times, the
	// other skips two and perturbs once. The third draws must coincide
	// bit-for-bit — this is what makes crash-recovery fast-forward exact.
	live, err := NewDevice(GA10, 77)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := NewDevice(GA10, 77)
	if err != nil {
		t.Fatal(err)
	}
	const dim = 48
	var third tensor.Vector
	for i := 0; i < 3; i++ {
		w := tensor.NewVector(dim)
		live.Perturb(w)
		third = w
	}
	resumed.SkipPerturb(dim)
	resumed.SkipPerturb(dim)
	w := tensor.NewVector(dim)
	resumed.Perturb(w)
	if !w.Equal(third, 0) {
		t.Error("SkipPerturb desynchronized the noise stream")
	}
}
