// Package modelzoo names the DNN tasks the paper evaluates and binds each to
// two things:
//
//  1. A *proxy* architecture: a small, runnable network built on internal/nn
//     whose training genuinely exercises every protocol path (checkpointing,
//     commitments, LSH digests, verification, attacks). Gradient math at
//     ResNet/VGG scale is far outside a pure-Go reproduction's budget, so
//     proxies are O(10³–10⁴) parameters.
//  2. Paper-scale *cost metadata*: true parameter counts, serialized model
//     sizes (ResNet50 = 90.7 MB, VGG16 = 527 MB, Sec. VII-E), dataset
//     cardinalities, and per-example training FLOPs calibrated so that the
//     epoch-time model reproduces the paper's Table I/II timings on the
//     simulated G3090. Tables II/III are computed from this metadata, so
//     their numbers are at paper scale even though gradients run at proxy
//     scale.
package modelzoo

import (
	"fmt"

	"rpol/internal/dataset"
	"rpol/internal/nn"
	"rpol/internal/tensor"
)

// TaskSpec describes one named DNN task.
type TaskSpec struct {
	Name        string // registry key, e.g. "resnet18-cifar10"
	ModelName   string // paper model, e.g. "ResNet18"
	DatasetName string // paper dataset, e.g. "CIFAR-10"

	// Paper-scale metadata (drives the cost model).
	ParamCount      int     // true parameter count of the paper model
	ModelBytes      int64   // serialized fp32 size on the wire
	DatasetSize     int     // paper dataset cardinality
	FLOPsPerExample float64 // fwd+bwd training FLOPs per example
	DefaultEpochs   int     // paper's training duration (Sec. VII-A)
	BatchSize       int     // paper's batch size

	// Proxy (runnable) configuration.
	ProxyDim        int     // proxy feature dimensionality
	ProxyClasses    int     // proxy class count
	ProxyTrainSize  int     // proxy training examples
	ProxyTestSize   int     // proxy held-out examples
	ProxyHidden     []int   // hidden layer widths of the proxy MLP
	ProxyClusterStd float64 // proxy task difficulty
	ProxyBatchSize  int
	// Convolutional proxy: when ProxyConv is set, the proxy front-end is a
	// 3×3 same-padding convolution over a (channels, h, w) view of the
	// features (channels·h·w must equal ProxyDim), followed by the dense
	// head — the closest runnable analogue of the paper's conv
	// architectures.
	ProxyConv     bool
	ProxyChannels int
	ProxyH        int
	ProxyW        int
	ProxyFilters  int // conv output channels
}

// Registry returns the named tasks of the paper's evaluation. The map is
// freshly allocated; callers may mutate their copy.
func Registry() map[string]TaskSpec {
	specs := []TaskSpec{
		{
			Name: "resnet18-cifar10", ModelName: "ResNet18", DatasetName: "CIFAR-10",
			ParamCount: 11_173_962, ModelBytes: 44_700_000, DatasetSize: 50_000,
			// Calibrated: 31.43 s/epoch on the simulated G3090 (Table I).
			FLOPsPerExample: 7.86e9, DefaultEpochs: 40, BatchSize: 128,
			ProxyDim: 48, ProxyClasses: 10, ProxyTrainSize: 2000, ProxyTestSize: 500,
			ProxyHidden: []int{64, 32}, ProxyClusterStd: 1.05, ProxyBatchSize: 32,
		},
		{
			Name: "resnet50-cifar100", ModelName: "ResNet50", DatasetName: "CIFAR-100",
			ParamCount: 25_557_032, ModelBytes: 90_700_000, DatasetSize: 50_000,
			// Calibrated: 60.0 s/epoch on the simulated G3090 (Table I).
			FLOPsPerExample: 1.50e10, DefaultEpochs: 200, BatchSize: 128,
			ProxyDim: 64, ProxyClasses: 20, ProxyTrainSize: 3000, ProxyTestSize: 600,
			ProxyHidden: []int{96, 48}, ProxyClusterStd: 0.95, ProxyBatchSize: 32,
		},
		{
			Name: "resnet18-cifar100", ModelName: "ResNet18", DatasetName: "CIFAR-100",
			ParamCount: 11_220_132, ModelBytes: 44_900_000, DatasetSize: 50_000,
			FLOPsPerExample: 7.86e9, DefaultEpochs: 40, BatchSize: 128,
			ProxyDim: 48, ProxyClasses: 20, ProxyTrainSize: 3000, ProxyTestSize: 600,
			ProxyHidden: []int{64, 32}, ProxyClusterStd: 0.95, ProxyBatchSize: 32,
		},
		{
			Name: "resnet50-cifar10", ModelName: "ResNet50", DatasetName: "CIFAR-10",
			ParamCount: 23_520_842, ModelBytes: 90_700_000, DatasetSize: 50_000,
			FLOPsPerExample: 1.50e10, DefaultEpochs: 40, BatchSize: 128,
			ProxyDim: 64, ProxyClasses: 10, ProxyTrainSize: 2000, ProxyTestSize: 500,
			ProxyHidden: []int{96, 48}, ProxyClusterStd: 1.05, ProxyBatchSize: 32,
		},
		{
			Name: "resnet50-imagenet", ModelName: "ResNet50", DatasetName: "ImageNet",
			ParamCount: 25_557_032, ModelBytes: 90_700_000, DatasetSize: 1_281_167,
			// Calibrated so one epoch of a 1/10 shard takes ≈292 s of compute
			// on the simulated G3090 (Table II's baseline of 307 s minus
			// model transfer time).
			FLOPsPerExample: 2.85e10, DefaultEpochs: 90, BatchSize: 128,
			ProxyDim: 64, ProxyClasses: 20, ProxyTrainSize: 4000, ProxyTestSize: 800,
			ProxyHidden: []int{96, 48}, ProxyClusterStd: 0.95, ProxyBatchSize: 32,
		},
		{
			Name: "vgg16-imagenet", ModelName: "VGG16", DatasetName: "ImageNet",
			ParamCount: 138_357_544, ModelBytes: 527_000_000, DatasetSize: 1_281_167,
			// Calibrated against Table II's VGG16 baseline (282 s with 10
			// workers after transfer time).
			FLOPsPerExample: 1.93e10, DefaultEpochs: 74, BatchSize: 128,
			ProxyDim: 64, ProxyClasses: 20, ProxyTrainSize: 4000, ProxyTestSize: 800,
			ProxyHidden: []int{128, 64}, ProxyClusterStd: 0.95, ProxyBatchSize: 32,
		},
		{
			Name: "resnet18-cifar10-conv", ModelName: "ResNet18", DatasetName: "CIFAR-10",
			ParamCount: 11_173_962, ModelBytes: 44_700_000, DatasetSize: 50_000,
			FLOPsPerExample: 7.86e9, DefaultEpochs: 40, BatchSize: 128,
			ProxyDim: 48, ProxyClasses: 10, ProxyTrainSize: 2000, ProxyTestSize: 500,
			ProxyHidden: []int{32}, ProxyClusterStd: 1.05, ProxyBatchSize: 32,
			ProxyConv: true, ProxyChannels: 3, ProxyH: 4, ProxyW: 4, ProxyFilters: 8,
		},
	}
	out := make(map[string]TaskSpec, len(specs))
	for _, s := range specs {
		out[s.Name] = s
	}
	return out
}

// Get returns the named task spec.
func Get(name string) (TaskSpec, error) {
	spec, ok := Registry()[name]
	if !ok {
		return TaskSpec{}, fmt.Errorf("modelzoo: unknown task %q", name)
	}
	return spec, nil
}

// FLOPsPerEpoch returns the paper-scale training FLOPs of one full-dataset
// epoch.
func (s TaskSpec) FLOPsPerEpoch() float64 {
	return s.FLOPsPerExample * float64(s.DatasetSize)
}

// FLOPsPerShardEpoch returns the training FLOPs of one epoch over a 1/n
// shard of the dataset.
func (s TaskSpec) FLOPsPerShardEpoch(n int) float64 {
	if n <= 0 {
		return 0
	}
	return s.FLOPsPerEpoch() / float64(n)
}

// StepsPerShardEpoch returns the number of mini-batch steps a worker runs
// per epoch over a 1/n shard at the paper's batch size.
func (s TaskSpec) StepsPerShardEpoch(n int) int {
	if n <= 0 || s.BatchSize <= 0 {
		return 0
	}
	steps := s.DatasetSize / n / s.BatchSize
	if steps < 1 {
		steps = 1
	}
	return steps
}

// BuildProxy constructs the runnable proxy: a seeded synthetic dataset split
// into train/test, and an MLP classifier. The same (spec, seed) always
// yields an identical model and data — the determinism the verification
// protocol requires.
func (s TaskSpec) BuildProxy(seed int64) (*nn.Network, *dataset.Dataset, *dataset.Dataset, error) {
	ds, err := dataset.Generate(dataset.Config{
		Name:       s.Name,
		NumClasses: s.ProxyClasses,
		Dim:        s.ProxyDim,
		Size:       s.ProxyTrainSize + s.ProxyTestSize,
		ClusterStd: s.ProxyClusterStd,
		Seed:       seed,
	})
	if err != nil {
		return nil, nil, nil, fmt.Errorf("modelzoo %s: %w", s.Name, err)
	}
	testFrac := float64(s.ProxyTestSize) / float64(s.ProxyTrainSize+s.ProxyTestSize)
	train, test, err := ds.SplitTrainTest(testFrac)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("modelzoo %s: %w", s.Name, err)
	}
	net, err := s.BuildProxyNet(seed + 1)
	if err != nil {
		return nil, nil, nil, err
	}
	return net, train, test, nil
}

// BuildProxyNet constructs just the proxy network (without data).
func (s TaskSpec) BuildProxyNet(seed int64) (*nn.Network, error) {
	rng := tensor.NewRNG(seed)
	var layers []nn.Layer
	in := s.ProxyDim
	if s.ProxyConv {
		if s.ProxyChannels*s.ProxyH*s.ProxyW != s.ProxyDim {
			return nil, fmt.Errorf("modelzoo %s: conv geometry %d×%d×%d does not match dim %d",
				s.Name, s.ProxyChannels, s.ProxyH, s.ProxyW, s.ProxyDim)
		}
		filters := s.ProxyFilters
		if filters < 1 {
			filters = 8
		}
		conv, err := nn.NewConv2D(s.ProxyChannels, s.ProxyH, s.ProxyW, filters, 3, 1, rng)
		if err != nil {
			return nil, fmt.Errorf("modelzoo %s: %w", s.Name, err)
		}
		layers = append(layers, conv, nn.NewReLU(conv.OutputDim()))
		in = conv.OutputDim()
	}
	for _, h := range s.ProxyHidden {
		layers = append(layers, nn.NewDense(in, h, rng), nn.NewReLU(h))
		in = h
	}
	layers = append(layers, nn.NewDense(in, s.ProxyClasses, rng))
	net, err := nn.NewNetwork(layers...)
	if err != nil {
		return nil, fmt.Errorf("modelzoo %s: %w", s.Name, err)
	}
	return net, nil
}
