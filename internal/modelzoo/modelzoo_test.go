package modelzoo

import (
	"testing"

	"rpol/internal/nn"
	"rpol/internal/tensor"
)

func TestRegistryContents(t *testing.T) {
	reg := Registry()
	for _, name := range []string{
		"resnet18-cifar10", "resnet50-cifar100", "resnet18-cifar100",
		"resnet50-cifar10", "resnet50-imagenet", "vgg16-imagenet",
	} {
		spec, ok := reg[name]
		if !ok {
			t.Errorf("missing task %q", name)
			continue
		}
		if spec.ParamCount <= 0 || spec.ModelBytes <= 0 || spec.DatasetSize <= 0 {
			t.Errorf("%s: incomplete paper-scale metadata: %+v", name, spec)
		}
		if spec.ProxyDim <= 0 || spec.ProxyClasses < 2 || len(spec.ProxyHidden) == 0 {
			t.Errorf("%s: incomplete proxy config", name)
		}
	}
}

func TestGet(t *testing.T) {
	if _, err := Get("resnet18-cifar10"); err != nil {
		t.Errorf("Get: %v", err)
	}
	if _, err := Get("alexnet-mnist"); err == nil {
		t.Error("want error for unknown task")
	}
}

func TestPaperScaleSizes(t *testing.T) {
	r50, err := Get("resnet50-imagenet")
	if err != nil {
		t.Fatal(err)
	}
	if r50.ModelBytes != 90_700_000 {
		t.Errorf("ResNet50 bytes = %d, want the paper's 90.7 MB", r50.ModelBytes)
	}
	vgg, err := Get("vgg16-imagenet")
	if err != nil {
		t.Fatal(err)
	}
	if vgg.ModelBytes != 527_000_000 {
		t.Errorf("VGG16 bytes = %d, want the paper's 527 MB", vgg.ModelBytes)
	}
	if vgg.ModelBytes <= r50.ModelBytes {
		t.Error("VGG16 must be larger than ResNet50 (communication-bound case)")
	}
}

func TestFLOPsHelpers(t *testing.T) {
	spec, err := Get("resnet18-cifar10")
	if err != nil {
		t.Fatal(err)
	}
	full := spec.FLOPsPerEpoch()
	if full <= 0 {
		t.Fatal("FLOPsPerEpoch must be positive")
	}
	if got := spec.FLOPsPerShardEpoch(10); got != full/10 {
		t.Errorf("shard FLOPs = %v, want %v", got, full/10)
	}
	if got := spec.FLOPsPerShardEpoch(0); got != 0 {
		t.Errorf("shard FLOPs with 0 workers = %v", got)
	}
	steps := spec.StepsPerShardEpoch(10)
	if steps != 50_000/10/128 {
		t.Errorf("steps = %d", steps)
	}
	if got := spec.StepsPerShardEpoch(0); got != 0 {
		t.Errorf("steps with 0 shards = %v", got)
	}
	// Tiny shards round up to at least one step.
	if got := spec.StepsPerShardEpoch(spec.DatasetSize); got != 1 {
		t.Errorf("steps for singleton shard = %d, want 1", got)
	}
}

func TestBuildProxyDeterministic(t *testing.T) {
	spec, err := Get("resnet18-cifar10")
	if err != nil {
		t.Fatal(err)
	}
	n1, tr1, te1, err := spec.BuildProxy(7)
	if err != nil {
		t.Fatal(err)
	}
	n2, tr2, te2, err := spec.BuildProxy(7)
	if err != nil {
		t.Fatal(err)
	}
	if !n1.ParamVector().Equal(n2.ParamVector(), 0) {
		t.Error("same seed must produce identical networks")
	}
	if tr1.Len() != tr2.Len() || te1.Len() != te2.Len() {
		t.Error("same seed must produce identically sized splits")
	}
	if !tr1.Examples[0].Features.Equal(tr2.Examples[0].Features, 0) {
		t.Error("same seed must produce identical data")
	}
}

func TestBuildProxyShapes(t *testing.T) {
	spec, err := Get("resnet50-cifar100")
	if err != nil {
		t.Fatal(err)
	}
	net, train, test, err := spec.BuildProxy(1)
	if err != nil {
		t.Fatal(err)
	}
	if train.Len() != spec.ProxyTrainSize {
		t.Errorf("train size = %d, want %d", train.Len(), spec.ProxyTrainSize)
	}
	if test.Len() != spec.ProxyTestSize {
		t.Errorf("test size = %d, want %d", test.Len(), spec.ProxyTestSize)
	}
	logits, err := net.Forward(train.Examples[0].Features)
	if err != nil {
		t.Fatal(err)
	}
	if len(logits) != spec.ProxyClasses {
		t.Errorf("logits = %d, want %d", len(logits), spec.ProxyClasses)
	}
}

func TestProxyIsLearnable(t *testing.T) {
	// The proxy must be a real learnable task or Figures 3/6 degenerate.
	spec, err := Get("resnet18-cifar10")
	if err != nil {
		t.Fatal(err)
	}
	net, train, test, err := spec.BuildProxy(3)
	if err != nil {
		t.Fatal(err)
	}
	opt := &nn.SGDM{LR: 0.05, Momentum: 0.9}
	xs := make([]tensor.Vector, train.Len())
	labels := make([]int, train.Len())
	for i, ex := range train.Examples {
		xs[i] = ex.Features
		labels[i] = ex.Label
	}
	for epoch := 0; epoch < 5; epoch++ {
		for i := 0; i+32 <= len(xs); i += 32 {
			if _, err := net.TrainBatch(xs[i:i+32], labels[i:i+32], opt); err != nil {
				t.Fatal(err)
			}
		}
	}
	testXs := make([]tensor.Vector, test.Len())
	testLabels := make([]int, test.Len())
	for i, ex := range test.Examples {
		testXs[i] = ex.Features
		testLabels[i] = ex.Label
	}
	acc, err := net.Accuracy(testXs, testLabels)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.5 {
		t.Errorf("proxy test accuracy %v after 5 epochs; task not learnable", acc)
	}
}

func TestConvProxyLearnable(t *testing.T) {
	spec, err := Get("resnet18-cifar10-conv")
	if err != nil {
		t.Fatal(err)
	}
	if !spec.ProxyConv {
		t.Fatal("conv task must set ProxyConv")
	}
	net, train, test, err := spec.BuildProxy(3)
	if err != nil {
		t.Fatal(err)
	}
	opt := &nn.SGDM{LR: 0.02, Momentum: 0.9}
	xs := make([]tensor.Vector, train.Len())
	labels := make([]int, train.Len())
	for i, ex := range train.Examples {
		xs[i] = ex.Features
		labels[i] = ex.Label
	}
	for epoch := 0; epoch < 5; epoch++ {
		for i := 0; i+32 <= len(xs); i += 32 {
			if _, err := net.TrainBatch(xs[i:i+32], labels[i:i+32], opt); err != nil {
				t.Fatal(err)
			}
		}
	}
	testXs := make([]tensor.Vector, test.Len())
	testLabels := make([]int, test.Len())
	for i, ex := range test.Examples {
		testXs[i] = ex.Features
		testLabels[i] = ex.Label
	}
	acc, err := net.Accuracy(testXs, testLabels)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.4 {
		t.Errorf("conv proxy accuracy %v; task not learnable", acc)
	}
}

func TestConvProxyGeometryValidation(t *testing.T) {
	spec, err := Get("resnet18-cifar10-conv")
	if err != nil {
		t.Fatal(err)
	}
	spec.ProxyChannels = 5 // no longer matches ProxyDim
	if _, err := spec.BuildProxyNet(1); err == nil {
		t.Error("mismatched conv geometry accepted")
	}
}
